// Sslcheck: detect allow-all hostname verification reached through the
// flows that defeat whole-app tools — an Executor-driven Runnable, a UI
// callback and cross-component ICC — and show the SSG evidence for one of
// them (paper Secs. IV-B, IV-D, V-A).
package main

import (
	"fmt"
	"log"

	"backdroid/internal/android"
	"backdroid/internal/appgen"
	"backdroid/internal/core"
)

func main() {
	app, _, err := appgen.Generate(appgen.Spec{
		Name:   "com.example.sslcheck",
		Seed:   7,
		SizeMB: 3,
		Sinks: []appgen.SinkSpec{
			{Flow: appgen.FlowAsyncExecutor, Rule: android.RuleSSLAllowAll, Insecure: true},
			{Flow: appgen.FlowCallback, Rule: android.RuleSSLAllowAll, Insecure: true},
			{Flow: appgen.FlowICC, Rule: android.RuleSSLAllowAll, Insecure: true},
			{Flow: appgen.FlowDirect, Rule: android.RuleSSLAllowAll, Insecure: false},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	opts := core.DefaultOptions()
	opts.Sinks = []android.Sink{
		{Method: android.SSLSetHostnameVerifier, ParamIndex: 0, Rule: android.RuleSSLAllowAll},
		{Method: android.HttpsSetHostnameVerifier, ParamIndex: 0, Rule: android.RuleSSLAllowAll},
	}
	engine, err := core.New(app, opts)
	if err != nil {
		log.Fatal(err)
	}
	report, err := engine.Analyze()
	if err != nil {
		log.Fatal(err)
	}

	var firstInsecure *core.SinkReport
	for _, s := range report.Sinks {
		verdict := "ok"
		if s.Insecure {
			verdict = "ALLOW-ALL VERIFIER"
			if firstInsecure == nil {
				firstInsecure = s
			}
		}
		fmt.Printf("%-70s reachable=%-5v %s\n", s.Call.Caller.SootSignature(), s.Reachable, verdict)
	}

	if firstInsecure != nil && firstInsecure.SSG != nil {
		fmt.Println("\nself-contained slicing graph of the first finding:")
		fmt.Println(firstInsecure.SSG.String())
	}
}
