// Quickstart: build a small app in memory, analyze it with BackDroid, and
// print what the targeted analysis found — the minimal end-to-end tour of
// the public pipeline (generate -> container -> engine -> report).
package main

import (
	"fmt"
	"log"

	"backdroid/internal/android"
	"backdroid/internal/appgen"
	"backdroid/internal/core"
)

func main() {
	// A 2 MB app with three embedded flows: a directly-called insecure
	// ECB cipher, an SSL verifier behind an Executor-driven Runnable, and
	// a dead-code sink that must not be reported.
	app, truth, err := appgen.Generate(appgen.Spec{
		Name:   "com.example.quickstart",
		Seed:   1,
		SizeMB: 2,
		Sinks: []appgen.SinkSpec{
			{Flow: appgen.FlowDirect, Rule: android.RuleCryptoECB, Insecure: true},
			{Flow: appgen.FlowAsyncExecutor, Rule: android.RuleSSLAllowAll, Insecure: true},
			{Flow: appgen.FlowDead, Rule: android.RuleCryptoECB, Insecure: true},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	engine, err := core.New(app, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	report, err := engine.Analyze()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("analyzed %s: %d sink calls, %.2f simulated minutes\n",
		report.App, report.Stats.SinkCallsTotal, report.Stats.SimMinutes)
	for _, s := range report.Sinks {
		fmt.Printf("\nsink %s\n  in %s\n", s.Call.Sink.Method.SootSignature(), s.Call.Caller.SootSignature())
		fmt.Printf("  reachable=%v insecure=%v values=%v\n", s.Reachable, s.Insecure, s.Values)
	}

	fmt.Printf("\nground truth had %d sinks (%d truly vulnerable)\n",
		len(truth.Sinks), countInsecure(truth))
}

func countInsecure(t *appgen.GroundTruth) int {
	n := 0
	for _, s := range t.Sinks {
		if s.Insecure {
			n++
		}
	}
	return n
}
