// Cryptoscan: scan a generated app corpus for insecure ECB cipher usage —
// the paper's crypto-misuse study (Sec. VI-A) in miniature. Prints one
// line per detected misuse with the resolved transformation string.
package main

import (
	"fmt"
	"log"

	"backdroid/internal/android"
	"backdroid/internal/appgen"
	"backdroid/internal/core"
)

func main() {
	// A small corpus mixing secure and insecure crypto flows of several
	// shapes, including one whose transformation string comes from a
	// static initializer.
	specs := []appgen.Spec{
		{Name: "com.scan.alpha", Seed: 11, SizeMB: 2, Sinks: []appgen.SinkSpec{
			{Flow: appgen.FlowDirect, Rule: android.RuleCryptoECB, Insecure: true},
			{Flow: appgen.FlowDirect, Rule: android.RuleCryptoECB, Insecure: false},
		}},
		{Name: "com.scan.beta", Seed: 12, SizeMB: 3, Sinks: []appgen.SinkSpec{
			{Flow: appgen.FlowClinit, Rule: android.RuleCryptoECB, Insecure: true},
			{Flow: appgen.FlowThread, Rule: android.RuleCryptoECB, Insecure: false},
		}},
		{Name: "com.scan.gamma", Seed: 13, SizeMB: 2, Sinks: []appgen.SinkSpec{
			{Flow: appgen.FlowChildClass, Rule: android.RuleCryptoECB, Insecure: true},
			{Flow: appgen.FlowUnregistered, Rule: android.RuleCryptoECB, Insecure: true},
		}},
	}

	// Track only the crypto sink: targeted analysis means the SSL sinks
	// are never even searched for.
	opts := core.DefaultOptions()
	opts.Sinks = []android.Sink{{
		Method:     android.CipherGetInstance,
		ParamIndex: 0,
		Rule:       android.RuleCryptoECB,
	}}

	total := 0
	for _, spec := range specs {
		app, _, err := appgen.Generate(spec)
		if err != nil {
			log.Fatal(err)
		}
		engine, err := core.New(app, opts)
		if err != nil {
			log.Fatal(err)
		}
		report, err := engine.Analyze()
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range report.InsecureSinks() {
			total++
			fmt.Printf("%s: ECB misuse in %s, transformation %v\n",
				report.App, s.Call.Caller.SootSignature(), s.Values)
		}
	}
	fmt.Printf("\n%d insecure cipher usages across %d apps\n", total, len(specs))
}
