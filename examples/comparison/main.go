// Comparison: run BackDroid and the Amandroid-style whole-app baseline on
// the same generated app, printing what each found and at what simulated
// cost — the paper's evaluation (Sec. VI) on a single app.
package main

import (
	"fmt"
	"log"

	"backdroid/internal/android"
	"backdroid/internal/appgen"
	"backdroid/internal/core"
	"backdroid/internal/wholeapp"
)

func main() {
	app, truth, err := appgen.Generate(appgen.Spec{
		Name:   "com.example.comparison",
		Seed:   23,
		SizeMB: 12,
		FanOut: 64,
		Sinks: []appgen.SinkSpec{
			{Flow: appgen.FlowDirect, Rule: android.RuleCryptoECB, Insecure: true},
			{Flow: appgen.FlowAsyncExecutor, Rule: android.RuleSSLAllowAll, Insecure: true},
			{Flow: appgen.FlowSkippedLib, Rule: android.RuleCryptoECB, Insecure: true},
			{Flow: appgen.FlowUnregistered, Rule: android.RuleCryptoECB, Insecure: true},
			{Flow: appgen.FlowSubclassSink, Rule: android.RuleSSLAllowAll, Insecure: true},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("app %s: %d instructions, %d embedded sinks\n\n",
		app.Name, app.InstructionCount(), len(truth.Sinks))

	engine, err := core.New(app, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	bd, err := engine.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BackDroid: %.2f sim-min (wall %v)\n", bd.Stats.SimMinutes, bd.Stats.WallTime.Round(1e6))
	for _, s := range bd.InsecureSinks() {
		fmt.Printf("  insecure: %s\n", s.Call.Caller.SootSignature())
	}

	wa, err := wholeapp.New(app, wholeapp.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	war, err := wa.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nWhole-app: %.2f sim-min (wall %v), timeout=%v\n",
		war.Stats.SimMinutes, war.Stats.WallTime.Round(1e6), war.TimedOut)
	for _, f := range war.InsecureFindings() {
		fmt.Printf("  insecure: %s\n", f.Caller.SootSignature())
	}

	fmt.Println("\nexpected differences:")
	fmt.Println("  - async-executor flow: BackDroid only (baseline lacks the Executor edge)")
	fmt.Println("  - skipped-lib flow:    BackDroid only (baseline's liblist skips the package)")
	fmt.Println("  - unregistered flow:   baseline only — its false positive")
	fmt.Println("  - subclass-sink flow:  baseline only — BackDroid's documented FN")
	fmt.Println("    (rerun BackDroid with ResolveSinkSubclasses to close it)")
}
