module backdroid

go 1.24
