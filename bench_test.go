// Package backdroid's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation, plus ablations of the design choices
// DESIGN.md calls out. Benchmarks run a scaled-down corpus so they finish
// in seconds; cmd/benchrun reproduces the figures at paper scale.
package backdroid

import (
	"fmt"
	"testing"

	"backdroid/internal/android"
	"backdroid/internal/apk"
	"backdroid/internal/appgen"
	"backdroid/internal/bcsearch"
	"backdroid/internal/core"
	"backdroid/internal/experiments"
	"backdroid/internal/service"
	"backdroid/internal/testapps"
)

// benchCorpus is the scaled corpus used by the figure benchmarks.
func benchCorpus() appgen.CorpusOptions {
	return appgen.CorpusOptions{Apps: 16, Seed: 20200523, SizeScale: 0.15}
}

func runScaledCorpus(b *testing.B, cfg experiments.RunConfig) *experiments.CorpusRun {
	b.Helper()
	run, err := experiments.RunCorpus(benchCorpus(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	return run
}

// BenchmarkTable1SizeTrend regenerates Table I (app size trend 2014-2018).
func BenchmarkTable1SizeTrend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table1(int64(i) + 1)
		if len(res.Rows) != 5 {
			b.Fatal("table 1 must have 5 year rows")
		}
	}
}

// BenchmarkFig1CallGraphCost regenerates Fig. 1 (whole-app call graph
// generation time distribution).
func BenchmarkFig1CallGraphCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := runScaledCorpus(b, experiments.RunConfig{RunCallGraph: true})
		h := experiments.Fig1(run)
		if h.Total == 0 {
			b.Fatal("no call graph samples")
		}
	}
}

// BenchmarkFig7BackDroidTime regenerates Fig. 7 (BackDroid time
// distribution).
func BenchmarkFig7BackDroidTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := runScaledCorpus(b, experiments.RunConfig{RunBackDroid: true})
		h := experiments.Fig7(run)
		if h.Total == 0 {
			b.Fatal("no BackDroid samples")
		}
	}
}

// BenchmarkFig8WholeAppTime regenerates Fig. 8 (Amandroid-style time
// distribution with the timeout bar).
func BenchmarkFig8WholeAppTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := runScaledCorpus(b, experiments.RunConfig{RunWholeApp: true})
		h := experiments.Fig8(run)
		if h.Total == 0 {
			b.Fatal("no whole-app samples")
		}
	}
}

// BenchmarkFig9SinkScaling regenerates Fig. 9 (#sink calls vs BackDroid
// time).
func BenchmarkFig9SinkScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := runScaledCorpus(b, experiments.RunConfig{RunBackDroid: true})
		f := experiments.Fig9(run)
		if len(f.Points) == 0 || f.AvgSinksPerApp <= 0 {
			b.Fatal("no Fig. 9 points")
		}
	}
}

// BenchmarkHeadlineSpeedup regenerates the Sec. VI-B headline comparison
// (median times, speedup, timeout rates).
func BenchmarkHeadlineSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := runScaledCorpus(b, experiments.RunConfig{
			RunBackDroid: true, RunWholeApp: true, RunCallGraph: true,
		})
		h := experiments.Headline(run)
		if h.Speedup <= 1 {
			b.Fatalf("speedup = %.1f, expected >1", h.Speedup)
		}
	}
}

// BenchmarkDetectionComparison regenerates the Sec. VI-C detection
// accuracy comparison against ground truth.
func BenchmarkDetectionComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := runScaledCorpus(b, experiments.RunConfig{
			RunBackDroid: true, RunWholeApp: true,
		})
		d := experiments.Detection(run)
		if d.TrueVulns == 0 {
			b.Fatal("corpus embedded no vulnerabilities")
		}
	}
}

// BenchmarkCacheAndLoopStats regenerates the Sec. IV-F engineering
// statistics (cache rates, loop detection).
func BenchmarkCacheAndLoopStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := runScaledCorpus(b, experiments.RunConfig{RunBackDroid: true})
		s := experiments.CacheStats(run)
		if s.SearchRateAvg <= 0 {
			b.Fatal("no cache statistics")
		}
	}
}

// BenchmarkClinitReachability verifies the Sec. IV-C recursive
// static-initializer search against ground truth.
func BenchmarkClinitReachability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := runScaledCorpus(b, experiments.RunConfig{RunBackDroid: true})
		c := experiments.ClinitCheck(run)
		if c.Claimed != c.Confirmed {
			b.Fatalf("clinit reachability %d/%d: recursive search over-claimed",
				c.Confirmed, c.Claimed)
		}
	}
}

// benchAblationApp generates a mid-size app with enough sinks and flow
// variety that the engineering enhancements have measurable effect.
func benchAblationApp(b *testing.B) *apk.App {
	b.Helper()
	var sinks []appgen.SinkSpec
	flows := []appgen.Flow{
		appgen.FlowDirect, appgen.FlowThread, appgen.FlowClinit,
		appgen.FlowAsyncExecutor, appgen.FlowCallback, appgen.FlowICC,
		appgen.FlowChildClass, appgen.FlowSuperPoly, appgen.FlowDead,
	}
	for i := 0; i < 24; i++ {
		rule := android.RuleCryptoECB
		if i%3 == 0 {
			rule = android.RuleSSLAllowAll
		}
		sinks = append(sinks, appgen.SinkSpec{
			Flow: flows[i%len(flows)], Rule: rule, Insecure: i%4 == 0,
		})
	}
	app, _, err := appgen.Generate(appgen.Spec{
		Name: "com.bench.ablation", Seed: 77, SizeMB: 6, Sinks: sinks,
	})
	if err != nil {
		b.Fatal(err)
	}
	return app
}

// benchFixtureEngine runs BackDroid over the ablation app with the given
// options, reporting simulated work units alongside wall time.
func benchFixtureEngine(b *testing.B, opts core.Options) {
	b.Helper()
	app := benchAblationApp(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := core.New(app, opts)
		if err != nil {
			b.Fatal(err)
		}
		r, err := e.Analyze()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Stats.WorkUnits), "workunits/op")
	}
}

// BenchmarkAblationSearchCache compares the engine with and without the
// Sec. IV-F search command cache.
func BenchmarkAblationSearchCache(b *testing.B) {
	b.Run("on", func(b *testing.B) {
		benchFixtureEngine(b, core.DefaultOptions())
	})
	b.Run("off", func(b *testing.B) {
		opts := core.DefaultOptions()
		opts.EnableSearchCache = false
		benchFixtureEngine(b, opts)
	})
}

// BenchmarkAblationSinkCache compares with and without the sink
// reachability cache.
func BenchmarkAblationSinkCache(b *testing.B) {
	b.Run("on", func(b *testing.B) {
		benchFixtureEngine(b, core.DefaultOptions())
	})
	b.Run("off", func(b *testing.B) {
		opts := core.DefaultOptions()
		opts.EnableSinkCache = false
		benchFixtureEngine(b, opts)
	})
}

// BenchmarkAblationLoopDetection compares loop detection against the
// depth-bound-only fallback.
func BenchmarkAblationLoopDetection(b *testing.B) {
	b.Run("on", func(b *testing.B) {
		benchFixtureEngine(b, core.DefaultOptions())
	})
	b.Run("off", func(b *testing.B) {
		opts := core.DefaultOptions()
		opts.EnableLoopDetection = false
		opts.MaxDepth = 12 // rely on the bound alone
		benchFixtureEngine(b, opts)
	})
}

// BenchmarkAblationFieldSearch compares the static-field write search
// against analyzing every contained method (Sec. V-A).
func BenchmarkAblationFieldSearch(b *testing.B) {
	b.Run("search", func(b *testing.B) {
		benchFixtureEngine(b, core.DefaultOptions())
	})
	b.Run("all-contained", func(b *testing.B) {
		opts := core.DefaultOptions()
		opts.AnalyzeAllContained = true
		benchFixtureEngine(b, opts)
	})
}

// BenchmarkAblationSinkSubclass compares the default initial sink search
// against the class-hierarchy-aware variant that removes the paper's two
// false negatives.
func BenchmarkAblationSinkSubclass(b *testing.B) {
	b.Run("default", func(b *testing.B) {
		benchFixtureEngine(b, core.DefaultOptions())
	})
	b.Run("subclass-aware", func(b *testing.B) {
		opts := core.DefaultOptions()
		opts.ResolveSinkSubclasses = true
		benchFixtureEngine(b, opts)
	})
}

// corpusSearchCost runs BackDroid over the scaled corpus with the given
// search backend and returns the total charged line-scans, postings visits
// and work units across all apps.
func corpusSearchCost(b *testing.B, kind bcsearch.BackendKind) (lines, postings, units int64) {
	b.Helper()
	opts := core.DefaultOptions()
	opts.SearchBackend = kind
	run := runScaledCorpus(b, experiments.RunConfig{RunBackDroid: true, BackDroidOptions: &opts})
	for _, a := range run.Apps {
		lines += a.BackDroid.Stats.Search.LinesScanned
		postings += a.BackDroid.Stats.Search.PostingsScanned
		units += a.BackDroid.Stats.WorkUnits
	}
	return lines, postings, units
}

// BenchmarkSearchLinearVsIndexed is the backend ablation of the DESIGN.md
// Sec. 3 refactor: the same corpus analyzed with the paper-faithful linear
// scanner and with the inverted-index backend. The benchmark is
// self-checking — the indexed backend must charge strictly fewer
// line-scan units (and strictly less total simulated work) than linear,
// or the index is not doing its job.
func BenchmarkSearchLinearVsIndexed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		linLines, _, linUnits := corpusSearchCost(b, bcsearch.BackendLinear)
		idxLines, idxPostings, idxUnits := corpusSearchCost(b, bcsearch.BackendIndexed)
		if idxLines >= linLines {
			b.Fatalf("indexed scanned %d lines, linear %d — index must scan strictly fewer", idxLines, linLines)
		}
		if idxUnits >= linUnits {
			b.Fatalf("indexed charged %d units, linear %d — index must be strictly cheaper", idxUnits, linUnits)
		}
		b.ReportMetric(float64(linLines), "linear-lines/op")
		b.ReportMetric(float64(idxLines), "indexed-lines/op")
		b.ReportMetric(float64(idxPostings), "indexed-postings/op")
		b.ReportMetric(float64(linUnits)/float64(idxUnits), "search-speedup")
	}
}

// BenchmarkSearchShardedIndex ablates the sharded index against both
// neighbors: it must charge strictly less than the paper-faithful linear
// scan (the parallel shard build is the critical-path charge) while
// returning results the parity tests pin as identical. Reported metrics
// feed the CI bench gate next to the linear-vs-indexed numbers.
func BenchmarkSearchShardedIndex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		linLines, _, linUnits := corpusSearchCost(b, bcsearch.BackendLinear)
		shLines, shPostings, shUnits := corpusSearchCost(b, bcsearch.BackendSharded)
		if shLines >= linLines {
			b.Fatalf("sharded scanned %d lines, linear %d — shards must scan strictly fewer", shLines, linLines)
		}
		if shUnits >= linUnits {
			b.Fatalf("sharded charged %d units, linear %d — shards must be strictly cheaper", shUnits, linUnits)
		}
		b.ReportMetric(float64(shLines), "sharded-lines/op")
		b.ReportMetric(float64(shPostings), "sharded-postings/op")
		b.ReportMetric(float64(linUnits)/float64(shUnits), "sharded-speedup")
	}
}

// BenchmarkIndexCacheWarmCorpus measures the persistent-cache payoff: the
// same corpus analyzed cold (tokenizing and writing cache files) and warm
// (loading them). The warm run must charge zero index builds and strictly
// less total work — the benchmark self-checks the cache contract the CI
// gate also enforces.
func BenchmarkIndexCacheWarmCorpus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		opts := core.DefaultOptions()
		opts.SearchBackend = bcsearch.BackendSharded
		cfg := experiments.RunConfig{RunBackDroid: true, BackDroidOptions: &opts, IndexCacheDir: dir}
		measure := func() (builds int, units int64) {
			run := runScaledCorpus(b, cfg)
			for _, a := range run.Apps {
				builds += a.BackDroid.Stats.Search.IndexBuilds
				units += a.BackDroid.Stats.WorkUnits
			}
			return builds, units
		}
		coldBuilds, coldUnits := measure()
		warmBuilds, warmUnits := measure()
		if coldBuilds == 0 {
			b.Fatal("cold corpus run built no indexes")
		}
		if warmBuilds != 0 {
			b.Fatalf("warm corpus run built %d indexes, want 0", warmBuilds)
		}
		if warmUnits >= coldUnits {
			b.Fatalf("warm run charged %d units, cold %d — cache not cheaper", warmUnits, coldUnits)
		}
		b.ReportMetric(float64(coldUnits), "cold-units/op")
		b.ReportMetric(float64(warmUnits), "warm-units/op")
		b.ReportMetric(float64(coldUnits)/float64(warmUnits), "cache-speedup")
	}
}

// BenchmarkWarmStartEndToEnd measures the fully-warm engine path: the
// first run over an app writes the persistent bundle (index + dump), the
// second loads both. The benchmark is self-checking — the warm run must
// perform zero disassembly and zero index builds, charge strictly less
// total simulated work than the cold run, and report identical verdicts.
func BenchmarkWarmStartEndToEnd(b *testing.B) {
	app := benchAblationApp(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		b.StartTimer()
		opts := core.DefaultOptions()
		opts.SearchBackend = bcsearch.BackendSharded
		opts.IndexCacheDir = dir

		analyze := func() *core.Report {
			e, err := core.New(app, opts)
			if err != nil {
				b.Fatal(err)
			}
			r, err := e.Analyze()
			if err != nil {
				b.Fatal(err)
			}
			return r
		}
		cold := analyze()
		warm := analyze()

		cs, ws := cold.Stats, warm.Stats
		if cs.DumpCacheHits != 0 || cs.DumpCacheMisses != 1 || cs.DumpLinesDisassembled == 0 {
			b.Fatalf("cold run dump stats = %+v, want one probe miss and a real disassembly", cs)
		}
		if ws.DumpCacheHits != 1 || ws.DumpLinesDisassembled != 0 {
			b.Fatalf("warm run dump stats = %+v, want a hit and zero disassembly", ws)
		}
		if ws.Search.IndexBuilds != 0 || ws.Search.IndexCacheHits != 1 {
			b.Fatalf("warm run index stats = %+v, want a pure cache load", ws.Search)
		}
		if ws.WorkUnits >= cs.WorkUnits {
			b.Fatalf("warm run charged %d units, cold %d — warm must be strictly cheaper", ws.WorkUnits, cs.WorkUnits)
		}
		if len(cold.Sinks) != len(warm.Sinks) {
			b.Fatal("warm run changed the sink set")
		}
		for j := range cold.Sinks {
			c, w := cold.Sinks[j], warm.Sinks[j]
			if c.Reachable != w.Reachable || c.Insecure != w.Insecure {
				b.Fatalf("sink %d verdict differs cold/warm", j)
			}
		}
		b.ReportMetric(float64(cs.WorkUnits), "cold-units/op")
		b.ReportMetric(float64(ws.WorkUnits), "warm-units/op")
		b.ReportMetric(float64(cs.WorkUnits)/float64(ws.WorkUnits), "warm-speedup")
	}
}

// BenchmarkManySinkOutlier measures the tuned per-app SSG on the Fig. 9
// 121-sink outlier analogue: all sinks funnel through a shared config
// chain, so per-sink graphs rebuild the same subgraph 121 times while the
// per-app graph (slice interning + one forward pass) builds it once. The
// benchmark is self-checking — per-app must charge strictly less total
// work with identical verdicts.
func BenchmarkManySinkOutlier(b *testing.B) {
	app, truth, err := appgen.Generate(appgen.ManySinkOutlierSpec(4242))
	if err != nil {
		b.Fatal(err)
	}
	if len(truth.Sinks) != 121 {
		b.Fatalf("outlier app has %d sinks, want 121", len(truth.Sinks))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analyze := func(perApp bool) *core.Report {
			opts := core.DefaultOptions()
			opts.PerAppSSG = perApp
			e, err := core.New(app, opts)
			if err != nil {
				b.Fatal(err)
			}
			r, err := e.Analyze()
			if err != nil {
				b.Fatal(err)
			}
			return r
		}
		perSink := analyze(false)
		perApp := analyze(true)

		if len(perSink.Sinks) != len(perApp.Sinks) || len(perSink.Sinks) != 121 {
			b.Fatalf("sink counts differ: per-sink %d, per-app %d", len(perSink.Sinks), len(perApp.Sinks))
		}
		for j := range perSink.Sinks {
			s, a := perSink.Sinks[j], perApp.Sinks[j]
			if s.Reachable != a.Reachable || s.Insecure != a.Insecure {
				b.Fatalf("sink %d (%s): per-sink (r=%v,i=%v) vs per-app (r=%v,i=%v)",
					j, s.Call.Caller.SootSignature(), s.Reachable, s.Insecure, a.Reachable, a.Insecure)
			}
		}
		su, au := perSink.Stats.WorkUnits, perApp.Stats.WorkUnits
		if au >= su {
			b.Fatalf("per-app SSG charged %d units, per-sink %d — sharing must be strictly cheaper on the outlier", au, su)
		}
		b.ReportMetric(float64(su), "per-sink-units/op")
		b.ReportMetric(float64(au), "per-app-units/op")
		b.ReportMetric(float64(su)/float64(au), "per-app-speedup")
	}
}

// BenchmarkBatchServiceReuse measures the batch-service payoff: the same
// corpus submitted twice through one scheduler with an in-memory
// content-addressed bundle store. The benchmark is self-checking — the
// second pass must perform zero disassembly, zero index builds and hit
// the store once per app, charge strictly less than the first pass, and
// report identical verdicts.
func BenchmarkBatchServiceReuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := core.DefaultOptions()
		opts.SearchBackend = bcsearch.BackendSharded
		sched := service.New(service.Config{
			Workers: 4,
			Options: &opts,
			Store:   service.NewBundleStore(0),
		})
		cfg := experiments.RunConfig{RunBackDroid: true, Scheduler: sched}
		measure := func() (c struct {
			builds, storeHits int
			cold              int64
			units             int64
		}, det string) {
			run, err := experiments.RunCorpus(benchCorpus(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			for _, a := range run.Apps {
				s := a.BackDroid.Stats
				c.builds += s.Search.IndexBuilds
				c.storeHits += s.BundleStoreHits
				c.cold += s.DumpLinesDisassembled
				c.units += s.WorkUnits
				for _, sk := range a.BackDroid.Sinks {
					det += fmt.Sprintf("%s r=%v i=%v %v\n", sk.Call, sk.Reachable, sk.Insecure, sk.Values)
				}
			}
			return c, det
		}
		first, firstDet := measure()
		second, secondDet := measure()
		sched.Close()

		if first.builds == 0 || first.cold == 0 {
			b.Fatal("first pass performed no real work")
		}
		if second.builds != 0 || second.cold != 0 {
			b.Fatalf("second pass built %d indexes, disassembled %d lines — store not hitting", second.builds, second.cold)
		}
		if second.storeHits != benchCorpus().Apps {
			b.Fatalf("second pass hit the store %d times, want one per app", second.storeHits)
		}
		if second.units >= first.units {
			b.Fatalf("second pass charged %d units, first %d — reuse must be strictly cheaper", second.units, first.units)
		}
		if firstDet != secondDet {
			b.Fatal("store reuse changed the detection output")
		}
		b.ReportMetric(float64(first.units), "first-units/op")
		b.ReportMetric(float64(second.units), "second-units/op")
		b.ReportMetric(float64(first.units)/float64(second.units), "reuse-speedup")
	}
}

// BenchmarkCorpusWorkers measures the wall-clock effect of the bounded
// worker pool on the scaled corpus (results are identical for any worker
// count; only elapsed time changes).
func BenchmarkCorpusWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run, err := experiments.RunCorpus(benchCorpus(),
					experiments.RunConfig{RunBackDroid: true, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if len(run.Apps) == 0 {
					b.Fatal("empty corpus run")
				}
			}
		})
	}
}

// BenchmarkEnginePreprocessing measures the per-app preprocessing cost
// (multidex merge + disassembly + index construction).
func BenchmarkEnginePreprocessing(b *testing.B) {
	app, err := testapps.Fixture()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.New(app, core.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
