package bcsearch

import (
	"fmt"
	"testing"

	"backdroid/internal/dex"
	"backdroid/internal/dexdump"
	"backdroid/internal/simtime"
)

// parallelConfig builds a sharded engine config with parallel lookups on
// and the hot-token threshold forced down so every lookup fans out.
func parallelConfig(text *dexdump.Text, shards int) Config {
	return Config{
		Meter:             simtime.NewMeter(),
		Backend:           BackendSharded,
		Plan:              dexdump.PackagePrefixPlan(text, shards),
		BuildWorkers:      2,
		ParallelLookups:   true,
		ParallelLookupMin: 1,
	}
}

// TestParallelLookupParity pins the determinism contract of the fan-out:
// for several shard counts, a parallel-lookup engine returns hits bitwise
// identical to the sequential lazy-merge engine for every fixture query.
func TestParallelLookupParity(t *testing.T) {
	text := searchFixture(t)
	for _, shards := range []int{2, 3, 7} {
		seq := NewEngine(text, Config{
			Meter: simtime.NewMeter(), Backend: BackendSharded,
			Plan: dexdump.PackagePrefixPlan(text, shards), BuildWorkers: 2,
		})
		par := NewEngine(text, parallelConfig(text, shards))
		seqHits := runFixtureQueries(t, seq)
		parHits := runFixtureQueries(t, par)
		if !hitsEqual(seqHits, parHits) {
			t.Errorf("shards=%d: parallel hits differ from sequential: %v vs %v",
				shards, summarize(parHits), summarize(seqHits))
		}
		if st := par.Stats(); st.ParallelLookups == 0 {
			t.Errorf("shards=%d: no lookup fanned out despite threshold 1: %+v", shards, st)
		}
		if st := seq.Stats(); st.ParallelLookups != 0 {
			t.Errorf("shards=%d: sequential engine reported fan-outs: %+v", shards, st)
		}
	}
}

// hotTokenFixture builds a dump where one invoke target is genuinely hot:
// thousands of call sites spread over several packages, so its postings
// list is large and lands in every shard of a package-prefix plan.
func hotTokenFixture(t *testing.T) (*dexdump.Text, dex.MethodRef) {
	t.Helper()
	f := dex.NewFile()
	target := dex.NewMethodRef("com.hot.Target", "work", dex.Void)
	tc := dex.NewClass("com.hot.Target")
	tc.StaticMethod("work", dex.Void).ReturnVoid().Done()
	if err := f.AddClass(tc.Build()); err != nil {
		t.Fatal(err)
	}
	for i, pkg := range []string{"com.alpha", "com.beta", "org.gamma", "org.delta", "net.eps", "net.zeta"} {
		c := dex.NewClass(fmt.Sprintf("%s.Caller%d", pkg, i))
		m := c.StaticMethod("spam", dex.Void)
		for j := 0; j < 600; j++ {
			m.InvokeStatic(target)
		}
		m.ReturnVoid().Done()
		if err := f.AddClass(c.Build()); err != nil {
			t.Fatal(err)
		}
	}
	return dexdump.Disassemble(f), target
}

// TestParallelLookupCheaperOnHotTokens pins the cost model: for a hot
// token whose postings spread across shards, the fan-out (max per-shard
// visit + flat overhead + merge critical path) charges strictly less than
// the sequential full visit — while postings/merge accounting and hits
// stay identical.
func TestParallelLookupCheaperOnHotTokens(t *testing.T) {
	text, target := hotTokenFixture(t)
	seqMeter, parMeter := simtime.NewMeter(), simtime.NewMeter()
	seq := NewEngine(text, Config{
		Meter: seqMeter, Backend: BackendSharded,
		Plan: dexdump.PackagePrefixPlan(text, 3), BuildWorkers: 2,
	})
	par := NewEngine(text, Config{
		Meter: parMeter, Backend: BackendSharded,
		Plan: dexdump.PackagePrefixPlan(text, 3), BuildWorkers: 2,
		ParallelLookups: true, // default hot-token threshold
	})
	seqHits, err := seq.FindInvocations(target)
	if err != nil {
		t.Fatal(err)
	}
	parHits, err := par.FindInvocations(target)
	if err != nil {
		t.Fatal(err)
	}
	if !hitsEqual(seqHits, parHits) {
		t.Fatal("hot-token parallel hits differ from sequential")
	}
	if len(seqHits) < DefaultParallelLookupMin {
		t.Fatalf("fixture produced only %d hits — not a hot token", len(seqHits))
	}
	ss, ps := seq.Stats(), par.Stats()
	if ps.ParallelLookups != 1 {
		t.Fatalf("hot token did not fan out: %+v", ps)
	}
	if ps.PostingsScanned != ss.PostingsScanned || ps.MergedPostings != ss.MergedPostings {
		t.Errorf("accounting differs: parallel %+v vs sequential %+v", ps, ss)
	}
	// Same index build charge on both sides, so total units compare the
	// lookup paths directly.
	if parMeter.Units() >= seqMeter.Units() {
		t.Errorf("hot-token fan-out charged %d units total, sequential %d — must be strictly cheaper",
			parMeter.Units(), seqMeter.Units())
	}
}

// TestParallelLookupColdTokenGate pins the hot-token gate: with the
// default threshold, the tiny fixture's lookups stay sequential (no
// fan-out, identical charges), so cold tokens never pay coordination
// overhead.
func TestParallelLookupColdTokenGate(t *testing.T) {
	text := searchFixture(t)
	seqMeter, parMeter := simtime.NewMeter(), simtime.NewMeter()
	seq := NewEngine(text, Config{
		Meter: seqMeter, Backend: BackendSharded,
		Plan: dexdump.PackagePrefixPlan(text, 3), BuildWorkers: 2,
	})
	par := NewEngine(text, Config{
		Meter: parMeter, Backend: BackendSharded,
		Plan: dexdump.PackagePrefixPlan(text, 3), BuildWorkers: 2,
		ParallelLookups: true, // threshold left at DefaultParallelLookupMin
	})
	seqHits := runFixtureQueries(t, seq)
	parHits := runFixtureQueries(t, par)
	if !hitsEqual(seqHits, parHits) {
		t.Error("gated parallel engine returned different hits")
	}
	if st := par.Stats(); st.ParallelLookups != 0 {
		t.Errorf("fixture tokens are cold; %d lookups fanned out", st.ParallelLookups)
	}
	if parMeter.Units() != seqMeter.Units() {
		t.Errorf("gated parallel engine charged %d units, sequential %d — cold path must charge identically",
			parMeter.Units(), seqMeter.Units())
	}
}

// TestParallelLookupWithBundleCache pins the composition the acceptance
// criterion names: an engine that loads its sharded index from a warm
// bundle and fans lookups out still answers every query identically.
func TestParallelLookupWithBundleCache(t *testing.T) {
	text := searchFixture(t)
	path := dexdump.CachePath(t.TempDir(), "app")

	cold := NewEngine(text, Config{
		Meter: simtime.NewMeter(), Backend: BackendSharded,
		Plan: dexdump.PackagePrefixPlan(text, 3), BuildWorkers: 2, CachePath: path,
	})
	wantHits := runFixtureQueries(t, cold)

	cfg := parallelConfig(text, 3)
	cfg.CachePath = path
	warm := NewEngine(text, cfg)
	warmHits := runFixtureQueries(t, warm)
	st := warm.Stats()
	if st.IndexCacheHits != 1 || st.IndexBuilds != 0 {
		t.Errorf("warm parallel engine stats = %+v, want a pure cache load", st)
	}
	if st.ParallelLookups == 0 {
		t.Error("warm parallel engine never fanned out")
	}
	if !hitsEqual(warmHits, wantHits) {
		t.Error("warm parallel hits differ from cold sequential hits")
	}
}
