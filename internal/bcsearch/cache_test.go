package bcsearch

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"backdroid/internal/dex"
	"backdroid/internal/dexdump"
	"backdroid/internal/simtime"
)

func cacheConfig(meter *simtime.Meter, path string, backend BackendKind) Config {
	return Config{Meter: meter, Backend: backend, CachePath: path}
}

// runFixtureQueries drives a representative command mix through an engine
// and returns the concatenated hits.
func runFixtureQueries(t *testing.T, e *Engine) []Hit {
	t.Helper()
	ref := dex.NewMethodRef("com.connectsdk.service.netcast.NetcastHttpServer", "start", dex.Void)
	var all []Hit
	for _, run := range []func() ([]Hit, error){
		func() ([]Hit, error) { return e.FindInvocations(ref) },
		func() ([]Hit, error) { return e.FindNewInstance("com.connectsdk.service.netcast.NetcastHttpServer") },
		func() ([]Hit, error) { return e.FindClassUses("com.connectsdk.service.netcast.NetcastHttpServer") },
		func() ([]Hit, error) { return e.FindInvocationsOfNamePrefix("start") },
	} {
		hits, err := run()
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, hits...)
	}
	return all
}

// TestPersistentCacheWarmRun pins the acceptance criterion of the
// persistent cache: a cold run tokenizes and writes the cache file, a
// warm run over the same dump loads it — zero index builds, zero
// tokenization charge — and returns identical hits for strictly less
// simulated work.
func TestPersistentCacheWarmRun(t *testing.T) {
	for _, backend := range []BackendKind{BackendIndexed, BackendSharded} {
		t.Run(backend.String(), func(t *testing.T) {
			text := searchFixture(t)
			path := dexdump.CachePath(t.TempDir(), "fixture.app")

			coldMeter := simtime.NewMeter()
			cold := NewEngine(text, cacheConfig(coldMeter, path, backend))
			coldHits := runFixtureQueries(t, cold)
			cs := cold.Stats()
			if cs.IndexBuilds != 1 || cs.IndexCacheHits != 0 || cs.IndexCacheMisses != 1 {
				t.Fatalf("cold run stats = %+v, want 1 build / 0 hits / 1 miss", cs)
			}
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("cold run did not write the cache file: %v", err)
			}

			warmMeter := simtime.NewMeter()
			warm := NewEngine(text, cacheConfig(warmMeter, path, backend))
			warmHits := runFixtureQueries(t, warm)
			ws := warm.Stats()
			if ws.IndexBuilds != 0 {
				t.Errorf("warm run built the index %d times, want 0 (tokenization must be skipped)", ws.IndexBuilds)
			}
			if ws.IndexCacheHits != 1 || ws.IndexCacheMisses != 0 {
				t.Errorf("warm run cache stats = %+v, want 1 hit / 0 misses", ws)
			}
			if !hitsEqual(coldHits, warmHits) {
				t.Errorf("warm hits differ from cold hits: %v vs %v", summarize(warmHits), summarize(coldHits))
			}
			if warmMeter.Units() >= coldMeter.Units() {
				t.Errorf("warm run charged %d units, cold %d — cache load must be cheaper than tokenization",
					warmMeter.Units(), coldMeter.Units())
			}
			if ws.ShardCount != cs.ShardCount {
				t.Errorf("warm shard count = %d, cold = %d", ws.ShardCount, cs.ShardCount)
			}
		})
	}
}

// TestPersistentCacheInvalidation pins the rebuild-on-invalid behavior:
// truncated files, corrupted payloads, stale content hashes and codec
// version bumps all fall back to a clean rebuild — silently, with
// identical search results — and repair the file on disk.
func TestPersistentCacheInvalidation(t *testing.T) {
	text := searchFixture(t)
	dir := t.TempDir()

	// Reference: an uncached engine.
	wantHits := runFixtureQueries(t, NewEngine(text, Config{Backend: BackendSharded}))

	// Seed one valid cache file to derive corruptions from.
	seedPath := dexdump.CachePath(dir, "seed")
	seed := NewEngine(text, cacheConfig(simtime.NewMeter(), seedPath, BackendSharded))
	runFixtureQueries(t, seed)
	good, err := os.ReadFile(seedPath)
	if err != nil {
		t.Fatal(err)
	}

	staleHash := append([]byte(nil), good...)
	staleHash[9] ^= 0xff
	versionBump := append([]byte(nil), good...)
	binary.LittleEndian.PutUint16(versionBump[4:6], dexdump.CodecVersion+1)
	// The index payload starts right after the 28-byte v2 header; flip and
	// truncate inside it (damage past it lands in the dump section, which
	// by design does not invalidate the index — see
	// TestPersistentCacheDumpSectionDamage).
	payloadFlip := append([]byte(nil), good...)
	payloadFlip[40] ^= 0x01

	cases := map[string][]byte{
		"truncated":    good[:40],
		"empty":        {},
		"garbage":      []byte("not a cache file at all"),
		"stale-hash":   staleHash,
		"version-bump": versionBump,
		"payload-flip": payloadFlip,
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			path := dexdump.CachePath(dir, name)
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			e := NewEngine(text, cacheConfig(simtime.NewMeter(), path, BackendSharded))
			hits := runFixtureQueries(t, e)
			st := e.Stats()
			if st.IndexBuilds != 1 || st.IndexCacheHits != 0 || st.IndexCacheMisses != 1 {
				t.Errorf("stats = %+v, want silent rebuild (1 build / 0 hits / 1 miss)", st)
			}
			if !hitsEqual(hits, wantHits) {
				t.Errorf("rebuild after %s cache returned different hits", name)
			}
			// The invalid file was repaired: a fresh engine now loads it.
			again := NewEngine(text, cacheConfig(simtime.NewMeter(), path, BackendSharded))
			runFixtureQueries(t, again)
			if st := again.Stats(); st.IndexCacheHits != 1 || st.IndexBuilds != 0 {
				t.Errorf("cache file not repaired after %s: %+v", name, st)
			}
		})
	}
}

// TestPersistentCacheDumpSectionDamage pins the section isolation of the
// bundle: damage confined to the dump section leaves the index section
// loadable — the searcher still reports an index cache hit with identical
// hits, since dump validation is the engine's concern, not the
// searcher's.
func TestPersistentCacheDumpSectionDamage(t *testing.T) {
	text := searchFixture(t)
	path := dexdump.CachePath(t.TempDir(), "app")
	seed := NewEngine(text, cacheConfig(simtime.NewMeter(), path, BackendSharded))
	wantHits := runFixtureQueries(t, seed)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-1] ^= 0x01 // inside the dump payload
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(text, cacheConfig(simtime.NewMeter(), path, BackendSharded))
	hits := runFixtureQueries(t, e)
	if st := e.Stats(); st.IndexCacheHits != 1 || st.IndexBuilds != 0 {
		t.Errorf("stats = %+v, want an index cache hit despite dump damage", st)
	}
	if !hitsEqual(hits, wantHits) {
		t.Error("dump-section damage changed index search results")
	}
}

// TestPersistentCacheUnwritableDir pins the best-effort write: an engine
// pointed at an unwritable cache location still analyzes correctly.
func TestPersistentCacheUnwritableDir(t *testing.T) {
	text := searchFixture(t)
	path := filepath.Join(t.TempDir(), "file-not-dir")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// CachePath nests under an existing *file*, so MkdirAll/write fail.
	e := NewEngine(text, cacheConfig(simtime.NewMeter(), filepath.Join(path, "app.bdx"), BackendIndexed))
	hits := runFixtureQueries(t, e)
	want := runFixtureQueries(t, NewEngine(text, Config{Backend: BackendIndexed}))
	if !hitsEqual(hits, want) {
		t.Error("unwritable cache dir changed search results")
	}
	if st := e.Stats(); st.IndexBuilds != 1 {
		t.Errorf("stats = %+v, want one in-memory build", st)
	}
}

// TestPersistentCacheLayoutMismatch pins the config-consistency rule: a
// cache file written under one shard layout must not be loaded by a
// searcher configured for another, or an explicit -shards override (or
// an unsharded ablation) would silently inherit a stale layout and skew
// charged work. The mismatching engine rebuilds with its own layout and
// repairs the file.
func TestPersistentCacheLayoutMismatch(t *testing.T) {
	text := searchFixture(t)
	path := dexdump.CachePath(t.TempDir(), "app")

	// Seed the cache with a 4-shard layout.
	seed := NewEngine(text, Config{
		Meter: simtime.NewMeter(), Backend: BackendSharded,
		Plan: dexdump.PackagePrefixPlan(text, 4), CachePath: path,
	})
	runFixtureQueries(t, seed)
	if st := seed.Stats(); st.ShardCount != 4 {
		t.Fatalf("seed shard count = %d, want 4", st.ShardCount)
	}

	// An unsharded engine must not load the 4-shard file.
	indexed := NewEngine(text, cacheConfig(simtime.NewMeter(), path, BackendIndexed))
	runFixtureQueries(t, indexed)
	if st := indexed.Stats(); st.IndexBuilds != 1 || st.IndexCacheHits != 0 || st.ShardCount != 1 {
		t.Errorf("indexed engine loaded a sharded cache: %+v", st)
	}

	// A different shard count must not load the (now 1-shard) file either.
	two := NewEngine(text, Config{
		Meter: simtime.NewMeter(), Backend: BackendSharded,
		Plan: dexdump.PackagePrefixPlan(text, 2), CachePath: path,
	})
	runFixtureQueries(t, two)
	if st := two.Stats(); st.IndexBuilds != 1 || st.IndexCacheHits != 0 || st.ShardCount != 2 {
		t.Errorf("2-shard engine loaded a mismatched cache: %+v", st)
	}

	// Matching layout now hits the repaired file.
	again := NewEngine(text, Config{
		Meter: simtime.NewMeter(), Backend: BackendSharded,
		Plan: dexdump.PackagePrefixPlan(text, 2), CachePath: path,
	})
	runFixtureQueries(t, again)
	if st := again.Stats(); st.IndexCacheHits != 1 || st.IndexBuilds != 0 {
		t.Errorf("matching layout did not reuse the cache: %+v", st)
	}
}
