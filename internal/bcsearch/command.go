package bcsearch

import (
	"strings"

	"backdroid/internal/dex"
)

// CommandKind enumerates the search command families of Sec. IV. Every
// family except CmdRaw has a dedicated postings list in the inverted index;
// CmdRaw is an arbitrary-substring scan and always runs linearly.
type CommandKind int

// Command kinds.
const (
	CmdRaw CommandKind = iota + 1
	CmdInvoke
	CmdCtor
	CmdNewInstance
	CmdConstClass
	CmdConstString
	CmdFieldAccess
	CmdClassUse
	CmdInvokeName
	CmdInvokeNamePrefix
)

// Command is one reified search command. The same Command drives both
// backends: LinearScanner applies Match to every dump line, IndexedSearcher
// applies Match only to the candidate lines its postings lookup returns, so
// hit semantics are defined in exactly one place.
type Command struct {
	Kind CommandKind
	// Arg is the kind-specific operand: the raw pattern (CmdRaw), the full
	// dexdump method signature (CmdInvoke), the "Lcls;.<init>:" prefix
	// (CmdCtor), the class descriptor (CmdNewInstance, CmdConstClass,
	// CmdClassUse), the string value (CmdConstString), the field signature
	// (CmdFieldAccess) or the ".name:descriptor" needle (CmdInvokeName).
	Arg string
	// Field selects the access direction for CmdFieldAccess.
	Field FieldAccessKind
}

// RawCommand searches for an arbitrary substring.
func RawCommand(pattern string) Command {
	return Command{Kind: CmdRaw, Arg: pattern}
}

// InvokeCommand searches for call sites of the exact method signature.
func InvokeCommand(ref dex.MethodRef) Command {
	return Command{Kind: CmdInvoke, Arg: ref.DexSignature()}
}

// CtorCommand searches for invoke-direct sites of any constructor of the
// class.
func CtorCommand(class string) Command {
	return Command{Kind: CmdCtor, Arg: string(dex.T(class)) + ".<init>:"}
}

// NewInstanceCommand searches for new-instance allocations of the class.
func NewInstanceCommand(class string) Command {
	return Command{Kind: CmdNewInstance, Arg: string(dex.T(class))}
}

// ConstClassCommand searches for const-class literals of the class.
func ConstClassCommand(class string) Command {
	return Command{Kind: CmdConstClass, Arg: string(dex.T(class))}
}

// ConstStringCommand searches for const-string literals with the exact
// value.
func ConstStringCommand(value string) Command {
	return Command{Kind: CmdConstString, Arg: value}
}

// FieldAccessCommand searches for accesses of the field signature.
func FieldAccessCommand(ref dex.FieldRef, kind FieldAccessKind) Command {
	return Command{Kind: CmdFieldAccess, Arg: ref.DexSignature(), Field: kind}
}

// ClassUseCommand searches for any reference to the class descriptor.
func ClassUseCommand(class string) Command {
	return Command{Kind: CmdClassUse, Arg: string(dex.T(class))}
}

// InvokeNameCommand searches for call sites by method name and descriptor
// regardless of declaring class.
func InvokeNameCommand(name, descriptor string) Command {
	return Command{Kind: CmdInvokeName, Arg: "." + name + ":" + descriptor}
}

// InvokeNamePrefixCommand searches for call sites by method name alone,
// regardless of declaring class and descriptor — the ".name:" pattern of
// the two-time ICC search's first pass (Sec. IV-D). Unlike the raw
// substring command it replaces, it is indexable, so the indexed backends
// answer it from postings instead of an O(lines) scan.
func InvokeNamePrefixCommand(name string) Command {
	return Command{Kind: CmdInvokeNamePrefix, Arg: "." + name + ":"}
}

// Key returns the cache key of the command (paper Sec. IV-F: the command
// string is the cache key).
func (c Command) Key() string {
	switch c.Kind {
	case CmdRaw:
		return "raw:" + c.Arg
	case CmdInvoke:
		return "invoke:" + c.Arg
	case CmdCtor:
		return "ctor:" + c.Arg
	case CmdNewInstance:
		return "new:" + c.Arg
	case CmdConstClass:
		return "const-class:" + c.Arg
	case CmdConstString:
		return "const-string:" + c.Arg
	case CmdFieldAccess:
		switch c.Field {
		case FieldReads:
			return "field-read:" + c.Arg
		case FieldWrites:
			return "field-write:" + c.Arg
		}
		return "field:" + c.Arg
	case CmdClassUse:
		return "class-use:" + c.Arg
	case CmdInvokeName:
		return "invoke-name:" + c.Arg
	case CmdInvokeNamePrefix:
		return "invoke-name-prefix:" + c.Arg
	}
	return "unknown:" + c.Arg
}

// Match reports whether the dump line satisfies the command. These are the
// paper-faithful grep predicates; both backends defer to them, so a
// postings lookup can only narrow the candidate set, never change what a
// hit means.
func (c Command) Match(line string) bool {
	switch c.Kind {
	case CmdRaw:
		return strings.Contains(line, c.Arg)
	case CmdInvoke:
		return strings.Contains(line, "invoke-") && strings.HasSuffix(line, ", "+c.Arg)
	case CmdCtor:
		return strings.Contains(line, "invoke-direct") && strings.Contains(line, c.Arg)
	case CmdNewInstance:
		return strings.Contains(line, "new-instance") && strings.HasSuffix(line, ", "+c.Arg)
	case CmdConstClass:
		return strings.Contains(line, "const-class") && strings.HasSuffix(line, ", "+c.Arg)
	case CmdConstString:
		return strings.Contains(line, "const-string") && strings.Contains(line, "\""+c.Arg+"\"")
	case CmdFieldAccess:
		if !strings.Contains(line, c.Arg) {
			return false
		}
		isGet := strings.Contains(line, "iget") || strings.Contains(line, "sget")
		isPut := strings.Contains(line, "iput") || strings.Contains(line, "sput")
		switch c.Field {
		case FieldReads:
			return isGet
		case FieldWrites:
			return isPut
		default:
			return isGet || isPut
		}
	case CmdClassUse:
		return strings.Contains(line, c.Arg)
	case CmdInvokeName:
		return strings.Contains(line, "invoke-") && strings.HasSuffix(line, c.Arg)
	case CmdInvokeNamePrefix:
		return strings.Contains(line, "invoke-") && strings.Contains(line, c.Arg)
	}
	return false
}
