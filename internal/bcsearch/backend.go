package bcsearch

import (
	"fmt"
	"sort"
	"strings"

	"backdroid/internal/dexdump"
	"backdroid/internal/simtime"
)

// BackendKind selects the search backend implementation.
type BackendKind int

// Backends. BackendIndexed is the zero value so an unset knob gets the
// fast path; the linear scanner is kept for paper-faithful ablations;
// BackendSharded splits the index per classesN.dex (or per package
// prefix) so construction parallelizes and postings stay shard-local.
const (
	BackendIndexed BackendKind = iota
	BackendLinear
	BackendSharded
)

// String names the backend as the CLI flags spell it.
func (k BackendKind) String() string {
	switch k {
	case BackendIndexed:
		return "indexed"
	case BackendLinear:
		return "linear"
	case BackendSharded:
		return "sharded"
	}
	return fmt.Sprintf("backend(%d)", int(k))
}

// ParseBackend parses a CLI backend name.
func ParseBackend(s string) (BackendKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "indexed", "index":
		return BackendIndexed, nil
	case "linear", "scan":
		return BackendLinear, nil
	case "sharded", "shards", "shard":
		return BackendSharded, nil
	}
	return BackendIndexed, fmt.Errorf("bcsearch: unknown backend %q (want indexed, sharded or linear)", s)
}

// Cost is the work one command execution performed, for the Stats
// accounting. Meter charging happens inside the backend (so timeouts abort
// a command exactly as the paper's budget regime demands); Cost lets the
// Engine report the same quantities without double charging.
type Cost struct {
	Lines          int64 // dump lines visited by a full scan
	Postings       int64 // index postings visited
	Merged         int64 // postings merged across shard lists
	ParallelFanout bool  // the lookup fanned out per shard on the pool
	IndexBuilt     bool  // this command triggered the one-time index build
	IndexLoaded    bool  // the index came from the persistent cache instead
	IndexCacheMiss bool  // a cache probe failed (missing/stale/corrupt file)
	Shards         int   // shard count of the built/loaded index
}

// Searcher executes one uncached search command over the dump text. The
// caching front-end (Engine) sits on top of a Searcher, so backends only
// see cache misses.
type Searcher interface {
	Kind() BackendKind
	Run(cmd Command) ([]Hit, Cost, error)
}

// NewSearcher constructs the backend the config selects.
func NewSearcher(text *dexdump.Text, cfg Config) Searcher {
	if cfg.Backend == BackendLinear {
		return NewLinearScanner(text, cfg.Meter)
	}
	s := NewIndexedSearcher(text, cfg.Meter)
	s.kind = cfg.Backend
	s.cachePath = cfg.CachePath
	s.bundleBytes = cfg.BundleBytes
	s.buildWorkers = cfg.BuildWorkers
	s.fingerprint = cfg.AppFingerprint
	s.refreshBundle = cfg.RefreshBundle
	s.parallelLookups = cfg.ParallelLookups
	s.parallelMin = cfg.ParallelLookupMin
	s.autoParallelMin = cfg.AutoParallelLookupMin
	s.storeBundle = cfg.StoreBundle
	s.deltaBuild = cfg.DeltaBuild
	s.deltaLines = cfg.DeltaIndexLines
	s.deltaReuseLines = cfg.DeltaReuseIndexLines
	if s.parallelMin <= 0 {
		s.parallelMin = DefaultParallelLookupMin
	}
	if cfg.Backend == BackendSharded {
		s.plan = cfg.Plan
		if s.plan == nil {
			s.plan = dexdump.PackagePrefixPlan(text, DefaultShards)
		}
	}
	return s
}

// collect verifies candidate lines against the command predicate and
// attributes each hit to its containing method.
func collect(text *dexdump.Text, cmd Command, candidates []int32) []Hit {
	lines := text.Lines()
	var hits []Hit
	for _, n := range candidates {
		line := lines[n]
		if !cmd.Match(line) {
			continue
		}
		h := Hit{Line: int(n), Text: line}
		if m, ok := text.MethodAt(int(n)); ok {
			h.Method = m
		}
		hits = append(hits, h)
	}
	return hits
}

// LinearScanner is the paper-faithful backend: every command is a full
// O(lines) grep over the dump text (Fig. 3 steps 1-2). Kept for ablations
// against the indexed backend.
type LinearScanner struct {
	text  *dexdump.Text
	meter *simtime.Meter
}

// NewLinearScanner builds the linear backend.
func NewLinearScanner(text *dexdump.Text, meter *simtime.Meter) *LinearScanner {
	return &LinearScanner{text: text, meter: meter}
}

// Kind identifies the backend.
func (s *LinearScanner) Kind() BackendKind { return BackendLinear }

// Run scans every dump line, charging the meter for the full pass.
func (s *LinearScanner) Run(cmd Command) ([]Hit, Cost, error) {
	return scanAll(s.text, s.meter, cmd)
}

// scanAll is the shared full-scan path (also the indexed backend's raw
// fallback). The charge lands before the scan so an exhausted budget kills
// the command without producing hits, exactly as before the refactor.
func scanAll(text *dexdump.Text, meter *simtime.Meter, cmd Command) ([]Hit, Cost, error) {
	cost := Cost{Lines: int64(text.LineCount())}
	if err := meter.ChargeLines(text.LineCount()); err != nil {
		return nil, cost, err
	}
	lines := text.Lines()
	var hits []Hit
	for i, line := range lines {
		if !cmd.Match(line) {
			continue
		}
		h := Hit{Line: i, Text: line}
		if m, ok := text.MethodAt(i); ok {
			h.Method = m
		}
		hits = append(hits, h)
	}
	return hits, cost, nil
}

// IndexedSearcher resolves commands from an inverted index over the dump
// text: each command touches only its postings list, O(hits) instead of
// O(lines). The index is acquired lazily on the first indexable command —
// loaded from the persistent cache when one is configured and valid,
// otherwise built (as a single merged index, or as per-shard indexes
// constructed concurrently when a shard plan is set) and charged to the
// meter then, so apps that are never searched pay nothing. Raw substring
// commands cannot be indexed and fall back to a full scan.
//
// An IndexedSearcher is not safe for concurrent use — like the Engine on
// top of it, it is a per-app object (the corpus pipeline gives every
// worker its own engine). Shard construction parallelism is internal and
// invisible to callers.
type IndexedSearcher struct {
	text  *dexdump.Text
	meter *simtime.Meter
	src   dexdump.Source

	kind            BackendKind
	plan            *dexdump.ShardPlan // non-nil selects a sharded build
	cachePath       string             // non-empty enables the persistent cache
	bundleBytes     []byte             // pre-read bundle content (avoids a second read)
	buildWorkers    int                // shard build concurrency (wall-clock only)
	fingerprint     uint64             // app fingerprint stored in written bundles
	refreshBundle   bool               // rewrite the bundle even on an index cache hit
	parallelLookups bool               // fan hot-token lookups out per shard
	parallelMin     int                // postings threshold for fanning out
	autoParallelMin bool               // derive parallelMin from the postings distribution
	storeBundle     func(data []byte)  // in-memory bundle store capture seam
	deltaBuild      bool               // charge index builds at the delta model
	deltaLines      int                // dump lines of changed+added classes
	deltaReuseLines int                // dump lines of unchanged classes
}

// DefaultShards is the package-prefix shard count used when the sharded
// backend is selected without an explicit plan. Fixed (never derived from
// the machine) so simulated time stays deterministic.
const DefaultShards = 4

// DefaultParallelLookupMin is the total-postings threshold above which a
// parallel-lookup searcher fans a sharded lookup out on the worker pool.
// Below it the fan-out coordination would cost more than the sequential
// visit saves, so cold tokens keep the lazy sequential path. Fixed so
// charged work stays deterministic.
const DefaultParallelLookupMin = 64

// AutoParallelLookupFloor is the lowest fan-out threshold the auto-tuned
// gate (Config.AutoParallelLookupMin) will derive: below it the flat
// fan-out overhead always outweighs the critical-path saving, no matter
// how flat the app's postings distribution is.
const AutoParallelLookupFloor = 8

// NewIndexedSearcher builds the single-index backend; the index itself is
// built lazily. Use NewSearcher to configure sharding and caching.
func NewIndexedSearcher(text *dexdump.Text, meter *simtime.Meter) *IndexedSearcher {
	return &IndexedSearcher{text: text, meter: meter, kind: BackendIndexed}
}

// Kind identifies the backend.
func (s *IndexedSearcher) Kind() BackendKind { return s.kind }

// Run resolves the command from the index, acquiring it first if needed.
func (s *IndexedSearcher) Run(cmd Command) ([]Hit, Cost, error) {
	if cmd.Kind == CmdRaw {
		return scanAll(s.text, s.meter, cmd)
	}
	var cost Cost
	if s.src == nil {
		if err := s.acquire(&cost); err != nil {
			return nil, cost, err
		}
	}
	if sharded, ok := s.src.(*dexdump.ShardedIndex); ok && s.parallelLookups && sharded.ShardCount() > 1 {
		return s.runParallel(cmd, sharded, cost)
	}
	candidates := s.lookup(cmd)
	cost.Postings = int64(len(candidates))
	if err := s.meter.ChargePostings(len(candidates)); err != nil {
		return nil, cost, err
	}
	if s.src.ShardCount() > 1 {
		// Lazy merge of the per-shard lists — charged per posting merged.
		cost.Merged = int64(len(candidates))
		if err := s.meter.ChargeShardMerge(len(candidates)); err != nil {
			return nil, cost, err
		}
	}
	return collect(s.text, cmd, candidates), cost, nil
}

// runParallel resolves one command against a sharded index with the
// per-shard fetches fanned out on the worker pool. Results are bitwise
// identical to the sequential lazy path — the per-shard lists are merged
// in shard order — only the cost model changes: for hot tokens (total
// postings >= the threshold) the visit charge is the max per-shard list
// plus a flat fan-out overhead, modeling the fetches running concurrently;
// the cross-shard merge stays charged at its critical path exactly as on
// the lazy path. Cold tokens fall back to sequential charging so the
// fan-out overhead never makes a cheap lookup dearer.
func (s *IndexedSearcher) runParallel(cmd Command, sharded *dexdump.ShardedIndex, cost Cost) ([]Hit, Cost, error) {
	get := shardGetter(cmd)
	if get == nil {
		return nil, cost, fmt.Errorf("bcsearch: no shard getter for command kind %v", cmd.Kind)
	}
	workers := s.buildWorkers
	lists := sharded.LookupShards(get, workers)
	total, maxPer := 0, 0
	for _, p := range lists {
		total += len(p)
		if len(p) > maxPer {
			maxPer = len(p)
		}
	}
	cost.Postings = int64(total)
	if total >= s.parallelMin {
		cost.ParallelFanout = true
		if err := s.meter.ChargeParallelLookup(maxPer); err != nil {
			return nil, cost, err
		}
	} else if err := s.meter.ChargePostings(total); err != nil {
		return nil, cost, err
	}
	candidates := dexdump.MergeShardLists(lists)
	cost.Merged = int64(len(candidates))
	if err := s.meter.ChargeShardMerge(len(candidates)); err != nil {
		return nil, cost, err
	}
	return collect(s.text, cmd, candidates), cost, nil
}

// acquire obtains the postings source: persistent bundle first (any
// invalid index section — missing, truncated, stale hash, unknown
// version, or a shard layout other than the one this searcher was
// configured with — is a silent miss), then a charged build, written back
// to the bundle best-effort so the next analysis of the same dump starts
// warm. When the engine signalled that its dump probe missed
// (refreshBundle), an index cache hit still rewrites the file as a full
// bundle, upgrading legacy index-only files and self-healing damaged dump
// sections so the next run can skip disassembly too.
func (s *IndexedSearcher) acquire(cost *Cost) error {
	if s.cachePath != "" || len(s.bundleBytes) != 0 {
		if src, err := s.loadCachedIndex(); err == nil && src.ShardCount() == s.wantShards() {
			// Deserialization is charged at the cheap cache-load rate;
			// no tokenization happens on this path.
			if err := s.meter.ChargeIndexCacheLoad(s.text.LineCount()); err != nil {
				return err
			}
			s.src = src
			cost.IndexLoaded = true
			cost.Shards = src.ShardCount()
			if s.refreshBundle {
				s.publishBundle()
			} else if s.storeBundle != nil && len(s.bundleBytes) != 0 {
				// The bytes already hold a validated full bundle (the
				// engine's dump probe hit on them); share them as-is.
				s.storeBundle(s.bundleBytes)
			}
			s.deriveParallelMin()
			return nil
		}
		cost.IndexCacheMiss = true
	}
	if err := s.chargeBuild(); err != nil {
		return err
	}
	if s.plan != nil {
		s.src = dexdump.BuildShardedIndex(s.text, s.plan, s.buildWorkers)
	} else {
		s.src = dexdump.BuildIndex(s.text)
	}
	cost.IndexBuilt = true
	cost.Shards = s.src.ShardCount()
	s.publishBundle()
	s.deriveParallelMin()
	return nil
}

// chargeBuild charges the meter for the one-time index build. Three
// models share this seam, all charging the same real work differently:
// the plain build tokenizes every dump line; the sharded build charges
// its critical path (largest shard) plus per-shard coordination overhead;
// the delta build (Config.DeltaBuild) tokenizes only the changed and
// added classes' lines at the build rate and carries the unchanged
// classes over at the delta-reuse rate — the previous version's bundle
// already tokenized them, and the manifest diff proved them identical.
// The built index is bitwise identical under every model; only the
// charged cost differs.
func (s *IndexedSearcher) chargeBuild() error {
	if s.deltaBuild {
		if err := s.meter.ChargeIndexBuild(s.deltaLines); err != nil {
			return err
		}
		if s.plan != nil {
			if err := s.meter.Charge(int64(simtime.ShardOverheadUnits * s.plan.Shards())); err != nil {
				return err
			}
		}
		return s.meter.ChargeDeltaReuse(s.deltaReuseLines)
	}
	if s.plan != nil {
		// Shards tokenize in parallel: the charge is the critical path
		// (largest shard) plus per-shard coordination overhead.
		return s.meter.ChargeShardedIndexBuild(s.plan.MaxShardLines(), s.plan.Shards())
	}
	// One-time tokenization pass, charged like the linear scan it is
	// (plus a tokenization factor — see simtime.IndexBuildLinesPerUnit).
	return s.meter.ChargeIndexBuild(s.text.LineCount())
}

// publishBundle encodes the current dump and index once and hands the
// bytes to every configured consumer: the persistent cache file and the
// in-memory store seam. Best-effort — a failed encode or write must never
// fail the analysis.
func (s *IndexedSearcher) publishBundle() {
	if s.cachePath == "" && s.storeBundle == nil {
		return
	}
	data, err := dexdump.EncodeBundle(s.text, s.src, s.fingerprint, s.plan)
	if err != nil {
		return
	}
	if s.cachePath != "" {
		_ = dexdump.WriteBundleBytes(s.cachePath, data)
	}
	if s.storeBundle != nil {
		s.storeBundle(data)
	}
}

// deriveParallelMin recomputes the hot-token fan-out gate from the
// acquired index's per-token postings distribution: the p95 list length,
// floored at AutoParallelLookupFloor so tiny apps keep the sequential
// path. Depends only on the index contents, so charged work stays
// deterministic across runs and machines.
func (s *IndexedSearcher) deriveParallelMin() {
	if !s.autoParallelMin || s.src == nil {
		return
	}
	lengths := s.src.TokenListLengths()
	if len(lengths) == 0 {
		return
	}
	sort.Ints(lengths)
	gate := lengths[len(lengths)*95/100]
	if gate < AutoParallelLookupFloor {
		gate = AutoParallelLookupFloor
	}
	s.parallelMin = gate
}

// loadCachedIndex decodes the bundle's index section — from the bytes the
// engine already read for its dump probe when available, from disk
// otherwise.
func (s *IndexedSearcher) loadCachedIndex() (dexdump.Source, error) {
	if len(s.bundleBytes) != 0 {
		return dexdump.DecodeIndexFile(s.bundleBytes, s.text)
	}
	return dexdump.LoadIndexCache(s.cachePath, s.text)
}

// wantShards is the shard count this searcher's configuration produces —
// a cached file with any other layout must not be loaded, or an explicit
// -shards override (or an unsharded ablation run) would silently get
// whichever layout happened to write the cache first, skewing charged
// work.
func (s *IndexedSearcher) wantShards() int {
	if s.plan != nil {
		return s.plan.Shards()
	}
	return 1
}

// lookup maps the command to its postings list.
func (s *IndexedSearcher) lookup(cmd Command) []int32 {
	return LookupCandidates(s.src, cmd)
}

// LookupCandidates maps a command to its candidate postings in the given
// source — the single lookup shared by the indexed backend and the core
// engine's delta replay probe (which resolves a prior run's recorded
// commands against a partial index over just the changed classes).
// Candidates over-approximate; callers verify each line against
// cmd.Match. CmdRaw has no postings and returns nil.
func LookupCandidates(src dexdump.Source, cmd Command) []int32 {
	switch cmd.Kind {
	case CmdInvoke:
		return src.InvokeBySig(cmd.Arg)
	case CmdCtor:
		return src.CtorByPrefix(cmd.Arg)
	case CmdNewInstance:
		return src.NewInstance(cmd.Arg)
	case CmdConstClass:
		return src.ConstClass(cmd.Arg)
	case CmdConstString:
		return src.ConstString(cmd.Arg)
	case CmdFieldAccess:
		return src.FieldBySig(cmd.Arg)
	case CmdClassUse:
		return src.ClassUse(cmd.Arg)
	case CmdInvokeName:
		return src.InvokeByName(cmd.Arg)
	case CmdInvokeNamePrefix:
		return src.InvokeByNamePrefix(cmd.Arg)
	}
	return nil
}

// shardGetter maps the command to the per-shard lookup the parallel path
// fans out — the same per-shard methods the lazy ShardedIndex lookups
// visit sequentially, so the two paths cannot diverge.
func shardGetter(cmd Command) func(*dexdump.Index) []int32 {
	switch cmd.Kind {
	case CmdInvoke:
		return func(i *dexdump.Index) []int32 { return i.InvokeBySig(cmd.Arg) }
	case CmdCtor:
		return func(i *dexdump.Index) []int32 { return i.CtorByPrefix(cmd.Arg) }
	case CmdNewInstance:
		return func(i *dexdump.Index) []int32 { return i.NewInstance(cmd.Arg) }
	case CmdConstClass:
		return func(i *dexdump.Index) []int32 { return i.ConstClass(cmd.Arg) }
	case CmdConstString:
		return func(i *dexdump.Index) []int32 { return i.ConstString(cmd.Arg) }
	case CmdFieldAccess:
		return func(i *dexdump.Index) []int32 { return i.FieldBySig(cmd.Arg) }
	case CmdClassUse:
		return func(i *dexdump.Index) []int32 { return i.ClassUse(cmd.Arg) }
	case CmdInvokeName:
		return func(i *dexdump.Index) []int32 { return i.InvokeByName(cmd.Arg) }
	case CmdInvokeNamePrefix:
		return func(i *dexdump.Index) []int32 { return i.InvokeByNamePrefix(cmd.Arg) }
	}
	return nil
}
