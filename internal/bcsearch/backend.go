package bcsearch

import (
	"fmt"
	"strings"

	"backdroid/internal/dexdump"
	"backdroid/internal/simtime"
)

// BackendKind selects the search backend implementation.
type BackendKind int

// Backends. BackendIndexed is the zero value so an unset knob gets the
// fast path; the linear scanner is kept for paper-faithful ablations.
const (
	BackendIndexed BackendKind = iota
	BackendLinear
)

// String names the backend as the CLI flags spell it.
func (k BackendKind) String() string {
	switch k {
	case BackendIndexed:
		return "indexed"
	case BackendLinear:
		return "linear"
	}
	return fmt.Sprintf("backend(%d)", int(k))
}

// ParseBackend parses a CLI backend name.
func ParseBackend(s string) (BackendKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "indexed", "index":
		return BackendIndexed, nil
	case "linear", "scan":
		return BackendLinear, nil
	}
	return BackendIndexed, fmt.Errorf("bcsearch: unknown backend %q (want indexed or linear)", s)
}

// Cost is the work one command execution performed, for the Stats
// accounting. Meter charging happens inside the backend (so timeouts abort
// a command exactly as the paper's budget regime demands); Cost lets the
// Engine report the same quantities without double charging.
type Cost struct {
	Lines      int64 // dump lines visited by a full scan
	Postings   int64 // index postings visited
	IndexBuilt bool  // this command triggered the one-time index build
}

// Searcher executes one uncached search command over the dump text. The
// caching front-end (Engine) sits on top of a Searcher, so backends only
// see cache misses.
type Searcher interface {
	Kind() BackendKind
	Run(cmd Command) ([]Hit, Cost, error)
}

// NewSearcher constructs the backend of the given kind.
func NewSearcher(kind BackendKind, text *dexdump.Text, meter *simtime.Meter) Searcher {
	if kind == BackendLinear {
		return NewLinearScanner(text, meter)
	}
	return NewIndexedSearcher(text, meter)
}

// collect verifies candidate lines against the command predicate and
// attributes each hit to its containing method.
func collect(text *dexdump.Text, cmd Command, candidates []int32) []Hit {
	lines := text.Lines()
	var hits []Hit
	for _, n := range candidates {
		line := lines[n]
		if !cmd.Match(line) {
			continue
		}
		h := Hit{Line: int(n), Text: line}
		if m, ok := text.MethodAt(int(n)); ok {
			h.Method = m
		}
		hits = append(hits, h)
	}
	return hits
}

// LinearScanner is the paper-faithful backend: every command is a full
// O(lines) grep over the dump text (Fig. 3 steps 1-2). Kept for ablations
// against the indexed backend.
type LinearScanner struct {
	text  *dexdump.Text
	meter *simtime.Meter
}

// NewLinearScanner builds the linear backend.
func NewLinearScanner(text *dexdump.Text, meter *simtime.Meter) *LinearScanner {
	return &LinearScanner{text: text, meter: meter}
}

// Kind identifies the backend.
func (s *LinearScanner) Kind() BackendKind { return BackendLinear }

// Run scans every dump line, charging the meter for the full pass.
func (s *LinearScanner) Run(cmd Command) ([]Hit, Cost, error) {
	return scanAll(s.text, s.meter, cmd)
}

// scanAll is the shared full-scan path (also the indexed backend's raw
// fallback). The charge lands before the scan so an exhausted budget kills
// the command without producing hits, exactly as before the refactor.
func scanAll(text *dexdump.Text, meter *simtime.Meter, cmd Command) ([]Hit, Cost, error) {
	cost := Cost{Lines: int64(text.LineCount())}
	if err := meter.ChargeLines(text.LineCount()); err != nil {
		return nil, cost, err
	}
	lines := text.Lines()
	var hits []Hit
	for i, line := range lines {
		if !cmd.Match(line) {
			continue
		}
		h := Hit{Line: i, Text: line}
		if m, ok := text.MethodAt(i); ok {
			h.Method = m
		}
		hits = append(hits, h)
	}
	return hits, cost, nil
}

// IndexedSearcher resolves commands from a one-pass inverted index over
// the dump text: each command touches only its postings list, O(hits)
// instead of O(lines). The index is built lazily on the first indexable
// command and its cost is charged to the meter then, so apps that are
// never searched pay nothing. Raw substring commands cannot be indexed and
// fall back to a full scan.
//
// An IndexedSearcher is not safe for concurrent use — like the Engine on
// top of it, it is a per-app object (the corpus pipeline gives every
// worker its own engine).
type IndexedSearcher struct {
	text  *dexdump.Text
	meter *simtime.Meter
	idx   *dexdump.Index
}

// NewIndexedSearcher builds the indexed backend; the index itself is built
// lazily.
func NewIndexedSearcher(text *dexdump.Text, meter *simtime.Meter) *IndexedSearcher {
	return &IndexedSearcher{text: text, meter: meter}
}

// Kind identifies the backend.
func (s *IndexedSearcher) Kind() BackendKind { return BackendIndexed }

// Run resolves the command from the index, building it first if needed.
func (s *IndexedSearcher) Run(cmd Command) ([]Hit, Cost, error) {
	if cmd.Kind == CmdRaw {
		return scanAll(s.text, s.meter, cmd)
	}
	var cost Cost
	if s.idx == nil {
		// One-time tokenization pass, charged like the linear scan it is
		// (plus a tokenization factor — see simtime.IndexBuildLinesPerUnit).
		if err := s.meter.ChargeIndexBuild(s.text.LineCount()); err != nil {
			return nil, cost, err
		}
		s.idx = dexdump.BuildIndex(s.text)
		cost.IndexBuilt = true
	}
	candidates := s.lookup(cmd)
	cost.Postings = int64(len(candidates))
	if err := s.meter.ChargePostings(len(candidates)); err != nil {
		return nil, cost, err
	}
	return collect(s.text, cmd, candidates), cost, nil
}

// lookup maps the command to its postings list.
func (s *IndexedSearcher) lookup(cmd Command) []int32 {
	switch cmd.Kind {
	case CmdInvoke:
		return s.idx.InvokeBySig(cmd.Arg)
	case CmdCtor:
		return s.idx.CtorByPrefix(cmd.Arg)
	case CmdNewInstance:
		return s.idx.NewInstance(cmd.Arg)
	case CmdConstClass:
		return s.idx.ConstClass(cmd.Arg)
	case CmdConstString:
		return s.idx.ConstString(cmd.Arg)
	case CmdFieldAccess:
		return s.idx.FieldBySig(cmd.Arg)
	case CmdClassUse:
		return s.idx.ClassUse(cmd.Arg)
	case CmdInvokeName:
		return s.idx.InvokeByName(cmd.Arg)
	}
	return nil
}
