package bcsearch

import (
	"testing"

	"backdroid/internal/dex"
	"backdroid/internal/simtime"
)

// TestIndexedStatsCacheAccounting pins the Sec. IV-F cache accounting on
// the indexed backend: commands and cache hits count exactly as on the
// linear backend (the cache sits above the backend), the index is built
// once, and cache hits visit no postings.
func TestIndexedStatsCacheAccounting(t *testing.T) {
	e := NewEngine(searchFixture(t), Config{Meter: simtime.NewMeter(), EnableCache: true})
	if e.Backend() != BackendIndexed {
		t.Fatalf("default backend = %v, want indexed", e.Backend())
	}
	ref := dex.NewMethodRef("com.connectsdk.service.netcast.NetcastHttpServer", "start", dex.Void)

	if _, err := e.FindInvocations(ref); err != nil {
		t.Fatal(err)
	}
	first := e.Stats()
	if first.Commands != 1 || first.CacheHits != 0 {
		t.Fatalf("after miss: %+v", first)
	}
	if first.IndexBuilds != 1 || first.IndexLines == 0 {
		t.Errorf("index should be built on first indexable command: %+v", first)
	}
	if first.LinesScanned != 0 {
		t.Errorf("indexed invoke search scanned %d lines, want 0", first.LinesScanned)
	}
	if first.PostingsScanned == 0 {
		t.Errorf("indexed search visited no postings: %+v", first)
	}

	if _, err := e.FindInvocations(ref); err != nil {
		t.Fatal(err)
	}
	second := e.Stats()
	if second.Commands != 2 || second.CacheHits != 1 {
		t.Errorf("after hit: %+v", second)
	}
	if second.Rate() != 0.5 {
		t.Errorf("rate = %f, want 0.5", second.Rate())
	}
	if second.PostingsScanned != first.PostingsScanned {
		t.Errorf("cache hit visited postings: %+v vs %+v", second, first)
	}
	if second.IndexBuilds != 1 {
		t.Errorf("index rebuilt: %+v", second)
	}

	// A different command is a miss again, reusing the existing index.
	if _, err := e.FindNewInstance("com.connectsdk.service.netcast.NetcastHttpServer"); err != nil {
		t.Fatal(err)
	}
	third := e.Stats()
	if third.Commands != 3 || third.CacheHits != 1 {
		t.Errorf("after second miss: %+v", third)
	}
	if third.IndexBuilds != 1 {
		t.Errorf("index rebuilt on second miss: %+v", third)
	}
	if third.Rate() != 1.0/3.0 {
		t.Errorf("rate = %f, want 1/3", third.Rate())
	}
}

// TestIndexedCacheDisabledNoHits mirrors the linear cache-off test on the
// indexed backend: repeated commands re-run the postings lookup and never
// count as hits.
func TestIndexedCacheDisabledNoHits(t *testing.T) {
	e := NewEngine(searchFixture(t), Config{Meter: simtime.NewMeter(), EnableCache: false})
	ref := dex.NewMethodRef("com.connectsdk.service.netcast.NetcastHttpServer", "start", dex.Void)
	var prevPostings int64
	for i := 0; i < 3; i++ {
		if _, err := e.FindInvocations(ref); err != nil {
			t.Fatal(err)
		}
		st := e.Stats()
		if st.CacheHits != 0 {
			t.Fatalf("cache disabled but hits = %d", st.CacheHits)
		}
		if i > 0 && st.PostingsScanned <= prevPostings {
			t.Errorf("iteration %d: postings did not grow (%d -> %d), lookup not re-run",
				i, prevPostings, st.PostingsScanned)
		}
		prevPostings = st.PostingsScanned
	}
	if st := e.Stats(); st.Commands != 3 || st.IndexBuilds != 1 {
		t.Errorf("stats = %+v, want 3 commands / 1 index build", st)
	}
}

// TestIndexedCacheHitChargesOneUnit pins the meter contract on the
// indexed backend: a cache hit costs exactly one unit, as on linear.
func TestIndexedCacheHitChargesOneUnit(t *testing.T) {
	meter := simtime.NewMeter()
	e := NewEngine(searchFixture(t), Config{Meter: meter, EnableCache: true})
	ref := dex.NewMethodRef("com.connectsdk.service.netcast.NetcastHttpServer", "start", dex.Void)
	if _, err := e.FindInvocations(ref); err != nil {
		t.Fatal(err)
	}
	before := meter.Units()
	if before == 0 {
		t.Fatal("index build and lookup must charge the meter")
	}
	if _, err := e.FindInvocations(ref); err != nil {
		t.Fatal(err)
	}
	if got := meter.Units() - before; got != 1 {
		t.Errorf("cached command charged %d units, want 1", got)
	}
}

// TestIndexedTimeoutDuringBuild verifies an exhausted budget aborts the
// index build itself, mirroring the linear backend's scan timeout.
func TestIndexedTimeoutDuringBuild(t *testing.T) {
	meter := simtime.NewMeter()
	meter.SetBudget(1)
	e := NewEngine(searchFixture(t), Config{Meter: meter, EnableCache: true})
	ref := dex.NewMethodRef("com.connectsdk.service.netcast.NetcastHttpServer", "start", dex.Void)
	if _, err := e.FindInvocations(ref); err != simtime.ErrTimeout {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

// TestCanceledMeterStopsLookups pins the cancellation hook: once the
// meter latches a cancel, no further search command runs — not even a
// cache hit, whose single-unit charge might never reach the next
// checkpoint on its own.
func TestCanceledMeterStopsLookups(t *testing.T) {
	canceled := false
	meter := simtime.NewMeter()
	meter.SetCancel(func() bool { return canceled })
	e := NewEngine(searchFixture(t), Config{Meter: meter, EnableCache: true})
	ref := dex.NewMethodRef("com.connectsdk.service.netcast.NetcastHttpServer", "start", dex.Void)
	if _, err := e.FindInvocations(ref); err != nil {
		t.Fatal(err)
	}
	canceled = true
	// Latch the meter (the poll only runs at a charge checkpoint).
	for meter.Charge(1) == nil {
	}
	before := e.Stats().Commands
	if _, err := e.FindInvocations(ref); err != simtime.ErrCanceled {
		t.Fatalf("lookup on a canceled meter = %v, want ErrCanceled", err)
	}
	if e.Stats().Commands != before {
		t.Error("a canceled engine must not count (or serve) further commands")
	}
}
