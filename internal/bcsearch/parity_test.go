package bcsearch

import (
	"fmt"
	"testing"

	"backdroid/internal/appgen"
	"backdroid/internal/dex"
	"backdroid/internal/dexdump"
	"backdroid/internal/simtime"
)

// parityQueries derives, from a dex file, one search command of every kind
// for every plausible operand: all invoke targets and defined methods, all
// classes (defined and referenced), all string literals and all fields.
// Near-miss variants (prefixes, wrong descriptors, unknown classes) probe
// that the index does not over-match either.
func parityQueries(f *dex.File) []Command {
	var cmds []Command
	seen := make(map[string]bool)
	add := func(c Command) {
		k := c.Key()
		if seen[k] {
			return
		}
		seen[k] = true
		cmds = append(cmds, c)
	}

	addMethod := func(ref dex.MethodRef) {
		add(InvokeCommand(ref))
		add(InvokeNameCommand(ref.Name, ref.Descriptor()))
		add(InvokeNamePrefixCommand(ref.Name))
		// Near misses: same name, impossible descriptor; unknown name.
		add(InvokeNameCommand(ref.Name, "(JJJ)V"))
		add(InvokeNamePrefixCommand(ref.Name + "Nope"))
	}
	addClass := func(name string) {
		if name == "" {
			return
		}
		add(CtorCommand(name))
		add(NewInstanceCommand(name))
		add(ConstClassCommand(name))
		add(ClassUseCommand(name))
		// Near miss: a package-sibling class that does not exist.
		add(ClassUseCommand(name + "Missing"))
		add(NewInstanceCommand(name + "Missing"))
	}

	for _, c := range f.Classes() {
		addClass(c.Name)
		addClass(c.Super)
		for _, iface := range c.Interfaces {
			addClass(iface)
		}
		for _, fld := range c.Fields {
			for _, kind := range []FieldAccessKind{FieldReads, FieldWrites, FieldAny} {
				add(FieldAccessCommand(fld.Ref, kind))
			}
		}
		for _, m := range c.Methods {
			addMethod(m.Ref)
			for i := range m.Code {
				in := &m.Code[i]
				if in.Method != nil {
					addMethod(*in.Method)
					addClass(in.Method.Class)
				}
				if in.Field != nil {
					for _, kind := range []FieldAccessKind{FieldReads, FieldWrites, FieldAny} {
						add(FieldAccessCommand(*in.Field, kind))
					}
				}
				if in.Op == dex.OpConstString {
					add(ConstStringCommand(in.Str))
					// Near miss: prefix of a real literal must not match.
					if len(in.Str) > 1 {
						add(ConstStringCommand(in.Str[:len(in.Str)-1]))
					}
				}
				if in.Type != "" && in.Type.IsRef() {
					addClass(in.Type.Human())
				}
			}
		}
	}
	add(ConstStringCommand("no-such-string-anywhere"))
	add(ClassUseCommand("com.never.Defined"))
	return cmds
}

func hitsEqual(a, b []Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Line != b[i].Line || a[i].Text != b[i].Text ||
			a[i].Method.SootSignature() != b[i].Method.SootSignature() {
			return false
		}
	}
	return true
}

// TestBackendParityOnGeneratedCorpus is the property test of the backend
// split: for generated corpus apps, the IndexedSearcher — single index
// and sharded, for several shard counts — returns hit sets identical to
// the LinearScanner (line, text, containing method) for every search
// command kind. Caching is disabled on all engines so each command
// exercises the backend.
func TestBackendParityOnGeneratedCorpus(t *testing.T) {
	specs := appgen.EvalCorpus(appgen.CorpusOptions{Apps: 8, Seed: 20210621, SizeScale: 0.08})
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			app, _, err := appgen.Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			merged, err := app.MergedDex()
			if err != nil {
				t.Fatal(err)
			}
			text := dexdump.Disassemble(merged)
			linear := NewEngine(text, Config{Meter: simtime.NewMeter(), Backend: BackendLinear})

			variants := map[string]*Engine{
				"indexed": NewEngine(text, Config{Meter: simtime.NewMeter(), Backend: BackendIndexed}),
			}
			for _, shards := range []int{1, 2, 3, 7} {
				plan := dexdump.PackagePrefixPlan(text, shards)
				variants[fmt.Sprintf("sharded-%d", shards)] = NewEngine(text, Config{
					Meter: simtime.NewMeter(), Backend: BackendSharded, Plan: plan, BuildWorkers: 2,
				})
			}
			// Warm-bundle + parallel-lookup variants: the index loads from
			// a pre-written bundle and every lookup fans out per shard —
			// the acceptance composition of the warm-start fast path.
			for _, shards := range []int{2, 7} {
				plan := dexdump.PackagePrefixPlan(text, shards)
				path := dexdump.CachePath(t.TempDir(), fmt.Sprintf("bundle-%d", shards))
				if err := dexdump.WriteBundle(path, text, dexdump.BuildShardedIndex(text, plan, 2), 0, plan); err != nil {
					t.Fatal(err)
				}
				variants[fmt.Sprintf("bundle-par-%d", shards)] = NewEngine(text, Config{
					Meter: simtime.NewMeter(), Backend: BackendSharded, Plan: plan, BuildWorkers: 2,
					CachePath: path, ParallelLookups: true, ParallelLookupMin: 1,
				})
			}

			cmds := parityQueries(merged)
			if len(cmds) < 50 {
				t.Fatalf("only %d parity queries derived — generator too small to be meaningful", len(cmds))
			}
			mismatches := 0
			for _, cmd := range cmds {
				lh, err := linear.Run(cmd)
				if err != nil {
					t.Fatal(err)
				}
				for name, e := range variants {
					ih, err := e.Run(cmd)
					if err != nil {
						t.Fatal(err)
					}
					if !hitsEqual(lh, ih) {
						mismatches++
						if mismatches <= 5 {
							t.Errorf("command %q: linear %d hits, %s %d hits\n  linear: %v\n  %s: %v",
								cmd.Key(), len(lh), name, len(ih), summarize(lh), name, summarize(ih))
						}
					}
				}
			}
			if mismatches > 0 {
				t.Fatalf("%d command/backend pairs disagree with linear", mismatches)
			}
		})
	}
}

func summarize(hits []Hit) []string {
	out := make([]string, 0, len(hits))
	for i, h := range hits {
		if i == 4 {
			out = append(out, fmt.Sprintf("... %d more", len(hits)-i))
			break
		}
		out = append(out, fmt.Sprintf("#%d %q", h.Line, h.Text))
	}
	return out
}

// TestBackendParityAdversarialLiterals pins the literal-spoofing corner:
// a const-string whose value embeds a mnemonic plus a signature satisfies
// the linear backend's Contains predicates, so the index's side lists must
// surface those lines as candidates too.
func TestBackendParityAdversarialLiterals(t *testing.T) {
	f := dex.NewFile()
	victim := dex.NewClass("com.adv.Victim").Field("f", dex.Int)
	fld := dex.NewFieldRef("com.adv.Victim", "f", dex.Int)
	use := victim.Method("use", dex.Void)
	r := use.Reg()
	use.IGet(r, use.This(), fld).ReturnVoid().Done()
	if err := f.AddClass(victim.Build()); err != nil {
		t.Fatal(err)
	}

	logger := dex.NewClass("com.adv.Logger")
	logm := logger.Method("log", dex.Void)
	logm.ConstString(logm.Reg(), "iget v1, v2, Lcom/adv/Victim;.f:I").
		ConstString(logm.Reg(), "invoke-direct {v0}, Lcom/adv/Victim;.<init>:()V trace").
		ConstString(logm.Reg(), "sput is mentioned but no signature here").
		ReturnVoid().Done()
	if err := f.AddClass(logger.Build()); err != nil {
		t.Fatal(err)
	}

	text := dexdump.Disassemble(f)
	linear := NewEngine(text, Config{Backend: BackendLinear})
	indexed := NewEngine(text, Config{Backend: BackendIndexed})

	cmds := []Command{
		FieldAccessCommand(fld, FieldReads),
		FieldAccessCommand(fld, FieldWrites),
		FieldAccessCommand(fld, FieldAny),
		CtorCommand("com.adv.Victim"),
		ClassUseCommand("com.adv.Victim"),
		// The literal embeds "invoke-direct ... .<init>:" — the prefix
		// command's linear grep matches it, so the index side list must
		// surface it too.
		InvokeNamePrefixCommand("<init>"),
		InvokeNamePrefixCommand("use"),
	}
	for _, cmd := range cmds {
		lh, err := linear.Run(cmd)
		if err != nil {
			t.Fatal(err)
		}
		ih, err := indexed.Run(cmd)
		if err != nil {
			t.Fatal(err)
		}
		if !hitsEqual(lh, ih) {
			t.Errorf("command %q: linear %d hits, indexed %d hits\n  linear:  %v\n  indexed: %v",
				cmd.Key(), len(lh), len(ih), summarize(lh), summarize(ih))
		}
	}
	// Sanity: the linear grep really does over-match the literal lines —
	// the property is only interesting if the spoof fires.
	reads, err := linear.FindFieldAccesses(fld, FieldReads)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) < 2 {
		t.Fatalf("spoof literal did not fire: %d read hits, want the real iget plus the literal", len(reads))
	}
}

// TestBackendParityRawSearch pins the raw-substring escape hatch: both
// backends answer arbitrary patterns (the indexed backend by falling back
// to a full scan), with identical hits.
func TestBackendParityRawSearch(t *testing.T) {
	text := searchFixture(t)
	linear := NewEngine(text, Config{Backend: BackendLinear})
	indexed := NewEngine(text, Config{Backend: BackendIndexed})
	for _, pattern := range []string{"invoke-", ".start:", "netcast", "'", "no-hit-xyz"} {
		lh, err := linear.Search(pattern)
		if err != nil {
			t.Fatal(err)
		}
		ih, err := indexed.Search(pattern)
		if err != nil {
			t.Fatal(err)
		}
		if !hitsEqual(lh, ih) {
			t.Errorf("raw %q: linear %d hits, indexed %d hits", pattern, len(lh), len(ih))
		}
	}
}
