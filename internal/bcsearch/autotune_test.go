package bcsearch

import (
	"sort"
	"testing"

	"backdroid/internal/dexdump"
	"backdroid/internal/simtime"
)

// TestAutoParallelMinDerivesFromDistribution pins the auto-tuned gate:
// once the index is acquired, the threshold equals the p95 per-token
// postings-list length (floored), not the fixed default.
func TestAutoParallelMinDerivesFromDistribution(t *testing.T) {
	text, target := hotTokenFixture(t)
	eng := NewEngine(text, Config{
		Meter: simtime.NewMeter(), Backend: BackendSharded,
		Plan: dexdump.PackagePrefixPlan(text, 3), BuildWorkers: 2,
		ParallelLookups: true, AutoParallelLookupMin: true,
	})
	if _, err := eng.FindInvocations(target); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	// Recompute the expected gate from the index itself.
	idx := dexdump.BuildShardedIndex(text, dexdump.PackagePrefixPlan(text, 3), 1)
	lengths := idx.TokenListLengths()
	sort.Ints(lengths)
	want := lengths[len(lengths)*95/100]
	if want < AutoParallelLookupFloor {
		want = AutoParallelLookupFloor
	}
	if st.ParallelLookupMin != want {
		t.Fatalf("auto gate = %d, want p95 %d", st.ParallelLookupMin, want)
	}
	if st.ParallelLookupMin == DefaultParallelLookupMin {
		t.Fatalf("auto gate landed exactly on the fixed default (%d) — fixture too bland to pin the derivation",
			DefaultParallelLookupMin)
	}
}

// TestAutoParallelMinKeepsResultsIdentical pins that auto-tuning moves
// only the cost model: hits are bitwise identical to the fixed-gate and
// sequential engines on every fixture query.
func TestAutoParallelMinKeepsResultsIdentical(t *testing.T) {
	text := searchFixture(t)
	seq := NewEngine(text, Config{
		Meter: simtime.NewMeter(), Backend: BackendSharded,
		Plan: dexdump.PackagePrefixPlan(text, 3), BuildWorkers: 2,
	})
	auto := NewEngine(text, Config{
		Meter: simtime.NewMeter(), Backend: BackendSharded,
		Plan: dexdump.PackagePrefixPlan(text, 3), BuildWorkers: 2,
		ParallelLookups: true, AutoParallelLookupMin: true,
	})
	seqHits := runFixtureQueries(t, seq)
	autoHits := runFixtureQueries(t, auto)
	if !hitsEqual(seqHits, autoHits) {
		t.Fatal("auto-tuned parallel hits differ from sequential")
	}
}

// TestAutoParallelMinFloor pins the floor: a dump whose postings lists
// are all tiny must not derive a gate below AutoParallelLookupFloor.
func TestAutoParallelMinFloor(t *testing.T) {
	text := searchFixture(t)
	eng := NewEngine(text, Config{
		Meter: simtime.NewMeter(), Backend: BackendSharded,
		Plan: dexdump.PackagePrefixPlan(text, 3), BuildWorkers: 2,
		ParallelLookups: true, AutoParallelLookupMin: true,
	})
	runFixtureQueries(t, eng)
	if st := eng.Stats(); st.ParallelLookupMin < AutoParallelLookupFloor {
		t.Fatalf("auto gate = %d, below the floor %d", st.ParallelLookupMin, AutoParallelLookupFloor)
	}
}

// TestTokenListLengthsShardedMatchesMerged pins the distribution source:
// summing one token's per-shard lists must equal the merged index's list
// for that token, so the derived gate is shard-layout independent for
// per-token totals.
func TestTokenListLengthsShardedMatchesMerged(t *testing.T) {
	text, _ := hotTokenFixture(t)
	merged := dexdump.BuildIndex(text)
	sharded := dexdump.BuildShardedIndex(text, dexdump.PackagePrefixPlan(text, 4), 1)

	sum := func(ls []int) int {
		n := 0
		for _, l := range ls {
			n += l
		}
		return n
	}
	if sum(merged.TokenListLengths()) != sum(sharded.TokenListLengths()) {
		t.Fatalf("total postings differ: merged %d vs sharded %d",
			sum(merged.TokenListLengths()), sum(sharded.TokenListLengths()))
	}
	if len(merged.TokenListLengths()) != len(sharded.TokenListLengths()) {
		t.Fatalf("distinct token counts differ: merged %d vs sharded %d",
			len(merged.TokenListLengths()), len(sharded.TokenListLengths()))
	}
}
