// Package bcsearch is the on-the-fly bytecode search engine: it greps the
// dexdump plaintext for invocation sites, object allocations, class
// literals, string constants and field accesses, and maps every hit back to
// its containing method (the paper's Fig. 3 steps 1-2).
//
// Every distinct search command and its results are cached (paper
// Sec. IV-F "search caching"); the cache hit rate statistic that the paper
// reports (avg 23.39% per app) is exposed via Stats.
package bcsearch

import (
	"strings"

	"backdroid/internal/dex"
	"backdroid/internal/dexdump"
	"backdroid/internal/simtime"
)

// Hit is one matching dump line together with its containing method — the
// "identify method in bytecode text" output.
type Hit struct {
	Line   int
	Text   string
	Method dex.MethodRef
}

// Stats counts search commands and cache hits.
type Stats struct {
	Commands  int // total search commands issued
	CacheHits int // commands answered from the cache
}

// Rate returns the cache hit rate in [0,1].
func (s Stats) Rate() float64 {
	if s.Commands == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.Commands)
}

// Engine searches one app's dump text.
type Engine struct {
	text  *dexdump.Text
	meter *simtime.Meter

	cacheEnabled bool
	cache        map[string][]Hit
	stats        Stats
}

// New builds a search engine over the dump. The meter is charged for every
// line scanned; cache hits charge a single unit.
func New(text *dexdump.Text, meter *simtime.Meter, enableCache bool) *Engine {
	return &Engine{
		text:         text,
		meter:        meter,
		cacheEnabled: enableCache,
		cache:        make(map[string][]Hit),
	}
}

// Stats returns the cache statistics so far.
func (e *Engine) Stats() Stats { return e.stats }

// run executes a raw scan over all dump lines, returning lines for which
// match returns true. The command string is the cache key.
func (e *Engine) run(command string, match func(line string) bool) ([]Hit, error) {
	e.stats.Commands++
	if e.cacheEnabled {
		if hits, ok := e.cache[command]; ok {
			e.stats.CacheHits++
			if err := e.meter.Charge(1); err != nil {
				return nil, err
			}
			return hits, nil
		}
	}
	lines := e.text.Lines()
	if err := e.meter.ChargeLines(len(lines)); err != nil {
		return nil, err
	}
	var hits []Hit
	for i, line := range lines {
		if !match(line) {
			continue
		}
		h := Hit{Line: i, Text: line}
		if m, ok := e.text.MethodAt(i); ok {
			h.Method = m
		}
		hits = append(hits, h)
	}
	if e.cacheEnabled {
		e.cache[command] = hits
	}
	return hits, nil
}

// Search scans for a raw substring across all dump lines.
func (e *Engine) Search(pattern string) ([]Hit, error) {
	return e.run("raw:"+pattern, func(line string) bool {
		return strings.Contains(line, pattern)
	})
}

// FindInvocations locates all call sites of the method with the given
// dexdump signature (e.g. "Lcom/a/B;.start:()V"). This is the basic
// signature based search of Sec. IV-A.
func (e *Engine) FindInvocations(ref dex.MethodRef) ([]Hit, error) {
	sig := ref.DexSignature()
	return e.run("invoke:"+sig, func(line string) bool {
		return strings.Contains(line, "invoke-") && strings.HasSuffix(line, ", "+sig)
	})
}

// FindConstructorCalls locates the invoke-direct sites of all constructors
// of the class — the entry step of the advanced search (Sec. IV-B).
func (e *Engine) FindConstructorCalls(class string) ([]Hit, error) {
	prefix := string(dex.T(class)) + ".<init>:"
	return e.run("ctor:"+prefix, func(line string) bool {
		return strings.Contains(line, "invoke-direct") && strings.Contains(line, prefix)
	})
}

// FindNewInstance locates new-instance allocations of the class.
func (e *Engine) FindNewInstance(class string) ([]Hit, error) {
	needle := "new-instance"
	desc := string(dex.T(class))
	return e.run("new:"+desc, func(line string) bool {
		return strings.Contains(line, needle) && strings.HasSuffix(line, ", "+desc)
	})
}

// FindConstClass locates const-class literals of the class — one half of
// the two-time ICC search (Sec. IV-D, explicit intents).
func (e *Engine) FindConstClass(class string) ([]Hit, error) {
	desc := string(dex.T(class))
	return e.run("const-class:"+desc, func(line string) bool {
		return strings.Contains(line, "const-class") && strings.HasSuffix(line, ", "+desc)
	})
}

// FindConstString locates const-string literals with the exact value — the
// other half of the ICC search (implicit intent actions).
func (e *Engine) FindConstString(value string) ([]Hit, error) {
	needle := "const-string"
	quoted := "\"" + value + "\""
	return e.run("const-string:"+value, func(line string) bool {
		return strings.Contains(line, needle) && strings.Contains(line, quoted)
	})
}

// FieldAccessKind selects which accesses FindFieldAccesses returns.
type FieldAccessKind int

// Field access kinds.
const (
	FieldReads FieldAccessKind = iota + 1
	FieldWrites
	FieldAny
)

// FindFieldAccesses locates accesses of the field with the given dexdump
// signature. BackDroid uses the write search to find methods that assign a
// tainted static field (Sec. V-A) instead of analyzing every contained
// method.
func (e *Engine) FindFieldAccesses(ref dex.FieldRef, kind FieldAccessKind) ([]Hit, error) {
	sig := ref.DexSignature()
	key := "field:" + sig
	switch kind {
	case FieldReads:
		key = "field-read:" + sig
	case FieldWrites:
		key = "field-write:" + sig
	}
	return e.run(key, func(line string) bool {
		if !strings.Contains(line, sig) {
			return false
		}
		isGet := strings.Contains(line, "iget") || strings.Contains(line, "sget")
		isPut := strings.Contains(line, "iput") || strings.Contains(line, "sput")
		switch kind {
		case FieldReads:
			return isGet
		case FieldWrites:
			return isPut
		default:
			return isGet || isPut
		}
	})
}

// FindClassUses locates every line that references the class descriptor at
// all — invocations of its methods, field accesses, allocations, literals.
// The recursive <clinit> reachability search (Sec. IV-C) is built on this.
func (e *Engine) FindClassUses(class string) ([]Hit, error) {
	desc := string(dex.T(class))
	return e.run("class-use:"+desc, func(line string) bool {
		return strings.Contains(line, desc)
	})
}

// FindInvocationsOfName locates call sites by method name and descriptor
// regardless of declaring class (".name:desc" suffix match). The optional
// class-hierarchy-aware initial sink search uses it to catch sink APIs
// invoked through app subclasses of system classes — the paper's fix for
// its two false negatives.
func (e *Engine) FindInvocationsOfName(name string, descriptor string) ([]Hit, error) {
	needle := "." + name + ":" + descriptor
	return e.run("invoke-name:"+needle, func(line string) bool {
		return strings.Contains(line, "invoke-") && strings.HasSuffix(line, needle)
	})
}

// CallersOf deduplicates the containing methods of a set of hits,
// preserving dump order.
func CallersOf(hits []Hit) []dex.MethodRef {
	seen := make(map[string]bool, len(hits))
	var out []dex.MethodRef
	for _, h := range hits {
		if h.Method.Name == "" {
			continue
		}
		key := h.Method.SootSignature()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, h.Method)
	}
	return out
}
