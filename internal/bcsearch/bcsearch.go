// Package bcsearch is the on-the-fly bytecode search engine: it greps the
// dexdump plaintext for invocation sites, object allocations, class
// literals, string constants and field accesses, and maps every hit back to
// its containing method (the paper's Fig. 3 steps 1-2).
//
// The engine is split into a caching front-end (Engine) and a pluggable
// Searcher backend. Two backends exist: the paper-faithful LinearScanner
// that greps every dump line per command, and the default IndexedSearcher
// that resolves commands from a one-pass inverted index in O(hits). Both
// answer every command identically (see DESIGN.md Sec. 3); only their cost
// profile differs.
//
// Every distinct search command and its results are cached (paper
// Sec. IV-F "search caching"); the cache hit rate statistic that the paper
// reports (avg 23.39% per app) is exposed via Stats.
package bcsearch

import (
	"backdroid/internal/dex"
	"backdroid/internal/dexdump"
	"backdroid/internal/simtime"
)

// Hit is one matching dump line together with its containing method — the
// "identify method in bytecode text" output.
type Hit struct {
	Line   int
	Text   string
	Method dex.MethodRef
}

// Stats counts search commands, cache hits and the work the backend did.
type Stats struct {
	Commands  int // total search commands issued
	CacheHits int // commands answered from the cache

	// Backend work accounting. LinesScanned counts dump lines visited by
	// full scans: every linear command, plus the indexed backend's raw
	// fallbacks. PostingsScanned counts inverted-index postings visited.
	// IndexBuilds is 0 or 1 (the index is built at most once per app) and
	// IndexLines is the dump size tokenized by that build.
	LinesScanned    int64
	PostingsScanned int64
	IndexBuilds     int
	IndexLines      int64

	// Sharded-index and persistent-cache accounting. ShardCount is the
	// shard count of the acquired index (1 for the single merged index, 0
	// until an index exists). MergedPostings counts postings streamed
	// through lazy cross-shard merges. IndexCacheHits/IndexCacheMisses
	// count persistent-cache probes: a hit replaces the tokenization pass
	// entirely, a miss (missing, truncated, stale or version-bumped file)
	// falls back to a charged build. ParallelLookups counts commands whose
	// per-shard postings fetches fanned out on the worker pool (hot tokens
	// under Config.ParallelLookups).
	ShardCount       int
	MergedPostings   int64
	IndexCacheHits   int
	IndexCacheMisses int
	ParallelLookups  int

	// ParallelLookupMin is the hot-token fan-out gate in effect — the
	// fixed default, an explicit override, or (under AutoParallelLookupMin)
	// the threshold derived from the app's postings distribution once the
	// index is acquired.
	ParallelLookupMin int
}

// Rate returns the cache hit rate in [0,1].
func (s Stats) Rate() float64 {
	if s.Commands == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.Commands)
}

// Config configures a search engine.
type Config struct {
	// Meter is charged for the work performed; nil gets a fresh unlimited
	// meter.
	Meter *simtime.Meter
	// Backend selects the search implementation; the zero value is
	// BackendIndexed.
	Backend BackendKind
	// EnableCache turns on the Sec. IV-F command cache.
	EnableCache bool

	// Plan lays out the shards of BackendSharded — typically one shard
	// per classesN.dex of the app. Nil with BackendSharded falls back to
	// DefaultShards package-prefix shards. Ignored by other backends.
	Plan *dexdump.ShardPlan
	// BuildWorkers bounds how many shards are tokenized concurrently
	// during a sharded build; <= 1 builds sequentially. Affects wall
	// clock only — charged work and results are identical for any value.
	BuildWorkers int
	// CachePath, when non-empty, enables the persistent bundle cache: the
	// built index (and the dump text) is serialized there and later
	// engines over the same dump load it instead of re-tokenizing.
	// Invalid files (corrupt, stale, old version) are rebuilt and
	// overwritten silently.
	CachePath string
	// AppFingerprint identifies the app the dump was rendered from (see
	// dexdump.AppFingerprint); it is stored in written bundles so a later
	// engine can validate the cached dump without disassembling. 0 marks
	// it unknown — the bundle is still written, but its dump section will
	// never validate on probe.
	AppFingerprint uint64
	// BundleBytes, when non-empty, is the already-read content of the
	// CachePath bundle: the engine reads the file once for its dump probe
	// and hands the bytes down, so the index section decodes from memory
	// instead of a second disk read. Writes still go to CachePath.
	BundleBytes []byte
	// RefreshBundle forces a bundle rewrite even when the index section
	// loads from the cache. The engine sets it after its dump probe missed
	// on an otherwise valid file (legacy index-only layout, or a damaged
	// dump section), so the file self-heals and the next run skips
	// disassembly.
	RefreshBundle bool
	// ParallelLookups fans the per-shard postings fetches of hot tokens
	// out on the worker pool (sharded backend only). Results are bitwise
	// identical — lists merge in shard order — and the simulated charge
	// becomes the max per-shard visit plus the merge critical path.
	ParallelLookups bool
	// ParallelLookupMin overrides the total-postings threshold above which
	// a lookup fans out; 0 uses DefaultParallelLookupMin.
	ParallelLookupMin int
	// AutoParallelLookupMin derives the fan-out threshold from the
	// acquired index's own postings distribution (the p95 per-token list
	// length, floored at AutoParallelLookupFloor) instead of the fixed
	// DefaultParallelLookupMin, so apps with unusually hot or unusually
	// flat token distributions both gate correctly. Overrides
	// ParallelLookupMin once the index is acquired; deterministic — the
	// threshold depends only on the index contents.
	AutoParallelLookupMin bool
	// StoreBundle, when non-nil, receives the encoded bundle bytes as soon
	// as the index is acquired: the freshly encoded bundle after a build or
	// a refresh, or the validated on-disk file content on a persistent
	// cache hit. The batch service's in-memory bundle store captures
	// entries through this seam without a second encode.
	StoreBundle func(data []byte)

	// DeltaBuild switches the index-build charge to the delta model: the
	// engine proved (by shard-manifest diff against the previous version's
	// bundle) that only DeltaIndexLines dump lines belong to changed or
	// added classes, so a build tokenizes those at the full index-build
	// rate and carries the remaining DeltaReuseIndexLines over at the
	// cheap delta-reuse rate. The real build still tokenizes everything —
	// the resulting index is bitwise identical to a cold build — only the
	// charged cost models the reuse, exactly like the sharded build
	// charging its critical path. Ignored on index-cache hits (those are
	// already cheaper than a delta build).
	DeltaBuild           bool
	DeltaIndexLines      int
	DeltaReuseIndexLines int
}

// Engine searches one app's dump text: it owns the command cache and
// statistics and delegates cache misses to its backend. Engines are
// per-app, single-goroutine objects; the parallel corpus pipeline creates
// one per worker.
type Engine struct {
	text    *dexdump.Text
	meter   *simtime.Meter
	backend Searcher

	cacheEnabled bool
	cache        map[string][]Hit
	stats        Stats
	observer     func(cmd Command, hits []Hit)
}

// SetObserver installs a hook that sees every successfully resolved
// command with its hits — cache hits included, so an observer recording
// which searches an analysis issued misses nothing. The core engine's
// delta path uses it to record each sink's search-command footprint; nil
// removes it.
func (e *Engine) SetObserver(fn func(cmd Command, hits []Hit)) { e.observer = fn }

// NewEngine builds a search engine over the dump with the given
// configuration.
func NewEngine(text *dexdump.Text, cfg Config) *Engine {
	if cfg.Meter == nil {
		cfg.Meter = simtime.NewMeter()
	}
	return &Engine{
		text:         text,
		meter:        cfg.Meter,
		backend:      NewSearcher(text, cfg),
		cacheEnabled: cfg.EnableCache,
		cache:        make(map[string][]Hit),
	}
}

// New builds a search engine with the default (indexed) backend. The meter
// is charged for every line or posting visited; cache hits charge a single
// unit.
func New(text *dexdump.Text, meter *simtime.Meter, enableCache bool) *Engine {
	return NewEngine(text, Config{Meter: meter, EnableCache: enableCache})
}

// Stats returns the cache and work statistics so far.
func (e *Engine) Stats() Stats {
	st := e.stats
	if s, ok := e.backend.(*IndexedSearcher); ok {
		st.ParallelLookupMin = s.parallelMin
	}
	return st
}

// Backend returns the kind of the active backend.
func (e *Engine) Backend() BackendKind { return e.backend.Kind() }

// Run executes one search command: answered from the cache when possible
// (charging a single unit), otherwise delegated to the backend. The
// command key string is the cache key (Sec. IV-F).
func (e *Engine) Run(cmd Command) ([]Hit, error) {
	// Cooperative cancellation: once the meter has latched a cancel, no
	// further lookup starts — a canceled analysis must not keep resolving
	// commands from the cache (cache hits charge a single unit, far below
	// the checkpoint interval).
	if e.meter.Canceled() {
		return nil, simtime.ErrCanceled
	}
	e.stats.Commands++
	key := cmd.Key()
	if e.cacheEnabled {
		if hits, ok := e.cache[key]; ok {
			e.stats.CacheHits++
			if err := e.meter.Charge(1); err != nil {
				return nil, err
			}
			if e.observer != nil {
				e.observer(cmd, hits)
			}
			return hits, nil
		}
	}
	hits, cost, err := e.backend.Run(cmd)
	e.stats.LinesScanned += cost.Lines
	e.stats.PostingsScanned += cost.Postings
	e.stats.MergedPostings += cost.Merged
	if cost.ParallelFanout {
		e.stats.ParallelLookups++
	}
	if cost.IndexBuilt {
		e.stats.IndexBuilds++
		e.stats.IndexLines += int64(e.text.LineCount())
	}
	if cost.IndexLoaded {
		e.stats.IndexCacheHits++
	}
	if cost.IndexCacheMiss {
		e.stats.IndexCacheMisses++
	}
	if cost.Shards > 0 {
		e.stats.ShardCount = cost.Shards
	}
	if err != nil {
		return nil, err
	}
	if e.cacheEnabled {
		e.cache[key] = hits
	}
	if e.observer != nil {
		e.observer(cmd, hits)
	}
	return hits, nil
}

// Search scans for a raw substring across all dump lines. Raw patterns
// cannot be indexed, so this is a full scan on either backend.
func (e *Engine) Search(pattern string) ([]Hit, error) {
	return e.Run(RawCommand(pattern))
}

// FindInvocations locates all call sites of the method with the given
// dexdump signature (e.g. "Lcom/a/B;.start:()V"). This is the basic
// signature based search of Sec. IV-A.
func (e *Engine) FindInvocations(ref dex.MethodRef) ([]Hit, error) {
	return e.Run(InvokeCommand(ref))
}

// FindConstructorCalls locates the invoke-direct sites of all constructors
// of the class — the entry step of the advanced search (Sec. IV-B).
func (e *Engine) FindConstructorCalls(class string) ([]Hit, error) {
	return e.Run(CtorCommand(class))
}

// FindNewInstance locates new-instance allocations of the class.
func (e *Engine) FindNewInstance(class string) ([]Hit, error) {
	return e.Run(NewInstanceCommand(class))
}

// FindConstClass locates const-class literals of the class — one half of
// the two-time ICC search (Sec. IV-D, explicit intents).
func (e *Engine) FindConstClass(class string) ([]Hit, error) {
	return e.Run(ConstClassCommand(class))
}

// FindConstString locates const-string literals with the exact value — the
// other half of the ICC search (implicit intent actions).
func (e *Engine) FindConstString(value string) ([]Hit, error) {
	return e.Run(ConstStringCommand(value))
}

// FieldAccessKind selects which accesses FindFieldAccesses returns.
type FieldAccessKind int

// Field access kinds.
const (
	FieldReads FieldAccessKind = iota + 1
	FieldWrites
	FieldAny
)

// FindFieldAccesses locates accesses of the field with the given dexdump
// signature. BackDroid uses the write search to find methods that assign a
// tainted static field (Sec. V-A) instead of analyzing every contained
// method.
func (e *Engine) FindFieldAccesses(ref dex.FieldRef, kind FieldAccessKind) ([]Hit, error) {
	return e.Run(FieldAccessCommand(ref, kind))
}

// FindClassUses locates every line that references the class descriptor at
// all — invocations of its methods, field accesses, allocations, literals.
// The recursive <clinit> reachability search (Sec. IV-C) is built on this.
func (e *Engine) FindClassUses(class string) ([]Hit, error) {
	return e.Run(ClassUseCommand(class))
}

// FindInvocationsOfName locates call sites by method name and descriptor
// regardless of declaring class (".name:desc" suffix match). The optional
// class-hierarchy-aware initial sink search uses it to catch sink APIs
// invoked through app subclasses of system classes — the paper's fix for
// its two false negatives.
func (e *Engine) FindInvocationsOfName(name string, descriptor string) ([]Hit, error) {
	return e.Run(InvokeNameCommand(name, descriptor))
}

// FindInvocationsOfNamePrefix locates call sites by method name alone
// (".name:" match), regardless of declaring class and descriptor. The
// two-time ICC search's first pass (Sec. IV-D) uses it to collect the
// startActivity/startService/sendBroadcast call sites; unlike the raw
// substring search it replaced, it resolves from postings on the indexed
// backends.
func (e *Engine) FindInvocationsOfNamePrefix(name string) ([]Hit, error) {
	return e.Run(InvokeNamePrefixCommand(name))
}

// CallersOf deduplicates the containing methods of a set of hits,
// preserving dump order.
func CallersOf(hits []Hit) []dex.MethodRef {
	seen := make(map[string]bool, len(hits))
	var out []dex.MethodRef
	for _, h := range hits {
		if h.Method.Name == "" {
			continue
		}
		key := h.Method.SootSignature()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, h.Method)
	}
	return out
}
