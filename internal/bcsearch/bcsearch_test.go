package bcsearch

import (
	"testing"

	"backdroid/internal/dex"
	"backdroid/internal/dexdump"
	"backdroid/internal/simtime"
)

// searchFixture builds the LG TV Plus shape from the paper's Fig. 3/4:
// NetcastTVService.connect() constructs NetcastTVService$1 (a Runnable)
// whose run() starts NetcastHttpServer.
func searchFixture(t *testing.T) *dexdump.Text {
	t.Helper()
	f := dex.NewFile()
	add := func(b *dex.ClassBuilder) {
		t.Helper()
		if err := f.AddClass(b.Build()); err != nil {
			t.Fatal(err)
		}
	}

	objInit := dex.NewMethodRef("java.lang.Object", "<init>", dex.Void)
	startRef := dex.NewMethodRef("com.connectsdk.service.netcast.NetcastHttpServer", "start", dex.Void)
	portField := dex.NewFieldRef("com.connectsdk.service.netcast.NetcastHttpServer", "port", dex.Int)

	server := dex.NewClass("com.connectsdk.service.netcast.NetcastHttpServer").
		Field("port", dex.Int)
	ctor := server.Constructor()
	ctor.InvokeDirect(objInit, ctor.This()).ReturnVoid().Done()
	start := server.Method("start", dex.Void)
	p := start.Reg()
	start.IGet(p, start.This(), portField).ReturnVoid().Done()
	add(server)

	anon := dex.NewClass("com.connectsdk.service.NetcastTVService$1").
		Implements("java.lang.Runnable")
	actor := anon.Constructor(dex.T("com.connectsdk.service.NetcastTVService"))
	actor.InvokeDirect(objInit, actor.This()).ReturnVoid().Done()
	run := anon.Method("run", dex.Void)
	srv := run.Reg()
	serverInit := dex.NewMethodRef("com.connectsdk.service.netcast.NetcastHttpServer", "<init>", dex.Void)
	run.New(srv, "com.connectsdk.service.netcast.NetcastHttpServer").
		InvokeDirect(serverInit, srv).
		IPut(srv, run.This(), dex.NewFieldRef("com.connectsdk.service.NetcastTVService$1", "srv", dex.T("com.connectsdk.service.netcast.NetcastHttpServer"))).
		InvokeVirtual(startRef, srv).
		ReturnVoid().Done()
	add(anon)

	svc := dex.NewClass("com.connectsdk.service.NetcastTVService")
	connect := svc.Method("connect", dex.Void)
	r := connect.Reg()
	anonInit := dex.NewMethodRef("com.connectsdk.service.NetcastTVService$1", "<init>", dex.Void,
		dex.T("com.connectsdk.service.NetcastTVService"))
	connect.New(r, "com.connectsdk.service.NetcastTVService$1").
		InvokeDirect(anonInit, r, connect.This()).
		ConstString(connect.Reg(), "netcast.ACTION_CONNECT").
		ConstClass(connect.Reg(), "com.connectsdk.service.netcast.NetcastHttpServer").
		ReturnVoid().Done()
	add(svc)

	return dexdump.Disassemble(f)
}

func newEngine(t *testing.T) *Engine {
	t.Helper()
	return New(searchFixture(t), simtime.NewMeter(), true)
}

func TestFindInvocations(t *testing.T) {
	e := newEngine(t)
	hits, err := e.FindInvocations(dex.NewMethodRef("com.connectsdk.service.netcast.NetcastHttpServer", "start", dex.Void))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("hits = %d, want 1", len(hits))
	}
	want := "<com.connectsdk.service.NetcastTVService$1: void run()>"
	if hits[0].Method.SootSignature() != want {
		t.Errorf("containing method = %s, want %s", hits[0].Method.SootSignature(), want)
	}
}

func TestFindInvocationsNoFalseSuffixMatches(t *testing.T) {
	e := newEngine(t)
	// Searching a method that is never invoked returns nothing — in
	// particular the server's own definition lines must not match.
	hits, err := e.FindInvocations(dex.NewMethodRef("com.connectsdk.service.NetcastTVService", "connect", dex.Void))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Errorf("connect() is never invoked, hits = %v", hits)
	}
}

func TestFindConstructorCalls(t *testing.T) {
	e := newEngine(t)
	hits, err := e.FindConstructorCalls("com.connectsdk.service.NetcastTVService$1")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("ctor hits = %d, want 1", len(hits))
	}
	if hits[0].Method.Name != "connect" {
		t.Errorf("ctor caller = %s, want connect", hits[0].Method.SootSignature())
	}
}

func TestFindNewInstance(t *testing.T) {
	e := newEngine(t)
	hits, err := e.FindNewInstance("com.connectsdk.service.netcast.NetcastHttpServer")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Method.Name != "run" {
		t.Errorf("new-instance hits = %v", hits)
	}
}

func TestFindConstClassAndString(t *testing.T) {
	e := newEngine(t)
	hits, err := e.FindConstClass("com.connectsdk.service.netcast.NetcastHttpServer")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Method.Name != "connect" {
		t.Errorf("const-class hits = %v", hits)
	}
	shits, err := e.FindConstString("netcast.ACTION_CONNECT")
	if err != nil {
		t.Fatal(err)
	}
	if len(shits) != 1 || shits[0].Method.Name != "connect" {
		t.Errorf("const-string hits = %v", shits)
	}
	// Substring values must not match exact search.
	none, err := e.FindConstString("netcast.ACTION")
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("partial string matched: %v", none)
	}
}

func TestFindFieldAccesses(t *testing.T) {
	e := newEngine(t)
	fld := dex.NewFieldRef("com.connectsdk.service.netcast.NetcastHttpServer", "port", dex.Int)
	reads, err := e.FindFieldAccesses(fld, FieldReads)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 1 || reads[0].Method.Name != "start" {
		t.Errorf("field reads = %v", reads)
	}
	writes, err := e.FindFieldAccesses(fld, FieldWrites)
	if err != nil {
		t.Fatal(err)
	}
	if len(writes) != 0 {
		t.Errorf("field writes = %v", writes)
	}
	all, err := e.FindFieldAccesses(fld, FieldAny)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 {
		t.Errorf("field any = %v", all)
	}
}

func TestFindClassUses(t *testing.T) {
	e := newEngine(t)
	hits, err := e.FindClassUses("com.connectsdk.service.netcast.NetcastHttpServer")
	if err != nil {
		t.Fatal(err)
	}
	// Uses appear in run() (new/init/iput/invoke) and connect()
	// (const-class), plus the class's own definition lines.
	methods := map[string]bool{}
	for _, h := range hits {
		if h.Method.Name != "" {
			methods[h.Method.Name] = true
		}
	}
	if !methods["run"] || !methods["connect"] {
		t.Errorf("class uses in methods = %v", methods)
	}
}

func TestFindInvocationsOfName(t *testing.T) {
	e := newEngine(t)
	hits, err := e.FindInvocationsOfName("start", "()V")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Method.Name != "run" {
		t.Errorf("invoke-by-name hits = %v", hits)
	}
}

func TestSearchCaching(t *testing.T) {
	e := newEngine(t)
	ref := dex.NewMethodRef("com.connectsdk.service.netcast.NetcastHttpServer", "start", dex.Void)
	if _, err := e.FindInvocations(ref); err != nil {
		t.Fatal(err)
	}
	if _, err := e.FindInvocations(ref); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Commands != 2 || st.CacheHits != 1 {
		t.Errorf("stats = %+v, want 2 commands / 1 hit", st)
	}
	if st.Rate() != 0.5 {
		t.Errorf("rate = %f, want 0.5", st.Rate())
	}
}

func TestSearchCachingDisabled(t *testing.T) {
	e := New(searchFixture(t), simtime.NewMeter(), false)
	ref := dex.NewMethodRef("com.connectsdk.service.netcast.NetcastHttpServer", "start", dex.Void)
	for i := 0; i < 3; i++ {
		if _, err := e.FindInvocations(ref); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.CacheHits != 0 {
		t.Errorf("cache disabled but hits = %d", st.CacheHits)
	}
}

func TestSearchChargesMeter(t *testing.T) {
	meter := simtime.NewMeter()
	e := New(searchFixture(t), meter, true)
	if _, err := e.Search("invoke-virtual"); err != nil {
		t.Fatal(err)
	}
	full := meter.Units()
	if full == 0 {
		t.Fatal("search must charge the meter")
	}
	// A cached repeat charges a single unit.
	if _, err := e.Search("invoke-virtual"); err != nil {
		t.Fatal(err)
	}
	if got := meter.Units() - full; got != 1 {
		t.Errorf("cached search charged %d units, want 1", got)
	}
}

func TestSearchTimeout(t *testing.T) {
	meter := simtime.NewMeter()
	meter.SetBudget(1)
	e := New(searchFixture(t), meter, true)
	if _, err := e.Search("anything"); err == nil {
		t.Error("search past budget must time out")
	}
}

func TestCallersOf(t *testing.T) {
	m1 := dex.NewMethodRef("com.a.B", "x", dex.Void)
	m2 := dex.NewMethodRef("com.a.C", "y", dex.Void)
	hits := []Hit{
		{Line: 1, Method: m1},
		{Line: 2, Method: m1},
		{Line: 3, Method: m2},
		{Line: 4}, // headerless hit: no containing method
	}
	callers := CallersOf(hits)
	if len(callers) != 2 ||
		callers[0].SootSignature() != m1.SootSignature() ||
		callers[1].SootSignature() != m2.SootSignature() {
		t.Errorf("CallersOf = %v", callers)
	}
}

func TestStatsRateEmpty(t *testing.T) {
	var s Stats
	if s.Rate() != 0 {
		t.Error("empty stats rate should be 0")
	}
}
