// Package testapps builds small hand-crafted apps with known ground truth,
// exercising every search mechanism of the paper's Sec. IV. Unit tests of
// both analyzers and the examples share these fixtures.
package testapps

import (
	"fmt"

	"backdroid/internal/android"
	"backdroid/internal/apk"
	"backdroid/internal/dex"
	"backdroid/internal/manifest"
)

// Framework method references shared by the fixture.
var (
	objInit     = dex.NewMethodRef("java.lang.Object", "<init>", dex.Void)
	activInit   = dex.NewMethodRef("android.app.Activity", "<init>", dex.Void)
	serviceInit = dex.NewMethodRef("android.app.Service", "<init>", dex.Void)
	threadInit  = dex.NewMethodRef("java.lang.Thread", "<init>", dex.Void)
	threadStart = dex.NewMethodRef("java.lang.Thread", "start", dex.Void)
	execExecute = dex.NewMethodRef("java.util.concurrent.Executor", "execute", dex.Void,
		dex.T("java.lang.Runnable"))
	intentInitExplicit = android.IntentCtorExplicit
	startServiceRef    = dex.NewMethodRef("android.content.Context", "startService",
		dex.T("android.content.ComponentName"), dex.T(android.IntentClass))
	sslFactoryInit = dex.NewMethodRef(android.SSLSocketFactoryClass, "<init>", dex.Void)
)

// Pkg is the package name of the fixture app.
const Pkg = "com.fixture.app"

// Cls qualifies a simple class name with the fixture package.
func Cls(name string) string { return Pkg + "." + name }

// Fixture builds one app exercising every search mechanism of Sec. IV:
//
//	sink A (crypto, ECB):    MainActivity.onCreate -> privateHelper (basic search, private)
//	sink B (SSL allow-all):  onCreate -> connect -> [ctor+Executor.execute] -> Anon.run -> Server.start (advanced, interface)
//	sink C (crypto, "AES"):  HttpServerService.onCreate, value via ConfigHolder.<clinit> (static track) + ICC caller
//	sink D (crypto, ECB):    UnregActivity.onCreate — unregistered component, must be unreachable
//	sink E (crypto, "DES"):  DeadCode.unused — no callers, unreachable
//	sink F (crypto, CBC):    CryptoChild (inherited, not overloaded) — child-class signature search; secure value
//	sink G (crypto, ECB):    SubServer.start overriding SuperServer.start — super-class advanced search
//	sink H (crypto, ECB):    WorkThread.run — Thread async advanced search
func Fixture() (*apk.App, error) {
	f := dex.NewFile()
	var buildErr error
	add := func(b *dex.ClassBuilder) {
		if err := f.AddClass(b.Build()); err != nil && buildErr == nil {
			buildErr = fmt.Errorf("testapps: %w", err)
		}
	}

	cipherSink := android.CipherGetInstance
	sslSink := android.SSLSetHostnameVerifier

	// --- sink A + drivers -------------------------------------------------
	main := dex.NewClass(Cls("MainActivity")).Extends(android.ActivityClass)
	ctor := main.Constructor()
	ctor.InvokeDirect(activInit, ctor.This()).ReturnVoid().Done()

	helper := main.PrivateMethod("privateHelper", dex.Void)
	{
		s, c := helper.Reg(), helper.Reg()
		helper.ConstString(s, "AES/ECB/PKCS5Padding").
			InvokeStatic(cipherSink, s).
			MoveResult(c).
			ReturnVoid().Done()
	}

	onCreate := main.Method("onCreate", dex.Void, dex.T(android.BundleClass))
	{
		svc := onCreate.Reg()
		svcInit := dex.NewMethodRef(Cls("NetcastTVService"), "<init>", dex.Void)
		connectRef := dex.NewMethodRef(Cls("NetcastTVService"), "connect", dex.Void)
		intent, klass := onCreate.Reg(), onCreate.Reg()
		child := onCreate.Reg()
		childInit := dex.NewMethodRef(Cls("CryptoChild"), "<init>", dex.Void)
		doCryptoChild := dex.NewMethodRef(Cls("CryptoChild"), "doCrypto", dex.Void)
		sup := onCreate.Reg()
		subInit := dex.NewMethodRef(Cls("SubServer"), "<init>", dex.Void)
		superStart := dex.NewMethodRef(Cls("SuperServer"), "start", dex.Void)
		th := onCreate.Reg()
		workInit := dex.NewMethodRef(Cls("WorkThread"), "<init>", dex.Void)

		onCreate.InvokeDirect(helper.Ref(), onCreate.This()).
			// sink B chain root
			New(svc, Cls("NetcastTVService")).
			InvokeDirect(svcInit, svc).
			InvokeVirtual(connectRef, svc).
			// explicit ICC to HttpServerService
			New(intent, android.IntentClass).
			ConstClass(klass, Cls("HttpServerService")).
			InvokeDirect(intentInitExplicit, intent, onCreate.This(), klass).
			InvokeVirtual(startServiceRef, onCreate.This(), intent).
			// child-class search driver (sink F)
			New(child, Cls("CryptoChild")).
			InvokeDirect(childInit, child).
			InvokeVirtual(doCryptoChild, child).
			// super-class polymorphism driver (sink G): static type SuperServer
			New(sup, Cls("SubServer")).
			InvokeDirect(subInit, sup).
			InvokeVirtual(superStart, sup).
			// Thread async driver (sink H)
			New(th, Cls("WorkThread")).
			InvokeDirect(workInit, th).
			InvokeVirtual(threadStart, th).
			ReturnVoid().Done()
	}
	add(main)

	// --- sink B: advanced interface/callback chain ------------------------
	svc := dex.NewClass(Cls("NetcastTVService"))
	svcCtor := svc.Constructor()
	svcCtor.InvokeDirect(objInit, svcCtor.This()).ReturnVoid().Done()
	connect := svc.Method("connect", dex.Void)
	{
		r := connect.Reg()
		anonInit := dex.NewMethodRef(Cls("NetcastTVService$1"), "<init>", dex.Void,
			dex.T(Cls("NetcastTVService")))
		runInBg := dex.NewMethodRef(Cls("Util"), "runInBackground", dex.Void,
			dex.T("java.lang.Runnable"))
		connect.New(r, Cls("NetcastTVService$1")).
			InvokeDirect(anonInit, r, connect.This()).
			InvokeStatic(runInBg, r).
			ReturnVoid().Done()
	}
	add(svc)

	anon := dex.NewClass(Cls("NetcastTVService$1")).Implements("java.lang.Runnable")
	anonCtor := anon.Constructor(dex.T(Cls("NetcastTVService")))
	anonCtor.InvokeDirect(objInit, anonCtor.This()).ReturnVoid().Done()
	run := anon.Method("run", dex.Void)
	{
		srv := run.Reg()
		serverInit := dex.NewMethodRef(Cls("NetcastHttpServer"), "<init>", dex.Void)
		serverStart := dex.NewMethodRef(Cls("NetcastHttpServer"), "start", dex.Void)
		run.New(srv, Cls("NetcastHttpServer")).
			InvokeDirect(serverInit, srv).
			InvokeVirtual(serverStart, srv).
			ReturnVoid().Done()
	}
	add(anon)

	util := dex.NewClass(Cls("Util")).
		StaticField("executor", dex.T("java.util.concurrent.Executor"))
	rib := util.StaticMethod("runInBackground", dex.Void, dex.T("java.lang.Runnable"))
	{
		ex := rib.Reg()
		rib.SGet(ex, dex.NewFieldRef(Cls("Util"), "executor", dex.T("java.util.concurrent.Executor"))).
			InvokeInterface(execExecute, ex, rib.Param(0)).
			ReturnVoid().Done()
	}
	add(util)

	server := dex.NewClass(Cls("NetcastHttpServer"))
	serverCtor := server.Constructor()
	serverCtor.InvokeDirect(objInit, serverCtor.This()).ReturnVoid().Done()
	start := server.Method("start", dex.Void)
	{
		fac, ver := start.Reg(), start.Reg()
		start.New(fac, android.SSLSocketFactoryClass).
			InvokeDirect(sslFactoryInit, fac).
			SGet(ver, android.AllowAllVerifierField).
			InvokeVirtual(sslSink, fac, ver).
			ReturnVoid().Done()
	}
	add(server)

	// --- sink C: static initializer + ICC ---------------------------------
	holder := dex.NewClass(Cls("ConfigHolder")).StaticField("MODE", dex.StringT)
	clinit := holder.StaticInitializer()
	{
		r := clinit.Reg()
		clinit.ConstString(r, "AES").
			SPut(r, dex.NewFieldRef(Cls("ConfigHolder"), "MODE", dex.StringT)).
			ReturnVoid().Done()
	}
	add(holder)

	httpSvc := dex.NewClass(Cls("HttpServerService")).Extends(android.ServiceClass)
	httpCtor := httpSvc.Constructor()
	httpCtor.InvokeDirect(serviceInit, httpCtor.This()).ReturnVoid().Done()
	svcOnCreate := httpSvc.Method("onCreate", dex.Void)
	{
		m, c := svcOnCreate.Reg(), svcOnCreate.Reg()
		svcOnCreate.SGet(m, dex.NewFieldRef(Cls("ConfigHolder"), "MODE", dex.StringT)).
			InvokeStatic(cipherSink, m).
			MoveResult(c).
			ReturnVoid().Done()
	}
	add(httpSvc)

	// --- sink D: unregistered component (Amandroid FP shape) --------------
	unreg := dex.NewClass(Cls("UnregActivity")).Extends(android.ActivityClass)
	unregCreate := unreg.Method("onCreate", dex.Void, dex.T(android.BundleClass))
	{
		s, c := unregCreate.Reg(), unregCreate.Reg()
		unregCreate.ConstString(s, "AES/ECB/PKCS5Padding").
			InvokeStatic(cipherSink, s).
			MoveResult(c).
			ReturnVoid().Done()
	}
	add(unreg)

	// --- sink E: dead code -------------------------------------------------
	dead := dex.NewClass(Cls("DeadCode"))
	deadM := dead.StaticMethod("unused", dex.Void)
	{
		s, c := deadM.Reg(), deadM.Reg()
		deadM.ConstString(s, "DES").
			InvokeStatic(cipherSink, s).
			MoveResult(c).
			ReturnVoid().Done()
	}
	add(dead)

	// --- sink F: child-class signature search ------------------------------
	base := dex.NewClass(Cls("CryptoBase"))
	baseCtor := base.Constructor()
	baseCtor.InvokeDirect(objInit, baseCtor.This()).ReturnVoid().Done()
	doCrypto := base.Method("doCrypto", dex.Void)
	{
		s, c := doCrypto.Reg(), doCrypto.Reg()
		doCrypto.ConstString(s, "AES/CBC/PKCS5Padding").
			InvokeStatic(cipherSink, s).
			MoveResult(c).
			ReturnVoid().Done()
	}
	add(base)
	childCls := dex.NewClass(Cls("CryptoChild")).Extends(Cls("CryptoBase"))
	childCtor := childCls.Constructor()
	childCtor.InvokeDirect(dex.NewMethodRef(Cls("CryptoBase"), "<init>", dex.Void), childCtor.This()).
		ReturnVoid().Done()
	add(childCls)

	// --- sink G: super-class polymorphism ----------------------------------
	superSrv := dex.NewClass(Cls("SuperServer"))
	superCtor := superSrv.Constructor()
	superCtor.InvokeDirect(objInit, superCtor.This()).ReturnVoid().Done()
	superSrv.Method("start", dex.Void).ReturnVoid().Done()
	add(superSrv)

	subSrv := dex.NewClass(Cls("SubServer")).Extends(Cls("SuperServer"))
	subCtor := subSrv.Constructor()
	subCtor.InvokeDirect(dex.NewMethodRef(Cls("SuperServer"), "<init>", dex.Void), subCtor.This()).
		ReturnVoid().Done()
	subStart := subSrv.Method("start", dex.Void)
	{
		s, c := subStart.Reg(), subStart.Reg()
		subStart.ConstString(s, "AES/ECB/PKCS5Padding").
			InvokeStatic(cipherSink, s).
			MoveResult(c).
			ReturnVoid().Done()
	}
	add(subSrv)

	// --- sink H: Thread async ----------------------------------------------
	work := dex.NewClass(Cls("WorkThread")).Extends("java.lang.Thread")
	workCtor := work.Constructor()
	workCtor.InvokeDirect(threadInit, workCtor.This()).ReturnVoid().Done()
	workRun := work.Method("run", dex.Void)
	{
		s, c := workRun.Reg(), workRun.Reg()
		workRun.ConstString(s, "AES/ECB/PKCS5Padding").
			InvokeStatic(cipherSink, s).
			MoveResult(c).
			ReturnVoid().Done()
	}
	add(work)

	if buildErr != nil {
		return nil, buildErr
	}
	m := manifest.New(Pkg)
	m.Add(manifest.Activity, Cls("MainActivity"), manifest.IntentFilter{
		Actions: []string{"android.intent.action.MAIN"},
	})
	m.Add(manifest.Service, Cls("HttpServerService"))
	// UnregActivity deliberately NOT registered.

	return apk.New(Pkg, m, f), nil
}
