package faultinject

import (
	"reflect"
	"strings"
	"testing"
)

// TestParseStringRoundTrip pins the spec syntax: every documented
// clause parses, renders canonically and re-parses to the same plan.
func TestParseStringRoundTrip(t *testing.T) {
	specs := []string{
		"kill:node=2@50000",
		"kill:job=heavy:outlier@64",
		"kill:job=heavy:outlier@64x2",
		"beat-drop:node=1@0",
		"corrupt:handoff@1",
		"fetch-fail",
		"fetch-failx3",
		"kill:node=1@10,kill:node=3@20,corrupt:lease@2",
	}
	for _, spec := range specs {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		p2, err := Parse(p.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", p.String(), err)
		}
		if p.String() != p2.String() {
			t.Fatalf("round trip diverged: %q -> %q -> %q", spec, p.String(), p2.String())
		}
	}
}

// TestParseErrors pins rejection of malformed clauses.
func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"", "bogus", "kill:@5", "kill:node=zero@5", "kill:node=0@5",
		"kill:job=@5", "beat-drop:job=x@5", "corrupt:@1", "corrupt:lease@0",
		"fetch-failx0", "kill:node=1@-3",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", spec)
		}
	}
}

// TestKillNodeFiresAtOdometer pins the odometer keying: the kill fires
// at the first poll at-or-past the threshold, for the right node only,
// and at most Count times.
func TestKillNodeFiresAtOdometer(t *testing.T) {
	p := New(Fault{Kind: KillNode, Node: 2, AtUnit: 100})
	if p.KillNode(2, 99) {
		t.Fatal("fired before the threshold")
	}
	if p.KillNode(1, 500) {
		t.Fatal("fired for the wrong node")
	}
	if !p.KillNode(2, 128) {
		t.Fatal("did not fire at the threshold")
	}
	if p.KillNode(2, 200) {
		t.Fatal("fired twice with Count=1")
	}
	trips := p.Trips()
	if len(trips) != 1 || trips[0].Node != 2 || trips[0].Unit != 128 {
		t.Fatalf("bad trip log: %+v", trips)
	}
}

// TestKillJobCountsAttempts pins the mid-handoff form: Count=2 kills
// the first re-dispatched attempt too, then lets the third run.
func TestKillJobCountsAttempts(t *testing.T) {
	p := New(Fault{Kind: KillJob, Job: "app", AtUnit: 64, Count: 2})
	if p.KillJob(1, "app", 1, 32) {
		t.Fatal("fired below the unit threshold")
	}
	if p.KillJob(1, "other", 1, 500) {
		t.Fatal("fired for the wrong job")
	}
	if !p.KillJob(1, "app", 1, 64) {
		t.Fatal("attempt 1 not killed")
	}
	if !p.KillJob(3, "app", 2, 64) {
		t.Fatal("attempt 2 not killed (mid-handoff)")
	}
	if p.KillJob(4, "app", 3, 9000) {
		t.Fatal("attempt 3 killed beyond Count")
	}
}

// TestDropHeartbeatLatches pins the gray-failure shape: once mute,
// always mute.
func TestDropHeartbeatLatches(t *testing.T) {
	p := New(Fault{Kind: DropHeartbeat, Node: 1, AtUnit: 50})
	if p.DropHeartbeat(1, 49) {
		t.Fatal("dropped before the threshold")
	}
	if !p.DropHeartbeat(1, 50) || !p.DropHeartbeat(1, 51) {
		t.Fatal("drop did not latch")
	}
	if p.DropHeartbeat(2, 500) {
		t.Fatal("dropped the wrong node's beat")
	}
	if got := len(p.Trips()); got != 1 {
		t.Fatalf("latched drop logged %d trips, want 1", got)
	}
}

// TestCorruptAppendOrdinal pins that the damage lands on exactly the
// configured append of the configured kind.
func TestCorruptAppendOrdinal(t *testing.T) {
	p := New(Fault{Kind: CorruptRecord, Record: "handoff", AtUnit: 2})
	if p.CorruptAppend("handoff") {
		t.Fatal("corrupted the first append with ordinal 2")
	}
	if p.CorruptAppend("lease") {
		t.Fatal("corrupted the wrong kind")
	}
	if !p.CorruptAppend("handoff") {
		t.Fatal("second handoff append not corrupted")
	}
	if p.CorruptAppend("handoff") {
		t.Fatal("corrupted a third append")
	}
}

// TestFailFetchCount pins the fetch budget.
func TestFailFetchCount(t *testing.T) {
	p := New(Fault{Kind: FailFetch, Count: 2})
	if !p.FailFetch(1) || !p.FailFetch(2) {
		t.Fatal("first two fetches must fail")
	}
	if p.FailFetch(3) {
		t.Fatal("third fetch failed beyond Count")
	}
}

// TestNilPlanIsInert pins the nil-receiver contract the scheduler
// relies on: no nil checks at the poll sites.
func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	if p.KillNode(1, 1e9) || p.KillJob(1, "x", 1, 1e9) || p.DropHeartbeat(1, 1e9) ||
		p.CorruptAppend("lease") || p.FailFetch(7) {
		t.Fatal("nil plan injected a fault")
	}
	if p.String() != "" || p.Trips() != nil {
		t.Fatal("nil plan not inert")
	}
}

// TestSeededDeterministic pins that the same seed yields the same
// plan, a different seed (usually) a different one, and every plan
// leaves at least one survivor.
func TestSeededDeterministic(t *testing.T) {
	a := Seeded(42, 4, 10000)
	b := Seeded(42, 4, 10000)
	if !reflect.DeepEqual(a.String(), b.String()) {
		t.Fatalf("same seed diverged: %q vs %q", a, b)
	}
	for seed := int64(0); seed < 32; seed++ {
		p := Seeded(seed, 4, 10000)
		if kills := strings.Count(p.String(), "kill:"); kills < 1 || kills > 3 {
			t.Fatalf("seed %d produced %d kills (want 1..3): %s", seed, kills, p)
		}
	}
}
