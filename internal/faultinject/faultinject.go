// Package faultinject provides seeded, deterministic fault plans for
// the service fleet's chaos drills. A Plan is a fixed list of faults
// keyed to simulated time — a node's work-unit odometer, a job
// attempt's charged units, a journal append ordinal — never to wall
// clocks or goroutine timing, so a chaos run is reproducible
// bit-for-bit: the same plan against the same corpus kills the same
// work at the same metered instant every time. The scheduler, journal
// and bundle store poll the plan at their natural checkpoints; a nil
// *Plan is valid everywhere and injects nothing.
//
// Plans are written (and round-tripped) in a compact spec syntax, one
// fault per comma-separated clause:
//
//	kill:node=2@50000     kill node 2 once the fleet clock reaches unit 50000
//	kill:job=NAME@64      kill whichever node runs job NAME once the
//	                      attempt has charged 64 units (x2 = also kill
//	                      the handed-off second attempt: kill:job=N@64x2)
//	beat-drop:node=1@0    from unit 0 on, node 1 keeps working but its
//	                      heartbeats are dropped (lease expires, node is
//	                      fenced, job re-dispatched)
//	corrupt:handoff@1     flip a byte in the 1st "handoff" journal
//	                      record as it is written to disk
//	fetch-fail            the next bundle-store fetch misses (fetch-failx3
//	                      = the next three)
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind enumerates the injectable failure modes.
type Kind int

const (
	// KillNode kills a node once the fleet's simtime clock reaches
	// AtUnit: the node stops heartbeating, its running attempt aborts at
	// the next meter checkpoint and it never pulls work again. Clock
	// keying (rather than the node's own odometer) means the kill fires
	// at its simulated instant even if the target node is idle then.
	KillNode Kind = iota + 1
	// KillJob kills whichever node is running the named job once the
	// attempt has charged AtUnit units. Count attempts are killed, so
	// Count=2 also kills the re-dispatched attempt mid-handoff.
	KillJob
	// DropHeartbeat mutes a node's heartbeats from AtUnit on without
	// stopping its work: the coordinator sees an expired lease, fences
	// the node and re-dispatches — the classic gray failure.
	DropHeartbeat
	// CorruptRecord flips one payload byte of the AtUnit'th journal
	// append of the named record kind as it is written to disk. The
	// in-memory state is untouched; the damage surfaces on the next
	// replay, which must degrade to re-dispatch.
	CorruptRecord
	// FailFetch makes the next Count bundle-store fetches miss, forcing
	// a cold rebuild. Reports must not change.
	FailFetch
)

// Fault is one injected failure, keyed to simulated time.
type Fault struct {
	Kind   Kind
	Node   int    // KillNode, DropHeartbeat: 1-based node id
	Job    string // KillJob: job name
	AtUnit int64  // fleet-clock / odometer / attempt-unit threshold; CorruptRecord: 1-based append ordinal
	Record string // CorruptRecord: journal record kind name
	Count  int    // KillJob: attempts to kill; FailFetch: fetches to fail (default 1)
}

// Trip records one fault firing, for assertions and postmortems.
type Trip struct {
	Fault string // the spec clause of the fault that fired
	Node  int    // node involved (0 when not node-keyed)
	Job   string // job involved (empty when not job-keyed)
	Unit  int64  // the odometer / attempt units / ordinal at the trip
}

type fault struct {
	Fault
	fired int
}

// Plan is a set of faults polled by the fleet's checkpoints. All
// methods are safe for concurrent use and safe on a nil receiver (a
// nil plan injects nothing).
type Plan struct {
	mu      sync.Mutex
	faults  []*fault
	trips   []Trip
	appends map[string]int // journal appends seen per record kind
	fetches int            // bundle fetches seen
}

// New builds a plan from explicit faults, normalizing defaults
// (Count 1; CorruptRecord ordinal 1).
func New(faults ...Fault) *Plan {
	p := &Plan{appends: make(map[string]int)}
	for _, f := range faults {
		f := f
		if f.Count < 1 {
			f.Count = 1
		}
		if f.Kind == CorruptRecord && f.AtUnit < 1 {
			f.AtUnit = 1
		}
		p.faults = append(p.faults, &fault{Fault: f})
	}
	return p
}

// Parse parses the comma-separated spec syntax documented at the top
// of the package. Parse(p.String()) reproduces the plan.
func Parse(spec string) (*Plan, error) {
	var faults []Fault
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		f, err := parseClause(clause)
		if err != nil {
			return nil, err
		}
		faults = append(faults, f)
	}
	if len(faults) == 0 {
		return nil, fmt.Errorf("faultinject: empty plan spec")
	}
	return New(faults...), nil
}

func parseClause(clause string) (Fault, error) {
	var f Fault
	head, rest, _ := strings.Cut(clause, ":")
	// Count suffix: trailing xN on the whole clause.
	cutCount := func(s string) (string, error) {
		if i := strings.LastIndex(s, "x"); i >= 0 {
			if n, err := strconv.Atoi(s[i+1:]); err == nil {
				if n < 1 {
					return "", fmt.Errorf("faultinject: count in %q must be positive", clause)
				}
				f.Count = n
				return s[:i], nil
			}
		}
		return s, nil
	}
	switch head {
	case "kill":
		key, val, ok := strings.Cut(rest, "=")
		if !ok {
			return f, fmt.Errorf("faultinject: %q wants node=N or job=NAME", clause)
		}
		val, err := cutCount(val)
		if err != nil {
			return f, err
		}
		body, at, hasAt := strings.Cut(val, "@")
		if hasAt {
			u, err := strconv.ParseInt(at, 10, 64)
			if err != nil || u < 0 {
				return f, fmt.Errorf("faultinject: bad unit in %q", clause)
			}
			f.AtUnit = u
		}
		switch key {
		case "node":
			f.Kind = KillNode
			n, err := strconv.Atoi(body)
			if err != nil || n < 1 {
				return f, fmt.Errorf("faultinject: bad node id in %q", clause)
			}
			f.Node = n
		case "job":
			f.Kind = KillJob
			if body == "" {
				return f, fmt.Errorf("faultinject: empty job name in %q", clause)
			}
			f.Job = body
		default:
			return f, fmt.Errorf("faultinject: %q wants node=N or job=NAME", clause)
		}
	case "beat-drop":
		key, val, ok := strings.Cut(rest, "=")
		if !ok || key != "node" {
			return f, fmt.Errorf("faultinject: %q wants beat-drop:node=N[@U]", clause)
		}
		body, at, hasAt := strings.Cut(val, "@")
		if hasAt {
			u, err := strconv.ParseInt(at, 10, 64)
			if err != nil || u < 0 {
				return f, fmt.Errorf("faultinject: bad unit in %q", clause)
			}
			f.AtUnit = u
		}
		f.Kind = DropHeartbeat
		n, err := strconv.Atoi(body)
		if err != nil || n < 1 {
			return f, fmt.Errorf("faultinject: bad node id in %q", clause)
		}
		f.Node = n
	case "corrupt":
		f.Kind = CorruptRecord
		body, at, hasAt := strings.Cut(rest, "@")
		if hasAt {
			u, err := strconv.ParseInt(at, 10, 64)
			if err != nil || u < 1 {
				return f, fmt.Errorf("faultinject: bad ordinal in %q", clause)
			}
			f.AtUnit = u
		}
		if body == "" {
			return f, fmt.Errorf("faultinject: %q wants corrupt:KIND[@ORDINAL]", clause)
		}
		f.Record = body
	default:
		if head == "fetch-fail" || strings.HasPrefix(clause, "fetch-fail") {
			f.Kind = FailFetch
			tail := strings.TrimPrefix(clause, "fetch-fail")
			if tail != "" {
				if _, err := cutCount(tail); err != nil {
					return f, err
				}
				if f.Count == 0 {
					return f, fmt.Errorf("faultinject: %q wants fetch-fail[xN]", clause)
				}
			}
			return f, nil
		}
		return f, fmt.Errorf("faultinject: unknown fault %q", clause)
	}
	return f, nil
}

// clause renders the canonical spec of one fault.
func (f *Fault) clause() string {
	var b strings.Builder
	switch f.Kind {
	case KillNode:
		fmt.Fprintf(&b, "kill:node=%d@%d", f.Node, f.AtUnit)
	case KillJob:
		fmt.Fprintf(&b, "kill:job=%s@%d", f.Job, f.AtUnit)
	case DropHeartbeat:
		fmt.Fprintf(&b, "beat-drop:node=%d@%d", f.Node, f.AtUnit)
	case CorruptRecord:
		fmt.Fprintf(&b, "corrupt:%s@%d", f.Record, f.AtUnit)
	case FailFetch:
		b.WriteString("fetch-fail")
	}
	if f.Count > 1 {
		fmt.Fprintf(&b, "x%d", f.Count)
	}
	return b.String()
}

// String renders the plan in the spec syntax; Parse round-trips it.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	clauses := make([]string, len(p.faults))
	for i, f := range p.faults {
		clauses[i] = f.clause()
	}
	return strings.Join(clauses, ",")
}

// Seeded derives a deterministic node-kill plan from a seed: it kills
// 1 + (seed-derived) of the fleet's nodes at pseudo-random fleet-clock
// instants inside (0, maxUnit]. Same seed, same plan — the CI chaos
// matrix uses this to sweep scenarios without hand-writing specs.
func Seeded(seed int64, nodes int, maxUnit int64) *Plan {
	if nodes < 2 || maxUnit < 1 {
		return New()
	}
	r := uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	next := func() uint64 {
		r += 0x9e3779b97f4a7c15
		z := r
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	kills := 1 + int(next()%uint64(nodes-1)) // always leave one survivor
	perm := make([]int, nodes)
	for i := range perm {
		perm[i] = i + 1
	}
	for i := nodes - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	var faults []Fault
	for i := 0; i < kills; i++ {
		faults = append(faults, Fault{
			Kind:   KillNode,
			Node:   perm[i],
			AtUnit: 1 + int64(next()%uint64(maxUnit)),
		})
	}
	sort.Slice(faults, func(i, j int) bool { return faults[i].Node < faults[j].Node })
	return New(faults...)
}

// Trips returns the faults that have fired so far, in firing order.
func (p *Plan) Trips() []Trip {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Trip, len(p.trips))
	copy(out, p.trips)
	return out
}

func (p *Plan) trip(f *fault, node int, job string, unit int64) {
	p.trips = append(p.trips, Trip{Fault: f.clause(), Node: node, Job: job, Unit: unit})
}

// KillNode reports whether the node must die now, given the fleet
// clock. The caller fences the node on true; a fenced node is skipped
// by later sweeps, so each matching fault fires at most Count times.
func (p *Plan) KillNode(node int, clock int64) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.faults {
		if f.Kind == KillNode && f.Node == node && clock >= f.AtUnit && f.fired < f.Count {
			f.fired++
			p.trip(f, node, "", clock)
			return true
		}
	}
	return false
}

// KillJob reports whether the node running the named job's attempt
// must die now, given the attempt's charged units. The first Count
// matching attempts are killed.
func (p *Plan) KillJob(node int, job string, attempt int, units int64) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.faults {
		if f.Kind == KillJob && f.Job == job && units >= f.AtUnit && f.fired < f.Count {
			f.fired++
			p.trip(f, node, job, units)
			return true
		}
	}
	return false
}

// DropHeartbeat reports whether the node's heartbeat must be dropped.
// A tripped drop latches: every later beat of that node is dropped too
// (the node is mute, not flapping).
func (p *Plan) DropHeartbeat(node int, odometer int64) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.faults {
		if f.Kind == DropHeartbeat && f.Node == node && odometer >= f.AtUnit {
			if f.fired == 0 {
				f.fired = 1
				p.trip(f, node, "", odometer)
			}
			return true
		}
	}
	return false
}

// CorruptAppend is called once per journal append with the record kind
// name; it reports whether that append's on-disk bytes must be
// damaged. Each fault fires on its configured 1-based ordinal among
// appends of its kind.
func (p *Plan) CorruptAppend(record string) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.appends == nil {
		p.appends = make(map[string]int)
	}
	p.appends[record]++
	seen := p.appends[record]
	for _, f := range p.faults {
		if f.Kind == CorruptRecord && f.Record == record && int64(seen) == f.AtUnit && f.fired == 0 {
			f.fired = 1
			p.trip(f, 0, "", int64(seen))
			return true
		}
	}
	return false
}

// JournalCorrupter adapts the plan's CorruptRecord faults to the
// journal's SetCorrupt hook: when a fault fires for an append, the
// record's last byte (payload tail) is flipped, which fails the CRC on
// the next replay — the replay truncates there and the affected jobs
// degrade to re-dispatch.
func JournalCorrupter(p *Plan) func(kind string, encoded []byte) []byte {
	return func(kind string, encoded []byte) []byte {
		if !p.CorruptAppend(kind) || len(encoded) == 0 {
			return nil
		}
		damaged := append([]byte(nil), encoded...)
		damaged[len(damaged)-1] ^= 0xa5
		return damaged
	}
}

// FailFetch is called once per bundle-store fetch; it reports whether
// this fetch must miss. Fires on the next Count fetches after the
// plan's FailFetch faults are armed (they are armed from the start).
func (p *Plan) FailFetch(fp uint64) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fetches++
	for _, f := range p.faults {
		if f.Kind == FailFetch && f.fired < f.Count {
			f.fired++
			p.trip(f, 0, fmt.Sprintf("fp=%x", fp), int64(p.fetches))
			return true
		}
	}
	return false
}
