// Package pprofutil wires the -cpuprofile/-memprofile flags of the
// CLIs: start the CPU profile immediately, flush both profiles through
// the returned stop function on any exit path — including the daemon's
// SIGTERM drain, which returns through its defers.
package pprofutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile when cpuPath is non-empty and returns a
// stop function that ends it and, when memPath is non-empty, writes a
// heap profile. The stop function is safe to call exactly once and
// reports flush failures on stderr rather than failing the run the
// profiles were meant to observe.
func Start(cpuPath, memPath string) (func(), error) {
	var cpu *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("pprofutil: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("pprofutil: %w", err)
		}
		cpu = f
	}
	return func() {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "pprofutil: cpu profile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pprofutil: heap profile:", err)
				return
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pprofutil: heap profile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "pprofutil: heap profile:", err)
			}
		}
	}, nil
}
