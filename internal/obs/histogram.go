package obs

import "sync"

// Histogram is a concurrency-safe power-of-two-bucket histogram over
// non-negative int64 observations (charged simtime units, byte sizes).
// Bucket i holds the values whose bit length is i — the half-open range
// [2^(i-1), 2^i) — so the bucket layout is value-independent and two
// histograms fed the same observations in any order snapshot
// identically.
type Histogram struct {
	mu     sync.Mutex
	counts []int64
	sum    int64
	n      int64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	b := bitLen(v)
	h.mu.Lock()
	for len(h.counts) <= b {
		h.counts = append(h.counts, 0)
	}
	h.counts[b]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

func bitLen(v int64) int {
	b := 0
	for v > 0 {
		b++
		v >>= 1
	}
	return b
}

// HistBucket is one histogram bucket: the inclusive upper bound of its
// value range and the count of observations that landed in it
// (non-cumulative; exporters cumulate).
type HistBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Buckets []HistBucket `json:"buckets,omitempty"`
	Sum     int64        `json:"sum"`
	Count   int64        `json:"count"`
}

// Snapshot copies the histogram's current state. Empty buckets above
// the highest observed value are trimmed, so the snapshot is a pure
// function of the observation multiset.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{Sum: h.sum, Count: h.n}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		le := int64(0)
		if i > 0 {
			le = int64(1)<<i - 1
		}
		s.Buckets = append(s.Buckets, HistBucket{Le: le, Count: c})
	}
	return s
}
