package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteChrome renders the trace as Chrome trace-event JSON (the
// {"traceEvents":[...]} wrapper Perfetto and chrome://tracing load).
// The export is canonical: events are sorted by (job, sub, start,
// duration, name, category, args), fields are emitted in a fixed
// order, and physical node ids never appear — so two runs of the same
// seed, whose per-track charge sequences are deterministic, produce
// byte-identical files regardless of goroutine scheduling.
//
// Layout: each job is a process (pid = job id); each of its tracks is
// a thread (tid = sub + 1) — "main" for the job's own range, one
// "chunk@N" thread per stolen or re-pended sink chunk, so steal spans
// render nested under their victim job's process. Timestamps are
// charged simtime units (shown by the viewers as microseconds).
func WriteChrome(w io.Writer, t *Trace) error {
	spans := t.Spans()
	counters := t.Counters()
	sort.Slice(spans, func(i, j int) bool { return spanLess(spans[i], spans[j]) })
	sort.Slice(counters, func(i, j int) bool {
		a, b := counters[i], counters[j]
		if a.Job != b.Job {
			return a.Job < b.Job
		}
		if a.Sub != b.Sub {
			return a.Sub < b.Sub
		}
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		return a.Value < b.Value
	})

	// Metadata: one process per job, one named thread per track, in
	// first-appearance order over the sorted events.
	type track struct {
		job int64
		sub int
	}
	var jobs []int64
	seenJob := make(map[int64]bool)
	var tracks []track
	seenTrack := make(map[track]bool)
	note := func(job int64, sub int) {
		if !seenJob[job] {
			seenJob[job] = true
			jobs = append(jobs, job)
		}
		tr := track{job, sub}
		if !seenTrack[tr] {
			seenTrack[tr] = true
			tracks = append(tracks, tr)
		}
	}
	for _, s := range spans {
		note(s.Job, s.Sub)
	}
	for _, c := range counters {
		note(c.Job, c.Sub)
	}

	var b strings.Builder
	b.WriteString("{\"traceEvents\":[")
	first := true
	emit := func(line string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.WriteString(line)
	}
	for _, job := range jobs {
		emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"job %d"}}`, job, job))
	}
	for _, tr := range tracks {
		name := "main"
		if tr.sub > 0 {
			name = fmt.Sprintf("chunk@%d", tr.sub-1)
		}
		emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
			tr.job, tr.sub+1, jsonString(name)))
	}
	for _, s := range spans {
		var e strings.Builder
		fmt.Fprintf(&e, `{"name":%s`, jsonString(s.Name))
		if s.Cat != "" {
			fmt.Fprintf(&e, `,"cat":%s`, jsonString(s.Cat))
		}
		if s.Dur < 0 {
			fmt.Fprintf(&e, `,"ph":"i","s":"t","ts":%d`, s.Start)
		} else {
			fmt.Fprintf(&e, `,"ph":"X","ts":%d,"dur":%d`, s.Start, s.Dur)
		}
		fmt.Fprintf(&e, `,"pid":%d,"tid":%d`, s.Job, s.Sub+1)
		if len(s.Args) > 0 {
			e.WriteString(`,"args":{`)
			args := append([]Arg(nil), s.Args...)
			sort.Slice(args, func(i, j int) bool { return args[i].Key < args[j].Key })
			for i, a := range args {
				if i > 0 {
					e.WriteByte(',')
				}
				fmt.Fprintf(&e, "%s:%s", jsonString(a.Key), jsonString(a.Value))
			}
			e.WriteByte('}')
		}
		e.WriteByte('}')
		emit(e.String())
	}
	for _, c := range counters {
		name := fmt.Sprintf("units job%d/main", c.Job)
		if c.Sub > 0 {
			name = fmt.Sprintf("units job%d/chunk@%d", c.Job, c.Sub-1)
		}
		emit(fmt.Sprintf(`{"name":%s,"ph":"C","ts":%d,"pid":%d,"tid":%d,"args":{"units":%d}}`,
			jsonString(name), c.TS, c.Job, c.Sub+1, c.Value))
	}
	b.WriteString("]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// spanLess is the canonical export order. Node is deliberately not a
// key (and not exported at all): it is the only scheduling-dependent
// span field.
func spanLess(a, b Span) bool {
	if a.Job != b.Job {
		return a.Job < b.Job
	}
	if a.Sub != b.Sub {
		return a.Sub < b.Sub
	}
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	if a.Dur != b.Dur {
		return a.Dur < b.Dur
	}
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	if a.Cat != b.Cat {
		return a.Cat < b.Cat
	}
	return argsKey(a.Args) < argsKey(b.Args)
}

func argsKey(args []Arg) string {
	var b strings.Builder
	for _, a := range args {
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.Value)
		b.WriteByte(';')
	}
	return b.String()
}

// jsonString renders s as a JSON string literal via encoding/json —
// deterministic and always valid JSON (unlike strconv.Quote's \x
// escapes).
func jsonString(s string) string {
	data, err := json.Marshal(s)
	if err != nil {
		// A Go string never fails to marshal; keep the signature simple.
		return `""`
	}
	return string(data)
}
