// Package obs is the unified observability layer: a pull-model metrics
// registry the service's scattered Stats structs register into once, a
// deterministic simtime-anchored span trace, and a Chrome trace-event
// exporter. The package is a leaf — it imports nothing from the rest of
// the repo — so every layer (simtime, core, service, the CLIs) can feed
// it without import cycles.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Kind types a metric.
type Kind int

// Metric kinds, in Prometheus terms.
const (
	Counter Kind = iota
	Gauge
	HistogramKind
)

func (k Kind) String() string {
	switch k {
	case Counter:
		return "counter"
	case Gauge:
		return "gauge"
	case HistogramKind:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Label is one name=value metric dimension.
type Label struct {
	Key   string
	Value string
}

// L builds a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Metric is one registered time series at snapshot time. Counter and
// gauge values are int64 — every stat in this codebase is an integer
// count of entries, bytes or charged units.
type Metric struct {
	Name   string
	Labels []Label // sorted by key
	Kind   Kind
	Value  int64        // Counter / Gauge
	Hist   HistSnapshot // HistogramKind
}

// ID renders the metric's identity as name{k="v",...} — the stable key
// the snapshot sorts and diffs by.
func (m Metric) ID() string {
	if len(m.Labels) == 0 {
		return m.Name
	}
	var b strings.Builder
	b.WriteString(m.Name)
	b.WriteByte('{')
	for i, l := range m.Labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Gather collects metrics during one snapshot; collectors emit into it.
type Gather struct {
	metrics []Metric
}

func (g *Gather) add(name string, kind Kind, v int64, hist HistSnapshot, labels []Label) {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	g.metrics = append(g.metrics, Metric{Name: name, Labels: ls, Kind: kind, Value: v, Hist: hist})
}

// Counter emits a monotonically-increasing count.
func (g *Gather) Counter(name string, v int64, labels ...Label) {
	g.add(name, Counter, v, HistSnapshot{}, labels)
}

// Gauge emits a point-in-time level.
func (g *Gather) Gauge(name string, v int64, labels ...Label) {
	g.add(name, Gauge, v, HistSnapshot{}, labels)
}

// Histogram emits a histogram's snapshot.
func (g *Gather) Histogram(name string, h *Histogram, labels ...Label) {
	g.add(name, HistogramKind, 0, h.Snapshot(), labels)
}

// Registry is the one source of truth for metrics: subsystems register
// a collector once, and every surface (Prometheus text, the stats JSON,
// the stdin stats lines) renders from the same Snapshot. Collection is
// pull-model — a collector reads its subsystem's live counters at
// snapshot time — so registering costs nothing on the hot path.
type Registry struct {
	mu         sync.Mutex
	collectors []func(*Gather)
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a collector. Collectors run in registration order on
// every Snapshot; each must be safe to call concurrently with the
// subsystem it reads (all the service Stats() methods already are).
func (r *Registry) Register(collect func(*Gather)) {
	r.mu.Lock()
	r.collectors = append(r.collectors, collect)
	r.mu.Unlock()
}

// Snapshot runs every collector and returns the sorted metric set.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	cs := append(make([]func(*Gather), 0, len(r.collectors)), r.collectors...)
	r.mu.Unlock()
	var g Gather
	for _, c := range cs {
		c(&g)
	}
	s := Snapshot(g.metrics)
	sort.Slice(s, func(i, j int) bool {
		if s[i].Name != s[j].Name {
			return s[i].Name < s[j].Name
		}
		return s[i].ID() < s[j].ID()
	})
	return s
}

// Snapshot is a sorted point-in-time view of every registered metric.
type Snapshot []Metric

// Get returns the value of the named counter or gauge; ok=false when
// absent. Labels must match exactly (order-insensitive).
func (s Snapshot) Get(name string, labels ...Label) (int64, bool) {
	want := Metric{Name: name, Labels: append([]Label(nil), labels...)}
	sort.Slice(want.Labels, func(i, j int) bool { return want.Labels[i].Key < want.Labels[j].Key })
	id := want.ID()
	for _, m := range s {
		if m.ID() == id {
			return m.Value, true
		}
	}
	return 0, false
}

// Delta subtracts prev from s metric-by-metric (absent-in-prev counts
// as zero) and returns the changed counters and gauges — the
// snapshot-diff tests assert on. Histograms diff by total count.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	prevVals := make(map[string]int64, len(prev))
	for _, m := range prev {
		v := m.Value
		if m.Kind == HistogramKind {
			v = m.Hist.Count
		}
		prevVals[m.ID()] = v
	}
	var out Snapshot
	for _, m := range s {
		v := m.Value
		if m.Kind == HistogramKind {
			v = m.Hist.Count
		}
		if d := v - prevVals[m.ID()]; d != 0 {
			dm := m
			dm.Value = d
			dm.Hist = HistSnapshot{}
			if dm.Kind == HistogramKind {
				dm.Kind = Counter
			}
			out = append(out, dm)
		}
	}
	return out
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one # TYPE header per metric name, histograms
// expanded into cumulative _bucket/_sum/_count series.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	lastName := ""
	for _, m := range s {
		if m.Name != lastName {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
				return err
			}
			lastName = m.Name
		}
		switch m.Kind {
		case HistogramKind:
			cum := int64(0)
			for _, b := range m.Hist.Buckets {
				cum += b.Count
				if _, err := fmt.Fprintf(w, "%s %d\n",
					promID(m.Name+"_bucket", append(m.Labels, Label{Key: "le", Value: fmt.Sprint(b.Le)})), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s %d\n",
				promID(m.Name+"_bucket", append(m.Labels, Label{Key: "le", Value: "+Inf"})), m.Hist.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", promID(m.Name+"_sum", m.Labels), m.Hist.Sum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", promID(m.Name+"_count", m.Labels), m.Hist.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %d\n", m.ID(), m.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

func promID(name string, labels []Label) string {
	return Metric{Name: name, Labels: labels}.ID()
}

// WritePrometheus snapshots the registry and renders it; the /metrics
// handler's one-call surface.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}
