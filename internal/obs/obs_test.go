package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 1, 3, 4, 100, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if s.Sum != 0+1+1+3+4+100+0 {
		t.Fatalf("sum = %d", s.Sum)
	}
	want := []HistBucket{
		{Le: 0, Count: 2},   // 0 and clamped -5
		{Le: 1, Count: 2},   // 1, 1
		{Le: 3, Count: 1},   // 3
		{Le: 7, Count: 1},   // 4
		{Le: 127, Count: 1}, // 100
	}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
	for i := range want {
		if s.Buckets[i] != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, s.Buckets[i], want[i])
		}
	}
}

func TestHistogramOrderIndependent(t *testing.T) {
	var a, b Histogram
	vals := []int64{9, 2, 2, 77, 0, 13, 9}
	for _, v := range vals {
		a.Observe(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		b.Observe(vals[i])
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	ja, _ := json.Marshal(sa)
	jb, _ := json.Marshal(sb)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("snapshots differ:\n%s\n%s", ja, jb)
	}
}

func TestRegistrySnapshotSortedAndStable(t *testing.T) {
	r := NewRegistry()
	var h Histogram
	h.Observe(5)
	r.Register(func(g *Gather) {
		g.Gauge("z_gauge", 7)
		g.Counter("a_total", 3, L("tenant", "beta"))
		g.Counter("a_total", 1, L("tenant", "alpha"))
		g.Histogram("h_units", &h)
	})
	s := r.Snapshot()
	ids := make([]string, len(s))
	for i, m := range s {
		ids[i] = m.ID()
	}
	want := []string{`a_total{tenant="alpha"}`, `a_total{tenant="beta"}`, "h_units", "z_gauge"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
	if v, ok := s.Get("a_total", L("tenant", "beta")); !ok || v != 3 {
		t.Fatalf("Get a_total{beta} = %d,%v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get(missing) should be absent")
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	n := int64(1)
	var h Histogram
	h.Observe(2)
	r.Register(func(g *Gather) {
		g.Counter("c_total", n)
		g.Gauge("lvl", 10)
		g.Histogram("h", &h)
	})
	prev := r.Snapshot()
	n = 5
	h.Observe(9)
	h.Observe(9)
	d := r.Snapshot().Delta(prev)
	if len(d) != 2 {
		t.Fatalf("delta = %+v", d)
	}
	if v, ok := d.Get("c_total"); !ok || v != 4 {
		t.Fatalf("c_total delta = %d,%v", v, ok)
	}
	if v, ok := d.Get("h"); !ok || v != 2 {
		t.Fatalf("h delta = %d,%v", v, ok)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	var h Histogram
	h.Observe(1)
	h.Observe(6)
	r.Register(func(g *Gather) {
		g.Counter("jobs_total", 4, L("tenant", "t1"))
		g.Counter("jobs_total", 2, L("tenant", "t2"))
		g.Gauge("queue_depth", 3)
		g.Histogram("phase_units", &h, L("phase", "slice"))
	})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := `# TYPE jobs_total counter
jobs_total{tenant="t1"} 4
jobs_total{tenant="t2"} 2
# TYPE phase_units histogram
phase_units_bucket{phase="slice",le="1"} 1
phase_units_bucket{phase="slice",le="7"} 2
phase_units_bucket{phase="slice",le="+Inf"} 2
phase_units_sum{phase="slice"} 7
phase_units_count{phase="slice"} 2
# TYPE queue_depth gauge
queue_depth 3
`
	if got != want {
		t.Fatalf("prometheus text:\n%s\nwant:\n%s", got, want)
	}
}

func sampleTrace() *Trace {
	tr := NewTrace()
	tr.Add(Span{Job: 2, Sub: 0, Name: "sink", Cat: "engine", Start: 40, Dur: 10, Node: 1,
		Args: []Arg{{Key: "pos", Value: "3"}}})
	tr.Add(Span{Job: 1, Sub: 33, Name: "steal-claim", Cat: "sched", Start: 0, Dur: 8, Node: 2})
	tr.Add(Span{Job: 1, Sub: 0, Name: "disassembly", Cat: "engine", Start: 0, Dur: 500, Node: 0})
	tr.Add(Span{Job: 1, Sub: 0, Name: "queued", Cat: "sched", Start: 0, Dur: Instant,
		Args: []Arg{{Key: "tenant", Value: "t1"}}})
	tr.AddCounter(CounterSample{Job: 1, Sub: 0, Node: 0, TS: 32, Value: 32})
	tr.AddCounter(CounterSample{Job: 1, Sub: 0, Node: 0, TS: 64, Value: 64})
	return tr
}

func TestWriteChromeValidAndCanonical(t *testing.T) {
	var a bytes.Buffer
	if err := WriteChrome(&a, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	// Same logical content recorded in a different order and on
	// different nodes must export byte-identically.
	tr := NewTrace()
	for _, s := range sampleTrace().Spans() {
		s.Node = 9 - s.Node
		tr.Add(s)
	}
	cs := sampleTrace().Counters()
	for i := len(cs) - 1; i >= 0; i-- {
		tr.AddCounter(cs[i])
	}
	var b bytes.Buffer
	if err := WriteChrome(&b, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("chrome export not canonical:\n%s\n---\n%s", a.String(), b.String())
	}

	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Pid  int64           `json:"pid"`
			Tid  int64           `json:"tid"`
			TS   *int64          `json:"ts"`
			Dur  *int64          `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, a.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no events")
	}
	var nX, nI, nC, nM int
	for _, e := range doc.TraceEvents {
		if e.Name == "" || e.Ph == "" {
			t.Fatalf("event missing name/ph: %+v", e)
		}
		switch e.Ph {
		case "X":
			if e.TS == nil || e.Dur == nil {
				t.Fatalf("X event missing ts/dur: %+v", e)
			}
			nX++
		case "i":
			nI++
		case "C":
			nC++
		case "M":
			nM++
		}
	}
	if nX != 3 || nI != 1 || nC != 2 || nM < 3 {
		t.Fatalf("event mix X=%d i=%d C=%d M=%d", nX, nI, nC, nM)
	}
	if !strings.Contains(a.String(), `"chunk@32"`) {
		t.Fatalf("missing chunk thread name:\n%s", a.String())
	}
	if strings.Contains(a.String(), "node") {
		t.Fatalf("export must not encode node placement:\n%s", a.String())
	}
}

func TestTraceFilter(t *testing.T) {
	tr := sampleTrace()
	f := tr.Filter(1)
	for _, s := range f.Spans() {
		if s.Job != 1 {
			t.Fatalf("filter leaked job %d", s.Job)
		}
	}
	if len(f.Spans()) != 3 || len(f.Counters()) != 2 {
		t.Fatalf("filter sizes: %d spans %d counters", len(f.Spans()), len(f.Counters()))
	}
}
