package obs

import "sync"

// Arg is one span attribute. Values are strings so the canonical
// export never depends on float formatting.
type Arg struct {
	Key   string
	Value string
}

// A Span is one simtime-anchored interval (or instant) on a job-local
// timeline. Start and Dur are charged simtime units relative to the
// track's origin — never wall time and never the racy fleet-global
// clock — which is what makes two runs of the same seed record
// byte-identical traces: a track's charge sequence is deterministic
// even when the goroutine interleaving is not.
//
// A track is one (Job, Sub) pair: Sub 0 is the job's main range, a
// nonzero Sub is a stolen or re-pended sink chunk under its own lease.
type Span struct {
	Job  int64
	Sub  int
	Name string
	Cat  string
	// Start and Dur are charged units on the track's timeline. Dur < 0
	// marks an instant event (a point, not an interval).
	Start int64
	Dur   int64
	// Node is the physical fleet node that recorded the span. It is
	// informational only and deliberately excluded from the canonical
	// Chrome export: which goroutine-node pulls which dispatch is the
	// one scheduling-dependent datum in the system, so any byte-stable
	// trace must not encode it. Per-node accounting lives in the
	// metrics registry instead.
	Node int
	Args []Arg
}

// Instant marks a Span as a point event.
const Instant = int64(-1)

// CounterSample is one point on a track's monotone charged-units
// curve, recorded at a meter checkpoint (which is also the lease
// heartbeat in fleet mode — one sample per renewal).
type CounterSample struct {
	Job   int64
	Sub   int
	Node  int
	TS    int64
	Value int64
}

// Trace accumulates spans and counter samples from every layer of a
// run. It is concurrency-safe; ordering is imposed at export, not at
// record time, so concurrent workers append freely.
type Trace struct {
	mu       sync.Mutex
	spans    []Span
	counters []CounterSample
}

// NewTrace builds an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Add records a span.
func (t *Trace) Add(s Span) {
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// AddCounter records a charged-units sample.
func (t *Trace) AddCounter(c CounterSample) {
	t.mu.Lock()
	t.counters = append(t.counters, c)
	t.mu.Unlock()
}

// Spans copies the recorded spans.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Counters copies the recorded samples.
func (t *Trace) Counters() []CounterSample {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]CounterSample(nil), t.counters...)
}

// Len reports the number of recorded spans.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Filter returns a new trace holding only the given job's spans and
// samples — the GET /v1/trace/{job} view.
func (t *Trace) Filter(job int64) *Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	f := &Trace{}
	for _, s := range t.spans {
		if s.Job == job {
			f.spans = append(f.spans, s)
		}
	}
	for _, c := range t.counters {
		if c.Job == job {
			f.counters = append(f.counters, c)
		}
	}
	return f
}
