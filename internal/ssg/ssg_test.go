package ssg

import (
	"strings"
	"testing"
	"testing/quick"

	"backdroid/internal/dex"
	"backdroid/internal/ir"
)

var (
	sinkRef  = dex.NewMethodRef("javax.crypto.Cipher", "getInstance", dex.T("javax.crypto.Cipher"), dex.StringT)
	methodA  = dex.NewMethodRef("com.a.A", "doWork", dex.Void)
	methodB  = dex.NewMethodRef("com.a.B", "helper", dex.StringT)
	clinitM  = dex.NewMethodRef("com.a.C", "<clinit>", dex.Void)
	fieldRef = dex.NewFieldRef("com.a.C", "PORT", dex.Int)
)

func stmt(s string) ir.Unit {
	return &ir.AssignStmt{LHS: &ir.Local{Name: "r0"}, RHS: ir.StringConst{V: s}}
}

func TestAddUnitDedup(t *testing.T) {
	g := New(sinkRef)
	u1 := g.AddUnit(methodA, 3, stmt("x"))
	u2 := g.AddUnit(methodA, 3, stmt("y"))
	if u1 != u2 {
		t.Error("same (method, index) must return the same node")
	}
	u3 := g.AddUnit(methodA, 4, stmt("z"))
	if u3 == u1 || u3.ID == u1.ID {
		t.Error("different index must make a new node with a new ID")
	}
	if g.NodeCount() != 2 {
		t.Errorf("NodeCount = %d, want 2", g.NodeCount())
	}
}

func TestUnitsOfSorted(t *testing.T) {
	g := New(sinkRef)
	g.AddUnit(methodA, 9, stmt("c"))
	g.AddUnit(methodA, 1, stmt("a"))
	g.AddUnit(methodA, 5, stmt("b"))
	us := g.UnitsOf(methodA)
	if len(us) != 3 || us[0].Index != 1 || us[1].Index != 5 || us[2].Index != 9 {
		t.Errorf("UnitsOf order = %v", us)
	}
}

func TestEdgesAndDedup(t *testing.T) {
	g := New(sinkRef)
	u := g.AddUnit(methodA, 0, stmt("site"))
	g.AddEdge(CallEdge, u, methodB)
	g.AddEdge(CallEdge, u, methodB) // duplicate
	g.AddEdge(ReturnEdge, u, methodB)
	if len(g.Edges()) != 2 {
		t.Errorf("edges = %d, want 2 (call+return)", len(g.Edges()))
	}
	callees := g.CallEdgesFrom(u)
	if len(callees) != 1 || callees[0].SootSignature() != methodB.SootSignature() {
		t.Errorf("CallEdgesFrom = %v", callees)
	}
}

func TestStaticTrack(t *testing.T) {
	g := New(sinkRef)
	u := g.AddStaticUnit(clinitM, 0, stmt("static"))
	g.AddStaticUnit(clinitM, 0, stmt("static")) // dedup
	if len(g.StaticTrack) != 1 || g.StaticTrack[0] != u {
		t.Errorf("StaticTrack = %v", g.StaticTrack)
	}
	if !strings.Contains(g.String(), "[static track]") {
		t.Error("String should render the static track")
	}
}

func TestEntriesAndChains(t *testing.T) {
	g := New(sinkRef)
	if g.Reachable() {
		t.Error("empty SSG must be unreachable")
	}
	entry := dex.NewMethodRef("com.a.Main", "onCreate", dex.Void, dex.T("android.os.Bundle"))
	g.MarkEntry(entry)
	g.MarkEntry(entry) // dedup
	if !g.Reachable() || len(g.Entries()) != 1 {
		t.Errorf("entries = %v", g.Entries())
	}
	g.AddChain([]dex.MethodRef{entry, methodA})
	if len(g.Chains()) != 1 || len(g.Chains()[0]) != 2 {
		t.Errorf("chains = %v", g.Chains())
	}
}

func TestHierarchicalTaintMap(t *testing.T) {
	g := New(sinkRef)
	ta := g.Taints(methodA)
	tb := g.Taints(methodB)
	if ta == tb {
		t.Fatal("taint sets must be per-method")
	}
	ta.AddLocal("r1")
	if !g.Taints(methodA).HasLocal("r1") {
		t.Error("taint set must persist per method")
	}
	if g.Taints(methodB).HasLocal("r1") {
		t.Error("taints must not leak across methods")
	}
	g.GlobalTaint.AddStatic(fieldRef)
	if !g.GlobalTaint.HasStatic(fieldRef) {
		t.Error("global static taint lost")
	}
}

func TestTaintSetFieldSemantics(t *testing.T) {
	ts := NewTaintSet()
	f1 := dex.NewFieldRef("com.a.B", "host", dex.StringT)
	f2 := dex.NewFieldRef("com.a.B", "port", dex.Int)

	// Tainting a field also keeps the object local tainted (caller adds it).
	ts.AddLocal("r0")
	ts.AddField("r0", f1)
	ts.AddField("r0", f2)
	if !ts.HasField("r0", f1) || !ts.HasAnyFieldOf("r0") {
		t.Error("field taint lost")
	}

	// Removing one field keeps the object while another field remains.
	ts.RemoveField("r0", f1)
	if !ts.HasLocal("r0") {
		t.Error("object must stay tainted while fields remain")
	}
	// Removing the last field unta ints the object too (paper Sec. V-A).
	ts.RemoveField("r0", f2)
	if ts.HasLocal("r0") {
		t.Error("object must be untainted when its last field is removed")
	}
	if !ts.Empty() {
		t.Errorf("taint set should be empty, size=%d", ts.Size())
	}
}

func TestTaintSetStaticFields(t *testing.T) {
	ts := NewTaintSet()
	ts.AddStatic(fieldRef)
	if got := ts.StaticFields(); len(got) != 1 || got[0] != fieldRef.SootSignature() {
		t.Errorf("StaticFields = %v", got)
	}
	ts.RemoveStatic(fieldRef)
	if !ts.Empty() {
		t.Error("static field removal failed")
	}
}

func TestTaintSetSizeProperty(t *testing.T) {
	// Adding n distinct locals then removing them empties the set.
	f := func(names []string) bool {
		ts := NewTaintSet()
		uniq := map[string]bool{}
		for _, n := range names {
			ts.AddLocal(n)
			uniq[n] = true
		}
		if ts.Size() != len(uniq) {
			return false
		}
		for n := range uniq {
			ts.RemoveLocal(n)
		}
		return ts.Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGraphStringRendersFig6Shape(t *testing.T) {
	g := New(sinkRef)
	u := g.AddUnit(methodA, 2, stmt("block"))
	g.MarkSink(u)
	g.AddEdge(CallEdge, u, methodB)
	entry := dex.NewMethodRef("com.a.Main", "onCreate", dex.Void)
	g.MarkEntry(entry)
	s := g.String()
	for _, frag := range []string{
		"SSG for sink <javax.crypto.Cipher:",
		"[<com.a.A: void doWork()>]",
		"// sink",
		"edge(call): #0 -> <com.a.B: java.lang.String helper()>",
		"entry: <com.a.Main: void onCreate()>",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("SSG dump missing %q:\n%s", frag, s)
		}
	}
}

// TestTaintSetVersion pins the mutation-counter contract the per-app slice
// interning relies on: the version changes exactly when the set's contents
// change, so idempotent re-seeding is invisible.
func TestTaintSetVersion(t *testing.T) {
	ts := NewTaintSet()
	f := dex.NewFieldRef("com.a.B", "f", dex.Int)
	v0 := ts.Version()
	ts.AddLocal("r1")
	if ts.Version() == v0 {
		t.Fatal("adding a new local must bump the version")
	}
	v1 := ts.Version()
	ts.AddLocal("r1") // idempotent
	if ts.Version() != v1 {
		t.Error("re-adding an existing local must not bump the version")
	}
	ts.AddField("r1", f)
	v2 := ts.Version()
	if v2 == v1 {
		t.Error("adding a field must bump the version")
	}
	ts.AddField("r1", f)
	if ts.Version() != v2 {
		t.Error("re-adding an existing field must not bump the version")
	}
	ts.RemoveLocal("nope")
	if ts.Version() != v2 {
		t.Error("removing an absent local must not bump the version")
	}
	ts.AddStatic(f)
	v3 := ts.Version()
	ts.AddStatic(f)
	if ts.Version() != v3 {
		t.Error("re-adding an existing static must not bump the version")
	}
	ts.RemoveStatic(f)
	if ts.Version() == v3 {
		t.Error("removing a present static must bump the version")
	}
}
