// Package ssg implements the self-contained slicing graph of paper
// Sec. V-A: the structure BackDroid builds during search-based backward
// slicing and that forward constant/points-to propagation later consumes.
//
// Compared with path-like slices, an SSG additionally carries:
//   - a hierarchical taint map (one taint set per tracked method plus a
//     global set for static fields),
//   - the inter-procedural relationships uncovered by bytecode search
//     (call and return edges), and
//   - the raw typed IR statements, wrapped in SSGUnit nodes,
//
// plus a special static track holding off-path <clinit> statements added on
// demand.
package ssg

import (
	"fmt"
	"sort"
	"strings"

	"backdroid/internal/dex"
	"backdroid/internal/ir"
)

// Unit is an SSGUnit: one recorded statement with its node ID, containing
// method and the raw typed statement (paper: "we record the node ID, the
// signature of corresponding method, and most importantly, the typed
// bytecode Unit statement").
type Unit struct {
	ID     int
	Method dex.MethodRef
	Index  int // statement index within the method body
	Stmt   ir.Unit
}

// String renders the node for SSG dumps.
func (u *Unit) String() string {
	return fmt.Sprintf("#%d [%s] %s", u.ID, u.Method.SootSignature(), u.Stmt)
}

// EdgeKind distinguishes calling from return edges; contained methods get
// both (paper: "we use both calling and return edges for this special
// relationship").
type EdgeKind int

// Edge kinds.
const (
	CallEdge EdgeKind = iota + 1
	ReturnEdge
)

// Edge is an inter-procedural relationship: the call-site unit in the
// caller and the callee method whose recorded units it transfers to.
type Edge struct {
	Kind   EdgeKind
	From   *Unit
	Callee dex.MethodRef
}

// TaintSet tracks tainted locals, object fields and static fields for one
// scope. Every real state change bumps an internal version counter, so
// callers can cheaply detect whether a set has been mutated since a
// recorded point — the per-app slice interning of core relies on this.
type TaintSet struct {
	locals  map[string]bool // local name
	fields  map[string]bool // "<localName>.<field soot sig>"
	static  map[string]bool // field soot sig
	version int             // bumped on every effective mutation
}

// NewTaintSet returns an empty taint set.
func NewTaintSet() *TaintSet {
	return &TaintSet{
		locals: make(map[string]bool),
		fields: make(map[string]bool),
		static: make(map[string]bool),
	}
}

// Version returns the mutation counter: it changes if and only if the
// set's contents changed since a previous Version call.
func (t *TaintSet) Version() int { return t.version }

// AddLocal taints a local by name.
func (t *TaintSet) AddLocal(name string) {
	if !t.locals[name] {
		t.locals[name] = true
		t.version++
	}
}

// RemoveLocal untaints a local.
func (t *TaintSet) RemoveLocal(name string) {
	if t.locals[name] {
		delete(t.locals, name)
		t.version++
	}
}

// HasLocal reports whether the local is tainted.
func (t *TaintSet) HasLocal(name string) bool { return t.locals[name] }

// AddField taints obj.field; the paper also keeps the class object itself
// tainted so the field survives aliasing and method boundaries, so the
// caller should usually AddLocal(obj) too.
func (t *TaintSet) AddField(obj string, field dex.FieldRef) {
	key := obj + "." + field.SootSignature()
	if !t.fields[key] {
		t.fields[key] = true
		t.version++
	}
}

// RemoveField untaints obj.field. Following the paper, when no other
// tainted fields remain on the same object the object local is untainted
// as well.
func (t *TaintSet) RemoveField(obj string, field dex.FieldRef) {
	key := obj + "." + field.SootSignature()
	if t.fields[key] {
		delete(t.fields, key)
		t.version++
	}
	prefix := obj + ".<"
	for k := range t.fields {
		if strings.HasPrefix(k, prefix) {
			return // other fields of obj still tainted
		}
	}
	t.RemoveLocal(obj)
}

// HasField reports whether obj.field is tainted.
func (t *TaintSet) HasField(obj string, field dex.FieldRef) bool {
	return t.fields[obj+"."+field.SootSignature()]
}

// HasAnyFieldOf reports whether any field of the object is tainted.
func (t *TaintSet) HasAnyFieldOf(obj string) bool {
	prefix := obj + ".<"
	for k := range t.fields {
		if strings.HasPrefix(k, prefix) {
			return true
		}
	}
	return false
}

// FieldSigsOf returns the Soot signatures of the tainted fields of the
// object, sorted.
func (t *TaintSet) FieldSigsOf(obj string) []string {
	prefix := obj + ".<"
	var out []string
	for k := range t.fields {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k[len(obj)+1:])
		}
	}
	sort.Strings(out)
	return out
}

// AddStatic taints a static field (global scope).
func (t *TaintSet) AddStatic(field dex.FieldRef) {
	key := field.SootSignature()
	if !t.static[key] {
		t.static[key] = true
		t.version++
	}
}

// RemoveStatic untaints a static field.
func (t *TaintSet) RemoveStatic(field dex.FieldRef) {
	key := field.SootSignature()
	if t.static[key] {
		delete(t.static, key)
		t.version++
	}
}

// HasStatic reports whether the static field is tainted.
func (t *TaintSet) HasStatic(field dex.FieldRef) bool { return t.static[field.SootSignature()] }

// StaticFields returns the tainted static field signatures, sorted.
func (t *TaintSet) StaticFields() []string {
	out := make([]string, 0, len(t.static))
	for k := range t.static {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Empty reports whether nothing is tainted.
func (t *TaintSet) Empty() bool {
	return len(t.locals) == 0 && len(t.fields) == 0 && len(t.static) == 0
}

// Size returns the number of taint entries.
func (t *TaintSet) Size() int { return len(t.locals) + len(t.fields) + len(t.static) }

// Graph is one sink API call's self-contained slicing graph.
type Graph struct {
	SinkMethod dex.MethodRef // the sink API itself
	SinkSite   *Unit         // the initial node holding the sink call

	nextID      int
	units       map[string]*Unit // keyed by method sig + "#" + index
	methodUnits map[string][]*Unit
	edges       []Edge

	// Hierarchical taint map: per tracked method, plus one global set for
	// static fields.
	taints      map[string]*TaintSet
	GlobalTaint *TaintSet

	// StaticTrack holds off-path <clinit> units, analyzed first by the
	// forward pass.
	StaticTrack []*Unit

	entries   []dex.MethodRef
	entrySeen map[string]bool
	chains    [][]dex.MethodRef // recorded entry call chains (entry ... sink)
}

// New creates an empty SSG for the given sink API.
func New(sink dex.MethodRef) *Graph {
	return &Graph{
		SinkMethod:  sink,
		units:       make(map[string]*Unit),
		methodUnits: make(map[string][]*Unit),
		taints:      make(map[string]*TaintSet),
		GlobalTaint: NewTaintSet(),
		entrySeen:   make(map[string]bool),
	}
}

func unitKey(m dex.MethodRef, idx int) string {
	return m.SootSignature() + "#" + fmt.Sprint(idx)
}

// AddUnit records a statement node, returning the existing node when the
// same statement was already recorded (slices across sinks or branches may
// revisit statements).
func (g *Graph) AddUnit(m dex.MethodRef, idx int, stmt ir.Unit) *Unit {
	key := unitKey(m, idx)
	if u, ok := g.units[key]; ok {
		return u
	}
	u := &Unit{ID: g.nextID, Method: m, Index: idx, Stmt: stmt}
	g.nextID++
	g.units[key] = u
	sig := m.SootSignature()
	g.methodUnits[sig] = append(g.methodUnits[sig], u)
	return u
}

// Unit returns the recorded node for a statement, if present.
func (g *Graph) Unit(m dex.MethodRef, idx int) (*Unit, bool) {
	u, ok := g.units[unitKey(m, idx)]
	return u, ok
}

// MarkSink designates the initial node that contains the sink call.
func (g *Graph) MarkSink(u *Unit) { g.SinkSite = u }

// AddStaticUnit records an off-path <clinit> statement into the static
// track.
func (g *Graph) AddStaticUnit(m dex.MethodRef, idx int, stmt ir.Unit) *Unit {
	u := g.AddUnit(m, idx, stmt)
	for _, existing := range g.StaticTrack {
		if existing == u {
			return u
		}
	}
	g.StaticTrack = append(g.StaticTrack, u)
	return u
}

// AddEdge records an inter-procedural edge.
func (g *Graph) AddEdge(kind EdgeKind, from *Unit, callee dex.MethodRef) {
	for _, e := range g.edges {
		if e.Kind == kind && e.From == from && e.Callee.SootSignature() == callee.SootSignature() {
			return
		}
	}
	g.edges = append(g.edges, Edge{Kind: kind, From: from, Callee: callee})
}

// Edges returns all recorded edges.
func (g *Graph) Edges() []Edge { return g.edges }

// CallEdgesFrom returns the callee methods reachable from the given node
// through call edges.
func (g *Graph) CallEdgesFrom(u *Unit) []dex.MethodRef {
	var out []dex.MethodRef
	for _, e := range g.edges {
		if e.Kind == CallEdge && e.From == u {
			out = append(out, e.Callee)
		}
	}
	return out
}

// UnitsOf returns the recorded nodes of the method in statement order.
func (g *Graph) UnitsOf(m dex.MethodRef) []*Unit {
	us := g.methodUnits[m.SootSignature()]
	sorted := make([]*Unit, len(us))
	copy(sorted, us)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })
	return sorted
}

// Methods returns the signatures of all tracked methods, sorted.
func (g *Graph) Methods() []string {
	out := make([]string, 0, len(g.methodUnits))
	for sig := range g.methodUnits {
		out = append(out, sig)
	}
	sort.Strings(out)
	return out
}

// NodeCount returns the number of recorded SSG units.
func (g *Graph) NodeCount() int { return len(g.units) }

// Taints returns (allocating on first use) the taint set of the method —
// the hierarchical taint map of the paper.
func (g *Graph) Taints(m dex.MethodRef) *TaintSet {
	sig := m.SootSignature()
	ts, ok := g.taints[sig]
	if !ok {
		ts = NewTaintSet()
		g.taints[sig] = ts
	}
	return ts
}

// MarkEntry records that backtracking reached a valid entry point.
func (g *Graph) MarkEntry(m dex.MethodRef) {
	sig := m.SootSignature()
	if g.entrySeen[sig] {
		return
	}
	g.entrySeen[sig] = true
	g.entries = append(g.entries, m)
}

// Entries returns the entry points reached by backtracking.
func (g *Graph) Entries() []dex.MethodRef { return g.entries }

// Reachable reports whether any entry point was reached.
func (g *Graph) Reachable() bool { return len(g.entries) > 0 }

// AddChain records one full entry-to-sink call chain for reporting.
func (g *Graph) AddChain(chain []dex.MethodRef) {
	cp := make([]dex.MethodRef, len(chain))
	copy(cp, chain)
	g.chains = append(g.chains, cp)
}

// Chains returns the recorded entry-to-sink chains.
func (g *Graph) Chains() [][]dex.MethodRef { return g.chains }

// String renders the SSG in the block layout of the paper's Fig. 6: one
// block per method (static track first), plus edge and entry summaries.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SSG for sink %s\n", g.SinkMethod.SootSignature())
	if len(g.StaticTrack) > 0 {
		b.WriteString("  [static track]\n")
		for _, u := range g.StaticTrack {
			fmt.Fprintf(&b, "    %s\n", u)
		}
	}
	for _, sig := range g.Methods() {
		fmt.Fprintf(&b, "  [%s]\n", sig)
		ref, err := dex.ParseSootMethodSignature(sig)
		if err != nil {
			continue
		}
		for _, u := range g.UnitsOf(ref) {
			marker := ""
			if u == g.SinkSite {
				marker = "  // sink"
			}
			fmt.Fprintf(&b, "    %04d: %s%s\n", u.Index, u.Stmt, marker)
		}
	}
	for _, e := range g.edges {
		kind := "call"
		if e.Kind == ReturnEdge {
			kind = "return"
		}
		fmt.Fprintf(&b, "  edge(%s): #%d -> %s\n", kind, e.From.ID, e.Callee.SootSignature())
	}
	for _, m := range g.entries {
		fmt.Fprintf(&b, "  entry: %s\n", m.SootSignature())
	}
	return b.String()
}
