// Package apk implements the app container: a ZIP archive holding
// AndroidManifest.xml and one or more classes*.dex entries, mirroring the
// layout of a real APK. BackDroid's preprocessing step (paper Sec. III
// step 1) extracts the manifest and merges multidex files before
// disassembly.
package apk

import (
	"archive/zip"
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"backdroid/internal/dex"
	"backdroid/internal/manifest"
)

// App is an in-memory app: manifest plus one or more dex files (multidex).
type App struct {
	Name     string // market-style identifier, e.g. "com.lge.app1"
	Manifest *manifest.Manifest
	Dexes    []*dex.File
}

// New builds an app from a manifest and dex files.
func New(name string, m *manifest.Manifest, dexes ...*dex.File) *App {
	return &App{Name: name, Manifest: m, Dexes: dexes}
}

// MergedDex merges the multidex files into a single dex view — the
// "merged, if multidex is used" preprocessing step of the paper.
func (a *App) MergedDex() (*dex.File, error) {
	if len(a.Dexes) == 1 {
		return a.Dexes[0], nil
	}
	merged := dex.NewFile()
	for i, d := range a.Dexes {
		if err := merged.Merge(d); err != nil {
			return nil, fmt.Errorf("apk: merging classes%d.dex: %w", i+1, err)
		}
	}
	return merged, nil
}

// InstructionCount returns the total instruction count across all dex files.
func (a *App) InstructionCount() int {
	n := 0
	for _, d := range a.Dexes {
		n += d.InstructionCount()
	}
	return n
}

// Write serializes the app as a ZIP container.
func (a *App) Write(w io.Writer) error {
	zw := zip.NewWriter(w)
	mf, err := a.Manifest.ToXML()
	if err != nil {
		return fmt.Errorf("apk: manifest: %w", err)
	}
	entry, err := zw.Create("AndroidManifest.xml")
	if err != nil {
		return err
	}
	if _, err := entry.Write(mf); err != nil {
		return err
	}
	for i, d := range a.Dexes {
		name := "classes.dex"
		if i > 0 {
			name = fmt.Sprintf("classes%d.dex", i+1)
		}
		entry, err := zw.Create(name)
		if err != nil {
			return err
		}
		if _, err := entry.Write(dex.Encode(d)); err != nil {
			return err
		}
	}
	return zw.Close()
}

// Bytes serializes the app container to memory.
func (a *App) Bytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := a.Write(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Save writes the app container to a file.
func (a *App) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := a.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses an app container from a reader.
func Read(name string, r io.ReaderAt, size int64) (*App, error) {
	zr, err := zip.NewReader(r, size)
	if err != nil {
		return nil, fmt.Errorf("apk: %w", err)
	}
	app := &App{Name: name}
	type dexEntry struct {
		index int
		file  *zip.File
	}
	var dexEntries []dexEntry
	for _, zf := range zr.File {
		switch {
		case zf.Name == "AndroidManifest.xml":
			data, err := readEntry(zf)
			if err != nil {
				return nil, err
			}
			m, err := manifest.ParseXML(data)
			if err != nil {
				return nil, err
			}
			app.Manifest = m
		case strings.HasPrefix(zf.Name, "classes") && strings.HasSuffix(zf.Name, ".dex"):
			idx := 1
			mid := strings.TrimSuffix(strings.TrimPrefix(zf.Name, "classes"), ".dex")
			if mid != "" {
				idx, err = strconv.Atoi(mid)
				if err != nil {
					return nil, fmt.Errorf("apk: bad dex entry name %q", zf.Name)
				}
			}
			dexEntries = append(dexEntries, dexEntry{index: idx, file: zf})
		}
	}
	if app.Manifest == nil {
		return nil, fmt.Errorf("apk: %s: missing AndroidManifest.xml", name)
	}
	if len(dexEntries) == 0 {
		return nil, fmt.Errorf("apk: %s: no classes.dex entries", name)
	}
	sort.Slice(dexEntries, func(i, j int) bool { return dexEntries[i].index < dexEntries[j].index })
	for _, de := range dexEntries {
		data, err := readEntry(de.file)
		if err != nil {
			return nil, err
		}
		d, err := dex.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("apk: %s: %w", de.file.Name, err)
		}
		app.Dexes = append(app.Dexes, d)
	}
	return app, nil
}

// ReadBytes parses an app container from memory.
func ReadBytes(name string, data []byte) (*App, error) {
	return Read(name, bytes.NewReader(data), int64(len(data)))
}

// Load reads an app container from a file.
func Load(path string) (*App, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	base = strings.TrimSuffix(base, ".apk")
	return Read(base, f, st.Size())
}

func readEntry(zf *zip.File) ([]byte, error) {
	rc, err := zf.Open()
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	return io.ReadAll(rc)
}
