package apk

import (
	"path/filepath"
	"testing"

	"backdroid/internal/dex"
	"backdroid/internal/manifest"
)

func sampleApp(t *testing.T) *App {
	t.Helper()
	m := manifest.New("com.example.app")
	m.Add(manifest.Activity, "com.example.app.MainActivity")

	d1 := dex.NewFile()
	cb := dex.NewClass("com.example.app.MainActivity").Extends("android.app.Activity")
	cb.Method("onCreate", dex.Void, dex.T("android.os.Bundle")).ReturnVoid().Done()
	if err := d1.AddClass(cb.Build()); err != nil {
		t.Fatal(err)
	}

	d2 := dex.NewFile()
	lib := dex.NewClass("com.thirdparty.lib.Helper")
	lib.StaticMethod("help", dex.Void).ReturnVoid().Done()
	if err := d2.AddClass(lib.Build()); err != nil {
		t.Fatal(err)
	}

	return New("com.example.app", m, d1, d2)
}

func TestRoundTripBytes(t *testing.T) {
	app := sampleApp(t)
	data, err := app.Bytes()
	if err != nil {
		t.Fatalf("Bytes: %v", err)
	}
	got, err := ReadBytes("com.example.app", data)
	if err != nil {
		t.Fatalf("ReadBytes: %v", err)
	}
	if got.Manifest.Package != "com.example.app" {
		t.Errorf("package = %q", got.Manifest.Package)
	}
	if len(got.Dexes) != 2 {
		t.Fatalf("dexes = %d, want 2", len(got.Dexes))
	}
	if got.Dexes[0].Class("com.example.app.MainActivity") == nil {
		t.Error("classes.dex content lost")
	}
	if got.Dexes[1].Class("com.thirdparty.lib.Helper") == nil {
		t.Error("classes2.dex content lost")
	}
}

func TestMergedDex(t *testing.T) {
	app := sampleApp(t)
	merged, err := app.MergedDex()
	if err != nil {
		t.Fatalf("MergedDex: %v", err)
	}
	if merged.Class("com.example.app.MainActivity") == nil ||
		merged.Class("com.thirdparty.lib.Helper") == nil {
		t.Error("merge lost classes")
	}
	// Single-dex apps return the dex itself.
	single := New("x", manifest.New("x"), app.Dexes[0])
	m1, err := single.MergedDex()
	if err != nil {
		t.Fatal(err)
	}
	if m1 != app.Dexes[0] {
		t.Error("single dex should be returned as-is")
	}
}

func TestMergedDexDuplicate(t *testing.T) {
	d := dex.NewFile()
	if err := d.AddClass(dex.NewClass("com.a.A").Build()); err != nil {
		t.Fatal(err)
	}
	d2 := dex.NewFile()
	if err := d2.AddClass(dex.NewClass("com.a.A").Build()); err != nil {
		t.Fatal(err)
	}
	app := New("dup", manifest.New("dup"), d, d2)
	if _, err := app.MergedDex(); err == nil {
		t.Error("duplicate classes across dex files must fail to merge")
	}
}

func TestSaveLoad(t *testing.T) {
	app := sampleApp(t)
	path := filepath.Join(t.TempDir(), "com.example.app.apk")
	if err := app.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Name != "com.example.app" {
		t.Errorf("Name = %q", got.Name)
	}
	if got.InstructionCount() != app.InstructionCount() {
		t.Errorf("InstructionCount = %d, want %d", got.InstructionCount(), app.InstructionCount())
	}
}

func TestReadBytesErrors(t *testing.T) {
	if _, err := ReadBytes("x", []byte("not a zip")); err == nil {
		t.Error("ReadBytes should fail on garbage")
	}
}
