package service

import "sort"

// DefaultTenantName is the tenant jobs land under when they name none.
const DefaultTenantName = "default"

// TenantConfig is the dispatch policy of one tenant — one independent
// analysis stream multiplexed onto the scheduler's shared worker pool.
type TenantConfig struct {
	// Weight is the tenant's dispatch credit per weighted-round-robin
	// round: a weight-3 tenant gets up to three jobs dispatched for every
	// one of a weight-1 tenant while both have work queued. Values < 1
	// count as 1. Idle tenants forfeit their credits — weights shape the
	// ratio under contention, they never hold capacity idle.
	Weight int
	// MaxQueueDepth bounds this tenant's pending queue; Submit blocks once
	// this many of its jobs are waiting, so one tenant's backpressure
	// never stalls another's submissions. 0 inherits Config.QueueDepth.
	MaxQueueDepth int
	// StoreBudget selects the tenant's bundle-store policy: 0 shares the
	// scheduler's Config.Store, > 0 gives the tenant a private
	// content-addressed store with that byte budget (its bundles never
	// evict another tenant's working set), < 0 disables the store for
	// this tenant entirely.
	StoreBudget int64
}

// TenantStats is the per-tenant counter block of SchedulerStats.
type TenantStats struct {
	Name            string
	Weight          int
	Queued          int   // jobs currently waiting in this tenant's queue
	Submitted       int64 // jobs ever accepted for this tenant
	Dispatched      int64 // jobs handed to a worker
	Requeued        int64 // jobs re-dispatched after a fleet lease expiry
	CanceledQueued  int64 // cancels that removed a still-queued job
	CanceledRunning int64 // cancels requested against a running job
	StoreBudget     int64 // the TenantConfig.StoreBudget in effect
}

// SchedulerStats aggregates the control-plane counters: per-tenant queue
// and dispatch state, journal accounting and the charged control-plane
// work (journal appends at simtime.JournalAppendUnits each).
type SchedulerStats struct {
	Tenants      []TenantStats // sorted by tenant name
	Dispatched   int64         // total jobs handed to workers
	JournalUnits int64         // control-plane work charged for journaling
	Fleet        *FleetStats   // nil when the scheduler runs without a fleet
}

// tenant is the scheduler-internal queue state of one tenant.
type tenant struct {
	name     string
	cfg      TenantConfig
	depth    int         // resolved MaxQueueDepth
	queue    []*jobState // pending jobs, FIFO
	reserved int         // submitters between space-wait and append
	credits  int         // remaining dispatch credits this WRR round

	submitted       int64
	dispatched      int64
	requeued        int64
	canceledQueued  int64
	canceledRunning int64

	store *BundleStore // private store when cfg.StoreBudget > 0
}

// weight resolves the tenant's WRR credit per round.
func (t *tenant) weight() int {
	if t.cfg.Weight < 1 {
		return 1
	}
	return t.cfg.Weight
}

// tenantLocked finds or creates the tenant record for the (normalized)
// name. Unknown tenants are admitted under Config.DefaultTenant — the
// open-enrollment policy a service fronting many independent submitters
// needs — while names present in Config.Tenants use their configured
// policy. Caller holds s.mu.
func (s *Scheduler) tenantLocked(name string) *tenant {
	if name == "" {
		name = DefaultTenantName
	}
	if t, ok := s.tenants[name]; ok {
		return t
	}
	cfg, ok := s.cfg.Tenants[name]
	if !ok {
		cfg = s.cfg.DefaultTenant
	}
	t := &tenant{name: name, cfg: cfg, depth: cfg.MaxQueueDepth}
	if t.depth <= 0 {
		t.depth = s.cfg.QueueDepth
	}
	t.credits = t.weight()
	if cfg.StoreBudget > 0 {
		t.store = NewBundleStore(cfg.StoreBudget)
	}
	s.tenants[name] = t
	s.order = append(s.order, name)
	sort.Strings(s.order)
	return t
}

// bundleStore resolves the store jobs of this tenant analyze against.
func (t *tenant) bundleStore(shared *BundleStore) *BundleStore {
	switch {
	case t.cfg.StoreBudget > 0:
		return t.store
	case t.cfg.StoreBudget < 0:
		return nil
	}
	return shared
}

// popWRR dispatches the next job under deterministic weighted round-robin
// and returns nil when no tenant has work queued. Tenants are visited in
// sorted-name order from a persistent cursor; a tenant with queued work
// is served while it has credits, then the cursor moves on. When a full
// cycle finds queued work only at credit-exhausted tenants, every
// tenant's credits refill and a new round begins — so the dispatch
// sequence is a pure function of the queue contents, never of timing or
// worker count. Caller holds s.mu.
func (s *Scheduler) popWRR() *jobState {
	n := len(s.order)
	if n == 0 {
		return nil
	}
	for sweep := 0; sweep < 2; sweep++ {
		for i := 0; i < n; i++ {
			t := s.tenants[s.order[s.cursor%n]]
			if len(t.queue) > 0 && t.credits > 0 {
				t.credits--
				st := t.queue[0]
				t.queue = t.queue[1:]
				if t.credits == 0 {
					s.cursor = (s.cursor + 1) % n
				}
				t.dispatched++
				s.dispatchSeq++
				st.dispatchSeq = s.dispatchSeq
				return st
			}
			s.cursor = (s.cursor + 1) % n
		}
		// Every queued tenant is out of credits: start a new WRR round.
		for _, name := range s.order {
			t := s.tenants[name]
			t.credits = t.weight()
		}
	}
	return nil
}

// Stats returns the control-plane counters. Journal file counters live on
// the journal itself (Config.Journal.Stats()).
func (s *Scheduler) Stats() SchedulerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SchedulerStats{
		Dispatched:   s.dispatchSeq,
		JournalUnits: s.journalUnits.Load(),
	}
	for _, name := range s.order {
		t := s.tenants[name]
		st.Tenants = append(st.Tenants, TenantStats{
			Name:            t.name,
			Weight:          t.weight(),
			Queued:          len(t.queue),
			Submitted:       t.submitted,
			Dispatched:      t.dispatched,
			Requeued:        t.requeued,
			CanceledQueued:  t.canceledQueued,
			CanceledRunning: t.canceledRunning,
			StoreBudget:     t.cfg.StoreBudget,
		})
	}
	if s.fleet != nil {
		st.Fleet = s.fleet.stats()
	}
	return st
}
