package service

import (
	"sync"
	"testing"

	"backdroid/internal/apk"
	"backdroid/internal/appgen"
	"backdroid/internal/simtime"
)

// collectEvents drains an event channel into a per-job slice map.
func collectEvents(wg *sync.WaitGroup, events <-chan Event, mu *sync.Mutex, byJob map[JobID][]EventKind) {
	defer wg.Done()
	for ev := range events {
		mu.Lock()
		byJob[ev.Job] = append(byJob[ev.Job], ev.Kind)
		mu.Unlock()
	}
}

// TestCancelRunningJobDeterminism pins the in-flight cancellation
// contract: canceling a running job emits exactly one terminal event
// (canceled), no sink events follow it, Wait returns ErrCanceled with no
// result, and the engine stops — the job's gate guarantees the cancel is
// registered while the job is provably running.
func TestCancelRunningJobDeterminism(t *testing.T) {
	events := make(chan Event, 64)
	var wg sync.WaitGroup
	var mu sync.Mutex
	byJob := make(map[JobID][]EventKind)
	wg.Add(1)
	go collectEvents(&wg, events, &mu, byJob)

	s := New(Config{Workers: 1, Events: events})
	started := make(chan struct{})
	release := make(chan struct{})
	// A heavy app, so the analysis that follows the gate has plenty of
	// work to cancel out of.
	spec := appgen.ManySinkOutlierSpec(42)
	id, err := s.Submit(Job{Name: "victim", Source: func() (*apk.App, error) {
		close(started)
		<-release
		return appgenApp(t, spec)
	}, RunBackDroid: true})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the job is on the worker: started=true, engine not yet built
	if !s.Cancel(id) {
		t.Fatal("cancel of a running job must register")
	}
	if s.Cancel(id) {
		t.Fatal("double cancel of a running job must report false")
	}
	close(release)

	res, err := s.Wait(id)
	if err != ErrCanceled {
		t.Fatalf("Wait(canceled running job) = %v, want ErrCanceled", err)
	}
	if res != nil {
		t.Fatalf("canceled job returned a result: %+v", res)
	}
	s.Close()
	close(events)
	wg.Wait()

	seq := byJob[id]
	want := []EventKind{EventQueued, EventStarted, EventCanceled}
	if len(seq) != len(want) {
		t.Fatalf("event sequence = %v, want %v (single terminal, no sinks)", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("event sequence = %v, want %v", seq, want)
		}
	}
}

// TestCancelManyRunningJobsConcurrently hammers the cancel path under
// the race detector: every job gets exactly one terminal event and the
// scheduler shuts down cleanly.
func TestCancelManyRunningJobsConcurrently(t *testing.T) {
	const jobs = 8
	events := make(chan Event, 256)
	var wg sync.WaitGroup
	var mu sync.Mutex
	byJob := make(map[JobID][]EventKind)
	wg.Add(1)
	go collectEvents(&wg, events, &mu, byJob)

	s := New(Config{Workers: jobs, QueueDepth: jobs, Events: events})
	var startedWG sync.WaitGroup
	release := make(chan struct{})
	ids := make([]JobID, jobs)
	spec := appgen.ManySinkOutlierSpec(7)
	for i := 0; i < jobs; i++ {
		startedWG.Add(1)
		id, err := s.Submit(Job{Name: "victim", Source: func() (*apk.App, error) {
			startedWG.Done()
			<-release
			return appgenApp(t, spec)
		}, RunBackDroid: true})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	startedWG.Wait() // every job is on a worker
	var cancelWG sync.WaitGroup
	for _, id := range ids {
		cancelWG.Add(1)
		go func(id JobID) {
			defer cancelWG.Done()
			if !s.Cancel(id) {
				t.Errorf("cancel of running job %d failed", id)
			}
		}(id)
	}
	cancelWG.Wait()
	close(release)
	for _, id := range ids {
		if _, err := s.Wait(id); err != ErrCanceled {
			t.Fatalf("job %d: Wait = %v, want ErrCanceled", id, err)
		}
	}
	s.Close()
	close(events)
	wg.Wait()

	for _, id := range ids {
		terminals := 0
		for _, k := range byJob[id] {
			switch k {
			case EventDone, EventFailed, EventCanceled:
				terminals++
				if k != EventCanceled {
					t.Fatalf("job %d terminal = %v, want canceled", id, k)
				}
			case EventSink:
				t.Fatalf("job %d streamed a sink event after cancel", id)
			}
		}
		if terminals != 1 {
			t.Fatalf("job %d emitted %d terminal events: %v", id, terminals, byJob[id])
		}
	}
}

// TestCancelChargesOnlyWorkDone pins the accounting contract at the
// engine level through the scheduler: a canceled run is aborted by the
// meter within one checkpoint, so the work the engine performed before
// the cancel is the work that was charged — verified here by the analysis
// returning simtime.ErrCanceled rather than completing a report.
func TestCancelChargesOnlyWorkDone(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	id, err := s.Submit(Job{Name: "victim", Source: func() (*apk.App, error) {
		close(started)
		<-release
		return appgenApp(t, testSpec(3))
	}, RunBackDroid: true})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if !s.Cancel(id) {
		t.Fatal("cancel must register")
	}
	close(release)
	if _, err := s.Wait(id); err != ErrCanceled {
		t.Fatalf("Wait = %v, want ErrCanceled", err)
	}
	// The cancellation error the engine layer uses is distinct from a
	// timeout, so TimedOut reports can never absorb a kill.
	if simtime.ErrCanceled == simtime.ErrTimeout {
		t.Fatal("sentinel errors must be distinct")
	}
}

// TestCancelQueuedThenRunningCountersSplit pins the stats split: queued
// cancels and running cancels are counted separately per tenant.
func TestCancelQueuedThenRunningCountersSplit(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	started := make(chan struct{})
	release := make(chan struct{})
	running, err := s.Submit(Job{Name: "running", Tenant: "acme", Source: func() (*apk.App, error) {
		close(started)
		<-release
		return appgenApp(t, testSpec(0))
	}, RunBackDroid: true})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(Job{Name: "queued", Tenant: "acme", Source: sourceFor(testSpec(1)), RunBackDroid: true})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if !s.Cancel(queued) || !s.Cancel(running) {
		t.Fatal("both cancels must register")
	}
	close(release)
	if _, err := s.Wait(running); err != ErrCanceled {
		t.Fatalf("running job Wait = %v", err)
	}
	if _, err := s.Wait(queued); err != ErrCanceled {
		t.Fatalf("queued job Wait = %v", err)
	}
	s.Close()
	for _, ts := range s.Stats().Tenants {
		if ts.Name != "acme" {
			continue
		}
		if ts.CanceledQueued != 1 || ts.CanceledRunning != 1 {
			t.Fatalf("acme counters = %+v", ts)
		}
		return
	}
	t.Fatal("tenant acme missing from stats")
}
