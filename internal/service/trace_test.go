package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"backdroid/internal/appgen"
	"backdroid/internal/core"
	"backdroid/internal/faultinject"
	"backdroid/internal/obs"
)

// traceTailRun drives the trace scenario: the heavy-tail outlier alone
// on a 4-node fleet, chunked at 32 sinks with an early steal trigger,
// so exactly one chunk ([32,48)) is shed and claimed by an idle node.
// Which physical node claims it varies run to run — the canonical
// export must not. Returns the exported Chrome JSON (nil when
// untraced), the job's canonical report encoding and its charged units.
func traceTailRun(t *testing.T, plan *faultinject.Plan, traced bool) ([]byte, []byte, int64) {
	t.Helper()
	spec := appgen.HeavyTailCorpus(appgen.HeavyTailOptions{
		SmallApps: 3, Seed: 99, HeavySinks: 48, HeavySizeMB: 4,
	})[0]
	opts := core.DefaultOptions()
	opts.SinkChunk = 32
	var tr *obs.Trace
	if traced {
		tr = obs.NewTrace()
	}
	s := New(Config{
		Nodes:           4,
		NodeStoreBudget: 0,
		Faults:          plan,
		Options:         &opts,
		QueueDepth:      4,
		StealAfterUnits: 64,
		Trace:           tr,
	})
	id, err := s.Submit(Job{Name: spec.Name, Source: sourceFor(spec), RunBackDroid: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Wait(id)
	if err != nil {
		t.Fatalf("job %s: %v", spec.Name, err)
	}
	s.Close()
	var out []byte
	if traced {
		var buf bytes.Buffer
		if err := obs.WriteChrome(&buf, tr); err != nil {
			t.Fatal(err)
		}
		out = buf.Bytes()
	}
	return out, EncodeReport(res.BackDroid), res.BackDroid.Stats.WorkUnits
}

// requireTraceEvents decodes the exported JSON and asserts the named
// event kinds are present, so byte-parity below is never vacuously
// comparing two empty timelines.
func requireTraceEvents(t *testing.T, data []byte, names ...string) {
	t.Helper()
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("exported trace has no events")
	}
	seen := make(map[string]bool, len(doc.TraceEvents))
	for _, ev := range doc.TraceEvents {
		seen[ev.Name] = true
	}
	for _, name := range names {
		if !seen[name] {
			t.Errorf("trace has no %q event", name)
		}
	}
}

// TestTraceDeterministic: two runs of the same corpus through a 4-node
// fleet with sink-chunk stealing engaged export byte-identical Chrome
// JSON, even though the stolen chunk lands on an arbitrary idle node.
// Every anchor in the export is charged simtime quantized at meter
// checkpoints, and physical placement is excluded from the canonical
// form — the two scheduling-dependent sources of divergence.
func TestTraceDeterministic(t *testing.T) {
	a, _, _ := traceTailRun(t, nil, true)
	b, _, _ := traceTailRun(t, nil, true)
	requireTraceEvents(t, a,
		"queued", "dispatch", "steal-shed", "steal-claim", "chunk-merge",
		"backslice", "disassembly")
	if !bytes.Equal(a, b) {
		t.Fatalf("traces of identical runs differ:\nrun1 %d bytes\nrun2 %d bytes\n%s",
			len(a), len(b), firstDiff(a, b))
	}
}

// TestTraceDeterministicUnderChaos: the same byte-parity holds with a
// deterministic fault plan killing the outlier's node mid-run. The kill
// threshold sits past the stolen chunk's total charge, so the fault
// always lands on the main range's attempt; the handoff re-dispatch and
// its backoff all anchor on charged units.
func TestTraceDeterministicUnderChaos(t *testing.T) {
	plan := "kill:job=com.outlier.manysink@600"
	a, _, _ := traceTailRun(t, mustPlan(t, plan), true)
	b, _, _ := traceTailRun(t, mustPlan(t, plan), true)
	requireTraceEvents(t, a, "handoff", "steal-claim", "backslice")
	if !bytes.Equal(a, b) {
		t.Fatalf("chaos traces of identical runs differ:\nrun1 %d bytes\nrun2 %d bytes\n%s",
			len(a), len(b), firstDiff(a, b))
	}
}

// TestTraceZeroCost: tracing is observation only. A traced run's
// canonical report encoding and charged units are identical to an
// untraced run of the same corpus.
func TestTraceZeroCost(t *testing.T) {
	_, encOff, unitsOff := traceTailRun(t, nil, false)
	_, encOn, unitsOn := traceTailRun(t, nil, true)
	if unitsOn != unitsOff {
		t.Errorf("tracing changed the charged units: %d traced, %d untraced", unitsOn, unitsOff)
	}
	if !bytes.Equal(encOn, encOff) {
		t.Errorf("tracing changed the canonical report encoding")
	}
}

// firstDiff renders the first divergent region of two byte slices for
// failure messages.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo, hi := i-80, i+80
			if lo < 0 {
				lo = 0
			}
			end1, end2 := hi, hi
			if end1 > len(a) {
				end1 = len(a)
			}
			if end2 > len(b) {
				end2 = len(b)
			}
			return fmt.Sprintf("first divergence at byte %d:\nrun1: ...%s...\nrun2: ...%s...",
				i, a[lo:end1], b[lo:end2])
		}
	}
	return "one trace is a prefix of the other"
}
