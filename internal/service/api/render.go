// The stdin wire protocol: line parsing and event/stats rendering.
// These are the exact bytes cmd/backdroidd has always printed — the CI
// resubmission-parity and crash-recovery legs diff this output across
// runs, so any change here is a protocol change, not a refactor.
package api

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"backdroid/internal/service"
)

// CommandKind types a parsed stdin protocol line.
type CommandKind int

// Stdin protocol commands.
const (
	// CmdNone is a blank or comment line: nothing to do.
	CmdNone CommandKind = iota
	CmdSubmit
	CmdCancel
	CmdStats
	CmdRecover
	CmdDie
	CmdQuit
)

// Command is one parsed stdin protocol line, carrying the typed request
// of its verb.
type Command struct {
	Kind   CommandKind
	Submit SubmitRequest // Kind == CmdSubmit
	Cancel CancelRequest // Kind == CmdCancel
	// Node carries the `die node=N` form: 0 kills the whole process (the
	// classic crash drill), N > 0 fences one fleet node and keeps serving.
	Node int
}

// ParseLine parses one stdin protocol line into a typed command. Parse
// errors carry the exact diagnostic the protocol prints after its
// "error: " prefix.
func ParseLine(line string) (Command, error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return Command{Kind: CmdNone}, nil
	}
	cmd, arg := line, ""
	if i := strings.IndexByte(line, ' '); i >= 0 {
		cmd, arg = line[:i], strings.TrimSpace(line[i+1:])
	}
	switch cmd {
	case "quit", "exit":
		return Command{Kind: CmdQuit}, nil
	case "die":
		if arg == "" {
			return Command{Kind: CmdDie}, nil
		}
		rest, ok := strings.CutPrefix(arg, "node=")
		if !ok {
			return Command{}, fmt.Errorf("die wants no argument or node=N, got %q", arg)
		}
		node, err := strconv.Atoi(rest)
		if err != nil || node < 1 {
			return Command{}, fmt.Errorf("die node wants a positive node id, got %q", rest)
		}
		return Command{Kind: CmdDie, Node: node}, nil
	case "stats":
		return Command{Kind: CmdStats}, nil
	case "recover":
		return Command{Kind: CmdRecover}, nil
	case "cancel":
		id, err := strconv.ParseInt(arg, 10, 64)
		if err != nil {
			return Command{}, fmt.Errorf("cancel wants a job id, got %q", arg)
		}
		return Command{Kind: CmdCancel, Cancel: CancelRequest{ID: id}}, nil
	case "submit":
		return parseSubmit(arg)
	default:
		// A bare path is a submit.
		return parseSubmit(line)
	}
}

// parseSubmit parses the submit argument form, optionally prefixed with
// "tenant=NAME ".
func parseSubmit(arg string) (Command, error) {
	tenant := ""
	if rest, ok := strings.CutPrefix(arg, "tenant="); ok {
		t, path, ok := strings.Cut(rest, " ")
		if !ok {
			return Command{}, fmt.Errorf("submit wants a path")
		}
		tenant, arg = t, strings.TrimSpace(path)
	}
	if arg == "" {
		return Command{}, fmt.Errorf("submit wants a path")
	}
	return Command{Kind: CmdSubmit, Submit: SubmitRequest{Tenant: tenant, Path: arg}}, nil
}

// EventLine renders one scheduler event as the stdin protocol's stable
// single line (trailing newline included). Sink and done lines carry
// the deterministic detection fields first, so diffing two submissions
// of the same app checks reuse end to end; withStats appends the cost
// counters to done lines.
func EventLine(ev service.Event, withStats bool) string {
	switch ev.Kind {
	case service.EventSink:
		s := ev.Sink
		return fmt.Sprintf("sink id=%d app=%s sink=%s caller=%s reachable=%v insecure=%v values=%v\n",
			ev.Job, ev.Name, s.Call.Sink.Method.SootSignature(),
			s.Call.Caller.SootSignature(), s.Reachable, s.Insecure, s.Values)
	case service.EventDone:
		r := ev.Result.BackDroid
		line := fmt.Sprintf("done id=%d app=%s sinks=%d insecure=%d",
			ev.Job, ev.Name, len(r.Sinks), len(r.InsecureSinks()))
		if withStats {
			st := r.Stats
			line += fmt.Sprintf(" units=%d store=%s disassembled=%d builds=%d memo=%d",
				st.WorkUnits, storeState(st), st.DumpLinesDisassembled,
				st.Search.IndexBuilds, st.ForwardMemoHits)
			if st.ShardsUnchanged+st.ShardsChanged > 0 {
				line += fmt.Sprintf(" delta_shards=%d/%d reused=%d rerun=%d",
					st.ShardsUnchanged, st.ShardsUnchanged+st.ShardsChanged,
					st.SinksReused, st.SinksRerun)
			}
		}
		return line + "\n"
	case service.EventFailed:
		return fmt.Sprintf("failed id=%d app=%s err=%v\n", ev.Job, ev.Name, ev.Err)
	case service.EventStarted:
		if ev.Node > 0 {
			// Fleet deployments label the dispatch; without a fleet the
			// line keeps its historical bytes.
			return fmt.Sprintf("started id=%d app=%s node=%d attempt=%d\n",
				ev.Job, ev.Name, ev.Node, ev.Attempt)
		}
		return fmt.Sprintf("started id=%d app=%s\n", ev.Job, ev.Name)
	default:
		return fmt.Sprintf("%s id=%d app=%s\n", ev.Kind, ev.Job, ev.Name)
	}
}

// StatsLines renders the stats response as the protocol's stable lines:
// bundle store, shard store, settled-report store, per-tenant dispatch
// and journal counters, one line each. The settled-report line is the
// only addition since the serving tier landed; every pre-existing line
// is byte-identical to what the daemon always printed.
func StatsLines(resp StatsResponse) string {
	var b strings.Builder
	if resp.Store == nil {
		b.WriteString("stats store=disabled\n")
	} else {
		st := resp.Store
		fmt.Fprintf(&b, "stats store entries=%d bytes=%d hits=%d misses=%d puts=%d evictions=%d drops=%d\n",
			st.Entries, st.Bytes, st.Hits, st.Misses, st.Puts, st.Evictions, st.Drops)
		sh := resp.ShardStore
		fmt.Fprintf(&b, "stats shardstore entries=%d bytes=%d puts=%d hits=%d deduped=%d\n",
			sh.Entries, sh.Bytes, sh.Puts, sh.Hits, sh.BytesDeduped)
	}
	if rs := resp.Reports; rs != nil {
		fmt.Fprintf(&b, "stats reports entries=%d bytes=%d hits=%d misses=%d puts=%d evictions=%d journaled=%d recovered=%d\n",
			rs.Entries, rs.Bytes, rs.Hits, rs.Misses, rs.Puts, rs.Evictions,
			rs.Journaled, rs.Recovered)
	}
	for _, t := range resp.Tenants {
		fmt.Fprintf(&b, "stats tenant name=%s weight=%d queued=%d submitted=%d dispatched=%d canceled_queued=%d canceled_running=%d\n",
			t.Name, t.Weight, t.Queued, t.Submitted, t.Dispatched,
			t.CanceledQueued, t.CanceledRunning)
	}
	if js := resp.Journal; js != nil {
		fmt.Fprintf(&b, "stats journal records=%d bytes=%d pending=%d appends=%d compactions=%d recovered=%d dropped=%d units=%d\n",
			js.Records, js.Bytes, js.Pending, js.Appends, js.Compactions,
			js.Recovered, js.Dropped, resp.JournalUnits)
	}
	if fs := resp.Fleet; fs != nil {
		fmt.Fprintf(&b, "stats fleet nodes=%d live=%d killed=%d handoffs=%d expired_leases=%d lost_units=%d overhead_units=%d remote_gets=%d fetch_faults=%d\n",
			fs.Nodes, fs.Live, fs.Killed, fs.Handoffs, fs.ExpiredLeases,
			fs.LostUnits, fs.OverheadUnits, fs.RemoteGets, fs.FetchFaults)
		// Work-stealing counters ride on their own line, keeping the fleet
		// line's bytes — the append-only protocol — untouched.
		fmt.Fprintf(&b, "stats steal steals=%d victims=%d stolen_sinks=%d steal_units=%d makespan_units=%d\n",
			fs.Steals, fs.StealVictims, fs.StolenSinks, fs.StealUnits, fs.MakespanUnits)
		for _, n := range fs.PerNode {
			fmt.Fprintf(&b, "stats node id=%d state=%s units=%d jobs=%d beats=%d dropped=%d\n",
				n.ID, n.State, n.Units, n.Jobs, n.Beats, n.Dropped)
		}
	}
	// The registry snapshot rides after the frozen block, one generic
	// line per registered series in sorted-id order — the stdin surface
	// of exactly the set /metrics serves. Appending (never interleaving)
	// keeps every pre-existing line byte-identical.
	if len(resp.Metrics) > 0 {
		ids := make([]string, 0, len(resp.Metrics))
		for id := range resp.Metrics {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Fprintf(&b, "stats metric %s %d\n", id, resp.Metrics[id])
		}
	}
	return b.String()
}
