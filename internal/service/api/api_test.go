package api

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"
	"time"

	"backdroid/internal/apk"
	"backdroid/internal/core"
	"backdroid/internal/dexdump"
	"backdroid/internal/service"
	"backdroid/internal/simtime"
	"backdroid/internal/testapps"
)

// fixturePath writes the deterministic fixture app to disk and returns
// its container path.
func fixturePath(t *testing.T) string {
	t.Helper()
	app, err := testapps.Fixture()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), app.Name+".apk")
	if err := app.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// newTestDispatcher builds a dispatcher with a settled tier over the
// given options.
func newTestDispatcher(opts *core.Options) (*Dispatcher, *service.ReportStore) {
	reports := service.NewReportStore(0)
	d := NewDispatcher(DispatcherConfig{Scheduler: service.Config{
		Workers: 2,
		Options: opts,
		Reports: reports,
	}})
	return d, reports
}

// collectJob drains the subscription until the job's terminal event and
// returns every event of that job, in order.
func collectJob(t *testing.T, sub *Subscription, id int64) []service.Event {
	t.Helper()
	var evs []service.Event
	for {
		ev, ok := sub.Next()
		if !ok {
			t.Fatalf("subscription ended before job %d finished (got %d events)", id, len(evs))
		}
		if int64(ev.Job) != id {
			continue
		}
		evs = append(evs, ev)
		switch ev.Kind {
		case service.EventDone, service.EventFailed, service.EventCanceled:
			return evs
		}
	}
}

// TestDispatcherLifecycleAndSettledResubmission drives the typed API the
// way both front ends do: submit, watch events, query terminal status —
// then resubmits and requires a settled serving with the flat O(1)
// charge and an identical detection surface.
func TestDispatcherLifecycleAndSettledResubmission(t *testing.T) {
	path := fixturePath(t)
	d, reports := newTestDispatcher(nil)
	defer d.Close()
	sub := d.Subscribe()
	defer sub.Close()

	resp, err := d.Submit(SubmitRequest{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if resp.APIVersion != Version || resp.State != StateQueued || resp.ID != 1 {
		t.Fatalf("submit response = %+v", resp)
	}
	evs := collectJob(t, sub, resp.ID)
	if evs[len(evs)-1].Kind != service.EventDone {
		t.Fatalf("terminal event = %v", evs[len(evs)-1].Kind)
	}
	st, err := d.Query(QueryRequest{ID: resp.ID})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Report == nil || len(st.Report.Sinks) == 0 {
		t.Fatalf("terminal status = %+v", st)
	}
	if st.Report.Stats == nil || st.Report.Stats.SettledLookups != 0 {
		t.Fatalf("cold run stats = %+v", st.Report.Stats)
	}

	again, err := d.Submit(SubmitRequest{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	collectJob(t, sub, again.ID)
	st2, err := d.Query(QueryRequest{ID: again.ID})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Report == nil || st2.Report.Stats == nil {
		t.Fatalf("settled status = %+v", st2)
	}
	if got := st2.Report.Stats; got.SettledLookups != 1 || got.Units != simtime.SettledLookupUnits ||
		got.Disassembled != 0 || got.Builds != 0 || got.Store != "hit" {
		t.Fatalf("settled stats = %+v, want the flat settled serving", got)
	}
	if !reflect.DeepEqual(st.Report.Sinks, st2.Report.Sinks) {
		t.Fatal("settled resubmission changed the sink surface")
	}
	if rs := reports.Stats(); rs.Hits != 1 || rs.Puts != 1 {
		t.Fatalf("report store stats = %+v", rs)
	}

	// Unknown jobs and double cancels answer with typed errors.
	if _, err := d.Query(QueryRequest{ID: 999}); err == nil {
		t.Fatal("query of unknown job must fail")
	}
	if _, err := d.Cancel(CancelRequest{ID: resp.ID}); err == nil {
		t.Fatal("cancel of a finished job must fail")
	}
}

// TestParseLineProtocol pins the stdin wire parser, including the exact
// error diagnostics the daemon prints.
func TestParseLineProtocol(t *testing.T) {
	cases := []struct {
		line    string
		want    Command
		wantErr string
	}{
		{line: "", want: Command{Kind: CmdNone}},
		{line: "   # comment", want: Command{Kind: CmdNone}},
		{line: "quit", want: Command{Kind: CmdQuit}},
		{line: "exit", want: Command{Kind: CmdQuit}},
		{line: "die", want: Command{Kind: CmdDie}},
		{line: "stats", want: Command{Kind: CmdStats}},
		{line: "recover", want: Command{Kind: CmdRecover}},
		{line: "cancel 42", want: Command{Kind: CmdCancel, Cancel: CancelRequest{ID: 42}}},
		{line: "cancel nope", wantErr: `cancel wants a job id, got "nope"`},
		{line: "submit /a/b.apk", want: Command{Kind: CmdSubmit, Submit: SubmitRequest{Path: "/a/b.apk"}}},
		{line: "submit tenant=acme /a/b.apk", want: Command{Kind: CmdSubmit, Submit: SubmitRequest{Tenant: "acme", Path: "/a/b.apk"}}},
		{line: "submit", wantErr: "submit wants a path"},
		{line: "submit tenant=acme", wantErr: "submit wants a path"},
		{line: "/bare/path.apk", want: Command{Kind: CmdSubmit, Submit: SubmitRequest{Path: "/bare/path.apk"}}},
	}
	for _, tc := range cases {
		got, err := ParseLine(tc.line)
		if tc.wantErr != "" {
			if err == nil || err.Error() != tc.wantErr {
				t.Errorf("ParseLine(%q) err = %v, want %q", tc.line, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseLine(%q): %v", tc.line, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseLine(%q) = %+v, want %+v", tc.line, got, tc.want)
		}
	}
}

// TestHTTPGateway drives the REST surface end to end over a real
// analysis: submit, poll status, fetch the settled report by content
// address, read stats — plus the error statuses.
func TestHTTPGateway(t *testing.T) {
	path := fixturePath(t)
	opts := core.DefaultOptions()
	d, _ := newTestDispatcher(&opts)
	defer d.Close()
	sub := d.Subscribe()
	defer sub.Close()
	srv := httptest.NewServer(NewHandler(d))
	defer srv.Close()

	post := func(body string) SubmitResponse {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST /v1/jobs status = %d", resp.StatusCode)
		}
		var out SubmitResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	getJSON := func(url string, wantCode int, v any) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("GET %s status = %d, want %d", url, resp.StatusCode, wantCode)
		}
		if v != nil {
			if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
				t.Fatal(err)
			}
		}
	}

	sr := post(fmt.Sprintf(`{"path":%q}`, path))
	collectJob(t, sub, sr.ID)
	var st JobStatus
	getJSON(fmt.Sprintf("%s/v1/jobs/%d", srv.URL, sr.ID), http.StatusOK, &st)
	if st.State != StateDone || st.Report == nil || len(st.Report.Sinks) == 0 {
		t.Fatalf("job status = %+v", st)
	}

	// The settled report is addressable by its content-address pair.
	app, err := apk.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	appFP := dexdump.AppFingerprint(app.Dexes)
	optFP := OptionsFingerprint(&opts)
	var rr ReportResponse
	getJSON(fmt.Sprintf("%s/v1/reports/%016x/%016x", srv.URL, appFP, optFP), http.StatusOK, &rr)
	if len(rr.Report.Sinks) != len(st.Report.Sinks) {
		t.Fatalf("report endpoint sinks = %d, job status has %d", len(rr.Report.Sinks), len(st.Report.Sinks))
	}
	// Encoded carries the exact canonical bytes the store addresses.
	key := service.ReportKey{App: appFP, Options: optFP}
	enc, ok := d.Scheduler().Reports().Encoded(key)
	if !ok || !bytes.Equal(rr.Encoded, enc) {
		t.Fatal("report endpoint's Encoded differs from the store's canonical bytes")
	}
	dec, err := service.DecodeReport(rr.Encoded)
	if err != nil || len(dec.Sinks) != len(st.Report.Sinks) {
		t.Fatalf("served encoding undecodable: %v", err)
	}

	var stats StatsResponse
	getJSON(srv.URL+"/v1/stats", http.StatusOK, &stats)
	if stats.Reports == nil || stats.Reports.Puts != 1 {
		t.Fatalf("stats reports section = %+v", stats.Reports)
	}
	if stats.Dispatched != 1 {
		t.Fatalf("stats dispatched = %d", stats.Dispatched)
	}

	// Error surfaces: bad id, unknown job, unknown report, bad body,
	// cancel conflict.
	getJSON(srv.URL+"/v1/jobs/notanid", http.StatusBadRequest, nil)
	getJSON(srv.URL+"/v1/jobs/999", http.StatusNotFound, nil)
	getJSON(fmt.Sprintf("%s/v1/reports/%016x/%016x", srv.URL, appFP, optFP+1), http.StatusNotFound, nil)
	getJSON(srv.URL+"/v1/reports/zz/zz", http.StatusBadRequest, nil)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed submit body status = %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%d", srv.URL, sr.ID), nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel of finished job status = %d, want 409", dresp.StatusCode)
	}
}

// TestHTTPEventStream pins the SSE surface: a subscriber sees the full
// queued/started/sinks/done bracket of a job submitted after it
// connected, as JSON payloads mirroring the scheduler events.
func TestHTTPEventStream(t *testing.T) {
	path := fixturePath(t)
	d, _ := newTestDispatcher(nil)
	defer d.Close()
	srv := httptest.NewServer(NewHandler(d))
	defer srv.Close()

	client := &http.Client{Timeout: 60 * time.Second}
	resp, err := client.Get(srv.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	if _, err := d.Submit(SubmitRequest{Path: path}); err != nil {
		t.Fatal(err)
	}

	var kinds []string
	sinks := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev EventJSON
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		if ev.APIVersion != Version || ev.ID != 1 {
			t.Fatalf("SSE payload = %+v", ev)
		}
		kinds = append(kinds, ev.Kind)
		if ev.Kind == "sink" {
			if ev.Sink == nil || ev.Sink.Sink == "" {
				t.Fatalf("sink event without a sink payload: %+v", ev)
			}
			sinks++
		}
		if ev.Kind == "done" {
			break
		}
	}
	if len(kinds) < 3 || kinds[0] != "queued" || kinds[1] != "started" || kinds[len(kinds)-1] != "done" {
		t.Fatalf("SSE event bracket = %v", kinds)
	}
	if sinks == 0 {
		t.Fatal("no sink events streamed over SSE")
	}
}

// TestHTTPStdinParity is the two-front-ends-one-dispatcher contract: the
// same app submitted through the stdin parser and through the HTTP
// gateway produces identical sink verdicts (identical stdin wire lines,
// id stripped), and the HTTP submission is served settled from the stdin
// submission's report.
func TestHTTPStdinParity(t *testing.T) {
	path := fixturePath(t)
	d, _ := newTestDispatcher(nil)
	defer d.Close()
	sub := d.Subscribe()
	defer sub.Close()
	srv := httptest.NewServer(NewHandler(d))
	defer srv.Close()

	// Front end A: the stdin protocol.
	cmd, err := ParseLine("submit " + path)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := d.Submit(cmd.Submit)
	if err != nil {
		t.Fatal(err)
	}
	evsA := collectJob(t, sub, ra.ID)

	// Front end B: the HTTP gateway, same dispatcher.
	body := fmt.Sprintf(`{"path":%q}`, path)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rb SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&rb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	evsB := collectJob(t, sub, rb.ID)

	// Identical wire rendering, job id stripped — the same parity check
	// CI runs between a curl'd submission and a piped one.
	strip := func(evs []service.Event) string {
		var b strings.Builder
		re := regexp.MustCompile(`id=\d+ `)
		for _, ev := range evs {
			if ev.Kind == service.EventSink {
				b.WriteString(re.ReplaceAllString(EventLine(ev, false), ""))
			}
		}
		return b.String()
	}
	if strip(evsA) == "" {
		t.Fatal("stdin submission streamed no sinks")
	}
	if strip(evsA) != strip(evsB) {
		t.Fatalf("front ends diverged:\n--- stdin ---\n%s--- http ---\n%s", strip(evsA), strip(evsB))
	}

	stB, err := d.Query(QueryRequest{ID: rb.ID})
	if err != nil {
		t.Fatal(err)
	}
	if stB.Report == nil || stB.Report.Stats == nil || stB.Report.Stats.SettledLookups != 1 {
		t.Fatalf("HTTP resubmission stats = %+v, want settled service from the stdin job", stB.Report)
	}
	stA, err := d.Query(QueryRequest{ID: ra.ID})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stA.Report.Sinks, stB.Report.Sinks) {
		t.Fatal("front ends returned different sink surfaces")
	}
}

// TestDispatcherCloseEndsSubscriptions pins shutdown: Close drains, ends
// every subscription after its final event, and later Submits and
// Subscribes refuse.
func TestDispatcherCloseEndsSubscriptions(t *testing.T) {
	d, _ := newTestDispatcher(nil)
	sub := d.Subscribe()
	d.Close()
	if _, ok := sub.Next(); ok {
		t.Fatal("subscription still delivering after Close")
	}
	if _, err := d.Submit(SubmitRequest{Path: "/x.apk"}); err == nil {
		t.Fatal("submit after Close must fail")
	}
	if d.Subscribe() != nil {
		t.Fatal("subscribe after Close must return nil")
	}
	d.Close() // idempotent
}
