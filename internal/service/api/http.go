// The HTTP/JSON gateway: the same Dispatcher the stdin protocol drives,
// behind a small REST surface.
//
//	POST /v1/jobs                      submit (SubmitRequest JSON body)
//	GET  /v1/jobs/{id}                 job status + terminal report
//	DELETE /v1/jobs/{id}               cancel
//	GET  /v1/reports/{app}/{options}   settled report by content address
//	                                   (two 16-hex-digit fingerprints)
//	GET  /v1/stats                     service counters
//	GET  /v1/events                    server-sent event stream
//	GET  /v1/trace/{job}               one job's Chrome trace-event JSON
//	GET  /metrics                      Prometheus text exposition
//
// Every response is JSON with an api_version field; errors are
// {"api_version":1,"error":"..."} with a matching status code. The SSE
// stream mirrors the scheduler's event order exactly — per job: queued,
// started, one sink per verdict, then a single terminal event — the
// same order the stdin protocol prints.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"backdroid/internal/obs"
	"backdroid/internal/service"
)

// errorResponse is the JSON error body.
type errorResponse struct {
	APIVersion int    `json:"api_version"`
	Error      string `json:"error"`
}

// EventJSON is one SSE payload. Span, present on sink events of traced
// runs, is the id ("job/sub/pos") of the backslice span that produced
// the sink — the join key between the event stream and the exported
// trace timeline.
type EventJSON struct {
	APIVersion int       `json:"api_version"`
	Kind       string    `json:"kind"`
	ID         int64     `json:"id"`
	App        string    `json:"app"`
	Sink       *SinkJSON `json:"sink,omitempty"`
	Error      string    `json:"error,omitempty"`
	Span       string    `json:"span,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{APIVersion: Version, Error: fmt.Sprintf(format, args...)})
}

// NewHandler builds the gateway over the dispatcher.
func NewHandler(d *Dispatcher) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad submit body: %v", err)
			return
		}
		resp, err := d.Submit(req)
		if err != nil {
			code := http.StatusBadRequest
			if err == service.ErrClosed {
				code = http.StatusServiceUnavailable
			}
			writeError(w, code, "%v", err)
			return
		}
		writeJSON(w, http.StatusAccepted, resp)
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad job id %q", r.PathValue("id"))
			return
		}
		st, err := d.Query(QueryRequest{ID: id})
		if err != nil {
			writeError(w, http.StatusNotFound, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad job id %q", r.PathValue("id"))
			return
		}
		resp, err := d.Cancel(CancelRequest{ID: id})
		if err != nil {
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("GET /v1/reports/{app}/{options}", func(w http.ResponseWriter, r *http.Request) {
		app, err1 := strconv.ParseUint(r.PathValue("app"), 16, 64)
		opt, err2 := strconv.ParseUint(r.PathValue("options"), 16, 64)
		if err1 != nil || err2 != nil {
			writeError(w, http.StatusBadRequest, "report address wants two hex fingerprints")
			return
		}
		resp, err := d.Report(ReportRequest{App: app, Options: opt})
		if err != nil {
			writeError(w, http.StatusNotFound, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.Stats(StatsRequest{}))
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		d.Metrics().WritePrometheus(w)
	})

	mux.HandleFunc("GET /v1/trace/{job}", func(w http.ResponseWriter, r *http.Request) {
		tr := d.Trace()
		if tr == nil {
			writeError(w, http.StatusNotFound, "tracing disabled (start the daemon with -trace)")
			return
		}
		id, err := strconv.ParseInt(r.PathValue("job"), 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad job id %q", r.PathValue("job"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		obs.WriteChrome(w, tr.Filter(id))
	})

	mux.HandleFunc("GET /v1/events", func(w http.ResponseWriter, r *http.Request) {
		flusher, ok := w.(http.Flusher)
		if !ok {
			writeError(w, http.StatusNotImplemented, "streaming unsupported")
			return
		}
		sub := d.Subscribe()
		if sub == nil {
			writeError(w, http.StatusServiceUnavailable, "service shutting down")
			return
		}
		defer sub.Close()
		// A canceled request must unblock Next: closing the subscription
		// drains it and makes Next return ok=false.
		go func() {
			<-r.Context().Done()
			sub.Close()
		}()
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)
		flusher.Flush()
		for {
			ev, ok := sub.Next()
			if !ok {
				return
			}
			payload := EventJSON{
				APIVersion: Version,
				Kind:       ev.Kind.String(),
				ID:         int64(ev.Job),
				App:        ev.Name,
			}
			if ev.Kind == service.EventSink && ev.Sink != nil {
				s := ev.Sink
				payload.Span = ev.Span
				payload.Sink = &SinkJSON{
					Sink:      s.Call.Sink.Method.SootSignature(),
					Caller:    s.Call.Caller.SootSignature(),
					Line:      s.Call.Line,
					Reachable: s.Reachable,
					Insecure:  s.Insecure,
					Cached:    s.Cached,
					Reused:    s.Reused,
					Values:    s.Values,
				}
			}
			if ev.Err != nil {
				payload.Error = ev.Err.Error()
			}
			data, err := json.Marshal(payload)
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", payload.Kind, data); err != nil {
				return
			}
			flusher.Flush()
		}
	})

	return mux
}
