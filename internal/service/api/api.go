// Package api is the typed service surface of the batch analysis
// daemon: request/response types shared by every front end, a
// Dispatcher that owns the scheduler's event stream, and renderers that
// print the stdin wire protocol byte-for-byte. cmd/backdroidd's stdin
// loop and its HTTP/JSON gateway are both thin adapters over this
// package — one Dispatcher, two transports — so a command behaves
// identically regardless of which front end carried it.
package api

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"backdroid/internal/apk"
	"backdroid/internal/core"
	"backdroid/internal/obs"
	"backdroid/internal/service"
	"backdroid/internal/service/journal"
)

// Version is the API version stamped into every JSON response as
// api_version. Bump it when a response shape changes incompatibly.
const Version = 1

// OptionsFingerprint re-exports the settled-tier options hash, so
// gateway clients can compute report addresses without importing the
// service internals.
func OptionsFingerprint(o *core.Options) uint64 { return service.OptionsFingerprint(o) }

// SubmitRequest queues one app container for analysis. Path is the
// container on disk (opened lazily on the worker, so a bad path
// surfaces as a failed job, not a submit error); Tenant selects the
// analysis stream ("" = default); Name labels events ("" derives the
// label from the path basename).
type SubmitRequest struct {
	Tenant string `json:"tenant,omitempty"`
	Path   string `json:"path"`
	Name   string `json:"name,omitempty"`
}

// QueryRequest identifies one job for a status lookup.
type QueryRequest struct {
	ID int64 `json:"id"`
}

// CancelRequest identifies one job to cancel.
type CancelRequest struct {
	ID int64 `json:"id"`
}

// StatsRequest asks for the service counters (no parameters; it exists
// so every verb has a typed request).
type StatsRequest struct{}

// ReportRequest addresses one settled report by its content-address
// pair.
type ReportRequest struct {
	App     uint64 `json:"app_fingerprint"`
	Options uint64 `json:"options_fingerprint"`
}

// SubmitResponse acknowledges an accepted submission.
type SubmitResponse struct {
	APIVersion int    `json:"api_version"`
	ID         int64  `json:"id"`
	App        string `json:"app"`
	Tenant     string `json:"tenant,omitempty"`
	State      string `json:"state"`
}

// Job states, as JobStatus.State reports them.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// JobStatus is the response of a status query: the job's lifecycle
// state plus, once terminal, its report or error.
type JobStatus struct {
	APIVersion int         `json:"api_version"`
	ID         int64       `json:"id"`
	App        string      `json:"app"`
	Tenant     string      `json:"tenant,omitempty"`
	State      string      `json:"state"`
	Error      string      `json:"error,omitempty"`
	Report     *ReportJSON `json:"report,omitempty"`
}

// CancelResponse acknowledges a delivered cancel request.
type CancelResponse struct {
	APIVersion int   `json:"api_version"`
	ID         int64 `json:"id"`
	Canceled   bool  `json:"canceled"`
}

// RecoverResponse reports a journal replay.
type RecoverResponse struct {
	APIVersion int `json:"api_version"`
	Jobs       int `json:"jobs"`
}

// StatsResponse bundles every service counter. Sections absent from the
// deployment (no store, no journal, no settled tier) are nil. The typed
// sections keep their historical JSON shape; Metrics is the registry
// snapshot — every registered series by its name{labels} id — so the
// JSON surface exposes exactly the set /metrics serves, and the parity
// test holds all three surfaces (Prometheus text, this JSON, the stdin
// stats lines) to the same snapshot.
type StatsResponse struct {
	APIVersion   int                       `json:"api_version"`
	Store        *service.StoreStats       `json:"store,omitempty"`
	ShardStore   *service.ShardStats       `json:"shard_store,omitempty"`
	Reports      *service.ReportStoreStats `json:"reports,omitempty"`
	Tenants      []service.TenantStats     `json:"tenants"`
	Dispatched   int64                     `json:"dispatched"`
	Journal      *journal.Stats            `json:"journal,omitempty"`
	JournalUnits int64                     `json:"journal_units,omitempty"`
	Fleet        *service.FleetStats       `json:"fleet,omitempty"`
	Metrics      map[string]int64          `json:"metrics,omitempty"`
}

// ReportResponse serves one settled report from the content-addressed
// store. Encoded is the canonical settled-report byte form
// (service.EncodeReport) — the representation the benchgate compares
// bitwise — so gateway clients can verify integrity without re-deriving
// the canonical rendering from JSON.
type ReportResponse struct {
	APIVersion int        `json:"api_version"`
	App        string     `json:"app_fingerprint"`
	Options    string     `json:"options_fingerprint"`
	Report     ReportJSON `json:"report"`
	Encoded    []byte     `json:"encoded"` // base64 in JSON
}

// SinkJSON is one per-sink verdict in a response.
type SinkJSON struct {
	Sink      string   `json:"sink"`
	Caller    string   `json:"caller"`
	Line      int      `json:"line"`
	Reachable bool     `json:"reachable"`
	Insecure  bool     `json:"insecure"`
	Cached    bool     `json:"cached,omitempty"`
	Reused    bool     `json:"reused,omitempty"`
	Values    []string `json:"values"`
}

// ReportStatsJSON carries the cost counters the stdin protocol's done
// line prints, under the same names.
type ReportStatsJSON struct {
	Units                int64  `json:"units"`
	Store                string `json:"store"`
	Disassembled         int64  `json:"disassembled"`
	Builds               int    `json:"builds"`
	Memo                 int64  `json:"memo"`
	SettledLookups       int    `json:"settled_lookups,omitempty"`
	DeltaShardsUnchanged int    `json:"delta_shards_unchanged,omitempty"`
	DeltaShardsChanged   int    `json:"delta_shards_changed,omitempty"`
	SinksReused          int    `json:"sinks_reused,omitempty"`
	SinksRerun           int    `json:"sinks_rerun,omitempty"`
}

// ReportJSON is the JSON view of a terminal report: the detection
// surface plus (for job results) the run's cost counters.
type ReportJSON struct {
	App        string           `json:"app"`
	TimedOut   bool             `json:"timed_out,omitempty"`
	Registered []string         `json:"registered,omitempty"`
	Sinks      []SinkJSON       `json:"sinks"`
	Insecure   int              `json:"insecure"`
	Stats      *ReportStatsJSON `json:"stats,omitempty"`
}

// reportJSON renders a core.Report; withStats controls the cost block
// (settled-report serving omits it — the canonical encoding has no
// stats either).
func reportJSON(r *core.Report, withStats bool) *ReportJSON {
	out := &ReportJSON{
		App:        r.App,
		TimedOut:   r.TimedOut,
		Registered: r.Registered,
		Insecure:   len(r.InsecureSinks()),
		Sinks:      make([]SinkJSON, 0, len(r.Sinks)),
	}
	for _, s := range r.Sinks {
		out.Sinks = append(out.Sinks, SinkJSON{
			Sink:      s.Call.Sink.Method.SootSignature(),
			Caller:    s.Call.Caller.SootSignature(),
			Line:      s.Call.Line,
			Reachable: s.Reachable,
			Insecure:  s.Insecure,
			Cached:    s.Cached,
			Reused:    s.Reused,
			Values:    s.Values,
		})
	}
	if withStats {
		st := r.Stats
		out.Stats = &ReportStatsJSON{
			Units:                st.WorkUnits,
			Store:                storeState(st),
			Disassembled:         st.DumpLinesDisassembled,
			Builds:               st.Search.IndexBuilds,
			Memo:                 st.ForwardMemoHits,
			SettledLookups:       st.SettledLookups,
			DeltaShardsUnchanged: st.ShardsUnchanged,
			DeltaShardsChanged:   st.ShardsChanged,
			SinksReused:          st.SinksReused,
			SinksRerun:           st.SinksRerun,
		}
	}
	return out
}

// storeState classifies a run's warm-start outcome the way the done
// line prints it. A settled-lookup serving counts as a hit: the report
// came out of process memory with zero engine work, the strongest form
// of reuse the service has.
func storeState(st core.Stats) string {
	switch {
	case st.SettledLookups > 0, st.BundleStoreHits > 0:
		return "hit"
	case st.BundleStoreMisses > 0:
		return "miss"
	}
	return "off"
}

// DispatcherConfig configures a Dispatcher.
type DispatcherConfig struct {
	// Scheduler configures the underlying service scheduler. The Events
	// field is owned by the Dispatcher and must be nil — the Dispatcher
	// creates the channel, drains it, maintains the job-status table and
	// fans events out to subscribers.
	Scheduler service.Config
	// JobHistory bounds the retained terminal job statuses (oldest
	// evicted first); 0 defaults to 4096.
	JobHistory int
}

// Dispatcher is the shared service core both front ends drive: it owns
// the scheduler and its event stream, tracks per-job status for the
// query API, reaps finished jobs from the scheduler (Forget) and fans
// events out to any number of subscribers (the stdin printer, SSE
// handlers). All methods are safe for concurrent use.
type Dispatcher struct {
	sched   *service.Scheduler
	events  chan service.Event
	drained chan struct{}
	history int

	mu       sync.Mutex
	jobs     map[int64]*JobStatus
	terminal []int64 // terminal job ids, oldest first (eviction order)
	subs     map[int]*Subscription
	nextSub  int
	closed   bool
}

// NewDispatcher builds the scheduler and starts the event drain loop.
func NewDispatcher(cfg DispatcherConfig) *Dispatcher {
	if cfg.JobHistory <= 0 {
		cfg.JobHistory = 4096
	}
	d := &Dispatcher{
		events:  make(chan service.Event, 64),
		drained: make(chan struct{}),
		history: cfg.JobHistory,
		jobs:    make(map[int64]*JobStatus),
		subs:    make(map[int]*Subscription),
	}
	sc := cfg.Scheduler
	sc.Events = d.events
	d.sched = service.New(sc)
	go d.drain()
	return d
}

// Scheduler exposes the underlying scheduler (for stats accessors and
// tests); submitting around the Dispatcher skips the status table.
func (d *Dispatcher) Scheduler() *service.Scheduler { return d.sched }

// drain consumes the scheduler's event stream: status table first, then
// subscriber fan-out, then the Forget reap — so by the time a
// subscriber sees a terminal event, Query already answers with the
// terminal state, and the scheduler has released the job either way.
func (d *Dispatcher) drain() {
	defer close(d.drained)
	for ev := range d.events {
		d.apply(ev)
		d.mu.Lock()
		for _, sub := range d.subs {
			sub.push(ev)
		}
		d.mu.Unlock()
		switch ev.Kind {
		case service.EventDone, service.EventFailed, service.EventCanceled:
			d.sched.Forget(ev.Job)
		}
	}
	d.mu.Lock()
	for _, sub := range d.subs {
		sub.close()
	}
	d.subs = make(map[int]*Subscription)
	d.mu.Unlock()
}

// statusLocked returns (creating if absent) the tracked status of a job.
func (d *Dispatcher) statusLocked(id int64, name string) *JobStatus {
	st, ok := d.jobs[id]
	if !ok {
		st = &JobStatus{APIVersion: Version, ID: id}
		d.jobs[id] = st
	}
	if st.App == "" {
		st.App = name
	}
	return st
}

// apply folds one event into the job-status table.
func (d *Dispatcher) apply(ev service.Event) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.statusLocked(int64(ev.Job), ev.Name)
	switch ev.Kind {
	case service.EventQueued:
		st.State = StateQueued
	case service.EventStarted:
		st.State = StateRunning
	case service.EventSink:
		// Per-sink progress is delivered through subscriptions; the
		// status table carries only the terminal report.
	case service.EventDone:
		st.State = StateDone
		if ev.Result != nil && ev.Result.BackDroid != nil {
			st.Report = reportJSON(ev.Result.BackDroid, true)
		}
		d.settleLocked(st)
	case service.EventFailed:
		st.State = StateFailed
		if ev.Err != nil {
			st.Error = ev.Err.Error()
		}
		d.settleLocked(st)
	case service.EventCanceled:
		st.State = StateCanceled
		d.settleLocked(st)
	}
}

// settleLocked records a terminal transition and evicts the oldest
// terminal statuses beyond the history bound.
func (d *Dispatcher) settleLocked(st *JobStatus) {
	d.terminal = append(d.terminal, st.ID)
	for len(d.terminal) > d.history {
		delete(d.jobs, d.terminal[0])
		d.terminal = d.terminal[1:]
	}
}

// jobName derives the event label from a container path, exactly as the
// stdin protocol always has: the basename without its .apk suffix.
func jobName(path string) string {
	return strings.TrimSuffix(path[strings.LastIndexByte(path, '/')+1:], ".apk")
}

// Submit queues one job. The returned state is always StateQueued: the
// job may already be running (or even settled) by the time the caller
// reads the response, which Query reflects.
func (d *Dispatcher) Submit(req SubmitRequest) (SubmitResponse, error) {
	if req.Path == "" {
		return SubmitResponse{}, errors.New("submit wants a path")
	}
	name := req.Name
	if name == "" {
		name = jobName(req.Path)
	}
	path := req.Path
	id, err := d.sched.Submit(service.Job{
		Name:         name,
		Tenant:       req.Tenant,
		Spec:         path,
		Source:       func() (*apk.App, error) { return apk.Load(path) },
		RunBackDroid: true,
	})
	if err != nil {
		return SubmitResponse{}, err
	}
	d.mu.Lock()
	st := d.statusLocked(int64(id), name)
	st.Tenant = req.Tenant
	if st.State == "" {
		st.State = StateQueued
	}
	d.mu.Unlock()
	return SubmitResponse{
		APIVersion: Version, ID: int64(id), App: name,
		Tenant: req.Tenant, State: StateQueued,
	}, nil
}

// Cancel cancels a queued or running job; the error carries the exact
// diagnostic the stdin protocol prints.
func (d *Dispatcher) Cancel(req CancelRequest) (CancelResponse, error) {
	if !d.sched.Cancel(service.JobID(req.ID)) {
		return CancelResponse{}, fmt.Errorf(
			"job %d not cancelable (unknown, finished or already canceled)", req.ID)
	}
	return CancelResponse{APIVersion: Version, ID: req.ID, Canceled: true}, nil
}

// Query returns the tracked status of a job.
func (d *Dispatcher) Query(req QueryRequest) (JobStatus, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.jobs[req.ID]
	if !ok {
		return JobStatus{}, fmt.Errorf("unknown job %d", req.ID)
	}
	return *st, nil
}

// Stats snapshots every service counter.
func (d *Dispatcher) Stats(StatsRequest) StatsResponse {
	resp := StatsResponse{APIVersion: Version}
	if store := d.sched.Store(); store != nil {
		st := store.Stats()
		resp.Store = &st
		sh := store.ShardStoreStats()
		resp.ShardStore = &sh
	}
	if reports := d.sched.Reports(); reports != nil {
		st := reports.Stats()
		resp.Reports = &st
	}
	ss := d.sched.Stats()
	resp.Tenants = ss.Tenants
	resp.Dispatched = ss.Dispatched
	resp.JournalUnits = ss.JournalUnits
	resp.Fleet = ss.Fleet
	if jnl := d.sched.Journal(); jnl != nil {
		js := jnl.Stats()
		resp.Journal = &js
	}
	resp.Metrics = metricsMap(d.sched.Metrics().Snapshot())
	return resp
}

// metricsMap flattens a registry snapshot into the JSON metrics block:
// series id -> value, histograms contributing their sample count.
func metricsMap(snap obs.Snapshot) map[string]int64 {
	m := make(map[string]int64, len(snap))
	for _, mt := range snap {
		v := mt.Value
		if mt.Kind == obs.HistogramKind {
			v = mt.Hist.Count
		}
		m[mt.ID()] = v
	}
	return m
}

// Metrics returns the scheduler's metrics registry — the /metrics
// handler's source.
func (d *Dispatcher) Metrics() *obs.Registry { return d.sched.Metrics() }

// Trace returns the configured span trace (nil when tracing is off) —
// the /v1/trace handler's source.
func (d *Dispatcher) Trace() *obs.Trace { return d.sched.Trace() }

// Report serves one settled report from the content-addressed store.
func (d *Dispatcher) Report(req ReportRequest) (ReportResponse, error) {
	reports := d.sched.Reports()
	if reports == nil {
		return ReportResponse{}, errors.New("settled-report store disabled")
	}
	key := service.ReportKey{App: req.App, Options: req.Options}
	r, ok := reports.Get(key)
	if !ok {
		return ReportResponse{}, fmt.Errorf("no settled report for %016x/%016x", req.App, req.Options)
	}
	enc, _ := reports.Encoded(key)
	return ReportResponse{
		APIVersion: Version,
		App:        fmt.Sprintf("%016x", req.App),
		Options:    fmt.Sprintf("%016x", req.Options),
		Report:     *reportJSON(r, false),
		Encoded:    enc,
	}, nil
}

// KillNode fences one fleet node — the `die node=N` chaos drill. The
// daemon keeps serving; the node's running job is handed off to a
// surviving node after its lease expires.
func (d *Dispatcher) KillNode(node int) error {
	return d.sched.KillNode(node)
}

// Recover re-enqueues the journal's pending jobs, rebuilding each from
// the container path its submit record stored.
func (d *Dispatcher) Recover() (RecoverResponse, error) {
	if d.sched.Journal() == nil {
		return RecoverResponse{}, errors.New("no journal configured (-journal DIR)")
	}
	n := d.sched.Recover(func(rec journal.Record) (service.Job, bool) {
		path := rec.Spec
		if path == "" {
			return service.Job{}, false
		}
		return service.Job{
			Name:         rec.Name,
			Tenant:       rec.Tenant,
			Spec:         path,
			Source:       func() (*apk.App, error) { return apk.Load(path) },
			RunBackDroid: true,
		}, true
	})
	return RecoverResponse{APIVersion: Version, Jobs: n}, nil
}

// Close drains the queue, stops the scheduler and ends every
// subscription after its final event.
func (d *Dispatcher) Close() {
	d.shutdown(false)
}

// Halt is the crash drill: running jobs finish, queued jobs are
// abandoned (journaled ones replay on the next start).
func (d *Dispatcher) Halt() {
	d.shutdown(true)
}

func (d *Dispatcher) shutdown(halt bool) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		<-d.drained
		return
	}
	d.closed = true
	d.mu.Unlock()
	if halt {
		d.sched.Halt()
	} else {
		d.sched.Close()
	}
	close(d.events)
	<-d.drained
}

// Subscription is one subscriber's view of the event stream: an
// unbounded FIFO the drain loop pushes into, so a slow consumer (an SSE
// client) never backpressures the analysis workers or other consumers.
type Subscription struct {
	d  *Dispatcher
	id int

	mu    sync.Mutex
	cond  *sync.Cond
	queue []service.Event
	ended bool
}

// Subscribe registers a new event subscriber receiving every event from
// this point on. Returns nil after Close/Halt.
func (d *Dispatcher) Subscribe() *Subscription {
	d.mu.Lock()
	defer d.mu.Unlock()
	select {
	case <-d.drained:
		return nil
	default:
	}
	sub := &Subscription{d: d, id: d.nextSub}
	sub.cond = sync.NewCond(&sub.mu)
	d.subs[d.nextSub] = sub
	d.nextSub++
	return sub
}

func (s *Subscription) push(ev service.Event) {
	s.mu.Lock()
	if !s.ended {
		s.queue = append(s.queue, ev)
		s.cond.Signal()
	}
	s.mu.Unlock()
}

func (s *Subscription) close() {
	s.mu.Lock()
	s.ended = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Next blocks for the next event; ok=false means the subscription ended
// (Dispatcher closed or Subscription.Close called) and the queue is
// drained.
func (s *Subscription) Next() (service.Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && !s.ended {
		s.cond.Wait()
	}
	if len(s.queue) == 0 {
		return service.Event{}, false
	}
	ev := s.queue[0]
	s.queue = s.queue[1:]
	return ev, true
}

// Close unregisters the subscription; a pending Next returns after the
// already-queued events.
func (s *Subscription) Close() {
	s.d.mu.Lock()
	delete(s.d.subs, s.id)
	s.d.mu.Unlock()
	s.close()
}
