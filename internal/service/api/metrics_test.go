package api

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"backdroid/internal/obs"
	"backdroid/internal/service"
	"backdroid/internal/service/journal"
)

// TestMetricsSurfaceParity: the registry is the one source of truth —
// every metric in its snapshot must appear, with the same value, on all
// three serving surfaces: the Prometheus text at /metrics, the metrics
// map of the /v1/stats JSON, and the stdin protocol's stats lines. The
// dispatcher runs a 2-node fleet with a journal and a settled tier, so
// the scheduler, fleet, store, report-store and journal families are
// all registered and exercised by one real job.
func TestMetricsSurfaceParity(t *testing.T) {
	path := fixturePath(t)
	jnl, _, err := journal.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer jnl.Close()
	d := NewDispatcher(DispatcherConfig{Scheduler: service.Config{
		Nodes:           2,
		NodeStoreBudget: 0,
		Reports:         service.NewReportStore(0),
		Journal:         jnl,
	}})
	defer d.Close()
	sub := d.Subscribe()
	defer sub.Close()
	resp, err := d.Submit(SubmitRequest{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	collectJob(t, sub, resp.ID)

	snap := d.Metrics().Snapshot()
	if len(snap) == 0 {
		t.Fatal("registry snapshot is empty")
	}
	for _, family := range []string{
		"backdroid_dispatched_total", "backdroid_fleet_nodes",
		"backdroid_fleetstore_hits_total", "backdroid_reports_entries",
		"backdroid_journal_records", "backdroid_node_units",
		"backdroid_tenant_dispatched_total",
	} {
		found := false
		for _, m := range snap {
			if m.Name == family {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("metric family %s not registered", family)
		}
	}

	srv := httptest.NewServer(NewHandler(d))
	defer srv.Close()
	res, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	prom := make(map[string]bool)
	for _, line := range strings.Split(string(body), "\n") {
		prom[line] = true
	}

	stats := d.Stats(StatsRequest{})
	lines := StatsLines(stats)

	for _, m := range snap {
		v := m.Value
		promID := m.ID()
		if m.Kind == obs.HistogramKind {
			v = m.Hist.Count
			promID = obs.Metric{Name: m.Name + "_count", Labels: m.Labels}.ID()
		}
		if got, ok := stats.Metrics[m.ID()]; !ok {
			t.Errorf("metric %s missing from the stats JSON map", m.ID())
		} else if got != v {
			t.Errorf("stats JSON %s = %d, snapshot has %d", m.ID(), got, v)
		}
		if want := fmt.Sprintf("stats metric %s %d\n", m.ID(), v); !strings.Contains(lines, want) {
			t.Errorf("stats lines missing %q", strings.TrimSuffix(want, "\n"))
		}
		if want := fmt.Sprintf("%s %d", promID, v); !prom[want] {
			t.Errorf("prometheus text missing %q", want)
		}
	}
	// And nothing rides the JSON map that the registry doesn't know.
	if len(stats.Metrics) != len(snap) {
		t.Errorf("stats JSON map has %d entries, snapshot %d", len(stats.Metrics), len(snap))
	}
}
