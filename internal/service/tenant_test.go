package service

import (
	"fmt"
	"sync"
	"testing"

	"backdroid/internal/apk"
)

// startOrder runs one blocked-worker scenario: a blocker job occupies the
// single worker while jobs queue up under their tenants, then the blocker
// releases and the started-event order of the remaining jobs is returned.
func startOrder(t *testing.T, tenants map[string]TenantConfig, submit func(s *Scheduler)) []string {
	t.Helper()
	events := make(chan Event, 256)
	var wg sync.WaitGroup
	var order []string
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ev := range events {
			if ev.Kind == EventStarted && ev.Name != "blocker" {
				order = append(order, ev.Name)
			}
		}
	}()

	block := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 64, Tenants: tenants, Events: events})
	if _, err := s.Submit(Job{Name: "blocker", Source: func() (*apk.App, error) {
		<-block
		return appgenApp(t, testSpec(0))
	}, RunBackDroid: true}); err != nil {
		t.Fatal(err)
	}
	submit(s)
	close(block)
	s.Close()
	close(events)
	wg.Wait()
	return order
}

// submitN queues n trivial jobs named <tenant>-<i> under the tenant.
func submitN(t *testing.T, s *Scheduler, tenant string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s-%d", tenant, i)
		spec := testSpec(i)
		if _, err := s.Submit(Job{
			Name: name, Tenant: tenant,
			Source: sourceFor(spec), RunBackDroid: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTenantFairDispatchInterleaves pins the head-of-line-blocking fix:
// with equal weights, a tenant that queued a large backlog first cannot
// monopolize dispatch — the second tenant's jobs interleave 1:1, so its
// i-th job is dispatched within 2i+1 slots instead of after the whole
// backlog.
func TestTenantFairDispatchInterleaves(t *testing.T) {
	order := startOrder(t, nil, func(s *Scheduler) {
		submitN(t, s, "heavy", 6)
		submitN(t, s, "light", 3)
	})
	if len(order) != 9 {
		t.Fatalf("started %d jobs, want 9: %v", len(order), order)
	}
	lightSeen := 0
	for pos, name := range order {
		if name[:5] == "light" {
			lightSeen++
			if pos+1 > 2*lightSeen+1 {
				t.Fatalf("light job %d dispatched at slot %d (> fairness bound %d): %v",
					lightSeen, pos+1, 2*lightSeen+1, order)
			}
		}
	}
	if lightSeen != 3 {
		t.Fatalf("light jobs started = %d, want 3: %v", lightSeen, order)
	}
}

// TestTenantWeightedDispatchRatio pins the weighted policy: a weight-3
// tenant gets up to three dispatches per round against a weight-1 tenant,
// never more.
func TestTenantWeightedDispatchRatio(t *testing.T) {
	tenants := map[string]TenantConfig{
		"paid": {Weight: 3},
		"free": {Weight: 1},
	}
	order := startOrder(t, tenants, func(s *Scheduler) {
		submitN(t, s, "free", 3)
		submitN(t, s, "paid", 9)
	})
	if len(order) != 12 {
		t.Fatalf("started %d jobs, want 12: %v", len(order), order)
	}
	paidRun := 0
	freeSeen := 0
	for _, name := range order {
		if name[:4] == "paid" {
			paidRun++
			if paidRun > 3 && freeSeen < 3 {
				t.Fatalf("more than 3 paid dispatches between free jobs: %v", order)
			}
		} else {
			freeSeen++
			paidRun = 0
		}
	}
}

// TestTenantDispatchDeterministic pins that the WRR order is a pure
// function of the queue contents: the same scenario dispatches in the
// same order on every run.
func TestTenantDispatchDeterministic(t *testing.T) {
	scenario := func() []string {
		return startOrder(t, map[string]TenantConfig{"a": {Weight: 2}}, func(s *Scheduler) {
			submitN(t, s, "a", 4)
			submitN(t, s, "b", 4)
			submitN(t, s, "c", 2)
		})
	}
	first := scenario()
	for i := 0; i < 3; i++ {
		if got := scenario(); fmt.Sprint(got) != fmt.Sprint(first) {
			t.Fatalf("dispatch order varies across runs:\n%v\nvs\n%v", first, got)
		}
	}
}

// TestTenantQueueIsolation pins per-tenant backpressure: one tenant's
// full queue blocks only that tenant's submitters.
func TestTenantQueueIsolation(t *testing.T) {
	block := make(chan struct{})
	s := New(Config{
		Workers: 1,
		Tenants: map[string]TenantConfig{"small": {MaxQueueDepth: 1}},
	})
	defer s.Close()
	if _, err := s.Submit(Job{Name: "blocker", Source: func() (*apk.App, error) {
		<-block
		return appgenApp(t, testSpec(0))
	}, RunBackDroid: true}); err != nil {
		t.Fatal(err)
	}
	// Fill tenant "small"'s single queue slot.
	if _, err := s.Submit(Job{Name: "s1", Tenant: "small", Source: sourceFor(testSpec(1)), RunBackDroid: true}); err != nil {
		t.Fatal(err)
	}
	// Its next submit must block...
	overflowDone := make(chan struct{})
	go func() {
		defer close(overflowDone)
		if _, err := s.Submit(Job{Name: "s2", Tenant: "small", Source: sourceFor(testSpec(2)), RunBackDroid: true}); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-overflowDone:
		t.Fatal("submit into a full tenant queue returned without blocking")
	default:
	}
	// ...while another tenant's submit sails through.
	otherID, err := s.Submit(Job{Name: "other", Tenant: "big", Source: sourceFor(testSpec(3)), RunBackDroid: true})
	if err != nil {
		t.Fatalf("other tenant's submit was blocked by the full queue: %v", err)
	}
	close(block)
	<-overflowDone
	if _, err := s.Wait(otherID); err != nil {
		t.Fatal(err)
	}
}

// TestTenantPrivateStoreIsolation pins TenantConfig.StoreBudget: a tenant
// with a private store never warms up from another tenant's bundles,
// while shared-store tenants do; a store-disabled tenant probes no store
// at all. Detection output is identical everywhere — stores change cost,
// never results.
func TestTenantPrivateStoreIsolation(t *testing.T) {
	shared := NewBundleStore(0)
	s := New(Config{
		Workers: 1,
		Store:   shared,
		Tenants: map[string]TenantConfig{
			"isolated": {StoreBudget: 1 << 30},
			"nostore":  {StoreBudget: -1},
		},
	})
	defer s.Close()
	spec := testSpec(7)
	run := func(tenant string) *JobResult {
		id, err := s.Submit(Job{Name: spec.Name, Tenant: tenant, Source: sourceFor(spec), RunBackDroid: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	a := run("sharedA") // default policy: shared store, cold
	b := run("sharedB") // shared store, warm off tenant A's bundle
	c := run("isolated")
	d := run("nostore")

	if st := a.BackDroid.Stats; st.BundleStoreMisses != 1 {
		t.Fatalf("first shared-store job: %+v, want a store miss", st)
	}
	if st := b.BackDroid.Stats; st.BundleStoreHits != 1 {
		t.Fatalf("second shared-store tenant must warm up from the shared store: %+v", st)
	}
	if st := c.BackDroid.Stats; st.BundleStoreHits != 0 || st.BundleStoreMisses != 1 {
		t.Fatalf("private-store tenant must not see the shared bundle: %+v", st)
	}
	if st := d.BackDroid.Stats; st.BundleStoreHits != 0 || st.BundleStoreMisses != 0 {
		t.Fatalf("store-disabled tenant probed a store: %+v", st)
	}
	for _, res := range []*JobResult{b, c, d} {
		if detectionKey(res.BackDroid) != detectionKey(a.BackDroid) {
			t.Fatal("store policy changed the detection output")
		}
	}

	// Tenants are created on first use: exactly the four submitted to.
	st := s.Stats()
	if len(st.Tenants) != 4 {
		t.Fatalf("tenant stats = %+v", st.Tenants)
	}
	for _, ts := range st.Tenants {
		if ts.Submitted != 1 || ts.Dispatched != 1 || ts.Queued != 0 {
			t.Fatalf("tenant %s counters = %+v", ts.Name, ts)
		}
	}
}
