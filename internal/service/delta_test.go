package service

import (
	"testing"

	"backdroid/internal/android"
	"backdroid/internal/apk"
	"backdroid/internal/appgen"
	"backdroid/internal/bcsearch"
	"backdroid/internal/core"
	"backdroid/internal/dexdump"
)

func deltaJobSpec() appgen.Spec {
	return appgen.Spec{
		Name:   "com.svc.delta",
		Seed:   31337,
		SizeMB: 1,
		Sinks: []appgen.SinkSpec{
			{Flow: appgen.FlowDirect, Rule: android.RuleCryptoECB, Insecure: true},
			{Flow: appgen.FlowThread, Rule: android.RuleSSLAllowAll, Insecure: true},
			{Flow: appgen.FlowICC, Rule: android.RuleCryptoECB},
		},
	}
}

// TestSchedulerDeltaOnResubmission pins the service-level delta path: a
// job resubmitted under the same name with updated content runs the
// incremental engine against the prior version's stored bundle —
// verdicts identical to a cold analysis, settled sinks reused — while a
// resubmission of identical content stays on the plain warm path.
func TestSchedulerDeltaOnResubmission(t *testing.T) {
	spec := deltaJobSpec()
	upd, _, err := appgen.GenerateUpdate(appgen.AppUpdateSpec{
		Base: spec, Mutation: appgen.MutateChangeLiteral, TargetSink: 0, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	opts := core.DefaultOptions()
	opts.SearchBackend = bcsearch.BackendSharded
	s := New(Config{Workers: 1, Store: NewBundleStore(0), Options: &opts})
	defer s.Close()

	submit := func(src func() (*apk.App, error)) *JobResult {
		t.Helper()
		id, err := s.Submit(Job{Name: spec.Name, Source: src, RunBackDroid: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	base := submit(sourceFor(spec))
	if st := base.BackDroid.Stats; st.SinksReused != 0 {
		t.Fatalf("base run reused sinks: %+v", st)
	}

	// Identical resubmission: warm bundle hit, no delta machinery.
	same := submit(sourceFor(spec))
	if st := same.BackDroid.Stats; st.SinksReused != 0 || st.DumpCacheHits != 1 {
		t.Fatalf("identical resubmission = %+v, want a plain warm run", st)
	}

	// Updated content under the same name: the delta path engages.
	delta := submit(func() (*apk.App, error) { return upd, nil })
	ds := delta.BackDroid.Stats
	if ds.SinksReused == 0 {
		t.Fatalf("update resubmission reused no sinks: %+v", ds)
	}
	if ds.SinksRerun == 0 {
		t.Fatalf("changed-literal update re-ran no sinks: %+v", ds)
	}

	// Cold reference run in a fresh scheduler: verdicts must match.
	s2 := New(Config{Workers: 1, Store: NewBundleStore(0), Options: &opts})
	defer s2.Close()
	id, err := s2.Submit(Job{Name: spec.Name, Source: func() (*apk.App, error) { return upd, nil }, RunBackDroid: true})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := s2.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if detectionKey(cold.BackDroid) != detectionKey(delta.BackDroid) {
		t.Errorf("delta verdicts differ from cold:\n%s\nvs\n%s",
			detectionKey(delta.BackDroid), detectionKey(cold.BackDroid))
	}
	if ds.WorkUnits >= cold.BackDroid.Stats.WorkUnits {
		t.Errorf("delta charged %d units, cold %d — must be cheaper", ds.WorkUnits, cold.BackDroid.Stats.WorkUnits)
	}
}

// TestShardStoreDedupsAcrossVersions pins the cross-version postings
// dedup: storing the base and updated bundles of one app shares every
// shard except the one holding the changed class.
func TestShardStoreDedupsAcrossVersions(t *testing.T) {
	spec := deltaJobSpec()
	base, _, err := appgen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	upd, _, err := appgen.GenerateUpdate(appgen.AppUpdateSpec{
		Base: spec, Mutation: appgen.MutateChangeLiteral, TargetSink: 0, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	store := NewBundleStore(0)
	ss := NewShardStore()
	store.AttachShardStore(ss)

	opts := core.DefaultOptions()
	opts.SearchBackend = bcsearch.BackendSharded
	opts.Bundles = store
	analyze := func(app *apk.App) {
		t.Helper()
		e, err := core.New(app, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Analyze(); err != nil {
			t.Fatal(err)
		}
	}
	analyze(base)
	st := ss.Stats()
	// Duplicate shards within one bundle (empty package shards of a
	// small app) legitimately dedup, so only Puts==Entries is exact.
	if st.Entries == 0 || st.Puts != int64(st.Entries) {
		t.Fatalf("after base bundle: %+v, want puts == entries", st)
	}
	baseEntries, baseHits := st.Entries, st.Hits

	analyze(upd)
	st = ss.Stats()
	if st.Hits <= baseHits || st.BytesDeduped == 0 {
		t.Fatalf("update bundle deduped nothing: %+v (base hits %d)", st, baseHits)
	}
	// Exactly the changed class's shard is new; the rest dedup.
	if newShards := st.Entries - baseEntries; newShards != 1 {
		t.Errorf("update added %d shard payloads, want 1 (only the changed shard)", newShards)
	}
	if bs := store.ShardStoreStats(); bs != st {
		t.Errorf("BundleStore.ShardStoreStats = %+v, want %+v", bs, st)
	}

	// Get probes: present payloads hit, unknown fingerprints count misses.
	fps, _, ok := dexdump.ShardPayloads(mustBundle(t, store, base))
	if !ok {
		t.Fatal("stored base bundle unsplittable")
	}
	if _, ok := ss.Get(fps[0]); !ok {
		t.Error("stored shard payload not served")
	}
	if _, ok := ss.Get(0xdeadbeef); ok {
		t.Error("unknown shard fingerprint served")
	}
	if st := ss.Stats(); st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
}

func mustBundle(t *testing.T, store *BundleStore, app *apk.App) []byte {
	t.Helper()
	data, ok := store.GetBundle(dexdump.AppFingerprint(app.Dexes))
	if !ok {
		t.Fatal("bundle missing from store")
	}
	return data
}
