package service

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"backdroid/internal/android"
	"backdroid/internal/apk"
	"backdroid/internal/appgen"
	"backdroid/internal/core"
	"backdroid/internal/dexdump"
)

// testSpec generates a small deterministic app spec.
func testSpec(i int) appgen.Spec {
	return appgen.Spec{
		Name:   fmt.Sprintf("com.sched.app%d", i),
		Seed:   int64(1000 + i),
		SizeMB: 0.4,
		Sinks: []appgen.SinkSpec{
			{Flow: appgen.FlowDirect, Rule: android.RuleCryptoECB, Insecure: true},
			{Flow: appgen.FlowThread, Rule: android.RuleCryptoECB},
		},
	}
}

func sourceFor(spec appgen.Spec) func() (*apk.App, error) {
	return func() (*apk.App, error) {
		app, _, err := appgen.Generate(spec)
		return app, err
	}
}

// detectionKey renders a report deterministically for comparisons.
func detectionKey(r *core.Report) string {
	out := ""
	for _, s := range r.Sinks {
		out += fmt.Sprintf("%s r=%v i=%v %v\n", s.Call, s.Reachable, s.Insecure, s.Values)
	}
	return out
}

func TestSchedulerRunsJobsAndWaits(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()
	var ids []JobID
	for i := 0; i < 6; i++ {
		id, err := s.Submit(Job{Name: testSpec(i).Name, Source: sourceFor(testSpec(i)), RunBackDroid: true})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i, id := range ids {
		res, err := s.Wait(id)
		if err != nil {
			t.Fatalf("job %d: %v", id, err)
		}
		if res.BackDroid == nil || res.Name != testSpec(i).Name {
			t.Fatalf("job %d result = %+v", id, res)
		}
		if len(res.BackDroid.Sinks) == 0 {
			t.Fatalf("job %d found no sinks", id)
		}
	}
	if _, err := s.Wait(999); err != ErrUnknownJob {
		t.Fatalf("Wait(unknown) = %v, want ErrUnknownJob", err)
	}
	// Wait is a join: the first Wait released the retained state, so a
	// long-running scheduler does not accumulate finished reports.
	if _, err := s.Wait(ids[0]); err != ErrUnknownJob {
		t.Fatalf("second Wait = %v, want ErrUnknownJob (state reaped)", err)
	}
	s.mu.Lock()
	retained := len(s.states)
	s.mu.Unlock()
	if retained != 0 {
		t.Fatalf("%d job states retained after every Wait", retained)
	}
}

func TestSchedulerForgetReapsFinishedJobs(t *testing.T) {
	block := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()
	blocker, err := s.Submit(Job{Name: "blocker", Source: func() (*apk.App, error) {
		<-block
		return appgenApp(t, testSpec(0))
	}, RunBackDroid: true})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(Job{Name: "queued", Source: sourceFor(testSpec(1)), RunBackDroid: true})
	if err != nil {
		t.Fatal(err)
	}
	// Forget of pending/running jobs must refuse.
	if s.Forget(blocker) || s.Forget(queued) {
		t.Fatal("Forget succeeded on an unfinished job")
	}
	close(block)
	// The event-stream path: let both finish (join the later one), then
	// reap the earlier one without ever waiting on it.
	if _, err := s.Wait(queued); err != nil {
		t.Fatal(err)
	}
	if !s.Forget(blocker) {
		t.Fatal("Forget of a finished, un-waited job must succeed")
	}
	if s.Forget(blocker) {
		t.Fatal("double Forget must report unknown")
	}
	s.mu.Lock()
	retained := len(s.states)
	s.mu.Unlock()
	if retained != 0 {
		t.Fatalf("%d job states retained after reaping", retained)
	}
}

func TestSchedulerSubmitAfterClose(t *testing.T) {
	s := New(Config{Workers: 1})
	s.Close()
	if _, err := s.Submit(Job{Name: "late"}); err != ErrClosed {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	// Close must be idempotent.
	s.Close()
}

func TestSchedulerCancelQueuedJob(t *testing.T) {
	// One worker, blocked on the first job, so later submissions stay
	// queued long enough to cancel deterministically.
	block := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 8})
	defer s.Close()
	first, err := s.Submit(Job{Name: "blocker", Source: func() (*apk.App, error) {
		<-block
		return appgenApp(t, testSpec(0))
	}, RunBackDroid: true})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := s.Submit(Job{Name: "victim", Source: sourceFor(testSpec(1)), RunBackDroid: true})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Cancel(victim) {
		t.Fatal("cancel of a queued job must succeed")
	}
	if s.Cancel(victim) {
		t.Fatal("double cancel must fail")
	}
	close(block)
	if _, err := s.Wait(victim); err != ErrCanceled {
		t.Fatalf("Wait(canceled) = %v, want ErrCanceled", err)
	}
	if _, err := s.Wait(first); err != nil {
		t.Fatalf("blocker job: %v", err)
	}
	if s.Cancel(first) {
		t.Fatal("cancel of a finished job must fail")
	}
}

func appgenApp(t *testing.T, spec appgen.Spec) (*apk.App, error) {
	t.Helper()
	app, _, err := appgen.Generate(spec)
	return app, err
}

// TestSchedulerStoreReuse pins the batch-reuse contract: re-submitting an
// app whose fingerprint the store holds performs zero disassembly, zero
// index builds and zero disk I/O, with an identical detection report.
func TestSchedulerStoreReuse(t *testing.T) {
	store := NewBundleStore(0)
	s := New(Config{Workers: 2, Store: store})
	defer s.Close()

	spec := testSpec(0)
	run := func() *core.Report {
		id, err := s.Submit(Job{Name: spec.Name, Source: sourceFor(spec), RunBackDroid: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		return res.BackDroid
	}
	cold := run()
	warm := run()

	if cold.Stats.BundleStoreHits != 0 || cold.Stats.BundleStoreMisses != 1 {
		t.Fatalf("cold store stats = %+v, want one miss", cold.Stats)
	}
	if cold.Stats.DumpLinesDisassembled == 0 || cold.Stats.Search.IndexBuilds != 1 {
		t.Fatalf("cold run stats = %+v, want a real build", cold.Stats)
	}
	if warm.Stats.BundleStoreHits != 1 || warm.Stats.DumpLinesDisassembled != 0 || warm.Stats.Search.IndexBuilds != 0 {
		t.Fatalf("warm run stats = %+v, want a fully-warm store hit", warm.Stats)
	}
	if warm.Stats.WorkUnits >= cold.Stats.WorkUnits {
		t.Fatalf("warm charged %d units, cold %d — store reuse must be cheaper",
			warm.Stats.WorkUnits, cold.Stats.WorkUnits)
	}
	if detectionKey(cold) != detectionKey(warm) {
		t.Fatal("store reuse changed the detection report")
	}
	if st := store.Stats(); st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("store stats = %+v, want exactly one entry", st)
	}
}

// TestSchedulerConcurrentSameFingerprint pins the single-build guarantee:
// many concurrent submissions of one app serialize on the fingerprint
// lock, so the bundle is built exactly once and every later job runs
// fully warm off the shared entry.
func TestSchedulerConcurrentSameFingerprint(t *testing.T) {
	store := NewBundleStore(0)
	s := New(Config{Workers: 8, QueueDepth: 32, Store: store})
	defer s.Close()

	spec := testSpec(3)
	const jobs = 12
	ids := make([]JobID, jobs)
	for i := range ids {
		id, err := s.Submit(Job{Name: spec.Name, Source: sourceFor(spec), RunBackDroid: true})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	builds, storeHits := 0, 0
	var det string
	for _, id := range ids {
		res, err := s.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		st := res.BackDroid.Stats
		builds += st.Search.IndexBuilds
		storeHits += st.BundleStoreHits
		key := detectionKey(res.BackDroid)
		if det == "" {
			det = key
		} else if key != det {
			t.Fatal("concurrent submissions diverged in detection output")
		}
	}
	if builds != 1 {
		t.Fatalf("%d index builds across %d concurrent same-app jobs, want exactly 1", builds, jobs)
	}
	if storeHits != jobs-1 {
		t.Fatalf("%d store hits, want %d (every job but the builder)", storeHits, jobs-1)
	}
	if st := store.Stats(); st.Puts != 1 {
		t.Fatalf("store stats = %+v, want a single build/put", st)
	}
}

// TestSchedulerEventStreamMatchesBatch pins streamed-vs-batch
// determinism: the EventSink stream of a job carries exactly the
// per-sink reports of its final batch report, in report order, bracketed
// by queued/started/done.
func TestSchedulerEventStreamMatchesBatch(t *testing.T) {
	events := make(chan Event, 256)
	s := New(Config{Workers: 2, Events: events})

	specs := []appgen.Spec{testSpec(0), testSpec(1), testSpec(2)}
	ids := make([]JobID, len(specs))
	results := make(map[JobID]*core.Report)
	for i, spec := range specs {
		id, err := s.Submit(Job{Name: spec.Name, Source: sourceFor(spec), RunBackDroid: true})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for _, id := range ids {
		res, err := s.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		results[id] = res.BackDroid
	}
	s.Close()
	close(events)

	streamed := make(map[JobID][]Event)
	for ev := range events {
		streamed[ev.Job] = append(streamed[ev.Job], ev)
	}
	for _, id := range ids {
		evs := streamed[id]
		if len(evs) < 3 {
			t.Fatalf("job %d emitted %d events, want >= 3", id, len(evs))
		}
		if evs[0].Kind != EventQueued || evs[1].Kind != EventStarted || evs[len(evs)-1].Kind != EventDone {
			t.Fatalf("job %d event bracket = %v...%v", id, evs[0].Kind, evs[len(evs)-1].Kind)
		}
		var sinks []*core.SinkReport
		for _, ev := range evs[2 : len(evs)-1] {
			if ev.Kind != EventSink {
				t.Fatalf("job %d unexpected mid-stream event %v", id, ev.Kind)
			}
			sinks = append(sinks, ev.Sink)
		}
		batch := results[id].Sinks
		if len(sinks) != len(batch) {
			t.Fatalf("job %d streamed %d sinks, batch has %d", id, len(sinks), len(batch))
		}
		for j := range batch {
			if sinks[j] != batch[j] {
				t.Fatalf("job %d sink %d: streamed report is not the batch report", id, j)
			}
		}
	}
}

// TestSchedulerStoreEvictionStaysCorrect runs apps through a store too
// small for all of them: evictions must occur, and every analysis must
// still be correct (a miss is never an error, just a rebuild).
func TestSchedulerStoreEvictionStaysCorrect(t *testing.T) {
	// First learn one bundle's size, then budget for ~1.5 bundles.
	probe := NewBundleStore(0)
	{
		s := New(Config{Workers: 1, Store: probe})
		id, _ := s.Submit(Job{Name: "probe", Source: sourceFor(testSpec(0)), RunBackDroid: true})
		if _, err := s.Wait(id); err != nil {
			t.Fatal(err)
		}
		s.Close()
	}
	size := probe.Stats().Bytes
	store := NewBundleStore(size + size/2)
	s := New(Config{Workers: 1, Store: store})
	defer s.Close()

	baseline := make(map[int]string)
	for round := 0; round < 2; round++ {
		for i := 0; i < 3; i++ {
			id, err := s.Submit(Job{Name: testSpec(i).Name, Source: sourceFor(testSpec(i)), RunBackDroid: true})
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Wait(id)
			if err != nil {
				t.Fatal(err)
			}
			key := detectionKey(res.BackDroid)
			if round == 0 {
				baseline[i] = key
			} else if baseline[i] != key {
				t.Fatalf("app %d verdicts changed across eviction churn", i)
			}
		}
	}
	if st := store.Stats(); st.Evictions == 0 {
		t.Fatalf("store stats = %+v, want evictions under a tight budget", st)
	}
}

// TestSchedulerBoundedQueueBackpressure pins that Submit blocks (rather
// than dropping or erroring) when the queue is full, and unblocks as
// workers drain.
func TestSchedulerBoundedQueueBackpressure(t *testing.T) {
	block := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()
	// Occupy the worker.
	first, err := s.Submit(Job{Name: "blocker", Source: func() (*apk.App, error) {
		<-block
		return appgenApp(t, testSpec(0))
	}, RunBackDroid: true})
	if err != nil {
		t.Fatal(err)
	}
	// Fill the queue slot.
	if _, err := s.Submit(Job{Name: "queued", Source: sourceFor(testSpec(1)), RunBackDroid: true}); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	submitted := false
	done := make(chan JobID)
	go func() {
		id, err := s.Submit(Job{Name: "overflow", Source: sourceFor(testSpec(2)), RunBackDroid: true})
		if err != nil {
			t.Error(err)
		}
		mu.Lock()
		submitted = true
		mu.Unlock()
		done <- id
	}()
	mu.Lock()
	early := submitted
	mu.Unlock()
	if early {
		t.Fatal("third submit must block on the full queue")
	}
	close(block)
	id := <-done
	if _, err := s.Wait(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(first); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerFailedSourceEmitsError pins the failure path: a bad source
// fails its own job only.
func TestSchedulerFailedSourceEmitsError(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	bad, err := s.Submit(Job{Name: "bad", Source: func() (*apk.App, error) {
		return nil, fmt.Errorf("boom")
	}, RunBackDroid: true})
	if err != nil {
		t.Fatal(err)
	}
	good, err := s.Submit(Job{Name: "good", Source: sourceFor(testSpec(1)), RunBackDroid: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(bad); err == nil {
		t.Fatal("bad source must fail its job")
	}
	if _, err := s.Wait(good); err != nil {
		t.Fatalf("good job after a failed one: %v", err)
	}
}

// TestStoreSharesAcrossDifferentJobNames pins content addressing: two
// jobs with different names but identical bytecode share one entry.
func TestStoreSharesAcrossDifferentJobNames(t *testing.T) {
	store := NewBundleStore(0)
	s := New(Config{Workers: 1, Store: store})
	defer s.Close()

	spec := testSpec(5)
	app1, _, err := appgen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	app2, _, err := appgen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if dexdump.AppFingerprint(app1.Dexes) != dexdump.AppFingerprint(app2.Dexes) {
		t.Fatal("identical specs must produce identical fingerprints")
	}
	app2.Name = "com.sched.renamed"

	id1, _ := s.Submit(Job{Name: app1.Name, Source: func() (*apk.App, error) { return app1, nil }, RunBackDroid: true})
	if _, err := s.Wait(id1); err != nil {
		t.Fatal(err)
	}
	id2, _ := s.Submit(Job{Name: app2.Name, Source: func() (*apk.App, error) { return app2, nil }, RunBackDroid: true})
	res, err := s.Wait(id2)
	if err != nil {
		t.Fatal(err)
	}
	if res.BackDroid.Stats.BundleStoreHits != 1 {
		t.Fatalf("renamed identical app stats = %+v, want a store hit (content addressing)", res.BackDroid.Stats)
	}
}

// TestSubmitCloseRaceNeverStrandsJobs hammers the Submit/Close window: a
// submit that returns an ID must always produce a joinable job, even
// when Close lands between the submit's admission check and its queue
// append — the last worker may not exit while a submit is mid-flight.
func TestSubmitCloseRaceNeverStrandsJobs(t *testing.T) {
	for round := 0; round < 50; round++ {
		s := New(Config{Workers: 1, QueueDepth: 4})
		type accepted struct {
			id  JobID
			err error
		}
		results := make(chan accepted, 4)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				id, err := s.Submit(Job{Name: "r", Source: sourceFor(testSpec(g)), RunBackDroid: true})
				results <- accepted{id, err}
			}(g)
		}
		s.Close()
		wg.Wait()
		close(results)
		for r := range results {
			if r.err != nil {
				continue // rejected by Close: fine
			}
			done := make(chan struct{})
			go func() {
				defer close(done)
				if _, err := s.Wait(r.id); err != nil {
					t.Errorf("accepted job %d: %v", r.id, err)
				}
			}()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatalf("round %d: accepted job %d stranded — Wait hangs", round, r.id)
			}
		}
	}
}
