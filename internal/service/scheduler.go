package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"backdroid/internal/apk"
	"backdroid/internal/core"
	"backdroid/internal/dexdump"
	"backdroid/internal/faultinject"
	"backdroid/internal/service/journal"
	"backdroid/internal/simtime"
	"backdroid/internal/wholeapp"
)

// Scheduler errors.
var (
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("service: scheduler closed")
	// ErrCanceled is returned by Wait for a canceled job — removed from
	// its queue before starting, or stopped at a meter checkpoint while
	// running.
	ErrCanceled = errors.New("service: job canceled")
	// ErrUnknownJob is returned by Wait for an ID this scheduler never
	// issued.
	ErrUnknownJob = errors.New("service: unknown job id")
)

// JobID identifies a submitted job; IDs are issued in submission order,
// so iterating them replays the corpus deterministically.
type JobID int64

// Job is one unit of work: an app source plus the analyzers to run on it.
type Job struct {
	// Name labels the job in events and error messages (usually the app
	// name).
	Name string
	// Tenant names the analysis stream the job belongs to; "" lands in
	// DefaultTenantName. Each tenant has its own bounded queue and
	// weighted-round-robin dispatch share, so one tenant's backlog never
	// head-of-line-blocks another's submissions.
	Tenant string
	// Spec is the opaque string a journaled job is rebuilt from after a
	// restart (backdroidd stores the APK path). Jobs with an empty Spec
	// are journaled too, but a recovery pass can only re-enqueue them if
	// its rebuild function knows them by name.
	Spec string
	// Source materializes the app when the job is scheduled — a generator
	// closure, an APK loader, an in-memory handle. Running it lazily on
	// the worker keeps memory bounded: apps exist only while analyzed,
	// exactly as the one-shot corpus pipeline behaved.
	Source func() (*apk.App, error)
	// Options configures the BackDroid engine for this job; nil inherits
	// the scheduler default (which defaults to core.DefaultOptions).
	Options *core.Options
	// IndexCacheDir overrides the scheduler's persistent bundle directory
	// for this job ("" inherits).
	IndexCacheDir string
	// Analyzer selection; a job with none selected still runs Source
	// (useful for validation probes).
	RunBackDroid bool
	RunWholeApp  bool
	RunCallGraph bool
	// Done, when non-nil, runs on the worker goroutine as soon as the job
	// finishes, before the done/failed event is emitted — the progress
	// seam of batch clients.
	Done func(res *JobResult, err error)
}

// JobResult bundles one job's analysis outcomes.
type JobResult struct {
	ID        JobID
	Name      string
	BackDroid *core.Report
	WholeApp  *wholeapp.Report
	CallGraph *wholeapp.Report
}

// EventKind types the entries of the streamed result channel.
type EventKind int

// Event kinds, in the order one job emits them.
const (
	EventQueued EventKind = iota + 1
	EventStarted
	EventSink
	EventDone
	EventFailed
	EventCanceled
)

// String names the event kind as the serve command prints it.
func (k EventKind) String() string {
	switch k {
	case EventQueued:
		return "queued"
	case EventStarted:
		return "started"
	case EventSink:
		return "sink"
	case EventDone:
		return "done"
	case EventFailed:
		return "failed"
	case EventCanceled:
		return "canceled"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one streamed scheduler occurrence. Per job the order is fixed
// — queued, started, one EventSink per resolved sink in report order,
// then exactly one of done/failed/canceled — while events of different
// jobs interleave with worker scheduling. A job canceled while running
// emits its single terminal EventCanceled and nothing after it.
type Event struct {
	Kind EventKind
	Job  JobID
	Name string
	// Sink is set on EventSink: the completed per-sink report, final
	// verdict included.
	Sink *core.SinkReport
	// Result is set on EventDone.
	Result *JobResult
	// Err is set on EventFailed.
	Err error
	// Node is the fleet node executing the job (EventStarted and later);
	// 0 when the scheduler runs without a fleet.
	Node int
	// Attempt counts dispatches of this job (EventStarted and later): 1
	// on the first dispatch, higher after a lease-expiry handoff
	// re-dispatched it. A handed-off job emits one EventStarted per
	// attempt but still exactly one terminal event.
	Attempt int
	// Seq is the job's WRR dispatch sequence number (EventStarted).
	Seq int64
}

// Config configures a Scheduler.
type Config struct {
	// Workers bounds concurrent job analyses; values <= 1 run one at a
	// time.
	Workers int
	// QueueDepth bounds each tenant's submit queue; Submit blocks once
	// this many of that tenant's jobs are waiting (backpressure toward
	// the producer). 0 defaults to 2*Workers. TenantConfig.MaxQueueDepth
	// overrides it per tenant.
	QueueDepth int
	// Tenants preconfigures named tenants (weight, queue depth, store
	// budget). Jobs for tenants absent here are admitted under
	// DefaultTenant's policy.
	Tenants map[string]TenantConfig
	// DefaultTenant is the policy of tenants not listed in Tenants (the
	// zero value means weight 1, inherited queue depth, shared store).
	DefaultTenant TenantConfig
	// Options is the default engine configuration for jobs that carry
	// none; nil uses core.DefaultOptions.
	Options *core.Options
	// IndexCacheDir is the default persistent bundle directory ("" =
	// disabled).
	IndexCacheDir string
	// Store is the shared in-memory content-addressed bundle store; nil
	// disables in-memory reuse. With a store, re-submitting an app whose
	// fingerprint is cached performs zero disassembly, zero index builds
	// and zero bundle disk I/O, and concurrent submissions of one
	// fingerprint serialize so the bundle is built exactly once.
	// TenantConfig.StoreBudget can give a tenant a private store instead.
	Store *BundleStore
	// Journal, when non-nil, makes the queue durable: every submit,
	// start and terminal outcome is appended as a CRC'd record, so a
	// restarted service can Recover the jobs that were pending when the
	// previous process died. The journal belongs to the caller (it is
	// not closed by Close).
	Journal *journal.Journal
	// Reports, when non-nil, is the settled-result tier: terminal
	// BackDroid reports content-addressed by (app fingerprint, options
	// fingerprint). Resubmitting a settled pair is answered from the
	// store in O(1) — zero disassembly, zero index builds, zero engine
	// runs — with per-sink events replayed and a report bitwise-identical
	// (in canonical encoding) to the original run's. Attach the store to
	// the Journal and Recover it before New to make the tier survive
	// restarts.
	Reports *ReportStore
	// Events, when non-nil, receives the streamed event channel. The
	// consumer must drain it: emission blocks the emitting worker (and,
	// because per-job event order is guaranteed, other emitters) until
	// the event is received.
	Events chan<- Event
	// Nodes, when > 0, runs the scheduler as a coordinator over a fleet
	// of goroutine-backed worker nodes (Workers is overridden to Nodes).
	// Every dispatch takes a simtime-metered lease; a node that dies or
	// goes mute has its jobs handed off to surviving nodes, and shared-
	// policy tenants analyze against consistent-hashed per-node bundle
	// partitions instead of Config.Store. See DESIGN.md Sec. 12.
	Nodes int
	// NodeStoreBudget is each fleet node's bundle partition budget in
	// bytes: 0 = unbounded partitions, < 0 = partitions disabled (jobs
	// run storeless unless their tenant has a private store). Only
	// meaningful with Nodes > 0.
	NodeStoreBudget int64
	// Faults is the deterministic chaos plan threaded through the
	// dispatch loop (node/job kills, heartbeat drops), the journal append
	// path (record corruption) and the fleet bundle partitions (fetch
	// failures); nil injects nothing. See internal/faultinject.
	Faults *faultinject.Plan
}

// Scheduler runs analysis jobs over a bounded worker pool with per-tenant
// bounded queues and deterministic weighted-round-robin dispatch. It is
// the control plane the one-shot corpus harness lacked: engines are still
// per-job (analysis state never crosses goroutines), but the bundle
// store, worker pool, event stream, tenant queues and the durable job
// journal live across submissions — and across process restarts when a
// journal is configured.
type Scheduler struct {
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond // queue space, queued work, close/halt — all one broadcast
	tenants map[string]*tenant
	order   []string // sorted tenant names, the WRR visit order
	cursor  int      // WRR position in order

	states      map[JobID]*jobState
	nextID      JobID
	closed      bool
	halted      bool
	inflight    int // submits between their closed-check and queue append
	dispatchSeq int64

	journalUnits atomic.Int64 // control-plane work charged for appends

	// prev remembers, per tenant+job name, the last successfully analyzed
	// version: its content fingerprint and settled report. A resubmission
	// of the same name with a different fingerprint is an app update; when
	// the prior bundle is still in the store, the job runs the engine's
	// incremental delta path against it (core.Options.DeltaFrom).
	prevMu sync.Mutex
	prev   map[string]prevRun

	workerWG sync.WaitGroup
	evMu     sync.Mutex

	// fleet is the multi-node layer (nil when Config.Nodes == 0): node
	// liveness, per-job leases, handoff accounting and the partitioned
	// bundle placement.
	fleet *fleet
}

// prevRun is one remembered prior analysis of a job name.
type prevRun struct {
	fp     uint64
	report *core.Report
}

func prevKey(tenant, name string) string { return tenant + "\x00" + name }

type jobState struct {
	id              JobID
	tenant          string
	job             Job
	store           *BundleStore // tenant-resolved bundle store (nil = none)
	fleetStore      bool         // analyze against the fleet's partitioned placement
	done            chan struct{}
	res             *JobResult
	err             error
	canceled        bool        // canceled while queued (under mu)
	cancelReq       bool        // cancel requested while running (under mu)
	cancelFlag      atomic.Bool // polled lock-free by the engine's meter
	cancelJournaled bool        // terminal canceled record already written
	started         bool
	settled         bool // terminal outcome delivered (under mu) — at-most-once guard
	node            int  // fleet node of the current/last attempt (under mu)
	attempt         int  // dispatch count (under mu)
	dispatchSeq     int64
}

// New builds and starts a scheduler. With a journal configured, new job
// IDs are issued above every ID the journal has seen, so a recovered
// queue and fresh submissions never collide.
func New(cfg Config) *Scheduler {
	if cfg.Nodes > 0 {
		// Fleet mode: one worker goroutine per node — the goroutine is the
		// node's execution substrate, the node is the failure domain.
		cfg.Workers = cfg.Nodes
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	s := &Scheduler{
		cfg:     cfg,
		tenants: make(map[string]*tenant),
		states:  make(map[JobID]*jobState),
		prev:    make(map[string]prevRun),
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.Journal != nil {
		s.nextID = JobID(cfg.Journal.MaxJobID())
		if cfg.Faults != nil {
			cfg.Journal.SetCorrupt(faultinject.JournalCorrupter(cfg.Faults))
		}
	}
	if cfg.Nodes > 0 {
		s.fleet = newFleet(cfg.Nodes, cfg.NodeStoreBudget, cfg.Faults)
		s.fleet.requeue = s.requeueJob
		s.fleet.wake = s.cond.Broadcast
		s.fleet.allDead = s.failQueued
	}
	for i := 0; i < cfg.Workers; i++ {
		node := 0
		if s.fleet != nil {
			node = i + 1
		}
		s.workerWG.Add(1)
		go func() {
			defer s.workerWG.Done()
			for {
				if node > 0 && s.fleet.pullKill(node) {
					return
				}
				st := s.nextJob(node)
				if st == nil {
					return
				}
				s.runJob(st, node)
			}
		}()
	}
	return s
}

// Submit enqueues a job under its tenant, blocking while that tenant's
// queue is full, and returns its ID. IDs are issued in call order, so a
// single-goroutine producer can replay results deterministically by
// waiting on them in order.
func (s *Scheduler) Submit(job Job) (JobID, error) {
	return s.enqueue(job, 0)
}

// Recover re-enqueues the journal's pending jobs — submits without a
// terminal record, in their original submission order and under their
// original IDs. rebuild turns a journal record back into a runnable Job
// (typically from Record.Spec); returning ok=false settles the record as
// failed in the journal so it does not replay forever. Recover is
// idempotent: jobs the scheduler already tracks are skipped, so calling
// it again (the serve protocol's `recover` command) is a no-op after a
// startup replay. It returns the number of jobs re-enqueued.
func (s *Scheduler) Recover(rebuild func(journal.Record) (Job, bool)) int {
	if s.cfg.Journal == nil {
		return 0
	}
	recovered := 0
	for _, rec := range s.cfg.Journal.Pending() {
		id := JobID(rec.Job)
		s.mu.Lock()
		_, tracked := s.states[id]
		s.mu.Unlock()
		if tracked {
			continue
		}
		job, ok := rebuild(rec)
		if !ok {
			s.journalAppend(journal.Record{
				Kind: journal.KindFailed, Job: rec.Job,
				Err: "not recoverable: " + rec.Spec,
			})
			continue
		}
		if job.Tenant == "" {
			job.Tenant = rec.Tenant
		}
		if job.Name == "" {
			job.Name = rec.Name
		}
		if _, err := s.enqueue(job, id); err != nil {
			break // closed mid-recovery; remaining records stay pending
		}
		recovered++
	}
	return recovered
}

// enqueue inserts the job under its tenant. forcedID 0 issues a fresh ID
// and journals a submit record; a nonzero forcedID is a journal replay —
// the submit record already exists, so none is written.
func (s *Scheduler) enqueue(job Job, forcedID JobID) (JobID, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	t := s.tenantLocked(job.Tenant)
	// Per-tenant backpressure: the reservation keeps the bound exact while
	// this submitter is between its space check and its queue append.
	for !s.closed && len(t.queue)+t.reserved >= t.depth {
		s.cond.Wait()
	}
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	t.reserved++
	// The inflight count keeps workers alive across the unlock window
	// below: a Close racing with this submit must not let the last worker
	// exit before the queue append lands, or the job would be stranded
	// (Wait would hang) and its events could outlive the caller's channel.
	s.inflight++
	id := forcedID
	if id == 0 {
		s.nextID++
		id = s.nextID
	} else if id > s.nextID {
		s.nextID = id
	}
	st := &jobState{
		id:     id,
		tenant: t.name,
		job:    job,
		done:   make(chan struct{}),
	}
	if s.fleet != nil && s.fleet.partitioned() && t.cfg.StoreBudget == 0 {
		// Shared-policy tenants analyze against the fleet's consistent-
		// hashed placement; the node view is resolved at dispatch time,
		// since the executing node is not known yet. Private and storeless
		// tenants keep their configured policy.
		st.fleetStore = true
	} else {
		st.store = t.bundleStore(s.cfg.Store)
	}
	s.states[id] = st
	t.submitted++
	s.mu.Unlock()

	if forcedID == 0 {
		s.journalAppend(journal.Record{
			Kind: journal.KindSubmit, Job: int64(id),
			Tenant: t.name, Name: job.Name, Spec: job.Spec,
		})
	}
	// Queued is emitted before the job becomes dispatchable, so per-job
	// event order holds even when a worker grabs it immediately.
	s.emit(Event{Kind: EventQueued, Job: id, Name: job.Name})

	s.mu.Lock()
	t.reserved--
	s.inflight--
	t.queue = append(t.queue, st)
	s.cond.Broadcast()
	s.mu.Unlock()
	if s.fleet != nil && s.fleet.liveCount() == 0 {
		// A submit that lands after the last node died: no worker remains
		// to ever pop it, so settle it as failed instead of letting Wait
		// hang. (The fence itself fails the jobs queued at that moment.)
		s.failQueued()
	}
	return id, nil
}

// Cancel cancels a job. A still-queued job is settled as canceled when a
// worker reaches it (its terminal event is EventCanceled and Wait returns
// ErrCanceled); a running job gets a cooperative stop request that the
// engine's meter observes at its next cancellation checkpoint — within
// simtime.CancelCheckpointUnits of charged work — after which the same
// single terminal EventCanceled is emitted and no further sink events
// stream. Cancel returns false when the job is unknown, already finished
// or already canceled. A running job past its final checkpoint may still
// complete; the cancel request stands but the terminal event reports the
// outcome that actually happened.
func (s *Scheduler) Cancel(id JobID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.states[id]
	if !ok || st.canceled || st.cancelReq {
		return false
	}
	select {
	case <-st.done:
		return false
	default:
	}
	t := s.tenantLocked(st.tenant)
	if !st.started {
		st.canceled = true
		st.cancelJournaled = true
		t.canceledQueued++
		// Journal the settlement now, not when a worker eventually pops
		// the job: the caller was told the cancel took, so a crash (or
		// Halt) before dispatch must not resurrect the job on replay.
		s.mu.Unlock()
		s.journalAppend(journal.Record{Kind: journal.KindCanceled, Job: int64(st.id)})
		s.mu.Lock()
		return true
	}
	st.cancelReq = true
	st.cancelFlag.Store(true)
	t.canceledRunning++
	return true
}

// Wait blocks until the job finishes and returns its result. Canceled
// jobs return ErrCanceled. Wait is a join: the first Wait for an ID
// releases the scheduler's retained state, so a later Wait for the same
// ID returns ErrUnknownJob — without this, a long-running service would
// accumulate every finished job's full report forever. Clients that
// consume results through the event stream instead should reap finished
// jobs with Forget.
func (s *Scheduler) Wait(id JobID) (*JobResult, error) {
	s.mu.Lock()
	st, ok := s.states[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrUnknownJob
	}
	<-st.done
	s.mu.Lock()
	delete(s.states, id)
	s.mu.Unlock()
	return st.res, st.err
}

// Forget drops a finished job's retained state without reading its
// result — the reaping path for event-stream consumers. It returns false
// when the job is unknown or still pending/running.
func (s *Scheduler) Forget(id JobID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.states[id]
	if !ok {
		return false
	}
	select {
	case <-st.done:
		delete(s.states, id)
		return true
	default:
		return false
	}
}

// Close stops accepting submissions, drains every tenant queue, waits for
// running jobs and stops the workers. The events channel (if any)
// receives every pending event before Close returns; Close does not close
// it — the channel belongs to the caller. Submitters blocked on
// backpressure return ErrClosed.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.workerWG.Wait()
}

// Halt is the crash drill: it stops accepting submissions and stops
// dispatching — workers finish only the jobs already running — leaving
// every queued job unprocessed. With a journal configured those jobs
// remain pending on disk, exactly as if the process had been killed
// between jobs, so a restarted scheduler Recovers them. The CI
// crash-recovery leg uses it as a deterministic SIGKILL stand-in: unlike
// a real kill it never tears a job in half, so the interrupted run's
// output is exactly a prefix of the uninterrupted run's.
func (s *Scheduler) Halt() {
	s.mu.Lock()
	s.closed = true
	s.halted = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.workerWG.Wait()
}

// Store returns the scheduler's shared bundle store (nil when disabled).
// Tenants with a private StoreBudget use their own stores instead.
func (s *Scheduler) Store() *BundleStore { return s.cfg.Store }

// Journal returns the configured journal (nil when the queue is not
// durable).
func (s *Scheduler) Journal() *journal.Journal { return s.cfg.Journal }

// Reports returns the settled-result store (nil when the tier is
// disabled).
func (s *Scheduler) Reports() *ReportStore { return s.cfg.Reports }

// journalAppend writes one record (when a journal is configured) and
// charges the flat control-plane append cost, kept separate from per-job
// meters so journal overhead is measurable as a fraction of analysis
// work. Append failures are swallowed: durability is best-effort, the
// in-memory queue stays authoritative for this process's lifetime.
func (s *Scheduler) journalAppend(r journal.Record) {
	if s.cfg.Journal == nil {
		return
	}
	if err := s.cfg.Journal.Append(r); err == nil {
		s.journalUnits.Add(simtime.JournalAppendUnits)
	}
}

func (s *Scheduler) emit(ev Event) {
	if s.cfg.Events == nil {
		return
	}
	s.evMu.Lock()
	s.cfg.Events <- ev
	s.evMu.Unlock()
}

// nextJob blocks until a job is dispatchable and pops it under the WRR
// policy. It returns nil when the scheduler is halted, closed with
// every queue drained, or the pulling fleet node is dead — the worker
// exit conditions.
func (s *Scheduler) nextJob(node int) *jobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.halted {
			return nil
		}
		if node > 0 && s.fleet.nodeDead(node) {
			return nil
		}
		if st := s.popWRR(); st != nil {
			// A queue slot freed: wake submitters blocked on backpressure.
			s.cond.Broadcast()
			return st
		}
		// Exit only once no submit is mid-append: one that already passed
		// its closed-check is about to enqueue a job this worker must run.
		if s.closed && s.inflight == 0 {
			return nil
		}
		s.cond.Wait()
	}
}

func (s *Scheduler) runJob(st *jobState, node int) {
	s.mu.Lock()
	if st.canceled {
		s.mu.Unlock()
		s.finish(st, nil, ErrCanceled)
		return
	}
	st.started = true
	st.attempt++
	st.node = node
	attempt := st.attempt
	seq := st.dispatchSeq
	s.mu.Unlock()

	if s.fleet != nil {
		s.fleet.grant(st.id, st.job.Name, node, attempt)
		s.journalAppend(journal.Record{
			Kind: journal.KindLease, Job: int64(st.id),
			Node: int64(node), Attempt: int64(attempt),
		})
	}
	if attempt == 1 {
		s.journalAppend(journal.Record{Kind: journal.KindStart, Job: int64(st.id)})
	}
	s.emit(Event{Kind: EventStarted, Job: st.id, Name: st.job.Name, Node: node, Attempt: attempt, Seq: seq})
	res, err := s.analyze(st, node, attempt)
	if s.fleet != nil {
		if s.fleet.nodeDead(node) && errors.Is(err, simtime.ErrCanceled) && !st.cancelFlag.Load() {
			// The node died under this attempt (the engine aborted at the
			// checkpoint that observed the fencing, not by user cancel): no
			// terminal — abandon charges the detection latency, expires the
			// lease and hands the job to a surviving node.
			s.fleet.abandon(st.id, node, attempt)
			return
		}
		s.fleet.release(st.id, node, attempt)
	}
	s.finish(st, res, err)
}

// finish settles a job: journal terminal record first (so a crash after
// the record never replays a delivered job), then the Done callback, then
// the join release, then the single terminal event. The join closes
// before the event so a consumer that reacts to the event with Forget —
// cmd/backdroidd's reaping path — always finds the job joinable; emitting
// first would make that Forget a silent no-op and leak the report.
//
// The settled guard makes termination at-most-once under fleet handoffs:
// when a fenced-but-still-working node (the gray-failure double run) and
// the re-dispatched attempt both reach finish, the first settles the job
// and the second returns without journaling, emitting or closing again.
func (s *Scheduler) finish(st *jobState, res *JobResult, err error) {
	s.mu.Lock()
	if st.settled {
		s.mu.Unlock()
		return
	}
	st.settled = true
	s.mu.Unlock()
	kind := journal.KindDone
	ev := Event{Kind: EventDone, Job: st.id, Name: st.job.Name, Result: res}
	switch {
	case errors.Is(err, ErrCanceled) || errors.Is(err, simtime.ErrCanceled):
		err = ErrCanceled
		res = nil
		kind = journal.KindCanceled
		ev = Event{Kind: EventCanceled, Job: st.id, Name: st.job.Name}
	case err != nil:
		kind = journal.KindFailed
		ev = Event{Kind: EventFailed, Job: st.id, Name: st.job.Name, Err: err}
	}
	st.res, st.err = res, err
	if kind != journal.KindCanceled || !st.cancelJournaled {
		rec := journal.Record{Kind: kind, Job: int64(st.id)}
		if kind == journal.KindFailed {
			rec.Err = err.Error()
		}
		s.journalAppend(rec)
	}
	if st.job.Done != nil {
		st.job.Done(res, err)
	}
	close(st.done)
	s.emit(ev)
}

// requeueJob returns a lease-expired job to the FRONT of its tenant's
// queue (the handoff must not wait behind the tenant's backlog — the job
// already waited its turn once), journals the handoff record and charges
// the re-dispatch overhead with exponential backoff. A job with no
// surviving node, or one past the fleet's attempt bound, fails
// terminally instead. Called by the fleet sweep, never under s.mu.
func (s *Scheduler) requeueJob(id JobID, from, attempt int) {
	s.mu.Lock()
	st, ok := s.states[id]
	if !ok || st.settled {
		s.mu.Unlock()
		return
	}
	live := s.fleet.liveCount()
	if live == 0 || attempt >= s.fleet.maxAttempts() {
		s.mu.Unlock()
		s.finish(st, nil, fmt.Errorf(
			"service: job %q lost with node %d (attempt %d, %d nodes live): retry budget exhausted",
			st.job.Name, from, attempt, live))
		return
	}
	t := s.tenantLocked(st.tenant)
	t.queue = append([]*jobState{st}, t.queue...)
	t.requeued++
	s.cond.Broadcast()
	s.mu.Unlock()

	s.journalAppend(journal.Record{
		Kind: journal.KindHandoff, Job: int64(id),
		Node: int64(from), Attempt: int64(attempt),
	})
	s.fleet.chargeHandoff(attempt)
}

// failQueued fails every still-queued job — the fleet's last-node-died
// path, where no worker remains to ever pop them.
func (s *Scheduler) failQueued() {
	s.mu.Lock()
	var victims []*jobState
	for _, name := range s.order {
		t := s.tenants[name]
		victims = append(victims, t.queue...)
		t.queue = nil
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, st := range victims {
		s.finish(st, nil, errors.New("service: every fleet node is dead"))
	}
}

// KillNode fences a fleet node — the `die node=N` crash drill: the node
// pulls no more work, its running attempt aborts at its next meter
// checkpoint and is handed off to a surviving node after the lease TTL.
// It errors without a fleet, for an out-of-range node, or for a node
// already dead.
func (s *Scheduler) KillNode(node int) error {
	if s.fleet == nil {
		return errors.New("service: no fleet configured (start with Nodes > 0)")
	}
	return s.fleet.kill(node)
}

// FleetStats snapshots the fleet counters (nil without a fleet).
func (s *Scheduler) FleetStats() *FleetStats {
	if s.fleet == nil {
		return nil
	}
	return s.fleet.stats()
}

// jobStore is the bundle-store surface a job analyzes against: either a
// plain *BundleStore or a fleet placement view routing each fingerprint
// to its owner node's partition. Its method set covers core.BundleCache
// (plus the optional DropBundle seam), so either implementation plugs
// into the engine unchanged.
type jobStore interface {
	GetBundle(fp uint64) ([]byte, bool)
	PutBundle(fp uint64, data []byte)
	DropBundle(fp uint64)
	Contains(fp uint64) bool
	LockFingerprint(fp uint64) func()
}

// analyze materializes the job's app and runs the selected analyzers.
// Every job builds its own engines — no analysis state crosses jobs; the
// only shared objects are the content-addressed bundle stores, which are
// concurrency-safe and append-only. node/attempt identify the fleet
// dispatch (0/1 without a fleet); they are passed as values because a
// handed-off job's jobState fields may be rewritten by the re-dispatch
// while the abandoned attempt is still in here.
func (s *Scheduler) analyze(st *jobState, node, attempt int) (*JobResult, error) {
	job := st.job
	app, err := job.Source()
	if err != nil {
		return nil, err
	}
	res := &JobResult{ID: st.id, Name: job.Name}
	if res.Name == "" {
		res.Name = app.Name
	}

	if job.RunBackDroid {
		o := s.jobOptions(job)
		// Cooperative cancellation: the engine's meter polls this flag at
		// every checkpoint; Scheduler.Cancel flips it. A job-supplied
		// Cancel still applies — either source stops the run. In fleet
		// mode the same checkpoint is the node's heartbeat: the tick
		// advances the node odometer and fleet clock by the charged
		// delta, meters the lease, consults the fault plan and reports
		// the node's own death, which aborts the run like a cancel.
		flag := &st.cancelFlag
		user := o.Cancel
		o.Cancel = func() bool {
			return flag.Load() || (user != nil && user())
		}
		if s.fleet != nil {
			fl, id, name := s.fleet, st.id, job.Name
			o.Heartbeat = func(delta int64) bool {
				return fl.tick(node, id, name, attempt, delta)
			}
		}
		var store jobStore
		if st.fleetStore {
			if v := s.fleet.view(node); v != nil {
				store = v
			}
		} else if st.store != nil {
			store = st.store
		}
		var fp uint64
		if store != nil || s.cfg.Reports != nil {
			fp = dexdump.AppFingerprint(app.Dexes)
		}
		// Settled-result fast path. The key is taken before the delta
		// base, bundle cache or observer wiring is injected — all
		// fingerprint-neutral — so a delta run, a warm run and a cold run
		// of one (app, options) pair share one address, and a hit skips
		// the engine entirely.
		var settledKey ReportKey
		if s.cfg.Reports != nil {
			settledKey = ReportKey{App: fp, Options: OptionsFingerprint(&o)}
			if stored, ok := s.cfg.Reports.Get(settledKey); ok {
				rep, err := s.serveSettled(st, res.Name, stored, o.TimeoutMinutes)
				if err != nil {
					return nil, err
				}
				res.BackDroid = rep
				if store != nil && !stored.TimedOut {
					// Seed the delta path only when nothing better is
					// known: an engine-produced prev carries the sink
					// footprints the settled copy may lack
					// (journal-recovered entries never have them), and
					// clobbering it would degrade the next update's
					// reuse.
					if _, known := s.lastRun(st.tenant, res.Name); !known {
						s.rememberRun(st.tenant, res.Name, fp, stored)
					}
				}
			}
		}
		if res.BackDroid == nil {
			release := func() {}
			if store != nil {
				o.Bundles = store
				if prev, ok := s.lastRun(st.tenant, res.Name); ok && prev.fp != fp && !o.PerAppSSG {
					// Same job name, different content: an app update. When
					// the prior version's bundle is still cached, hand it to
					// the engine as the delta base; the engine itself falls
					// back to a full run if the base proves unusable.
					if data, ok := store.GetBundle(prev.fp); ok {
						o.DeltaFrom = &core.DeltaBase{Fingerprint: prev.fp, Bundle: data, Report: prev.report}
					}
				}
				if !store.Contains(fp) {
					// Single-build guarantee: concurrent jobs for one
					// fingerprint serialize here, so the first performs the
					// only cold build and the rest run fully warm. The
					// re-probe happens inside the engine; the lock is held
					// only across the engine run (the bundle is published
					// during it), never across the baseline legs below.
					release = store.LockFingerprint(fp)
				}
			}
			if s.cfg.Events != nil {
				id, name := st.id, res.Name
				o.SinkObserver = func(sr *core.SinkReport) {
					s.emit(Event{Kind: EventSink, Job: id, Name: name, Sink: sr})
				}
			}
			e, err := core.New(app, o)
			if err != nil {
				release()
				if errors.Is(err, simtime.ErrCanceled) {
					return nil, err
				}
				return nil, fmt.Errorf("service: backdroid on %s: %w", res.Name, err)
			}
			res.BackDroid, err = e.Analyze()
			release()
			if err != nil {
				if errors.Is(err, simtime.ErrCanceled) {
					return nil, err
				}
				return nil, fmt.Errorf("service: backdroid on %s: %w", res.Name, err)
			}
			if store != nil && !res.BackDroid.TimedOut {
				s.rememberRun(st.tenant, res.Name, fp, res.BackDroid)
			}
			if s.cfg.Reports != nil {
				// Settle the report under its content address. Timed-out
				// reports settle too: the timeout is simulated-time
				// deterministic and TimeoutMinutes is hashed, so a
				// resubmission would reproduce the same truncated report.
				s.cfg.Reports.Put(settledKey, res.BackDroid)
			}
		}
	}
	if job.RunWholeApp {
		res.WholeApp, err = runWholeApp(app, wholeapp.FullAnalysis)
		if err != nil {
			return nil, fmt.Errorf("service: wholeapp on %s: %w", res.Name, err)
		}
	}
	if job.RunCallGraph {
		res.CallGraph, err = runWholeApp(app, wholeapp.CallGraphOnly)
		if err != nil {
			return nil, fmt.Errorf("service: callgraph on %s: %w", res.Name, err)
		}
	}
	return res, nil
}

// serveSettled answers a job from the settled-result tier: one flat
// O(1) lookup charge, a replayed EventSink per stored sink and a shallow
// copy of the stored report whose Stats describe this serving (one
// settled lookup) rather than the original run. The copy shares the
// stored report's sink pointers, so streamed events and the batch result
// reference the same objects — exactly the engine's own contract.
func (s *Scheduler) serveSettled(st *jobState, name string, stored *core.Report, timeoutMinutes float64) (*core.Report, error) {
	if st.cancelFlag.Load() {
		return nil, simtime.ErrCanceled
	}
	m := simtime.NewMeterWithTimeout(timeoutMinutes)
	if err := m.ChargeSettledLookup(); err != nil {
		return nil, err
	}
	replay := *stored
	replay.Stats = core.Stats{
		WorkUnits:      m.Units(),
		SimMinutes:     m.Minutes(),
		SettledLookups: 1,
	}
	if s.cfg.Events != nil {
		for _, sr := range replay.Sinks {
			s.emit(Event{Kind: EventSink, Job: st.id, Name: name, Sink: sr})
		}
	}
	return &replay, nil
}

// lastRun returns the remembered prior analysis of a tenant's job name.
func (s *Scheduler) lastRun(tenant, name string) (prevRun, bool) {
	s.prevMu.Lock()
	defer s.prevMu.Unlock()
	p, ok := s.prev[prevKey(tenant, name)]
	return p, ok
}

// rememberRun records a settled analysis as the delta base for the next
// submission of the same name. Timed-out reports are not remembered —
// their sink list is incomplete, so they cannot seed a reuse decision.
func (s *Scheduler) rememberRun(tenant, name string, fp uint64, report *core.Report) {
	s.prevMu.Lock()
	defer s.prevMu.Unlock()
	s.prev[prevKey(tenant, name)] = prevRun{fp: fp, report: report}
}

// jobOptions resolves the engine options of a job: its own, else the
// scheduler default, else core.DefaultOptions — always a copy, never a
// shared pointer — with the cache-directory override applied.
func (s *Scheduler) jobOptions(job Job) core.Options {
	o := core.DefaultOptions()
	if job.Options != nil {
		o = *job.Options
	} else if s.cfg.Options != nil {
		o = *s.cfg.Options
	}
	if job.IndexCacheDir != "" {
		o.IndexCacheDir = job.IndexCacheDir
	} else if s.cfg.IndexCacheDir != "" && o.IndexCacheDir == "" {
		o.IndexCacheDir = s.cfg.IndexCacheDir
	}
	return o
}

func runWholeApp(app *apk.App, mode wholeapp.Mode) (*wholeapp.Report, error) {
	o := wholeapp.DefaultOptions()
	o.Mode = mode
	a, err := wholeapp.New(app, o)
	if err != nil {
		return nil, err
	}
	return a.Analyze()
}
