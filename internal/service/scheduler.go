package service

import (
	"errors"
	"fmt"
	"sync"

	"backdroid/internal/apk"
	"backdroid/internal/core"
	"backdroid/internal/dexdump"
	"backdroid/internal/wholeapp"
)

// Scheduler errors.
var (
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("service: scheduler closed")
	// ErrCanceled is returned by Wait for a job canceled before it started.
	ErrCanceled = errors.New("service: job canceled")
	// ErrUnknownJob is returned by Wait for an ID this scheduler never
	// issued.
	ErrUnknownJob = errors.New("service: unknown job id")
)

// JobID identifies a submitted job; IDs are issued in submission order,
// so iterating them replays the corpus deterministically.
type JobID int64

// Job is one unit of work: an app source plus the analyzers to run on it.
type Job struct {
	// Name labels the job in events and error messages (usually the app
	// name).
	Name string
	// Source materializes the app when the job is scheduled — a generator
	// closure, an APK loader, an in-memory handle. Running it lazily on
	// the worker keeps memory bounded: apps exist only while analyzed,
	// exactly as the one-shot corpus pipeline behaved.
	Source func() (*apk.App, error)
	// Options configures the BackDroid engine for this job; nil inherits
	// the scheduler default (which defaults to core.DefaultOptions).
	Options *core.Options
	// IndexCacheDir overrides the scheduler's persistent bundle directory
	// for this job ("" inherits).
	IndexCacheDir string
	// Analyzer selection; a job with none selected still runs Source
	// (useful for validation probes).
	RunBackDroid bool
	RunWholeApp  bool
	RunCallGraph bool
	// Done, when non-nil, runs on the worker goroutine as soon as the job
	// finishes, before the done/failed event is emitted — the progress
	// seam of batch clients.
	Done func(res *JobResult, err error)
}

// JobResult bundles one job's analysis outcomes.
type JobResult struct {
	ID        JobID
	Name      string
	BackDroid *core.Report
	WholeApp  *wholeapp.Report
	CallGraph *wholeapp.Report
}

// EventKind types the entries of the streamed result channel.
type EventKind int

// Event kinds, in the order one job emits them.
const (
	EventQueued EventKind = iota + 1
	EventStarted
	EventSink
	EventDone
	EventFailed
	EventCanceled
)

// String names the event kind as the serve command prints it.
func (k EventKind) String() string {
	switch k {
	case EventQueued:
		return "queued"
	case EventStarted:
		return "started"
	case EventSink:
		return "sink"
	case EventDone:
		return "done"
	case EventFailed:
		return "failed"
	case EventCanceled:
		return "canceled"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one streamed scheduler occurrence. Per job the order is fixed
// — queued, started, one EventSink per resolved sink in report order,
// then exactly one of done/failed/canceled — while events of different
// jobs interleave with worker scheduling.
type Event struct {
	Kind EventKind
	Job  JobID
	Name string
	// Sink is set on EventSink: the completed per-sink report, final
	// verdict included.
	Sink *core.SinkReport
	// Result is set on EventDone.
	Result *JobResult
	// Err is set on EventFailed.
	Err error
}

// Config configures a Scheduler.
type Config struct {
	// Workers bounds concurrent job analyses; values <= 1 run one at a
	// time.
	Workers int
	// QueueDepth bounds the submit queue; Submit blocks once this many
	// jobs are waiting (backpressure toward the producer). 0 defaults to
	// 2*Workers.
	QueueDepth int
	// Options is the default engine configuration for jobs that carry
	// none; nil uses core.DefaultOptions.
	Options *core.Options
	// IndexCacheDir is the default persistent bundle directory ("" =
	// disabled).
	IndexCacheDir string
	// Store is the shared in-memory content-addressed bundle store; nil
	// disables in-memory reuse. With a store, re-submitting an app whose
	// fingerprint is cached performs zero disassembly, zero index builds
	// and zero bundle disk I/O, and concurrent submissions of one
	// fingerprint serialize so the bundle is built exactly once.
	Store *BundleStore
	// Events, when non-nil, receives the streamed event channel. The
	// consumer must drain it: emission blocks the emitting worker (and,
	// because per-job event order is guaranteed, other emitters) until
	// the event is received.
	Events chan<- Event
}

// Scheduler runs analysis jobs over a bounded worker pool with a bounded
// queue. It is the reusable session layer the one-shot corpus harness
// lacked: engines are still per-job (analysis state never crosses
// goroutines), but the bundle store, worker pool and event stream live
// across submissions.
type Scheduler struct {
	cfg  Config
	jobs chan *jobState

	mu       sync.Mutex
	states   map[JobID]*jobState
	nextID   JobID
	closed   bool
	submitWG sync.WaitGroup // in-flight Submit sends

	workerWG sync.WaitGroup
	evMu     sync.Mutex
}

type jobState struct {
	id       JobID
	job      Job
	done     chan struct{}
	res      *JobResult
	err      error
	canceled bool
	started  bool
}

// New builds and starts a scheduler.
func New(cfg Config) *Scheduler {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	s := &Scheduler{
		cfg:    cfg,
		jobs:   make(chan *jobState, cfg.QueueDepth),
		states: make(map[JobID]*jobState),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workerWG.Add(1)
		go func() {
			defer s.workerWG.Done()
			for st := range s.jobs {
				s.runJob(st)
			}
		}()
	}
	return s
}

// Submit enqueues a job, blocking while the queue is full, and returns
// its ID. IDs are issued in call order, so a single-goroutine producer
// can replay results deterministically by waiting on them in order.
func (s *Scheduler) Submit(job Job) (JobID, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	s.nextID++
	id := s.nextID
	st := &jobState{id: id, job: job, done: make(chan struct{})}
	s.states[id] = st
	s.submitWG.Add(1)
	s.mu.Unlock()

	s.emit(Event{Kind: EventQueued, Job: id, Name: job.Name})
	s.jobs <- st
	s.submitWG.Done()
	return id, nil
}

// Cancel marks a still-queued job canceled. It returns false when the job
// is unknown, already running or already finished — running jobs are not
// interrupted.
func (s *Scheduler) Cancel(id JobID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.states[id]
	if !ok || st.started || st.canceled {
		return false
	}
	select {
	case <-st.done:
		return false
	default:
	}
	st.canceled = true
	return true
}

// Wait blocks until the job finishes and returns its result. Canceled
// jobs return ErrCanceled. Wait is a join: the first Wait for an ID
// releases the scheduler's retained state, so a later Wait for the same
// ID returns ErrUnknownJob — without this, a long-running service would
// accumulate every finished job's full report forever. Clients that
// consume results through the event stream instead should reap finished
// jobs with Forget.
func (s *Scheduler) Wait(id JobID) (*JobResult, error) {
	s.mu.Lock()
	st, ok := s.states[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrUnknownJob
	}
	<-st.done
	s.mu.Lock()
	delete(s.states, id)
	s.mu.Unlock()
	return st.res, st.err
}

// Forget drops a finished job's retained state without reading its
// result — the reaping path for event-stream consumers. It returns false
// when the job is unknown or still pending/running.
func (s *Scheduler) Forget(id JobID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.states[id]
	if !ok {
		return false
	}
	select {
	case <-st.done:
		delete(s.states, id)
		return true
	default:
		return false
	}
}

// Close stops accepting submissions, drains the queue, waits for running
// jobs and stops the workers. The events channel (if any) receives every
// pending event before Close returns; Close does not close it — the
// channel belongs to the caller.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.workerWG.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.submitWG.Wait()
	close(s.jobs)
	s.workerWG.Wait()
}

// Store returns the scheduler's bundle store (nil when disabled).
func (s *Scheduler) Store() *BundleStore { return s.cfg.Store }

func (s *Scheduler) emit(ev Event) {
	if s.cfg.Events == nil {
		return
	}
	s.evMu.Lock()
	s.cfg.Events <- ev
	s.evMu.Unlock()
}

func (s *Scheduler) runJob(st *jobState) {
	s.mu.Lock()
	if st.canceled {
		s.mu.Unlock()
		st.err = ErrCanceled
		if st.job.Done != nil {
			st.job.Done(nil, st.err)
		}
		s.emit(Event{Kind: EventCanceled, Job: st.id, Name: st.job.Name})
		close(st.done)
		return
	}
	st.started = true
	s.mu.Unlock()

	s.emit(Event{Kind: EventStarted, Job: st.id, Name: st.job.Name})
	res, err := s.analyze(st)
	st.res, st.err = res, err
	if st.job.Done != nil {
		st.job.Done(res, err)
	}
	if err != nil {
		s.emit(Event{Kind: EventFailed, Job: st.id, Name: st.job.Name, Err: err})
	} else {
		s.emit(Event{Kind: EventDone, Job: st.id, Name: st.job.Name, Result: res})
	}
	close(st.done)
}

// analyze materializes the job's app and runs the selected analyzers.
// Every job builds its own engines — no analysis state crosses jobs; the
// only shared object is the content-addressed bundle store, which is
// concurrency-safe and append-only.
func (s *Scheduler) analyze(st *jobState) (*JobResult, error) {
	job := st.job
	app, err := job.Source()
	if err != nil {
		return nil, err
	}
	res := &JobResult{ID: st.id, Name: job.Name}
	if res.Name == "" {
		res.Name = app.Name
	}

	if job.RunBackDroid {
		o := s.jobOptions(job)
		release := func() {}
		if s.cfg.Store != nil {
			o.Bundles = s.cfg.Store
			fp := dexdump.AppFingerprint(app.Dexes)
			if !s.cfg.Store.Contains(fp) {
				// Single-build guarantee: concurrent jobs for one
				// fingerprint serialize here, so the first performs the
				// only cold build and the rest run fully warm. The
				// re-probe happens inside the engine; the lock is held
				// only across the engine run (the bundle is published
				// during it), never across the baseline legs below.
				release = s.cfg.Store.LockFingerprint(fp)
			}
		}
		if s.cfg.Events != nil {
			id, name := st.id, res.Name
			o.SinkObserver = func(sr *core.SinkReport) {
				s.emit(Event{Kind: EventSink, Job: id, Name: name, Sink: sr})
			}
		}
		e, err := core.New(app, o)
		if err != nil {
			release()
			return nil, fmt.Errorf("service: backdroid on %s: %w", res.Name, err)
		}
		res.BackDroid, err = e.Analyze()
		release()
		if err != nil {
			return nil, fmt.Errorf("service: backdroid on %s: %w", res.Name, err)
		}
	}
	if job.RunWholeApp {
		res.WholeApp, err = runWholeApp(app, wholeapp.FullAnalysis)
		if err != nil {
			return nil, fmt.Errorf("service: wholeapp on %s: %w", res.Name, err)
		}
	}
	if job.RunCallGraph {
		res.CallGraph, err = runWholeApp(app, wholeapp.CallGraphOnly)
		if err != nil {
			return nil, fmt.Errorf("service: callgraph on %s: %w", res.Name, err)
		}
	}
	return res, nil
}

// jobOptions resolves the engine options of a job: its own, else the
// scheduler default, else core.DefaultOptions — always a copy, never a
// shared pointer — with the cache-directory override applied.
func (s *Scheduler) jobOptions(job Job) core.Options {
	o := core.DefaultOptions()
	if job.Options != nil {
		o = *job.Options
	} else if s.cfg.Options != nil {
		o = *s.cfg.Options
	}
	if job.IndexCacheDir != "" {
		o.IndexCacheDir = job.IndexCacheDir
	} else if s.cfg.IndexCacheDir != "" && o.IndexCacheDir == "" {
		o.IndexCacheDir = s.cfg.IndexCacheDir
	}
	return o
}

func runWholeApp(app *apk.App, mode wholeapp.Mode) (*wholeapp.Report, error) {
	o := wholeapp.DefaultOptions()
	o.Mode = mode
	a, err := wholeapp.New(app, o)
	if err != nil {
		return nil, err
	}
	return a.Analyze()
}
