package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"backdroid/internal/apk"
	"backdroid/internal/core"
	"backdroid/internal/dexdump"
	"backdroid/internal/faultinject"
	"backdroid/internal/obs"
	"backdroid/internal/service/journal"
	"backdroid/internal/simtime"
	"backdroid/internal/wholeapp"
)

// Scheduler errors.
var (
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("service: scheduler closed")
	// ErrCanceled is returned by Wait for a canceled job — removed from
	// its queue before starting, or stopped at a meter checkpoint while
	// running.
	ErrCanceled = errors.New("service: job canceled")
	// ErrUnknownJob is returned by Wait for an ID this scheduler never
	// issued.
	ErrUnknownJob = errors.New("service: unknown job id")
)

// JobID identifies a submitted job; IDs are issued in submission order,
// so iterating them replays the corpus deterministically.
type JobID int64

// Job is one unit of work: an app source plus the analyzers to run on it.
type Job struct {
	// Name labels the job in events and error messages (usually the app
	// name).
	Name string
	// Tenant names the analysis stream the job belongs to; "" lands in
	// DefaultTenantName. Each tenant has its own bounded queue and
	// weighted-round-robin dispatch share, so one tenant's backlog never
	// head-of-line-blocks another's submissions.
	Tenant string
	// Spec is the opaque string a journaled job is rebuilt from after a
	// restart (backdroidd stores the APK path). Jobs with an empty Spec
	// are journaled too, but a recovery pass can only re-enqueue them if
	// its rebuild function knows them by name.
	Spec string
	// Source materializes the app when the job is scheduled — a generator
	// closure, an APK loader, an in-memory handle. Running it lazily on
	// the worker keeps memory bounded: apps exist only while analyzed,
	// exactly as the one-shot corpus pipeline behaved.
	Source func() (*apk.App, error)
	// Options configures the BackDroid engine for this job; nil inherits
	// the scheduler default (which defaults to core.DefaultOptions).
	Options *core.Options
	// IndexCacheDir overrides the scheduler's persistent bundle directory
	// for this job ("" inherits).
	IndexCacheDir string
	// Analyzer selection; a job with none selected still runs Source
	// (useful for validation probes).
	RunBackDroid bool
	RunWholeApp  bool
	RunCallGraph bool
	// Done, when non-nil, runs on the worker goroutine as soon as the job
	// finishes, before the done/failed event is emitted — the progress
	// seam of batch clients.
	Done func(res *JobResult, err error)
}

// JobResult bundles one job's analysis outcomes.
type JobResult struct {
	ID        JobID
	Name      string
	BackDroid *core.Report
	WholeApp  *wholeapp.Report
	CallGraph *wholeapp.Report
}

// EventKind types the entries of the streamed result channel.
type EventKind int

// Event kinds, in the order one job emits them.
const (
	EventQueued EventKind = iota + 1
	EventStarted
	EventSink
	EventDone
	EventFailed
	EventCanceled
)

// String names the event kind as the serve command prints it.
func (k EventKind) String() string {
	switch k {
	case EventQueued:
		return "queued"
	case EventStarted:
		return "started"
	case EventSink:
		return "sink"
	case EventDone:
		return "done"
	case EventFailed:
		return "failed"
	case EventCanceled:
		return "canceled"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one streamed scheduler occurrence. Per job the order is fixed
// — queued, started, one EventSink per resolved sink in report order,
// then exactly one of done/failed/canceled — while events of different
// jobs interleave with worker scheduling. A job canceled while running
// emits its single terminal EventCanceled and nothing after it.
type Event struct {
	Kind EventKind
	Job  JobID
	Name string
	// Sink is set on EventSink: the completed per-sink report, final
	// verdict included.
	Sink *core.SinkReport
	// Result is set on EventDone.
	Result *JobResult
	// Err is set on EventFailed.
	Err error
	// Node is the fleet node executing the job (EventStarted and later);
	// 0 when the scheduler runs without a fleet.
	Node int
	// Attempt counts dispatches of this job (EventStarted and later): 1
	// on the first dispatch, higher after a lease-expiry handoff
	// re-dispatched it. A handed-off job emits one EventStarted per
	// attempt but still exactly one terminal event.
	Attempt int
	// Seq is the job's WRR dispatch sequence number (EventStarted).
	Seq int64
	// Span, set on EventSink when tracing is enabled, is the id of the
	// backslice span that produced the sink — "job/sub/pos" on the
	// trace's track coordinates — so an SSE consumer can join the event
	// stream against the exported timeline.
	Span string
}

// Config configures a Scheduler.
type Config struct {
	// Workers bounds concurrent job analyses; values <= 1 run one at a
	// time.
	Workers int
	// QueueDepth bounds each tenant's submit queue; Submit blocks once
	// this many of that tenant's jobs are waiting (backpressure toward
	// the producer). 0 defaults to 2*Workers. TenantConfig.MaxQueueDepth
	// overrides it per tenant.
	QueueDepth int
	// Tenants preconfigures named tenants (weight, queue depth, store
	// budget). Jobs for tenants absent here are admitted under
	// DefaultTenant's policy.
	Tenants map[string]TenantConfig
	// DefaultTenant is the policy of tenants not listed in Tenants (the
	// zero value means weight 1, inherited queue depth, shared store).
	DefaultTenant TenantConfig
	// Options is the default engine configuration for jobs that carry
	// none; nil uses core.DefaultOptions.
	Options *core.Options
	// IndexCacheDir is the default persistent bundle directory ("" =
	// disabled).
	IndexCacheDir string
	// Store is the shared in-memory content-addressed bundle store; nil
	// disables in-memory reuse. With a store, re-submitting an app whose
	// fingerprint is cached performs zero disassembly, zero index builds
	// and zero bundle disk I/O, and concurrent submissions of one
	// fingerprint serialize so the bundle is built exactly once.
	// TenantConfig.StoreBudget can give a tenant a private store instead.
	Store *BundleStore
	// Journal, when non-nil, makes the queue durable: every submit,
	// start and terminal outcome is appended as a CRC'd record, so a
	// restarted service can Recover the jobs that were pending when the
	// previous process died. The journal belongs to the caller (it is
	// not closed by Close).
	Journal *journal.Journal
	// Reports, when non-nil, is the settled-result tier: terminal
	// BackDroid reports content-addressed by (app fingerprint, options
	// fingerprint). Resubmitting a settled pair is answered from the
	// store in O(1) — zero disassembly, zero index builds, zero engine
	// runs — with per-sink events replayed and a report bitwise-identical
	// (in canonical encoding) to the original run's. Attach the store to
	// the Journal and Recover it before New to make the tier survive
	// restarts.
	Reports *ReportStore
	// Events, when non-nil, receives the streamed event channel. The
	// consumer must drain it: emission blocks the emitting worker (and,
	// because per-job event order is guaranteed, other emitters) until
	// the event is received.
	Events chan<- Event
	// Nodes, when > 0, runs the scheduler as a coordinator over a fleet
	// of goroutine-backed worker nodes (Workers is overridden to Nodes).
	// Every dispatch takes a simtime-metered lease; a node that dies or
	// goes mute has its jobs handed off to surviving nodes, and shared-
	// policy tenants analyze against consistent-hashed per-node bundle
	// partitions instead of Config.Store. See DESIGN.md Sec. 12.
	Nodes int
	// NodeStoreBudget is each fleet node's bundle partition budget in
	// bytes: 0 = unbounded partitions, < 0 = partitions disabled (jobs
	// run storeless unless their tenant has a private store). Only
	// meaningful with Nodes > 0.
	NodeStoreBudget int64
	// Faults is the deterministic chaos plan threaded through the
	// dispatch loop (node/job kills, heartbeat drops), the journal append
	// path (record corruption) and the fleet bundle partitions (fetch
	// failures); nil injects nothing. See internal/faultinject.
	Faults *faultinject.Plan
	// Fleet tunables. Each value <= 0 inherits the simtime default of the
	// same name; only meaningful with Nodes > 0.
	//
	// LeaseTTLUnits is how long a lease survives without a heartbeat
	// before the coordinator fences its holder and hands the range off.
	LeaseTTLUnits int64
	// HandoffUnits is the flat charge of one re-dispatch; each handoff
	// additionally pays RetryBackoffUnits << (attempt-1), capped.
	HandoffUnits      int64
	RetryBackoffUnits int64
	// StealMinSinks is the smallest unstarted sink tail worth stealing:
	// an idle node takes work only from a job with at least this many
	// sinks not yet begun.
	StealMinSinks int
	// StealAfterUnits is how long a job must have ground (units metered
	// against its lease) before its tail becomes stealable — a warmup
	// that keeps small apps from being split for no benefit.
	StealAfterUnits int64
	// Metrics is the registry every subsystem's counters are collected
	// into (scheduler, tenants, fleet, bundle/shard/report stores,
	// journal). nil creates a private registry; either way Metrics()
	// returns the one in effect, and /metrics, the stats JSON and the
	// stdin stats lines all render from its Snapshot.
	Metrics *obs.Registry
	// Trace, when non-nil, records simtime-anchored spans for every
	// dispatch: engine phases, steal shed/claim, handoffs, chunk merges
	// and settled hits, plus one charged-units counter sample per meter
	// checkpoint (which doubles as the lease heartbeat in fleet mode —
	// there is no separate heartbeat event). Span timestamps are charged
	// units on per-(job, chunk) tracks, never wall time, so two runs of
	// one seed record byte-identical canonical exports. nil disables
	// tracing at zero cost.
	Trace *obs.Trace
}

// Scheduler runs analysis jobs over a bounded worker pool with per-tenant
// bounded queues and deterministic weighted-round-robin dispatch. It is
// the control plane the one-shot corpus harness lacked: engines are still
// per-job (analysis state never crosses goroutines), but the bundle
// store, worker pool, event stream, tenant queues and the durable job
// journal live across submissions — and across process restarts when a
// journal is configured.
type Scheduler struct {
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond // queue space, queued work, close/halt — all one broadcast
	tenants map[string]*tenant
	order   []string // sorted tenant names, the WRR visit order
	cursor  int      // WRR position in order

	states      map[JobID]*jobState
	nextID      JobID
	closed      bool
	halted      bool
	inflight    int // submits between their closed-check and queue append
	dispatchSeq int64

	// chunkQueue holds sink-chunk ranges awaiting a node: stolen ranges
	// shed off a grinding victim, plus ranges lost to an expired chunk
	// lease, re-pended ahead of whole jobs. chunkJobs counts unsettled
	// jobs that registered chunk state — workers must not exit while one
	// remains, or its merged settle would never run. workers/running
	// count live fleet workers and those currently executing a dispatch;
	// the difference is the fleet's idle capacity, the shed trigger. It
	// deliberately counts runnable-but-unscheduled workers as idle: on a
	// single-CPU host a busy victim can starve every other goroutine of
	// CPU, and capacity — not momentary parking — is what a steal needs.
	chunkQueue []*chunkWork
	chunkJobs  int
	workers    int
	running    int

	journalUnits atomic.Int64 // control-plane work charged for appends

	// prev remembers, per tenant+job name, the last successfully analyzed
	// version: its content fingerprint and settled report. A resubmission
	// of the same name with a different fingerprint is an app update; when
	// the prior bundle is still in the store, the job runs the engine's
	// incremental delta path against it (core.Options.DeltaFrom).
	prevMu sync.Mutex
	prev   map[string]prevRun

	workerWG sync.WaitGroup
	evMu     sync.Mutex

	// fleet is the multi-node layer (nil when Config.Nodes == 0): node
	// liveness, per-job leases, handoff accounting and the partitioned
	// bundle placement.
	fleet *fleet

	// metrics is the resolved registry (Config.Metrics or a private one).
	metrics *obs.Registry
}

// prevRun is one remembered prior analysis of a job name.
type prevRun struct {
	fp     uint64
	report *core.Report
}

func prevKey(tenant, name string) string { return tenant + "\x00" + name }

type jobState struct {
	id              JobID
	tenant          string
	job             Job
	store           *BundleStore // tenant-resolved bundle store (nil = none)
	fleetStore      bool         // analyze against the fleet's partitioned placement
	done            chan struct{}
	res             *JobResult
	err             error
	canceled        bool        // canceled while queued (under mu)
	cancelReq       bool        // cancel requested while running (under mu)
	cancelFlag      atomic.Bool // polled lock-free by the engine's meter
	cancelJournaled bool        // terminal canceled record already written
	started         bool
	settled         bool // terminal outcome delivered (under mu) — at-most-once guard
	node            int  // fleet node of the current/last attempt (under mu)
	attempt         int  // dispatch count (under mu)
	dispatchSeq     int64
	// chunk is the latest attempt's sink-chunk fan-out state (under mu);
	// nil for jobs that run unsplit. The steal trigger and the chunk
	// requeue path target it; a whole-job re-dispatch replaces it.
	chunk *chunkState
	// traceBase maps a track (sub id) to its charged-units origin (under
	// mu): 0 for a first dispatch, advanced past the handoff charge when
	// a lost range re-runs, so a re-dispatched attempt's spans land
	// after the lost attempt's instead of on top of them. nil until the
	// tracer first writes it; absent subs read 0.
	traceBase map[int]int64
}

// chunkState tracks one chunk-split job: the victim's progress through
// the canonical sink list, the fence its range shrinks to as chunks are
// stolen, the in-flight stolen ranges and the partial reports awaiting
// the merge. One chunkState belongs to one victim dispatch; its fields
// are guarded by its own mutex (lock order: Scheduler.mu, then
// chunkState.mu, then fleet.mu).
type chunkState struct {
	mu         sync.Mutex
	grain      int  // Options.SinkChunk: steal boundaries round up to it
	total      int  // canonical sink count; -1 until the victim's first poll
	started    int  // the victim has begun sinks [0, started)
	fence      int  // the victim analyzes [0, fence); each steal shrinks it
	victimLive bool // the victim attempt is still running (steals need it)
	steals     int  // chunks stolen off this job
	parts      []chunkPart
	active     map[int]core.ChunkRange // sub -> in-flight stolen/re-pended range
	fp         uint64
	key        ReportKey
	haveKey    bool
	remember   bool // seed the delta path with the merged report
	name       string
	// mergeTraced dedups the chunk-merge trace instant: two ranges
	// completing coverage concurrently both run the merge (finish's
	// guard settles one), but the trace must record exactly one merge.
	mergeTraced bool
}

// chunkPart is one finished range's partial report.
type chunkPart struct {
	from, to int
	rep      *core.Report
}

// chunkWork is one dispatchable sink range: a freshly stolen chunk
// (steal=true) or a range re-pended after its holder's lease expired.
// sub keys its lease: 0 is the victim itself, from+1 otherwise —
// nonzero, unique per distinct range of one job.
type chunkWork struct {
	st     *jobState
	cs     *chunkState
	from   int
	to     int
	sub    int
	first  bool // the job's first steal (victim counter)
	steal  bool // live steal: journal KindSteal and charge simtime.StealUnits
	victim int  // the victim's node; it declines its own shed chunks
}

// New builds and starts a scheduler. With a journal configured, new job
// IDs are issued above every ID the journal has seen, so a recovered
// queue and fresh submissions never collide.
func New(cfg Config) *Scheduler {
	if cfg.Nodes > 0 {
		// Fleet mode: one worker goroutine per node — the goroutine is the
		// node's execution substrate, the node is the failure domain.
		cfg.Workers = cfg.Nodes
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	if cfg.LeaseTTLUnits <= 0 {
		cfg.LeaseTTLUnits = simtime.LeaseTTLUnits
	}
	if cfg.HandoffUnits <= 0 {
		cfg.HandoffUnits = simtime.HandoffUnits
	}
	if cfg.RetryBackoffUnits <= 0 {
		cfg.RetryBackoffUnits = simtime.RetryBackoffUnits
	}
	if cfg.StealMinSinks <= 0 {
		cfg.StealMinSinks = simtime.StealMinSinks
	}
	if cfg.StealAfterUnits <= 0 {
		cfg.StealAfterUnits = simtime.StealAfterUnits
	}
	s := &Scheduler{
		cfg:     cfg,
		tenants: make(map[string]*tenant),
		states:  make(map[JobID]*jobState),
		prev:    make(map[string]prevRun),
		metrics: cfg.Metrics,
	}
	if s.metrics == nil {
		s.metrics = obs.NewRegistry()
	}
	s.registerMetrics()
	s.cond = sync.NewCond(&s.mu)
	if cfg.Journal != nil {
		s.nextID = JobID(cfg.Journal.MaxJobID())
		if cfg.Faults != nil {
			cfg.Journal.SetCorrupt(faultinject.JournalCorrupter(cfg.Faults))
		}
	}
	if cfg.Nodes > 0 {
		s.fleet = newFleet(cfg.Nodes, cfg.NodeStoreBudget, cfg.Faults,
			cfg.LeaseTTLUnits, cfg.HandoffUnits, cfg.RetryBackoffUnits)
		s.fleet.requeue = s.requeueJob
		s.fleet.wake = s.cond.Broadcast
		s.fleet.allDead = s.failQueued
	}
	if s.fleet != nil {
		s.workers = cfg.Workers
	}
	for i := 0; i < cfg.Workers; i++ {
		node := 0
		if s.fleet != nil {
			node = i + 1
		}
		s.workerWG.Add(1)
		go func() {
			defer s.workerWG.Done()
			defer s.workerExit(node)
			for {
				if node > 0 && s.fleet.pullKill(node) {
					return
				}
				st, cw := s.nextWork(node)
				if cw != nil {
					s.runChunk(cw, node)
					s.workDone(node)
					continue
				}
				if st == nil {
					return
				}
				s.runJob(st, node)
				s.workDone(node)
			}
		}()
	}
	return s
}

// workerExit retires a fleet worker from the idle-capacity accounting
// and wakes the waiters: a victim node parked leaving a queued steal
// chunk "for someone else" must re-evaluate when that someone dies.
func (s *Scheduler) workerExit(node int) {
	if node == 0 {
		return
	}
	s.mu.Lock()
	s.workers--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// workDone returns a fleet worker's slot to the idle capacity after a
// dispatch completes.
func (s *Scheduler) workDone(node int) {
	if node == 0 {
		return
	}
	s.mu.Lock()
	s.running--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Submit enqueues a job under its tenant, blocking while that tenant's
// queue is full, and returns its ID. IDs are issued in call order, so a
// single-goroutine producer can replay results deterministically by
// waiting on them in order.
func (s *Scheduler) Submit(job Job) (JobID, error) {
	return s.enqueue(job, 0)
}

// Recover re-enqueues the journal's pending jobs — submits without a
// terminal record, in their original submission order and under their
// original IDs. rebuild turns a journal record back into a runnable Job
// (typically from Record.Spec); returning ok=false settles the record as
// failed in the journal so it does not replay forever. Recover is
// idempotent: jobs the scheduler already tracks are skipped, so calling
// it again (the serve protocol's `recover` command) is a no-op after a
// startup replay. It returns the number of jobs re-enqueued.
func (s *Scheduler) Recover(rebuild func(journal.Record) (Job, bool)) int {
	if s.cfg.Journal == nil {
		return 0
	}
	recovered := 0
	for _, rec := range s.cfg.Journal.Pending() {
		id := JobID(rec.Job)
		s.mu.Lock()
		_, tracked := s.states[id]
		s.mu.Unlock()
		if tracked {
			continue
		}
		job, ok := rebuild(rec)
		if !ok {
			s.journalAppend(journal.Record{
				Kind: journal.KindFailed, Job: rec.Job,
				Err: "not recoverable: " + rec.Spec,
			})
			continue
		}
		if job.Tenant == "" {
			job.Tenant = rec.Tenant
		}
		if job.Name == "" {
			job.Name = rec.Name
		}
		if _, err := s.enqueue(job, id); err != nil {
			break // closed mid-recovery; remaining records stay pending
		}
		recovered++
	}
	return recovered
}

// enqueue inserts the job under its tenant. forcedID 0 issues a fresh ID
// and journals a submit record; a nonzero forcedID is a journal replay —
// the submit record already exists, so none is written.
func (s *Scheduler) enqueue(job Job, forcedID JobID) (JobID, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	t := s.tenantLocked(job.Tenant)
	// Per-tenant backpressure: the reservation keeps the bound exact while
	// this submitter is between its space check and its queue append.
	for !s.closed && len(t.queue)+t.reserved >= t.depth {
		s.cond.Wait()
	}
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	t.reserved++
	// The inflight count keeps workers alive across the unlock window
	// below: a Close racing with this submit must not let the last worker
	// exit before the queue append lands, or the job would be stranded
	// (Wait would hang) and its events could outlive the caller's channel.
	s.inflight++
	id := forcedID
	if id == 0 {
		s.nextID++
		id = s.nextID
	} else if id > s.nextID {
		s.nextID = id
	}
	st := &jobState{
		id:     id,
		tenant: t.name,
		job:    job,
		done:   make(chan struct{}),
	}
	if s.fleet != nil && s.fleet.partitioned() && t.cfg.StoreBudget == 0 {
		// Shared-policy tenants analyze against the fleet's consistent-
		// hashed placement; the node view is resolved at dispatch time,
		// since the executing node is not known yet. Private and storeless
		// tenants keep their configured policy.
		st.fleetStore = true
	} else {
		st.store = t.bundleStore(s.cfg.Store)
	}
	s.states[id] = st
	t.submitted++
	s.mu.Unlock()

	if forcedID == 0 {
		s.journalAppend(journal.Record{
			Kind: journal.KindSubmit, Job: int64(id),
			Tenant: t.name, Name: job.Name, Spec: job.Spec,
		})
	}
	if tr := s.cfg.Trace; tr != nil {
		// The job's track opens with a queued instant at its origin; queue
		// wait is the gap to the dispatch instant (zero on the job-local
		// clock unless a handoff re-anchored the track).
		tr.Add(obs.Span{Job: int64(id), Sub: 0, Name: "queued", Cat: "sched",
			Start: 0, Dur: obs.Instant, Node: -1,
			Args: []obs.Arg{{Key: "app", Value: job.Name}, {Key: "tenant", Value: t.name}}})
	}
	// Queued is emitted before the job becomes dispatchable, so per-job
	// event order holds even when a worker grabs it immediately.
	s.emit(Event{Kind: EventQueued, Job: id, Name: job.Name})

	s.mu.Lock()
	t.reserved--
	s.inflight--
	t.queue = append(t.queue, st)
	s.cond.Broadcast()
	s.mu.Unlock()
	if s.fleet != nil && s.fleet.liveCount() == 0 {
		// A submit that lands after the last node died: no worker remains
		// to ever pop it, so settle it as failed instead of letting Wait
		// hang. (The fence itself fails the jobs queued at that moment.)
		s.failQueued()
	}
	return id, nil
}

// Cancel cancels a job. A still-queued job is settled as canceled when a
// worker reaches it (its terminal event is EventCanceled and Wait returns
// ErrCanceled); a running job gets a cooperative stop request that the
// engine's meter observes at its next cancellation checkpoint — within
// simtime.CancelCheckpointUnits of charged work — after which the same
// single terminal EventCanceled is emitted and no further sink events
// stream. Cancel returns false when the job is unknown, already finished
// or already canceled. A running job past its final checkpoint may still
// complete; the cancel request stands but the terminal event reports the
// outcome that actually happened.
func (s *Scheduler) Cancel(id JobID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.states[id]
	if !ok || st.canceled || st.cancelReq {
		return false
	}
	select {
	case <-st.done:
		return false
	default:
	}
	t := s.tenantLocked(st.tenant)
	if !st.started {
		st.canceled = true
		st.cancelJournaled = true
		t.canceledQueued++
		// Journal the settlement now, not when a worker eventually pops
		// the job: the caller was told the cancel took, so a crash (or
		// Halt) before dispatch must not resurrect the job on replay.
		s.mu.Unlock()
		s.journalAppend(journal.Record{Kind: journal.KindCanceled, Job: int64(st.id)})
		s.mu.Lock()
		return true
	}
	st.cancelReq = true
	st.cancelFlag.Store(true)
	t.canceledRunning++
	return true
}

// Wait blocks until the job finishes and returns its result. Canceled
// jobs return ErrCanceled. Wait is a join: the first Wait for an ID
// releases the scheduler's retained state, so a later Wait for the same
// ID returns ErrUnknownJob — without this, a long-running service would
// accumulate every finished job's full report forever. Clients that
// consume results through the event stream instead should reap finished
// jobs with Forget.
func (s *Scheduler) Wait(id JobID) (*JobResult, error) {
	s.mu.Lock()
	st, ok := s.states[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrUnknownJob
	}
	<-st.done
	s.mu.Lock()
	delete(s.states, id)
	s.mu.Unlock()
	return st.res, st.err
}

// Forget drops a finished job's retained state without reading its
// result — the reaping path for event-stream consumers. It returns false
// when the job is unknown or still pending/running.
func (s *Scheduler) Forget(id JobID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.states[id]
	if !ok {
		return false
	}
	select {
	case <-st.done:
		delete(s.states, id)
		return true
	default:
		return false
	}
}

// Close stops accepting submissions, drains every tenant queue, waits for
// running jobs and stops the workers. The events channel (if any)
// receives every pending event before Close returns; Close does not close
// it — the channel belongs to the caller. Submitters blocked on
// backpressure return ErrClosed.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.workerWG.Wait()
}

// Halt is the crash drill: it stops accepting submissions and stops
// dispatching — workers finish only the jobs already running — leaving
// every queued job unprocessed. With a journal configured those jobs
// remain pending on disk, exactly as if the process had been killed
// between jobs, so a restarted scheduler Recovers them. The CI
// crash-recovery leg uses it as a deterministic SIGKILL stand-in: unlike
// a real kill it never tears a job in half, so the interrupted run's
// output is exactly a prefix of the uninterrupted run's.
func (s *Scheduler) Halt() {
	s.mu.Lock()
	s.closed = true
	s.halted = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.workerWG.Wait()
}

// Store returns the scheduler's shared bundle store (nil when disabled).
// Tenants with a private StoreBudget use their own stores instead.
func (s *Scheduler) Store() *BundleStore { return s.cfg.Store }

// Journal returns the configured journal (nil when the queue is not
// durable).
func (s *Scheduler) Journal() *journal.Journal { return s.cfg.Journal }

// Reports returns the settled-result store (nil when the tier is
// disabled).
func (s *Scheduler) Reports() *ReportStore { return s.cfg.Reports }

// Metrics returns the registry every subsystem's counters collect into
// (never nil — the scheduler creates a private one when Config.Metrics
// is unset).
func (s *Scheduler) Metrics() *obs.Registry { return s.metrics }

// Trace returns the configured span trace (nil when tracing is off).
func (s *Scheduler) Trace() *obs.Trace { return s.cfg.Trace }

// traceBaseLocked reads a track's charged-units origin. Caller holds
// s.mu.
func traceBaseLocked(st *jobState, sub int) int64 {
	if st.traceBase == nil {
		return 0
	}
	return st.traceBase[sub]
}

// setTraceBaseLocked advances a track's charged-units origin — called
// when a handoff or steal re-anchors the range's next attempt. Caller
// holds s.mu.
func setTraceBaseLocked(st *jobState, sub int, v int64) {
	if st.traceBase == nil {
		st.traceBase = make(map[int]int64)
	}
	st.traceBase[sub] = v
}

// traceBaseOf is the locking wrapper of traceBaseLocked.
func (s *Scheduler) traceBaseOf(st *jobState, sub int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return traceBaseLocked(st, sub)
}

// journalAppend writes one record (when a journal is configured) and
// charges the flat control-plane append cost, kept separate from per-job
// meters so journal overhead is measurable as a fraction of analysis
// work. Append failures are swallowed: durability is best-effort, the
// in-memory queue stays authoritative for this process's lifetime.
func (s *Scheduler) journalAppend(r journal.Record) {
	if s.cfg.Journal == nil {
		return
	}
	if err := s.cfg.Journal.Append(r); err == nil {
		s.journalUnits.Add(simtime.JournalAppendUnits)
	}
}

func (s *Scheduler) emit(ev Event) {
	if s.cfg.Events == nil {
		return
	}
	s.evMu.Lock()
	s.cfg.Events <- ev
	s.evMu.Unlock()
}

// nextWork blocks until something is dispatchable: a re-pended sink
// chunk (ahead of whole jobs — a lost range must not wait behind the
// backlog), then a queued job under the WRR policy, then — for an
// otherwise idle fleet node — a chunk stolen off a grinding heavy job.
// It returns (nil, nil) when the scheduler is halted, closed with every
// queue drained and every chunk-split job settled, or the pulling fleet
// node is dead — the worker exit conditions.
func (s *Scheduler) nextWork(node int) (*jobState, *chunkWork) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.halted {
			return nil, nil
		}
		if node > 0 && s.fleet.nodeDead(node) {
			return nil, nil
		}
		if cw := s.popChunk(node); cw != nil {
			if node > 0 {
				s.running++
			}
			return nil, cw
		}
		if st := s.popWRR(); st != nil {
			// A queue slot freed: wake submitters blocked on backpressure.
			s.cond.Broadcast()
			if node > 0 {
				s.running++
			}
			return st, nil
		}
		if node > 0 {
			if cw := s.trySteal(node); cw != nil {
				s.running++
				return nil, cw
			}
		}
		// Exit only once no submit is mid-append (one that already passed
		// its closed-check is about to enqueue a job this worker must run)
		// and no chunk-split job is unsettled (its merged settle may still
		// need this worker to run a re-pended or stolen range).
		if s.closed && s.inflight == 0 && (s.fleet == nil || s.chunkJobs == 0) {
			return nil, nil
		}
		if len(s.chunkQueue) > 0 {
			// Only declined chunks remain (a victim node refusing its own
			// stolen ranges): hand them to a parked worker before sleeping.
			s.cond.Broadcast()
		}
		s.cond.Wait()
	}
}

// popChunk pops the oldest pending chunk range, dropping ranges of jobs
// that settled while they waited. A stolen range is declined by its own
// victim's node while another worker could take it — otherwise, on a
// host where the victim's worker is the only goroutine getting CPU, it
// would drain its own shed chunks and the charged makespan would never
// improve. Caller holds s.mu.
func (s *Scheduler) popChunk(node int) *chunkWork {
	for i := 0; i < len(s.chunkQueue); i++ {
		cw := s.chunkQueue[i]
		if cw.st.settled {
			s.chunkQueue = append(s.chunkQueue[:i], s.chunkQueue[i+1:]...)
			i--
			continue
		}
		if cw.steal && node > 0 && cw.victim == node && s.workers-s.running > 1 {
			continue
		}
		s.chunkQueue = append(s.chunkQueue[:i], s.chunkQueue[i+1:]...)
		return cw
	}
	return nil
}

// trySteal scans the running chunk-split jobs for a stealable tail: a
// live victim with at least StealMinSinks unstarted sinks that has
// ground past StealAfterUnits of charged lease time. It fences the back
// half of the victim's remaining range (rounded up to the chunk grain,
// so steal boundaries land on stable chunk edges) and returns it as
// work for the idle node. Jobs are visited in ID order, so the oldest
// heavy job is relieved first. Caller holds s.mu.
func (s *Scheduler) trySteal(node int) *chunkWork {
	if s.fleet == nil {
		return nil
	}
	ids := make([]JobID, 0, len(s.states))
	for id := range s.states {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		st := s.states[id]
		if st.settled || st.chunk == nil {
			continue
		}
		if cw := s.stealWindow(st, st.chunk); cw != nil {
			return cw
		}
	}
	return nil
}

// stealWindow fences the back half of one job's remaining sink range
// (rounded up to the chunk grain, so steal boundaries land on stable
// chunk edges) and returns it as stealable work, or nil when the job
// has no stealable tail: victim gone, tail under StealMinSinks, or the
// victim not yet past StealAfterUnits of charged lease time. Caller
// holds s.mu.
func (s *Scheduler) stealWindow(st *jobState, cs *chunkState) *chunkWork {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.total < 0 || !cs.victimLive {
		return nil
	}
	remaining := cs.fence - cs.started
	if remaining < s.cfg.StealMinSinks ||
		s.fleet.leaseUnits(st.id, 0) < s.cfg.StealAfterUnits {
		return nil
	}
	// Take the back half of the remaining range, rounded up to the
	// grain; the victim keeps the front it is already warm on.
	from := cs.started + (remaining+1)/2
	if g := cs.grain; g > 1 {
		if rem := from % g; rem != 0 {
			from += g - rem
		}
	}
	if from <= cs.started || from >= cs.fence {
		return nil
	}
	to := cs.fence
	cs.fence = from
	cs.steals++
	first := cs.steals == 1
	sub := from + 1
	cs.active[sub] = core.ChunkRange{From: from, To: to}
	if tr := s.cfg.Trace; tr != nil {
		// The shed lands on the victim's track at the units its lease has
		// metered so far (checkpoint-granular, so deterministic for a
		// victim grinding past a fixed warmup). Args carry the fenced sink
		// range; the claiming node appears in the chunk's own steal-claim
		// span.
		tr.Add(obs.Span{Job: int64(st.id), Sub: 0, Name: "steal-shed",
			Cat: "sched", Start: traceBaseLocked(st, 0) + s.fleet.leaseUnits(st.id, 0),
			Dur: obs.Instant, Node: -1, Args: []obs.Arg{
				{Key: "from", Value: fmt.Sprint(from)},
				{Key: "to", Value: fmt.Sprint(to)}}})
	}
	return &chunkWork{st: st, cs: cs, from: from, to: to, sub: sub,
		first: first, steal: true, victim: st.node}
}

// shedChunk is the push half of the steal protocol, driven from the
// victim's own progress poll: when idle nodes are waiting and no queued
// chunk is already destined for them, fence a chunk off this job's tail
// into the chunk queue. The pull half (trySteal) needs an idle worker
// to win the CPU while the victim grinds — on a single-core host the
// victim never yields mid-run, so the shed path makes the steal trigger
// independent of goroutine scheduling: the fenced range persists in the
// queue and the idle worker picks it up whenever it next runs.
func (s *Scheduler) shedChunk(st *jobState, cs *chunkState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	avail := s.workers - s.running
	if avail <= 0 || len(s.chunkQueue) >= avail || st.settled || st.chunk != cs {
		return
	}
	if cw := s.stealWindow(st, cs); cw != nil {
		s.chunkQueue = append(s.chunkQueue, cw)
	}
}

// chunkPoll is the victim's SinkProgress hook: called before each sink
// at its canonical position. It publishes the victim's progress (the
// steal trigger's "unstarted tail" input), learns the total on the
// first poll, and stops the victim cleanly at the fence once a steal
// shrank its range. Each poll sheds a chunk to any idle node and wakes
// the waiters, so the steal trigger is re-evaluated exactly as often
// as progress is made.
func (s *Scheduler) chunkPoll(st *jobState, cs *chunkState, next, total int) bool {
	cs.mu.Lock()
	if cs.total < 0 {
		cs.total = total
		cs.fence = total
	}
	stop := next >= cs.fence
	if !stop {
		cs.started = next + 1
	}
	cs.mu.Unlock()
	if !stop {
		s.shedChunk(st, cs)
		s.cond.Broadcast()
	}
	return stop
}

// runChunk executes one stolen or re-pended sink range on a node: its
// own lease (keyed by the range's sub id), its own heartbeat stream,
// its own abandon path — a chunk is a first-class dispatch, just
// smaller than a job. A completed range feeds the merge; the range
// whose part completes coverage settles the job.
func (s *Scheduler) runChunk(cw *chunkWork, node int) {
	st, cs := cw.st, cw.cs
	s.mu.Lock()
	if st.settled {
		s.mu.Unlock()
		return
	}
	attempt := st.attempt
	if !cw.steal {
		// A re-pended range is a retry: bump the attempt so its lease is
		// distinguishable from the lost one and the backoff escalates.
		st.attempt++
		attempt = st.attempt
	}
	st.node = node
	var base int64
	if s.cfg.Trace != nil {
		if cw.steal {
			// A stolen chunk's track opens with the flat steal charge; the
			// engine's work starts after it.
			base = simtime.StealUnits
			setTraceBaseLocked(st, cw.sub, base)
		} else {
			// A re-pended range resumes on the origin the handoff advanced
			// the track to.
			base = traceBaseLocked(st, cw.sub)
		}
	}
	s.mu.Unlock()

	s.fleet.grant(st.id, cw.sub, cs.name, node, attempt)
	if cw.steal {
		// The steal record carries the thief node and the chunk's start
		// position (in Attempt — a chunk steal has no dispatch attempt of
		// its own).
		s.journalAppend(journal.Record{
			Kind: journal.KindSteal, Job: int64(st.id),
			Node: int64(node), Attempt: int64(cw.from),
		})
		s.fleet.chargeSteal(cw.to-cw.from, cw.first)
		if tr := s.cfg.Trace; tr != nil {
			tr.Add(obs.Span{Job: int64(st.id), Sub: cw.sub, Name: "steal-claim",
				Cat: "sched", Start: 0, Dur: simtime.StealUnits, Node: node,
				Args: []obs.Arg{
					{Key: "from", Value: fmt.Sprint(cw.from)},
					{Key: "to", Value: fmt.Sprint(cw.to)}}})
		}
	} else {
		s.journalAppend(journal.Record{
			Kind: journal.KindLease, Job: int64(st.id),
			Node: int64(node), Attempt: int64(attempt),
		})
	}
	rep, err := s.analyzeChunk(st, cs, cw, node, attempt, base)
	if s.fleet.nodeDead(node) && errors.Is(err, simtime.ErrCanceled) && !st.cancelFlag.Load() {
		// The node died under this chunk: no terminal — the sweep re-pends
		// the range on a surviving node.
		s.fleet.abandon(st.id, cw.sub, node, attempt)
		return
	}
	s.fleet.release(st.id, cw.sub, node, attempt)
	if err != nil {
		s.finish(st, nil, err)
		return
	}
	s.completeChunk(st, cs, cw.from, cw.to, cw.sub, rep)
}

// analyzeChunk runs the engine over one sink range of a job: the same
// app source, options, bundle store routing and observer wiring as the
// victim's full run, restricted by ChunkRange — the bundle is fetched
// warm (remotely charged when another node owns it), never re-built.
// base is the chunk track's charged-units origin; engine spans and
// checkpoint samples are re-anchored onto it.
func (s *Scheduler) analyzeChunk(st *jobState, cs *chunkState, cw *chunkWork, node, attempt int, base int64) (*core.Report, error) {
	job := st.job
	app, err := job.Source()
	if err != nil {
		return nil, err
	}
	o := s.jobOptions(job)
	flag := &st.cancelFlag
	user := o.Cancel
	o.Cancel = func() bool {
		return flag.Load() || (user != nil && user())
	}
	fl, id, name, sub := s.fleet, st.id, cs.name, cw.sub
	o.Heartbeat = func(delta int64) bool {
		return fl.tick(node, id, sub, name, attempt, delta)
	}
	o.ChunkRange = &core.ChunkRange{From: cw.from, To: cw.to}
	o.DeltaFrom = nil
	o.SinkProgress = nil
	if tr := s.cfg.Trace; tr != nil {
		o.PhaseSpan = func(phase string, sink int, start, end int64) {
			sp := obs.Span{Job: int64(id), Sub: sub, Name: phase, Cat: "engine",
				Start: base + start, Dur: end - start, Node: node}
			if sink >= 0 {
				sp.Args = []obs.Arg{{Key: "sink", Value: fmt.Sprint(sink)}}
			}
			tr.Add(sp)
		}
		o.MeterCheckpoint = func(units, delta int64) {
			tr.AddCounter(obs.CounterSample{Job: int64(id), Sub: sub, Node: node,
				TS: base + units, Value: base + units})
		}
	}
	var store jobStore
	if st.fleetStore {
		if v := s.fleet.view(node); v != nil {
			store = v
		}
	} else if st.store != nil {
		store = st.store
	}
	release := func() {}
	if store != nil {
		o.Bundles = store
		if !store.Contains(cs.fp) {
			release = store.LockFingerprint(cs.fp)
		}
	}
	if s.cfg.Events != nil {
		pos := cw.from
		traced := s.cfg.Trace != nil
		o.SinkObserver = func(sr *core.SinkReport) {
			ev := Event{Kind: EventSink, Job: id, Name: name, Sink: sr}
			if traced {
				// The engine reports the range's sinks in canonical order, so
				// the running position is the backslice span's sink arg.
				ev.Span = fmt.Sprintf("%d/%d/%d", id, sub, pos)
			}
			pos++
			s.emit(ev)
		}
	}
	e, err := core.New(app, o)
	if err != nil {
		release()
		if errors.Is(err, simtime.ErrCanceled) {
			return nil, err
		}
		return nil, fmt.Errorf("service: backdroid chunk [%d,%d) on %s: %w", cw.from, cw.to, name, err)
	}
	rep, err := e.Analyze()
	release()
	if err != nil {
		if errors.Is(err, simtime.ErrCanceled) {
			return nil, err
		}
		return nil, fmt.Errorf("service: backdroid chunk [%d,%d) on %s: %w", cw.from, cw.to, name, err)
	}
	return rep, nil
}

// completeChunk records one finished range's partial report and, once
// the parts cover [0, total), merges them canonically and settles the
// job — remembering the merged report as the next delta base and
// storing it under the same settled key a single-pass run would use
// (MergeReports is pinned bitwise-identical to that run). Two ranges
// completing coverage concurrently both merge; finish's at-most-once
// guard settles exactly one, and the duplicate content-addressed store
// put is a harmless refresh.
func (s *Scheduler) completeChunk(st *jobState, cs *chunkState, from, to, sub int, rep *core.Report) {
	s.mu.Lock()
	settled := st.settled
	s.mu.Unlock()
	if settled {
		return
	}
	cs.mu.Lock()
	if sub == 0 {
		cs.victimLive = false
	} else {
		delete(cs.active, sub)
	}
	cs.parts = append(cs.parts, chunkPart{from: from, to: to, rep: rep})
	total := cs.total
	parts := append([]chunkPart(nil), cs.parts...)
	cs.mu.Unlock()

	sort.Slice(parts, func(i, j int) bool { return parts[i].from < parts[j].from })
	cover := 0
	for _, p := range parts {
		if p.from > cover {
			break
		}
		if p.to > cover {
			cover = p.to
		}
	}
	if total < 0 || cover < total {
		return
	}
	reports := make([]*core.Report, len(parts))
	for i, p := range parts {
		reports[i] = p.rep
	}
	merged := core.MergeReports(reports...)
	if tr := s.cfg.Trace; tr != nil {
		cs.mu.Lock()
		emit := !cs.mergeTraced
		cs.mergeTraced = true
		cs.mu.Unlock()
		if emit {
			// Anchored at the merged report's total charged work — the sum
			// of every part's units, a pure function of the partition, not
			// of which range happened to complete coverage.
			tr.Add(obs.Span{Job: int64(st.id), Sub: 0, Name: "chunk-merge",
				Cat: "sched", Start: s.traceBaseOf(st, 0) + merged.Stats.WorkUnits,
				Dur: obs.Instant, Node: -1,
				Args: []obs.Arg{{Key: "total", Value: fmt.Sprint(total)}}})
		}
	}
	if cs.remember && !merged.TimedOut {
		s.rememberRun(st.tenant, cs.name, cs.fp, merged)
	}
	if s.cfg.Reports != nil && cs.haveKey {
		s.cfg.Reports.Put(cs.key, merged)
	}
	s.finish(st, &JobResult{ID: st.id, Name: cs.name, BackDroid: merged}, nil)
}

func (s *Scheduler) runJob(st *jobState, node int) {
	s.mu.Lock()
	if st.canceled {
		s.mu.Unlock()
		s.finish(st, nil, ErrCanceled)
		return
	}
	st.started = true
	st.attempt++
	st.node = node
	attempt := st.attempt
	seq := st.dispatchSeq
	base := traceBaseLocked(st, 0)
	s.mu.Unlock()

	if s.fleet != nil {
		s.fleet.grant(st.id, 0, st.job.Name, node, attempt)
		s.journalAppend(journal.Record{
			Kind: journal.KindLease, Job: int64(st.id),
			Node: int64(node), Attempt: int64(attempt),
		})
	}
	if tr := s.cfg.Trace; tr != nil {
		tr.Add(obs.Span{Job: int64(st.id), Sub: 0, Name: "dispatch", Cat: "sched",
			Start: base, Dur: obs.Instant, Node: node,
			Args: []obs.Arg{{Key: "attempt", Value: fmt.Sprint(attempt)}}})
	}
	if attempt == 1 {
		s.journalAppend(journal.Record{Kind: journal.KindStart, Job: int64(st.id)})
	}
	s.emit(Event{Kind: EventStarted, Job: st.id, Name: st.job.Name, Node: node, Attempt: attempt, Seq: seq})
	res, cs, err := s.analyze(st, node, attempt)
	fenced := false
	if cs != nil {
		// This victim attempt is over: no further steals off it. fenced
		// records whether a steal shrank its range — once the victim
		// returned, started == fence, so no new steal can land and the
		// flag is final.
		cs.mu.Lock()
		cs.victimLive = false
		fenced = cs.steals > 0
		cs.mu.Unlock()
	}
	if s.fleet != nil {
		if s.fleet.nodeDead(node) && errors.Is(err, simtime.ErrCanceled) && !st.cancelFlag.Load() {
			// The node died under this attempt (the engine aborted at the
			// checkpoint that observed the fencing, not by user cancel): no
			// terminal — abandon charges the detection latency, expires the
			// lease and hands the job to a surviving node.
			s.fleet.abandon(st.id, 0, node, attempt)
			return
		}
		s.fleet.release(st.id, 0, node, attempt)
	}
	if fenced && err == nil && res != nil && res.BackDroid != nil {
		// Chunks were stolen: the engine stopped at the fence and the
		// report is the partial [0, fence) — feed it to the merge instead
		// of settling; the range completing coverage settles the job.
		s.completeChunk(st, cs, 0, len(res.BackDroid.Sinks), 0, res.BackDroid)
		return
	}
	s.finish(st, res, err)
}

// finish settles a job: journal terminal record first (so a crash after
// the record never replays a delivered job), then the Done callback, then
// the join release, then the single terminal event. The join closes
// before the event so a consumer that reacts to the event with Forget —
// cmd/backdroidd's reaping path — always finds the job joinable; emitting
// first would make that Forget a silent no-op and leak the report.
//
// The settled guard makes termination at-most-once under fleet handoffs:
// when a fenced-but-still-working node (the gray-failure double run) and
// the re-dispatched attempt both reach finish, the first settles the job
// and the second returns without journaling, emitting or closing again.
func (s *Scheduler) finish(st *jobState, res *JobResult, err error) {
	s.mu.Lock()
	if st.settled {
		s.mu.Unlock()
		return
	}
	st.settled = true
	if st.chunk != nil {
		s.chunkJobs--
		st.chunk = nil
	}
	s.mu.Unlock()
	// Wake workers idling on the chunk-split exit condition (and any
	// stealer scanning for work that just disappeared).
	s.cond.Broadcast()
	kind := journal.KindDone
	ev := Event{Kind: EventDone, Job: st.id, Name: st.job.Name, Result: res}
	switch {
	case errors.Is(err, ErrCanceled) || errors.Is(err, simtime.ErrCanceled):
		err = ErrCanceled
		res = nil
		kind = journal.KindCanceled
		ev = Event{Kind: EventCanceled, Job: st.id, Name: st.job.Name}
	case err != nil:
		kind = journal.KindFailed
		ev = Event{Kind: EventFailed, Job: st.id, Name: st.job.Name, Err: err}
	}
	st.res, st.err = res, err
	if kind != journal.KindCanceled || !st.cancelJournaled {
		rec := journal.Record{Kind: kind, Job: int64(st.id)}
		if kind == journal.KindFailed {
			rec.Err = err.Error()
		}
		s.journalAppend(rec)
	}
	if st.job.Done != nil {
		st.job.Done(res, err)
	}
	close(st.done)
	s.emit(ev)
}

// requeueJob returns a lease-expired range to work. A lost sink chunk
// (sub > 0), or a lost victim whose job already had chunks stolen, is
// re-pended on the chunk queue — only the lost range re-runs; the parts
// other nodes finished stand. An unsplit job returns to the FRONT of
// its tenant's queue (the handoff must not wait behind the tenant's
// backlog — the job already waited its turn once). Either way the
// handoff record is journaled and the re-dispatch overhead charged with
// exponential backoff. A job with no surviving node, or one past the
// fleet's attempt bound, fails terminally instead. units is the work
// the expired lease had metered — where on the lost track the tracer
// anchors the handoff span. Called by the fleet sweep, never under
// s.mu.
func (s *Scheduler) requeueJob(id JobID, sub, from, attempt int, units int64) {
	s.mu.Lock()
	st, ok := s.states[id]
	if !ok || st.settled {
		s.mu.Unlock()
		return
	}
	live := s.fleet.liveCount()
	if live == 0 || attempt >= s.fleet.maxAttempts() {
		s.mu.Unlock()
		s.finish(st, nil, fmt.Errorf(
			"service: job %q lost with node %d (attempt %d, %d nodes live): retry budget exhausted",
			st.job.Name, from, attempt, live))
		return
	}
	if cs := st.chunk; cs != nil {
		var rng *core.ChunkRange
		cs.mu.Lock()
		if sub == 0 {
			if cs.steals > 0 {
				// The victim died after chunks were stolen: its remaining
				// range is [0, fence) — re-pend just that, as a plain chunk.
				cs.victimLive = false
				r := core.ChunkRange{From: 0, To: cs.fence}
				rng = &r
				cs.active[r.From+1] = r
			}
		} else if r, ok := cs.active[sub]; ok {
			rng = &r
		}
		cs.mu.Unlock()
		if rng != nil {
			if tr := s.cfg.Trace; tr != nil {
				// The handoff interval covers the detection latency (TTL) plus
				// the charged re-dispatch cost, starting where the lost lease's
				// metering stopped; the re-pended range's track resumes after
				// it.
				start := traceBaseLocked(st, sub) + units
				dur := s.fleet.ttl + s.fleet.handoffUnits(attempt)
				tr.Add(obs.Span{Job: int64(id), Sub: sub, Name: "handoff",
					Cat: "sched", Start: start, Dur: dur, Node: -1,
					Args: []obs.Arg{{Key: "attempt", Value: fmt.Sprint(attempt)}}})
				setTraceBaseLocked(st, rng.From+1, start+dur)
			}
			s.chunkQueue = append(s.chunkQueue, &chunkWork{
				st: st, cs: cs, from: rng.From, to: rng.To, sub: rng.From + 1,
			})
			s.cond.Broadcast()
			s.mu.Unlock()
			s.journalAppend(journal.Record{
				Kind: journal.KindHandoff, Job: int64(id),
				Node: int64(from), Attempt: int64(attempt),
			})
			s.fleet.chargeHandoff(attempt)
			return
		}
		if sub > 0 {
			// The chunk's range already completed or re-pended elsewhere:
			// nothing left to recover from this lease.
			s.mu.Unlock()
			return
		}
	}
	if tr := s.cfg.Trace; tr != nil {
		start := traceBaseLocked(st, 0) + units
		dur := s.fleet.ttl + s.fleet.handoffUnits(attempt)
		tr.Add(obs.Span{Job: int64(id), Sub: 0, Name: "handoff", Cat: "sched",
			Start: start, Dur: dur, Node: -1,
			Args: []obs.Arg{{Key: "attempt", Value: fmt.Sprint(attempt)}}})
		setTraceBaseLocked(st, 0, start+dur)
	}
	t := s.tenantLocked(st.tenant)
	t.queue = append([]*jobState{st}, t.queue...)
	t.requeued++
	s.cond.Broadcast()
	s.mu.Unlock()

	s.journalAppend(journal.Record{
		Kind: journal.KindHandoff, Job: int64(id),
		Node: int64(from), Attempt: int64(attempt),
	})
	s.fleet.chargeHandoff(attempt)
}

// failQueued fails every still-queued job — the fleet's last-node-died
// path, where no worker remains to ever pop them.
func (s *Scheduler) failQueued() {
	s.mu.Lock()
	var victims []*jobState
	for _, name := range s.order {
		t := s.tenants[name]
		victims = append(victims, t.queue...)
		t.queue = nil
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, st := range victims {
		s.finish(st, nil, errors.New("service: every fleet node is dead"))
	}
}

// KillNode fences a fleet node — the `die node=N` crash drill: the node
// pulls no more work, its running attempt aborts at its next meter
// checkpoint and is handed off to a surviving node after the lease TTL.
// It errors without a fleet, for an out-of-range node, or for a node
// already dead.
func (s *Scheduler) KillNode(node int) error {
	if s.fleet == nil {
		return errors.New("service: no fleet configured (start with Nodes > 0)")
	}
	return s.fleet.kill(node)
}

// FleetStats snapshots the fleet counters (nil without a fleet).
func (s *Scheduler) FleetStats() *FleetStats {
	if s.fleet == nil {
		return nil
	}
	return s.fleet.stats()
}

// jobStore is the bundle-store surface a job analyzes against: either a
// plain *BundleStore or a fleet placement view routing each fingerprint
// to its owner node's partition. Its method set covers core.BundleCache
// (plus the optional DropBundle seam), so either implementation plugs
// into the engine unchanged.
type jobStore interface {
	GetBundle(fp uint64) ([]byte, bool)
	PutBundle(fp uint64, data []byte)
	DropBundle(fp uint64)
	Contains(fp uint64) bool
	LockFingerprint(fp uint64) func()
}

// analyze materializes the job's app and runs the selected analyzers.
// Every job builds its own engines — no analysis state crosses jobs; the
// only shared objects are the content-addressed bundle stores, which are
// concurrency-safe and append-only. node/attempt identify the fleet
// dispatch (0/1 without a fleet); they are passed as values because a
// handed-off job's jobState fields may be rewritten by the re-dispatch
// while the abandoned attempt is still in here. The returned chunkState
// is non-nil when this attempt registered as steal-eligible — the
// caller routes its (possibly fenced, partial) report to the merge; it
// is returned rather than re-read from st.chunk because a gray-failure
// re-dispatch may have replaced st.chunk while this attempt ran.
func (s *Scheduler) analyze(st *jobState, node, attempt int) (*JobResult, *chunkState, error) {
	var cs *chunkState
	job := st.job
	app, err := job.Source()
	if err != nil {
		return nil, nil, err
	}
	res := &JobResult{ID: st.id, Name: job.Name}
	if res.Name == "" {
		res.Name = app.Name
	}

	if job.RunBackDroid {
		o := s.jobOptions(job)
		// Cooperative cancellation: the engine's meter polls this flag at
		// every checkpoint; Scheduler.Cancel flips it. A job-supplied
		// Cancel still applies — either source stops the run. In fleet
		// mode the same checkpoint is the node's heartbeat: the tick
		// advances the node odometer and fleet clock by the charged
		// delta, meters the lease, consults the fault plan and reports
		// the node's own death, which aborts the run like a cancel.
		flag := &st.cancelFlag
		user := o.Cancel
		o.Cancel = func() bool {
			return flag.Load() || (user != nil && user())
		}
		if s.fleet != nil {
			fl, id, name := s.fleet, st.id, job.Name
			o.Heartbeat = func(delta int64) bool {
				return fl.tick(node, id, 0, name, attempt, delta)
			}
		}
		if tr := s.cfg.Trace; tr != nil {
			// Engine phases land on the job's main track (sub 0), anchored
			// at the charged units the engine itself reports — plus the
			// track origin a prior handoff may have advanced. The counter
			// sample doubles as the lease-renew/heartbeat event: in fleet
			// mode the meter checkpoint IS the heartbeat, so one sample per
			// renewal is exactly the renewal timeline.
			id, base := st.id, s.traceBaseOf(st, 0)
			o.PhaseSpan = func(phase string, sink int, start, end int64) {
				sp := obs.Span{Job: int64(id), Sub: 0, Name: phase, Cat: "engine",
					Start: base + start, Dur: end - start, Node: node}
				if sink >= 0 {
					sp.Args = []obs.Arg{{Key: "sink", Value: fmt.Sprint(sink)}}
				}
				tr.Add(sp)
			}
			o.MeterCheckpoint = func(units, delta int64) {
				tr.AddCounter(obs.CounterSample{Job: int64(id), Sub: 0, Node: node,
					TS: base + units, Value: base + units})
			}
		}
		var store jobStore
		if st.fleetStore {
			if v := s.fleet.view(node); v != nil {
				store = v
			}
		} else if st.store != nil {
			store = st.store
		}
		var fp uint64
		if store != nil || s.cfg.Reports != nil {
			fp = dexdump.AppFingerprint(app.Dexes)
		}
		// Settled-result fast path. The key is taken before the delta
		// base, bundle cache or observer wiring is injected — all
		// fingerprint-neutral — so a delta run, a warm run and a cold run
		// of one (app, options) pair share one address, and a hit skips
		// the engine entirely.
		var settledKey ReportKey
		if s.cfg.Reports != nil {
			settledKey = ReportKey{App: fp, Options: OptionsFingerprint(&o)}
			if stored, ok := s.cfg.Reports.Get(settledKey); ok {
				rep, err := s.serveSettled(st, res.Name, stored, o.TimeoutMinutes)
				if err != nil {
					return nil, nil, err
				}
				res.BackDroid = rep
				if store != nil && !stored.TimedOut {
					// Seed the delta path only when nothing better is
					// known: an engine-produced prev carries the sink
					// footprints the settled copy may lack
					// (journal-recovered entries never have them), and
					// clobbering it would degrade the next update's
					// reuse.
					if _, known := s.lastRun(st.tenant, res.Name); !known {
						s.rememberRun(st.tenant, res.Name, fp, stored)
					}
				}
			}
		}
		if res.BackDroid == nil {
			release := func() {}
			if store != nil {
				o.Bundles = store
				if prev, ok := s.lastRun(st.tenant, res.Name); ok && prev.fp != fp && !o.PerAppSSG {
					// Same job name, different content: an app update. When
					// the prior version's bundle is still cached, hand it to
					// the engine as the delta base; the engine itself falls
					// back to a full run if the base proves unusable.
					if data, ok := store.GetBundle(prev.fp); ok {
						o.DeltaFrom = &core.DeltaBase{Fingerprint: prev.fp, Bundle: data, Report: prev.report}
					}
				}
				if !store.Contains(fp) {
					// Single-build guarantee: concurrent jobs for one
					// fingerprint serialize here, so the first performs the
					// only cold build and the rest run fully warm. The
					// re-probe happens inside the engine; the lock is held
					// only across the engine run (the bundle is published
					// during it), never across the baseline legs below.
					release = store.LockFingerprint(fp)
				}
			}
			if s.cfg.Events != nil {
				id, name := st.id, res.Name
				pos := 0
				traced := s.cfg.Trace != nil
				o.SinkObserver = func(sr *core.SinkReport) {
					ev := Event{Kind: EventSink, Job: id, Name: name, Sink: sr}
					if traced {
						// Sinks stream in canonical order, so the running
						// position names the backslice span that produced
						// this report.
						ev.Span = fmt.Sprintf("%d/%d/%d", id, 0, pos)
					}
					pos++
					s.emit(ev)
				}
			}
			if s.fleet != nil && o.SinkChunk > 0 && o.TimeoutMinutes == 0 &&
				o.DeltaFrom == nil && !job.RunWholeApp && !job.RunCallGraph {
				// Steal-eligible: register the chunk fan-out state and let
				// the engine report per-sink progress. Delta runs and timed
				// runs stay unsplit (a chunk must not depend on a delta base
				// the other chunks lack, and the simulated timeout is a
				// whole-run budget); multi-analyzer jobs settle a composite
				// result the merge path does not carry.
				cs = &chunkState{
					grain:      o.SinkChunk,
					total:      -1,
					victimLive: true,
					active:     make(map[int]core.ChunkRange),
					fp:         fp,
					key:        settledKey,
					haveKey:    s.cfg.Reports != nil,
					remember:   store != nil,
					name:       res.Name,
				}
				s.mu.Lock()
				if st.chunk == nil {
					s.chunkJobs++
				}
				st.chunk = cs
				s.mu.Unlock()
				stRef, csRef := st, cs
				o.SinkProgress = func(next, total int) bool {
					return s.chunkPoll(stRef, csRef, next, total)
				}
			}
			e, err := core.New(app, o)
			if err != nil {
				release()
				if errors.Is(err, simtime.ErrCanceled) {
					return nil, cs, err
				}
				return nil, cs, fmt.Errorf("service: backdroid on %s: %w", res.Name, err)
			}
			res.BackDroid, err = e.Analyze()
			release()
			if err != nil {
				if errors.Is(err, simtime.ErrCanceled) {
					return nil, cs, err
				}
				return nil, cs, fmt.Errorf("service: backdroid on %s: %w", res.Name, err)
			}
			fenced := false
			if cs != nil {
				cs.mu.Lock()
				fenced = cs.steals > 0
				cs.mu.Unlock()
			}
			if !fenced {
				// A fenced run's report is the partial [0, fence): only the
				// merged union may seed the delta path or settle the store.
				if store != nil && !res.BackDroid.TimedOut {
					s.rememberRun(st.tenant, res.Name, fp, res.BackDroid)
				}
				if s.cfg.Reports != nil {
					// Settle the report under its content address. Timed-out
					// reports settle too: the timeout is simulated-time
					// deterministic and TimeoutMinutes is hashed, so a
					// resubmission would reproduce the same truncated report.
					s.cfg.Reports.Put(settledKey, res.BackDroid)
				}
			}
		}
	}
	if job.RunWholeApp {
		res.WholeApp, err = runWholeApp(app, wholeapp.FullAnalysis)
		if err != nil {
			return nil, cs, fmt.Errorf("service: wholeapp on %s: %w", res.Name, err)
		}
	}
	if job.RunCallGraph {
		res.CallGraph, err = runWholeApp(app, wholeapp.CallGraphOnly)
		if err != nil {
			return nil, cs, fmt.Errorf("service: callgraph on %s: %w", res.Name, err)
		}
	}
	return res, cs, nil
}

// serveSettled answers a job from the settled-result tier: one flat
// O(1) lookup charge, a replayed EventSink per stored sink and a shallow
// copy of the stored report whose Stats describe this serving (one
// settled lookup) rather than the original run. The copy shares the
// stored report's sink pointers, so streamed events and the batch result
// reference the same objects — exactly the engine's own contract.
func (s *Scheduler) serveSettled(st *jobState, name string, stored *core.Report, timeoutMinutes float64) (*core.Report, error) {
	if st.cancelFlag.Load() {
		return nil, simtime.ErrCanceled
	}
	m := simtime.NewMeterWithTimeout(timeoutMinutes)
	if err := m.ChargeSettledLookup(); err != nil {
		return nil, err
	}
	if tr := s.cfg.Trace; tr != nil {
		// A settled hit is the job's entire timeline: one flat lookup,
		// no engine phases. Replayed sink events carry no span id — no
		// backslice span produced them.
		tr.Add(obs.Span{Job: int64(st.id), Sub: 0, Name: "settled-hit",
			Cat: "sched", Start: 0, Dur: simtime.SettledLookupUnits, Node: -1})
	}
	replay := *stored
	replay.Stats = core.Stats{
		WorkUnits:      m.Units(),
		SimMinutes:     m.Minutes(),
		SettledLookups: 1,
	}
	if s.cfg.Events != nil {
		for _, sr := range replay.Sinks {
			s.emit(Event{Kind: EventSink, Job: st.id, Name: name, Sink: sr})
		}
	}
	return &replay, nil
}

// lastRun returns the remembered prior analysis of a tenant's job name.
func (s *Scheduler) lastRun(tenant, name string) (prevRun, bool) {
	s.prevMu.Lock()
	defer s.prevMu.Unlock()
	p, ok := s.prev[prevKey(tenant, name)]
	return p, ok
}

// rememberRun records a settled analysis as the delta base for the next
// submission of the same name. Timed-out reports are not remembered —
// their sink list is incomplete, so they cannot seed a reuse decision.
func (s *Scheduler) rememberRun(tenant, name string, fp uint64, report *core.Report) {
	s.prevMu.Lock()
	defer s.prevMu.Unlock()
	s.prev[prevKey(tenant, name)] = prevRun{fp: fp, report: report}
}

// jobOptions resolves the engine options of a job: its own, else the
// scheduler default, else core.DefaultOptions — always a copy, never a
// shared pointer — with the cache-directory override applied.
func (s *Scheduler) jobOptions(job Job) core.Options {
	o := core.DefaultOptions()
	if job.Options != nil {
		o = *job.Options
	} else if s.cfg.Options != nil {
		o = *s.cfg.Options
	}
	if job.IndexCacheDir != "" {
		o.IndexCacheDir = job.IndexCacheDir
	} else if s.cfg.IndexCacheDir != "" && o.IndexCacheDir == "" {
		o.IndexCacheDir = s.cfg.IndexCacheDir
	}
	return o
}

func runWholeApp(app *apk.App, mode wholeapp.Mode) (*wholeapp.Report, error) {
	o := wholeapp.DefaultOptions()
	o.Mode = mode
	a, err := wholeapp.New(app, o)
	if err != nil {
		return nil, err
	}
	return a.Analyze()
}
