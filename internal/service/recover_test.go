package service

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"

	"backdroid/internal/apk"
	"backdroid/internal/service/journal"
)

// specFromJournal rebuilds the deterministic test job a journal record
// describes: the Spec string carries the testSpec index.
func specFromJournal(rec journal.Record) (Job, bool) {
	i, err := strconv.Atoi(strings.TrimPrefix(rec.Spec, "spec:"))
	if err != nil {
		return Job{}, false
	}
	return Job{
		Name: rec.Name, Tenant: rec.Tenant, Spec: rec.Spec,
		Source: sourceFor(testSpec(i)), RunBackDroid: true,
	}, true
}

// TestSchedulerJournalRecovery is the crash-recovery drill at the service
// layer: submit a queue, halt mid-queue (the deterministic SIGKILL
// stand-in — running jobs finish, queued jobs are abandoned), restart a
// scheduler over the same journal, Recover, and require the union of
// reports to be identical to an uninterrupted run — same jobs, same IDs,
// same detection output.
func TestSchedulerJournalRecovery(t *testing.T) {
	const jobs = 5
	// Reference: the uninterrupted run.
	wantKeys := make(map[string]string)
	ref := New(Config{Workers: 1})
	for i := 0; i < jobs; i++ {
		id, err := ref.Submit(Job{Name: testSpec(i).Name, Source: sourceFor(testSpec(i)), RunBackDroid: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := ref.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		wantKeys[testSpec(i).Name] = detectionKey(res.BackDroid)
	}
	ref.Close()

	dir := t.TempDir()
	jnl, pending, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh journal pending = %v", pending)
	}

	// First life: one worker pinned on job 0, jobs 1..4 queued, then Halt.
	gotKeys := make(map[string]string)
	started := make(chan struct{})
	release := make(chan struct{})
	s1 := New(Config{Workers: 1, QueueDepth: 16, Journal: jnl})
	firstID, err := s1.Submit(Job{
		Name: testSpec(0).Name, Spec: "spec:0",
		Source: func() (*apk.App, error) {
			close(started)
			<-release
			return appgenApp(t, testSpec(0))
		},
		RunBackDroid: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only submit the rest once job 0 provably occupies the worker, so
	// exactly the four later jobs are the abandoned queue.
	<-started
	for i := 1; i < jobs; i++ {
		if _, err := s1.Submit(Job{
			Name: testSpec(i).Name, Tenant: "acme", Spec: fmt.Sprintf("spec:%d", i),
			Source: sourceFor(testSpec(i)), RunBackDroid: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	haltDone := make(chan struct{})
	go func() {
		defer close(haltDone)
		s1.Halt() // stops dispatch; only the running job finishes
	}()
	// Release the pinned job only after the halt flag is down, so the
	// worker cannot pick up a queued job in between.
	for {
		s1.mu.Lock()
		halted := s1.halted
		s1.mu.Unlock()
		if halted {
			break
		}
		runtime.Gosched()
	}
	close(release)
	<-haltDone
	res, err := s1.Wait(firstID)
	if err != nil {
		t.Fatal(err)
	}
	gotKeys[res.Name] = detectionKey(res.BackDroid)

	st := jnl.Stats()
	if st.Pending != jobs-1 {
		t.Fatalf("journal pending after halt = %d, want %d", st.Pending, jobs-1)
	}
	jnl.Close()

	// Second life: reopen the journal, recover, drain.
	jnl2, pending, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.Close()
	if len(pending) != jobs-1 {
		t.Fatalf("reopened journal pending = %d, want %d", len(pending), jobs-1)
	}
	s2 := New(Config{Workers: 2, QueueDepth: 16, Journal: jnl2})
	recovered := s2.Recover(specFromJournal)
	if recovered != jobs-1 {
		t.Fatalf("Recover = %d, want %d", recovered, jobs-1)
	}
	// Idempotent: already-tracked jobs are skipped.
	if again := s2.Recover(specFromJournal); again != 0 {
		t.Fatalf("second Recover = %d, want 0", again)
	}
	// Original IDs are preserved — Wait by the journal's ids works — and
	// the original tenant assignment survives the restart.
	for _, rec := range pending {
		if rec.Tenant != "acme" {
			t.Fatalf("record %d lost its tenant: %+v", rec.Job, rec)
		}
		res, err := s2.Wait(JobID(rec.Job))
		if err != nil {
			t.Fatalf("recovered job %d: %v", rec.Job, err)
		}
		gotKeys[res.Name] = detectionKey(res.BackDroid)
	}
	// New submissions never collide with recovered ids.
	newID, err := s2.Submit(Job{Name: "fresh", Source: sourceFor(testSpec(9)), RunBackDroid: true})
	if err != nil {
		t.Fatal(err)
	}
	if int64(newID) <= pending[len(pending)-1].Job {
		t.Fatalf("fresh id %d not above recovered ids", newID)
	}
	if _, err := s2.Wait(newID); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	// Interrupted-then-recovered must equal uninterrupted, bit for bit.
	if len(gotKeys) != jobs {
		t.Fatalf("recovered run produced %d reports, want %d", len(gotKeys), jobs)
	}
	for name, want := range wantKeys {
		if gotKeys[name] != want {
			t.Fatalf("report for %s diverged after crash recovery:\n%s\nvs\n%s", name, gotKeys[name], want)
		}
	}
	if st := jnl2.Stats(); st.Pending != 0 {
		t.Fatalf("journal still pending %d after drain", st.Pending)
	}
}

// TestRecoverSettlesUnrebuildableJobs pins the poison-pill path: a record
// the rebuild function rejects is settled as failed in the journal so it
// never replays again.
func TestRecoverSettlesUnrebuildableJobs(t *testing.T) {
	dir := t.TempDir()
	jnl, _, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Workers: 1, Journal: jnl})
	// Enqueue a job whose spec no rebuild function will accept, behind a
	// halt so it stays pending.
	s1.Halt()
	if err := jnl.Append(journal.Record{Kind: journal.KindSubmit, Job: 77, Name: "ghost", Spec: "bogus"}); err != nil {
		t.Fatal(err)
	}
	jnl.Close()

	jnl2, pending, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.Close()
	if len(pending) != 1 {
		t.Fatalf("pending = %v", pending)
	}
	s2 := New(Config{Workers: 1, Journal: jnl2})
	if n := s2.Recover(specFromJournal); n != 0 {
		t.Fatalf("Recover of a bogus record = %d, want 0", n)
	}
	s2.Close()
	if st := jnl2.Stats(); st.Pending != 0 {
		t.Fatalf("bogus record still pending: %+v", st)
	}
}

// TestJournaledIDsSurviveRestart pins that a restarted scheduler issues
// fresh ids strictly above everything the journal ever saw, even when
// all journaled jobs are settled.
func TestJournaledIDsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	jnl, _, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Workers: 1, Journal: jnl})
	var lastID JobID
	for i := 0; i < 3; i++ {
		id, err := s1.Submit(Job{Name: testSpec(i).Name, Spec: fmt.Sprintf("spec:%d", i), Source: sourceFor(testSpec(i)), RunBackDroid: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s1.Wait(id); err != nil {
			t.Fatal(err)
		}
		lastID = id
	}
	s1.Close()
	jnl.Close()

	jnl2, pending, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.Close()
	if len(pending) != 0 {
		t.Fatalf("settled journal replays %v", pending)
	}
	s2 := New(Config{Workers: 1, Journal: jnl2})
	defer s2.Close()
	id, err := s2.Submit(Job{Name: "fresh", Source: sourceFor(testSpec(5)), RunBackDroid: true})
	if err != nil {
		t.Fatal(err)
	}
	if id <= lastID {
		t.Fatalf("restarted scheduler reissued id %d (last life reached %d)", id, lastID)
	}
	if _, err := s2.Wait(id); err != nil {
		t.Fatal(err)
	}
}

// TestQueuedCancelIsDurable pins the cancel-vs-crash interaction: a
// queued job canceled before dispatch is settled in the journal at
// cancel time, so a crash (Halt) before any worker reaches it must not
// resurrect it on replay.
func TestQueuedCancelIsDurable(t *testing.T) {
	dir := t.TempDir()
	jnl, _, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Workers: 1, QueueDepth: 8, Journal: jnl})
	started := make(chan struct{})
	release := make(chan struct{})
	if _, err := s1.Submit(Job{Name: "pin", Spec: "spec:0", Source: func() (*apk.App, error) {
		close(started)
		<-release
		return appgenApp(t, testSpec(0))
	}, RunBackDroid: true}); err != nil {
		t.Fatal(err)
	}
	<-started
	victim, err := s1.Submit(Job{Name: "victim", Spec: "spec:1", Source: sourceFor(testSpec(1)), RunBackDroid: true})
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Cancel(victim) {
		t.Fatal("queued cancel must register")
	}
	// Crash before the canceled job is ever dispatched.
	haltDone := make(chan struct{})
	go func() { defer close(haltDone); s1.Halt() }()
	for {
		s1.mu.Lock()
		halted := s1.halted
		s1.mu.Unlock()
		if halted {
			break
		}
		runtime.Gosched()
	}
	close(release)
	<-haltDone
	jnl.Close()

	jnl2, pending, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.Close()
	// Only the pinned job (which ran to completion under Halt) is
	// settled by its own record; the canceled victim must be settled too
	// — not pending — despite never reaching a worker.
	for _, rec := range pending {
		if JobID(rec.Job) == victim {
			t.Fatalf("canceled job %d resurrected by replay: %+v", victim, rec)
		}
	}
}

// TestRecoverMixedJournal replays one journal holding every record
// population at once — a settled job, a never-dispatched pending job,
// a job with an orphaned lease (its holder died without a handoff), a
// job with a full handoff trail (two leases bridged by a handoff
// record, still unterminated), and a job canceled while queued. Only
// the three unterminated jobs may replay, in submission order, each to
// exactly one terminal event; the lease and handoff records are
// transient and must neither resurrect settled work nor block
// recovery.
func TestRecoverMixedJournal(t *testing.T) {
	dir := t.TempDir()
	jnl, _, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	append_ := func(r journal.Record) {
		t.Helper()
		if err := jnl.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	submit := func(id int64) {
		append_(journal.Record{
			Kind: journal.KindSubmit, Job: id,
			Name: testSpec(int(id)).Name, Spec: fmt.Sprintf("spec:%d", id),
		})
	}
	// Job 1: dispatched and settled.
	submit(1)
	append_(journal.Record{Kind: journal.KindStart, Job: 1})
	append_(journal.Record{Kind: journal.KindLease, Job: 1, Node: 1, Attempt: 1})
	append_(journal.Record{Kind: journal.KindDone, Job: 1})
	// Job 2: submitted, never dispatched.
	submit(2)
	// Job 3: dispatched, lease granted, holder died — no handoff, no
	// terminal (the process crashed before the sweep).
	submit(3)
	append_(journal.Record{Kind: journal.KindStart, Job: 3})
	append_(journal.Record{Kind: journal.KindLease, Job: 3, Node: 2, Attempt: 1})
	// Job 4: full handoff trail, still unterminated at the crash.
	submit(4)
	append_(journal.Record{Kind: journal.KindStart, Job: 4})
	append_(journal.Record{Kind: journal.KindLease, Job: 4, Node: 1, Attempt: 1})
	append_(journal.Record{Kind: journal.KindHandoff, Job: 4, Node: 1, Attempt: 1})
	append_(journal.Record{Kind: journal.KindLease, Job: 4, Node: 2, Attempt: 2})
	// Job 5: canceled while queued.
	submit(5)
	append_(journal.Record{Kind: journal.KindCanceled, Job: 5})
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	jnl2, pending, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.Close()
	var pendingIDs []int64
	for _, rec := range pending {
		pendingIDs = append(pendingIDs, rec.Job)
	}
	if want := []int64{2, 3, 4}; !reflect.DeepEqual(pendingIDs, want) {
		t.Fatalf("pending = %v, want %v", pendingIDs, want)
	}

	events := make(chan Event, 8)
	var startOrder []JobID
	terminals := make(map[JobID]int)
	var evWG sync.WaitGroup
	evWG.Add(1)
	go func() {
		defer evWG.Done()
		for ev := range events {
			switch ev.Kind {
			case EventStarted:
				startOrder = append(startOrder, ev.Job)
			case EventDone, EventFailed, EventCanceled:
				terminals[ev.Job]++
			}
		}
	}()
	// A single-node fleet makes the replay order observable (one worker)
	// while still exercising the lease-journaling dispatch path.
	s := New(Config{Nodes: 1, Journal: jnl2, Events: events})
	if n := s.Recover(specFromJournal); n != 3 {
		t.Fatalf("Recover = %d, want 3", n)
	}
	if n := s.Recover(specFromJournal); n != 0 {
		t.Fatalf("second Recover = %d, want 0 (must be idempotent)", n)
	}
	// The settled and canceled jobs were not resurrected.
	for _, id := range []JobID{1, 5} {
		if _, err := s.Wait(id); !errors.Is(err, ErrUnknownJob) {
			t.Fatalf("job %d resurrected: %v", id, err)
		}
	}
	for _, id := range []JobID{2, 3, 4} {
		res, err := s.Wait(id)
		if err != nil {
			t.Fatalf("recovered job %d: %v", id, err)
		}
		if want := testSpec(int(id)).Name; res.Name != want {
			t.Fatalf("job %d recovered as %q, want %q", id, res.Name, want)
		}
		if len(res.BackDroid.Sinks) == 0 {
			t.Fatalf("job %d replayed with an empty report", id)
		}
	}
	// Fresh IDs issue above everything the journal has seen.
	id, err := s.Submit(Job{Name: testSpec(9).Name, Source: sourceFor(testSpec(9)), RunBackDroid: true})
	if err != nil {
		t.Fatal(err)
	}
	if id <= 5 {
		t.Fatalf("fresh ID %d collides with journaled range", id)
	}
	if _, err := s.Wait(id); err != nil {
		t.Fatal(err)
	}
	s.Close()
	close(events)
	evWG.Wait()
	if want := []JobID{2, 3, 4, id}; !reflect.DeepEqual(startOrder, want) {
		t.Fatalf("replay order = %v, want %v", startOrder, want)
	}
	for _, jid := range []JobID{2, 3, 4, id} {
		if terminals[jid] != 1 {
			t.Fatalf("job %d emitted %d terminal events, want exactly 1", jid, terminals[jid])
		}
	}
	if len(terminals) != 4 {
		t.Fatalf("terminal events for unexpected jobs: %v", terminals)
	}
}
