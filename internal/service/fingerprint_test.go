package service

import (
	"reflect"
	"testing"

	"backdroid/internal/android"
	"backdroid/internal/apk"
	"backdroid/internal/bcsearch"
	"backdroid/internal/core"
	"backdroid/internal/dexdump"
)

type stubDumpProvider struct{}

func (stubDumpProvider) ProvideDump(app *apk.App) (*dexdump.Text, bool) { return nil, false }

// fingerprintMutators changes exactly one core.Options field per entry,
// to a value observably different from core.DefaultOptions(). The
// property test below requires one mutator per struct field, so adding a
// field to core.Options fails this file until the new field is both
// classified (fingerprint.go) and exercised here.
var fingerprintMutators = map[string]func(o *core.Options){
	"Sinks": func(o *core.Options) {
		o.Sinks = append([]android.Sink(nil), o.Sinks...)
		o.Sinks[0].ParamIndex++
	},
	"EnableSearchCache":     func(o *core.Options) { o.EnableSearchCache = !o.EnableSearchCache },
	"SearchBackend":         func(o *core.Options) { o.SearchBackend = bcsearch.BackendLinear },
	"IndexShards":           func(o *core.Options) { o.IndexShards += 3 },
	"MemoizeForwardPass":    func(o *core.Options) { o.MemoizeForwardPass = !o.MemoizeForwardPass },
	"EnableSinkCache":       func(o *core.Options) { o.EnableSinkCache = !o.EnableSinkCache },
	"EnableLoopDetection":   func(o *core.Options) { o.EnableLoopDetection = !o.EnableLoopDetection },
	"ResolveSinkSubclasses": func(o *core.Options) { o.ResolveSinkSubclasses = !o.ResolveSinkSubclasses },
	"AnalyzeAllContained":   func(o *core.Options) { o.AnalyzeAllContained = !o.AnalyzeAllContained },
	"PerAppSSG":             func(o *core.Options) { o.PerAppSSG = !o.PerAppSSG },
	"MaxDepth":              func(o *core.Options) { o.MaxDepth += 7 },
	"TimeoutMinutes":        func(o *core.Options) { o.TimeoutMinutes += 1.5 },

	"IndexCacheDir":       func(o *core.Options) { o.IndexCacheDir = "/somewhere/else" },
	"DumpProvider":        func(o *core.Options) { o.DumpProvider = stubDumpProvider{} },
	"Bundles":             func(o *core.Options) { o.Bundles = NewBundleStore(0) },
	"ParallelLookups":     func(o *core.Options) { o.ParallelLookups = !o.ParallelLookups },
	"AutoParallelLookups": func(o *core.Options) { o.AutoParallelLookups = !o.AutoParallelLookups },
	"Cancel":              func(o *core.Options) { o.Cancel = func() bool { return false } },
	"Heartbeat":           func(o *core.Options) { o.Heartbeat = func(int64) bool { return false } },
	"SinkObserver":        func(o *core.Options) { o.SinkObserver = func(*core.SinkReport) {} },
	"DeltaFrom":           func(o *core.Options) { o.DeltaFrom = &core.DeltaBase{Fingerprint: 1} },
	"SinkChunk":           func(o *core.Options) { o.SinkChunk += 5 },
	"ChunkRange":          func(o *core.Options) { o.ChunkRange = &core.ChunkRange{From: 0, To: 3} },
	"SinkProgress":        func(o *core.Options) { o.SinkProgress = func(int, int) bool { return false } },
	"PhaseSpan":           func(o *core.Options) { o.PhaseSpan = func(string, int, int64, int64) {} },
	"MeterCheckpoint":     func(o *core.Options) { o.MeterCheckpoint = func(int64, int64) {} },
}

// TestOptionsFingerprintClassProperty is the field-by-field soundness
// property: mutating a ClassHashed field must move the fingerprint (no
// cross-config aliasing of settled reports), mutating a ClassNeutral
// field must not (warm-start seams and callbacks share the cold run's
// address).
func TestOptionsFingerprintClassProperty(t *testing.T) {
	base := core.DefaultOptions()
	baseFP := OptionsFingerprint(&base)
	for name, class := range OptionsFingerprintFields {
		mutate, ok := fingerprintMutators[name]
		if !ok {
			t.Fatalf("field %s has no mutator — extend fingerprintMutators", name)
		}
		o := core.DefaultOptions()
		mutate(&o)
		fp := OptionsFingerprint(&o)
		switch class {
		case ClassHashed:
			if fp == baseFP {
				t.Errorf("hashed field %s: mutation did not change the fingerprint", name)
			}
		case ClassNeutral:
			if fp != baseFP {
				t.Errorf("neutral field %s: mutation changed the fingerprint", name)
			}
		default:
			t.Errorf("field %s has unknown class %d", name, class)
		}
	}
}

// TestOptionsFingerprintSinkSensitivity pins the sink-list details the
// property test's single mutation cannot cover: count, order and every
// per-sink component move the hash.
func TestOptionsFingerprintSinkSensitivity(t *testing.T) {
	base := core.DefaultOptions()
	if len(base.Sinks) < 2 {
		t.Fatalf("default sink list too short for the order test: %d", len(base.Sinks))
	}
	baseFP := OptionsFingerprint(&base)
	variants := map[string]func(o *core.Options){
		"dropped sink": func(o *core.Options) { o.Sinks = o.Sinks[:len(o.Sinks)-1] },
		"swapped order": func(o *core.Options) {
			o.Sinks = append([]android.Sink(nil), o.Sinks...)
			o.Sinks[0], o.Sinks[1] = o.Sinks[1], o.Sinks[0]
		},
		"changed rule": func(o *core.Options) {
			o.Sinks = append([]android.Sink(nil), o.Sinks...)
			o.Sinks[0].Rule++
		},
		"changed method": func(o *core.Options) {
			o.Sinks = append([]android.Sink(nil), o.Sinks...)
			o.Sinks[0].Method.Name += "X"
		},
	}
	for name, mutate := range variants {
		o := core.DefaultOptions()
		mutate(&o)
		if OptionsFingerprint(&o) == baseFP {
			t.Errorf("%s did not change the fingerprint", name)
		}
	}
}

// TestOptionsFingerprintStable pins determinism: the hash depends only on
// field values, never on pointers or process state, so equal options
// hash equal (the journaled settled keys must survive a restart).
func TestOptionsFingerprintStable(t *testing.T) {
	a := core.DefaultOptions()
	b := core.DefaultOptions()
	if OptionsFingerprint(&a) != OptionsFingerprint(&b) {
		t.Fatal("equal options produced different fingerprints")
	}
	if OptionsFingerprint(&a) != OptionsFingerprint(&a) {
		t.Fatal("fingerprint not stable across calls")
	}
}

// TestOptionsFingerprintFieldGuard is the compile guard: every field of
// core.Options must be classified in OptionsFingerprintFields, and every
// classified name must still exist in the struct. A new Options field
// fails here until someone decides — explicitly — whether it is
// verdict-relevant.
func TestOptionsFingerprintFieldGuard(t *testing.T) {
	typ := reflect.TypeOf(core.Options{})
	structFields := make(map[string]bool, typ.NumField())
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		structFields[name] = true
		class, ok := OptionsFingerprintFields[name]
		if !ok {
			t.Errorf("core.Options.%s is not classified in OptionsFingerprintFields — "+
				"decide whether it changes reports (ClassHashed) or provably cannot (ClassNeutral)", name)
			continue
		}
		if class != ClassHashed && class != ClassNeutral {
			t.Errorf("core.Options.%s has invalid class %d", name, class)
		}
	}
	for name := range OptionsFingerprintFields {
		if !structFields[name] {
			t.Errorf("OptionsFingerprintFields lists %s, which core.Options no longer has", name)
		}
	}
	for name := range fingerprintMutators {
		if !structFields[name] {
			t.Errorf("fingerprintMutators lists %s, which core.Options no longer has", name)
		}
	}
}
