package service

import (
	"testing"

	"backdroid/internal/appgen"
	"backdroid/internal/core"
	"backdroid/internal/faultinject"
)

// stealTailSpecs is the scaled-down heavy-tail corpus of the steal
// tests: one 48-sink outlier first, then three light apps — big enough
// that the outlier grinds long after the smalls drain, small enough for
// the race detector.
func stealTailSpecs() []appgen.Spec {
	return appgen.HeavyTailCorpus(appgen.HeavyTailOptions{
		SmallApps: 3, Seed: 99, HeavySinks: 48, HeavySizeMB: 4,
	})
}

// runHeavyTail runs the heavy-tail corpus on a fleet, with sink-chunk
// stealing enabled (the default options) or disabled (SinkChunk = 0).
// StealAfterUnits is lowered so the trigger fires early in these small
// corpora; StealMinSinks keeps the default, so only the outlier's tail
// is ever split.
func runHeavyTail(t *testing.T, nodes int, plan *faultinject.Plan, steal bool) fleetRun {
	t.Helper()
	specs := stealTailSpecs()
	events := make(chan Event, 16)
	run := fleetRun{
		keys:      make(map[string]string),
		terminals: make(map[JobID]int),
		started:   make(map[JobID]int),
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range events {
			switch ev.Kind {
			case EventStarted:
				run.started[ev.Job]++
			case EventDone, EventFailed, EventCanceled:
				run.terminals[ev.Job]++
			}
		}
	}()
	opts := core.DefaultOptions()
	if !steal {
		opts.SinkChunk = 0
	}
	s := New(Config{
		Nodes:           nodes,
		NodeStoreBudget: 0,
		Faults:          plan,
		Options:         &opts,
		QueueDepth:      2 * len(specs),
		Events:          events,
		StealAfterUnits: 64,
	})
	ids := make([]JobID, len(specs))
	for i, spec := range specs {
		id, err := s.Submit(Job{Name: spec.Name, Source: sourceFor(spec), RunBackDroid: true})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for i, id := range ids {
		res, err := s.Wait(id)
		if err != nil {
			t.Fatalf("job %d (%s): %v", id, specs[i].Name, err)
		}
		run.keys[res.Name] = detectionKey(res.BackDroid)
	}
	s.Close()
	run.stats = s.FleetStats()
	close(events)
	<-done
	return run
}

// TestFleetStealHeavyTail is the tentpole end to end: with 4 nodes and
// an outlier-dominated corpus, sink-chunk stealing fires, the stolen
// chunks' union is byte-identical to the unsplit run's reports, the
// steal counters account the moved work, and the charged makespan (the
// busiest node's odometer) shrinks — idle-node time converted directly
// into tail latency.
func TestFleetStealHeavyTail(t *testing.T) {
	const nodes = 4
	base := runHeavyTail(t, nodes, nil, false)
	if base.stats.Steals != 0 {
		t.Fatalf("no-steal run stole chunks: %+v", base.stats)
	}
	got := runHeavyTail(t, nodes, nil, true)
	requireUnionParity(t, "steal", base, got)
	st := got.stats
	if st.Steals == 0 {
		t.Fatalf("no chunk stolen off the outlier: %+v", st)
	}
	if st.StealVictims == 0 || st.StolenSinks == 0 || st.StealUnits == 0 {
		t.Fatalf("steal counters not accounted: %+v", st)
	}
	if st.MakespanUnits >= base.stats.MakespanUnits {
		t.Errorf("stealing did not shorten the charged makespan: %d vs %d without stealing",
			st.MakespanUnits, base.stats.MakespanUnits)
	}
	if st.Handoffs != 0 || st.Killed != 0 {
		t.Errorf("undisturbed steal run saw failures: %+v", st)
	}
}

// stealChaosCase is the kill-mid-steal scenario of the chaos matrix
// (registered under TestFleetChaosUnionParity so the CI kill matrix
// addresses it as TestFleetChaosUnionParity/steal-chaos): a node is
// killed while dispatches of the chunk-split outlier are in flight. The
// lost range degrades to a plain handoff — only that range re-runs on a
// surviving node — with the union still byte-identical and exactly one
// terminal per job.
func stealChaosCase(t *testing.T) {
	const nodes = 4
	ref := runHeavyTail(t, nodes, nil, true)
	got := runHeavyTail(t, nodes, mustPlan(t, "kill:job=com.outlier.manysink@600"), true)
	requireUnionParity(t, "steal-chaos", ref, got)
	st := got.stats
	if st.Killed != 1 {
		t.Errorf("killed = %d, want 1 (stats %+v)", st.Killed, st)
	}
	if st.Steals == 0 {
		t.Errorf("no steal fired around the kill: %+v", st)
	}
	if st.Handoffs == 0 || st.ExpiredLeases == 0 {
		t.Errorf("kill mid-steal did not degrade to a handoff: %+v", st)
	}
	if st.LostUnits == 0 || st.OverheadUnits == 0 {
		t.Errorf("lost/overhead units not charged: %+v", st)
	}
}
