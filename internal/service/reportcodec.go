// Report serialization for the settled-result tier. A terminal
// core.Report is encoded into a canonical, versioned byte form — the
// content the ReportStore addresses, the journal persists and the
// benchgate settled-storm leg compares bitwise. The encoding is
// deterministic by construction: fields are written in a fixed order
// with length prefixes and no maps, so two reports with equal detection
// surfaces encode to identical bytes regardless of which run produced
// them.
//
// Deliberately excluded from the encoding:
//
//   - Stats: charged work, wall time and cache counters vary run to run
//     (a cold run and a settled replay of the same verdicts must encode
//     identically — that equality is the store's correctness check);
//   - SinkReport.SSG and SinkReport.Footprint: analysis-internal graphs
//     that no read path consumes. A report decoded from bytes therefore
//     has no footprints; the scheduler only seeds the delta path with a
//     decoded report when it has nothing better, and the delta guards
//     already treat footprint-less sinks as must-rerun.
//
// The layout is magic "BDRS" + u16 version + payload + trailing CRC-32
// over everything after the magic. Decode failures are errors (callers
// treat a damaged entry as a miss), never panics.
package service

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"backdroid/internal/android"
	"backdroid/internal/core"
	"backdroid/internal/dex"
)

// ReportCodecVersion is the settled-report encoding version. Bump it
// whenever the layout changes; stored entries of other versions decode
// as errors, which every read path treats as a store miss.
//
// v2 dropped the sinkCached flag from the encoding: Cached records
// whether a sink hit the engine-run-local reachability cache, which
// depends on which sinks co-resided in one engine run — a chunked run
// and a single-pass run legitimately differ there, and the settled
// encoding must stay bitwise-identical across every chunking.
const ReportCodecVersion = 2

const reportMagic = "BDRS"

var errReportCodec = errors.New("service: undecodable settled report")

// EncodeReport renders the report's deterministic detection surface in
// the canonical settled-report byte form.
func EncodeReport(r *core.Report) []byte {
	var p []byte
	p = putStr(p, r.App)
	if r.TimedOut {
		p = append(p, 1)
	} else {
		p = append(p, 0)
	}
	p = putU32(p, uint32(len(r.Registered)))
	for _, reg := range r.Registered {
		p = putStr(p, reg)
	}
	p = putU32(p, uint32(len(r.Sinks)))
	for _, s := range r.Sinks {
		p = encodeSink(p, s)
	}

	out := make([]byte, 0, len(reportMagic)+2+len(p)+4)
	out = append(out, reportMagic...)
	out = putU16(out, ReportCodecVersion)
	out = append(out, p...)
	return putU32(out, crc32.ChecksumIEEE(out[len(reportMagic):]))
}

// DecodeReport parses canonical settled-report bytes back into a
// core.Report. The decoded report carries no Stats, no SSGs and no
// footprints — only the detection surface EncodeReport captured.
func DecodeReport(data []byte) (*core.Report, error) {
	if len(data) < len(reportMagic)+2+4 || string(data[:4]) != reportMagic {
		return nil, errReportCodec
	}
	body, tail := data[4:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, errReportCodec
	}
	ver, p, ok := getU16(body)
	if !ok || ver != ReportCodecVersion {
		return nil, errReportCodec
	}
	r := &core.Report{}
	if r.App, p, ok = getStr(p); !ok {
		return nil, errReportCodec
	}
	var b byte
	if b, p, ok = getByte(p); !ok {
		return nil, errReportCodec
	}
	r.TimedOut = b != 0
	var n uint32
	if n, p, ok = getU32(p); !ok || int64(n) > int64(len(p)) {
		return nil, errReportCodec
	}
	for i := uint32(0); i < n; i++ {
		var reg string
		if reg, p, ok = getStr(p); !ok {
			return nil, errReportCodec
		}
		r.Registered = append(r.Registered, reg)
	}
	if n, p, ok = getU32(p); !ok || int64(n) > int64(len(p)) {
		return nil, errReportCodec
	}
	for i := uint32(0); i < n; i++ {
		var s *core.SinkReport
		if s, p, ok = decodeSink(p); !ok {
			return nil, errReportCodec
		}
		r.Sinks = append(r.Sinks, s)
	}
	if len(p) != 0 {
		return nil, errReportCodec
	}
	return r, nil
}

// sink flag bits. sinkCached's bit position is retired as of codec v2
// (kept reserved so sinkReused keeps its v1 value).
const (
	sinkReachable = 1 << iota
	sinkInsecure
	_ // formerly sinkCached; run-local, dropped in v2
	sinkReused
)

func encodeSink(p []byte, s *core.SinkReport) []byte {
	p = encodeMethodRef(p, s.Call.Sink.Method)
	p = putU32(p, uint32(s.Call.Sink.ParamIndex))
	p = append(p, byte(s.Call.Sink.Rule))
	p = encodeMethodRef(p, s.Call.Caller)
	p = putU32(p, uint32(s.Call.UnitIndex))
	p = putU32(p, uint32(s.Call.Line))
	var flags byte
	if s.Reachable {
		flags |= sinkReachable
	}
	if s.Insecure {
		flags |= sinkInsecure
	}
	if s.Reused {
		flags |= sinkReused
	}
	p = append(p, flags)
	p = putU32(p, uint32(len(s.Entries)))
	for _, e := range s.Entries {
		p = encodeMethodRef(p, e)
	}
	p = putU32(p, uint32(len(s.Values)))
	for _, v := range s.Values {
		p = putStr(p, v)
	}
	return p
}

func decodeSink(p []byte) (*core.SinkReport, []byte, bool) {
	s := &core.SinkReport{}
	var ok bool
	if s.Call.Sink.Method, p, ok = decodeMethodRef(p); !ok {
		return nil, nil, false
	}
	var u uint32
	if u, p, ok = getU32(p); !ok {
		return nil, nil, false
	}
	s.Call.Sink.ParamIndex = int(u)
	var b byte
	if b, p, ok = getByte(p); !ok {
		return nil, nil, false
	}
	s.Call.Sink.Rule = android.RuleKind(b)
	if s.Call.Caller, p, ok = decodeMethodRef(p); !ok {
		return nil, nil, false
	}
	if u, p, ok = getU32(p); !ok {
		return nil, nil, false
	}
	s.Call.UnitIndex = int(u)
	if u, p, ok = getU32(p); !ok {
		return nil, nil, false
	}
	s.Call.Line = int(u)
	if b, p, ok = getByte(p); !ok {
		return nil, nil, false
	}
	s.Reachable = b&sinkReachable != 0
	s.Insecure = b&sinkInsecure != 0
	s.Reused = b&sinkReused != 0
	if u, p, ok = getU32(p); !ok || int64(u) > int64(len(p)) {
		return nil, nil, false
	}
	for i := uint32(0); i < u; i++ {
		var m dex.MethodRef
		if m, p, ok = decodeMethodRef(p); !ok {
			return nil, nil, false
		}
		s.Entries = append(s.Entries, m)
	}
	if u, p, ok = getU32(p); !ok || int64(u) > int64(len(p)) {
		return nil, nil, false
	}
	for i := uint32(0); i < u; i++ {
		var v string
		if v, p, ok = getStr(p); !ok {
			return nil, nil, false
		}
		s.Values = append(s.Values, v)
	}
	return s, p, true
}

func encodeMethodRef(p []byte, m dex.MethodRef) []byte {
	p = putStr(p, m.Class)
	p = putStr(p, m.Name)
	p = putStr(p, string(m.Ret))
	p = putU32(p, uint32(len(m.Params)))
	for _, t := range m.Params {
		p = putStr(p, string(t))
	}
	return p
}

func decodeMethodRef(p []byte) (dex.MethodRef, []byte, bool) {
	var m dex.MethodRef
	var s string
	var ok bool
	if m.Class, p, ok = getStr(p); !ok {
		return m, nil, false
	}
	if m.Name, p, ok = getStr(p); !ok {
		return m, nil, false
	}
	if s, p, ok = getStr(p); !ok {
		return m, nil, false
	}
	m.Ret = dex.TypeDesc(s)
	var n uint32
	if n, p, ok = getU32(p); !ok || int64(n) > int64(len(p)) {
		return m, nil, false
	}
	for i := uint32(0); i < n; i++ {
		if s, p, ok = getStr(p); !ok {
			return m, nil, false
		}
		m.Params = append(m.Params, dex.TypeDesc(s))
	}
	return m, p, true
}

func putU16(b []byte, v uint16) []byte {
	var n [2]byte
	binary.LittleEndian.PutUint16(n[:], v)
	return append(b, n[:]...)
}

func putU32(b []byte, v uint32) []byte {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], v)
	return append(b, n[:]...)
}

func putStr(b []byte, s string) []byte {
	return append(putU32(b, uint32(len(s))), s...)
}

func getByte(p []byte) (byte, []byte, bool) {
	if len(p) < 1 {
		return 0, nil, false
	}
	return p[0], p[1:], true
}

func getU16(p []byte) (uint16, []byte, bool) {
	if len(p) < 2 {
		return 0, nil, false
	}
	return binary.LittleEndian.Uint16(p), p[2:], true
}

func getU32(p []byte) (uint32, []byte, bool) {
	if len(p) < 4 {
		return 0, nil, false
	}
	return binary.LittleEndian.Uint32(p), p[4:], true
}

func getStr(p []byte) (string, []byte, bool) {
	n, p, ok := getU32(p)
	if !ok || int64(n) > int64(len(p)) {
		return "", nil, false
	}
	return string(p[:n]), p[n:], true
}

// reportKeyString renders a ReportKey for error messages and HTTP paths.
func reportKeyString(k ReportKey) string {
	return fmt.Sprintf("%016x/%016x", k.App, k.Options)
}
