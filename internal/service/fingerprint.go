// OptionsFingerprint: the engine-configuration half of the settled-result
// tier's content address. A settled report is keyed by
// (dexdump.AppFingerprint, OptionsFingerprint); the pair may be answered
// from the store only if re-running the engine would reproduce the stored
// report bit for bit. The app fingerprint pins the input bytes; this
// fingerprint pins every core.Options field that can move a verdict, a
// value string, a sink ordering or the TimedOut flag.
//
// Every field of core.Options is classified exactly one way (the
// compile-guard test fails the build of a field the table does not
// know):
//
//   - ClassHashed: the field selects what is analyzed or how deep
//     (Sinks, MaxDepth, TimeoutMinutes, ...) or switches an engine
//     mechanism we pin conservatively even where parity tests hold
//     (SearchBackend, IndexShards, caches, memoization, PerAppSSG).
//     Two options differing here hash differently — no cross-config
//     reuse, only a missed optimization when the configs were in fact
//     equivalent.
//
//   - ClassNeutral: the field moves work between cache layers or wires
//     control-plane callbacks and provably cannot change the report:
//     warm-start seams (IndexCacheDir, DumpProvider, Bundles) and
//     shard-parallel lookups are pinned bitwise-identical by the CI
//     parity matrix; Cancel/Heartbeat/SinkObserver only abort or
//     observe;
//     DeltaFrom's incremental reuse is pinned bitwise-identical to a
//     cold run by the five delta guards and the BENCH_delta gate, and
//     the scheduler keys settled lookups before injecting a delta base,
//     so the stored report of a delta run is addressed exactly like its
//     cold equivalent; SinkChunk/ChunkRange/SinkProgress only window
//     and observe the canonical sink list — the chunk-merge parity
//     tests pin MergeReports of any chunking bitwise-identical to the
//     single-pass report, so a chunked job settles under the same key.
package service

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"backdroid/internal/core"
)

// FingerprintClass says how OptionsFingerprint treats one core.Options
// field.
type FingerprintClass int

// Field classes.
const (
	// classHashed fields feed the fingerprint: any change produces a
	// different settled-store key.
	ClassHashed FingerprintClass = iota + 1
	// classNeutral fields are excluded: two options differing only here
	// share a key, because the engine output is pinned identical across
	// their values.
	ClassNeutral
)

// OptionsFingerprintFields is the exhaustive classification of
// core.Options fields. The compile-guard test walks core.Options by
// reflection and fails when a field is missing here (or listed here but
// gone from the struct), so the struct cannot grow a verdict-relevant
// field that silently aliases settled-store keys.
var OptionsFingerprintFields = map[string]FingerprintClass{
	"Sinks":                 ClassHashed,
	"EnableSearchCache":     ClassHashed,
	"SearchBackend":         ClassHashed,
	"IndexShards":           ClassHashed,
	"MemoizeForwardPass":    ClassHashed,
	"EnableSinkCache":       ClassHashed,
	"EnableLoopDetection":   ClassHashed,
	"ResolveSinkSubclasses": ClassHashed,
	"AnalyzeAllContained":   ClassHashed,
	"PerAppSSG":             ClassHashed,
	"MaxDepth":              ClassHashed,
	"TimeoutMinutes":        ClassHashed,

	"IndexCacheDir":       ClassNeutral,
	"DumpProvider":        ClassNeutral,
	"Bundles":             ClassNeutral,
	"ParallelLookups":     ClassNeutral,
	"AutoParallelLookups": ClassNeutral,
	"Cancel":              ClassNeutral,
	"Heartbeat":           ClassNeutral,
	"SinkObserver":        ClassNeutral,
	"DeltaFrom":           ClassNeutral,
	"SinkChunk":           ClassNeutral,
	"ChunkRange":          ClassNeutral,
	"SinkProgress":        ClassNeutral,
	// Observability hooks only watch charged-unit boundaries the engine
	// reaches anyway; they never charge and never touch a verdict — the
	// trace-parity test pins a traced run's report bitwise-identical to
	// an untraced one.
	"PhaseSpan":       ClassNeutral,
	"MeterCheckpoint": ClassNeutral,
}

// OptionsFingerprint canonically hashes the verdict-relevant fields of
// the options (FNV-64a over a tagged, length-prefixed rendering). The
// hash is stable across processes — it feeds journaled settled-report
// keys that must survive a restart — so it uses only field values, never
// pointers or map iteration.
func OptionsFingerprint(o *core.Options) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	str := func(s string) {
		u64(uint64(len(s)))
		h.Write([]byte(s))
	}
	b := func(v bool) {
		if v {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}

	str("backdroid-options-v1")
	u64(uint64(len(o.Sinks)))
	for _, s := range o.Sinks {
		// Order matters: sink order is report order.
		str(s.Method.SootSignature())
		u64(uint64(s.ParamIndex))
		u64(uint64(s.Rule))
	}
	b(o.EnableSearchCache)
	u64(uint64(o.SearchBackend))
	u64(uint64(int64(o.IndexShards)))
	b(o.MemoizeForwardPass)
	b(o.EnableSinkCache)
	b(o.EnableLoopDetection)
	b(o.ResolveSinkSubclasses)
	b(o.AnalyzeAllContained)
	b(o.PerAppSSG)
	u64(uint64(int64(o.MaxDepth)))
	u64(math.Float64bits(o.TimeoutMinutes))
	return h.Sum64()
}
