// The settled-result tier: a content-addressed store of terminal
// reports. A report is addressed by (dexdump.AppFingerprint,
// OptionsFingerprint) — what was analyzed and how — so resubmitting a
// settled pair is answered from the store in O(1) with zero disassembly,
// zero index builds and zero engine runs, charged one flat
// simtime.ChargeSettledLookup. The in-memory section is LRU-bounded by a
// byte budget over canonical encodings; an attached journal persists
// every admitted report as a KindReport record, so Recover repopulates
// the store after a restart.
package service

import (
	"container/list"
	"sync"

	"backdroid/internal/core"
	"backdroid/internal/service/journal"
)

// ReportKey is the content address of one settled report: the app
// fingerprint (a hash of the input bytecode) paired with the options
// fingerprint (a hash of every verdict-relevant engine setting). Two
// submissions sharing a key are guaranteed — by the fingerprint
// soundness argument in fingerprint.go — to produce bitwise-identical
// reports, which is what makes serving the stored one correct.
type ReportKey struct {
	App     uint64 // dexdump.AppFingerprint of the job's dex files
	Options uint64 // OptionsFingerprint of the job's core.Options
}

// ReportStoreStats are the counters of a ReportStore, taken atomically.
type ReportStoreStats struct {
	Entries   int   // live in-memory entries
	Bytes     int64 // bytes held by live encodings
	Hits      int64 // Get probes that found an entry
	Misses    int64 // Get probes that did not
	Puts      int64 // Put calls that inserted a new entry
	Refreshes int64 // Put calls for an already-present key
	Evictions int64 // entries dropped to satisfy the byte budget
	Journaled int64 // reports appended to the journal
	Skipped   int64 // reports not journaled (oversized or append failed)
	Recovered int64 // entries repopulated from the journal
	Damaged   int64 // journal report records that failed to decode
}

// ReportStore is the in-memory settled-report cache. Entries are
// content-addressed and therefore immutable: a Put for a present key is
// a refresh, never a replacement. Eviction is LRU under a byte budget
// measured over canonical encodings; an evicted entry survives in the
// journal (when one is attached) and comes back on the next restart's
// Recover — the memory budget bounds the working set, not durability.
//
// A ReportStore is safe for concurrent use.
type ReportStore struct {
	mu      sync.Mutex
	budget  int64 // bytes; <= 0 means unlimited
	bytes   int64
	lru     *list.List // front = most recently used; values are *reportEntry
	entries map[ReportKey]*list.Element
	stats   ReportStoreStats
	j       *journal.Journal
}

type reportEntry struct {
	key    ReportKey
	report *core.Report
	data   []byte // canonical encoding (EncodeReport)
}

// NewReportStore builds a store with the given byte budget; budgetBytes
// <= 0 means unlimited.
func NewReportStore(budgetBytes int64) *ReportStore {
	return &ReportStore{
		budget:  budgetBytes,
		lru:     list.New(),
		entries: make(map[ReportKey]*list.Element),
	}
}

// AttachJournal gives the store a persistent section: every subsequent
// Put also appends a KindReport record, and Recover repopulates from the
// journal's live report records. Attach before Recover and before any
// Put that should persist.
func (s *ReportStore) AttachJournal(j *journal.Journal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.j = j
}

// Get returns the settled report for the key and marks the entry most
// recently used. The returned report is shared and must be treated as
// read-only — callers replaying it copy the Report shell and keep the
// sink pointers, exactly like the engine's own result path.
func (s *ReportStore) Get(key ReportKey) (*core.Report, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	s.stats.Hits++
	s.lru.MoveToFront(el)
	return el.Value.(*reportEntry).report, true
}

// Encoded returns the canonical encoding of the settled report for the
// key, without touching recency or the hit/miss counters — the byte form
// the HTTP report endpoint serves and the benchgate compares bitwise.
func (s *ReportStore) Encoded(key ReportKey) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*reportEntry).data, true
}

// Put inserts the terminal report under its content address, evicting
// least-recently-used entries until the byte budget holds, and appends
// it to the attached journal. A Put for a present key only refreshes its
// recency — the key is a content hash of inputs and configuration, so
// the report is identical. Reports larger than the whole budget are not
// admitted; reports larger than journal.MaxReportData stay in memory but
// are not journaled (Skipped counts them).
func (s *ReportStore) Put(key ReportKey, r *core.Report) {
	if r == nil {
		return
	}
	data := EncodeReport(r)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.stats.Refreshes++
		s.lru.MoveToFront(el)
		return
	}
	if s.budget > 0 && int64(len(data)) > s.budget {
		return
	}
	s.insertLocked(key, r, data)
	s.stats.Puts++
	if s.j != nil {
		if len(data) > journal.MaxReportData {
			s.stats.Skipped++
		} else if err := s.j.Append(journal.Record{
			Kind: journal.KindReport,
			App:  key.App,
			Opt:  key.Options,
			Data: data,
		}); err != nil {
			// Journaling is durability, not correctness: the entry still
			// serves from memory; it just won't survive a restart.
			s.stats.Skipped++
		} else {
			s.stats.Journaled++
		}
	}
}

// insertLocked adds the entry at the LRU front and evicts from the back
// until the byte budget holds.
func (s *ReportStore) insertLocked(key ReportKey, r *core.Report, data []byte) {
	s.entries[key] = s.lru.PushFront(&reportEntry{key: key, report: r, data: data})
	s.bytes += int64(len(data))
	for s.budget > 0 && s.bytes > s.budget {
		back := s.lru.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*reportEntry)
		s.lru.Remove(back)
		delete(s.entries, ent.key)
		s.bytes -= int64(len(ent.data))
		s.stats.Evictions++
	}
}

// Recover repopulates the store from the attached journal's live report
// records, oldest first, without re-journaling them. Records that fail
// to decode are skipped (and counted in Damaged) — a damaged persistent
// entry degrades to a cold re-analysis, never to a wrong answer. It
// returns the number of reports recovered into memory.
func (s *ReportStore) Recover() int {
	s.mu.Lock()
	j := s.j
	s.mu.Unlock()
	if j == nil {
		return 0
	}
	n := 0
	for _, rec := range j.Reports() {
		r, err := DecodeReport(rec.Data)
		s.mu.Lock()
		if err != nil {
			s.stats.Damaged++
			s.mu.Unlock()
			continue
		}
		key := ReportKey{App: rec.App, Options: rec.Opt}
		if _, ok := s.entries[key]; !ok &&
			(s.budget <= 0 || int64(len(rec.Data)) <= s.budget) {
			s.insertLocked(key, r, rec.Data)
			s.stats.Recovered++
			n++
		}
		s.mu.Unlock()
	}
	return n
}

// Stats returns the current counters.
func (s *ReportStore) Stats() ReportStoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.lru.Len()
	st.Bytes = s.bytes
	return st
}
