package service

import (
	"bytes"
	"sync"
	"testing"
)

func entryOf(b byte, n int) []byte { return bytes.Repeat([]byte{b}, n) }

func TestStoreGetPutAndCounters(t *testing.T) {
	s := NewBundleStore(0)
	if _, ok := s.GetBundle(1); ok {
		t.Fatal("empty store must miss")
	}
	s.PutBundle(1, entryOf('a', 10))
	data, ok := s.GetBundle(1)
	if !ok || len(data) != 10 {
		t.Fatalf("get after put = (%d bytes, %v), want 10 bytes", len(data), ok)
	}
	// Content-addressed refresh: a second put of the fingerprint must not
	// duplicate bytes.
	s.PutBundle(1, entryOf('a', 10))
	st := s.Stats()
	if st.Entries != 1 || st.Bytes != 10 || st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Refreshes != 1 {
		t.Fatalf("stats = %+v, want 1 entry / 10 bytes / 1 hit / 1 miss / 1 put / 1 refresh", st)
	}
}

func TestStoreIgnoresEmptyAndOversized(t *testing.T) {
	s := NewBundleStore(100)
	s.PutBundle(1, nil)
	s.PutBundle(2, entryOf('x', 101)) // larger than the whole budget
	if st := s.Stats(); st.Entries != 0 || st.Puts != 0 {
		t.Fatalf("stats = %+v, want nothing admitted", st)
	}
}

// TestStoreLRUEvictionOrder pins the eviction policy: under a byte
// budget, the least-recently-used fingerprints go first, and a Get
// refreshes recency.
func TestStoreLRUEvictionOrder(t *testing.T) {
	s := NewBundleStore(30)
	s.PutBundle(1, entryOf('a', 10))
	s.PutBundle(2, entryOf('b', 10))
	s.PutBundle(3, entryOf('c', 10))
	// Touch 1 so 2 becomes the LRU entry.
	if _, ok := s.GetBundle(1); !ok {
		t.Fatal("entry 1 must be present")
	}
	s.PutBundle(4, entryOf('d', 10)) // over budget: evicts 2
	if _, ok := s.GetBundle(2); ok {
		t.Fatal("entry 2 must have been evicted (LRU)")
	}
	for _, fp := range []uint64{1, 3, 4} {
		if _, ok := s.GetBundle(fp); !ok {
			t.Fatalf("entry %d must have survived", fp)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 3 || st.Bytes != 30 {
		t.Fatalf("stats = %+v, want exactly one eviction and a full store", st)
	}

	// A big insert evicts as many entries as the budget demands.
	s.PutBundle(5, entryOf('e', 25))
	if st := s.Stats(); st.Entries != 1 || st.Bytes != 25 {
		t.Fatalf("stats after big insert = %+v, want only the new entry", st)
	}
	if got := s.Fingerprints(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("fingerprints = %v, want [5]", got)
	}
}

// TestStoreDropBundle pins the damaged-entry repair path: dropping a
// fingerprint frees its bytes and lets a subsequent Put really replace
// the entry (a Put for a present fingerprint is only a refresh).
func TestStoreDropBundle(t *testing.T) {
	s := NewBundleStore(0)
	s.PutBundle(1, entryOf('a', 10))
	s.PutBundle(1, entryOf('a', 10)) // refresh, not replace
	s.DropBundle(1)
	s.DropBundle(1) // idempotent
	if _, ok := s.GetBundle(1); ok {
		t.Fatal("dropped entry still served")
	}
	s.PutBundle(1, entryOf('b', 20))
	data, ok := s.GetBundle(1)
	if !ok || len(data) != 20 || data[0] != 'b' {
		t.Fatalf("put after drop = (%d bytes, %v), want the new 20-byte entry", len(data), ok)
	}
	if st := s.Stats(); st.Entries != 1 || st.Bytes != 20 || st.Drops != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v, want 1 entry / 20 bytes / 1 drop / 0 evictions", st)
	}
}

func TestStoreConcurrentUse(t *testing.T) {
	s := NewBundleStore(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				fp := uint64(i % 17)
				s.PutBundle(fp, entryOf(byte(fp), 64))
				s.GetBundle(fp)
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Entries != 17 || st.Bytes != 17*64 {
		t.Fatalf("stats = %+v, want 17 entries", st)
	}
}

func TestLockFingerprintSerializes(t *testing.T) {
	s := NewBundleStore(0)
	release := s.LockFingerprint(7)
	acquired := make(chan struct{})
	go func() {
		r := s.LockFingerprint(7)
		close(acquired)
		r()
	}()
	select {
	case <-acquired:
		t.Fatal("second lock acquired while the first is held")
	default:
	}
	release()
	<-acquired
	// The lock table must drain once all holders release.
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.inflight) != 0 {
		t.Fatalf("inflight table has %d entries after release", len(s.inflight))
	}
}
