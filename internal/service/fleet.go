package service

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"backdroid/internal/faultinject"
	"backdroid/internal/simtime"
)

// This file is the scheduler's fleet layer: with Config.Nodes > 0 the
// worker goroutines become process-shaped nodes — each with its own
// work-unit odometer, heartbeat stream and consistent-hashed bundle
// store partition — and the scheduler becomes their coordinator. Every
// dispatch takes a per-(job, chunk) lease on the fleet-global simtime
// clock; a node renews its lease at each meter checkpoint. A node that
// dies (by fault plan, `die node=N`, or KillNode) or goes mute stops
// renewing; once the clock passes the lease TTL the coordinator fences
// the node, journals a handoff record and re-dispatches the lost range
// to a surviving node with retry backoff. Terminals stay at-most-once
// (Scheduler.finish settles exactly one attempt); sink events are
// at-least-once but byte-identical across attempts, so report unions
// dedup cleanly. The steal layer (DESIGN.md Sec. 13) rides the same
// machinery: a stolen sink chunk is just a second lease on the job,
// keyed by its chunk id, with its own heartbeat stream and expiry.
// See DESIGN.md Sec. 12.

// NodeStats is one fleet node's counter block.
type NodeStats struct {
	ID      int
	State   string // "live", "muted" (working but heartbeats dropped) or "dead"
	Units   int64  // work-unit odometer: units charged on this node
	Jobs    int64  // attempts finished on this node
	Beats   int64  // heartbeats delivered
	Dropped int64  // heartbeats dropped by fault injection
	Store   StoreStats
}

// FleetStats aggregates the fleet's resilience counters.
type FleetStats struct {
	Nodes         int
	Live          int
	Killed        int
	Clock         int64 // fleet-global simtime clock, in work units
	Handoffs      int64 // jobs re-dispatched after a lease expiry
	ExpiredLeases int64
	LostUnits     int64 // attempt units abandoned on dead/fenced nodes
	OverheadUnits int64 // detection latency + handoff + backoff charges
	LocalGets     int64 // bundle fetches answered by the job's own node
	RemoteGets    int64 // bundle fetches routed to another node's partition
	RemoteUnits   int64 // charged placement detours (simtime.RemoteFetchUnits each)
	FetchFaults   int64 // fetches failed by the fault plan
	Steals        int64 // sink chunks stolen to idle nodes
	StealVictims  int64 // jobs that had at least one chunk stolen
	StolenSinks   int64 // sink call sites moved by steals
	StealUnits    int64 // charged steal overhead (simtime.StealUnits each)
	MakespanUnits int64 // max per-node odometer: charged time to the last busy node
	PerNode       []NodeStats
	Store         *StoreStats // aggregate over the node partitions; nil when disabled
}

// fleetNode is one goroutine-backed worker node.
type fleetNode struct {
	id       int // 1-based; 0 in events means "no fleet"
	dead     atomic.Bool
	muted    atomic.Bool // heartbeats dropped (gray failure)
	odometer atomic.Int64
	beats    atomic.Int64
	dropped  atomic.Int64
	jobs     atomic.Int64
	store    *BundleStore // this node's bundle partition; nil when disabled
}

// leaseKey identifies one dispatched range of a job: sub 0 is the
// job's own (victim) dispatch, sub > 0 a stolen or re-pended sink
// chunk. A job and its stolen chunks hold independent leases, so one
// dying node loses only its own range.
type leaseKey struct {
	job JobID
	sub int
}

// lease is one dispatch's liveness contract.
type lease struct {
	job     JobID
	sub     int
	name    string
	node    int
	attempt int
	expires int64 // fleet clock deadline; renewed on every heartbeat
	units   int64 // units metered against this attempt (checkpoint-granular)
}

// fleet is the coordinator-side state of the worker fleet.
type fleet struct {
	nodes []*fleetNode
	plan  *faultinject.Plan
	// requeue is Scheduler.requeueJob; units is the charged work the
	// expired lease had metered (the lost progress, which the tracer
	// anchors the handoff span at).
	requeue func(id JobID, sub, from, attempt int, units int64)
	wake    func() // Scheduler cond broadcast
	allDead func() // fail the still-queued jobs
	clock   atomic.Int64

	// Tunables, threaded from service.Config (simtime constants are the
	// defaults).
	ttl         int64
	handoffCost int64
	backoff     int64

	mu     sync.Mutex
	leases map[leaseKey]*lease

	handoffs     atomic.Int64
	expired      atomic.Int64
	lostUnits    atomic.Int64
	overhead     atomic.Int64
	localGets    atomic.Int64
	remoteGets   atomic.Int64
	remoteUnits  atomic.Int64
	fetchFaults  atomic.Int64
	steals       atomic.Int64
	stealVictims atomic.Int64
	stolenSinks  atomic.Int64
	stealUnits   atomic.Int64
}

// newFleet builds the node set. storeBudget >= 0 gives every node a
// bundle partition with that byte budget (sharing one shard-dedup
// layer, like the single shared store does); < 0 disables partitions.
func newFleet(nodes int, storeBudget int64, plan *faultinject.Plan, ttl, handoffCost, backoff int64) *fleet {
	f := &fleet{
		plan:        plan,
		leases:      make(map[leaseKey]*lease),
		ttl:         ttl,
		handoffCost: handoffCost,
		backoff:     backoff,
	}
	var shards *ShardStore
	if storeBudget >= 0 {
		shards = NewShardStore()
	}
	for i := 1; i <= nodes; i++ {
		n := &fleetNode{id: i}
		if storeBudget >= 0 {
			n.store = NewBundleStore(storeBudget)
			n.store.AttachShardStore(shards)
		}
		f.nodes = append(f.nodes, n)
	}
	return f
}

func (f *fleet) nodeDead(node int) bool { return f.nodes[node-1].dead.Load() }

func (f *fleet) partitioned() bool { return f.nodes[0].store != nil }

func (f *fleet) liveCount() int {
	live := 0
	for _, n := range f.nodes {
		if !n.dead.Load() {
			live++
		}
	}
	return live
}

// maxAttempts bounds re-dispatches per job: past it the job fails
// terminally instead of bouncing forever between dying nodes.
func (f *fleet) maxAttempts() int { return 2*len(f.nodes) + 1 }

// fence marks a node dead and wakes the dispatcher: a fenced node
// pulls no more work and its running attempt aborts at its next meter
// checkpoint. When the last live node is fenced, the still-queued jobs
// are failed instead of waiting for workers that no longer exist.
func (f *fleet) fence(node int) {
	n := f.nodes[node-1]
	if n.dead.Swap(true) {
		return
	}
	if f.wake != nil {
		f.wake()
	}
	if f.liveCount() == 0 && f.allDead != nil {
		f.allDead()
	}
}

// kill is the `die node=N` entry point.
func (f *fleet) kill(node int) error {
	if node < 1 || node > len(f.nodes) {
		return fmt.Errorf("service: node %d out of range (fleet of %d)", node, len(f.nodes))
	}
	if f.nodes[node-1].dead.Load() {
		return fmt.Errorf("service: node %d already dead", node)
	}
	f.fence(node)
	return nil
}

// killSweep fires the plan's node kills whose fleet-clock instant has
// passed — over every node, not just the polling one, so a kill aimed
// at a node that happens to be idle still fires at its simulated time
// instead of waiting for work that may never arrive.
func (f *fleet) killSweep(now int64) {
	for _, n := range f.nodes {
		if !n.dead.Load() && f.plan.KillNode(n.id, now) {
			f.fence(n.id)
		}
	}
}

// pullKill is polled by a node before it pulls a job: a clock-keyed
// kill whose instant has passed fires here — the node died between
// jobs (the mid-queue scenario). It reports whether the polling node
// is dead.
func (f *fleet) pullKill(node int) bool {
	n := f.nodes[node-1]
	if n.dead.Load() {
		return true
	}
	f.killSweep(f.clock.Load())
	return n.dead.Load()
}

// grant registers the lease of a freshly dispatched attempt of one
// range (sub 0 = the whole job / victim range, sub > 0 = a chunk).
func (f *fleet) grant(id JobID, sub int, name string, node, attempt int) {
	now := f.clock.Load()
	f.mu.Lock()
	f.leases[leaseKey{id, sub}] = &lease{
		job: id, sub: sub, name: name, node: node, attempt: attempt,
		expires: now + f.ttl,
	}
	f.mu.Unlock()
}

// release retires an attempt's lease when the attempt finishes its
// range. A stale release (the lease expired and was handed off) is a
// no-op.
func (f *fleet) release(id JobID, sub int, node, attempt int) {
	f.mu.Lock()
	k := leaseKey{id, sub}
	if l := f.leases[k]; l != nil && l.node == node && l.attempt == attempt {
		delete(f.leases, k)
	}
	f.mu.Unlock()
	f.nodes[node-1].jobs.Add(1)
}

// leaseUnits reports the units metered so far against one dispatch —
// the steal trigger's "has this job ground long enough" probe.
func (f *fleet) leaseUnits(id JobID, sub int) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if l := f.leases[leaseKey{id, sub}]; l != nil {
		return l.units
	}
	return 0
}

// tick is the heartbeat: the engine's meter calls it (through the
// Heartbeat hook) at every cancellation checkpoint with the units the
// attempt charged since the previous one. It advances the node
// odometer and the fleet clock by that delta, meters the attempt's
// lease, consults the fault plan, renews (or drops) the heartbeat and
// sweeps expired leases. It returns true when the node executing the
// attempt is dead — the engine then aborts the run at this checkpoint.
func (f *fleet) tick(node int, id JobID, sub int, name string, attempt int, delta int64) bool {
	n := f.nodes[node-1]
	if n.dead.Load() {
		return true
	}
	odom := n.odometer.Add(delta)
	now := f.clock.Add(delta)

	k := leaseKey{id, sub}
	var units int64
	f.mu.Lock()
	if l := f.leases[k]; l != nil && l.node == node && l.attempt == attempt {
		l.units += delta
		units = l.units
	}
	f.mu.Unlock()

	f.killSweep(now)
	if n.dead.Load() {
		return true
	}
	if f.plan.KillJob(node, name, attempt, units) {
		f.fence(node)
		return true
	}
	if f.plan.DropHeartbeat(node, odom) {
		n.muted.Store(true)
		n.dropped.Add(1)
	} else {
		n.beats.Add(1)
		f.mu.Lock()
		if l := f.leases[k]; l != nil && l.node == node && l.attempt == attempt {
			l.expires = now + f.ttl
		}
		f.mu.Unlock()
	}
	f.sweep(now)
	return n.dead.Load()
}

// abandon is the death certificate of a killed node's running attempt.
// The worker goroutine survives (only the modeled node died); it
// advances the fleet clock by the lease TTL — the coordinator noticing
// the silent node — charges that detection latency as overhead and
// sweeps, which expires this attempt's lease and requeues the job on a
// surviving node. If a concurrent sweep already handed the job off,
// nothing is charged twice.
func (f *fleet) abandon(id JobID, sub int, node, attempt int) {
	f.mu.Lock()
	l := f.leases[leaseKey{id, sub}]
	mine := l != nil && l.node == node && l.attempt == attempt
	f.mu.Unlock()
	if !mine {
		return
	}
	now := f.clock.Add(f.ttl)
	f.overhead.Add(f.ttl)
	f.sweep(now)
}

// sweep expires the leases of dead and muted nodes once the fleet
// clock passes their TTL. The holder is fenced — a node that lost a
// lease is dead to the fleet even if it is still secretly working (the
// gray-failure rule; its late terminal is suppressed by the at-most-
// once settle in Scheduler.finish) — and each lost job is handed back
// to the scheduler. Victims are processed in job order so multi-expiry
// handoffs are deterministic. Leases of live, heartbeating nodes never
// expire here: expiry requires the holder to be dead or mute, so real
// goroutine-scheduling jitter can not fence a healthy node.
func (f *fleet) sweep(now int64) {
	var victims []*lease
	f.mu.Lock()
	for k, l := range f.leases {
		n := f.nodes[l.node-1]
		if now >= l.expires && (n.dead.Load() || n.muted.Load()) {
			delete(f.leases, k)
			victims = append(victims, l)
		}
	}
	f.mu.Unlock()
	if len(victims) == 0 {
		return
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].job != victims[j].job {
			return victims[i].job < victims[j].job
		}
		return victims[i].sub < victims[j].sub
	})
	for _, l := range victims {
		f.expired.Add(1)
		f.lostUnits.Add(l.units)
		f.fence(l.node)
		if f.requeue != nil {
			f.requeue(l.job, l.sub, l.node, l.attempt, l.units)
		}
	}
}

// handoffUnits prices one re-dispatch of the given attempt: the flat
// handoff plus an exponential per-attempt backoff.
func (f *fleet) handoffUnits(attempt int) int64 {
	shift := attempt - 1
	if shift > 6 {
		shift = 6
	}
	return f.handoffCost + f.backoff<<shift
}

// chargeHandoff charges one re-dispatch, advancing the fleet clock and
// the overhead account.
func (f *fleet) chargeHandoff(attempt int) {
	units := f.handoffUnits(attempt)
	f.clock.Add(units)
	f.overhead.Add(units)
	f.handoffs.Add(1)
}

// chargeSteal prices one chunk steal: the flat coordinator cost of
// fencing the victim's range and dispatching the chunk, advancing the
// fleet clock and the overhead and steal accounts. first marks the
// job's first steal (the victim counter counts jobs, not chunks).
func (f *fleet) chargeSteal(sinks int, first bool) {
	f.clock.Add(simtime.StealUnits)
	f.overhead.Add(simtime.StealUnits)
	f.stealUnits.Add(simtime.StealUnits)
	f.steals.Add(1)
	f.stolenSinks.Add(int64(sinks))
	if first {
		f.stealVictims.Add(1)
	}
}

// owner returns the node owning fp's bundle under rendezvous
// (highest-random-weight) hashing over the live nodes, or 0 when every
// node is dead. Dead nodes drop out of the ring, so only the keys they
// owned move — their bundles rebuild cold on the surviving owners,
// which can never change a report, only re-pay a build.
func (f *fleet) owner(fp uint64) int {
	best, bestScore := 0, uint64(0)
	for _, n := range f.nodes {
		if n.dead.Load() {
			continue
		}
		score := mix64(fp ^ uint64(n.id)*0x9e3779b97f4a7c15)
		if best == 0 || score > bestScore {
			best, bestScore = n.id, score
		}
	}
	return best
}

// mix64 is the splitmix64 finalizer — the avalanche step that makes
// per-node rendezvous scores independent.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// view returns the node's window onto the partitioned bundle store,
// or nil when partitions are disabled.
func (f *fleet) view(node int) *fleetView {
	if !f.partitioned() {
		return nil
	}
	return &fleetView{f: f, node: node}
}

// stats snapshots the fleet counters.
func (f *fleet) stats() *FleetStats {
	fs := &FleetStats{
		Nodes:         len(f.nodes),
		Clock:         f.clock.Load(),
		Handoffs:      f.handoffs.Load(),
		ExpiredLeases: f.expired.Load(),
		LostUnits:     f.lostUnits.Load(),
		OverheadUnits: f.overhead.Load(),
		LocalGets:     f.localGets.Load(),
		RemoteGets:    f.remoteGets.Load(),
		RemoteUnits:   f.remoteUnits.Load(),
		FetchFaults:   f.fetchFaults.Load(),
		Steals:        f.steals.Load(),
		StealVictims:  f.stealVictims.Load(),
		StolenSinks:   f.stolenSinks.Load(),
		StealUnits:    f.stealUnits.Load(),
	}
	var agg StoreStats
	for _, n := range f.nodes {
		if u := n.odometer.Load(); u > fs.MakespanUnits {
			// The fleet clock sums every node's charged work plus overhead;
			// the makespan — what stealing actually shortens — is the
			// busiest single node's odometer.
			fs.MakespanUnits = u
		}
		ns := NodeStats{
			ID:      n.id,
			State:   "live",
			Units:   n.odometer.Load(),
			Jobs:    n.jobs.Load(),
			Beats:   n.beats.Load(),
			Dropped: n.dropped.Load(),
		}
		switch {
		case n.dead.Load():
			ns.State = "dead"
			fs.Killed++
		case n.muted.Load():
			ns.State = "muted"
			fs.Live++
		default:
			fs.Live++
		}
		if n.store != nil {
			ns.Store = n.store.Stats()
			agg.Entries += ns.Store.Entries
			agg.Bytes += ns.Store.Bytes
			agg.Hits += ns.Store.Hits
			agg.Misses += ns.Store.Misses
			agg.Puts += ns.Store.Puts
			agg.Refreshes += ns.Store.Refreshes
			agg.Evictions += ns.Store.Evictions
			agg.Drops += ns.Store.Drops
		}
		fs.PerNode = append(fs.PerNode, ns)
	}
	if f.partitioned() {
		fs.Store = &agg
	}
	return fs
}

// fleetView is one node's window onto the fleet's consistent-hashed
// bundle placement: every operation routes to the fingerprint's owner
// partition, counting local vs remote traffic and charging the remote
// placement detour. It satisfies the scheduler's jobStore surface and
// core.BundleCache (plus the optional DropBundle seam).
type fleetView struct {
	f    *fleet
	node int
}

func (v *fleetView) route(fp uint64) *BundleStore {
	owner := v.f.owner(fp)
	if owner == 0 {
		return nil
	}
	return v.f.nodes[owner-1].store
}

// GetBundle fetches from the owner partition. A plan-injected fetch
// fault turns the probe into a miss — the engine rebuilds cold, which
// can never change the report.
func (v *fleetView) GetBundle(fp uint64) ([]byte, bool) {
	if v.f.plan.FailFetch(fp) {
		v.f.fetchFaults.Add(1)
		return nil, false
	}
	owner := v.f.owner(fp)
	if owner == 0 {
		return nil, false
	}
	if owner == v.node {
		v.f.localGets.Add(1)
	} else {
		v.f.remoteGets.Add(1)
		v.f.remoteUnits.Add(simtime.RemoteFetchUnits)
		v.f.clock.Add(simtime.RemoteFetchUnits)
	}
	return v.f.nodes[owner-1].store.GetBundle(fp)
}

// PutBundle publishes to the owner partition under the current live
// set. If the owner died since a sibling's Get, the bundle simply
// lands on the new owner — content addressing makes any copy valid.
func (v *fleetView) PutBundle(fp uint64, data []byte) {
	if s := v.route(fp); s != nil {
		s.PutBundle(fp, data)
	}
}

// DropBundle evicts a failed-validation bundle from its owner
// partition (the engine's optional drop seam).
func (v *fleetView) DropBundle(fp uint64) {
	if s := v.route(fp); s != nil {
		s.DropBundle(fp)
	}
}

// Contains probes the owner partition without touching counters.
func (v *fleetView) Contains(fp uint64) bool {
	s := v.route(fp)
	return s != nil && s.Contains(fp)
}

// LockFingerprint serializes construction on the owner partition, so
// the single-build guarantee holds fleet-wide, not just per node.
func (v *fleetView) LockFingerprint(fp uint64) func() {
	s := v.route(fp)
	if s == nil {
		return func() {}
	}
	return s.LockFingerprint(fp)
}
