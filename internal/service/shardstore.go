package service

import (
	"sync"

	"backdroid/internal/dexdump"
)

// ShardStats are the counters of a ShardStore, taken atomically.
type ShardStats struct {
	Entries      int   // distinct shard payloads held
	Bytes        int64 // unique bytes held
	Puts         int64 // new shard payloads learned
	Hits         int64 // observed shards already present (dedup hits)
	Misses       int64 // Get probes that found nothing
	BytesDeduped int64 // bytes not re-stored because an identical payload existed
}

// ShardStore is the corpus-wide shard-level content store below the
// BundleStore: encoded per-shard postings payloads keyed by shard
// fingerprint (dexdump.Manifest.ShardFingerprints). Two bundles whose
// shards have identical class contents — two versions of an app that
// changed one class, or two apps embedding the same SDK dex — share one
// stored payload, so the marginal index bytes of an app update are only
// its changed shards.
//
// Unlike the BundleStore, the shard store never evicts: it is the
// cross-app dedup layer, and its value is exactly that it outlives any
// single bundle's LRU lifetime. Its memory is bounded by the unique
// shard contents of the corpus, which dedup keeps far below the sum of
// bundle sizes.
//
// A ShardStore is safe for concurrent use. Attach one to a BundleStore
// with AttachShardStore; every admitted bundle then feeds it.
type ShardStore struct {
	mu    sync.Mutex
	blobs map[uint64][]byte
	stats ShardStats
}

// NewShardStore builds an empty shard store.
func NewShardStore() *ShardStore {
	return &ShardStore{blobs: make(map[uint64][]byte)}
}

// AttachShardStore connects the shard store to this bundle store: every
// subsequently admitted bundle's shard payloads are observed. Attach
// before the first Put; attaching is not retroactive.
func (s *BundleStore) AttachShardStore(ss *ShardStore) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shards = ss
}

// ShardStoreStats returns the attached shard store's counters (zero
// stats when none is attached).
func (s *BundleStore) ShardStoreStats() ShardStats {
	s.mu.Lock()
	ss := s.shards
	s.mu.Unlock()
	if ss == nil {
		return ShardStats{}
	}
	return ss.Stats()
}

// Observe splits a v3 bundle into per-shard payloads and stores each
// payload under its shard fingerprint. Payloads already present count as
// dedup hits and their bytes as deduped. Bundles without a readable
// manifest (v2, damaged) teach the store nothing.
func (s *ShardStore) Observe(bundle []byte) {
	fps, payloads, ok := dexdump.ShardPayloads(bundle)
	if !ok {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, fp := range fps {
		p := payloads[i]
		if _, present := s.blobs[fp]; present {
			s.stats.Hits++
			s.stats.BytesDeduped += int64(len(p))
			continue
		}
		// The subslice shares the bundle's backing array; bundle bytes
		// are immutable once stored, so no copy is needed.
		s.blobs[fp] = p
		s.stats.Puts++
		s.stats.Bytes += int64(len(p))
	}
}

// Get returns the stored payload for a shard fingerprint.
func (s *ShardStore) Get(fingerprint uint64) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.blobs[fingerprint]
	if !ok {
		s.stats.Misses++
	}
	return p, ok
}

// Stats returns the current counters.
func (s *ShardStore) Stats() ShardStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.blobs)
	return st
}
