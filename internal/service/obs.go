// Metrics registration: the scheduler's one collector, turning every
// scattered Stats struct — control plane, tenants, fleet and its nodes,
// bundle/shard/report stores, the journal — into registry series. The
// registry is pull-model, so this file is the only place the metric
// names exist: /metrics, the stats JSON and the stdin stats lines all
// render from the same Snapshot, and the api parity test walks the
// snapshot to prove no series is missing from any surface.
package service

import (
	"fmt"

	"backdroid/internal/obs"
)

// registerMetrics installs the scheduler's collector into the resolved
// registry. Called once from New; the collector reads live counters at
// snapshot time (all the Stats() methods are concurrency-safe), so
// registration costs nothing on the dispatch path.
func (s *Scheduler) registerMetrics() {
	s.metrics.Register(func(g *obs.Gather) {
		st := s.Stats()
		g.Counter("backdroid_dispatched_total", st.Dispatched)
		g.Counter("backdroid_journal_units", st.JournalUnits)
		for _, t := range st.Tenants {
			l := obs.L("tenant", t.Name)
			g.Gauge("backdroid_tenant_queued", int64(t.Queued), l)
			g.Counter("backdroid_tenant_submitted_total", t.Submitted, l)
			g.Counter("backdroid_tenant_dispatched_total", t.Dispatched, l)
			g.Counter("backdroid_tenant_requeued_total", t.Requeued, l)
			g.Counter("backdroid_tenant_canceled_queued_total", t.CanceledQueued, l)
			g.Counter("backdroid_tenant_canceled_running_total", t.CanceledRunning, l)
		}
		if fs := st.Fleet; fs != nil {
			g.Gauge("backdroid_fleet_nodes", int64(fs.Nodes))
			g.Gauge("backdroid_fleet_live", int64(fs.Live))
			g.Counter("backdroid_fleet_killed_total", int64(fs.Killed))
			g.Counter("backdroid_fleet_clock_units", fs.Clock)
			g.Counter("backdroid_fleet_handoffs_total", fs.Handoffs)
			g.Counter("backdroid_fleet_expired_leases_total", fs.ExpiredLeases)
			g.Counter("backdroid_fleet_lost_units", fs.LostUnits)
			g.Counter("backdroid_fleet_overhead_units", fs.OverheadUnits)
			g.Counter("backdroid_fleet_local_gets_total", fs.LocalGets)
			g.Counter("backdroid_fleet_remote_gets_total", fs.RemoteGets)
			g.Counter("backdroid_fleet_remote_units", fs.RemoteUnits)
			g.Counter("backdroid_fleet_fetch_faults_total", fs.FetchFaults)
			g.Counter("backdroid_fleet_steals_total", fs.Steals)
			g.Counter("backdroid_fleet_steal_victims_total", fs.StealVictims)
			g.Counter("backdroid_fleet_stolen_sinks_total", fs.StolenSinks)
			g.Counter("backdroid_fleet_steal_units", fs.StealUnits)
			g.Gauge("backdroid_fleet_makespan_units", fs.MakespanUnits)
			for _, n := range fs.PerNode {
				l := obs.L("node", fmt.Sprint(n.ID))
				live := int64(0)
				if n.State != "dead" {
					live = 1
				}
				g.Gauge("backdroid_node_live", live, l)
				g.Counter("backdroid_node_units", n.Units, l)
				g.Counter("backdroid_node_jobs_total", n.Jobs, l)
				g.Counter("backdroid_node_beats_total", n.Beats, l)
				g.Counter("backdroid_node_dropped_beats_total", n.Dropped, l)
			}
			if fs.Store != nil {
				storeMetrics(g, "backdroid_fleetstore", *fs.Store)
			}
		}
		if s.cfg.Store != nil {
			storeMetrics(g, "backdroid_store", s.cfg.Store.Stats())
			sh := s.cfg.Store.ShardStoreStats()
			g.Gauge("backdroid_shardstore_entries", int64(sh.Entries))
			g.Gauge("backdroid_shardstore_bytes", sh.Bytes)
			g.Counter("backdroid_shardstore_puts_total", sh.Puts)
			g.Counter("backdroid_shardstore_hits_total", sh.Hits)
			g.Counter("backdroid_shardstore_misses_total", sh.Misses)
			g.Counter("backdroid_shardstore_bytes_deduped", sh.BytesDeduped)
		}
		if rs := s.cfg.Reports; rs != nil {
			r := rs.Stats()
			g.Gauge("backdroid_reports_entries", int64(r.Entries))
			g.Gauge("backdroid_reports_bytes", r.Bytes)
			g.Counter("backdroid_reports_hits_total", r.Hits)
			g.Counter("backdroid_reports_misses_total", r.Misses)
			g.Counter("backdroid_reports_puts_total", r.Puts)
			g.Counter("backdroid_reports_refreshes_total", r.Refreshes)
			g.Counter("backdroid_reports_evictions_total", r.Evictions)
			g.Counter("backdroid_reports_journaled_total", r.Journaled)
			g.Counter("backdroid_reports_skipped_total", r.Skipped)
			g.Counter("backdroid_reports_recovered_total", r.Recovered)
			g.Counter("backdroid_reports_damaged_total", r.Damaged)
		}
		if j := s.cfg.Journal; j != nil {
			js := j.Stats()
			g.Gauge("backdroid_journal_records", js.Records)
			g.Gauge("backdroid_journal_bytes", js.Bytes)
			g.Gauge("backdroid_journal_pending", int64(js.Pending))
			g.Gauge("backdroid_journal_reports", int64(js.Reports))
			g.Counter("backdroid_journal_appends_total", js.Appends)
			g.Counter("backdroid_journal_compactions_total", js.Compactions)
			g.Counter("backdroid_journal_recovered_total", js.Recovered)
			g.Counter("backdroid_journal_dropped_bytes", js.Dropped)
		}
	})
}

// storeMetrics emits one BundleStore counter block under a prefix —
// shared by the scheduler's Config.Store and the fleet's partition
// aggregate.
func storeMetrics(g *obs.Gather, prefix string, ss StoreStats) {
	g.Gauge(prefix+"_entries", int64(ss.Entries))
	g.Gauge(prefix+"_bytes", ss.Bytes)
	g.Counter(prefix+"_hits_total", ss.Hits)
	g.Counter(prefix+"_misses_total", ss.Misses)
	g.Counter(prefix+"_puts_total", ss.Puts)
	g.Counter(prefix+"_refreshes_total", ss.Refreshes)
	g.Counter(prefix+"_evictions_total", ss.Evictions)
	g.Counter(prefix+"_drops_total", ss.Drops)
}
