package service

import (
	"bytes"
	"math/rand"
	"testing"

	"backdroid/internal/android"
	"backdroid/internal/appgen"
	"backdroid/internal/bcsearch"
	"backdroid/internal/core"
)

// chunkParitySpec is a scaled-down many-sink outlier: enough sinks that
// random chunkings are non-trivial, small enough that running a dozen
// partitions per configuration stays fast.
func chunkParitySpec() appgen.Spec {
	sinks := make([]appgen.SinkSpec, 0, 24)
	for s := 0; s < 24; s++ {
		sinks = append(sinks, appgen.SinkSpec{
			Flow:     appgen.FlowSharedConfig,
			Rule:     android.RuleCryptoECB,
			Insecure: s%3 != 0,
		})
	}
	return appgen.Spec{Name: "com.chunk.parity", Seed: 777, SizeMB: 2, Sinks: sinks}
}

// randomChunking partitions [0, total) into contiguous ranges with
// random cut points.
func randomChunking(rng *rand.Rand, total int) []core.ChunkRange {
	var ranges []core.ChunkRange
	from := 0
	for from < total {
		size := 1 + rng.Intn(total/2+1)
		to := from + size
		if to > total {
			to = total
		}
		ranges = append(ranges, core.ChunkRange{From: from, To: to})
		from = to
	}
	return ranges
}

// TestMergeReportsChunkingParity is the tentpole's core property: for
// every chunking of the canonical sink list — random partitions, chunks
// shuffled to arrive out of order, plus overlapping ranges — MergeReports
// over the per-chunk partial reports is bitwise-identical (in canonical
// settled encoding) to the single-pass run, across both search backends
// and with the per-app SSG on and off. All chunks run against the same
// shared bundle store, so only the first run pays the disassembly.
func TestMergeReportsChunkingParity(t *testing.T) {
	app, _, err := appgen.Generate(chunkParitySpec())
	if err != nil {
		t.Fatal(err)
	}
	configs := []struct {
		name      string
		backend   bcsearch.BackendKind
		perAppSSG bool
	}{
		{"indexed", bcsearch.BackendIndexed, false},
		{"sharded", bcsearch.BackendSharded, false},
		{"indexed-perapp", bcsearch.BackendIndexed, true},
		{"sharded-perapp", bcsearch.BackendSharded, true},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			store := NewBundleStore(0)
			base := core.DefaultOptions()
			base.SearchBackend = cfg.backend
			base.PerAppSSG = cfg.perAppSSG
			base.Bundles = store

			runRange := func(cr *core.ChunkRange) *core.Report {
				t.Helper()
				o := base
				o.ChunkRange = cr
				e, err := core.New(app, o)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := e.Analyze()
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}

			ref := runRange(nil)
			total := len(ref.Sinks)
			if total != 24 {
				t.Fatalf("reference run found %d sinks, want 24", total)
			}
			refBytes := EncodeReport(ref)

			rng := rand.New(rand.NewSource(20210621))
			for trial := 0; trial < 5; trial++ {
				ranges := randomChunking(rng, total)
				rng.Shuffle(len(ranges), func(i, j int) { ranges[i], ranges[j] = ranges[j], ranges[i] })
				parts := make([]*core.Report, len(ranges))
				for i := range ranges {
					parts[i] = runRange(&ranges[i])
				}
				merged := core.MergeReports(parts...)
				if !bytes.Equal(EncodeReport(merged), refBytes) {
					t.Fatalf("trial %d: merge of chunking %v diverged from the single pass:\n%s\nvs\n%s",
						trial, ranges, detectionKey(merged), detectionKey(ref))
				}
				if merged.Stats.SinkCallsTotal != ref.Stats.SinkCallsTotal {
					t.Fatalf("trial %d: merged SinkCallsTotal = %d, want %d",
						trial, merged.Stats.SinkCallsTotal, ref.Stats.SinkCallsTotal)
				}
			}

			// Overlap tolerance: a sink finished by the victim right as it
			// was stolen appears in two parts; the merge dedups it.
			a := runRange(&core.ChunkRange{From: 0, To: 14})
			b := runRange(&core.ChunkRange{From: 10, To: total})
			if !bytes.Equal(EncodeReport(core.MergeReports(a, b)), refBytes) {
				t.Fatal("overlapping chunk merge diverged from the single pass")
			}

			// Clamping: out-of-range bounds degrade to the valid window.
			c := runRange(&core.ChunkRange{From: -3, To: 14})
			d := runRange(&core.ChunkRange{From: 14, To: total + 99})
			if !bytes.Equal(EncodeReport(core.MergeReports(d, c)), refBytes) {
				t.Fatal("clamped chunk merge diverged from the single pass")
			}
		})
	}
}

// TestMergeReportsSumsWork pins the accounting half of the merge: the
// merged WorkUnits are the sum over every chunk (the total charged
// across the fleet), SimMinutes is recomputed from that sum, and the
// header fields union correctly.
func TestMergeReportsSumsWork(t *testing.T) {
	app, _, err := appgen.Generate(chunkParitySpec())
	if err != nil {
		t.Fatal(err)
	}
	store := NewBundleStore(0)
	o := core.DefaultOptions()
	o.Bundles = store
	run := func(cr *core.ChunkRange) *core.Report {
		t.Helper()
		oo := o
		oo.ChunkRange = cr
		e, err := core.New(app, oo)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := e.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	ref := run(nil)
	half := len(ref.Sinks) / 2
	a := run(&core.ChunkRange{From: 0, To: half})
	b := run(&core.ChunkRange{From: half, To: len(ref.Sinks)})
	m := core.MergeReports(a, b)
	if want := a.Stats.WorkUnits + b.Stats.WorkUnits; m.Stats.WorkUnits != want {
		t.Fatalf("merged WorkUnits = %d, want %d", m.Stats.WorkUnits, want)
	}
	if m.Stats.SimMinutes <= 0 {
		t.Fatalf("merged SimMinutes = %v", m.Stats.SimMinutes)
	}
	if m.App != ref.App || len(m.Registered) != len(ref.Registered) {
		t.Fatalf("merged header %q/%d, want %q/%d", m.App, len(m.Registered), ref.App, len(ref.Registered))
	}
	if core.MergeReports() == nil {
		t.Fatal("empty merge returned nil")
	}
	if got := core.MergeReports(nil, a, nil); len(got.Sinks) != half {
		t.Fatalf("nil-tolerant merge kept %d sinks, want %d", len(got.Sinks), half)
	}
}
