package service

import (
	"bytes"
	"hash/crc32"
	"reflect"
	"testing"

	"backdroid/internal/android"
	"backdroid/internal/core"
	"backdroid/internal/dex"
)

// codecTestReport hand-builds a report exercising every encoded field:
// multiple sinks, method refs with parameters, entries, values and every
// flag combination the codec packs.
func codecTestReport() *core.Report {
	caller := dex.NewMethodRef("com.example.Main", "onCreate", dex.Void, dex.T("android.os.Bundle"))
	entry := dex.NewMethodRef("com.example.Main", "main", dex.Void)
	return &core.Report{
		App:        "com.example.codec",
		TimedOut:   false,
		Registered: []string{"Lcom/example/Main;", "Lcom/example/Recv;"},
		Sinks: []*core.SinkReport{
			{
				Call: core.SinkCall{
					Sink: android.Sink{
						Method:     android.CipherGetInstance,
						ParamIndex: 0,
						Rule:       android.RuleCryptoECB,
					},
					Caller:    caller,
					UnitIndex: 12,
					Line:      340,
				},
				Reachable: true,
				Insecure:  true,
				Entries:   []dex.MethodRef{entry, caller},
				Values:    []string{`"AES/ECB/PKCS5Padding"`, "<unknown>"},
			},
			{
				Call: core.SinkCall{
					Sink: android.Sink{
						Method:     android.CipherGetInstance,
						ParamIndex: 0,
						Rule:       android.RuleCryptoECB,
					},
					Caller:    entry,
					UnitIndex: 3,
					Line:      17,
				},
				Reachable: false,
				Cached:    true,
				Reused:    true,
				Values:    nil,
			},
		},
	}
}

// TestReportCodecRoundTrip pins the canonical encoding: decode inverts
// encode on the detection surface, and re-encoding the decoded report
// reproduces the exact bytes (the bitwise-identity property the settled
// tier is built on).
func TestReportCodecRoundTrip(t *testing.T) {
	r := codecTestReport()
	enc := EncodeReport(r)
	if !bytes.Equal(enc, EncodeReport(r)) {
		t.Fatal("EncodeReport not deterministic")
	}
	dec, err := DecodeReport(enc)
	if err != nil {
		t.Fatalf("DecodeReport: %v", err)
	}
	if !bytes.Equal(EncodeReport(dec), enc) {
		t.Fatal("re-encoding the decoded report changed the bytes")
	}
	if dec.App != r.App || dec.TimedOut != r.TimedOut ||
		!reflect.DeepEqual(dec.Registered, r.Registered) {
		t.Fatalf("decoded header = %q/%v/%v", dec.App, dec.TimedOut, dec.Registered)
	}
	if len(dec.Sinks) != len(r.Sinks) {
		t.Fatalf("decoded %d sinks, want %d", len(dec.Sinks), len(r.Sinks))
	}
	for i := range r.Sinks {
		want, got := r.Sinks[i], dec.Sinks[i]
		if got.Call.String() != want.Call.String() || got.Call.Line != want.Call.Line {
			t.Fatalf("sink %d call = %v line=%d, want %v line=%d",
				i, got.Call, got.Call.Line, want.Call, want.Call.Line)
		}
		if got.Reachable != want.Reachable || got.Insecure != want.Insecure ||
			got.Reused != want.Reused {
			t.Fatalf("sink %d flags = %+v, want %+v", i, got, want)
		}
		if got.Cached {
			// Cached is run-local (engine-run cache co-residency) and was
			// dropped from the encoding in codec v2; decode leaves it false.
			t.Fatalf("sink %d decoded Cached=true; v2 must not carry it", i)
		}
		if !reflect.DeepEqual(got.Entries, want.Entries) {
			t.Fatalf("sink %d entries = %v, want %v", i, got.Entries, want.Entries)
		}
		if len(got.Values) != len(want.Values) || !reflect.DeepEqual(append([]string{}, got.Values...), append([]string{}, want.Values...)) {
			t.Fatalf("sink %d values = %v, want %v", i, got.Values, want.Values)
		}
	}
}

// TestReportCodecExcludesStats pins the identity property directly: two
// reports equal on the detection surface but with wildly different Stats
// encode to the same bytes — a cold run and its settled replay are
// indistinguishable in canonical form.
func TestReportCodecExcludesStats(t *testing.T) {
	a := codecTestReport()
	b := codecTestReport()
	b.Stats = core.Stats{WorkUnits: 123456, SettledLookups: 1, MethodsAnalyzed: 42}
	if !bytes.Equal(EncodeReport(a), EncodeReport(b)) {
		t.Fatal("Stats leaked into the canonical encoding")
	}
}

// TestReportCodecExcludesCached pins the v2 change the chunk merge
// depends on: whether a sink hit the engine-run-local reachability
// cache depends on which sinks shared that run, so a chunked and a
// single-pass analysis legitimately differ on Cached — the canonical
// encoding must not see it.
func TestReportCodecExcludesCached(t *testing.T) {
	a := codecTestReport()
	b := codecTestReport()
	for _, s := range b.Sinks {
		s.Cached = !s.Cached
	}
	if !bytes.Equal(EncodeReport(a), EncodeReport(b)) {
		t.Fatal("Cached leaked into the canonical encoding")
	}
}

// TestReportCodecTimedOutDistinct pins that the timeout verdict is part
// of the surface: a truncated run must not alias a complete one.
func TestReportCodecTimedOutDistinct(t *testing.T) {
	a := codecTestReport()
	b := codecTestReport()
	b.TimedOut = true
	if bytes.Equal(EncodeReport(a), EncodeReport(b)) {
		t.Fatal("TimedOut not encoded")
	}
	dec, err := DecodeReport(EncodeReport(b))
	if err != nil || !dec.TimedOut {
		t.Fatalf("decoded TimedOut = %v (err %v), want true", dec != nil && dec.TimedOut, err)
	}
}

// TestReportCodecCorruptionFuzz mirrors the journal fuzz: every
// single-byte flip and every truncation of a valid encoding must decode
// as an error — a damaged settled entry degrades to a store miss, never
// to a wrong report or a panic.
func TestReportCodecCorruptionFuzz(t *testing.T) {
	good := EncodeReport(codecTestReport())
	check := func(name string, data []byte) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: DecodeReport panicked: %v", name, r)
			}
		}()
		if _, err := DecodeReport(data); err == nil {
			t.Fatalf("%s: damaged encoding decoded cleanly", name)
		}
	}
	for off := 0; off < len(good); off++ {
		data := append([]byte(nil), good...)
		data[off] ^= 0xa5
		check("flip", data)
	}
	for cut := 0; cut < len(good); cut++ {
		check("truncate", good[:cut])
	}
	check("trailing", append(append([]byte(nil), good...), 0x00))
	check("empty", nil)
}

// TestReportCodecVersionGate pins that a future layout bump reads as a
// miss, not as garbage: flipping the version field must fail the decode
// even with a fixed-up CRC.
func TestReportCodecVersionGate(t *testing.T) {
	r := &core.Report{App: "v"}
	enc := EncodeReport(r)
	// Rebuild with a bumped version and a valid CRC over the new body.
	body := append([]byte(nil), enc[4:len(enc)-4]...)
	body[0]++ // version low byte
	forged := append([]byte(reportMagic), body...)
	forged = putU32(forged, crc32.ChecksumIEEE(body))
	if _, err := DecodeReport(forged); err == nil {
		t.Fatal("unknown codec version decoded cleanly")
	}
}
