package service

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"

	"backdroid/internal/android"
	"backdroid/internal/appgen"
	"backdroid/internal/faultinject"
	"backdroid/internal/service/journal"
	"backdroid/internal/simtime"
)

// mustPlan parses a fault spec or fails the test.
func mustPlan(t *testing.T, spec string) *faultinject.Plan {
	t.Helper()
	p, err := faultinject.Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return p
}

// chaosSpec generates an app heavy enough (~640 work units at 4 MB)
// that a single attempt out-lives the lease TTL (simtime.LeaseTTLUnits
// = 512): lease expiry and mid-job kills need jobs whose metered run
// crosses several heartbeat checkpoints, where the scheduler tests'
// light testSpec apps finish in ~3.
func chaosSpec(i int) appgen.Spec {
	return appgen.Spec{
		Name:   fmt.Sprintf("com.chaos.app%d", i),
		Seed:   int64(4200 + i),
		SizeMB: 4,
		Sinks: []appgen.SinkSpec{
			{Flow: appgen.FlowDirect, Rule: android.RuleCryptoECB, Insecure: true},
			{Flow: appgen.FlowThread, Rule: android.RuleCryptoECB},
		},
	}
}

// chaosFromJournal rebuilds a chaos-corpus job from its journal record
// (Spec "chaos:N"), the fleet counterpart of specFromJournal.
func chaosFromJournal(rec journal.Record) (Job, bool) {
	i, err := strconv.Atoi(strings.TrimPrefix(rec.Spec, "chaos:"))
	if err != nil {
		return Job{}, false
	}
	return Job{
		Name: rec.Name, Tenant: rec.Tenant, Spec: rec.Spec,
		Source: sourceFor(chaosSpec(i)), RunBackDroid: true,
	}, true
}

// fleetRun is the outcome of one corpus run on a fleet: the per-app
// detection union, the terminal-event count per job (the at-most-once
// ledger), and the fleet counters after Close.
type fleetRun struct {
	keys      map[string]string // app name -> detection key
	terminals map[JobID]int     // terminal events observed per job
	started   map[JobID]int     // started events per job (attempts)
	stats     *FleetStats
}

// runFleetCorpus submits apps 0..n-1 on a fresh fleet scheduler and
// drains it. Faults may kill nodes mid-run; every job must still settle
// exactly once with a correct report unless the plan kills every node.
func runFleetCorpus(t *testing.T, nodes, n int, plan *faultinject.Plan, jnl *journal.Journal) fleetRun {
	t.Helper()
	events := make(chan Event, 16)
	run := fleetRun{
		keys:      make(map[string]string),
		terminals: make(map[JobID]int),
		started:   make(map[JobID]int),
	}
	var evWG sync.WaitGroup
	evWG.Add(1)
	go func() {
		defer evWG.Done()
		for ev := range events {
			switch ev.Kind {
			case EventStarted:
				run.started[ev.Job]++
			case EventDone, EventFailed, EventCanceled:
				run.terminals[ev.Job]++
			}
		}
	}()
	s := New(Config{
		Nodes:           nodes,
		NodeStoreBudget: 0, // unbounded per-node partitions
		Faults:          plan,
		Journal:         jnl,
		QueueDepth:      2 * n,
		Events:          events,
	})
	ids := make([]JobID, n)
	for i := 0; i < n; i++ {
		id, err := s.Submit(Job{
			Name: chaosSpec(i).Name, Spec: fmt.Sprintf("chaos:%d", i),
			Source: sourceFor(chaosSpec(i)), RunBackDroid: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for i, id := range ids {
		res, err := s.Wait(id)
		if err != nil {
			t.Fatalf("job %d (%s): %v", id, chaosSpec(i).Name, err)
		}
		run.keys[res.Name] = detectionKey(res.BackDroid)
	}
	s.Close()
	run.stats = s.FleetStats()
	close(events)
	evWG.Wait()
	return run
}

// requireUnionParity checks the chaos invariant: the detection-report
// union of a faulted run is byte-identical to the reference, and every
// job settled exactly once.
func requireUnionParity(t *testing.T, name string, ref, got fleetRun) {
	t.Helper()
	if len(got.keys) != len(ref.keys) {
		t.Fatalf("%s: %d reports, reference has %d", name, len(got.keys), len(ref.keys))
	}
	for app, want := range ref.keys {
		if got.keys[app] != want {
			t.Fatalf("%s: report for %s diverged under faults:\n%s\nvs reference\n%s",
				name, app, got.keys[app], want)
		}
	}
	for id, c := range got.terminals {
		if c != 1 {
			t.Fatalf("%s: job %d emitted %d terminal events, want exactly 1", name, id, c)
		}
	}
}

// TestFleetChaosUnionParity is the kill matrix: a node dying mid-queue
// (between jobs), mid-job (at a metered checkpoint) and mid-handoff
// (the re-dispatched attempt killed again) must each leave the
// detection-report union byte-identical to an undisturbed run, with
// exactly one terminal event per job.
func TestFleetChaosUnionParity(t *testing.T) {
	const nodes, apps = 3, 6
	ref := runFleetCorpus(t, nodes, apps, nil, nil)
	if ref.stats.Killed != 0 || ref.stats.Handoffs != 0 {
		t.Fatalf("reference run injected faults: %+v", ref.stats)
	}
	cases := []struct {
		name, spec    string
		wantKilled    int
		wantHandoffs  int64
		wantRestarted bool // a job observed > 1 started events
	}{
		// Node 2 dies before pulling its first job: no lease is lost, the
		// survivors absorb the queue.
		{"mid-queue", "kill:node=2@0", 1, 0, false},
		// The node running app1's first attempt dies at its checkpoint
		// past 64 units: lease expires, one handoff, attempt 2 survives.
		{"mid-job", "kill:job=com.chaos.app1@64", 1, 1, true},
		// The re-dispatched attempt is killed too: two nodes die under
		// one job, the third finishes it.
		{"mid-handoff", "kill:job=com.chaos.app1@64x2", 2, 2, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runFleetCorpus(t, nodes, apps, mustPlan(t, tc.spec), nil)
			requireUnionParity(t, tc.name, ref, got)
			if got.stats.Killed != tc.wantKilled {
				t.Errorf("killed = %d, want %d (stats %+v)", got.stats.Killed, tc.wantKilled, got.stats)
			}
			if got.stats.Handoffs != tc.wantHandoffs {
				t.Errorf("handoffs = %d, want %d", got.stats.Handoffs, tc.wantHandoffs)
			}
			restarted := false
			for _, c := range got.started {
				if c > 1 {
					restarted = true
				}
			}
			if restarted != tc.wantRestarted {
				t.Errorf("restarted attempts = %v, want %v (started %v)", restarted, tc.wantRestarted, got.started)
			}
			if tc.wantHandoffs > 0 {
				if got.stats.ExpiredLeases != tc.wantHandoffs {
					t.Errorf("expired leases = %d, want %d", got.stats.ExpiredLeases, tc.wantHandoffs)
				}
				if got.stats.LostUnits == 0 || got.stats.OverheadUnits == 0 {
					t.Errorf("lost/overhead units not charged: %+v", got.stats)
				}
			}
		})
	}
	// Kill-mid-steal: the chunk-split outlier loses a node while stolen
	// ranges are in flight; the loss degrades to a plain handoff of the
	// lost range with the union intact (runner in steal_test.go).
	t.Run("steal-chaos", stealChaosCase)
}

// TestFleetSeededPlansAlwaysConverge runs a spread of seeded plans —
// the same generator the chaos CI leg uses — and requires every one to
// settle the full corpus with union parity: Seeded always leaves a
// survivor, so no plan may wedge or lose a job.
func TestFleetSeededPlansAlwaysConverge(t *testing.T) {
	const nodes, apps = 4, 5
	ref := runFleetCorpus(t, nodes, apps, nil, nil)
	for seed := int64(1); seed <= 4; seed++ {
		plan := faultinject.Seeded(seed, nodes, 500)
		got := runFleetCorpus(t, nodes, apps, plan, nil)
		requireUnionParity(t, fmt.Sprintf("seed=%d(%s)", seed, plan), ref, got)
		if got.stats.Killed == 0 {
			t.Errorf("seed %d (%s): no node killed", seed, plan)
		}
		if got.stats.Live == 0 {
			t.Errorf("seed %d (%s): no survivor", seed, plan)
		}
	}
}

// TestFleetDropHeartbeat pins the gray-failure path: a node whose
// heartbeats are dropped keeps working but loses its leases once the
// fleet clock passes the TTL — it is fenced, its jobs re-dispatch, and
// the at-most-once settle suppresses any late terminal from the mute
// node. The union stays byte-identical.
func TestFleetDropHeartbeat(t *testing.T) {
	const nodes, apps = 2, 6
	ref := runFleetCorpus(t, nodes, apps, nil, nil)
	got := runFleetCorpus(t, nodes, apps, mustPlan(t, "beat-drop:node=1@0"), nil)
	requireUnionParity(t, "beat-drop", ref, got)
	st := got.stats
	if st.PerNode[0].Dropped == 0 {
		t.Fatalf("node 1 dropped no heartbeats: %+v", st)
	}
	if st.Killed != 1 || st.ExpiredLeases == 0 {
		t.Fatalf("mute node not fenced by lease expiry: %+v", st)
	}
}

// TestFleetFetchFaultRebuildsCold pins the fetch-fault degrade: a
// failed bundle fetch is a miss, the engine rebuilds cold, and the
// report never changes. Sequential resubmissions make the fetch order
// deterministic: get 1 (cold miss, faulted), get 2 (faulted - forced
// cold rebuild), get 3 (plan exhausted - warm hit).
func TestFleetFetchFaultRebuildsCold(t *testing.T) {
	s := New(Config{Nodes: 2, NodeStoreBudget: 0, Faults: mustPlan(t, "fetch-failx2")})
	defer s.Close()
	spec := testSpec(0)
	var keys []string
	var hits []int
	for i := 0; i < 3; i++ {
		id, err := s.Submit(Job{Name: spec.Name, Source: sourceFor(spec), RunBackDroid: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, detectionKey(res.BackDroid))
		hits = append(hits, res.BackDroid.Stats.BundleStoreHits)
	}
	if keys[1] != keys[0] || keys[2] != keys[0] {
		t.Fatal("fetch fault changed a detection report")
	}
	if hits[1] != 0 {
		t.Fatalf("faulted resubmission ran warm (hits=%d), want forced cold rebuild", hits[1])
	}
	if hits[2] == 0 {
		t.Fatal("post-fault resubmission did not run warm; placement lost the bundle")
	}
	fs := s.FleetStats()
	if fs.FetchFaults != 2 {
		t.Fatalf("fetch faults = %d, want 2", fs.FetchFaults)
	}
}

// TestFleetCorruptHandoffDegradesToRedispatch pins satellite damage
// semantics end to end: the fault plan corrupts the handoff record's
// disk bytes as it is appended. The in-process run is unaffected (the
// in-memory fold sees the intact record) — one terminal, correct
// report. On restart the journal truncates at the damaged record, the
// job's terminal record is gone with it, so the job re-pends and
// re-dispatches — never a wrong or duplicated report.
func TestFleetCorruptHandoffDegradesToRedispatch(t *testing.T) {
	dir := t.TempDir()
	jnl, _, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const apps = 2
	plan := mustPlan(t, "kill:job=com.chaos.app1@64,corrupt:handoff@1")
	run1 := runFleetCorpus(t, 2, apps, plan, jnl)
	if plan.Trips() == nil || run1.stats.Handoffs != 1 {
		t.Fatalf("plan did not trip a handoff: trips=%v stats=%+v", plan.Trips(), run1.stats)
	}
	jnl.Close()

	jnl2, pending, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.Close()
	// The handoff record was damaged on disk; everything after it (the
	// killed job's done record among it) was dropped at the truncation,
	// so that job — and only jobs, never garbage — re-pends.
	if len(pending) == 0 {
		t.Fatalf("corrupted handoff did not re-pend its job (stats %+v)", jnl2.Stats())
	}
	for _, rec := range pending {
		if rec.Name != chaosSpec(0).Name && rec.Name != chaosSpec(1).Name {
			t.Fatalf("recovery resurrected an unknown job: %+v", rec)
		}
	}
	s2 := New(Config{Nodes: 2, NodeStoreBudget: 0, Journal: jnl2})
	if n := s2.Recover(chaosFromJournal); n != len(pending) {
		t.Fatalf("Recover = %d, want %d", n, len(pending))
	}
	for _, rec := range pending {
		res, err := s2.Wait(JobID(rec.Job))
		if err != nil {
			t.Fatalf("re-dispatched job %d: %v", rec.Job, err)
		}
		if got := detectionKey(res.BackDroid); got != run1.keys[res.Name] {
			t.Fatalf("re-dispatched report for %s diverged:\n%s\nvs\n%s", res.Name, got, run1.keys[res.Name])
		}
	}
	s2.Close()
}

// TestFleetPlacementDeterministic pins the rendezvous placement: owners
// are a pure function of (fingerprint, live set); killing a node moves
// only the keys it owned.
func TestFleetPlacementDeterministic(t *testing.T) {
	a := newFleet(4, 0, nil, simtime.LeaseTTLUnits, simtime.HandoffUnits, simtime.RetryBackoffUnits)
	b := newFleet(4, 0, nil, simtime.LeaseTTLUnits, simtime.HandoffUnits, simtime.RetryBackoffUnits)
	fps := make([]uint64, 200)
	for i := range fps {
		fps[i] = mix64(uint64(i) * 0x9e3779b97f4a7c15)
	}
	owned := make(map[int]int)
	for _, fp := range fps {
		if a.owner(fp) != b.owner(fp) {
			t.Fatalf("placement of %x diverged across identical fleets", fp)
		}
		owned[a.owner(fp)]++
	}
	for id := 1; id <= 4; id++ {
		if owned[id] == 0 {
			t.Fatalf("node %d owns nothing across %d keys: %v", id, len(fps), owned)
		}
	}
	before := make(map[uint64]int)
	for _, fp := range fps {
		before[fp] = a.owner(fp)
	}
	a.fence(2)
	for _, fp := range fps {
		after := a.owner(fp)
		if after == 2 {
			t.Fatalf("dead node still owns %x", fp)
		}
		if before[fp] != 2 && after != before[fp] {
			t.Fatalf("key %x moved from live node %d to %d after an unrelated death",
				fp, before[fp], after)
		}
	}
}

// TestFleetAllNodesDeadFailsJobs pins the no-survivor edge: when the
// plan kills every node, submitted jobs fail terminally — no hang, no
// silent loss.
func TestFleetAllNodesDeadFailsJobs(t *testing.T) {
	s := New(Config{Nodes: 2, NodeStoreBudget: -1, Faults: mustPlan(t, "kill:node=1@0,kill:node=2@0")})
	defer s.Close()
	id, err := s.Submit(Job{Name: testSpec(0).Name, Source: sourceFor(testSpec(0)), RunBackDroid: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(id); err == nil {
		t.Fatal("job settled on a fleet with every node dead")
	} else if errors.Is(err, ErrCanceled) {
		t.Fatalf("job reported canceled, want a dead-fleet failure: %v", err)
	}
	if fs := s.FleetStats(); fs.Live != 0 || fs.Killed != 2 {
		t.Fatalf("fleet stats = %+v, want 0 live / 2 killed", fs)
	}
}

// TestFleetDieNodeMidRunHandsOff drives Scheduler.KillNode (the
// `die node=N` path) against a running job: the pinned job's node is
// fenced externally, the attempt aborts at its next checkpoint and the
// job settles exactly once on the surviving node.
func TestFleetDieNodeMidRunHandsOff(t *testing.T) {
	events := make(chan Event, 16)
	terminals := make(map[JobID]int)
	var nodeOf sync.Map // JobID -> node of first started event
	var evWG sync.WaitGroup
	evWG.Add(1)
	go func() {
		defer evWG.Done()
		for ev := range events {
			switch ev.Kind {
			case EventStarted:
				if _, ok := nodeOf.Load(ev.Job); !ok {
					nodeOf.Store(ev.Job, ev.Node)
				}
			case EventDone, EventFailed, EventCanceled:
				terminals[ev.Job]++
			}
		}
	}()
	s := New(Config{Nodes: 2, NodeStoreBudget: 0, Events: events})
	if err := s.KillNode(0); err == nil {
		t.Fatal("KillNode(0) must reject an out-of-range node")
	}
	// One long job; whichever node starts it gets killed mid-run.
	id, err := s.Submit(Job{Name: chaosSpec(0).Name, Source: sourceFor(chaosSpec(0)), RunBackDroid: true})
	if err != nil {
		t.Fatal(err)
	}
	// Spin until the started event reports the executing node.
	var node int
	for {
		if v, ok := nodeOf.Load(id); ok {
			node = v.(int)
			break
		}
		runtime.Gosched()
	}
	if err := s.KillNode(node); err != nil {
		t.Fatalf("KillNode(%d): %v", node, err)
	}
	if err := s.KillNode(node); err == nil {
		t.Fatal("double KillNode must report the node already dead")
	}
	res, err := s.Wait(id)
	if err != nil {
		t.Fatalf("job lost after die node=%d: %v", node, err)
	}
	if len(res.BackDroid.Sinks) == 0 {
		t.Fatal("handed-off job produced an empty report")
	}
	s.Close()
	close(events)
	evWG.Wait()
	if terminals[id] != 1 {
		t.Fatalf("job emitted %d terminals, want exactly 1", terminals[id])
	}
	fs := s.FleetStats()
	if fs.Killed != 1 {
		t.Fatalf("fleet stats after die: %+v", fs)
	}
}
