package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// recordsEqual compares two records field by field (Record holds a
// []byte, so == does not compile).
func recordsEqual(a, b Record) bool {
	return a.Kind == b.Kind && a.Job == b.Job && a.Tenant == b.Tenant &&
		a.Name == b.Name && a.Spec == b.Spec && a.Err == b.Err &&
		a.App == b.App && a.Opt == b.Opt && bytes.Equal(a.Data, b.Data) &&
		a.Node == b.Node && a.Attempt == b.Attempt
}

// writeLifecycle appends one job's full record sequence.
func writeLifecycle(t *testing.T, j *Journal, id int64, terminal Kind) {
	t.Helper()
	recs := []Record{
		{Kind: KindSubmit, Job: id, Tenant: "acme", Name: "app", Spec: "/apps/app.apk"},
		{Kind: KindStart, Job: id},
	}
	if terminal != 0 {
		r := Record{Kind: terminal, Job: id}
		if terminal == KindFailed {
			r.Err = "boom"
		}
		recs = append(recs, r)
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestJournalRoundtripAndPending(t *testing.T) {
	dir := t.TempDir()
	j, pending, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh journal has %d pending records", len(pending))
	}
	writeLifecycle(t, j, 1, KindDone)
	writeLifecycle(t, j, 2, KindFailed)
	writeLifecycle(t, j, 3, KindCanceled)
	writeLifecycle(t, j, 4, 0) // started, never finished (in-flight crash)
	if err := j.Append(Record{Kind: KindSubmit, Job: 5, Tenant: "free", Name: "b", Spec: "/apps/b.apk"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, pending, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(pending) != 2 {
		t.Fatalf("pending = %v, want jobs 4 and 5", pending)
	}
	if pending[0].Job != 4 || pending[1].Job != 5 {
		t.Fatalf("pending order = %d,%d, want 4,5", pending[0].Job, pending[1].Job)
	}
	if pending[0].Tenant != "acme" || pending[0].Spec != "/apps/app.apk" {
		t.Fatalf("pending[0] lost its payload: %+v", pending[0])
	}
	if pending[1].Tenant != "free" || pending[1].Name != "b" {
		t.Fatalf("pending[1] lost its payload: %+v", pending[1])
	}
	if got := j2.MaxJobID(); got != 5 {
		t.Fatalf("MaxJobID = %d, want 5", got)
	}
	st := j2.Stats()
	if st.Pending != 2 || st.Recovered != 12 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(1); id <= 20; id++ {
		term := KindDone
		if id%5 == 0 {
			term = 0 // every fifth job stays pending
		}
		writeLifecycle(t, j, id, Kind(term))
	}
	before := j.Stats()
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	after := j.Stats()
	if after.Records != 4 || after.Pending != 4 {
		t.Fatalf("after compaction: %+v", after)
	}
	if after.Bytes >= before.Bytes {
		t.Fatalf("compaction did not shrink the file: %d -> %d bytes", before.Bytes, after.Bytes)
	}
	if after.Compactions != 1 {
		t.Fatalf("compactions = %d", after.Compactions)
	}
	// The compacted file must append and replay cleanly.
	writeLifecycle(t, j, 21, 0)
	j.Close()
	j2, pending, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	want := []int64{5, 10, 15, 20, 21}
	if len(pending) != len(want) {
		t.Fatalf("pending after compaction+reopen = %v", pending)
	}
	for i, id := range want {
		if pending[i].Job != id {
			t.Fatalf("pending[%d] = %d, want %d", i, pending[i].Job, id)
		}
	}
}

func TestJournalAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.limit = 512 // force the auto-compaction path quickly
	for id := int64(1); id <= 200; id++ {
		writeLifecycle(t, j, id, KindDone)
	}
	st := j.Stats()
	if st.Compactions == 0 {
		t.Fatal("no automatic compaction despite settled history past the limit")
	}
	if st.Bytes > 2048 {
		t.Fatalf("live file still %d bytes after auto-compaction", st.Bytes)
	}
}

// TestJournalCorruptionFuzz mirrors the .bdx codec fuzz: every single-byte
// flip and a sweep of truncations over a populated journal must recover —
// without panicking — to a consistent queue, i.e. a prefix of the original
// record stream with every surviving record intact.
func TestJournalCorruptionFuzz(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeLifecycle(t, j, 1, KindDone)
	writeLifecycle(t, j, 2, 0)
	writeLifecycle(t, j, 3, KindCanceled)
	if err := j.Append(Record{Kind: KindSubmit, Job: 4, Tenant: "t", Name: "n", Spec: "/x.apk"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Kind: KindReport, App: 0xabc, Opt: 0xdef, Data: []byte("settled-report-bytes")}); err != nil {
		t.Fatal(err)
	}
	// The fleet's dispatch trail: a lease, an expiry-forced handoff, a
	// re-dispatch lease. Transient records — flips inside them must
	// degrade exactly like any other damage, and the surviving prefix's
	// pending/report reconstruction must ignore them.
	for _, r := range []Record{
		{Kind: KindLease, Job: 2, Node: 1, Attempt: 1},
		{Kind: KindHandoff, Job: 2, Node: 1, Attempt: 1},
		{Kind: KindLease, Job: 2, Node: 3, Attempt: 2},
	} {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	path := filepath.Join(dir, FileName)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wantRecs, _ := decodeFile(good)

	check := func(name string, data []byte) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: replay panicked: %v", name, r)
			}
		}()
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, FileName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		cj, pending, err := Open(cdir)
		if err != nil {
			t.Fatalf("%s: Open must recover, got %v", name, err)
		}
		defer cj.Close()
		// Whatever survived must be a prefix of the original stream: no
		// record may decode to different content, and the pending set must
		// be exactly what that prefix implies.
		recs, _ := decodeFile(readFileOrEmpty(filepath.Join(cdir, FileName)))
		if len(recs) > len(wantRecs) {
			t.Fatalf("%s: recovered %d records from a %d-record file", name, len(recs), len(wantRecs))
		}
		seen := make(map[int64]Record)
		var order []int64
		for i, r := range recs {
			if !recordsEqual(r, wantRecs[i]) {
				t.Fatalf("%s: record %d decoded as %+v, want %+v", name, i, r, wantRecs[i])
			}
			switch {
			case r.Kind == KindSubmit:
				if _, ok := seen[r.Job]; !ok {
					order = append(order, r.Job)
				}
				seen[r.Job] = r
			case r.Kind.terminal():
				delete(seen, r.Job)
			}
		}
		var wantPending []Record
		for _, id := range order {
			if r, ok := seen[id]; ok {
				wantPending = append(wantPending, r)
			}
		}
		if len(pending) != len(wantPending) {
			t.Fatalf("%s: pending = %+v, want %+v", name, pending, wantPending)
		}
		for i := range pending {
			if !recordsEqual(pending[i], wantPending[i]) {
				t.Fatalf("%s: pending[%d] = %+v, want %+v", name, i, pending[i], wantPending[i])
			}
		}
		// The settled-report section must likewise be exactly what the
		// surviving prefix implies — a damaged report record disappears,
		// it never resurfaces with different bytes.
		var wantReports []Record
		for _, r := range recs {
			if r.Kind == KindReport {
				wantReports = append(wantReports, r)
			}
		}
		gotReports := cj.Reports()
		if len(gotReports) != len(wantReports) {
			t.Fatalf("%s: reports = %+v, want %+v", name, gotReports, wantReports)
		}
		for i := range gotReports {
			if !recordsEqual(gotReports[i], wantReports[i]) {
				t.Fatalf("%s: report[%d] = %+v, want %+v", name, i, gotReports[i], wantReports[i])
			}
		}
		// The healed file must itself append and re-open cleanly.
		if err := cj.Append(Record{Kind: KindSubmit, Job: 99, Tenant: "t", Name: "n", Spec: "/y.apk"}); err != nil {
			t.Fatalf("%s: append after recovery: %v", name, err)
		}
	}

	for off := 0; off < len(good); off++ {
		data := append([]byte(nil), good...)
		data[off] ^= 0xa5
		check("flip", data)
	}
	for cut := 0; cut <= len(good); cut++ {
		check("truncate", good[:cut])
	}
	check("trailing", append(append([]byte(nil), good...), 0xAB))
	check("empty", nil)
}

// TestJournalLeaseHandoffRoundtrip pins the fleet record kinds: node
// and attempt survive the codec, the records are transient (never
// pending, dropped by compaction) yet still advance MaxJobID so a
// recovering scheduler cannot reuse an id seen only in a lease.
func TestJournalLeaseHandoffRoundtrip(t *testing.T) {
	for _, kind := range []Kind{KindLease, KindHandoff} {
		r := Record{Kind: kind, Job: 42, Node: 3, Attempt: 2}
		enc := encodeRecord(r)
		dec, n, ok := decodeRecord(enc)
		if !ok || n != int64(len(enc)) || !recordsEqual(dec, r) {
			t.Fatalf("%v roundtrip = %+v (ok=%v), want %+v", kind, dec, ok, r)
		}
	}

	dir := t.TempDir()
	j, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeLifecycle(t, j, 1, 0)
	for _, r := range []Record{
		{Kind: KindLease, Job: 1, Node: 2, Attempt: 1},
		{Kind: KindHandoff, Job: 1, Node: 2, Attempt: 1},
		{Kind: KindLease, Job: 7, Node: 1, Attempt: 2}, // orphaned: no submit in this log
	} {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j2, pending, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].Job != 1 {
		t.Fatalf("lease/handoff records changed the pending set: %+v", pending)
	}
	if got := j2.MaxJobID(); got != 7 {
		t.Fatalf("MaxJobID = %d, want 7 (seen only in an orphaned lease)", got)
	}
	if err := j2.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := j2.Stats(); st.Records != 1 || st.Pending != 1 {
		t.Fatalf("compaction must drop the dispatch trail: %+v", st)
	}
	j2.Close()
}

// TestJournalCorruptHookDamagesDiskOnly pins the fault-injection seam:
// a hook that damages a handoff record's on-disk bytes leaves the live
// process's state intact, and the next replay degrades to re-dispatch
// — the terminal record behind the damage is dropped, so the job
// re-pends; it is never duplicated or resurrected with wrong content.
func TestJournalCorruptHookDamagesDiskOnly(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	j.SetCorrupt(func(kind string, encoded []byte) []byte {
		if kind != "handoff" || corrupted > 0 {
			return nil
		}
		corrupted++
		damaged := append([]byte(nil), encoded...)
		damaged[len(damaged)-1] ^= 0xa5
		return damaged
	})
	writeLifecycle(t, j, 1, 0)
	if err := j.Append(Record{Kind: KindHandoff, Job: 1, Node: 2, Attempt: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Kind: KindDone, Job: 1}); err != nil {
		t.Fatal(err)
	}
	if corrupted != 1 {
		t.Fatalf("hook fired %d times, want 1", corrupted)
	}
	// The live process is oblivious: job 1 settled in memory.
	if st := j.Stats(); st.Pending != 0 {
		t.Fatalf("in-memory state saw the damage: %+v", st)
	}
	j.Close()

	// The replay hits the damaged handoff record, truncates there and
	// loses the done record behind it: job 1 degrades to pending.
	j2, pending, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(pending) != 1 || pending[0].Job != 1 {
		t.Fatalf("pending after corrupt handoff = %+v, want job 1 re-pended", pending)
	}
	if st := j2.Stats(); st.Dropped == 0 {
		t.Fatalf("no bytes dropped despite the damaged record: %+v", st)
	}
}

// TestJournalReportRecordsSurviveCompaction pins the settled-report
// section's durability across compaction: settled job history is
// dropped, live report records are retained (latest per key), and a
// reopen replays them — the fix for compaction discarding the very
// records whose point is surviving it.
func TestJournalReportRecordsSurviveCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(1); id <= 10; id++ {
		writeLifecycle(t, j, id, KindDone)
	}
	writeLifecycle(t, j, 11, 0) // one pending job
	reps := []Record{
		{Kind: KindReport, App: 1, Opt: 10, Data: []byte("stale-one")},
		{Kind: KindReport, App: 2, Opt: 20, Data: []byte("two")},
		{Kind: KindReport, App: 1, Opt: 10, Data: []byte("one")}, // supersedes stale-one
	}
	for _, r := range reps {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.Reports != 2 || st.Pending != 1 || st.Records != 3 {
		t.Fatalf("after compaction: %+v, want 1 pending + 2 live reports", st)
	}
	checkReports := func(jj *Journal) {
		t.Helper()
		got := jj.Reports()
		if len(got) != 2 {
			t.Fatalf("reports = %+v, want 2", got)
		}
		// First-insertion order, latest data per key.
		if got[0].App != 1 || string(got[0].Data) != "one" {
			t.Fatalf("report[0] = %+v, want the superseding (1,10) record", got[0])
		}
		if got[1].App != 2 || string(got[1].Data) != "two" {
			t.Fatalf("report[1] = %+v", got[1])
		}
	}
	checkReports(j)
	j.Close()

	j2, pending, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(pending) != 1 || pending[0].Job != 11 {
		t.Fatalf("pending after compaction+reopen = %+v", pending)
	}
	checkReports(j2)
}

// TestJournalAutoCompactionKeepsReports pins that the automatic
// compaction triggered mid-Append also retains the report section.
func TestJournalAutoCompactionKeepsReports(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.limit = 512
	if err := j.Append(Record{Kind: KindReport, App: 7, Opt: 8, Data: []byte("keep-me")}); err != nil {
		t.Fatal(err)
	}
	for id := int64(1); id <= 200; id++ {
		writeLifecycle(t, j, id, KindDone)
	}
	st := j.Stats()
	if st.Compactions == 0 {
		t.Fatal("no automatic compaction despite settled history past the limit")
	}
	if st.Reports != 1 {
		t.Fatalf("auto-compaction lost the report section: %+v", st)
	}
	got := j.Reports()
	if len(got) != 1 || got[0].App != 7 || string(got[0].Data) != "keep-me" {
		t.Fatalf("reports after auto-compaction = %+v", got)
	}
}

// TestJournalReportOversizeRejected pins the append bound: a report
// payload past MaxReportData is refused outright (the store skips
// persisting it) — unlike strings, report bytes are never truncated,
// because a truncated encoding would replay as damage.
func TestJournalReportOversizeRejected(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(Record{Kind: KindReport, App: 1, Opt: 1, Data: make([]byte, MaxReportData+1)}); err == nil {
		t.Fatal("oversized report record accepted")
	}
	if err := j.Append(Record{Kind: KindReport, App: 1, Opt: 1, Data: make([]byte, MaxReportData)}); err != nil {
		t.Fatalf("boundary-sized report record rejected: %v", err)
	}
	if st := j.Stats(); st.Reports != 1 || st.Appends != 1 {
		t.Fatalf("stats = %+v, want exactly the boundary record", st)
	}
}

// TestJournalHealsDamagedTail pins that Open truncates a torn append back
// to the last whole record on disk, so the next process starts from a
// whole file.
func TestJournalHealsDamagedTail(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	writeLifecycle(t, j, 1, 0)
	j.Close()
	path := filepath.Join(dir, FileName)
	good, _ := os.ReadFile(path)
	torn := append(append([]byte(nil), good...), 0x03, 0x44, 0x00) // half a record header
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, pending, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].Job != 1 {
		t.Fatalf("pending after torn tail = %+v", pending)
	}
	if st := j2.Stats(); st.Dropped != 3 {
		t.Fatalf("Dropped = %d, want 3", st.Dropped)
	}
	j2.Close()
	healed, _ := os.ReadFile(path)
	if !bytes.Equal(healed, good) {
		t.Fatal("healed file differs from the pre-damage content")
	}
}

// TestJournalRecordDeterministicBytes pins byte-stable encoding: the
// crash-recovery diff depends on replayed submissions being identical.
func TestJournalRecordDeterministicBytes(t *testing.T) {
	r := Record{Kind: KindSubmit, Job: 7, Tenant: "acme", Name: "app", Spec: "/a.apk"}
	a, b := encodeRecord(r), encodeRecord(r)
	if !bytes.Equal(a, b) {
		t.Fatal("encodeRecord not deterministic")
	}
	dec, n, ok := decodeRecord(a)
	if !ok || n != int64(len(a)) || !recordsEqual(dec, r) {
		t.Fatalf("roundtrip = %+v (%d bytes, ok=%v), want %+v", dec, n, ok, r)
	}
}

// TestJournalOversizedFieldsTruncateNotCorrupt pins the encode/decode
// limit contract: a record with an absurdly long string field is
// truncated at write time, so replay never mistakes it for corruption
// and never drops the records behind it.
func TestJournalOversizedFieldsTruncateNotCorrupt(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	huge := strings.Repeat("x", 2<<20)
	if err := j.Append(Record{Kind: KindSubmit, Job: 1, Tenant: "t", Name: "n", Spec: "/a.apk"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Kind: KindFailed, Job: 1, Err: huge}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Kind: KindSubmit, Job: 2, Tenant: huge, Name: "after", Spec: "/b.apk"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, pending, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if st := j2.Stats(); st.Dropped != 0 || st.Recovered != 3 {
		t.Fatalf("oversized fields treated as corruption: %+v", st)
	}
	// Job 1 settled (its failed record replayed, Err truncated); job 2,
	// recorded after the oversized records, survives intact.
	if len(pending) != 1 || pending[0].Job != 2 || pending[0].Name != "after" {
		t.Fatalf("pending = %+v", pending)
	}
	if got := len(pending[0].Tenant); got != maxFieldSize {
		t.Fatalf("tenant field truncated to %d bytes, want %d", got, maxFieldSize)
	}
}

// TestJournalCompactFailureKeepsAppending pins that a failed rewrite
// (here: the directory made read-only so the temp file cannot be
// created) leaves the live handle working — the journal keeps its
// uncompacted history rather than going silently dark.
func TestJournalCompactFailureKeepsAppending(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	writeLifecycle(t, j, 1, KindDone)
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if err := j.Compact(); err == nil {
		t.Skip("filesystem permits writes in a read-only dir (running as root?)")
	}
	// The handle survived: appends still land in the old file.
	if err := j.Append(Record{Kind: KindSubmit, Job: 2, Tenant: "t", Name: "n", Spec: "/b.apk"}); err != nil {
		t.Fatalf("append after failed compaction: %v", err)
	}
	os.Chmod(dir, 0o755)
	j.Close()
	_, pending, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].Job != 2 {
		t.Fatalf("pending after failed compaction = %+v", pending)
	}
}
