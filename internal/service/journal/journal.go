// Package journal is the durable job log of the batch analysis control
// plane: a versioned append-only file of CRC'd records tracking every job
// submission and its terminal outcome, so a restarted backdroidd can
// re-enqueue the jobs that were queued-or-running when the previous
// process died and produce the same reports it would have produced
// uninterrupted.
//
// The live file (journal.bdj) is:
//
//	offset  size  field
//	0       4     magic "BDJL"
//	4       2     codec version (little endian)
//	6       2     reserved (zero)
//	8       ...   records, back to back
//
// and each record is:
//
//	offset  size  field
//	0       1     kind (KindSubmit..KindHandoff)
//	1       4     payload length (little endian)
//	5       4     IEEE CRC-32 of kind byte + payload
//	9       ...   payload
//
// Payloads hold the job id and, for submits, the tenant, display name and
// an opaque spec string the service uses to rebuild the job (backdroidd
// stores the APK path); settled-report records instead carry the
// (app, options) fingerprint pair and the canonical encoded report;
// fleet lease and handoff records carry the node id and attempt number.
// Strings and byte blobs are u32-length-prefixed.
//
// The codec follows the .bdx discipline (internal/dexdump): every
// validation failure — wrong magic, unknown version, bad CRC, truncation
// mid-record — is recovered from silently, never surfaced as an analysis
// failure. A torn tail (the crash happened mid-append) is truncated back
// to the last whole record; anything after the first damaged record is
// dropped, because without its length the stream cannot be resynchronized.
// Compaction rewrites the file to hold only the still-pending submits
// plus the live settled-report records and replaces it atomically (write
// temp + rename), so a crash during compaction leaves either the old
// file or the new one, never a mix.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"sync"
)

// CodecVersion is the on-disk format version. Bump it whenever the record
// layout changes; old files then replay as empty (a cold queue) instead of
// failing the service.
const CodecVersion = 1

const (
	journalMagic   = "BDJL"
	headerSize     = 8
	recHeaderSize  = 9 // kind u8 + length u32 + crc u32
	maxPayloadSize = 1 << 20
	// maxFieldSize caps each string field at encode time (longer values
	// are truncated deterministically), so a record the writer accepts is
	// always within maxPayloadSize for the reader — an oversized error
	// message must never make replay treat the file as corrupt and drop
	// every record after it.
	maxFieldSize = 64 << 10
)

// FileName is the live journal file inside the journal directory.
const FileName = "journal.bdj"

// Kind types a journal record. Per job the well-formed sequence is one
// KindSubmit, at most one KindStart, then exactly one of
// KindDone/KindFailed/KindCanceled; replay treats any submit without a
// terminal record — started or not — as pending. KindReport records are
// the journal's persistent settled-report section: independent of any
// job's lifecycle, content-addressed by (app fingerprint, options
// fingerprint), latest record per key wins. KindLease, KindHandoff and
// KindSteal are the fleet coordinator's dispatch trail — which node
// held a job, which handoffs a lease expiry forced, and which sink
// chunks were stolen to idle nodes. They are transient bookkeeping:
// replay folds nothing from them (a job's pendingness is still decided
// solely by submit vs terminal), and compaction drops them, so damage
// to one can never lose or duplicate a report — at worst the replay
// truncates there and the affected jobs re-pend.
type Kind uint8

// Record kinds.
const (
	KindSubmit Kind = iota + 1
	KindStart
	KindDone
	KindFailed
	KindCanceled
	KindReport
	KindLease
	KindHandoff
	KindSteal
)

// String names the record kind.
func (k Kind) String() string {
	switch k {
	case KindSubmit:
		return "submit"
	case KindStart:
		return "start"
	case KindDone:
		return "done"
	case KindFailed:
		return "failed"
	case KindCanceled:
		return "canceled"
	case KindReport:
		return "report"
	case KindLease:
		return "lease"
	case KindHandoff:
		return "handoff"
	case KindSteal:
		return "steal"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// terminal reports whether the kind ends a job's record sequence.
func (k Kind) terminal() bool {
	return k == KindDone || k == KindFailed || k == KindCanceled
}

// Record is one journal entry. Tenant, Name and Spec are set on submits
// (Spec is the opaque string the service rebuilds the job from); Err is
// set on failures; App/Opt/Data are set on settled-report records (the
// content-address pair and the canonical encoded report); Node and
// Attempt are set on fleet lease, handoff and steal records (for
// handoffs, Node is the node the job was taken away from; for steals,
// Node is the thief and Attempt carries the stolen chunk's starting
// sink position instead of a dispatch attempt).
type Record struct {
	Kind    Kind
	Job     int64
	Tenant  string
	Name    string
	Spec    string
	Err     string
	App     uint64 // KindReport: dexdump.AppFingerprint
	Opt     uint64 // KindReport: service.OptionsFingerprint
	Data    []byte // KindReport: canonical encoded report
	Node    int64  // KindLease: holder; KindHandoff: the fenced node
	Attempt int64  // KindLease/KindHandoff: 1-based dispatch attempt
}

// reportKey addresses one settled-report record.
type reportKey struct{ app, opt uint64 }

// MaxReportData caps the encoded-report payload of one KindReport
// record. Append rejects larger reports (the store simply skips
// persisting them — a truncated report would be useless), keeping every
// accepted record within maxPayloadSize for the reader.
const MaxReportData = 512 << 10

// Stats are the counters of a Journal, taken atomically.
type Stats struct {
	Records     int64 // records in the live file
	Bytes       int64 // live file size, header included
	Pending     int   // submits without a terminal record
	Reports     int   // live settled-report records (latest per key)
	Appends     int64 // records appended by this process
	Compactions int64 // atomic rewrites performed
	Recovered   int64 // records replayed from disk at Open
	Dropped     int64 // bytes discarded by corruption recovery at Open
}

// Journal is an open job log. It is safe for concurrent use; the
// scheduler appends from worker goroutines and the stats path reads
// concurrently.
type Journal struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	stats   Stats
	pending map[int64]Record // live submit set, in support of compaction
	order   []int64          // submission order of pending jobs
	maxID   int64            // highest job id seen in any record
	limit   int64            // auto-compaction threshold in bytes

	// The persistent settled-report section: latest record per
	// (app, options) key, in first-insertion order. Compaction retains
	// these alongside the pending submits — a settled report is exactly
	// the record whose whole point is surviving settled history getting
	// compacted away.
	reports     map[reportKey]Record
	reportOrder []reportKey

	// corrupt, when set, may damage a record's on-disk bytes at append
	// time — the fault-injection seam for chaos drills. See SetCorrupt.
	corrupt func(kind string, encoded []byte) []byte
}

// DefaultCompactLimit is the live-file size above which Append compacts
// automatically (when compaction would actually shrink the file).
const DefaultCompactLimit = 1 << 20

// Open opens (creating if absent) the journal in dir and replays it. It
// returns the journal ready for appending plus the pending records: every
// submit without a terminal record, in submission order — the queue the
// previous process died with. Corrupt content is recovered from silently,
// mirroring the .bdx cache discipline: the readable prefix is kept, the
// damaged tail is truncated away and counted in Stats.Dropped.
func Open(dir string) (*Journal, []Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{
		path:    filepath.Join(dir, FileName),
		pending: make(map[int64]Record),
		reports: make(map[reportKey]Record),
		limit:   DefaultCompactLimit,
	}
	recs, keep := decodeFile(readFileOrEmpty(j.path))

	// Rewrite the recovered prefix when anything was damaged (or the file
	// is brand new), so the on-disk state is whole before appending.
	st, err := os.Stat(j.path)
	fileSize := int64(-1)
	if err == nil {
		fileSize = st.Size()
	}
	size := keep
	if fileSize != keep {
		if fileSize > keep {
			j.stats.Dropped = fileSize - keep
		}
		healed, err := j.rewrite(recs)
		if err != nil {
			return nil, nil, err
		}
		size = healed
	}

	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j.f = f
	j.stats.Records = int64(len(recs))
	j.stats.Bytes = size
	j.stats.Recovered = int64(len(recs))
	for _, r := range recs {
		j.apply(r)
	}
	return j, j.pendingRecords(), nil
}

// readFileOrEmpty reads the file, treating absence as emptiness.
func readFileOrEmpty(path string) []byte {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	return data
}

// decodeFile parses as many whole, valid records as the data holds and
// returns them together with the byte offset the valid prefix ends at.
// Any damage — bad magic, unknown version, short header, CRC mismatch,
// truncated payload, absurd length — stops the parse there.
func decodeFile(data []byte) ([]Record, int64) {
	if len(data) < headerSize || string(data[0:4]) != journalMagic ||
		binary.LittleEndian.Uint16(data[4:6]) != CodecVersion {
		return nil, 0
	}
	var recs []Record
	off := int64(headerSize)
	for {
		r, n, ok := decodeRecord(data[off:])
		if !ok {
			break
		}
		recs = append(recs, r)
		off += n
	}
	return recs, off
}

// decodeRecord parses one record from the front of data.
func decodeRecord(data []byte) (Record, int64, bool) {
	if len(data) < recHeaderSize {
		return Record{}, 0, false
	}
	kind := Kind(data[0])
	if kind < KindSubmit || kind > KindSteal {
		return Record{}, 0, false
	}
	plen := binary.LittleEndian.Uint32(data[1:5])
	if plen > maxPayloadSize || recHeaderSize+int64(plen) > int64(len(data)) {
		return Record{}, 0, false
	}
	payload := data[recHeaderSize : recHeaderSize+int(plen)]
	crc := crc32.NewIEEE()
	crc.Write(data[0:1])
	crc.Write(payload)
	if crc.Sum32() != binary.LittleEndian.Uint32(data[5:9]) {
		return Record{}, 0, false
	}
	r, ok := decodePayload(kind, payload)
	if !ok {
		return Record{}, 0, false
	}
	return r, recHeaderSize + int64(plen), true
}

// decodePayload parses the kind-specific payload.
func decodePayload(kind Kind, p []byte) (Record, bool) {
	r := Record{Kind: kind}
	job, p, ok := getU64(p)
	if !ok {
		return Record{}, false
	}
	r.Job = int64(job)
	switch kind {
	case KindSubmit:
		if r.Tenant, p, ok = getString(p); !ok {
			return Record{}, false
		}
		if r.Name, p, ok = getString(p); !ok {
			return Record{}, false
		}
		if r.Spec, p, ok = getString(p); !ok {
			return Record{}, false
		}
	case KindFailed:
		if r.Err, p, ok = getString(p); !ok {
			return Record{}, false
		}
	case KindReport:
		if r.App, p, ok = getU64(p); !ok {
			return Record{}, false
		}
		if r.Opt, p, ok = getU64(p); !ok {
			return Record{}, false
		}
		if r.Data, p, ok = getBytes(p); !ok {
			return Record{}, false
		}
	case KindLease, KindHandoff, KindSteal:
		var node, attempt uint64
		if node, p, ok = getU64(p); !ok {
			return Record{}, false
		}
		if attempt, p, ok = getU64(p); !ok {
			return Record{}, false
		}
		r.Node, r.Attempt = int64(node), int64(attempt)
	}
	return r, len(p) == 0
}

func getU64(p []byte) (uint64, []byte, bool) {
	if len(p) < 8 {
		return 0, nil, false
	}
	return binary.LittleEndian.Uint64(p), p[8:], true
}

func getString(p []byte) (string, []byte, bool) {
	if len(p) < 4 {
		return "", nil, false
	}
	n := binary.LittleEndian.Uint32(p)
	if int64(n) > int64(len(p))-4 {
		return "", nil, false
	}
	return string(p[4 : 4+n]), p[4+n:], true
}

func getBytes(p []byte) ([]byte, []byte, bool) {
	if len(p) < 4 {
		return nil, nil, false
	}
	n := binary.LittleEndian.Uint32(p)
	if int64(n) > int64(len(p))-4 {
		return nil, nil, false
	}
	out := make([]byte, n)
	copy(out, p[4:4+n])
	return out, p[4+n:], true
}

// encodeRecord renders one record in the on-disk format.
func encodeRecord(r Record) []byte {
	var payload []byte
	payload = putU64(payload, uint64(r.Job))
	switch r.Kind {
	case KindSubmit:
		payload = putString(payload, r.Tenant)
		payload = putString(payload, r.Name)
		payload = putString(payload, r.Spec)
	case KindFailed:
		payload = putString(payload, r.Err)
	case KindReport:
		payload = putU64(payload, r.App)
		payload = putU64(payload, r.Opt)
		payload = putBytes(payload, r.Data)
	case KindLease, KindHandoff, KindSteal:
		payload = putU64(payload, uint64(r.Node))
		payload = putU64(payload, uint64(r.Attempt))
	}
	buf := make([]byte, recHeaderSize, recHeaderSize+len(payload))
	buf[0] = byte(r.Kind)
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(buf[0:1])
	crc.Write(payload)
	binary.LittleEndian.PutUint32(buf[5:9], crc.Sum32())
	return append(buf, payload...)
}

func putU64(b []byte, v uint64) []byte {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], v)
	return append(b, n[:]...)
}

func putString(b []byte, s string) []byte {
	if len(s) > maxFieldSize {
		s = s[:maxFieldSize]
	}
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
	return append(append(b, n[:]...), s...)
}

// putBytes length-prefixes raw bytes. Unlike strings these are never
// truncated — a truncated report would decode as garbage — so Append
// bounds them with MaxReportData up front instead.
func putBytes(b, data []byte) []byte {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(data)))
	return append(append(b, n[:]...), data...)
}

func fileHeader() []byte {
	buf := make([]byte, headerSize)
	copy(buf[0:4], journalMagic)
	binary.LittleEndian.PutUint16(buf[4:6], CodecVersion)
	return buf
}

// apply folds one record into the pending set (or the settled-report
// section, for KindReport).
func (j *Journal) apply(r Record) {
	if r.Job > j.maxID {
		j.maxID = r.Job
	}
	switch {
	case r.Kind == KindSubmit:
		if _, ok := j.pending[r.Job]; !ok {
			j.order = append(j.order, r.Job)
		}
		j.pending[r.Job] = r
	case r.Kind.terminal():
		delete(j.pending, r.Job)
	case r.Kind == KindReport:
		k := reportKey{r.App, r.Opt}
		if _, ok := j.reports[k]; !ok {
			j.reportOrder = append(j.reportOrder, k)
		}
		j.reports[k] = r
	}
}

// pendingRecords returns the pending submits in submission order.
func (j *Journal) pendingRecords() []Record {
	out := make([]Record, 0, len(j.pending))
	for _, id := range j.order {
		if r, ok := j.pending[id]; ok {
			out = append(out, r)
		}
	}
	return out
}

// reportRecords returns the live settled-report records (latest per key)
// in first-insertion order.
func (j *Journal) reportRecords() []Record {
	out := make([]Record, 0, len(j.reports))
	for _, k := range j.reportOrder {
		if r, ok := j.reports[k]; ok {
			out = append(out, r)
		}
	}
	return out
}

// Append writes one record and folds it into the pending set. When the
// live file has grown past the compaction limit and more than half of it
// is settled history, the file is compacted in place (atomically) first.
func (j *Journal) Append(r Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: closed")
	}
	if r.Kind == KindReport && len(r.Data) > MaxReportData {
		return fmt.Errorf("journal: report record of %d bytes exceeds %d", len(r.Data), MaxReportData)
	}
	live := int64(len(j.pending) + len(j.reports))
	if j.stats.Bytes > j.limit && j.stats.Records > 2*live {
		// Auto-compaction is an optimization: if it fails the record is
		// still appended to the (intact) uncompacted file — unless the
		// failure lost the live handle, which compactLocked reports by
		// clearing it.
		if err := j.compactLocked(); err != nil && j.f == nil {
			return err
		}
	}
	buf := encodeRecord(r)
	if j.corrupt != nil {
		if damaged := j.corrupt(r.Kind.String(), buf); damaged != nil {
			buf = damaged
		}
	}
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	j.apply(r)
	j.stats.Records++
	j.stats.Bytes += int64(len(buf))
	j.stats.Appends++
	return nil
}

// Compact rewrites the live file to hold only the still-pending submits
// plus the live settled-report section and replaces it atomically.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: closed")
	}
	return j.compactLocked()
}

func (j *Journal) compactLocked() error {
	pend := j.pendingRecords()
	reps := j.reportRecords()
	keep := make([]Record, 0, len(pend)+len(reps))
	keep = append(keep, pend...)
	keep = append(keep, reps...)
	// Replace the file first, while the live handle still points at the
	// old inode: a failed rewrite leaves the journal exactly as it was,
	// appends included.
	size, err := j.rewrite(keep)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The rename already happened, so the old handle now references
		// the unlinked pre-compaction inode — appending through it would
		// silently write to a file nobody will ever replay. Surrender the
		// handle instead: later Appends fail loudly with "closed".
		j.f.Close()
		j.f = nil
		return fmt.Errorf("journal: compact: %w", err)
	}
	j.f.Close()
	j.f = f
	// Rebuild the bookkeeping from the compacted content so the order
	// slices stop carrying settled ids and superseded report keys.
	j.pending = make(map[int64]Record, len(pend))
	j.order = j.order[:0]
	j.reports = make(map[reportKey]Record, len(reps))
	j.reportOrder = j.reportOrder[:0]
	for _, r := range keep {
		j.apply(r)
	}
	j.stats.Records = int64(len(keep))
	j.stats.Bytes = size
	j.stats.Compactions++
	return nil
}

// rewrite writes header+records to a temp file and renames it over the
// live path — the atomic replacement step shared by corruption recovery
// and compaction. It returns the size of the written file.
func (j *Journal) rewrite(recs []Record) (int64, error) {
	buf := fileHeader()
	for _, r := range recs {
		buf = append(buf, encodeRecord(r)...)
	}
	tmp := j.path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return 0, fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("journal: %w", err)
	}
	return int64(len(buf)), nil
}

// SetCorrupt installs a fault-injection hook called on every Append
// with the record's kind name and encoded bytes. A non-nil return
// value is written to disk in place of the intact encoding; the
// in-memory state still folds the intact record, so the damage
// surfaces exactly where real bit rot would — on the next replay,
// which recovers by truncating at the damaged record. Chaos drills
// only; nil removes the hook.
func (j *Journal) SetCorrupt(f func(kind string, encoded []byte) []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.corrupt = f
}

// Pending returns the current pending submits in submission order.
func (j *Journal) Pending() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.pendingRecords()
}

// Reports returns the live settled-report records (latest per key) in
// first-insertion order — the persistent section a restarted report
// store recovers from.
func (j *Journal) Reports() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.reportRecords()
}

// MaxJobID returns the highest job id the journal has seen in any record
// — the floor a recovering scheduler must issue new ids above, so a
// restarted service never reuses the id of a settled job.
func (j *Journal) MaxJobID() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.maxID
}

// Stats returns the current counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.stats
	st.Pending = len(j.pending)
	st.Reports = len(j.reports)
	return st
}

// Close flushes and closes the live file. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	if err != nil {
		return fmt.Errorf("journal: close: %w", err)
	}
	return nil
}
