package service

import (
	"bytes"
	"testing"

	"backdroid/internal/appgen"
	"backdroid/internal/core"
	"backdroid/internal/dexdump"
	"backdroid/internal/service/journal"
	"backdroid/internal/simtime"
)

// TestSchedulerSettledResubmission pins the settled-tier contract: the
// second submission of one (app, options) pair performs zero engine work
// — no disassembly, no index builds, no analyzed methods — charged one
// flat settled-lookup unit, and its report is bitwise-identical to the
// cold run's in canonical encoding.
func TestSchedulerSettledResubmission(t *testing.T) {
	reports := NewReportStore(0)
	s := New(Config{Workers: 2, Reports: reports})
	defer s.Close()

	spec := testSpec(0)
	run := func() *core.Report {
		id, err := s.Submit(Job{Name: spec.Name, Source: sourceFor(spec), RunBackDroid: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		return res.BackDroid
	}
	cold := run()
	settled := run()

	if cold.Stats.SettledLookups != 0 || cold.Stats.DumpLinesDisassembled == 0 {
		t.Fatalf("cold run stats = %+v, want a real engine run", cold.Stats)
	}
	st := settled.Stats
	if st.SettledLookups != 1 {
		t.Fatalf("settled stats = %+v, want exactly one settled lookup", st)
	}
	if st.WorkUnits != simtime.SettledLookupUnits {
		t.Fatalf("settled run charged %d units, want the flat %d",
			st.WorkUnits, simtime.SettledLookupUnits)
	}
	if st.DumpLinesDisassembled != 0 || st.Search.IndexBuilds != 0 || st.MethodsAnalyzed != 0 {
		t.Fatalf("settled stats = %+v, want zero engine work", st)
	}
	if !bytes.Equal(EncodeReport(cold), EncodeReport(settled)) {
		t.Fatal("settled report is not bitwise-identical to the cold run's")
	}
	if detectionKey(cold) != detectionKey(settled) {
		t.Fatal("settled serving changed the detection report")
	}
	if rs := reports.Stats(); rs.Hits != 1 || rs.Misses != 1 || rs.Puts != 1 || rs.Entries != 1 {
		t.Fatalf("report store stats = %+v, want one miss, one put, one hit", rs)
	}
}

// TestSchedulerSettledEventReplayIdentity extends the streamed-vs-batch
// contract to settled servings: the replayed EventSink stream of a
// settled job carries exactly the stored report's sink pointers — the
// same objects the cold run streamed — bracketed by queued/started/done.
func TestSchedulerSettledEventReplayIdentity(t *testing.T) {
	events := make(chan Event, 256)
	reports := NewReportStore(0)
	s := New(Config{Workers: 1, Reports: reports, Events: events})

	spec := testSpec(1)
	results := make(map[JobID]*core.Report)
	var ids []JobID
	for i := 0; i < 2; i++ {
		id, err := s.Submit(Job{Name: spec.Name, Source: sourceFor(spec), RunBackDroid: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		results[id] = res.BackDroid
	}
	s.Close()
	close(events)

	cold, settled := results[ids[0]], results[ids[1]]
	if settled.Stats.SettledLookups != 1 {
		t.Fatalf("second job stats = %+v, want a settled serving", settled.Stats)
	}
	// The settled copy shares the cold report's sink pointers: the store
	// holds the cold run's report itself.
	if len(cold.Sinks) == 0 || len(cold.Sinks) != len(settled.Sinks) {
		t.Fatalf("sink counts diverged: cold %d, settled %d", len(cold.Sinks), len(settled.Sinks))
	}
	for j := range cold.Sinks {
		if cold.Sinks[j] != settled.Sinks[j] {
			t.Fatalf("settled sink %d is not the stored cold sink", j)
		}
	}

	streamed := make(map[JobID][]Event)
	for ev := range events {
		streamed[ev.Job] = append(streamed[ev.Job], ev)
	}
	for _, id := range ids {
		evs := streamed[id]
		if len(evs) != len(results[id].Sinks)+3 {
			t.Fatalf("job %d emitted %d events, want queued/started/%d sinks/done",
				id, len(evs), len(results[id].Sinks))
		}
		if evs[0].Kind != EventQueued || evs[1].Kind != EventStarted || evs[len(evs)-1].Kind != EventDone {
			t.Fatalf("job %d event bracket = %v...%v", id, evs[0].Kind, evs[len(evs)-1].Kind)
		}
		for j, ev := range evs[2 : len(evs)-1] {
			if ev.Kind != EventSink || ev.Sink != results[id].Sinks[j] {
				t.Fatalf("job %d streamed sink %d is not its batch report's", id, j)
			}
		}
	}
	// Exactly one terminal done per job, and the settled done carries the
	// flat lookup charge.
	doneEv := streamed[ids[1]][len(streamed[ids[1]])-1]
	if doneEv.Result == nil || doneEv.Result.BackDroid.Stats.WorkUnits != simtime.SettledLookupUnits {
		t.Fatalf("settled done event = %+v, want the flat settled charge", doneEv)
	}
}

// TestSchedulerSettledDistinctOptionsMiss pins fingerprint separation end
// to end: the same app under a different MaxDepth is a different content
// address, so it re-runs the engine instead of aliasing the settled entry.
func TestSchedulerSettledDistinctOptionsMiss(t *testing.T) {
	reports := NewReportStore(0)
	spec := testSpec(2)

	runWith := func(depth int) *core.Report {
		opts := core.DefaultOptions()
		opts.MaxDepth = depth
		s := New(Config{Workers: 1, Reports: reports, Options: &opts})
		defer s.Close()
		id, err := s.Submit(Job{Name: spec.Name, Source: sourceFor(spec), RunBackDroid: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		return res.BackDroid
	}
	first := runWith(25)
	second := runWith(24)
	if second.Stats.SettledLookups != 0 {
		t.Fatalf("different MaxDepth served settled: %+v", second.Stats)
	}
	if first.Stats.SettledLookups != 0 {
		t.Fatalf("first run served settled from an empty store: %+v", first.Stats)
	}
	if rs := reports.Stats(); rs.Entries != 2 || rs.Hits != 0 {
		t.Fatalf("report store stats = %+v, want two distinct entries, no hits", rs)
	}
}

// TestReportStoreJournalRecovery pins settled-tier durability: a report
// journaled by one process is recovered by the next, which then serves
// the resubmission with zero engine work and an identical encoding.
func TestReportStoreJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(3)

	j1, _, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rs1 := NewReportStore(0)
	rs1.AttachJournal(j1)
	s1 := New(Config{Workers: 1, Reports: rs1})
	id, err := s1.Submit(Job{Name: spec.Name, Source: sourceFor(spec), RunBackDroid: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s1.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	cold := res.BackDroid
	s1.Close()
	if st := rs1.Stats(); st.Journaled != 1 || st.Skipped != 0 {
		t.Fatalf("report store stats after cold run = %+v, want one journaled report", st)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh store over the reopened journal.
	j2, _, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	rs2 := NewReportStore(0)
	rs2.AttachJournal(j2)
	if n := rs2.Recover(); n != 1 {
		t.Fatalf("Recover = %d, want 1", n)
	}
	if st := rs2.Stats(); st.Recovered != 1 || st.Entries != 1 || st.Damaged != 0 {
		t.Fatalf("report store stats after recovery = %+v", st)
	}

	s2 := New(Config{Workers: 1, Reports: rs2})
	defer s2.Close()
	id2, err := s2.Submit(Job{Name: spec.Name, Source: sourceFor(spec), RunBackDroid: true})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s2.Wait(id2)
	if err != nil {
		t.Fatal(err)
	}
	settled := res2.BackDroid
	if settled.Stats.SettledLookups != 1 || settled.Stats.DumpLinesDisassembled != 0 ||
		settled.Stats.Search.IndexBuilds != 0 {
		t.Fatalf("post-restart resubmission stats = %+v, want a settled serving", settled.Stats)
	}
	if !bytes.Equal(EncodeReport(cold), EncodeReport(settled)) {
		t.Fatal("journal-recovered report is not bitwise-identical to the cold run's")
	}
}

// TestReportStoreEvictionAndRefresh pins the LRU byte-budget mechanics on
// hand-built reports: refreshes never duplicate, eviction drops the
// least-recently-used entry, and an entry larger than the whole budget is
// never admitted.
func TestReportStoreEvictionAndRefresh(t *testing.T) {
	small := codecTestReport()
	size := int64(len(EncodeReport(small)))
	rs := NewReportStore(2*size + size/2) // room for two entries, not three

	k := func(i uint64) ReportKey { return ReportKey{App: i, Options: i} }
	rs.Put(k(1), small)
	rs.Put(k(1), small) // refresh, not a second entry
	rs.Put(k(2), small)
	if st := rs.Stats(); st.Entries != 2 || st.Puts != 2 || st.Refreshes != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v, want two entries and one refresh", st)
	}
	// Touch key 1 so key 2 is the LRU victim of the next insert.
	if _, ok := rs.Get(k(1)); !ok {
		t.Fatal("present key missed")
	}
	rs.Put(k(3), small)
	if st := rs.Stats(); st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want one eviction", st)
	}
	if _, ok := rs.Get(k(2)); ok {
		t.Fatal("LRU victim survived the byte budget")
	}
	if _, ok := rs.Get(k(1)); !ok {
		t.Fatal("recently-used entry evicted out of order")
	}

	// Oversized: an encoding larger than the whole budget is refused.
	tiny := NewReportStore(4)
	tiny.Put(k(9), small)
	if st := tiny.Stats(); st.Entries != 0 || st.Puts != 0 {
		t.Fatalf("oversized report admitted: %+v", st)
	}

	// Encoded serves the canonical bytes without touching hit counters.
	pre := rs.Stats()
	enc, ok := rs.Encoded(k(1))
	if !ok || !bytes.Equal(enc, EncodeReport(small)) {
		t.Fatal("Encoded did not return the canonical encoding")
	}
	if post := rs.Stats(); post.Hits != pre.Hits || post.Misses != pre.Misses {
		t.Fatal("Encoded moved the hit/miss counters")
	}
}

// TestSchedulerSettledVsDeltaAddressing pins the interplay rule: the
// settled key is taken before the delta base is injected, so the second
// cold analysis of an updated app settles under its own address and a
// later resubmission of either version is a settled hit.
func TestSchedulerSettledVsDeltaAddressing(t *testing.T) {
	reports := NewReportStore(0)
	store := NewBundleStore(0)
	s := New(Config{Workers: 1, Reports: reports, Store: store})
	defer s.Close()

	v1 := testSpec(4)
	v2 := testSpec(4)
	v2.Seed += 7 // different content, same job name: an app update

	run := func(spec appgen.Spec) *core.Report {
		id, err := s.Submit(Job{Name: spec.Name, Source: sourceFor(spec), RunBackDroid: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		return res.BackDroid
	}
	r1 := run(v1)
	r2 := run(v2) // delta-eligible run over v1's bundle
	if r1.Stats.SettledLookups != 0 || r2.Stats.SettledLookups != 0 {
		t.Fatal("cold runs must not serve settled")
	}
	if rs := reports.Stats(); rs.Entries != 2 {
		t.Fatalf("report store stats = %+v, want one entry per version", rs)
	}
	// Both versions resubmit as settled hits, each bitwise-identical to
	// its own cold run.
	again1, again2 := run(v1), run(v2)
	if again1.Stats.SettledLookups != 1 || again2.Stats.SettledLookups != 1 {
		t.Fatalf("resubmission stats = %+v / %+v, want settled hits", again1.Stats, again2.Stats)
	}
	if !bytes.Equal(EncodeReport(r1), EncodeReport(again1)) ||
		!bytes.Equal(EncodeReport(r2), EncodeReport(again2)) {
		t.Fatal("settled replay of an updated app diverged from its cold run")
	}
	app1, _, err := appgen.Generate(v1)
	if err != nil {
		t.Fatal(err)
	}
	app2, _, err := appgen.Generate(v2)
	if err != nil {
		t.Fatal(err)
	}
	if dexdump.AppFingerprint(app1.Dexes) == dexdump.AppFingerprint(app2.Dexes) {
		t.Fatal("update specs must differ in app fingerprint")
	}
}
