// Package service is the long-running batch analysis layer on top of the
// BackDroid engine: a Scheduler with a bounded job queue and streaming
// per-sink events, backed by an in-memory content-addressed BundleStore so
// re-analyses of a known app fingerprint perform zero disassembly, zero
// index builds and zero disk I/O. experiments.RunCorpus is a thin client
// of this package; cmd/backdroidd exposes it as a service process.
package service

import (
	"container/list"
	"sync"
)

// StoreStats are the counters of a BundleStore, taken atomically.
type StoreStats struct {
	Entries   int   // live entries
	Bytes     int64 // bytes held by live entries
	Hits      int64 // GetBundle probes that found an entry
	Misses    int64 // GetBundle probes that did not
	Puts      int64 // PutBundle calls that inserted a new entry
	Refreshes int64 // PutBundle calls for an already-present fingerprint
	Evictions int64 // entries dropped to satisfy the byte budget
	Drops     int64 // entries removed by DropBundle (failed validation)
}

// BundleStore is an in-memory content-addressed cache of encoded .bdx
// bundles (dump + index sections), keyed by app fingerprint
// (dexdump.AppFingerprint). Because the key is a content hash of the
// app's bytecode, an entry is immutable for the lifetime of the store: a
// Put for a present fingerprint is a refresh, never a replacement.
// Eviction is LRU under a configurable byte budget; entries larger than
// the whole budget are not admitted at all (admitting one would evict the
// entire working set for a single app).
//
// A BundleStore is safe for concurrent use and implements
// core.BundleCache, so it plugs straight into core.Options.Bundles.
type BundleStore struct {
	mu      sync.Mutex
	budget  int64 // bytes; <= 0 means unlimited
	bytes   int64
	lru     *list.List // front = most recently used; values are *storeEntry
	entries map[uint64]*list.Element
	stats   StoreStats

	// inflight serializes bundle construction per fingerprint (see
	// LockFingerprint).
	inflight map[uint64]*fpLock

	// shards, when attached, learns the per-shard postings payloads of
	// every admitted bundle (see ShardStore).
	shards *ShardStore
}

type storeEntry struct {
	fingerprint uint64
	data        []byte
}

type fpLock struct {
	mu   sync.Mutex
	refs int
}

// NewBundleStore builds a store with the given byte budget; budgetBytes
// <= 0 means unlimited.
func NewBundleStore(budgetBytes int64) *BundleStore {
	return &BundleStore{
		budget:   budgetBytes,
		lru:      list.New(),
		entries:  make(map[uint64]*list.Element),
		inflight: make(map[uint64]*fpLock),
	}
}

// GetBundle returns the bundle bytes for the fingerprint and marks the
// entry most recently used. The returned slice is shared and must be
// treated as read-only (every consumer of .bdx bytes already does).
func (s *BundleStore) GetBundle(fingerprint uint64) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[fingerprint]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	s.stats.Hits++
	s.lru.MoveToFront(el)
	return el.Value.(*storeEntry).data, true
}

// PutBundle inserts the bundle for the fingerprint, evicting
// least-recently-used entries until the byte budget holds. A Put for a
// present fingerprint only refreshes its recency — entries are
// content-addressed, so the bytes are identical. Empty bundles and
// bundles larger than the whole budget are not admitted.
func (s *BundleStore) PutBundle(fingerprint uint64, data []byte) {
	if len(data) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[fingerprint]; ok {
		s.stats.Refreshes++
		s.lru.MoveToFront(el)
		return
	}
	if s.budget > 0 && int64(len(data)) > s.budget {
		return
	}
	s.entries[fingerprint] = s.lru.PushFront(&storeEntry{fingerprint: fingerprint, data: data})
	s.bytes += int64(len(data))
	s.stats.Puts++
	if s.shards != nil {
		// The shard store has its own lock and never calls back here.
		s.shards.Observe(data)
	}
	for s.budget > 0 && s.bytes > s.budget {
		back := s.lru.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*storeEntry)
		s.lru.Remove(back)
		delete(s.entries, ent.fingerprint)
		s.bytes -= int64(len(ent.data))
		s.stats.Evictions++
	}
}

// DropBundle removes the entry for the fingerprint, if any. The engine
// calls it (through the optional core seam) when a stored bundle fails
// validation, so a damaged entry is rebuilt instead of pinned: without
// the drop, PutBundle would treat the fingerprint as present and keep
// the bad bytes forever.
func (s *BundleStore) DropBundle(fingerprint uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[fingerprint]
	if !ok {
		return
	}
	ent := el.Value.(*storeEntry)
	s.lru.Remove(el)
	delete(s.entries, fingerprint)
	s.bytes -= int64(len(ent.data))
	s.stats.Drops++
}

// Contains reports whether the fingerprint is cached, without touching
// recency or the hit/miss counters — the scheduler's pre-probe for the
// single-build fast path.
func (s *BundleStore) Contains(fingerprint uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[fingerprint]
	return ok
}

// Fingerprints returns the cached fingerprints in most-recently-used
// order (for tests and diagnostics).
func (s *BundleStore) Fingerprints() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, 0, s.lru.Len())
	for el := s.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*storeEntry).fingerprint)
	}
	return out
}

// Stats returns the current counters.
func (s *BundleStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.lru.Len()
	st.Bytes = s.bytes
	return st
}

// LockFingerprint serializes bundle construction per fingerprint: the
// first caller proceeds immediately, concurrent callers for the same
// fingerprint block until its release runs. The scheduler takes the lock
// when a job's fingerprint is not yet cached, so N queued jobs for the
// same app perform one cold build and N-1 fully warm runs.
func (s *BundleStore) LockFingerprint(fingerprint uint64) (release func()) {
	s.mu.Lock()
	l := s.inflight[fingerprint]
	if l == nil {
		l = &fpLock{}
		s.inflight[fingerprint] = l
	}
	l.refs++
	s.mu.Unlock()

	l.mu.Lock()
	return func() {
		l.mu.Unlock()
		s.mu.Lock()
		l.refs--
		if l.refs == 0 {
			delete(s.inflight, fingerprint)
		}
		s.mu.Unlock()
	}
}
