package experiments

import (
	"fmt"
	"strings"

	"backdroid/internal/core"
)

// CacheStatsResult aggregates the Sec. IV-F engineering measurements over
// a corpus run.
type CacheStatsResult struct {
	// Search command caching (paper: avg 23.39%, min 2.97%, max 88.95%).
	SearchRateAvg float64
	SearchRateMin float64
	SearchRateMax float64
	// Sink API call caching (paper: avg 13.86%, max 68.18%).
	SinkRateAvg float64
	SinkRateMax float64
	// Loop detection (paper: >=1 dead loop in 60% of apps; CrossBackward
	// most common).
	AppsWithLoops  float64
	LoopsByKind    map[core.LoopKind]int
	MostCommonLoop core.LoopKind
}

// CacheStats computes the engineering statistics from the BackDroid runs.
func CacheStats(run *CorpusRun) CacheStatsResult {
	res := CacheStatsResult{
		SearchRateMin: 1,
		LoopsByKind:   make(map[core.LoopKind]int),
	}
	apps := 0
	withLoops := 0
	for _, a := range run.Apps {
		if a.BackDroid == nil {
			continue
		}
		apps++
		st := a.BackDroid.Stats

		sr := st.Search.Rate()
		res.SearchRateAvg += sr
		if sr < res.SearchRateMin {
			res.SearchRateMin = sr
		}
		if sr > res.SearchRateMax {
			res.SearchRateMax = sr
		}

		kr := st.SinkCacheRate()
		res.SinkRateAvg += kr
		if kr > res.SinkRateMax {
			res.SinkRateMax = kr
		}

		if st.LoopsDetected() {
			withLoops++
		}
		for k, n := range st.Loops {
			res.LoopsByKind[k] += n
		}
	}
	if apps > 0 {
		res.SearchRateAvg /= float64(apps)
		res.SinkRateAvg /= float64(apps)
		res.AppsWithLoops = float64(withLoops) / float64(apps)
	}
	best := 0
	for k, n := range res.LoopsByKind {
		if n > best {
			best = n
			res.MostCommonLoop = k
		}
	}
	return res
}

// Render prints the Sec. IV-F statistics with the paper's values.
func (c CacheStatsResult) Render() string {
	var b strings.Builder
	b.WriteString("Sec. IV-F engineering statistics (paper vs measured)\n")
	fmt.Fprintf(&b, "  search cache rate avg: paper 23.39%%  measured %5.2f%%\n", c.SearchRateAvg*100)
	fmt.Fprintf(&b, "  search cache rate min: paper  2.97%%  measured %5.2f%%\n", c.SearchRateMin*100)
	fmt.Fprintf(&b, "  search cache rate max: paper 88.95%%  measured %5.2f%%\n", c.SearchRateMax*100)
	fmt.Fprintf(&b, "  sink cache rate avg:   paper 13.86%%  measured %5.2f%%\n", c.SinkRateAvg*100)
	fmt.Fprintf(&b, "  sink cache rate max:   paper 68.18%%  measured %5.2f%%\n", c.SinkRateMax*100)
	fmt.Fprintf(&b, "  apps with >=1 dead loop: paper 60%%   measured %5.2f%%\n", c.AppsWithLoops*100)
	fmt.Fprintf(&b, "  most common loop kind: paper CrossBackward  measured %v\n", c.MostCommonLoop)
	for _, k := range []core.LoopKind{core.CrossBackward, core.InnerBackward, core.CrossForward, core.InnerForward} {
		fmt.Fprintf(&b, "    %-14s %6d\n", k, c.LoopsByKind[k])
	}
	return b.String()
}

// ClinitResult verifies the Sec. IV-C claim: every <clinit> proved
// reachable by the recursive class-use search is truly reachable from an
// entry component.
type ClinitResult struct {
	Claimed   int // clinit-backed sinks BackDroid reported reachable
	Confirmed int // of those, truly reachable per ground truth
}

// ClinitCheck scores the recursive static-initializer search against
// ground truth (paper: 37/37).
func ClinitCheck(run *CorpusRun) ClinitResult {
	var res ClinitResult
	for _, a := range run.Apps {
		if a.BackDroid == nil {
			continue
		}
		for _, truth := range a.Truth.Sinks {
			if truth.Spec.Flow.String() != "clinit" {
				continue
			}
			for _, s := range a.BackDroid.Sinks {
				if s.Call.Caller.Class == truth.Class && s.Call.Caller.Name == truth.Method && s.Reachable {
					res.Claimed++
					if truth.Reachable {
						res.Confirmed++
					}
				}
			}
		}
	}
	return res
}

// Render prints the clinit verification.
func (c ClinitResult) Render() string {
	return fmt.Sprintf(
		"Sec. IV-C static initializer reachability: %d/%d confirmed (paper: 37/37)\n",
		c.Confirmed, c.Claimed)
}
