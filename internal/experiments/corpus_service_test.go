package experiments

import (
	"fmt"
	"testing"

	"backdroid/internal/appgen"
	"backdroid/internal/service"
)

func detectionSummary(run *CorpusRun) string {
	out := ""
	for _, a := range run.Apps {
		if a.BackDroid == nil {
			continue
		}
		out += fmt.Sprintf("== %s ==\n", a.BackDroid.App)
		for _, s := range a.BackDroid.Sinks {
			out += fmt.Sprintf("%s r=%v i=%v %v\n", s.Call, s.Reachable, s.Insecure, s.Values)
		}
	}
	return out
}

// TestRunCorpusSchedulerParity pins the thin-client refactor: a corpus
// run through an external scheduler (with a bundle store) produces the
// same detection report as the private-scheduler path, and replaying the
// corpus through the same scheduler performs zero disassembly and zero
// index builds.
func TestRunCorpusSchedulerParity(t *testing.T) {
	opts := appgen.CorpusOptions{Apps: 5, Seed: 99, SizeScale: 0.08}

	plain, err := RunCorpus(opts, RunConfig{RunBackDroid: true, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}

	sched := service.New(service.Config{Workers: 3, Store: service.NewBundleStore(0)})
	defer sched.Close()
	cfg := RunConfig{RunBackDroid: true, Scheduler: sched}
	first, err := RunCorpus(opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunCorpus(opts, cfg)
	if err != nil {
		t.Fatal(err)
	}

	want := detectionSummary(plain)
	if got := detectionSummary(first); got != want {
		t.Fatal("scheduler first pass diverged from the plain RunCorpus path")
	}
	if got := detectionSummary(second); got != want {
		t.Fatal("scheduler replay diverged from the plain RunCorpus path")
	}

	for i, a := range second.Apps {
		st := a.BackDroid.Stats
		if st.DumpLinesDisassembled != 0 || st.Search.IndexBuilds != 0 {
			t.Fatalf("replayed app %d stats = %+v, want zero disassembly and zero builds", i, st)
		}
		if st.BundleStoreHits != 1 {
			t.Fatalf("replayed app %d missed the bundle store: %+v", i, st)
		}
		if st.WorkUnits >= first.Apps[i].BackDroid.Stats.WorkUnits {
			t.Fatalf("replayed app %d charged %d units, first pass %d — reuse must be cheaper",
				i, st.WorkUnits, first.Apps[i].BackDroid.Stats.WorkUnits)
		}
	}
}

// TestRunCorpusWorkerIndependenceThroughScheduler re-pins the
// determinism contract on the new scheduler substrate: any worker count,
// same corpus, bitwise-identical detection output.
func TestRunCorpusWorkerIndependenceThroughScheduler(t *testing.T) {
	opts := appgen.CorpusOptions{Apps: 4, Seed: 7, SizeScale: 0.08}
	var want string
	for _, workers := range []int{1, 2, 5} {
		run, err := RunCorpus(opts, RunConfig{RunBackDroid: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got := detectionSummary(run)
		if want == "" {
			want = got
		} else if got != want {
			t.Fatalf("workers=%d changed the detection output", workers)
		}
	}
}

// TestRunCorpusTenantParity pins RunConfig.Tenant: two corpora submitted
// as different tenants of one multi-tenant scheduler each reproduce
// their private-run detection output bit for bit — fair dispatch
// reorders work, never results — and the per-tenant counters attribute
// every job to its stream.
func TestRunCorpusTenantParity(t *testing.T) {
	optsA := appgen.CorpusOptions{Apps: 4, Seed: 7, SizeScale: 0.08}
	optsB := appgen.CorpusOptions{Apps: 3, Seed: 8, SizeScale: 0.08}
	plainA, err := RunCorpus(optsA, RunConfig{RunBackDroid: true})
	if err != nil {
		t.Fatal(err)
	}
	plainB, err := RunCorpus(optsB, RunConfig{RunBackDroid: true})
	if err != nil {
		t.Fatal(err)
	}

	sched := service.New(service.Config{
		Workers: 2,
		Tenants: map[string]service.TenantConfig{"a": {Weight: 2}, "b": {Weight: 1}},
	})
	defer sched.Close()
	gotA, err := RunCorpus(optsA, RunConfig{RunBackDroid: true, Scheduler: sched, Tenant: "a"})
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := RunCorpus(optsB, RunConfig{RunBackDroid: true, Scheduler: sched, Tenant: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if detectionSummary(gotA) != detectionSummary(plainA) {
		t.Fatal("tenant a's corpus diverged from its private run")
	}
	if detectionSummary(gotB) != detectionSummary(plainB) {
		t.Fatal("tenant b's corpus diverged from its private run")
	}
	counts := map[string]int64{}
	for _, ts := range sched.Stats().Tenants {
		counts[ts.Name] = ts.Dispatched
	}
	if counts["a"] != int64(optsA.Apps) || counts["b"] != int64(optsB.Apps) {
		t.Fatalf("per-tenant dispatch counts = %v", counts)
	}
}
