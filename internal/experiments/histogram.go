// Package experiments regenerates every table and figure of the paper's
// evaluation (Table I, Figs. 1, 7, 8, 9, the Sec. VI-B headline numbers,
// the Sec. VI-C detection comparison, and the Sec. IV-F engineering
// statistics). Each experiment returns a structured result plus a rendered
// table; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Bucket is one histogram bin over simulated minutes.
type Bucket struct {
	Label string
	LoMin float64 // inclusive
	HiMin float64 // exclusive; +Inf for the last open bucket
}

// Histogram buckets matching the paper's figures.
var (
	// Fig1Buckets match Fig. 1 (FlowDroid call graph generation).
	Fig1Buckets = []Bucket{
		{"1m - 5m", 0, 5},
		{"5m - 10m", 5, 10},
		{"10m - 20m", 10, 20},
		{"20m - 30m", 20, 30},
		{"30m - 100m", 30, 100},
		{"Timeout", math.Inf(1), math.Inf(1)},
	}
	// Fig7Buckets match Fig. 7 (BackDroid).
	Fig7Buckets = []Bucket{
		{"0m - 1m", 0, 1},
		{"1m - 5m", 1, 5},
		{"5m - 10m", 5, 10},
		{"10m - 20m", 10, 20},
		{"20m - 30m", 20, 30},
		{"30m - 100m", 30, 100},
	}
	// Fig8Buckets match Fig. 8 (Amandroid).
	Fig8Buckets = []Bucket{
		{"1m - 5m", 0, 5},
		{"5m - 10m", 5, 10},
		{"10m - 30m", 10, 30},
		{"30m - 100m", 30, 100},
		{"100m - 300m", 100, 300},
		{"Timeout", math.Inf(1), math.Inf(1)},
	}
)

// Sample is one app's timing outcome.
type Sample struct {
	App      string
	Minutes  float64
	TimedOut bool
}

// HistogramResult counts samples per bucket.
type HistogramResult struct {
	Title   string
	Buckets []Bucket
	Counts  []int
	Total   int
}

// MakeHistogram buckets the samples. Timed-out samples land in the bucket
// whose Lo is +Inf (the "Timeout" bar); if none exists they are dropped.
func MakeHistogram(title string, samples []Sample, buckets []Bucket) HistogramResult {
	res := HistogramResult{Title: title, Buckets: buckets, Counts: make([]int, len(buckets))}
	for _, s := range samples {
		res.Total++
		if s.TimedOut {
			for i, b := range buckets {
				if math.IsInf(b.LoMin, 1) {
					res.Counts[i]++
					break
				}
			}
			continue
		}
		for i, b := range buckets {
			if math.IsInf(b.LoMin, 1) {
				continue
			}
			hi := b.HiMin
			if s.Minutes >= b.LoMin && (s.Minutes < hi || (math.IsInf(hi, 1) && !s.TimedOut)) {
				res.Counts[i]++
				break
			}
		}
	}
	return res
}

// Render draws the histogram as an ASCII table with bars.
func (h HistogramResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d)\n", h.Title, h.Total)
	maxCount := 1
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, bk := range h.Buckets {
		bar := strings.Repeat("#", h.Counts[i]*40/maxCount)
		fmt.Fprintf(&b, "  %-12s %4d  %s\n", bk.Label, h.Counts[i], bar)
	}
	return b.String()
}

// Median returns the median of the values (0 for empty input).
func Median(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 0 {
		return (sorted[mid-1] + sorted[mid]) / 2
	}
	return sorted[mid]
}

// Fraction returns the share of samples for which pred holds.
func Fraction(samples []Sample, pred func(Sample) bool) float64 {
	if len(samples) == 0 {
		return 0
	}
	n := 0
	for _, s := range samples {
		if pred(s) {
			n++
		}
	}
	return float64(n) / float64(len(samples))
}
