package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"backdroid/internal/appgen"
	"backdroid/internal/bcsearch"
	"backdroid/internal/core"
)

// appFingerprint reduces one AppRun to the deterministic facts a figure or
// table could consume, so runs with different worker counts can be
// compared exactly (WallTime is the only legitimately nondeterministic
// field and is excluded).
func appFingerprint(a AppRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s truth=%d", a.Spec.Name, len(a.Truth.Sinks))
	if r := a.BackDroid; r != nil {
		fmt.Fprintf(&b, " bd[timeout=%v units=%d search=%+v sinkCached=%d methods=%d",
			r.TimedOut, r.Stats.WorkUnits, r.Stats.Search, r.Stats.SinkCallsCached, r.Stats.MethodsAnalyzed)
		for _, s := range r.Sinks {
			fmt.Fprintf(&b, " %s reach=%v insecure=%v values=%v",
				s.Call.String(), s.Reachable, s.Insecure, s.Values)
		}
		b.WriteString("]")
	}
	if r := a.WholeApp; r != nil {
		fmt.Fprintf(&b, " wa[timeout=%v units=%d err=%v]", r.TimedOut, r.Stats.WorkUnits, r.Err)
	}
	if r := a.CallGraph; r != nil {
		fmt.Fprintf(&b, " cg[timeout=%v units=%d]", r.TimedOut, r.Stats.WorkUnits)
	}
	return b.String()
}

func corpusFingerprint(run *CorpusRun) []string {
	out := make([]string, len(run.Apps))
	for i, a := range run.Apps {
		out[i] = appFingerprint(a)
	}
	return out
}

// TestRunCorpusDeterministicAcrossWorkers is the concurrency contract of
// the pipeline: the same corpus analyzed with 1, 2 and 5 workers yields
// identical per-app results and identical figures, because every worker
// owns its app's engines outright.
func TestRunCorpusDeterministicAcrossWorkers(t *testing.T) {
	opts := appgen.CorpusOptions{Apps: 5, Seed: 424242, SizeScale: 0.05}
	cfg := RunConfig{RunBackDroid: true, RunWholeApp: true, RunCallGraph: true}

	base, err := RunCorpus(opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := corpusFingerprint(base)

	for _, workers := range []int{2, 5, 16} {
		cfg := cfg
		cfg.Workers = workers
		run, err := RunCorpus(opts, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := corpusFingerprint(run)
		if !reflect.DeepEqual(got, want) {
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("workers=%d app %d:\n  sequential: %s\n  parallel:   %s",
						workers, i, want[i], got[i])
				}
			}
			t.Fatalf("workers=%d: results differ from sequential run", workers)
		}
		if h1, h2 := Fig7(base).Render(), Fig7(run).Render(); h1 != h2 {
			t.Errorf("workers=%d: Fig7 differs\n%s\nvs\n%s", workers, h1, h2)
		}
		if h1, h2 := Headline(base).Render(), Headline(run).Render(); h1 != h2 {
			t.Errorf("workers=%d: headline differs", workers)
		}
	}
}

// TestRunCorpusParallelLinearBackendAblation checks the worker pool
// composes with ablation options: the linear backend threaded through
// BackDroidOptions is used by every worker's engine.
func TestRunCorpusParallelLinearBackendAblation(t *testing.T) {
	opts := core.DefaultOptions()
	opts.SearchBackend = bcsearch.BackendLinear
	run, err := RunCorpus(
		appgen.CorpusOptions{Apps: 4, Seed: 7, SizeScale: 0.05},
		RunConfig{RunBackDroid: true, BackDroidOptions: &opts, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range run.Apps {
		st := a.BackDroid.Stats.Search
		if st.IndexBuilds != 0 || st.PostingsScanned != 0 {
			t.Errorf("%s: linear ablation used the index: %+v", a.Spec.Name, st)
		}
		if st.LinesScanned == 0 {
			t.Errorf("%s: linear backend scanned no lines", a.Spec.Name)
		}
	}
}

// TestRunCorpusParallelProgressCount verifies the progress stream emits
// exactly one completion line per app even under concurrency.
func TestRunCorpusParallelProgressCount(t *testing.T) {
	var sb strings.Builder
	_, err := RunCorpus(
		appgen.CorpusOptions{Apps: 6, Seed: 3, SizeScale: 0.05},
		RunConfig{RunBackDroid: true, Workers: 3, Progress: &syncWriter{b: &sb}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(sb.String(), "done\n")
	if lines != 6 {
		t.Errorf("progress lines = %d, want 6:\n%s", lines, sb.String())
	}
}

// syncWriter serializes writes; RunCorpus already holds its progress lock
// while writing, so this only shields the strings.Builder from misuse if
// that invariant ever breaks (the race detector would flag it).
type syncWriter struct{ b *strings.Builder }

func (w *syncWriter) Write(p []byte) (int, error) { return w.b.Write(p) }
