package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"backdroid/internal/appgen"
)

// Table1Row is one year of the app-size study.
type Table1Row struct {
	Year       int
	PaperAvgMB float64
	PaperMedMB float64
	AvgMB      float64
	MedMB      float64
	Samples    int
}

// Table1Result reproduces Table I: average and median popular-app sizes
// per year, regenerated from the corpus sampler.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 samples per-year app size populations from the corpus model and
// summarizes them the way the paper's Table I does.
func Table1(seed int64) Table1Result {
	rng := rand.New(rand.NewSource(seed))
	var res Table1Result
	for _, ys := range appgen.PaperYearStats() {
		sizes := appgen.SampleSizesMB(rng, ys.AvgMB, ys.MedMB, ys.Samples)
		stats := appgen.Summarize(sizes)
		res.Rows = append(res.Rows, Table1Row{
			Year:       ys.Year,
			PaperAvgMB: ys.AvgMB,
			PaperMedMB: ys.MedMB,
			AvgMB:      stats.AvgMB,
			MedMB:      stats.MedMB,
			Samples:    ys.Samples,
		})
	}
	return res
}

// Render draws the table in the paper's layout, with measured values next
// to the paper's.
func (t Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table I: average and median app sizes, 2014-2018\n")
	b.WriteString("  Year | Avg (paper) | Avg (repro) | Median (paper) | Median (repro) | #Samples\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %d |     %5.1fMB |     %5.1fMB |        %5.1fMB |        %5.1fMB | %6d\n",
			r.Year, r.PaperAvgMB, r.AvgMB, r.PaperMedMB, r.MedMB, r.Samples)
	}
	return b.String()
}
