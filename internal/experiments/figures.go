package experiments

import (
	"fmt"
	"strings"
)

// Fig1 regenerates Fig. 1: the distribution of whole-app (FlowDroid-style,
// context-sensitive geomPTA) call graph generation times over the
// evaluation corpus, with the 300-simulated-minute timeout.
func Fig1(run *CorpusRun) HistogramResult {
	return MakeHistogram(
		"Fig. 1: whole-app call graph generation time (FlowDroid-style)",
		run.CallGraphSamples(), Fig1Buckets)
}

// Fig7 regenerates Fig. 7: the distribution of BackDroid analysis times.
func Fig7(run *CorpusRun) HistogramResult {
	return MakeHistogram(
		"Fig. 7: BackDroid analysis time distribution",
		run.BackDroidSamples(), Fig7Buckets)
}

// Fig8 regenerates Fig. 8: the distribution of whole-app (Amandroid-style)
// analysis times, including the timeout bar.
func Fig8(run *CorpusRun) HistogramResult {
	return MakeHistogram(
		"Fig. 8: whole-app analysis time distribution (Amandroid-style)",
		run.WholeAppSamples(), Fig8Buckets)
}

// Fig9Point is one app's (sink count, minutes) sample.
type Fig9Point struct {
	App     string
	Sinks   int
	Minutes float64
}

// Fig9Result regenerates Fig. 9: BackDroid's analysis time against the
// number of sink API calls analyzed per app.
type Fig9Result struct {
	Points []Fig9Point
	// AvgSinksPerApp should be near the paper's 20.93.
	AvgSinksPerApp float64
	// SecondsPerSink is the median per-sink analysis rate; the paper
	// observes most apps under 30 seconds per sink call.
	SecondsPerSink float64
	// Outlier is the slowest app (the paper's Huawei Health analogue).
	Outlier Fig9Point
}

// Fig9 extracts the per-app sink-count-vs-time relationship.
func Fig9(run *CorpusRun) Fig9Result {
	var res Fig9Result
	totalSinks := 0
	var rates []float64
	for _, a := range run.Apps {
		if a.BackDroid == nil {
			continue
		}
		p := Fig9Point{
			App:     a.Spec.Name,
			Sinks:   a.BackDroid.Stats.SinkCallsTotal,
			Minutes: a.BackDroid.Stats.SimMinutes,
		}
		res.Points = append(res.Points, p)
		totalSinks += p.Sinks
		if p.Sinks > 0 {
			rates = append(rates, p.Minutes*60/float64(p.Sinks))
		}
		if p.Minutes > res.Outlier.Minutes {
			res.Outlier = p
		}
	}
	if len(res.Points) > 0 {
		res.AvgSinksPerApp = float64(totalSinks) / float64(len(res.Points))
	}
	res.SecondsPerSink = Median(rates)
	return res
}

// Render prints the scatter as CSV-ish rows plus the summary line.
func (f Fig9Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 9: sink API calls vs BackDroid analysis time\n")
	b.WriteString("  app, sinks, minutes\n")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "  %s, %d, %.2f\n", p.App, p.Sinks, p.Minutes)
	}
	fmt.Fprintf(&b, "  avg sinks/app = %.2f (paper: 20.93)\n", f.AvgSinksPerApp)
	fmt.Fprintf(&b, "  median rate = %.1f s/sink (paper: <30 s/sink for the majority)\n", f.SecondsPerSink)
	fmt.Fprintf(&b, "  outlier = %s: %d sinks, %.1f min (paper: 121 sinks, 81 min)\n",
		f.Outlier.App, f.Outlier.Sinks, f.Outlier.Minutes)
	return b.String()
}

// HeadlineResult regenerates the Sec. VI-B headline comparison.
type HeadlineResult struct {
	BackDroidMedianMin float64 // paper: 2.13
	WholeAppMedianMin  float64 // paper: 78.15
	Speedup            float64 // paper: ~37x
	BackDroidTimeouts  float64 // paper: 0
	WholeAppTimeouts   float64 // paper: 0.35
	BackDroidUnder1m   float64 // paper: ~0.30
	BackDroidUnder10m  float64 // paper: ~0.77
	WholeAppUnder10m   float64 // paper: ~0.17
	CallGraphMedianMin float64 // paper Fig. 1: 9.76
	CallGraphTimeouts  float64 // paper Fig. 1: 0.24
}

// Headline computes the Sec. VI-B summary numbers from a corpus run.
// Medians are computed over all per-app times with timed-out runs counted
// at the timeout budget (a lower bound, as in the paper).
func Headline(run *CorpusRun) HeadlineResult {
	var res HeadlineResult

	minutesAtLeast := func(ss []Sample) []float64 {
		out := make([]float64, 0, len(ss))
		for _, s := range ss {
			if s.TimedOut {
				out = append(out, TimeoutBudgetMinutes)
			} else {
				out = append(out, s.Minutes)
			}
		}
		return out
	}

	bd := run.BackDroidSamples()
	wa := run.WholeAppSamples()
	cg := run.CallGraphSamples()

	res.BackDroidMedianMin = Median(minutesAtLeast(bd))
	res.WholeAppMedianMin = Median(minutesAtLeast(wa))
	if res.BackDroidMedianMin > 0 {
		res.Speedup = res.WholeAppMedianMin / res.BackDroidMedianMin
	}
	res.BackDroidTimeouts = Fraction(bd, func(s Sample) bool { return s.TimedOut })
	res.WholeAppTimeouts = Fraction(wa, func(s Sample) bool { return s.TimedOut })
	res.BackDroidUnder1m = Fraction(bd, func(s Sample) bool { return !s.TimedOut && s.Minutes < 1 })
	res.BackDroidUnder10m = Fraction(bd, func(s Sample) bool { return !s.TimedOut && s.Minutes < 10 })
	res.WholeAppUnder10m = Fraction(wa, func(s Sample) bool { return !s.TimedOut && s.Minutes < 10 })
	res.CallGraphMedianMin = Median(minutesAtLeast(cg))
	res.CallGraphTimeouts = Fraction(cg, func(s Sample) bool { return s.TimedOut })
	return res
}

// Render prints the paper-vs-measured headline table.
func (h HeadlineResult) Render() string {
	var b strings.Builder
	b.WriteString("Sec. VI-B headline comparison (paper vs measured)\n")
	row := func(name string, paper, got float64, unit string) {
		fmt.Fprintf(&b, "  %-34s paper %8.2f%s   measured %8.2f%s\n", name, paper, unit, got, unit)
	}
	row("BackDroid median time", 2.13, h.BackDroidMedianMin, "m")
	row("Whole-app median time", 78.15, h.WholeAppMedianMin, "m")
	row("Median speedup", 37, h.Speedup, "x")
	row("BackDroid timeout rate", 0, h.BackDroidTimeouts*100, "%")
	row("Whole-app timeout rate", 35, h.WholeAppTimeouts*100, "%")
	row("BackDroid apps < 1 min", 30, h.BackDroidUnder1m*100, "%")
	row("BackDroid apps < 10 min", 77, h.BackDroidUnder10m*100, "%")
	row("Whole-app apps < 10 min", 17, h.WholeAppUnder10m*100, "%")
	row("Call graph (Fig. 1) median", 9.76, h.CallGraphMedianMin, "m")
	row("Call graph timeout rate", 24, h.CallGraphTimeouts*100, "%")
	return b.String()
}
