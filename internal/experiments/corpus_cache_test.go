package experiments

import (
	"testing"

	"backdroid/internal/appgen"
	"backdroid/internal/bcsearch"
	"backdroid/internal/core"
)

// TestRunCorpusIndexCacheReuse pins the corpus-reuse contract of the
// persistent index cache: re-running the same corpus with the same cache
// directory performs zero index builds — every app loads its serialized
// index — while detection outcomes stay identical and total simulated
// work drops.
func TestRunCorpusIndexCacheReuse(t *testing.T) {
	dir := t.TempDir()
	opts := appgen.CorpusOptions{Apps: 6, Seed: 20260727, SizeScale: 0.08}
	bd := core.DefaultOptions()
	bd.SearchBackend = bcsearch.BackendSharded
	cfg := RunConfig{
		RunBackDroid:     true,
		BackDroidOptions: &bd,
		Workers:          3,
		IndexCacheDir:    dir,
	}

	cold, err := RunCorpus(opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunCorpus(opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Apps) != len(warm.Apps) {
		t.Fatalf("app counts differ: %d vs %d", len(cold.Apps), len(warm.Apps))
	}

	var coldBuilds, warmBuilds, warmHits int
	var coldUnits, warmUnits int64
	for i := range cold.Apps {
		c, w := cold.Apps[i].BackDroid, warm.Apps[i].BackDroid
		coldBuilds += c.Stats.Search.IndexBuilds
		warmBuilds += w.Stats.Search.IndexBuilds
		warmHits += w.Stats.Search.IndexCacheHits
		coldUnits += c.Stats.WorkUnits
		warmUnits += w.Stats.WorkUnits

		if len(c.Sinks) != len(w.Sinks) {
			t.Fatalf("app %s: sink counts differ cold/warm", cold.Apps[i].Spec.Name)
		}
		for j := range c.Sinks {
			cs, ws := c.Sinks[j], w.Sinks[j]
			if cs.Call.String() != ws.Call.String() ||
				cs.Reachable != ws.Reachable || cs.Insecure != ws.Insecure {
				t.Errorf("app %s sink %d: cold/warm verdicts differ",
					cold.Apps[i].Spec.Name, j)
			}
		}
	}
	if coldBuilds == 0 {
		t.Fatal("cold run built no indexes — corpus too small to be meaningful")
	}
	if warmBuilds != 0 {
		t.Errorf("warm corpus run built %d indexes, want 0 (tokenization must be skipped)", warmBuilds)
	}
	if warmHits != coldBuilds {
		t.Errorf("warm cache hits = %d, cold builds = %d — every built index should be reused", warmHits, coldBuilds)
	}
	if warmUnits >= coldUnits {
		t.Errorf("warm corpus charged %d units, cold %d — cache must cut simulated work", warmUnits, coldUnits)
	}
}
