package experiments

import (
	"math"
	"strings"
	"testing"

	"backdroid/internal/appgen"
	"backdroid/internal/core"
)

func tinyCorpus(t *testing.T, cfg RunConfig) *CorpusRun {
	t.Helper()
	run, err := RunCorpus(appgen.CorpusOptions{Apps: 6, Seed: 99, SizeScale: 0.05}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestMakeHistogramBuckets(t *testing.T) {
	samples := []Sample{
		{App: "a", Minutes: 0.5},
		{App: "b", Minutes: 3},
		{App: "c", Minutes: 7},
		{App: "d", Minutes: 50},
		{App: "e", TimedOut: true},
	}
	h := MakeHistogram("test", samples, Fig8Buckets)
	if h.Total != 5 {
		t.Errorf("total = %d", h.Total)
	}
	// Fig8: 1-5m bucket covers [0,5): a and b; 5-10m: c; 30-100m: d;
	// timeout: e.
	want := []int{2, 1, 0, 1, 0, 1}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bucket %q = %d, want %d", h.Buckets[i].Label, h.Counts[i], w)
		}
	}
	if !strings.Contains(h.Render(), "Timeout") {
		t.Error("render must include the timeout bar")
	}
}

func TestMakeHistogramDropsTimeoutsWithoutBucket(t *testing.T) {
	samples := []Sample{{App: "a", Minutes: 0.5}, {App: "b", TimedOut: true}}
	h := MakeHistogram("t", samples, Fig7Buckets) // Fig7 has no timeout bar
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != 1 {
		t.Errorf("bucketed = %d, want 1 (timeout dropped)", sum)
	}
}

func TestMedianAndFraction(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median odd = %f", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("median even = %f", m)
	}
	if m := Median(nil); m != 0 {
		t.Errorf("median empty = %f", m)
	}
	ss := []Sample{{Minutes: 1}, {Minutes: 5}}
	if f := Fraction(ss, func(s Sample) bool { return s.Minutes < 2 }); f != 0.5 {
		t.Errorf("fraction = %f", f)
	}
	if f := Fraction(nil, func(Sample) bool { return true }); f != 0 {
		t.Errorf("fraction empty = %f", f)
	}
}

func TestTable1MatchesPaperMoments(t *testing.T) {
	res := Table1(7)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if math.Abs(r.AvgMB-r.PaperAvgMB) > r.PaperAvgMB*0.15 {
			t.Errorf("year %d avg %.1f vs paper %.1f", r.Year, r.AvgMB, r.PaperAvgMB)
		}
		if math.Abs(r.MedMB-r.PaperMedMB) > r.PaperMedMB*0.15 {
			t.Errorf("year %d med %.1f vs paper %.1f", r.Year, r.MedMB, r.PaperMedMB)
		}
	}
	rendered := res.Render()
	if !strings.Contains(rendered, "2018") || !strings.Contains(rendered, "Table I") {
		t.Error("render incomplete")
	}
}

func TestCorpusRunBackDroidOnly(t *testing.T) {
	run := tinyCorpus(t, RunConfig{RunBackDroid: true})
	if len(run.Apps) != 6 {
		t.Fatalf("apps = %d", len(run.Apps))
	}
	samples := run.BackDroidSamples()
	if len(samples) != 6 {
		t.Fatalf("samples = %d", len(samples))
	}
	for _, s := range samples {
		if s.TimedOut {
			t.Errorf("BackDroid timed out on %s", s.App)
		}
	}
	if run.WholeAppSamples() != nil {
		t.Error("whole-app samples without runs")
	}
}

func TestFig7AndFig9FromRun(t *testing.T) {
	run := tinyCorpus(t, RunConfig{RunBackDroid: true})
	h := Fig7(run)
	if h.Total != 6 {
		t.Errorf("fig7 total = %d", h.Total)
	}
	f9 := Fig9(run)
	if len(f9.Points) != 6 || f9.AvgSinksPerApp <= 0 {
		t.Errorf("fig9 = %+v", f9)
	}
	if !strings.Contains(f9.Render(), "sinks") {
		t.Error("fig9 render incomplete")
	}
}

func TestHeadlineFromRun(t *testing.T) {
	run := tinyCorpus(t, RunConfig{RunBackDroid: true, RunWholeApp: true, RunCallGraph: true})
	h := Headline(run)
	if h.BackDroidMedianMin <= 0 || h.WholeAppMedianMin <= 0 {
		t.Fatalf("headline medians: %+v", h)
	}
	if h.Speedup <= 1 {
		t.Errorf("whole-app should be slower; speedup = %.2f", h.Speedup)
	}
	if h.BackDroidTimeouts != 0 {
		t.Errorf("BackDroid timeouts = %f", h.BackDroidTimeouts)
	}
	if !strings.Contains(h.Render(), "speedup") && !strings.Contains(h.Render(), "Speedup") {
		t.Error("headline render incomplete")
	}
}

func TestDetectionFromRun(t *testing.T) {
	run := tinyCorpus(t, RunConfig{RunBackDroid: true, RunWholeApp: true})
	d := Detection(run)
	if d.TrueVulns == 0 {
		t.Fatal("no vulnerabilities embedded in tiny corpus")
	}
	if d.BackDroidTP+d.BackDroidFN != d.TrueVulns {
		t.Errorf("BackDroid TP+FN = %d, want %d", d.BackDroidTP+d.BackDroidFN, d.TrueVulns)
	}
	if d.WholeAppTP+d.WholeAppFN != d.TrueVulns {
		t.Errorf("whole-app TP+FN = %d, want %d", d.WholeAppTP+d.WholeAppFN, d.TrueVulns)
	}
	if !strings.Contains(d.Render(), "detection comparison") {
		t.Error("detection render incomplete")
	}
}

func TestCacheStatsFromRun(t *testing.T) {
	run := tinyCorpus(t, RunConfig{RunBackDroid: true})
	s := CacheStats(run)
	if s.SearchRateAvg <= 0 || s.SearchRateMax < s.SearchRateAvg {
		t.Errorf("search rates: %+v", s)
	}
	if s.SearchRateMin > s.SearchRateAvg {
		t.Errorf("min rate above avg: %+v", s)
	}
	if !strings.Contains(s.Render(), "CrossBackward") {
		t.Error("cache stats render incomplete")
	}
}

func TestClinitCheckNeverOverclaims(t *testing.T) {
	run := tinyCorpus(t, RunConfig{RunBackDroid: true})
	c := ClinitCheck(run)
	if c.Confirmed != c.Claimed {
		t.Errorf("clinit reachability %d/%d: recursive search over-claimed", c.Confirmed, c.Claimed)
	}
	if !strings.Contains(c.Render(), "37/37") {
		t.Error("clinit render should cite the paper value")
	}
}

func TestBackDroidAblationOptionsThreadThrough(t *testing.T) {
	opts := core.DefaultOptions()
	opts.EnableSearchCache = false
	run, err := RunCorpus(appgen.CorpusOptions{Apps: 2, Seed: 5, SizeScale: 0.05},
		RunConfig{RunBackDroid: true, BackDroidOptions: &opts})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range run.Apps {
		if a.BackDroid.Stats.Search.CacheHits != 0 {
			t.Error("cache disabled but hits recorded")
		}
	}
}

func TestMissReasonString(t *testing.T) {
	for reason, want := range map[MissReason]string{
		MissTimeout:       "timed-out failure",
		MissSkippedLib:    "skipped library",
		MissImplicitFlow:  "unrobust implicit flow handling",
		MissAnalysisError: "whole-app analysis error",
		MissOther:         "other",
	} {
		if reason.String() != want {
			t.Errorf("reason %d = %q, want %q", int(reason), reason.String(), want)
		}
	}
}
