package experiments

import (
	"fmt"
	"io"
	"sync"

	"backdroid/internal/apk"
	"backdroid/internal/appgen"
	"backdroid/internal/core"
	"backdroid/internal/service"
	"backdroid/internal/simtime"
	"backdroid/internal/wholeapp"
)

// RunConfig selects which analyzers to run over the corpus.
type RunConfig struct {
	RunBackDroid bool
	RunWholeApp  bool
	RunCallGraph bool // FlowDroid-style CallGraphOnly pass (Fig. 1)
	// BackDroidOptions overrides the engine options (ablations); nil uses
	// DefaultOptions.
	BackDroidOptions *core.Options
	// Progress, when non-nil, receives one line per analyzed app.
	Progress io.Writer
	// Workers bounds how many apps are generated and analyzed
	// concurrently; values <= 1 run sequentially. Every app gets its own
	// generator, engines and work meter, and results land at the app's
	// corpus position, so reports and figures are identical for any
	// worker count — only wall time changes. Ignored when Scheduler is
	// set (the scheduler's pool bounds concurrency then).
	Workers int
	// IndexCacheDir, when non-empty, persists every app's search index
	// there (overriding BackDroidOptions.IndexCacheDir), so re-running
	// the same corpus — CI re-checks, parameter sweeps over non-search
	// knobs — skips tokenization entirely on the second and later runs.
	IndexCacheDir string
	// Scheduler, when non-nil, submits the corpus to an existing batch
	// service scheduler instead of a private one, sharing its worker
	// pool, in-memory bundle store and event stream across calls: a
	// corpus replayed through one scheduler-with-store performs zero
	// disassembly and zero index builds on the second pass. Reports stay
	// bitwise identical to a private run.
	Scheduler *service.Scheduler
	// Tenant names the scheduler tenant the corpus is submitted under
	// ("" = the default tenant). With a multi-tenant scheduler this lets
	// several RunCorpus calls share one service as independent streams:
	// each gets its own bounded queue and weighted dispatch share, and
	// the per-corpus reports stay bitwise identical to a private run —
	// fair dispatch reorders work, never results.
	Tenant string
}

// AppRun bundles one app's artifacts and analysis outcomes.
type AppRun struct {
	Spec      appgen.Spec
	Truth     *appgen.GroundTruth
	BackDroid *core.Report
	WholeApp  *wholeapp.Report
	CallGraph *wholeapp.Report
}

// CorpusRun is the result of running the analyzers over a generated
// corpus; all figure/table experiments consume it.
type CorpusRun struct {
	Apps []AppRun
}

// RunCorpus generates every app of the corpus and runs the selected
// analyzers. It is a thin client of the batch service scheduler: every
// app becomes one job whose Source generates the app on the worker, so
// apps exist only while analyzed (memory stays bounded, like analyzing
// APKs off disk), no analysis state is shared across goroutines, and the
// results — collected in submission order — are bitwise identical for any
// worker count and to a pre-service sequential run. By default a private
// scheduler is created and torn down; cfg.Scheduler reuses a long-running
// one, bundle store and all.
func RunCorpus(opts appgen.CorpusOptions, cfg RunConfig) (*CorpusRun, error) {
	specs := appgen.EvalCorpus(opts)
	apps := make([]AppRun, len(specs))

	sched := cfg.Scheduler
	if sched == nil {
		sched = service.New(service.Config{Workers: cfg.Workers})
		defer sched.Close()
	}

	var (
		mu   sync.Mutex // guards done and cfg.Progress writes
		done int
	)
	ids := make([]service.JobID, len(specs))
	for i := range specs {
		i, spec := i, specs[i]
		job := service.Job{
			Name:   spec.Name,
			Tenant: cfg.Tenant,
			Source: func() (*apk.App, error) {
				app, truth, err := appgen.Generate(spec)
				if err != nil {
					return nil, fmt.Errorf("experiments: generating %s: %w", spec.Name, err)
				}
				// Only this job's worker writes the slot; the collection
				// loop reads it after Wait establishes happens-before.
				apps[i].Spec = spec
				apps[i].Truth = truth
				return app, nil
			},
			Options:       cfg.BackDroidOptions,
			IndexCacheDir: cfg.IndexCacheDir,
			RunBackDroid:  cfg.RunBackDroid,
			RunWholeApp:   cfg.RunWholeApp,
			RunCallGraph:  cfg.RunCallGraph,
		}
		if cfg.Progress != nil {
			job.Done = func(res *service.JobResult, err error) {
				if err != nil {
					return
				}
				mu.Lock()
				done++
				fmt.Fprintf(cfg.Progress, "  [%3d/%3d] %s done\n", done, len(specs), spec.Name)
				mu.Unlock()
			}
		}
		id, err := sched.Submit(job)
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}

	// Collect in submission order: the error of the lowest corpus
	// position is reported, so failures are deterministic regardless of
	// worker scheduling (jobs past a failure still drain on the pool).
	for i, id := range ids {
		res, err := sched.Wait(id)
		if err != nil {
			return nil, err
		}
		apps[i].BackDroid = res.BackDroid
		apps[i].WholeApp = res.WholeApp
		apps[i].CallGraph = res.CallGraph
	}
	return &CorpusRun{Apps: apps}, nil
}

// BackDroidSamples extracts the per-app timing samples of the BackDroid
// runs.
func (r *CorpusRun) BackDroidSamples() []Sample {
	var out []Sample
	for _, a := range r.Apps {
		if a.BackDroid == nil {
			continue
		}
		out = append(out, Sample{
			App:      a.Spec.Name,
			Minutes:  a.BackDroid.Stats.SimMinutes,
			TimedOut: a.BackDroid.TimedOut,
		})
	}
	return out
}

// WholeAppSamples extracts the per-app timing samples of the baseline
// runs. Aborted runs (Err != nil) are excluded, matching the paper's
// handling of Amandroid's manifest-parsing failures.
func (r *CorpusRun) WholeAppSamples() []Sample {
	var out []Sample
	for _, a := range r.Apps {
		if a.WholeApp == nil || a.WholeApp.Err != nil {
			continue
		}
		out = append(out, Sample{
			App:      a.Spec.Name,
			Minutes:  a.WholeApp.Stats.SimMinutes,
			TimedOut: a.WholeApp.TimedOut,
		})
	}
	return out
}

// CallGraphSamples extracts the per-app timing samples of the
// CallGraphOnly runs.
func (r *CorpusRun) CallGraphSamples() []Sample {
	var out []Sample
	for _, a := range r.Apps {
		if a.CallGraph == nil || a.CallGraph.Err != nil {
			continue
		}
		out = append(out, Sample{
			App:      a.Spec.Name,
			Minutes:  a.CallGraph.Stats.SimMinutes,
			TimedOut: a.CallGraph.TimedOut,
		})
	}
	return out
}

// TimeoutBudgetMinutes is the evaluation timeout, re-exported for
// renderers.
const TimeoutBudgetMinutes = simtime.TimeoutMinutes
