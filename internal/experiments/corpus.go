package experiments

import (
	"fmt"
	"io"
	"sync"

	"backdroid/internal/apk"
	"backdroid/internal/appgen"
	"backdroid/internal/core"
	"backdroid/internal/pool"
	"backdroid/internal/simtime"
	"backdroid/internal/wholeapp"
)

// RunConfig selects which analyzers to run over the corpus.
type RunConfig struct {
	RunBackDroid bool
	RunWholeApp  bool
	RunCallGraph bool // FlowDroid-style CallGraphOnly pass (Fig. 1)
	// BackDroidOptions overrides the engine options (ablations); nil uses
	// DefaultOptions.
	BackDroidOptions *core.Options
	// Progress, when non-nil, receives one line per analyzed app.
	Progress io.Writer
	// Workers bounds how many apps are generated and analyzed
	// concurrently; values <= 1 run sequentially. Every app gets its own
	// generator, engines and work meter, and results land at the app's
	// corpus position, so reports and figures are identical for any
	// worker count — only wall time changes.
	Workers int
	// IndexCacheDir, when non-empty, persists every app's search index
	// there (overriding BackDroidOptions.IndexCacheDir), so re-running
	// the same corpus — CI re-checks, parameter sweeps over non-search
	// knobs — skips tokenization entirely on the second and later runs.
	IndexCacheDir string
}

// AppRun bundles one app's artifacts and analysis outcomes.
type AppRun struct {
	Spec      appgen.Spec
	Truth     *appgen.GroundTruth
	BackDroid *core.Report
	WholeApp  *wholeapp.Report
	CallGraph *wholeapp.Report
}

// CorpusRun is the result of running the analyzers over a generated
// corpus; all figure/table experiments consume it.
type CorpusRun struct {
	Apps []AppRun
}

// RunCorpus generates every app of the corpus and runs the selected
// analyzers. Apps are generated, analyzed and discarded one at a time to
// bound memory (like analyzing APKs off disk). With cfg.Workers > 1 the
// apps are distributed over a bounded worker pool; each worker builds
// per-app engines, so no analysis state is shared across goroutines and
// the results are bitwise identical to a sequential run.
func RunCorpus(opts appgen.CorpusOptions, cfg RunConfig) (*CorpusRun, error) {
	specs := appgen.EvalCorpus(opts)
	apps := make([]AppRun, len(specs))

	var (
		mu   sync.Mutex // guards done and cfg.Progress writes
		done int
	)
	analyzeOne := func(i int) error {
		spec := specs[i]
		app, truth, err := appgen.Generate(spec)
		if err != nil {
			return fmt.Errorf("experiments: generating %s: %w", spec.Name, err)
		}
		ar := AppRun{Spec: spec, Truth: truth}
		if cfg.RunBackDroid {
			ar.BackDroid, err = runBackDroid(app, cfg.BackDroidOptions, cfg.IndexCacheDir)
			if err != nil {
				return fmt.Errorf("experiments: backdroid on %s: %w", spec.Name, err)
			}
		}
		if cfg.RunWholeApp {
			ar.WholeApp, err = runWholeApp(app, wholeapp.FullAnalysis)
			if err != nil {
				return fmt.Errorf("experiments: wholeapp on %s: %w", spec.Name, err)
			}
		}
		if cfg.RunCallGraph {
			ar.CallGraph, err = runWholeApp(app, wholeapp.CallGraphOnly)
			if err != nil {
				return fmt.Errorf("experiments: callgraph on %s: %w", spec.Name, err)
			}
		}
		apps[i] = ar
		if cfg.Progress != nil {
			mu.Lock()
			done++
			fmt.Fprintf(cfg.Progress, "  [%3d/%3d] %s done\n", done, len(specs), spec.Name)
			mu.Unlock()
		}
		return nil
	}

	// The error of the lowest corpus position is reported, so failures
	// are deterministic regardless of worker scheduling.
	if err := pool.First(pool.ForEach(len(specs), cfg.Workers, analyzeOne)); err != nil {
		return nil, err
	}
	return &CorpusRun{Apps: apps}, nil
}

func runBackDroid(app *apk.App, opts *core.Options, cacheDir string) (*core.Report, error) {
	o := core.DefaultOptions()
	if opts != nil {
		o = *opts
	}
	if cacheDir != "" {
		o.IndexCacheDir = cacheDir
	}
	e, err := core.New(app, o)
	if err != nil {
		return nil, err
	}
	return e.Analyze()
}

func runWholeApp(app *apk.App, mode wholeapp.Mode) (*wholeapp.Report, error) {
	o := wholeapp.DefaultOptions()
	o.Mode = mode
	a, err := wholeapp.New(app, o)
	if err != nil {
		return nil, err
	}
	return a.Analyze()
}

// BackDroidSamples extracts the per-app timing samples of the BackDroid
// runs.
func (r *CorpusRun) BackDroidSamples() []Sample {
	var out []Sample
	for _, a := range r.Apps {
		if a.BackDroid == nil {
			continue
		}
		out = append(out, Sample{
			App:      a.Spec.Name,
			Minutes:  a.BackDroid.Stats.SimMinutes,
			TimedOut: a.BackDroid.TimedOut,
		})
	}
	return out
}

// WholeAppSamples extracts the per-app timing samples of the baseline
// runs. Aborted runs (Err != nil) are excluded, matching the paper's
// handling of Amandroid's manifest-parsing failures.
func (r *CorpusRun) WholeAppSamples() []Sample {
	var out []Sample
	for _, a := range r.Apps {
		if a.WholeApp == nil || a.WholeApp.Err != nil {
			continue
		}
		out = append(out, Sample{
			App:      a.Spec.Name,
			Minutes:  a.WholeApp.Stats.SimMinutes,
			TimedOut: a.WholeApp.TimedOut,
		})
	}
	return out
}

// CallGraphSamples extracts the per-app timing samples of the
// CallGraphOnly runs.
func (r *CorpusRun) CallGraphSamples() []Sample {
	var out []Sample
	for _, a := range r.Apps {
		if a.CallGraph == nil || a.CallGraph.Err != nil {
			continue
		}
		out = append(out, Sample{
			App:      a.Spec.Name,
			Minutes:  a.CallGraph.Stats.SimMinutes,
			TimedOut: a.CallGraph.TimedOut,
		})
	}
	return out
}

// TimeoutBudgetMinutes is the evaluation timeout, re-exported for
// renderers.
const TimeoutBudgetMinutes = simtime.TimeoutMinutes
