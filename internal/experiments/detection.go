package experiments

import (
	"fmt"
	"strings"

	"backdroid/internal/appgen"
	"backdroid/internal/core"
	"backdroid/internal/wholeapp"
)

// MissReason categorizes why the whole-app baseline missed a sink that
// BackDroid found — the four factors of paper Sec. VI-C.
type MissReason int

// Miss reasons.
const (
	MissTimeout MissReason = iota + 1
	MissSkippedLib
	MissImplicitFlow // unrobust handling of async flows / callbacks
	MissAnalysisError
	MissOther
)

// String names the reason with the paper's terminology.
func (m MissReason) String() string {
	switch m {
	case MissTimeout:
		return "timed-out failure"
	case MissSkippedLib:
		return "skipped library"
	case MissImplicitFlow:
		return "unrobust implicit flow handling"
	case MissAnalysisError:
		return "whole-app analysis error"
	}
	return "other"
}

// DetectionResult is the Sec. VI-C accuracy comparison against ground
// truth.
type DetectionResult struct {
	// Ground truth totals.
	TrueVulns int // reachable + insecure sinks embedded

	// Per-tool confusion counts.
	BackDroidTP, BackDroidFP, BackDroidFN int
	WholeAppTP, WholeAppFP, WholeAppFN    int

	// BackDroid-only detections, categorized by why the baseline missed
	// them (the paper's 54 additional apps).
	BackDroidOnly map[MissReason]int
	// WholeAppOnly detections BackDroid missed (the paper's two
	// subclassed-sink FNs).
	WholeAppOnly int
	// WholeAppOnlyFlows names the flows behind WholeAppOnly.
	WholeAppOnlyFlows []string
	// AvoidedFPs counts unreachable sinks the baseline reported but
	// BackDroid correctly rejected (the paper's six avoided FPs).
	AvoidedFPs int
}

// Detection scores both tools against the generated ground truth.
func Detection(run *CorpusRun) DetectionResult {
	res := DetectionResult{BackDroidOnly: make(map[MissReason]int)}
	for i := range run.Apps {
		a := &run.Apps[i]
		if a.BackDroid == nil || a.WholeApp == nil {
			continue
		}
		for _, truth := range a.Truth.Sinks {
			bdFound := backdroidDetected(a.BackDroid, truth)
			waFound := wholeappDetected(a.WholeApp, truth)

			if truth.Insecure {
				res.TrueVulns++
				if bdFound {
					res.BackDroidTP++
				} else {
					res.BackDroidFN++
				}
				if waFound {
					res.WholeAppTP++
				} else {
					res.WholeAppFN++
				}
				switch {
				case bdFound && !waFound:
					res.BackDroidOnly[missReason(a, truth)]++
				case waFound && !bdFound:
					res.WholeAppOnly++
					res.WholeAppOnlyFlows = append(res.WholeAppOnlyFlows, truth.Spec.Flow.String())
				}
				continue
			}

			// Not truly vulnerable (secure value, dead or unregistered):
			// any report is a false positive.
			if bdFound {
				res.BackDroidFP++
			}
			if waFound {
				res.WholeAppFP++
				if !bdFound && !truth.Reachable {
					res.AvoidedFPs++
				}
			}
		}
	}
	return res
}

// backdroidDetected checks whether the engine reported the embedded sink
// as reachable and insecure.
func backdroidDetected(r *core.Report, truth appgen.SinkTruth) bool {
	for _, s := range r.Sinks {
		if s.Call.Caller.Class == truth.Class && s.Call.Caller.Name == truth.Method {
			if s.Reachable && s.Insecure {
				return true
			}
		}
	}
	return false
}

// wholeappDetected checks the baseline's findings likewise.
func wholeappDetected(r *wholeapp.Report, truth appgen.SinkTruth) bool {
	for _, f := range r.Findings {
		if f.Caller.Class == truth.Class && f.Caller.Name == truth.Method && f.Insecure {
			return true
		}
	}
	return false
}

// missReason attributes a baseline miss to its cause.
func missReason(a *AppRun, truth appgen.SinkTruth) MissReason {
	switch {
	case a.WholeApp.TimedOut:
		return MissTimeout
	case a.WholeApp.Err != nil:
		return MissAnalysisError
	case truth.Spec.Flow == appgen.FlowSkippedLib:
		return MissSkippedLib
	case truth.Spec.Flow == appgen.FlowAsyncExecutor || truth.Spec.Flow == appgen.FlowCallback:
		return MissImplicitFlow
	}
	return MissOther
}

// Render prints the Sec. VI-C comparison.
func (d DetectionResult) Render() string {
	var b strings.Builder
	b.WriteString("Sec. VI-C detection comparison (ground-truth scored)\n")
	fmt.Fprintf(&b, "  true vulnerabilities embedded: %d\n", d.TrueVulns)
	fmt.Fprintf(&b, "  BackDroid:  TP=%d FP=%d FN=%d\n", d.BackDroidTP, d.BackDroidFP, d.BackDroidFN)
	fmt.Fprintf(&b, "  Whole-app:  TP=%d FP=%d FN=%d\n", d.WholeAppTP, d.WholeAppFP, d.WholeAppFN)
	fmt.Fprintf(&b, "  unreachable-sink FPs avoided by BackDroid: %d (paper: 6)\n", d.AvoidedFPs)
	fmt.Fprintf(&b, "  whole-app-only detections: %d via %v (paper: 2, subclassed sinks)\n",
		d.WholeAppOnly, d.WholeAppOnlyFlows)
	b.WriteString("  BackDroid-only detections by baseline failure cause (paper: 54 total;\n")
	b.WriteString("  28 timeouts, 8 skipped libs, 8 implicit flows, 10 errors):\n")
	total := 0
	for _, reason := range []MissReason{MissTimeout, MissSkippedLib, MissImplicitFlow, MissAnalysisError, MissOther} {
		n := d.BackDroidOnly[reason]
		total += n
		fmt.Fprintf(&b, "    %-32s %4d\n", reason.String(), n)
	}
	fmt.Fprintf(&b, "    %-32s %4d\n", "total", total)
	return b.String()
}
