package core

import (
	"backdroid/internal/android"
	"backdroid/internal/constprop"
	"backdroid/internal/dex"
	"backdroid/internal/ssg"
	"backdroid/internal/vuln"
)

// propagate runs the forward constant and points-to propagation over the
// SSG (paper Sec. V-B) and returns the rendered dataflow representations
// of the tracked sink parameter. The vulnerability verdict is computed on
// the typed values.
func (e *Engine) propagate(g *ssg.Graph, sinkUnit *ssg.Unit, call SinkCall) ([]string, error) {
	opts := constprop.Options{
		SinkParamIndex: call.Sink.ParamIndex,
		MaxDepth:       e.opts.MaxDepth,
		SinkUnit:       sinkUnit,
		Memoize:        e.opts.MemoizeForwardPass,
	}
	if e.rec != nil {
		// Belt and braces for the delta footprint: the forward pass only
		// walks SSG-recorded units and prog bodies (both already
		// observed), but the explicit seam keeps the recording honest if
		// constprop ever grows a direct bytecode dependency.
		opts.OnMethod = func(ref dex.MethodRef) { e.rec.class(ref.Class) }
	}
	res, err := constprop.Run(g, e.prog, e.meter, opts)
	if err != nil {
		return nil, err
	}
	e.memoHits += res.MemoHits
	e.lastValues = res.SinkValues
	out := make([]string, len(res.SinkValues))
	for i, v := range res.SinkValues {
		out[i] = v.String()
	}
	return out, nil
}

// judge applies the vulnerability rule to the most recent propagation
// result.
func (e *Engine) judgeLast(rule android.RuleKind) bool {
	return vuln.Judge(rule, e.lastValues)
}

// judgeValues applies the vulnerability rule to typed values directly —
// the per-app pipeline judges every sink from one propagation run, so
// there is no meaningful "last" result.
func judgeValues(rule android.RuleKind, values []constprop.Value) bool {
	return vuln.Judge(rule, values)
}
