// Package core implements the BackDroid engine: targeted inter-procedural
// analysis driven by on-the-fly bytecode search (paper Secs. III-V).
//
// Instead of building a whole-app call graph, the engine locates sink API
// calls by searching the disassembled bytecode text and then backtracks
// from each sink toward the app's entry points, locating callers one step
// at a time with a set of search mechanisms: the basic signature search
// (Sec. IV-A), the advanced search with forward object taint analysis
// (Sec. IV-B), the recursive static-initializer search (Sec. IV-C), the
// two-time ICC search (Sec. IV-D) and the lifecycle handler search
// (Sec. IV-E). During backtracking it builds one self-contained slicing
// graph (SSG) per sink and finally runs forward constant and points-to
// propagation over the SSG to recover the sink parameter values.
package core

import (
	"fmt"
	"runtime"
	"time"

	"backdroid/internal/android"
	"backdroid/internal/apk"
	"backdroid/internal/bcsearch"
	"backdroid/internal/cha"
	"backdroid/internal/constprop"
	"backdroid/internal/dex"
	"backdroid/internal/dexdump"
	"backdroid/internal/ir"
	"backdroid/internal/simtime"
	"backdroid/internal/ssg"
)

// Options configures the engine. The zero value is NOT usable; call
// DefaultOptions.
type Options struct {
	// Sinks are the sink APIs to track. Defaults to android.DefaultSinks.
	Sinks []android.Sink

	// EnableSearchCache caches search commands and results (Sec. IV-F).
	EnableSearchCache bool

	// SearchBackend selects the bytecode search implementation. The zero
	// value (BackendIndexed) resolves each search command from a one-pass
	// inverted index over the dump text; BackendSharded splits that index
	// per classesN.dex (package-prefix shards for single-dex apps) so
	// construction parallelizes and postings stay shard-local;
	// BackendLinear is the paper-faithful full-text scan, kept for
	// ablations.
	SearchBackend bcsearch.BackendKind

	// IndexShards overrides the shard count of BackendSharded. 0 is auto:
	// one shard per classesN.dex for multidex apps, DefaultShards
	// package-prefix shards otherwise. Ignored by other backends.
	IndexShards int

	// IndexCacheDir, when non-empty, enables the persistent index cache:
	// the search index is serialized to <dir>/<app>.bdx after its first
	// build and re-analyses of the same app load it instead of
	// re-tokenizing the dump. Corrupt, stale or version-bumped cache
	// files are detected and rebuilt silently.
	IndexCacheDir string

	// EnableSinkCache caches per-method reachability so repeated sink
	// calls in the same unreachable method are skipped (Sec. IV-F).
	EnableSinkCache bool

	// EnableLoopDetection detects the four dead method loop kinds
	// (Sec. IV-F). When disabled, only MaxDepth bounds the traversals.
	EnableLoopDetection bool

	// ResolveSinkSubclasses extends the initial sink search with class
	// hierarchy awareness, catching sink APIs invoked through app
	// subclasses of system classes. This is the paper's planned fix for
	// its two false negatives (Sec. VI-C).
	ResolveSinkSubclasses bool

	// AnalyzeAllContained disables the static-field bytecode search
	// optimization of Sec. V-A: with it set, the slicer descends into
	// every contained method while static fields are tainted, instead of
	// only the methods the field-signature search matched. Exists for the
	// ablation benchmark.
	AnalyzeAllContained bool

	// PerAppSSG shares one slicing graph across all sink calls of the app
	// instead of building one SSG per sink — the extension the paper
	// plans for apps with very many sinks (Secs. V-A, VI-D). Slices and
	// taints accumulated for earlier sinks are reused by later ones.
	PerAppSSG bool

	// MaxDepth bounds inter-procedural backtracking and forward taint
	// chains.
	MaxDepth int

	// TimeoutMinutes aborts the analysis after this much simulated time;
	// 0 disables the budget (BackDroid needs no timeout in the paper).
	TimeoutMinutes float64
}

// DefaultOptions returns the configuration used in the paper's evaluation:
// all engineering enhancements on, no timeout, paper sinks.
func DefaultOptions() Options {
	return Options{
		Sinks:               android.DefaultSinks(),
		SearchBackend:       bcsearch.BackendIndexed,
		EnableSearchCache:   true,
		EnableSinkCache:     true,
		EnableLoopDetection: true,
		MaxDepth:            25,
	}
}

// SinkCall is one located sink API call site.
type SinkCall struct {
	Sink      android.Sink
	Caller    dex.MethodRef // method containing the sink call
	UnitIndex int           // call-site unit in the caller's IR body
	Line      int           // dump text line of the call
}

// String renders the sink call site.
func (s SinkCall) String() string {
	return fmt.Sprintf("%s @ %s#%d", s.Sink.Method.SootSignature(), s.Caller.SootSignature(), s.UnitIndex)
}

// SinkReport is the per-sink analysis outcome.
type SinkReport struct {
	Call      SinkCall
	Reachable bool            // backtracking reached a valid entry point
	Cached    bool            // answered from the sink reachability cache
	Entries   []dex.MethodRef // entry points reached
	Values    []string        // dataflow representations of the tracked parameter
	Insecure  bool            // vulnerability rule verdict
	SSG       *ssg.Graph
}

// LoopKind names the four dead-loop types of Sec. IV-F.
type LoopKind int

// Loop kinds.
const (
	CrossBackward LoopKind = iota + 1
	InnerBackward
	CrossForward
	InnerForward
)

// String names the loop kind as the paper does.
func (k LoopKind) String() string {
	switch k {
	case CrossBackward:
		return "CrossBackward"
	case InnerBackward:
		return "InnerBackward"
	case CrossForward:
		return "CrossForward"
	case InnerForward:
		return "InnerForward"
	}
	return "UnknownLoop"
}

// Stats aggregates the engineering measurements of Sec. IV-F plus cost
// accounting.
type Stats struct {
	Search          bcsearch.Stats
	SinkCallsTotal  int
	SinkCallsCached int
	Loops           map[LoopKind]int
	MethodsAnalyzed int
	WorkUnits       int64
	SimMinutes      float64
	WallTime        time.Duration
}

// SinkCacheRate returns the fraction of sink calls answered from the
// reachability cache.
func (s Stats) SinkCacheRate() float64 {
	if s.SinkCallsTotal == 0 {
		return 0
	}
	return float64(s.SinkCallsCached) / float64(s.SinkCallsTotal)
}

// LoopsDetected reports whether at least one dead loop was detected.
func (s Stats) LoopsDetected() bool {
	for _, n := range s.Loops {
		if n > 0 {
			return true
		}
	}
	return false
}

// Report is the full analysis result of one app.
type Report struct {
	App      string
	Sinks    []*SinkReport
	Stats    Stats
	TimedOut bool
}

// InsecureSinks returns the reachable sinks judged insecure.
func (r *Report) InsecureSinks() []*SinkReport {
	var out []*SinkReport
	for _, s := range r.Sinks {
		if s.Reachable && s.Insecure {
			out = append(out, s)
		}
	}
	return out
}

// reachState caches per-method reachability (the sink API call caching of
// Sec. IV-F).
type reachState struct {
	reachable bool
	entries   []dex.MethodRef
}

// Engine analyzes one app.
type Engine struct {
	app    *apk.App
	opts   Options
	dexf   *dex.File
	prog   *ir.Program
	dump   *dexdump.Text
	search *bcsearch.Engine
	hier   *cha.Hierarchy
	meter  *simtime.Meter

	reachCache  map[string]*reachState
	callerCache map[string][]callerSite
	entryCache  map[string]bool
	analyzed    map[string]bool
	loops       map[LoopKind]int
	sinkTotal   int
	sinkCached  int
	lastValues  []constprop.Value
	preTimedOut bool
	appSSG      *ssg.Graph // shared graph when PerAppSSG is set
}

// New preprocesses the app (paper Sec. III step 1): merges multidex,
// disassembles the bytecode to plaintext and builds the search and IR
// infrastructure.
func New(app *apk.App, opts Options) (*Engine, error) {
	if len(opts.Sinks) == 0 {
		opts.Sinks = android.DefaultSinks()
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 25
	}
	merged, err := app.MergedDex()
	if err != nil {
		return nil, fmt.Errorf("core: preprocessing %s: %w", app.Name, err)
	}
	meter := simtime.NewMeter()
	if opts.TimeoutMinutes > 0 {
		meter.SetBudget(simtime.MinutesToUnits(opts.TimeoutMinutes))
	}
	dump := dexdump.Disassemble(merged)
	// Disassembly cost: dexdump is a linear pass over the bytecode. A
	// budget exhausted this early surfaces as a timed-out report from
	// Analyze, not a construction error.
	preTimedOut := meter.ChargeLines(dump.LineCount()) != nil
	searchCfg := bcsearch.Config{
		Meter:       meter,
		Backend:     opts.SearchBackend,
		EnableCache: opts.EnableSearchCache,
	}
	if opts.SearchBackend == bcsearch.BackendSharded {
		searchCfg.Plan = shardPlan(app, dump, opts.IndexShards)
		searchCfg.BuildWorkers = runtime.NumCPU()
	}
	if opts.IndexCacheDir != "" {
		searchCfg.CachePath = dexdump.CachePath(opts.IndexCacheDir, app.Name)
	}
	return &Engine{
		preTimedOut: preTimedOut,
		app:         app,
		opts:        opts,
		dexf:        merged,
		prog:        ir.NewProgram(merged),
		dump:        dump,
		search:      bcsearch.NewEngine(dump, searchCfg),
		hier:        cha.New(merged),
		meter:       meter,
		reachCache:  make(map[string]*reachState),
		callerCache: make(map[string][]callerSite),
		entryCache:  make(map[string]bool),
		analyzed:    make(map[string]bool),
		loops:       make(map[LoopKind]int),
	}, nil
}

// shardPlan lays out the sharded search index for an app: one shard per
// classesN.dex when the app is multidex (the natural grain — each dex
// disassembles to a contiguous run of classes in the merged dump),
// deterministic package-prefix shards otherwise. An explicit shard-count
// override always uses package-prefix shards, which support any count.
func shardPlan(app *apk.App, dump *dexdump.Text, shards int) *dexdump.ShardPlan {
	if shards > 0 {
		return dexdump.PackagePrefixPlan(dump, shards)
	}
	if len(app.Dexes) > 1 {
		counts := make([]int, len(app.Dexes))
		for i, d := range app.Dexes {
			counts[i] = len(d.Classes())
		}
		return dexdump.PerDexPlan(dump, counts)
	}
	return dexdump.PackagePrefixPlan(dump, bcsearch.DefaultShards)
}

// Meter exposes the work meter (used by experiment harnesses).
func (e *Engine) Meter() *simtime.Meter { return e.meter }

// Hierarchy exposes the class hierarchy (used by detectors and tests).
func (e *Engine) Hierarchy() *cha.Hierarchy { return e.hier }

// Analyze runs the full BackDroid pipeline and returns the report. On
// simulated timeout the report carries TimedOut=true with whatever sinks
// completed.
func (e *Engine) Analyze() (*Report, error) {
	start := time.Now()
	report := &Report{App: e.app.Name}
	if e.preTimedOut {
		report.TimedOut = true
		e.fillStats(report, start)
		return report, nil
	}

	calls, err := e.locateSinkCalls()
	if err != nil {
		if err == simtime.ErrTimeout {
			report.TimedOut = true
			e.fillStats(report, start)
			return report, nil
		}
		return nil, err
	}

	for _, call := range calls {
		sr, err := e.analyzeSinkCall(call)
		if err != nil {
			if err == simtime.ErrTimeout {
				report.TimedOut = true
				break
			}
			return nil, err
		}
		report.Sinks = append(report.Sinks, sr)
	}

	e.fillStats(report, start)
	return report, nil
}

func (e *Engine) fillStats(report *Report, start time.Time) {
	loops := make(map[LoopKind]int, len(e.loops))
	for k, v := range e.loops {
		loops[k] = v
	}
	report.Stats = Stats{
		Search:          e.search.Stats(),
		SinkCallsTotal:  e.sinkTotal,
		SinkCallsCached: e.sinkCached,
		Loops:           loops,
		MethodsAnalyzed: len(e.analyzed),
		WorkUnits:       e.meter.Units(),
		SimMinutes:      e.meter.Minutes(),
		WallTime:        time.Since(start),
	}
}

// analyzeSinkCall backtracks one sink call, builds its SSG and runs the
// forward pass.
func (e *Engine) analyzeSinkCall(call SinkCall) (*SinkReport, error) {
	e.sinkTotal++
	sr := &SinkReport{Call: call}

	sig := call.Caller.SootSignature()
	if e.opts.EnableSinkCache {
		if st, ok := e.reachCache[sig]; ok {
			e.sinkCached++
			sr.Cached = true
			if !st.reachable {
				sr.Reachable = false
				return sr, nil
			}
			// Reachable and cached: still slice for the values.
		}
	}

	reachable, entries, err := e.reachable(call.Caller, nil, 0)
	if err != nil {
		return nil, err
	}
	if e.opts.EnableSinkCache {
		e.reachCache[sig] = &reachState{reachable: reachable, entries: entries}
	}
	sr.Reachable = reachable
	sr.Entries = entries
	if !reachable {
		return sr, nil
	}

	g, sinkUnit, err := e.buildSSG(call)
	if err != nil {
		return nil, err
	}
	sr.SSG = g
	for _, en := range entries {
		g.MarkEntry(en)
	}

	values, err := e.propagate(g, sinkUnit, call)
	if err != nil {
		return nil, err
	}
	sr.Values = values
	sr.Insecure = e.judgeLast(call.Sink.Rule)
	return sr, nil
}
