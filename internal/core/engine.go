// Package core implements the BackDroid engine: targeted inter-procedural
// analysis driven by on-the-fly bytecode search (paper Secs. III-V).
//
// Instead of building a whole-app call graph, the engine locates sink API
// calls by searching the disassembled bytecode text and then backtracks
// from each sink toward the app's entry points, locating callers one step
// at a time with a set of search mechanisms: the basic signature search
// (Sec. IV-A), the advanced search with forward object taint analysis
// (Sec. IV-B), the recursive static-initializer search (Sec. IV-C), the
// two-time ICC search (Sec. IV-D) and the lifecycle handler search
// (Sec. IV-E). During backtracking it builds one self-contained slicing
// graph (SSG) per sink and finally runs forward constant and points-to
// propagation over the SSG to recover the sink parameter values.
package core

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"backdroid/internal/android"
	"backdroid/internal/apk"
	"backdroid/internal/bcsearch"
	"backdroid/internal/cha"
	"backdroid/internal/constprop"
	"backdroid/internal/dex"
	"backdroid/internal/dexdump"
	"backdroid/internal/ir"
	"backdroid/internal/simtime"
	"backdroid/internal/ssg"
)

// Options configures the engine. The zero value is NOT usable; call
// DefaultOptions.
type Options struct {
	// Sinks are the sink APIs to track. Defaults to android.DefaultSinks.
	Sinks []android.Sink

	// EnableSearchCache caches search commands and results (Sec. IV-F).
	EnableSearchCache bool

	// SearchBackend selects the bytecode search implementation. The zero
	// value (BackendIndexed) resolves each search command from a one-pass
	// inverted index over the dump text; BackendSharded splits that index
	// per classesN.dex (package-prefix shards for single-dex apps) so
	// construction parallelizes and postings stay shard-local;
	// BackendLinear is the paper-faithful full-text scan, kept for
	// ablations.
	SearchBackend bcsearch.BackendKind

	// IndexShards overrides the shard count of BackendSharded. 0 is auto:
	// one shard per classesN.dex for multidex apps, DefaultShards
	// package-prefix shards otherwise. Ignored by other backends.
	IndexShards int

	// IndexCacheDir, when non-empty, enables the persistent bundle cache:
	// the search index and the disassembled dump text are serialized to
	// <dir>/<app>.bdx after the first analysis, and re-analyses of the
	// same app load both — a warm engine run performs zero disassembly
	// and zero tokenization, charging the cheap cache-load rates instead.
	// Corrupt, stale or version-bumped cache files are detected and
	// rebuilt silently; legacy index-only files still serve their index
	// and are upgraded to full bundles in place.
	IndexCacheDir string

	// DumpProvider overrides the warm-start dump seam: before
	// disassembling, the engine asks the provider for a previously
	// rendered dump of the app. Nil uses the default provider, which
	// probes the IndexCacheDir bundle (and is inert when no cache
	// directory is configured). A provider miss falls back to disassembly
	// transparently.
	DumpProvider DumpProvider

	// Bundles is the in-memory content-addressed bundle seam of the batch
	// service: before touching the on-disk cache the engine asks it for an
	// encoded bundle keyed by the app fingerprint. A hit makes the run
	// fully warm — zero disassembly, zero index build, zero disk I/O —
	// charged at the cheap simtime.ChargeBundleStoreLoad rate; a miss
	// falls through to the disk cache (if configured) or a cold build,
	// after which the freshly encoded bundle is handed back to the store.
	// Nil disables the store. service.BundleStore is the production
	// implementation.
	Bundles BundleCache

	// AutoParallelLookups derives the hot-token fan-out gate of
	// ParallelLookups from the app's own postings distribution (p95
	// per-token list length) instead of the fixed
	// bcsearch.DefaultParallelLookupMin. Results are unchanged; only which
	// lookups fan out — and thus the charged critical path — moves.
	AutoParallelLookups bool

	// MemoizeForwardPass caches constprop method evaluations keyed by
	// (callee, argument facts) within one forward pass, so callees shared
	// by many call edges are evaluated once per distinct fact environment.
	// Results are identical with the cache on or off; on by default.
	MemoizeForwardPass bool

	// ParallelLookups fans the per-shard postings fetches of hot search
	// tokens out on the worker pool (BackendSharded only). Detection
	// results are bitwise identical; the simulated charge becomes the max
	// per-shard visit plus the lazy-merge critical path.
	ParallelLookups bool

	// EnableSinkCache caches per-method reachability so repeated sink
	// calls in the same unreachable method are skipped (Sec. IV-F).
	EnableSinkCache bool

	// EnableLoopDetection detects the four dead method loop kinds
	// (Sec. IV-F). When disabled, only MaxDepth bounds the traversals.
	EnableLoopDetection bool

	// ResolveSinkSubclasses extends the initial sink search with class
	// hierarchy awareness, catching sink APIs invoked through app
	// subclasses of system classes. This is the paper's planned fix for
	// its two false negatives (Sec. VI-C).
	ResolveSinkSubclasses bool

	// AnalyzeAllContained disables the static-field bytecode search
	// optimization of Sec. V-A: with it set, the slicer descends into
	// every contained method while static fields are tainted, instead of
	// only the methods the field-signature search matched. Exists for the
	// ablation benchmark.
	AnalyzeAllContained bool

	// PerAppSSG shares one slicing graph across all sink calls of the app
	// instead of building one SSG per sink — the extension the paper
	// plans for apps with very many sinks (Secs. V-A, VI-D). Slices and
	// taints accumulated for earlier sinks are reused by later ones.
	PerAppSSG bool

	// MaxDepth bounds inter-procedural backtracking and forward taint
	// chains.
	MaxDepth int

	// TimeoutMinutes aborts the analysis after this much simulated time;
	// 0 disables the budget (BackDroid needs no timeout in the paper).
	TimeoutMinutes float64

	// Cancel, when non-nil, is the cooperative kill switch of the batch
	// control plane: the engine's meter polls it every
	// simtime.CancelCheckpointUnits of charged work — which covers every
	// constprop forward pass and every bcsearch lookup, since both charge
	// the meter — and the analysis aborts with simtime.ErrCanceled within
	// one checkpoint of the poll turning true. Unlike a timeout, a
	// cancellation is an error out of Analyze, never a TimedOut report:
	// the caller (Scheduler.Cancel) owns the terminal event. The poll
	// must be cheap and goroutine-safe; the scheduler passes an
	// atomic-flag read.
	Cancel func() bool

	// Heartbeat, when non-nil, is the fleet control plane's liveness
	// hook: the meter calls it at every cancellation checkpoint with the
	// units charged since the previous one, so the scheduler can advance
	// the executing node's odometer and the fleet-global clock by the
	// work actually performed, renew (or drop) the job's lease and
	// consult the fault plan. Returning true aborts the analysis with
	// simtime.ErrCanceled at that checkpoint — the path by which a
	// fenced node's running attempt observes its own death. Like Cancel,
	// it runs on the analysis goroutine and must be cheap.
	Heartbeat func(delta int64) bool

	// SinkObserver, when non-nil, receives every SinkReport as soon as its
	// verdict is final — per sink call during the per-sink pipeline, after
	// the shared forward pass in PerAppSSG mode. The callback runs
	// synchronously on the analysis goroutine, in report order; the batch
	// service streams these as events while the job is still running.
	SinkObserver func(*SinkReport)

	// DeltaFrom, when non-nil, supplies the prior version of the app for
	// incremental re-analysis (DESIGN.md Sec. 10): the engine diffs the
	// two shard manifests and carries over every settled sink verdict
	// whose recorded footprint provably cannot observe the update,
	// charging the cheap ChargeShardDiff/ChargeDeltaReuse rates for the
	// unchanged mass. The report is identical to a full re-analysis; only
	// the charged cost shrinks. Ignored (silent full run) when the base
	// is unusable — timed out, undecodable manifest — or when PerAppSSG
	// is set, whose shared-graph slices have no per-sink footprint.
	DeltaFrom *DeltaBase

	// SinkChunk is the sink-chunk grain of the fleet's work-stealing
	// scheduler: located sink call sites partition into chunks of this
	// many consecutive positions of the canonical (line-ordered) sink
	// list, and a stolen range is always chunk-aligned. The engine only
	// carries the grain — chunk boundaries drive the scheduler's steal
	// decisions, never the analysis itself, so the field is
	// fingerprint-neutral. 0 disables chunk-level scheduling for the
	// job.
	SinkChunk int

	// ChunkRange, when non-nil, restricts the run to the canonical
	// positions [From, To) of the located sink-call list — the
	// resumable per-sink entry point of the fleet's work stealing (see
	// chunk.go). The chunk runs against the same warm bundle as any
	// other run and emits a partial Report covering exactly its window;
	// MergeReports unions the parts back into the canonical single-pass
	// report. A chunked run ignores DeltaFrom: a partial report must
	// not depend on a delta base the other chunks lack.
	ChunkRange *ChunkRange

	// PhaseSpan, when non-nil, receives one call per completed engine
	// phase with the phase's charged-unit bounds [start, end) on this
	// engine's meter: the preprocessing phases (disassembly or the warm
	// bundle/dump load, the index build or load, the delta manifest
	// diff) and, per analyzed sink, the backward slice and the forward
	// constprop pass, with sink carrying the canonical sink position
	// (-1 for app-level phases, including the single shared forward
	// pass of PerAppSSG mode). The callback runs synchronously on the
	// analysis goroutine after the phase's last charge; it must never
	// charge the meter itself, so enabling it cannot move a single
	// checkpoint — tracing is observationally free in simulated time.
	// A phase aborted by timeout or cancellation emits no span.
	PhaseSpan func(phase string, sink int, start, end int64)

	// MeterCheckpoint, when non-nil, is installed as the meter's
	// checkpoint observer (simtime.SetCheckpointObserver): it receives
	// the cumulative units and checkpoint delta at every cancellation
	// checkpoint, before the heartbeat and cancel polls run. The
	// tracer's charged-units counter samples come from here. Note that
	// installing it on a run with neither Cancel nor Heartbeat enables
	// checkpointing where a plain run has none; the service always
	// installs Cancel, so its traced runs poll identically to untraced
	// ones.
	MeterCheckpoint func(units, delta int64)

	// SinkProgress, when non-nil, is polled immediately before each
	// sink call is analyzed (before each sink is prepared, in PerAppSSG
	// mode), with the sink's position in the canonical list and the
	// list's total length. Returning true stops the run before that
	// sink — its position was fenced away by a steal — and Analyze
	// returns the partial report of the sinks already completed, not an
	// error. The fleet scheduler's victim hook also uses the first poll
	// to learn the job's total sink count.
	SinkProgress func(next, total int) bool
}

// DefaultOptions returns the configuration used in the paper's evaluation:
// all engineering enhancements on, no timeout, paper sinks.
func DefaultOptions() Options {
	return Options{
		Sinks:               android.DefaultSinks(),
		SearchBackend:       bcsearch.BackendIndexed,
		EnableSearchCache:   true,
		EnableSinkCache:     true,
		EnableLoopDetection: true,
		MemoizeForwardPass:  true,
		MaxDepth:            25,
		SinkChunk:           8,
	}
}

// BundleCache is the in-memory content-addressed bundle store seam:
// encoded .bdx bundle bytes keyed by app fingerprint (see
// dexdump.AppFingerprint). GetBundle returns the entry and marks it
// recently used; PutBundle inserts it (a later Put of the same
// fingerprint is a refresh — entries are content-addressed, so the bytes
// are identical). Implementations must be safe for concurrent use: the
// batch service analyzes many apps at once against one store.
type BundleCache interface {
	GetBundle(fingerprint uint64) ([]byte, bool)
	PutBundle(fingerprint uint64, data []byte)
}

// SinkCall is one located sink API call site.
type SinkCall struct {
	Sink      android.Sink
	Caller    dex.MethodRef // method containing the sink call
	UnitIndex int           // call-site unit in the caller's IR body
	Line      int           // dump text line of the call
}

// String renders the sink call site.
func (s SinkCall) String() string {
	return fmt.Sprintf("%s @ %s#%d", s.Sink.Method.SootSignature(), s.Caller.SootSignature(), s.UnitIndex)
}

// SinkReport is the per-sink analysis outcome.
type SinkReport struct {
	Call      SinkCall
	Reachable bool            // backtracking reached a valid entry point
	Cached    bool            // answered from the sink reachability cache
	Entries   []dex.MethodRef // entry points reached
	Values    []string        // dataflow representations of the tracked parameter
	Insecure  bool            // vulnerability rule verdict
	SSG       *ssg.Graph

	// Reused marks a verdict carried over from the prior version by the
	// delta path (Options.DeltaFrom); the detection outcome is identical
	// to what a fresh analysis would compute.
	Reused bool
	// Footprint records what this sink's analysis observed; a later
	// delta run consults it to decide whether the verdict survives an
	// update. Nil in PerAppSSG mode and on carried-over base reports
	// that never recorded one.
	Footprint *Footprint
}

// LoopKind names the four dead-loop types of Sec. IV-F.
type LoopKind int

// Loop kinds.
const (
	CrossBackward LoopKind = iota + 1
	InnerBackward
	CrossForward
	InnerForward
)

// String names the loop kind as the paper does.
func (k LoopKind) String() string {
	switch k {
	case CrossBackward:
		return "CrossBackward"
	case InnerBackward:
		return "InnerBackward"
	case CrossForward:
		return "CrossForward"
	case InnerForward:
		return "InnerForward"
	}
	return "UnknownLoop"
}

// Stats aggregates the engineering measurements of Sec. IV-F plus cost
// accounting.
type Stats struct {
	Search          bcsearch.Stats
	SinkCallsTotal  int
	SinkCallsCached int
	Loops           map[LoopKind]int
	MethodsAnalyzed int
	WorkUnits       int64
	SimMinutes      float64
	WallTime        time.Duration

	// Warm-start dump cache accounting. DumpCacheHits / DumpCacheMisses
	// count dump-provider probes (at most one each per engine; both zero
	// when no provider is configured). On a hit the engine performed zero
	// disassembly and charged DumpCacheUnits at the cheap
	// simtime.ChargeDumpCacheLoad rate; on a miss (or without a provider)
	// DumpLinesDisassembled records the lines rendered and charged at the
	// full disassembly rate.
	DumpCacheHits         int
	DumpCacheMisses       int
	DumpCacheUnits        int64
	DumpLinesDisassembled int64

	// In-memory bundle store accounting (Options.Bundles). At most one
	// probe per engine; both zero when no store is configured. A hit
	// means the whole warm start — dump and index — came out of process
	// memory with zero disk I/O.
	BundleStoreHits   int
	BundleStoreMisses int

	// ForwardMemoHits counts constprop method evaluations answered from
	// the forward-pass memo cache (Options.MemoizeForwardPass).
	ForwardMemoHits int64

	// SettledLookups counts reports served whole from the settled-result
	// tier (service.ReportStore): the job charged one O(1) lookup and ran
	// no engine at all — zero disassembly, zero index builds, zero
	// analysis. Set by the batch service, never by the engine itself; a
	// report with SettledLookups > 0 carries the charged lookup cost in
	// WorkUnits and the settled verdicts in Sinks.
	SettledLookups int

	// CancelPolls counts the cancellation checkpoints the meter hit
	// (Options.Cancel); zero when no cancel poll is installed.
	CancelPolls int64

	// Delta accounting (Options.DeltaFrom); all zero on non-delta runs.
	// ShardsUnchanged/ShardsChanged compare the two bundles' shard
	// fingerprints; SinksReused counts verdicts carried over from the
	// base report, SinksRerun the located sinks that went through the
	// full pipeline on a delta run; DeltaReusedLines is the unchanged
	// footprint mass charged at the cheap delta-reuse rate.
	ShardsUnchanged  int
	ShardsChanged    int
	SinksReused      int
	SinksRerun       int
	DeltaReusedLines int64
}

// SinkCacheRate returns the fraction of sink calls answered from the
// reachability cache.
func (s Stats) SinkCacheRate() float64 {
	if s.SinkCallsTotal == 0 {
		return 0
	}
	return float64(s.SinkCallsCached) / float64(s.SinkCallsTotal)
}

// LoopsDetected reports whether at least one dead loop was detected.
func (s Stats) LoopsDetected() bool {
	for _, n := range s.Loops {
		if n > 0 {
			return true
		}
	}
	return false
}

// Report is the full analysis result of one app.
type Report struct {
	App      string
	Sinks    []*SinkReport
	Stats    Stats
	TimedOut bool

	// Registered is the manifest registration surface the analysis ran
	// under (see registeredComponents); a delta run compares it against
	// the new version's to prove entry-point decisions still hold.
	Registered []string
}

// InsecureSinks returns the reachable sinks judged insecure.
func (r *Report) InsecureSinks() []*SinkReport {
	var out []*SinkReport
	for _, s := range r.Sinks {
		if s.Reachable && s.Insecure {
			out = append(out, s)
		}
	}
	return out
}

// reachState caches per-method reachability (the sink API call caching of
// Sec. IV-F). frag is the footprint fragment of the computation that
// produced the entry, replayed into the active frames on every hit.
type reachState struct {
	reachable bool
	entries   []dex.MethodRef
	frag      *fpFrame
}

// Engine analyzes one app.
type Engine struct {
	app    *apk.App
	opts   Options
	dexf   *dex.File
	prog   *ir.Program
	dump   *dexdump.Text
	search *bcsearch.Engine
	hier   *cha.Hierarchy
	meter  *simtime.Meter

	reachCache  map[string]*reachState
	callerCache map[string][]callerSite
	entryCache  map[string]bool
	analyzed    map[string]bool
	loops       map[LoopKind]int
	sinkTotal   int
	sinkCached  int
	lastValues  []constprop.Value
	preTimedOut bool
	appSSG      *ssg.Graph // shared graph when PerAppSSG is set

	// Per-app slice interning (PerAppSSG only): key -> taint state at the
	// time the interned slice completed. sliceCutoffs counts every
	// depth-bound or loop-cutoff truncation, so a slice whose subtree was
	// truncated is never interned as if it were complete. See
	// backslice.go.
	sliceIntern  map[string]internRecord
	sliceCutoffs int64
	// Engine-wide static-field writer cache, shared across all slicers
	// (the writer set is a pure function of the dump).
	writerCache map[string]map[string]bool

	// Warm-start dump cache accounting (see Stats).
	dumpCacheHits   int
	dumpCacheMisses int
	dumpCacheUnits  int64
	dumpLinesCold   int64

	// In-memory bundle store accounting (see Stats).
	bundleStoreHits   int
	bundleStoreMisses int

	// Forward-pass memoization accounting (see Stats).
	memoHits int64

	// Delta analysis state (Options.DeltaFrom; see delta.go). rec is the
	// footprint recorder, non-nil whenever footprints are collected (all
	// non-PerAppSSG runs, so any run can later serve as a delta base);
	// callerFrag/writerFrag hold the footprint fragments of the caller
	// and static-writer caches.
	rec              *fpRecorder
	callerFrag       map[string]*fpFrame
	writerFrag       map[string]*fpFrame
	deltaOldReport   *Report
	deltaOldMan      *dexdump.Manifest
	deltaNewMan      *dexdump.Manifest
	deltaDiff        *dexdump.ManifestDiff
	sinksReused      int
	sinksRerun       int
	deltaReusedLines int64
}

// DumpProvider is the warm-start seam of the engine: it may supply a
// previously disassembled dump for the app, skipping the disassembly pass
// entirely. Implementations must only return dumps that are valid for the
// app's current bytecode (the default bundle provider validates via
// dexdump.AppFingerprint); returning ok=false falls back to disassembly.
type DumpProvider interface {
	ProvideDump(app *apk.App) (*dexdump.Text, bool)
}

// bundleDumpProvider probes an already-read persistent .bdx bundle for a
// serialized dump section matching the app's fingerprint. The engine
// reads the bundle file once and shares the bytes with the searcher, so
// a warm start costs a single disk read for both sections.
type bundleDumpProvider struct {
	data        []byte
	fingerprint uint64
}

func (p bundleDumpProvider) ProvideDump(app *apk.App) (*dexdump.Text, bool) {
	if len(p.data) == 0 {
		return nil, false
	}
	t, err := dexdump.DecodeBundleDump(p.data, p.fingerprint)
	if err != nil {
		return nil, false
	}
	return t, true
}

// New preprocesses the app (paper Sec. III step 1): merges multidex,
// obtains the bytecode plaintext and builds the search and IR
// infrastructure. With a persistent bundle configured (IndexCacheDir) the
// dump provider is probed first: a valid cached dump makes this a warm
// start — zero disassembly, charged at the cheap ChargeDumpCacheLoad rate
// — while any invalid or absent dump section falls back to disassembly
// transparently and self-heals the bundle.
func New(app *apk.App, opts Options) (*Engine, error) {
	if len(opts.Sinks) == 0 {
		opts.Sinks = android.DefaultSinks()
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 25
	}
	meter := simtime.NewMeter()
	if opts.TimeoutMinutes > 0 {
		meter.SetBudget(simtime.MinutesToUnits(opts.TimeoutMinutes))
	}
	if opts.Cancel != nil {
		meter.SetCancel(opts.Cancel)
	}
	if opts.Heartbeat != nil {
		meter.SetHeartbeat(opts.Heartbeat)
	}
	if opts.MeterCheckpoint != nil {
		meter.SetCheckpointObserver(opts.MeterCheckpoint)
	}

	// Warm-start probes, before any merge or disassembly work. The
	// in-memory bundle store is asked first — a hit costs zero disk I/O —
	// then the on-disk bundle file, which is read once; the searcher
	// decodes its index section from the same bytes either way.
	var fingerprint uint64
	var bundleBytes []byte
	storeHit := false
	cachePath := ""
	if opts.IndexCacheDir != "" {
		cachePath = dexdump.CachePath(opts.IndexCacheDir, app.Name)
	}
	if opts.IndexCacheDir != "" || opts.Bundles != nil {
		fingerprint = dexdump.AppFingerprint(app.Dexes)
	}
	if opts.Bundles != nil {
		if data, ok := opts.Bundles.GetBundle(fingerprint); ok && len(data) != 0 {
			bundleBytes = data
			storeHit = true
		}
	}
	provider := opts.DumpProvider
	if provider == nil && (storeHit || cachePath != "") {
		if !storeHit && cachePath != "" {
			if data, err := os.ReadFile(cachePath); err == nil {
				bundleBytes = data
			}
		}
		provider = bundleDumpProvider{data: bundleBytes, fingerprint: fingerprint}
	}
	var dump *dexdump.Text
	if provider != nil {
		if t, ok := provider.ProvideDump(app); ok && t != nil {
			dump = t
		}
	}
	if storeHit && dump == nil {
		// A store entry that does not validate (damaged or written for
		// different bytecode): drop it — a Put for a present fingerprint
		// is a no-op refresh, so without the drop the bad entry would be
		// pinned forever — and fall back to the cold path, which stores
		// a fresh bundle.
		if dropper, ok := opts.Bundles.(interface{ DropBundle(uint64) }); ok {
			dropper.DropBundle(fingerprint)
		}
		storeHit = false
		bundleBytes = nil
	}

	merged, err := app.MergedDex()
	if err != nil {
		return nil, fmt.Errorf("core: preprocessing %s: %w", app.Name, err)
	}

	e := &Engine{
		app:         app,
		opts:        opts,
		dexf:        merged,
		prog:        ir.NewProgram(merged),
		hier:        cha.New(merged),
		meter:       meter,
		reachCache:  make(map[string]*reachState),
		callerCache: make(map[string][]callerSite),
		entryCache:  make(map[string]bool),
		analyzed:    make(map[string]bool),
		loops:       make(map[LoopKind]int),
		writerCache: make(map[string]map[string]bool),
		sliceIntern: make(map[string]internRecord),
	}
	if opts.Bundles != nil {
		if storeHit {
			e.bundleStoreHits = 1
		} else {
			e.bundleStoreMisses = 1
		}
	}
	if !opts.PerAppSSG {
		// Footprint recording (delta.go): every run that can serve as a
		// delta base records, per sink, the classes and search commands
		// its analysis consulted. The per-app shared graph has no
		// per-sink attribution, so PerAppSSG runs record nothing.
		e.rec = &fpRecorder{}
		e.callerFrag = make(map[string]*fpFrame)
		e.writerFrag = make(map[string]*fpFrame)
		e.prog.SetObserver(func(ref dex.MethodRef) { e.rec.class(ref.Class) })
	}
	if d := opts.DeltaFrom; d != nil && !opts.PerAppSSG && opts.ChunkRange == nil && d.Report != nil && !d.Report.TimedOut {
		// A base bundle without a decodable manifest (legacy version,
		// damaged section) silently disables the delta path; the run is
		// then an ordinary full analysis.
		if om, ok := dexdump.DecodeManifest(d.Bundle); ok {
			e.deltaOldMan = om
			e.deltaOldReport = d.Report
		}
	}

	var preErr error
	coldLines := 0
	if dump != nil {
		// Warm path: the cached dump replaces disassembly entirely;
		// reading it back is charged at the flat cache-load rate — the
		// cheaper in-memory rate when the bundle came from the store.
		e.dumpCacheHits = 1
		before := meter.Units()
		name := "dump-load"
		if storeHit {
			name = "bundle-load"
			preErr = meter.ChargeBundleStoreLoad(dump.LineCount())
		} else {
			preErr = meter.ChargeDumpCacheLoad(dump.LineCount())
		}
		e.dumpCacheUnits = meter.Units() - before
		if preErr == nil {
			e.phaseSpan(name, -1, before)
		}
	} else {
		if provider != nil {
			e.dumpCacheMisses = 1
		}
		dump = dexdump.Disassemble(merged)
		coldLines = dump.LineCount()
	}
	e.dump = dump

	var plan *dexdump.ShardPlan
	if opts.SearchBackend == bcsearch.BackendSharded {
		plan = shardPlan(app, dump, opts.IndexShards)
	}

	deltaDumpLines := 0 // changed+added span lines, valid when deltaDiff != nil
	if e.deltaOldMan != nil {
		// The manifest diff is the delta run's first charged step: one
		// fingerprint-map probe per class of both versions' union.
		e.deltaNewMan = dexdump.BuildManifest(dump, plan)
		e.deltaDiff = dexdump.DiffManifests(e.deltaOldMan, e.deltaNewMan)
		deltaDumpLines = e.deltaNewMan.LinesOf(e.deltaDiff.Touched())
		if preErr == nil {
			b := meter.Units()
			preErr = meter.ChargeShardDiff(e.deltaDiff.TotalClasses())
			if preErr == nil {
				e.phaseSpan("delta-diff", -1, b)
			}
		}
	}
	if coldLines > 0 && preErr == nil {
		if e.deltaDiff != nil {
			// Delta disassembly model: only the changed and added spans
			// are rendered at the full line rate; the unchanged mass is
			// carried over from the base dump at the cheap reuse rate.
			// (The substrate still disassembled everything above, so the
			// dump is bitwise identical to a cold run's — the charge is
			// what models the delta.)
			e.dumpLinesCold = int64(deltaDumpLines)
			b := meter.Units()
			preErr = meter.ChargeLines(deltaDumpLines)
			if preErr == nil {
				e.phaseSpan("disassembly", -1, b)
				b = meter.Units()
				preErr = meter.ChargeDeltaReuse(coldLines - deltaDumpLines)
				if preErr == nil {
					e.phaseSpan("delta-reuse", -1, b)
				}
			}
		} else {
			// Disassembly cost: dexdump is a linear pass over the
			// bytecode. A budget exhausted this early surfaces as a
			// timed-out report from Analyze, not a construction error.
			e.dumpLinesCold = int64(coldLines)
			b := meter.Units()
			preErr = meter.ChargeLines(coldLines)
			if preErr == nil {
				e.phaseSpan("disassembly", -1, b)
			}
		}
	}
	if preErr == simtime.ErrCanceled {
		// A cancellation is never a timed-out report: the caller owns the
		// terminal outcome of a killed job.
		return nil, preErr
	}
	e.preTimedOut = preErr != nil

	searchCfg := bcsearch.Config{
		Meter:                 meter,
		Backend:               opts.SearchBackend,
		EnableCache:           opts.EnableSearchCache,
		CachePath:             cachePath,
		BundleBytes:           bundleBytes,
		AppFingerprint:        fingerprint,
		ParallelLookups:       opts.ParallelLookups,
		AutoParallelLookupMin: opts.AutoParallelLookups,
		// A dump miss on a configured cache means the bundle is absent,
		// legacy or damaged: have the searcher rewrite it even on an index
		// cache hit, so the next run starts fully warm.
		RefreshBundle: cachePath != "" && e.dumpCacheMisses > 0,
	}
	if opts.Bundles != nil && !storeHit && fingerprint != 0 {
		// Capture the bundle into the store once the searcher acquires the
		// index; a store hit needs no re-put (content-addressed entries
		// never change).
		store, fp := opts.Bundles, fingerprint
		searchCfg.StoreBundle = func(data []byte) { store.PutBundle(fp, data) }
	}
	if plan != nil {
		searchCfg.Plan = plan
		searchCfg.BuildWorkers = runtime.NumCPU()
	}
	if e.deltaDiff != nil {
		// Index-build charge follows the same delta model as the dump:
		// only dirty span lines tokenize at the full build rate (ignored
		// when the index itself loads from a cache or bundle).
		searchCfg.DeltaBuild = true
		searchCfg.DeltaIndexLines = deltaDumpLines
		searchCfg.DeltaReuseIndexLines = dump.LineCount() - deltaDumpLines
	}
	ib := meter.Units()
	e.search = bcsearch.NewEngine(dump, searchCfg)
	if preErr == nil {
		// Zero-width spans are suppressed by phaseSpan, so a backend that
		// builds its index lazily (charging on the first search instead)
		// emits nothing here.
		name := "index-build"
		if len(bundleBytes) != 0 {
			name = "index-load"
		}
		e.phaseSpan(name, -1, ib)
	}
	if e.rec != nil {
		e.search.SetObserver(func(cmd bcsearch.Command, hits []bcsearch.Hit) {
			e.rec.command(cmd)
			for _, h := range hits {
				if h.Method.Class != "" {
					e.rec.class(h.Method.Class)
				} else if cls, ok := classOfLine(dump, h.Line); ok {
					e.rec.class(cls)
				}
			}
		})
	}
	return e, nil
}

// shardPlan lays out the sharded search index for an app: one shard per
// classesN.dex when the app is multidex (the natural grain — each dex
// disassembles to a contiguous run of classes in the merged dump),
// deterministic package-prefix shards otherwise. An explicit shard-count
// override always uses package-prefix shards, which support any count.
func shardPlan(app *apk.App, dump *dexdump.Text, shards int) *dexdump.ShardPlan {
	if shards > 0 {
		return dexdump.PackagePrefixPlan(dump, shards)
	}
	if len(app.Dexes) > 1 {
		counts := make([]int, len(app.Dexes))
		for i, d := range app.Dexes {
			counts[i] = len(d.Classes())
		}
		return dexdump.PerDexPlan(dump, counts)
	}
	return dexdump.PackagePrefixPlan(dump, bcsearch.DefaultShards)
}

// Meter exposes the work meter (used by experiment harnesses).
func (e *Engine) Meter() *simtime.Meter { return e.meter }

// phaseSpan reports a completed phase's charged-unit interval to the
// PhaseSpan hook. Zero-width intervals are suppressed: the phase
// charged nothing, so there is no timeline mass to attribute.
func (e *Engine) phaseSpan(phase string, sink int, start int64) {
	if e.opts.PhaseSpan == nil {
		return
	}
	if end := e.meter.Units(); end > start {
		e.opts.PhaseSpan(phase, sink, start, end)
	}
}

// Hierarchy exposes the class hierarchy (used by detectors and tests).
func (e *Engine) Hierarchy() *cha.Hierarchy { return e.hier }

// Analyze runs the full BackDroid pipeline and returns the report. On
// simulated timeout the report carries TimedOut=true with whatever sinks
// completed.
func (e *Engine) Analyze() (*Report, error) {
	start := time.Now()
	report := &Report{App: e.app.Name, Registered: registeredComponents(e.app.Manifest)}
	if e.preTimedOut {
		report.TimedOut = true
		e.fillStats(report, start)
		return report, nil
	}

	lb := e.meter.Units()
	calls, err := e.locateSinkCalls()
	if err != nil {
		if err == simtime.ErrTimeout {
			report.TimedOut = true
			e.fillStats(report, start)
			return report, nil
		}
		return nil, err
	}
	e.phaseSpan("locate-sinks", -1, lb)

	// Chunked entry point (chunk.go): clamp the window onto the canonical
	// list and remember the offset, so progress polls and steal fences
	// speak global positions regardless of which chunk is running.
	total := len(calls)
	offset := 0
	if cr := e.opts.ChunkRange; cr != nil {
		from, to := cr.From, cr.To
		if from < 0 {
			from = 0
		}
		if to > total {
			to = total
		}
		if from > to {
			from = to
		}
		calls = calls[from:to]
		offset = from
	}

	if e.opts.PerAppSSG {
		timedOut, err := e.analyzeSinksPerApp(report, calls, offset, total)
		if err != nil {
			return nil, err
		}
		report.TimedOut = report.TimedOut || timedOut
		// Verdicts become final only after the shared forward pass, so
		// the stream is delivered per app here, in report order.
		if e.opts.SinkObserver != nil {
			for _, sr := range report.Sinks {
				e.opts.SinkObserver(sr)
			}
		}
	} else {
		rb := e.meter.Units()
		reuse, err := e.planDeltaReuse(calls)
		if err == nil {
			e.phaseSpan("delta-reuse", -1, rb)
		}
		if err != nil {
			if err == simtime.ErrTimeout {
				report.TimedOut = true
				e.fillStats(report, start)
				return report, nil
			}
			return nil, err
		}
		for i, call := range calls {
			if e.opts.SinkProgress != nil && e.opts.SinkProgress(offset+i, total) {
				// The position was fenced away by a steal: stop cleanly
				// with the partial report of the sinks already done.
				break
			}
			if sr := reuse[i]; sr != nil {
				e.sinksReused++
				report.Sinks = append(report.Sinks, sr)
				if e.opts.SinkObserver != nil {
					e.opts.SinkObserver(sr)
				}
				continue
			}
			if e.deltaDiff != nil {
				e.sinksRerun++
			}
			// The sink's footprint frame captures every class and search
			// command its analysis consults (delta.go); the caller class
			// is seeded explicitly for the early-unreachable paths that
			// never look its body up.
			frame := e.rec.push()
			e.rec.class(call.Caller.Class)
			sr, err := e.analyzeSinkCall(call, offset+i)
			e.rec.pop()
			if err != nil {
				if err == simtime.ErrTimeout {
					report.TimedOut = true
					break
				}
				return nil, err
			}
			if frame != nil {
				sr.Footprint = frame.footprint()
			}
			report.Sinks = append(report.Sinks, sr)
			if e.opts.SinkObserver != nil {
				e.opts.SinkObserver(sr)
			}
		}
	}

	e.fillStats(report, start)
	return report, nil
}

func (e *Engine) fillStats(report *Report, start time.Time) {
	loops := make(map[LoopKind]int, len(e.loops))
	for k, v := range e.loops {
		loops[k] = v
	}
	report.Stats = Stats{
		Search:                e.search.Stats(),
		SinkCallsTotal:        e.sinkTotal,
		SinkCallsCached:       e.sinkCached,
		Loops:                 loops,
		MethodsAnalyzed:       len(e.analyzed),
		WorkUnits:             e.meter.Units(),
		SimMinutes:            e.meter.Minutes(),
		WallTime:              time.Since(start),
		DumpCacheHits:         e.dumpCacheHits,
		DumpCacheMisses:       e.dumpCacheMisses,
		DumpCacheUnits:        e.dumpCacheUnits,
		DumpLinesDisassembled: e.dumpLinesCold,
		BundleStoreHits:       e.bundleStoreHits,
		BundleStoreMisses:     e.bundleStoreMisses,
		ForwardMemoHits:       e.memoHits,
		CancelPolls:           e.meter.CancelPolls(),
		SinksReused:           e.sinksReused,
		SinksRerun:            e.sinksRerun,
		DeltaReusedLines:      e.deltaReusedLines,
	}
	if e.deltaDiff != nil {
		report.Stats.ShardsUnchanged = e.deltaDiff.ShardsUnchanged
		report.Stats.ShardsChanged = e.deltaDiff.ShardsChanged
	}
}

// prepareSinkCall backtracks one sink call and builds (or extends, in
// per-app mode) its SSG — everything up to but excluding the forward
// pass. It returns the report skeleton and the recorded sink call node
// (nil when the sink is unreachable or its caller failed translation).
func (e *Engine) prepareSinkCall(call SinkCall) (*SinkReport, *ssg.Unit, error) {
	e.sinkTotal++
	sr := &SinkReport{Call: call}

	sig := call.Caller.SootSignature()
	if e.opts.EnableSinkCache {
		if st, ok := e.reachCache[sig]; ok {
			e.sinkCached++
			sr.Cached = true
			// The cached computation's footprint fragment belongs to this
			// sink too — it answers (part of) its reachability.
			e.rec.merge(st.frag)
			if !st.reachable {
				sr.Reachable = false
				return sr, nil, nil
			}
			// Reachable and cached: still slice for the values.
		}
	}

	frame := e.rec.push()
	reachable, entries, err := e.reachable(call.Caller, nil, 0)
	e.rec.pop()
	if err != nil {
		return nil, nil, err
	}
	if e.opts.EnableSinkCache {
		e.reachCache[sig] = &reachState{reachable: reachable, entries: entries, frag: frame}
	}
	sr.Reachable = reachable
	sr.Entries = entries
	if !reachable {
		return sr, nil, nil
	}

	g, sinkUnit, err := e.buildSSG(call)
	if err != nil {
		return nil, nil, err
	}
	sr.SSG = g
	for _, en := range entries {
		g.MarkEntry(en)
	}
	return sr, sinkUnit, nil
}

// analyzeSinkCall backtracks one sink call, builds its SSG and runs the
// forward pass (the per-sink pipeline). pos is the sink's canonical
// position, attributed to the phase spans.
func (e *Engine) analyzeSinkCall(call SinkCall, pos int) (*SinkReport, error) {
	b := e.meter.Units()
	sr, sinkUnit, err := e.prepareSinkCall(call)
	if err != nil {
		return nil, err
	}
	e.phaseSpan("backslice", pos, b)
	if !sr.Reachable {
		return sr, nil
	}

	b = e.meter.Units()
	values, err := e.propagate(sr.SSG, sinkUnit, call)
	if err != nil {
		return nil, err
	}
	e.phaseSpan("constprop", pos, b)
	sr.Values = values
	sr.Insecure = e.judgeLast(call.Sink.Rule)
	return sr, nil
}

// analyzeSinksPerApp is the tuned per-app SSG pipeline (Secs. V-A, VI-D):
// every sink call is backtracked into the one shared slicing graph first —
// with contained-method slices interned, so subgraphs shared between sinks
// are built once — and the forward constant/points-to pass then runs a
// single time over the accumulated graph, collecting all sink parameter
// values in one traversal instead of once per sink. Returns whether the
// simulated budget ran out.
func (e *Engine) analyzeSinksPerApp(report *Report, calls []SinkCall, offset, total int) (bool, error) {
	type pendingSink struct {
		sr   *SinkReport
		unit *ssg.Unit
	}
	var pend []pendingSink
	for i, call := range calls {
		if e.opts.SinkProgress != nil && e.opts.SinkProgress(offset+i, total) {
			// Fenced mid-prepare: the forward pass below still runs over
			// the sinks already prepared — exactly the per-chunk shared
			// graph a thief builds for the stolen window.
			break
		}
		b := e.meter.Units()
		sr, unit, err := e.prepareSinkCall(call)
		if err != nil {
			if err == simtime.ErrTimeout {
				return true, nil
			}
			return false, err
		}
		e.phaseSpan("backslice", offset+i, b)
		report.Sinks = append(report.Sinks, sr)
		if sr.Reachable && unit != nil {
			pend = append(pend, pendingSink{sr: sr, unit: unit})
		}
	}
	if len(pend) == 0 || e.appSSG == nil {
		return false, nil
	}

	multi := make(map[*ssg.Unit]int, len(pend))
	for _, p := range pend {
		multi[p.unit] = p.sr.Call.Sink.ParamIndex
	}
	fb := e.meter.Units()
	res, err := constprop.Run(e.appSSG, e.prog, e.meter, constprop.Options{
		MaxDepth:   e.opts.MaxDepth,
		MultiSinks: multi,
		Memoize:    e.opts.MemoizeForwardPass,
	})
	if err != nil {
		if err == simtime.ErrTimeout {
			return true, nil
		}
		return false, err
	}
	// One shared forward pass for the whole app: sink -1 marks it
	// app-level, like the preprocessing phases.
	e.phaseSpan("constprop", -1, fb)
	e.memoHits += res.MemoHits
	for _, p := range pend {
		vals := res.MultiValues[p.unit]
		out := make([]string, len(vals))
		for i, v := range vals {
			out[i] = v.String()
		}
		p.sr.Values = out
		p.sr.Insecure = judgeValues(p.sr.Call.Sink.Rule, vals)
	}
	return false, nil
}
