package core

import (
	"backdroid/internal/android"
	"backdroid/internal/dex"
	"backdroid/internal/ir"
)

// advancedSearch implements paper Sec. IV-B: for callee methods reached
// through super classes, interfaces, callbacks or asynchronous flows, a
// direct signature search would hit nothing. Instead:
//
//  1. search the callee class's object constructor(s), which are accurately
//     locatable by signature search;
//  2. from each constructor site, run forward object taint analysis on the
//     constructed object;
//  3. stop at an "ending method" — detected not by pre-defined flow
//     mappings but by the indicator class type: an on-path framework API
//     call that consumes the tainted object under the indicator type
//     (e.g. Executor.execute(Runnable)), or a direct virtual call through
//     the supertype's signature;
//  4. maintain and return the full call chain so the further backward
//     search follows only flows that truly trace back to the constructor.
func (e *Engine) advancedSearch(callee dex.MethodRef, indicator string) ([]callerSite, error) {
	ctorHits, err := e.search.FindConstructorCalls(callee.Class)
	if err != nil {
		return nil, err
	}

	var sites []callerSite
	for _, hit := range ctorHits {
		if hit.Method.Name == "" || hit.Method.Class == callee.Class {
			// Skip self-delegating constructors inside the callee class.
			continue
		}
		body, err := e.prog.Body(hit.Method)
		if err != nil {
			continue
		}
		for _, idx := range e.ctorSites(body, callee.Class) {
			inv := ir.InvokeOf(body.Units[idx])
			if inv == nil || inv.Base == nil {
				continue
			}
			ft := &forwardTaint{
				engine:    e,
				callee:    callee,
				indicator: indicator,
				visited:   make(map[string]bool),
			}
			chains := ft.run(hit.Method, body, idx, inv.Base, nil)
			for _, chain := range chains {
				sites = append(sites, callerSite{
					Method:    hit.Method,
					UnitIndex: idx,
					BaseLocal: inv.Base,
					Chain:     chain,
				})
			}
		}
	}
	return sites, nil
}

// ctorSites finds invoke-direct <init> units of the given class in a body.
func (e *Engine) ctorSites(body *ir.Body, class string) []int {
	var out []int
	for i, u := range body.Units {
		inv := ir.InvokeOf(u)
		if inv == nil || inv.Kind != ir.KindSpecial {
			continue
		}
		if inv.Method.IsConstructor() && inv.Method.Class == class {
			out = append(out, i)
		}
	}
	return out
}

// forwardTaint is one advanced-search forward propagation: it tracks the
// constructed object through DefinitionStmt, InvokeStmt and ReturnStmt
// (the three statement kinds of Sec. IV-B) until ending methods are found.
type forwardTaint struct {
	engine    *Engine
	callee    dex.MethodRef
	indicator string
	visited   map[string]bool // methods visited across this whole search (CrossForward)
}

// run propagates the tainted object through the body starting after unit
// `from`, following copies and inter-procedural argument passing. It
// returns the completed call chains ending at an ending method.
func (ft *forwardTaint) run(method dex.MethodRef, body *ir.Body, from int, obj *ir.Local, chain []chainLink) [][]chainLink {
	e := ft.engine
	if len(chain) >= e.opts.MaxDepth {
		return nil
	}
	sig := method.SootSignature()
	if e.opts.EnableLoopDetection {
		// InnerForward: the same method repeating within one call chain.
		for _, link := range chain {
			if link.Method.SootSignature() == sig {
				e.loops[InnerForward]++
				return nil
			}
		}
		// CrossForward: revisiting a method already fully propagated in
		// this advanced search.
		key := sig + "@" + obj.Name
		if ft.visited[key] {
			e.loops[CrossForward]++
			return nil
		}
		ft.visited[key] = true
	}
	chain = append(chain, chainLink{Method: method, UnitIndex: from})

	tainted := map[string]bool{obj.Name: true}
	var chains [][]chainLink

	for i := from + 1; i < len(body.Units); i++ {
		if err := e.meter.Charge(1); err != nil {
			return chains
		}
		switch s := body.Units[i].(type) {
		case *ir.AssignStmt:
			// Copy propagation through locals and casts.
			switch rhs := s.RHS.(type) {
			case *ir.Local:
				ft.assign(tainted, s.LHS, tainted[rhs.Name])
			case *ir.CastExpr:
				if l, ok := rhs.Val.(*ir.Local); ok {
					ft.assign(tainted, s.LHS, tainted[l.Name])
				}
			case *ir.PhiExpr:
				any := false
				for _, a := range rhs.Args {
					if tainted[a.Name] {
						any = true
					}
				}
				ft.assign(tainted, s.LHS, any)
			case *ir.InvokeExpr:
				chains = append(chains, ft.invoke(method, body, i, rhs, tainted, chain)...)
			}
		case *ir.InvokeStmt:
			chains = append(chains, ft.invoke(method, body, i, s.Invoke, tainted, chain)...)
		case *ir.ReturnStmt:
			// A returned tainted object continues in the callers of this
			// method (located by basic search to bound the recursion).
			if l, ok := s.Val.(*ir.Local); ok && tainted[l.Name] {
				chains = append(chains, ft.returnFlow(method, chain)...)
			}
		}
	}
	return chains
}

func (ft *forwardTaint) assign(tainted map[string]bool, lhs ir.Value, taint bool) {
	l, ok := lhs.(*ir.Local)
	if !ok {
		return
	}
	if taint {
		tainted[l.Name] = true
	} else {
		delete(tainted, l.Name)
	}
}

// invoke checks an on-path call: either it is the ending method, or the
// tainted object escapes into an app callee and propagation continues
// there.
func (ft *forwardTaint) invoke(method dex.MethodRef, body *ir.Body, idx int, inv *ir.InvokeExpr, tainted map[string]bool, chain []chainLink) [][]chainLink {
	e := ft.engine

	baseTainted := inv.Base != nil && tainted[inv.Base.Name]
	var taintedArgs []int
	for ai, a := range inv.Args {
		if l, ok := a.(*ir.Local); ok && tainted[l.Name] {
			taintedArgs = append(taintedArgs, ai)
		}
	}
	if !baseTainted && len(taintedArgs) == 0 {
		return nil
	}

	full := append(append([]chainLink(nil), chain...), chainLink{Method: inv.Method, UnitIndex: idx})

	// Ending check 1 (super-class case): a virtual call through the
	// indicator type's signature with the tainted object as receiver and
	// the callee's own sub-signature dispatches to our callee.
	if baseTainted && inv.Method.Name == ft.callee.Name &&
		inv.Method.Descriptor() == ft.callee.Descriptor() &&
		(inv.Method.Class == ft.indicator || e.hier.IsSubclassOf(ft.indicator, inv.Method.Class)) {
		return [][]chainLink{full}
	}

	if android.IsSystemClass(inv.Method.Class) {
		// Ending check 2 (receiver-based async: Thread.start(),
		// AsyncTask.execute()): a framework call on the tainted object
		// whose class is the async indicator or one of its supertypes.
		if baseTainted && android.IsAsyncCallbackClass(ft.indicator) &&
			(inv.Method.Class == ft.indicator || e.hier.IsSubclassOf(ft.indicator, inv.Method.Class)) {
			return [][]chainLink{full}
		}
		// Ending check 3 (interface/callback case): a framework API call
		// with a tainted argument whose declared parameter type is the
		// indicator class type — e.g. Executor.execute(java.lang.Runnable)
		// (the case pre-defined mappings would miss; paper Fig. 4).
		for _, ai := range taintedArgs {
			pt := inv.Method.Params[ai]
			if !pt.IsObject() {
				continue
			}
			pc := pt.ClassName()
			if pc == ft.indicator || e.hier.IsSubclassOf(ft.indicator, pc) {
				return [][]chainLink{full}
			}
		}
		return nil
	}

	// App callee: the object escapes into it; continue propagation there.
	calleeBody, err := e.prog.Body(inv.Method)
	if err != nil {
		return nil
	}
	var out [][]chainLink
	for _, ai := range taintedArgs {
		// Find the identity unit binding @parameter ai.
		for ui, u := range calleeBody.Units {
			id, ok := u.(*ir.IdentityStmt)
			if !ok {
				continue
			}
			pr, ok := id.RHS.(*ir.ParamRef)
			if !ok || pr.Index != ai {
				continue
			}
			out = append(out, ft.run(inv.Method, calleeBody, ui, id.LHS, chain)...)
			break
		}
	}
	return out
}

// returnFlow continues propagation in basic-search callers after the
// current method returns the tainted object.
func (ft *forwardTaint) returnFlow(method dex.MethodRef, chain []chainLink) [][]chainLink {
	e := ft.engine
	m := e.lookupMethod(method)
	if m == nil || !m.IsDirect() {
		// Virtual methods would recurse into another advanced search;
		// bound the analysis as the prototype does.
		return nil
	}
	hits, err := e.search.FindInvocations(method)
	if err != nil {
		return nil
	}
	var out [][]chainLink
	for _, hit := range hits {
		if hit.Method.Name == "" {
			continue
		}
		callerBody, err := e.prog.Body(hit.Method)
		if err != nil {
			continue
		}
		for _, idx := range e.findCallSites(callerBody, method) {
			if as, ok := callerBody.Units[idx].(*ir.AssignStmt); ok {
				if l, ok := as.LHS.(*ir.Local); ok {
					out = append(out, ft.run(hit.Method, callerBody, idx, l, chain)...)
				}
			}
		}
	}
	return out
}
