package core

import (
	"testing"

	"backdroid/internal/android"
	"backdroid/internal/appgen"
)

// TestPerAppSSGSameVerdicts: the per-app SSG extension must not change any
// verdict relative to per-sink graphs.
func TestPerAppSSGSameVerdicts(t *testing.T) {
	perSink := analyzeFixture(t, DefaultOptions())

	opts := DefaultOptions()
	opts.PerAppSSG = true
	perApp := analyzeFixture(t, opts)

	if len(perSink.Sinks) != len(perApp.Sinks) {
		t.Fatalf("sink counts differ: %d vs %d", len(perSink.Sinks), len(perApp.Sinks))
	}
	for i := range perSink.Sinks {
		a, b := perSink.Sinks[i], perApp.Sinks[i]
		if a.Call.Caller.SootSignature() != b.Call.Caller.SootSignature() {
			t.Fatalf("sink order differs at %d", i)
		}
		if a.Reachable != b.Reachable || a.Insecure != b.Insecure {
			t.Errorf("verdict differs for %s: per-sink (r=%v,i=%v) vs per-app (r=%v,i=%v)",
				a.Call.Caller.SootSignature(), a.Reachable, a.Insecure, b.Reachable, b.Insecure)
		}
	}
}

// TestPerAppSSGSharesOneGraph: all reachable sinks point at the same graph
// instance, and it accumulates every tracked method.
func TestPerAppSSGSharesOneGraph(t *testing.T) {
	opts := DefaultOptions()
	opts.PerAppSSG = true
	r := analyzeFixture(t, opts)

	var sharedMethods int
	var first interface{}
	for _, s := range r.Sinks {
		if s.SSG == nil {
			continue
		}
		if first == nil {
			first = s.SSG
			sharedMethods = len(s.SSG.Methods())
		} else if s.SSG != first {
			t.Fatal("per-app mode must share a single SSG")
		}
	}
	if first == nil {
		t.Fatal("no SSG produced")
	}
	// The shared graph must cover methods from several distinct sink
	// slices (fixture has >= 5 reachable sinks in different classes).
	if sharedMethods < 5 {
		t.Errorf("shared SSG tracks %d methods, want >= 5", sharedMethods)
	}
}

// TestPerAppSSGSharedChainInterning: on an app whose sinks all funnel
// through one shared config chain (the many-sink outlier shape), the
// per-app SSG with slice interning must charge strictly less than
// per-sink graphs while producing identical verdicts — the subgraph is
// built once, not once per sink.
func TestPerAppSSGSharedChainInterning(t *testing.T) {
	var sinks []appgen.SinkSpec
	for s := 0; s < 12; s++ {
		sinks = append(sinks, appgen.SinkSpec{
			Flow: appgen.FlowSharedConfig, Rule: android.RuleCryptoECB, Insecure: s%2 == 0,
		})
	}
	app, truth, err := appgen.Generate(appgen.Spec{
		Name: "com.perapp.chain", Seed: 99, SizeMB: 2, Sinks: sinks,
	})
	if err != nil {
		t.Fatal(err)
	}

	perSink := analyzeApp(t, app, DefaultOptions())
	opts := DefaultOptions()
	opts.PerAppSSG = true
	perApp := analyzeApp(t, app, opts)

	assertSameVerdicts(t, "per-sink vs per-app", perSink, perApp)
	if len(perApp.Sinks) != len(truth.Sinks) {
		t.Fatalf("found %d sinks, truth has %d", len(perApp.Sinks), len(truth.Sinks))
	}
	// Ground truth: shared-config sinks resolve their chain value.
	for _, s := range perApp.Sinks {
		if !s.Reachable {
			t.Errorf("%s unreachable", s.Call.Caller.SootSignature())
		}
		if len(s.Values) == 0 {
			t.Errorf("%s resolved no value through the shared chain", s.Call.Caller.SootSignature())
		}
	}
	su, au := perSink.Stats.WorkUnits, perApp.Stats.WorkUnits
	if au >= su {
		t.Errorf("per-app SSG charged %d units, per-sink %d — interning must make sharing cheaper", au, su)
	}
}
