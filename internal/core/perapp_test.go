package core

import "testing"

// TestPerAppSSGSameVerdicts: the per-app SSG extension must not change any
// verdict relative to per-sink graphs.
func TestPerAppSSGSameVerdicts(t *testing.T) {
	perSink := analyzeFixture(t, DefaultOptions())

	opts := DefaultOptions()
	opts.PerAppSSG = true
	perApp := analyzeFixture(t, opts)

	if len(perSink.Sinks) != len(perApp.Sinks) {
		t.Fatalf("sink counts differ: %d vs %d", len(perSink.Sinks), len(perApp.Sinks))
	}
	for i := range perSink.Sinks {
		a, b := perSink.Sinks[i], perApp.Sinks[i]
		if a.Call.Caller.SootSignature() != b.Call.Caller.SootSignature() {
			t.Fatalf("sink order differs at %d", i)
		}
		if a.Reachable != b.Reachable || a.Insecure != b.Insecure {
			t.Errorf("verdict differs for %s: per-sink (r=%v,i=%v) vs per-app (r=%v,i=%v)",
				a.Call.Caller.SootSignature(), a.Reachable, a.Insecure, b.Reachable, b.Insecure)
		}
	}
}

// TestPerAppSSGSharesOneGraph: all reachable sinks point at the same graph
// instance, and it accumulates every tracked method.
func TestPerAppSSGSharesOneGraph(t *testing.T) {
	opts := DefaultOptions()
	opts.PerAppSSG = true
	r := analyzeFixture(t, opts)

	var sharedMethods int
	var first interface{}
	for _, s := range r.Sinks {
		if s.SSG == nil {
			continue
		}
		if first == nil {
			first = s.SSG
			sharedMethods = len(s.SSG.Methods())
		} else if s.SSG != first {
			t.Fatal("per-app mode must share a single SSG")
		}
	}
	if first == nil {
		t.Fatal("no SSG produced")
	}
	// The shared graph must cover methods from several distinct sink
	// slices (fixture has >= 5 reachable sinks in different classes).
	if sharedMethods < 5 {
		t.Errorf("shared SSG tracks %d methods, want >= 5", sharedMethods)
	}
}
