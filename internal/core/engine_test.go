package core

import (
	"strings"
	"testing"

	"backdroid/internal/android"
)

func TestLocatesAllSinkCalls(t *testing.T) {
	r := analyzeFixture(t, DefaultOptions())
	// 7 Cipher.getInstance sites + 1 setHostnameVerifier site.
	if len(r.Sinks) != 8 {
		t.Fatalf("sinks = %d, want 8: %v", len(r.Sinks), sinkNames(r))
	}
	if r.TimedOut {
		t.Fatal("fixture must not time out")
	}
}

func TestBasicSearchPrivateMethod(t *testing.T) {
	r := analyzeFixture(t, DefaultOptions())
	s := sinkByMethod(t, r, cls("MainActivity"), "privateHelper")
	if !s.Reachable {
		t.Fatal("private helper sink must be reachable via basic signature search")
	}
	if !s.Insecure {
		t.Errorf("ECB transformation must be insecure; values=%v", s.Values)
	}
	wantEntry := "<" + cls("MainActivity") + ": void onCreate(android.os.Bundle)>"
	found := false
	for _, en := range s.Entries {
		if en.SootSignature() == wantEntry {
			found = true
		}
	}
	if !found {
		t.Errorf("entries = %v, want %s", s.Entries, wantEntry)
	}
	if len(s.Values) != 1 || s.Values[0] != `"AES/ECB/PKCS5Padding"` {
		t.Errorf("values = %v", s.Values)
	}
}

func TestAdvancedSearchInterfaceCallback(t *testing.T) {
	r := analyzeFixture(t, DefaultOptions())
	s := sinkByMethod(t, r, cls("NetcastHttpServer"), "start")
	if !s.Reachable {
		t.Fatal("SSL sink must be reachable through the Runnable/Executor chain")
	}
	if !s.Insecure {
		t.Errorf("ALLOW_ALL verifier must be insecure; values=%v", s.Values)
	}
	// The value is the framework constant token.
	foundToken := false
	for _, v := range s.Values {
		if strings.Contains(v, "ALLOW_ALL_HOSTNAME_VERIFIER") {
			foundToken = true
		}
	}
	if !foundToken {
		t.Errorf("values = %v, want ALLOW_ALL token", s.Values)
	}
}

func TestStaticInitializerTrack(t *testing.T) {
	r := analyzeFixture(t, DefaultOptions())
	s := sinkByMethod(t, r, cls("HttpServerService"), "onCreate")
	if !s.Reachable {
		t.Fatal("registered service onCreate must be an entry")
	}
	if len(s.Values) != 1 || s.Values[0] != `"AES"` {
		t.Fatalf("clinit-resolved value = %v, want \"AES\"", s.Values)
	}
	if !s.Insecure {
		t.Error("bare AES defaults to ECB and must be insecure")
	}
	if s.SSG == nil || len(s.SSG.StaticTrack) == 0 {
		t.Error("SSG must carry the off-path static initializer track")
	}
}

func TestUnregisteredComponentAvoided(t *testing.T) {
	r := analyzeFixture(t, DefaultOptions())
	s := sinkByMethod(t, r, cls("UnregActivity"), "onCreate")
	if s.Reachable {
		t.Error("unregistered component sink must be unreachable (Amandroid FP shape)")
	}
}

func TestDeadCodeAvoided(t *testing.T) {
	r := analyzeFixture(t, DefaultOptions())
	s := sinkByMethod(t, r, cls("DeadCode"), "unused")
	if s.Reachable {
		t.Error("dead code sink must be unreachable")
	}
}

func TestChildClassSignatureSearch(t *testing.T) {
	r := analyzeFixture(t, DefaultOptions())
	s := sinkByMethod(t, r, cls("CryptoBase"), "doCrypto")
	if !s.Reachable {
		t.Fatal("inherited method invoked via child signature must be found")
	}
	if s.Insecure {
		t.Errorf("CBC transformation must be secure; values=%v", s.Values)
	}
	if len(s.Values) != 1 || s.Values[0] != `"AES/CBC/PKCS5Padding"` {
		t.Errorf("values = %v", s.Values)
	}
}

func TestSuperClassAdvancedSearch(t *testing.T) {
	r := analyzeFixture(t, DefaultOptions())
	s := sinkByMethod(t, r, cls("SubServer"), "start")
	if !s.Reachable {
		t.Fatal("override invoked through super-class signature must be found")
	}
	if !s.Insecure {
		t.Errorf("ECB must be insecure; values=%v", s.Values)
	}
}

func TestThreadAsyncAdvancedSearch(t *testing.T) {
	r := analyzeFixture(t, DefaultOptions())
	s := sinkByMethod(t, r, cls("WorkThread"), "run")
	if !s.Reachable {
		t.Fatal("Thread.run reached via Thread.start must be found")
	}
	if !s.Insecure {
		t.Errorf("ECB must be insecure; values=%v", s.Values)
	}
}

func TestInsecureSinkSummary(t *testing.T) {
	r := analyzeFixture(t, DefaultOptions())
	insecure := r.InsecureSinks()
	// A (ECB), B (SSL), C (AES), G (ECB), H (ECB) = 5; F is secure CBC;
	// D and E unreachable.
	if len(insecure) != 5 {
		var got []string
		for _, s := range insecure {
			got = append(got, s.Call.Caller.SootSignature())
		}
		t.Errorf("insecure sinks = %d (%v), want 5", len(insecure), got)
	}
}

func TestSearchCacheStats(t *testing.T) {
	r := analyzeFixture(t, DefaultOptions())
	if r.Stats.Search.Commands == 0 {
		t.Fatal("no search commands recorded")
	}
	if r.Stats.Search.CacheHits == 0 {
		t.Error("repeated searches across sinks should produce cache hits")
	}
	if r.Stats.WorkUnits == 0 || r.Stats.SimMinutes <= 0 {
		t.Error("work accounting missing")
	}
}

func TestICCCallerConnected(t *testing.T) {
	r := analyzeFixture(t, DefaultOptions())
	s := sinkByMethod(t, r, cls("HttpServerService"), "onCreate")
	// The two-time ICC search should connect MainActivity.onCreate as a
	// sender, extending the entry set beyond the service itself.
	entrySigs := make(map[string]bool)
	for _, en := range s.Entries {
		entrySigs[en.SootSignature()] = true
	}
	if !entrySigs["<"+cls("HttpServerService")+": void onCreate()>"] {
		t.Errorf("service onCreate must be an entry; entries=%v", s.Entries)
	}
	if !entrySigs["<"+cls("MainActivity")+": void onCreate(android.os.Bundle)>"] {
		t.Errorf("ICC sender entry missing; entries=%v", s.Entries)
	}
}

func TestSinkCacheAcrossCalls(t *testing.T) {
	r := analyzeFixture(t, DefaultOptions())
	if r.Stats.SinkCallsTotal != 8 {
		t.Errorf("SinkCallsTotal = %d, want 8", r.Stats.SinkCallsTotal)
	}
	// Every containing method has exactly one sink here, so cross-call
	// caching is not expected in the default fixture.
	if rate := r.Stats.SinkCacheRate(); rate < 0 || rate > 1 {
		t.Errorf("cache rate out of range: %f", rate)
	}
}

func TestOptionsDefaults(t *testing.T) {
	opts := DefaultOptions()
	if !opts.EnableSearchCache || !opts.EnableSinkCache || !opts.EnableLoopDetection {
		t.Error("engineering enhancements must default on")
	}
	if opts.MaxDepth <= 0 {
		t.Error("MaxDepth must default positive")
	}
	if len(opts.Sinks) != len(android.DefaultSinks()) {
		t.Error("default sinks missing")
	}
}

func TestLoopKindString(t *testing.T) {
	names := map[LoopKind]string{
		CrossBackward: "CrossBackward",
		InnerBackward: "InnerBackward",
		CrossForward:  "CrossForward",
		InnerForward:  "InnerForward",
		LoopKind(99):  "UnknownLoop",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("LoopKind(%d) = %q, want %q", int(k), k.String(), want)
		}
	}
}
