package core

import (
	"backdroid/internal/android"
	"backdroid/internal/bcsearch"
	"backdroid/internal/dex"
	"backdroid/internal/ir"
	"backdroid/internal/ssg"
)

// retSentinel is the pseudo-local standing for "the callee's return value"
// when a contained method is sliced from its end.
const retSentinel = "\x00ret"

// buildSSG performs the adjusted backward slicing of paper Sec. V-A: it
// backtracks from the sink call, tainting across locals, fields, arrays
// and contained methods, locating callers with the Sec. IV searches, and
// records everything — raw typed statements, inter-procedural edges, the
// hierarchical taint map — into a self-contained slicing graph. Finally it
// adds off-path static initializers for still-unresolved static fields.
func (e *Engine) buildSSG(call SinkCall) (*ssg.Graph, *ssg.Unit, error) {
	g := ssg.New(call.Sink.Method)
	if e.opts.PerAppSSG {
		// Per-app mode (the paper's planned extension): all sinks share
		// one graph, so slices explored for earlier sinks are reused.
		if e.appSSG == nil {
			e.appSSG = g
		}
		g = e.appSSG
	}
	body, err := e.prog.Body(call.Caller)
	if err != nil {
		return g, nil, nil // transformation failure: empty SSG
	}

	sinkUnit := g.AddUnit(call.Caller, call.UnitIndex, body.Units[call.UnitIndex])
	if g.SinkSite == nil {
		g.MarkSink(sinkUnit)
	}

	inv := ir.InvokeOf(body.Units[call.UnitIndex])
	if inv == nil || call.Sink.ParamIndex >= len(inv.Args) {
		return g, sinkUnit, nil
	}
	ts := g.Taints(call.Caller)
	if l, ok := inv.Args[call.Sink.ParamIndex].(*ir.Local); ok {
		ts.AddLocal(l.Name)
	}

	s := &slicer{engine: e, g: g}
	if err := s.slice(call.Caller, call.UnitIndex, nil, 0, false); err != nil {
		return nil, nil, err
	}
	if err := s.addOffPathClinits(); err != nil {
		return nil, nil, err
	}
	return g, sinkUnit, nil
}

// slicer carries the state of one SSG construction. The static-field
// writer cache lives on the engine — the writer set is a pure function of
// the dump, so every slicer of the app shares it.
type slicer struct {
	engine *Engine
	g      *ssg.Graph
}

// internKey builds the per-app slice-intern key for a contained-method
// slice: the seed kind, the static-track flag and the callee signature.
func internKey(kind string, staticTrack bool, sig string) string {
	track := "-"
	if staticTrack {
		track = "s"
	}
	return kind + "\x00" + track + "\x00" + sig
}

// internRecord is the taint state an interned slice completed under. A
// later identical slice request is skipped only when BOTH the callee's
// own taint set and the global static taints are unchanged since — a
// newly tainted static field can change what a callee slice records
// (sput writers), even though the callee's local set never moved.
type internRecord struct {
	callee int // callee TaintSet.Version at completion
	global int // GlobalTaint.Version at completion
}

// internHit reports whether the interned record still describes the
// current taint state.
func (s *slicer) internHit(key string, calleeTaints *ssg.TaintSet) bool {
	rec, ok := s.engine.sliceIntern[key]
	return ok && rec.callee == calleeTaints.Version() && rec.global == s.g.GlobalTaint.Version()
}

// internStore records a completed slice for interning — unless any
// depth-bound or loop cutoff truncated its subtree (cutoffs moved), in
// which case the slice is not a faithful stand-in for a re-slice from a
// shallower context and must not be replayed.
func (s *slicer) internStore(key string, calleeTaints *ssg.TaintSet, cutoffsBefore int64) {
	e := s.engine
	if e.sliceCutoffs != cutoffsBefore {
		delete(e.sliceIntern, key)
		return
	}
	e.sliceIntern[key] = internRecord{callee: calleeTaints.Version(), global: s.g.GlobalTaint.Version()}
}

// slice scans the method backward from unit fromIdx-1, consuming and
// producing taints in the method's taint set, then propagates remaining
// parameter taints to callers located by bytecode search. staticTrack
// routes recorded units into the SSG's special static track.
func (s *slicer) slice(method dex.MethodRef, fromIdx int, path []string, depth int, staticTrack bool) error {
	e := s.engine
	sig := method.SootSignature()
	if depth > e.opts.MaxDepth {
		e.sliceCutoffs++
		return nil
	}
	for _, p := range path {
		if p == sig {
			e.sliceCutoffs++
			if e.opts.EnableLoopDetection {
				e.loops[CrossBackward]++
			}
			return nil
		}
	}
	body, err := e.prog.Body(method)
	if err != nil {
		return nil // transformation failure: stop this branch
	}
	e.analyzed[sig] = true
	if fromIdx < 0 || fromIdx > len(body.Units) {
		fromIdx = len(body.Units)
	}

	ts := s.g.Taints(method)

	// Identity statements bind @this/@parameter to locals; the forward
	// pass needs them whenever a recorded statement references the local,
	// even if the identity itself never carried taint.
	identOf := make(map[string]int)
	for i, u := range body.Units {
		if id, ok := u.(*ir.IdentityStmt); ok {
			identOf[id.LHS.Name] = i
		}
	}
	record := func(idx int) *ssg.Unit {
		add := s.g.AddUnit
		if staticTrack {
			add = s.g.AddStaticUnit
		}
		u := add(method, idx, body.Units[idx])
		for _, l := range localsOfUnit(body.Units[idx]) {
			if ii, ok := identOf[l.Name]; ok && ii != idx {
				add(method, ii, body.Units[ii])
			}
		}
		return u
	}

	// Contained-method slices arrive with a return-value sentinel: every
	// return statement's value becomes tainted.
	retSeeded := ts.HasLocal(retSentinel)
	if retSeeded {
		ts.RemoveLocal(retSentinel)
	}

	thisTainted := false
	var taintedParams []int

	for i := fromIdx - 1; i >= 0; i-- {
		if err := e.meter.Charge(1); err != nil {
			return err
		}
		switch u := body.Units[i].(type) {
		case *ir.IdentityStmt:
			if !ts.HasLocal(u.LHS.Name) && !ts.HasAnyFieldOf(u.LHS.Name) {
				continue
			}
			record(i)
			switch rhs := u.RHS.(type) {
			case *ir.ThisRef:
				thisTainted = true
			case *ir.ParamRef:
				taintedParams = append(taintedParams, rhs.Index)
			}

		case *ir.AssignStmt:
			if err := s.handleAssign(method, body, i, u, ts, record, path, depth, staticTrack); err != nil {
				return err
			}

		case *ir.InvokeStmt:
			if err := s.handleInvoke(method, body, i, u.Invoke, ts, record, path, depth, staticTrack); err != nil {
				return err
			}

		case *ir.ReturnStmt:
			if l, ok := u.Val.(*ir.Local); ok && retSeeded {
				ts.AddLocal(l.Name)
				record(i)
			}
		}
	}

	// Lifecycle predecessor handling (Sec. IV-E): state written by an
	// earlier handler of the same component (e.g. a field set in
	// onCreate, read here) is resolved by slicing the predecessor
	// handlers from their ends.
	if thisTainted && ts.HasAnyFieldOf(thisLocalName(body)) {
		if err := s.slicePredecessorHandlers(method, path, depth); err != nil {
			return err
		}
	}

	if len(taintedParams) == 0 && !thisTainted {
		return nil // dataflow fully resolved inside this method
	}
	return s.propagateToCallers(method, body, taintedParams, thisTainted, path, depth)
}

// handleAssign applies the backward taint transfer of one definition.
func (s *slicer) handleAssign(method dex.MethodRef, body *ir.Body, idx int, u *ir.AssignStmt, ts *ssg.TaintSet, record func(int) *ssg.Unit, path []string, depth int, staticTrack bool) error {
	switch lhs := u.LHS.(type) {
	case *ir.Local:
		relevant := ts.HasLocal(lhs.Name)
		// A constructor-style definition also matters when only fields of
		// the object are tainted (the alloc site closes the object).
		if _, isNew := u.RHS.(*ir.NewExpr); isNew && ts.HasAnyFieldOf(lhs.Name) {
			relevant = true
		}
		if !relevant {
			return nil
		}
		record(idx)
		if _, isNew := u.RHS.(*ir.NewExpr); !isNew {
			ts.RemoveLocal(lhs.Name)
		}
		return s.taintRHS(method, body, idx, u.RHS, ts, record, path, depth, staticTrack)

	case *ir.InstanceFieldRef:
		if !ts.HasField(lhs.Base.Name, lhs.Field) {
			return nil
		}
		record(idx)
		ts.RemoveField(lhs.Base.Name, lhs.Field)
		return s.taintRHS(method, body, idx, u.RHS, ts, record, path, depth, staticTrack)

	case *ir.StaticFieldRef:
		if !s.g.GlobalTaint.HasStatic(lhs.Field) {
			return nil
		}
		record(idx)
		s.g.GlobalTaint.RemoveStatic(lhs.Field)
		return s.taintRHS(method, body, idx, u.RHS, ts, record, path, depth, staticTrack)

	case *ir.ArrayRef:
		if !ts.HasLocal(lhs.Base.Name) {
			return nil
		}
		// Array stores keep the array tainted: other elements may matter.
		record(idx)
		return s.taintRHS(method, body, idx, u.RHS, ts, record, path, depth, staticTrack)
	}
	return nil
}

// taintRHS taints whatever the right-hand side reads.
func (s *slicer) taintRHS(method dex.MethodRef, body *ir.Body, idx int, rhs ir.Value, ts *ssg.TaintSet, record func(int) *ssg.Unit, path []string, depth int, staticTrack bool) error {
	switch v := rhs.(type) {
	case *ir.Local:
		ts.AddLocal(v.Name)

	case ir.IntConst, ir.StringConst, ir.ClassConst, ir.NullConst:
		// Fully resolved; nothing upstream to taint.

	case *ir.InstanceFieldRef:
		// Taint both the field and its class object so the pair survives
		// aliasing and method boundaries (paper Sec. V-A).
		ts.AddField(v.Base.Name, v.Field)
		ts.AddLocal(v.Base.Name)

	case *ir.StaticFieldRef:
		if android.IsSystemClass(v.Field.Class) {
			// Framework constants (e.g. ALLOW_ALL_HOSTNAME_VERIFIER)
			// resolve to opaque tokens in the forward pass.
			return nil
		}
		s.g.GlobalTaint.AddStatic(v.Field)
		return s.traceStaticFieldWriters(v.Field, path, depth)

	case *ir.ArrayRef:
		ts.AddLocal(v.Base.Name)

	case *ir.BinopExpr:
		for _, l := range ir.LocalsOf(v) {
			ts.AddLocal(l.Name)
		}

	case *ir.CastExpr:
		for _, l := range ir.LocalsOf(v) {
			ts.AddLocal(l.Name)
		}

	case *ir.NewArrayExpr:
		// Size is rarely security-relevant; keep contents tainted via
		// aput handling.

	case *ir.PhiExpr:
		for _, l := range v.Args {
			ts.AddLocal(l.Name)
		}

	case *ir.NewExpr:
		// Allocation site: the object is born here. Constructor effects
		// were already handled when the backward scan passed <init>.

	case *ir.InvokeExpr:
		return s.taintInvokeResult(method, body, idx, v, ts, path, depth, staticTrack)
	}
	return nil
}

// taintInvokeResult handles a tainted value produced by a call: descend
// into app callees from their return statements (contained methods with
// calling and return edges); model framework callees conservatively by
// tainting their receiver and arguments.
func (s *slicer) taintInvokeResult(method dex.MethodRef, body *ir.Body, idx int, inv *ir.InvokeExpr, ts *ssg.TaintSet, path []string, depth int, staticTrack bool) error {
	e := s.engine
	if android.IsSystemClass(inv.Method.Class) || e.lookupMethod(inv.Method) == nil {
		if inv.Base != nil {
			ts.AddLocal(inv.Base.Name)
		}
		for _, a := range inv.Args {
			if l, ok := a.(*ir.Local); ok {
				ts.AddLocal(l.Name)
			}
		}
		return nil
	}

	// Contained method: slice the callee from its end with the returned
	// value tainted (the sentinel is replaced at the callee's ReturnStmt).
	if e.opts.EnableLoopDetection {
		for _, p := range path {
			if p == inv.Method.SootSignature() {
				e.sliceCutoffs++
				e.loops[InnerBackward]++
				return nil
			}
		}
	}
	site, _ := s.g.Unit(method, idx)
	if site == nil {
		site = s.g.AddUnit(method, idx, body.Units[idx])
	}
	s.g.AddEdge(ssg.CallEdge, site, inv.Method)
	s.g.AddEdge(ssg.ReturnEdge, site, inv.Method)

	calleeTaints := s.g.Taints(inv.Method)
	key := internKey("ret", staticTrack, inv.Method.SootSignature())
	if e.opts.PerAppSSG {
		// Slice interning (per-app SSG tuning): when an identical
		// return-seeded slice of this callee already ran to completion on
		// the shared graph and neither the callee's taint set nor the
		// global static taints have moved since, the subgraph — recorded
		// units, edges, residual taints — is already in place. Re-slicing
		// would re-walk the same statements to the same state, so only
		// the call-site bookkeeping above and the residual parameter
		// mapping below are repeated.
		if s.internHit(key, calleeTaints) {
			s.mapCalleeParamsBack(inv, calleeTaints, ts)
			return nil
		}
	}
	cutoffs := e.sliceCutoffs
	calleeTaints.AddLocal(retSentinel)
	if err := s.slice(inv.Method, -1, append(path, method.SootSignature()), depth+1, staticTrack); err != nil {
		return err
	}
	if e.opts.PerAppSSG {
		s.internStore(key, calleeTaints, cutoffs)
	}
	// Map the callee's residual parameter taints back to our arguments.
	s.mapCalleeParamsBack(inv, calleeTaints, ts)
	return nil
}

// handleInvoke processes a result-less call during the backward scan: a
// constructor or setter may populate the tainted object or a tainted
// static field (the contained-method analysis of Sec. V-A).
func (s *slicer) handleInvoke(method dex.MethodRef, body *ir.Body, idx int, inv *ir.InvokeExpr, ts *ssg.TaintSet, record func(int) *ssg.Unit, path []string, depth int, staticTrack bool) error {
	e := s.engine

	objRelevant := inv.Base != nil && (ts.HasAnyFieldOf(inv.Base.Name) || (inv.Method.IsConstructor() && ts.HasLocal(inv.Base.Name)))
	staticRelevant := false
	if !s.g.GlobalTaint.Empty() && e.lookupMethod(inv.Method) != nil {
		// Normally only methods matched by the static-field write search
		// are analyzed (Sec. V-A); the ablation analyzes every contained
		// method, which is what the paper calls "certainly slows down the
		// analysis".
		staticRelevant = e.opts.AnalyzeAllContained || s.writesTaintedStatic(inv.Method)
	}
	if !objRelevant && !staticRelevant {
		return nil
	}
	record(idx)

	if android.IsSystemClass(inv.Method.Class) || e.lookupMethod(inv.Method) == nil {
		return nil // e.g. Object.<init>: no app code to descend into
	}
	if e.opts.EnableLoopDetection {
		for _, p := range path {
			if p == inv.Method.SootSignature() {
				e.sliceCutoffs++
				e.loops[InnerBackward]++
				return nil
			}
		}
	}

	site := record(idx)
	s.g.AddEdge(ssg.CallEdge, site, inv.Method)
	s.g.AddEdge(ssg.ReturnEdge, site, inv.Method)

	calleeBody, err := e.prog.Body(inv.Method)
	if err != nil {
		return nil
	}
	calleeTaints := s.g.Taints(inv.Method)
	if objRelevant {
		calleeThis := thisLocalName(calleeBody)
		// Seed (this, field) taints matching the caller's (base, field).
		for _, f := range taintedFieldsOf(ts, inv.Base.Name) {
			calleeTaints.AddField(calleeThis, f)
		}
		calleeTaints.AddLocal(calleeThis)
	}
	if err := s.slice(inv.Method, -1, append(path, method.SootSignature()), depth+1, staticTrack); err != nil {
		return err
	}
	s.mapCalleeParamsBack(inv, calleeTaints, ts)
	return nil
}

// mapCalleeParamsBack maps residual tainted parameters of a sliced callee
// back to the caller's argument locals.
func (s *slicer) mapCalleeParamsBack(inv *ir.InvokeExpr, calleeTaints *ssg.TaintSet, ts *ssg.TaintSet) {
	body, err := s.engine.prog.Body(inv.Method)
	if err != nil {
		return
	}
	for _, u := range body.Units {
		id, ok := u.(*ir.IdentityStmt)
		if !ok {
			continue
		}
		pr, ok := id.RHS.(*ir.ParamRef)
		if !ok || !calleeTaints.HasLocal(id.LHS.Name) {
			continue
		}
		if pr.Index < len(inv.Args) {
			if l, ok := inv.Args[pr.Index].(*ir.Local); ok {
				ts.AddLocal(l.Name)
			}
		}
	}
}

// writesTaintedStatic reports whether the method is a writer of any
// currently tainted static field, using the field-signature bytecode
// search instead of analyzing every contained method (Sec. V-A).
func (s *slicer) writesTaintedStatic(ref dex.MethodRef) bool {
	for _, fieldSig := range s.g.GlobalTaint.StaticFields() {
		writers, ok := s.staticWriters(fieldSig)
		if !ok {
			continue
		}
		if writers[ref.SootSignature()] {
			return true
		}
	}
	return false
}

// traceStaticFieldWriters launches the field-signature search when a new
// static field becomes tainted, caching the writer set engine-wide (the
// set depends only on the dump, never on the slice in progress).
func (s *slicer) traceStaticFieldWriters(field dex.FieldRef, path []string, depth int) error {
	e := s.engine
	sig := field.SootSignature()
	if _, ok := e.writerCache[sig]; ok {
		e.rec.merge(e.writerFrag[sig])
		return nil
	}
	frame := e.rec.push()
	hits, err := e.search.FindFieldAccesses(field, bcsearch.FieldWrites)
	e.rec.pop()
	if err != nil {
		return err
	}
	writers := make(map[string]bool)
	for _, h := range hits {
		if h.Method.Name != "" {
			writers[h.Method.SootSignature()] = true
		}
	}
	e.writerCache[sig] = writers
	if frame != nil {
		e.writerFrag[sig] = frame
	}
	return nil
}

// staticWriters returns the cached writer set of a static field.
func (s *slicer) staticWriters(fieldSig string) (map[string]bool, bool) {
	w, ok := s.engine.writerCache[fieldSig]
	return w, ok
}

// slicePredecessorHandlers slices earlier lifecycle handlers of the same
// component to resolve this-field taints (Sec. IV-E domain knowledge).
func (s *slicer) slicePredecessorHandlers(method dex.MethodRef, path []string, depth int) error {
	e := s.engine
	kind, isComp := e.hier.ComponentKind(method.Class)
	if !isComp || !android.IsLifecycleMethod(kind, method.Name) {
		return nil
	}
	cls := e.lookupClass(method.Class)
	if cls == nil {
		return nil
	}
	// Walk the predecessor relation transitively: a field read in
	// onResume may have been written in onCreate even when the class
	// defines no onStart in between.
	seen := map[string]bool{method.Name: true}
	var preds []string
	queue := android.LifecyclePredecessors(kind, method.Name)
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		if seen[name] {
			continue
		}
		seen[name] = true
		preds = append(preds, name)
		queue = append(queue, android.LifecyclePredecessors(kind, name)...)
	}
	for _, pred := range preds {
		for _, m := range cls.Methods {
			if m.Ref.Name != pred || m.IsAbstract() {
				continue
			}
			predBody, err := e.prog.Body(m.Ref)
			if err != nil {
				continue
			}
			// Transfer this-field taints into the predecessor handler.
			curBody, err := e.prog.Body(method)
			if err != nil {
				continue
			}
			src := s.g.Taints(method)
			dst := s.g.Taints(m.Ref)
			predThis := thisLocalName(predBody)
			for _, f := range taintedFieldsOf(src, thisLocalName(curBody)) {
				dst.AddField(predThis, f)
			}
			dst.AddLocal(predThis)
			if err := s.slice(m.Ref, -1, append(path, method.SootSignature()), depth+1, false); err != nil {
				return err
			}
		}
	}
	return nil
}

// propagateToCallers continues the backward slice in every caller located
// by the Sec. IV search mechanisms, mapping parameter taints through the
// call sites.
func (s *slicer) propagateToCallers(method dex.MethodRef, body *ir.Body, taintedParams []int, thisTainted bool, path []string, depth int) error {
	e := s.engine
	sites, isEntry, err := e.findCallers(method)
	if err != nil {
		return err
	}
	if isEntry {
		s.g.MarkEntry(method)
		chain := make([]dex.MethodRef, 0, len(path)+1)
		chain = append(chain, method)
		s.g.AddChain(chain)
	}

	for _, site := range sites {
		if e.opts.EnableLoopDetection {
			looped := false
			for _, p := range path {
				if p == site.Method.SootSignature() {
					e.sliceCutoffs++
					e.loops[CrossBackward]++
					looped = true
					break
				}
			}
			if looped {
				continue
			}
		}
		callerBody, err := e.prog.Body(site.Method)
		if err != nil {
			continue
		}
		fromIdx := site.UnitIndex
		if fromIdx < 0 || fromIdx >= len(callerBody.Units) {
			fromIdx = len(callerBody.Units)
		} else {
			siteUnit := s.g.AddUnit(site.Method, site.UnitIndex, callerBody.Units[site.UnitIndex])
			s.g.AddEdge(ssg.CallEdge, siteUnit, method)
			// Advanced-search chains contribute their intermediate links
			// too (paper: use the maintained call chain, not one site).
			for _, link := range site.Chain[1:] {
				linkBody, err := e.prog.Body(link.Method)
				if err != nil || link.UnitIndex >= len(linkBody.Units) {
					continue
				}
				linkUnit := s.g.AddUnit(link.Method, link.UnitIndex, linkBody.Units[link.UnitIndex])
				s.g.AddEdge(ssg.CallEdge, linkUnit, method)
			}
		}

		callerTaints := s.g.Taints(site.Method)
		for _, pi := range taintedParams {
			if site.ArgLocals != nil && pi < len(site.ArgLocals) && site.ArgLocals[pi] != nil {
				callerTaints.AddLocal(site.ArgLocals[pi].Name)
			}
		}
		if thisTainted && site.BaseLocal != nil {
			callerTaints.AddLocal(site.BaseLocal.Name)
			// this-field taints travel to the receiver object.
			for _, f := range taintedFieldsOf(s.g.Taints(method), thisLocalName(body)) {
				callerTaints.AddField(site.BaseLocal.Name, f)
			}
		}
		if err := s.slice(site.Method, fromIdx, append(path, method.SootSignature()), depth+1, false); err != nil {
			return err
		}
	}
	return nil
}

// addOffPathClinits adds the <clinit> methods of classes owning still
// unresolved tainted static fields into the SSG's static track
// (paper Sec. V-A "adding off-path static initializers into SSG on
// demand").
func (s *slicer) addOffPathClinits() error {
	e := s.engine
	for _, fieldSig := range s.g.GlobalTaint.StaticFields() {
		ref, err := parseFieldSig(fieldSig)
		if err != nil {
			continue
		}
		cls := e.lookupClass(ref.Class)
		if cls == nil {
			continue
		}
		clinit := cls.FindMethod("<clinit>")
		if clinit == nil {
			continue
		}
		key := internKey("clinit", true, clinit.Ref.SootSignature())
		if e.opts.PerAppSSG {
			// The clinit's static-track subgraph is shared across sinks;
			// re-slice only when the taint state changed since it was
			// last recorded (a later sink re-tainted a field the earlier
			// slice consumed).
			if s.internHit(key, s.g.Taints(clinit.Ref)) {
				continue
			}
		}
		cutoffs := e.sliceCutoffs
		if err := s.slice(clinit.Ref, -1, nil, 0, true); err != nil {
			return err
		}
		if e.opts.PerAppSSG {
			s.internStore(key, s.g.Taints(clinit.Ref), cutoffs)
		}
	}
	return nil
}

// taintedFieldsOf lists the FieldRefs tainted on the given object local.
func taintedFieldsOf(ts *ssg.TaintSet, obj string) []dex.FieldRef {
	var out []dex.FieldRef
	for _, sig := range ts.FieldSigsOf(obj) {
		if f, err := parseFieldSig(sig); err == nil {
			out = append(out, f)
		}
	}
	return out
}

// localsOfUnit lists every local a statement references, on either side.
func localsOfUnit(u ir.Unit) []*ir.Local {
	switch st := u.(type) {
	case *ir.AssignStmt:
		return append(ir.LocalsOf(st.LHS), ir.LocalsOf(st.RHS)...)
	case *ir.InvokeStmt:
		return ir.LocalsOf(st.Invoke)
	case *ir.ReturnStmt:
		if st.Val != nil {
			return ir.LocalsOf(st.Val)
		}
	case *ir.ThrowStmt:
		return ir.LocalsOf(st.Val)
	}
	return nil
}

// thisLocalName finds the local bound to @this in a body ("r0" by
// translation convention, but resolved robustly).
func thisLocalName(body *ir.Body) string {
	for _, u := range body.Units {
		if id, ok := u.(*ir.IdentityStmt); ok {
			if _, isThis := id.RHS.(*ir.ThisRef); isThis {
				return id.LHS.Name
			}
		}
	}
	return "r0"
}

// parseFieldSig parses a Soot field signature "<cls: type name>".
func parseFieldSig(sig string) (dex.FieldRef, error) {
	return dex.ParseSootFieldSignature(sig)
}
