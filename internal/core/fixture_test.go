package core

import (
	"testing"

	"backdroid/internal/testapps"
)

// cls qualifies a fixture class name.
func cls(name string) string { return testapps.Cls(name) }

// analyzeFixture runs the engine over the shared fixture app.
func analyzeFixture(t *testing.T, opts Options) *Report {
	t.Helper()
	app, err := testapps.Fixture()
	if err != nil {
		t.Fatalf("Fixture: %v", err)
	}
	e, err := New(app, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	report, err := e.Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return report
}

// sinkByMethod finds the report for the sink contained in the given class
// and method name.
func sinkByMethod(t *testing.T, r *Report, class, method string) *SinkReport {
	t.Helper()
	for _, s := range r.Sinks {
		if s.Call.Caller.Class == class && s.Call.Caller.Name == method {
			return s
		}
	}
	t.Fatalf("no sink found in %s.%s; sinks: %v", class, method, sinkNames(r))
	return nil
}

func sinkNames(r *Report) []string {
	var out []string
	for _, s := range r.Sinks {
		out = append(out, s.Call.Caller.SootSignature())
	}
	return out
}
