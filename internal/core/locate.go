package core

import (
	"sort"
	"strconv"

	"backdroid/internal/android"
	"backdroid/internal/bcsearch"
	"backdroid/internal/dex"
	"backdroid/internal/ir"
)

// locateSinkCalls performs the initial bytecode search that seeds the whole
// analysis (paper Sec. III step 2: "immediately locates the target sink API
// calls by performing a text search of bytecode plaintext").
func (e *Engine) locateSinkCalls() ([]SinkCall, error) {
	var calls []SinkCall
	seen := make(map[string]bool)

	record := func(sink android.Sink, hits []bcsearch.Hit, calleeClass string) error {
		for _, hit := range hits {
			if hit.Method.Name == "" {
				continue
			}
			body, err := e.prog.Body(hit.Method)
			if err != nil {
				// Bytecode-to-IR transformation failure for this method:
				// skip the site, as the prototype does.
				continue
			}
			for _, idx := range e.findCallSites(body, sink.Method.WithClass(calleeClass)) {
				key := hit.Method.SootSignature() + "#" + strconv.Itoa(idx)
				if seen[key] {
					continue
				}
				seen[key] = true
				calls = append(calls, SinkCall{
					Sink:      sink,
					Caller:    hit.Method,
					UnitIndex: idx,
					Line:      hit.Line,
				})
			}
		}
		return nil
	}

	for _, sink := range e.opts.Sinks {
		hits, err := e.search.FindInvocations(sink.Method)
		if err != nil {
			return nil, err
		}
		if err := record(sink, hits, sink.Method.Class); err != nil {
			return nil, err
		}

		if !e.opts.ResolveSinkSubclasses {
			continue
		}
		// Class-hierarchy-aware initial search: app classes extending the
		// sink's system class re-expose the sink under their own
		// signature (the paper's two false negatives; Sec. VI-C).
		for _, sub := range e.hier.Subclasses(sink.Method.Class) {
			subHits, err := e.search.FindInvocations(sink.Method.WithClass(sub))
			if err != nil {
				return nil, err
			}
			if err := record(sink, subHits, sub); err != nil {
				return nil, err
			}
		}
	}

	// Deterministic processing order: dump line, then unit index.
	sort.Slice(calls, func(i, j int) bool {
		if calls[i].Line != calls[j].Line {
			return calls[i].Line < calls[j].Line
		}
		return calls[i].UnitIndex < calls[j].UnitIndex
	})
	return calls, nil
}

// findCallSites returns the unit indexes in the body whose invoke matches
// the callee reference exactly.
func (e *Engine) findCallSites(body *ir.Body, callee dex.MethodRef) []int {
	want := callee.SootSignature()
	var out []int
	for i, u := range body.Units {
		if inv := ir.InvokeOf(u); inv != nil && inv.Method.SootSignature() == want {
			out = append(out, i)
		}
	}
	return out
}
