package core

import (
	"strconv"

	"backdroid/internal/android"
	"backdroid/internal/bcsearch"
	"backdroid/internal/dex"
	"backdroid/internal/ir"
)

// chainLink is one step of an advanced-search call chain (paper Sec. IV-B:
// "we need to maintain and return a call chain").
type chainLink struct {
	Method    dex.MethodRef
	UnitIndex int
}

// callerSite is one located caller of a callee method: the caller method,
// the call-site unit, and how the callee's this/params map into the
// caller's locals so backward taint can continue.
type callerSite struct {
	Method    dex.MethodRef
	UnitIndex int

	// BaseLocal is the receiver local at the call site (basic search) or
	// the constructed object local at the constructor site (advanced
	// search). Nil for static callees and ICC/clinit sites.
	BaseLocal *ir.Local
	// ArgLocals are the caller locals passed as the callee's declared
	// parameters; nil when parameter mapping is unavailable (advanced
	// search, ICC, clinit).
	ArgLocals []*ir.Local

	// Chain is the advanced-search call chain from the constructor site
	// to the ending method; empty for basic-search sites.
	Chain []chainLink

	// ViaICC marks sites found by the two-time ICC search.
	ViaICC bool
	// ViaClassUse marks pseudo-callers from the recursive <clinit>
	// class-use search (reachability only).
	ViaClassUse bool
}

// findCallers locates the callers of the callee method (paper Sec. IV),
// dispatching to the appropriate search mechanism. isEntry reports that
// the method is itself a valid entry point (a lifecycle handler of a
// manifest-registered component), in which case the Android framework is
// the caller.
func (e *Engine) findCallers(callee dex.MethodRef) (sites []callerSite, isEntry bool, err error) {
	sig := callee.SootSignature()
	if cached, ok := e.callerCache[sig]; ok {
		e.rec.merge(e.callerFrag[sig])
		return cached, e.entryCache[sig], nil
	}

	frame := e.rec.push()
	// The callee class itself steers the search dispatch (component
	// kind, registration, direct vs. virtual) before any body lookup.
	e.rec.class(callee.Class)
	sites, isEntry, err = e.findCallersUncached(callee)
	e.rec.pop()
	if err != nil {
		return nil, false, err
	}
	e.callerCache[sig] = sites
	e.entryCache[sig] = isEntry
	if frame != nil {
		e.callerFrag[sig] = frame
	}
	return sites, isEntry, nil
}

func (e *Engine) findCallersUncached(callee dex.MethodRef) ([]callerSite, bool, error) {
	// Special search: static initializers (Sec. IV-C). <clinit> is never
	// invoked by bytecode; its "callers" are the methods using the class,
	// searched recursively through the normal reachability machinery.
	if callee.IsStaticInitializer() {
		sites, err := e.classUseCallers(callee.Class)
		return sites, false, err
	}

	var sites []callerSite
	isEntry := false

	// Special search: Android lifecycle handlers (Sec. IV-E).
	if kind, isComp := e.hier.ComponentKind(callee.Class); isComp &&
		android.IsLifecycleMethod(kind, callee.Name) {
		if e.app.Manifest.IsRegistered(callee.Class) {
			isEntry = true
			// Also connect ICC senders (Sec. IV-D) so cross-component
			// chains appear in the SSG.
			for _, entryName := range android.ICCEntryMethods(kind) {
				if entryName != callee.Name {
					continue
				}
				iccSites, err := e.iccSearch(callee.Class, kind)
				if err != nil {
					return nil, false, err
				}
				sites = append(sites, iccSites...)
			}
		}
		// Unregistered components are never started by the framework or
		// by ICC: no callers. This is exactly where Amandroid's
		// all-components entry assumption produces false positives.
		return sites, isEntry, nil
	}

	m := e.lookupMethod(callee)
	if m == nil {
		return nil, false, nil // framework or missing method: nothing to search
	}

	// Basic signature based search (Sec. IV-A) covers direct methods
	// outright and is always attempted for virtual ones too.
	variants := []dex.MethodRef{callee}
	if !m.IsDirect() {
		// Child classes that do not override the method may receive the
		// call under their own signature (Sec. IV-A "searching over a
		// child class").
		for _, child := range e.hier.Subclasses(callee.Class) {
			if !e.hier.Overrides(child, callee.Name, callee.Params) {
				variants = append(variants, callee.WithClass(child))
			}
		}
	}
	for _, variant := range variants {
		hits, err := e.search.FindInvocations(variant)
		if err != nil {
			return nil, false, err
		}
		resolved, err := e.resolveBasicSites(hits, variant)
		if err != nil {
			return nil, false, err
		}
		sites = append(sites, resolved...)
	}

	if m.IsDirect() {
		return sites, false, nil
	}

	// Advanced search (Sec. IV-B): needed when callers may hold the
	// object under a supertype — super classes, interfaces, callbacks and
	// asynchronous flows. The indicator type guides the ending-method
	// detection.
	var indicators []string
	if owner, _, found := e.hier.SuperDeclaring(callee.Class, callee.Name, callee.Params); found {
		indicators = append(indicators, owner)
	}
	if base, ok := e.hier.AsyncCallbackBase(callee.Class); ok {
		for _, cb := range android.AsyncCallbackMethods(base) {
			if cb == callee.Name {
				indicators = append(indicators, base)
				break
			}
		}
	}
	for _, indicator := range indicators {
		adv, err := e.advancedSearch(callee, indicator)
		if err != nil {
			return nil, false, err
		}
		sites = append(sites, adv...)
	}

	return dedupSites(sites), false, nil
}

// resolveBasicSites converts search hits into caller sites with precise
// call-site units and argument locals (paper Fig. 3 steps 3-4: translate
// format, locate the method body via the program analysis, then forward
// find the call site).
func (e *Engine) resolveBasicSites(hits []bcsearch.Hit, callee dex.MethodRef) ([]callerSite, error) {
	var out []callerSite
	for _, hit := range hits {
		if hit.Method.Name == "" {
			continue
		}
		body, err := e.prog.Body(hit.Method)
		if err != nil {
			continue // transformation failure: skip this caller
		}
		if err := e.meter.Charge(int64(len(body.Units))); err != nil {
			return nil, err
		}
		for _, idx := range e.findCallSites(body, callee) {
			inv := ir.InvokeOf(body.Units[idx])
			site := callerSite{Method: hit.Method, UnitIndex: idx, BaseLocal: inv.Base}
			for _, a := range inv.Args {
				if l, ok := a.(*ir.Local); ok {
					site.ArgLocals = append(site.ArgLocals, l)
				} else {
					site.ArgLocals = append(site.ArgLocals, nil)
				}
			}
			out = append(out, site)
		}
	}
	return out, nil
}

// classUseCallers implements the recursive <clinit> search primitive:
// every method referencing the class is a pseudo-caller, so reachability
// recursion terminates at entry components exactly as Sec. IV-C describes.
func (e *Engine) classUseCallers(class string) ([]callerSite, error) {
	hits, err := e.search.FindClassUses(class)
	if err != nil {
		return nil, err
	}
	var out []callerSite
	for _, m := range bcsearch.CallersOf(hits) {
		if m.Class == class {
			continue // uses inside the class itself do not load it from outside
		}
		out = append(out, callerSite{Method: m, UnitIndex: -1, ViaClassUse: true})
	}
	return out, nil
}

func dedupSites(sites []callerSite) []callerSite {
	seen := make(map[string]bool, len(sites))
	var out []callerSite
	for _, s := range sites {
		key := s.Method.SootSignature() + "#" + strconv.Itoa(s.UnitIndex)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, s)
	}
	return out
}
