// Sink-chunk partitioning: the resumable per-sink entry point of the
// fleet's work stealing (DESIGN.md Sec. 13). A job's located sink call
// sites form a canonical list — sorted by (dump line, unit index), the
// order locateSinkCalls always produces — and a ChunkRange restricts one
// engine run to a half-open window of that list. Each chunk runs against
// the same warm bundle as the single-pass run (no re-disassembly; the
// chunk re-pays only the cheap bundle load and sink location), emits a
// partial Report covering exactly its window, and MergeReports unions
// the parts back into a report whose canonical encoding is bitwise
// identical to the single-pass run for every chunking.
//
// The merge is deterministic by construction: parts are ordered by their
// first sink's canonical position, sinks are deduplicated by call-site
// identity (overlap tolerance — a victim that finished a sink just as it
// was stolen contributes the same SinkReport bytes the thief recomputes),
// and Stats are summed field-wise, so the merged report accounts for all
// charged work across the chunks.
package core

import (
	"sort"
	"strconv"

	"backdroid/internal/simtime"
)

// ChunkRange restricts an engine run to the canonical positions
// [From, To) of the app's located sink-call list. Out-of-range bounds are
// clamped. A run with a ChunkRange never uses Options.DeltaFrom: a
// partial report must not depend on a delta base the other chunks lack.
type ChunkRange struct {
	From int
	To   int
}

// sinkIdentity keys one located sink call site — the same identity
// locateSinkCalls deduplicates by, extended with the sink method so two
// sink APIs matched at one call site stay distinct.
func sinkIdentity(c SinkCall) string {
	return c.Caller.SootSignature() + "#" + strconv.Itoa(c.UnitIndex) + "@" + c.Sink.Method.SootSignature()
}

// MergeReports unions per-chunk partial reports into the canonical
// single-pass report. Parts may arrive in any order and may overlap (a
// sink completed by both the victim and a thief dedups to one entry);
// nil parts are skipped. App and Registered come from the first non-nil
// part (every chunk of one job runs the same app), TimedOut ORs, Sinks
// concatenate in canonical order, and Stats sum — WorkUnits is the total
// charged across every chunk, with SimMinutes recomputed from it.
func MergeReports(parts ...*Report) *Report {
	ordered := make([]*Report, 0, len(parts))
	for _, p := range parts {
		if p != nil {
			ordered = append(ordered, p)
		}
	}
	// Chunks are windows of one sorted list, so ordering parts by their
	// first sink's canonical position and concatenating reproduces the
	// single-pass sink order exactly — no re-sort of individual sinks,
	// and ties within a part keep the order the engine emitted.
	sort.SliceStable(ordered, func(i, j int) bool {
		a, b := ordered[i].Sinks, ordered[j].Sinks
		if len(a) == 0 || len(b) == 0 {
			return len(a) == 0 && len(b) != 0
		}
		if a[0].Call.Line != b[0].Call.Line {
			return a[0].Call.Line < b[0].Call.Line
		}
		return a[0].Call.UnitIndex < b[0].Call.UnitIndex
	})

	merged := &Report{}
	seen := make(map[string]bool)
	first := true
	for _, p := range ordered {
		if first {
			merged.App = p.App
			merged.Registered = append([]string(nil), p.Registered...)
			first = false
		}
		merged.TimedOut = merged.TimedOut || p.TimedOut
		for _, s := range p.Sinks {
			k := sinkIdentity(s.Call)
			if seen[k] {
				continue
			}
			seen[k] = true
			merged.Sinks = append(merged.Sinks, s)
		}
		addStats(&merged.Stats, &p.Stats)
	}
	merged.Stats.SimMinutes = simtime.UnitsToMinutes(merged.Stats.WorkUnits)
	return merged
}

// addStats folds one chunk's Stats into the merge: counters sum, the
// loop map unions by summing, and the two configuration-shaped fields
// (shard count, parallel-lookup gate) take the maximum — every chunk of
// one job runs the same configuration, so max is the shared value.
func addStats(dst, src *Stats) {
	dst.Search.Commands += src.Search.Commands
	dst.Search.CacheHits += src.Search.CacheHits
	dst.Search.LinesScanned += src.Search.LinesScanned
	dst.Search.PostingsScanned += src.Search.PostingsScanned
	dst.Search.IndexBuilds += src.Search.IndexBuilds
	dst.Search.IndexLines += src.Search.IndexLines
	dst.Search.MergedPostings += src.Search.MergedPostings
	dst.Search.IndexCacheHits += src.Search.IndexCacheHits
	dst.Search.IndexCacheMisses += src.Search.IndexCacheMisses
	dst.Search.ParallelLookups += src.Search.ParallelLookups
	if src.Search.ShardCount > dst.Search.ShardCount {
		dst.Search.ShardCount = src.Search.ShardCount
	}
	if src.Search.ParallelLookupMin > dst.Search.ParallelLookupMin {
		dst.Search.ParallelLookupMin = src.Search.ParallelLookupMin
	}

	dst.SinkCallsTotal += src.SinkCallsTotal
	dst.SinkCallsCached += src.SinkCallsCached
	if len(src.Loops) > 0 && dst.Loops == nil {
		dst.Loops = make(map[LoopKind]int, len(src.Loops))
	}
	for k, v := range src.Loops {
		dst.Loops[k] += v
	}
	dst.MethodsAnalyzed += src.MethodsAnalyzed
	dst.WorkUnits += src.WorkUnits
	dst.WallTime += src.WallTime
	dst.DumpCacheHits += src.DumpCacheHits
	dst.DumpCacheMisses += src.DumpCacheMisses
	dst.DumpCacheUnits += src.DumpCacheUnits
	dst.DumpLinesDisassembled += src.DumpLinesDisassembled
	dst.BundleStoreHits += src.BundleStoreHits
	dst.BundleStoreMisses += src.BundleStoreMisses
	dst.ForwardMemoHits += src.ForwardMemoHits
	dst.SettledLookups += src.SettledLookups
	dst.CancelPolls += src.CancelPolls
	dst.ShardsUnchanged += src.ShardsUnchanged
	dst.ShardsChanged += src.ShardsChanged
	dst.SinksReused += src.SinksReused
	dst.SinksRerun += src.SinksRerun
	dst.DeltaReusedLines += src.DeltaReusedLines
}
