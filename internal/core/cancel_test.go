package core

import (
	"testing"

	"backdroid/internal/simtime"
	"backdroid/internal/testapps"
)

// TestCancelAbortsAnalysis pins the engine half of in-flight
// cancellation: with the poll already true, Analyze (or New, if the
// cancel lands during preprocessing) returns simtime.ErrCanceled — never
// a TimedOut report — and the meter stops within one checkpoint of the
// work performed so far.
func TestCancelAbortsAnalysis(t *testing.T) {
	app, err := testapps.Fixture()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Cancel = func() bool { return true }
	e, err := New(app, opts)
	if err == nil {
		_, err = e.Analyze()
	}
	if err != simtime.ErrCanceled {
		t.Fatalf("pre-canceled analysis = %v, want simtime.ErrCanceled", err)
	}
}

// TestCancelMidAnalysisStopsAtCheckpoint cancels after a fixed amount of
// charged work and verifies the abort lands within one checkpoint of it,
// with the pre-cancel work still charged (cancellation charges only work
// actually done).
func TestCancelMidAnalysisStopsAtCheckpoint(t *testing.T) {
	app, err := testapps.Fixture()
	if err != nil {
		t.Fatal(err)
	}
	// First, measure the full cost of an uncanceled run.
	full := analyzeFixture(t, DefaultOptions())
	cutoff := full.Stats.WorkUnits / 2
	if cutoff == 0 {
		t.Fatalf("fixture analysis charged %d units, too small to split", full.Stats.WorkUnits)
	}

	opts := DefaultOptions()
	var meter *simtime.Meter
	opts.Cancel = func() bool { return meter != nil && meter.Units() >= cutoff }
	e, err := New(app, opts)
	if err == simtime.ErrCanceled {
		t.Fatalf("cancel poll fired before the engine existed")
	}
	if err != nil {
		t.Fatal(err)
	}
	meter = e.Meter()
	if _, err := e.Analyze(); err != simtime.ErrCanceled {
		t.Fatalf("Analyze = %v, want simtime.ErrCanceled", err)
	}
	units := e.Meter().Units()
	if units < cutoff {
		t.Fatalf("canceled at %d units, before the cutoff %d", units, cutoff)
	}
	if over := units - cutoff; over > 2*simtime.CancelCheckpointUnits {
		t.Fatalf("engine ran %d units past the cancel point (checkpoint is %d)",
			over, simtime.CancelCheckpointUnits)
	}
	if polls := e.Meter().CancelPolls(); polls == 0 {
		t.Fatal("no cancellation polls recorded")
	}
}

// TestCancelFalsePollChangesNothing pins the zero-cost contract: a cancel
// poll that never fires leaves the report and the charged work identical
// to a run without one.
func TestCancelFalsePollChangesNothing(t *testing.T) {
	plain := analyzeFixture(t, DefaultOptions())
	opts := DefaultOptions()
	opts.Cancel = func() bool { return false }
	polled := analyzeFixture(t, opts)
	if polled.Stats.WorkUnits != plain.Stats.WorkUnits {
		t.Fatalf("cancel poll changed charged work: %d vs %d",
			polled.Stats.WorkUnits, plain.Stats.WorkUnits)
	}
	if len(polled.Sinks) != len(plain.Sinks) {
		t.Fatalf("cancel poll changed the report: %d vs %d sinks",
			len(polled.Sinks), len(plain.Sinks))
	}
	if polled.Stats.CancelPolls == 0 {
		t.Fatal("stats must surface the checkpoint polls")
	}
	if plain.Stats.CancelPolls != 0 {
		t.Fatal("a run without a poll must report zero checkpoint polls")
	}
}
