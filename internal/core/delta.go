package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"backdroid/internal/bcsearch"
	"backdroid/internal/dex"
	"backdroid/internal/dexdump"
	"backdroid/internal/manifest"
)

// Delta analysis (DESIGN.md Sec. 10): when the engine is given the prior
// version's bundle and report, it diffs the two shard manifests at class
// granularity and re-uses every settled sink verdict whose recorded
// footprint provably cannot observe the update. Everything else — and
// every sink the guards cannot clear — re-runs through the normal
// pipeline. The preprocessing substrate still does the full real work
// (the dump, index and report of a delta run are bitwise identical to a
// cold run's by construction); only the charged cost follows the delta
// model.

// DeltaBase describes the prior version of the app for incremental
// re-analysis: its fingerprint, its encoded .bdx bundle (the shard
// manifest inside is what the diff consumes) and its full report, whose
// per-sink footprints drive the reuse decision. Any inconsistency —
// missing report, timed-out base run, undecodable manifest — silently
// disables the delta path and the engine performs a full analysis.
type DeltaBase struct {
	Fingerprint uint64
	Bundle      []byte
	Report      *Report
}

// Footprint records everything a sink's analysis observed of the app:
// the classes whose bytecode or metadata any step consulted, and the
// bytecode-search commands it issued (hits and misses alike). A sink
// verdict may be carried over to the next version only if no footprint
// class changed (or is hierarchy-related to a change) and no recorded
// command gains a hit in the changed spans — see planDeltaReuse for the
// full guard chain and DESIGN.md Sec. 10 for the soundness argument.
type Footprint struct {
	Classes  []string           // sorted dotted class names
	Commands []bcsearch.Command // deduplicated by Key, sorted by Key
}

// fpFrame is one footprint collection frame.
type fpFrame struct {
	classes map[string]bool
	cmds    map[string]bcsearch.Command
}

// footprint freezes the frame into its exported form.
func (f *fpFrame) footprint() *Footprint {
	fp := &Footprint{Classes: make([]string, 0, len(f.classes))}
	for c := range f.classes {
		fp.Classes = append(fp.Classes, c)
	}
	sort.Strings(fp.Classes)
	keys := make([]string, 0, len(f.cmds))
	for k := range f.cmds {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fp.Commands = make([]bcsearch.Command, 0, len(keys))
	for _, k := range keys {
		fp.Commands = append(fp.Commands, f.cmds[k])
	}
	return fp
}

// fpRecorder is a stack of active footprint frames. Records go to every
// active frame, so a cache-entry fragment collected inside a sink's
// analysis lands in both the fragment and the sink's own footprint. All
// methods are safe on a nil recorder (recording disabled) and outside
// any frame (e.g. the locate phase, which re-runs on every delta).
type fpRecorder struct {
	frames []*fpFrame
}

func (r *fpRecorder) push() *fpFrame {
	if r == nil {
		return nil
	}
	f := &fpFrame{classes: make(map[string]bool), cmds: make(map[string]bcsearch.Command)}
	r.frames = append(r.frames, f)
	return f
}

func (r *fpRecorder) pop() {
	if r == nil || len(r.frames) == 0 {
		return
	}
	r.frames = r.frames[:len(r.frames)-1]
}

func (r *fpRecorder) class(name string) {
	if r == nil || name == "" {
		return
	}
	for _, f := range r.frames {
		f.classes[name] = true
	}
}

func (r *fpRecorder) command(c bcsearch.Command) {
	if r == nil {
		return
	}
	key := c.Key()
	for _, f := range r.frames {
		f.cmds[key] = c
	}
}

// merge replays a stored fragment into every active frame — the
// cache-hit counterpart of recording the computation itself.
func (r *fpRecorder) merge(f *fpFrame) {
	if r == nil || f == nil || len(r.frames) == 0 {
		return
	}
	for c := range f.classes {
		r.class(c)
	}
	for _, cmd := range f.cmds {
		r.command(cmd)
	}
}

// lookupMethod resolves a method against the merged dex, recording the
// declaring class in the active footprint frames first: whether the
// method exists (contained vs. framework/missing) steers slicing and
// caller search, so the answer must be pinned to the class's content.
func (e *Engine) lookupMethod(ref dex.MethodRef) *dex.Method {
	e.rec.class(ref.Class)
	return e.dexf.Method(ref)
}

// lookupClass resolves a class against the merged dex, recording it.
func (e *Engine) lookupClass(name string) *dex.Class {
	e.rec.class(name)
	return e.dexf.Class(name)
}

// classOfLine maps a dump line to its containing class span.
func classOfLine(t *dexdump.Text, line int) (string, bool) {
	spans := t.ClassSpans()
	i := sort.Search(len(spans), func(i int) bool { return spans[i].End > line })
	if i < len(spans) && spans[i].Start <= line && line < spans[i].End {
		return spans[i].Name, true
	}
	return "", false
}

// registeredComponents renders the manifest's registration surface in a
// stable, comparable form: one line per component carrying everything
// the lifecycle and ICC searches consult (kind, class, exported flag,
// filter actions). Recorded on every report so a later delta run can
// verify the registration of unchanged classes did not move.
func registeredComponents(m *manifest.Manifest) []string {
	out := make([]string, 0, len(m.Components))
	for _, c := range m.Components {
		var actions []string
		for _, f := range c.Filters {
			actions = append(actions, f.Actions...)
		}
		out = append(out, fmt.Sprintf("%s %s exported=%t actions=%s",
			c.Kind, c.Name, c.Exported, strings.Join(actions, ",")))
	}
	sort.Strings(out)
	return out
}

// componentClassOf extracts the class name back out of a
// registeredComponents entry.
func componentClassOf(entry string) string {
	fields := strings.Fields(entry)
	if len(fields) < 2 {
		return ""
	}
	return fields[1]
}

// sinkKey identifies a sink call site across versions: the sink API, the
// containing method and the call-site unit index. Dump line numbers are
// deliberately excluded — unchanged classes shift lines when the update
// grows or shrinks earlier classes.
func sinkKey(call SinkCall) string {
	return call.Sink.Method.SootSignature() + "\x00" +
		call.Caller.SootSignature() + "\x00" + strconv.Itoa(call.UnitIndex)
}

// planDeltaReuse decides, for every freshly located sink call, whether
// the prior version's verdict can be carried over. Returns a map from
// call index to the ready-made report; calls absent from the map re-run
// the full pipeline. The guards, in order:
//
//  1. eligibility: a manifest diff exists and the base run is trusted;
//     any removed class disables reuse entirely (a removed class may
//     have contributed hierarchy-variant searches that cannot be
//     re-checked without the old hierarchy);
//  2. registration: the manifest registration surface of non-added
//     classes must be identical — registration steers entry-point and
//     ICC decisions without touching bytecode;
//  3. footprint intersection: no class the sink's analysis consulted may
//     be changed or added;
//  4. hierarchy: no changed/added class may be a sub- or supertype of a
//     footprint class — subclass variant sets and component-kind walks
//     reach across class boundaries;
//  5. replay: every recorded search command is probed against a partial
//     index over just the changed and added spans; a command that gains
//     a hit there invalidates every sink that recorded it (hits that
//     disappear need no probe: they lived in footprint classes, which
//     guard 3 proved unchanged).
func (e *Engine) planDeltaReuse(calls []SinkCall) (map[int]*SinkReport, error) {
	d := e.deltaDiff
	if d == nil || e.deltaOldReport == nil || len(d.Removed) > 0 {
		return nil, nil
	}

	// Guard 2: registration surface of non-added classes.
	addedSet := make(map[string]bool, len(d.Added))
	for _, c := range d.Added {
		addedSet[c] = true
	}
	oldReg := make(map[string]bool, len(e.deltaOldReport.Registered))
	for _, r := range e.deltaOldReport.Registered {
		oldReg[r] = true
	}
	for _, r := range registeredComponents(e.app.Manifest) {
		if oldReg[r] {
			delete(oldReg, r)
			continue
		}
		if !addedSet[componentClassOf(r)] {
			return nil, nil
		}
	}
	for r := range oldReg {
		if !addedSet[componentClassOf(r)] {
			return nil, nil
		}
	}

	old := make(map[string]*SinkReport, len(e.deltaOldReport.Sinks))
	for _, sr := range e.deltaOldReport.Sinks {
		if sr.Footprint != nil {
			old[sinkKey(sr.Call)] = sr
		}
	}
	if len(old) == 0 {
		return nil, nil
	}

	touched := d.Touched()
	dirty := make([]string, 0, len(d.Changed)+len(d.Added))
	dirty = append(dirty, d.Changed...)
	dirty = append(dirty, d.Added...)

	// Guards 3 and 4 per sink.
	var cand []int
	for i, call := range calls {
		osr := old[sinkKey(call)]
		if osr == nil {
			continue
		}
		ok := true
		for _, cls := range osr.Footprint.Classes {
			if touched[cls] {
				ok = false
				break
			}
		}
		if ok {
			for _, dc := range dirty {
				for _, cls := range osr.Footprint.Classes {
					if e.hier.IsSubclassOf(dc, cls) || e.hier.IsSubclassOf(cls, dc) {
						ok = false
						break
					}
				}
				if !ok {
					break
				}
			}
		}
		if ok {
			cand = append(cand, i)
		}
	}
	if len(cand) == 0 {
		return nil, nil
	}

	// Guard 5: replay the recorded commands against the dirty spans.
	// The probe index is a real (and really charged) partial build over
	// just the changed and added class spans; each command then costs a
	// hash probe, charged at the map-probe rate of the shard diff.
	dirtyLines := e.deltaNewMan.LinesOf(touched)
	if err := e.meter.ChargeIndexBuild(dirtyLines); err != nil {
		return nil, err
	}
	pidx := dexdump.BuildPartialIndex(e.dump, touched)
	cmds := make(map[string]bcsearch.Command)
	for _, i := range cand {
		for _, c := range old[sinkKey(calls[i])].Footprint.Commands {
			cmds[c.Key()] = c
		}
	}
	if err := e.meter.ChargeShardDiff(len(cmds)); err != nil {
		return nil, err
	}
	lines := e.dump.Lines()
	hit := make(map[string]bool)
	rawCharged := false
	for key, c := range cmds {
		if c.Kind == bcsearch.CmdRaw {
			// Raw substring commands have no postings; scan the dirty
			// spans linearly, charged once at the line rate.
			if !rawCharged {
				if err := e.meter.ChargeLines(dirtyLines); err != nil {
					return nil, err
				}
				rawCharged = true
			}
			for _, dc := range dirty {
				sp, ok := e.dump.SpanOf(dc)
				if !ok {
					continue
				}
				for n := sp.Start; n < sp.End && !hit[key]; n++ {
					if c.Match(lines[n]) {
						hit[key] = true
					}
				}
				if hit[key] {
					break
				}
			}
			continue
		}
		for _, n := range bcsearch.LookupCandidates(pidx, c) {
			if int(n) < len(lines) && c.Match(lines[n]) {
				hit[key] = true
				break
			}
		}
	}

	reuse := make(map[int]*SinkReport)
	union := make(map[string]bool)
	for _, i := range cand {
		osr := old[sinkKey(calls[i])]
		invalid := false
		for _, c := range osr.Footprint.Commands {
			if hit[c.Key()] {
				invalid = true
				break
			}
		}
		if invalid {
			continue
		}
		reuse[i] = reuseSinkReport(calls[i], osr)
		for _, cls := range osr.Footprint.Classes {
			union[cls] = true
		}
	}
	if len(reuse) == 0 {
		return nil, nil
	}
	// Carrying settled verdicts over is one verification pass across the
	// union of their footprints, charged at the cheap delta-reuse rate.
	reused := e.deltaNewMan.LinesOf(union)
	if err := e.meter.ChargeDeltaReuse(reused); err != nil {
		return nil, err
	}
	e.deltaReusedLines = int64(reused)
	return reuse, nil
}

// reuseSinkReport carries a settled verdict over to the new version: the
// freshly located call site (line numbers may have shifted) with the old
// run's analysis outcome and footprint.
func reuseSinkReport(call SinkCall, old *SinkReport) *SinkReport {
	return &SinkReport{
		Call:      call,
		Reachable: old.Reachable,
		Cached:    old.Cached,
		Entries:   append([]dex.MethodRef(nil), old.Entries...),
		Values:    append([]string(nil), old.Values...),
		Insecure:  old.Insecure,
		SSG:       old.SSG,
		Reused:    true,
		Footprint: old.Footprint,
	}
}
