package core

import (
	"backdroid/internal/dex"
)

// reachable determines whether the method can be reached from a valid app
// entry point by walking callers backward via bytecode search. Results are
// memoized per method — this is the "sink API call caching" of Sec. IV-F:
// several sink calls often share one (un)reachable containing method.
//
// Negative results obtained while a cycle was cut on the path are not
// cached, because the cut may hide a path through the in-progress method.
func (e *Engine) reachable(method dex.MethodRef, path []string, depth int) (bool, []dex.MethodRef, error) {
	r, entries, _, err := e.reachableInner(method, path, depth)
	return r, entries, err
}

func (e *Engine) reachableInner(method dex.MethodRef, path []string, depth int) (reachable bool, entries []dex.MethodRef, pure bool, err error) {
	sig := method.SootSignature()
	if st, ok := e.reachCache[sig]; ok {
		e.rec.merge(st.frag)
		return st.reachable, st.entries, true, nil
	}
	for _, p := range path {
		if p == sig {
			// CrossBackward loop (Sec. IV-F): the backward method search
			// returned to a method already on the current path.
			if e.opts.EnableLoopDetection {
				e.loops[CrossBackward]++
			}
			return false, nil, false, nil
		}
	}
	if depth > e.opts.MaxDepth {
		return false, nil, false, nil
	}
	e.analyzed[sig] = true
	// Collect this computation's footprint fragment so cache hits can
	// replay it into later sinks' footprints.
	frame := e.rec.push()
	defer e.rec.pop()

	sites, isEntry, err := e.findCallers(method)
	if err != nil {
		return false, nil, false, err
	}
	pure = true
	seen := make(map[string]bool)
	if isEntry {
		entries = append(entries, method)
		seen[sig] = true
	}
	childPath := append(path, sig)
	for _, site := range sites {
		r, subEntries, subPure, err := e.reachableInner(site.Method, childPath, depth+1)
		if err != nil {
			return false, nil, false, err
		}
		pure = pure && subPure
		if !r {
			continue
		}
		for _, en := range subEntries {
			key := en.SootSignature()
			if !seen[key] {
				seen[key] = true
				entries = append(entries, en)
			}
		}
	}
	reachable = len(entries) > 0
	if reachable || pure {
		e.reachCache[sig] = &reachState{reachable: reachable, entries: entries, frag: frame}
	}
	return reachable, entries, pure, nil
}
