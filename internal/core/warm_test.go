package core

import (
	"os"
	"testing"

	"backdroid/internal/android"
	"backdroid/internal/apk"
	"backdroid/internal/appgen"
	"backdroid/internal/bcsearch"
	"backdroid/internal/dexdump"
	"backdroid/internal/testapps"
)

// warmOptions configures an engine with the persistent bundle cache.
func warmOptions(dir string) Options {
	opts := DefaultOptions()
	opts.SearchBackend = bcsearch.BackendSharded
	opts.IndexCacheDir = dir
	return opts
}

// TestWarmEngineRunZeroDisassembly pins the tentpole acceptance criterion:
// after one cold analysis writes the bundle, a warm engine run performs
// zero disassembly (no ChargeLines) and zero index builds — it charges
// only the cheap dump- and index-cache load rates — with identical
// verdicts and strictly less total simulated work.
func TestWarmEngineRunZeroDisassembly(t *testing.T) {
	app, err := testapps.Fixture()
	if err != nil {
		t.Fatal(err)
	}
	opts := warmOptions(t.TempDir())

	cold := analyzeApp(t, app, opts)
	cs := cold.Stats
	if cs.DumpCacheHits != 0 || cs.DumpCacheMisses != 1 {
		t.Fatalf("cold dump stats = hits %d / misses %d, want 0/1", cs.DumpCacheHits, cs.DumpCacheMisses)
	}
	if cs.DumpLinesDisassembled == 0 {
		t.Fatal("cold run must disassemble")
	}
	if cs.Search.IndexBuilds != 1 {
		t.Fatalf("cold run built %d indexes, want 1", cs.Search.IndexBuilds)
	}

	warm := analyzeApp(t, app, opts)
	ws := warm.Stats
	if ws.DumpCacheHits != 1 || ws.DumpCacheMisses != 0 {
		t.Errorf("warm dump stats = hits %d / misses %d, want 1/0", ws.DumpCacheHits, ws.DumpCacheMisses)
	}
	if ws.DumpLinesDisassembled != 0 {
		t.Errorf("warm run disassembled %d lines, want 0", ws.DumpLinesDisassembled)
	}
	if ws.DumpCacheUnits == 0 {
		t.Error("warm run must charge the dump-cache load")
	}
	if ws.Search.IndexBuilds != 0 || ws.Search.IndexCacheHits != 1 {
		t.Errorf("warm index stats = %+v, want a pure cache load", ws.Search)
	}
	if ws.WorkUnits >= cs.WorkUnits {
		t.Errorf("warm charged %d units, cold %d — must be strictly cheaper", ws.WorkUnits, cs.WorkUnits)
	}
	assertSameVerdicts(t, "cold vs warm", cold, warm)
}

// TestWarmEngineSelfHealsDamagedDumpSection pins the refresh path: a
// bundle whose dump section is damaged still serves its index (one
// disassembly, zero builds), and the engine rewrites the file so the next
// run is fully warm again.
func TestWarmEngineSelfHealsDamagedDumpSection(t *testing.T) {
	app, err := testapps.Fixture()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := warmOptions(dir)
	want := analyzeApp(t, app, opts)

	path := dexdump.CachePath(dir, app.Name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the trailing section: the dump probe rejects the broken
	// framing while the index section stays intact.
	data = data[:len(data)-1]
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	healing := analyzeApp(t, app, opts)
	hs := healing.Stats
	if hs.DumpCacheHits != 0 || hs.DumpCacheMisses != 1 || hs.DumpLinesDisassembled == 0 {
		t.Errorf("healing run dump stats = %+v, want a miss with real disassembly", hs)
	}
	if hs.Search.IndexBuilds != 0 || hs.Search.IndexCacheHits != 1 {
		t.Errorf("healing run index stats = %+v, want an index cache hit", hs.Search)
	}
	assertSameVerdicts(t, "healing", want, healing)

	warm := analyzeApp(t, app, opts)
	if ws := warm.Stats; ws.DumpCacheHits != 1 || ws.DumpLinesDisassembled != 0 {
		t.Errorf("bundle not self-healed: %+v", ws)
	}
	assertSameVerdicts(t, "after healing", want, warm)
}

// TestWarmEngineStaleFingerprintMisses pins the staleness contract: a
// bundle written for one app must not warm-start a different app that
// happens to share its cache path (name collision / recompiled app).
func TestWarmEngineStaleFingerprintMisses(t *testing.T) {
	app, err := testapps.Fixture()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	analyzeApp(t, app, warmOptions(dir))

	other, _, err := appgen.Generate(appgen.Spec{
		Name:   "com.other.app",
		Seed:   7,
		SizeMB: 1,
		Sinks:  []appgen.SinkSpec{{Flow: appgen.FlowDirect, Rule: android.RuleCryptoECB, Insecure: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	other.Name = app.Name // same cache path, different bytecode
	r := analyzeApp(t, other, warmOptions(dir))
	s := r.Stats
	if s.DumpCacheHits != 0 || s.DumpCacheMisses != 1 || s.DumpLinesDisassembled == 0 {
		t.Errorf("stale bundle warm-started a different app: %+v", s)
	}
	if s.Search.IndexCacheHits != 0 || s.Search.IndexBuilds != 1 {
		t.Errorf("stale index loaded for a different app: %+v", s.Search)
	}

	// And the overwritten bundle now warms the new app, not the old one.
	again := analyzeApp(t, other, warmOptions(dir))
	if as := again.Stats; as.DumpCacheHits != 1 {
		t.Errorf("rewritten bundle did not warm the new app: %+v", as)
	}
}

// TestDumpProviderSeam pins the Options.DumpProvider seam: a custom
// provider (the batch-analysis service's in-memory cache, say) replaces
// disassembly without any cache directory configured, and a miss falls
// back transparently.
func TestDumpProviderSeam(t *testing.T) {
	app, err := testapps.Fixture()
	if err != nil {
		t.Fatal(err)
	}
	merged, err := app.MergedDex()
	if err != nil {
		t.Fatal(err)
	}
	pre := dexdump.Disassemble(merged)

	opts := DefaultOptions()
	opts.DumpProvider = staticProvider{text: pre}
	r := analyzeApp(t, app, opts)
	if s := r.Stats; s.DumpCacheHits != 1 || s.DumpLinesDisassembled != 0 {
		t.Errorf("custom provider ignored: %+v", s)
	}

	opts.DumpProvider = staticProvider{} // always misses
	miss := analyzeApp(t, app, opts)
	if s := miss.Stats; s.DumpCacheHits != 0 || s.DumpCacheMisses != 1 || s.DumpLinesDisassembled == 0 {
		t.Errorf("provider miss did not fall back to disassembly: %+v", s)
	}
	assertSameVerdicts(t, "provider hit vs miss", r, miss)
}

type staticProvider struct{ text *dexdump.Text }

func (p staticProvider) ProvideDump(app *apk.App) (*dexdump.Text, bool) {
	return p.text, p.text != nil
}
