package core

import (
	"backdroid/internal/android"
	"backdroid/internal/bcsearch"
	"backdroid/internal/ir"
	"backdroid/internal/manifest"
)

// iccCallNamesFor returns the system ICC call names that start components
// of the given kind.
func iccCallNamesFor(kind manifest.ComponentKind) []string {
	switch kind {
	case manifest.Activity:
		return []string{"startActivity", "startActivityForResult"}
	case manifest.Service:
		return []string{"startService", "bindService"}
	case manifest.Receiver:
		return []string{"sendBroadcast", "sendOrderedBroadcast"}
	}
	return nil
}

// iccSearch implements the two-time ICC search of paper Sec. IV-D. ICC is
// unlike normal calls: the callee is picked at runtime from the Intent
// parameter. So BackDroid launches two searches — one for the ICC calls
// themselves, one for the Intent parameters (const-class of the target
// component for explicit ICC, const-string of a filter action for implicit
// ICC) — and merges them: an ICC call satisfying both is the caller.
func (e *Engine) iccSearch(component string, kind manifest.ComponentKind) ([]callerSite, error) {
	// First search: ICC call sites of the matching kind. The name-prefix
	// command is indexable, so on the indexed backends this pass resolves
	// from invoke-name postings instead of the raw O(lines) substring scan
	// it used to be.
	var callHits []bcsearch.Hit
	for _, name := range iccCallNamesFor(kind) {
		hits, err := e.search.FindInvocationsOfNamePrefix(name)
		if err != nil {
			return nil, err
		}
		for _, h := range hits {
			if h.Method.Name != "" {
				callHits = append(callHits, h)
			}
		}
	}
	if len(callHits) == 0 {
		return nil, nil
	}

	// Second search: Intent parameters naming this component.
	paramMethods := make(map[string]bool)
	classHits, err := e.search.FindConstClass(component)
	if err != nil {
		return nil, err
	}
	for _, h := range classHits {
		if h.Method.Name != "" {
			paramMethods[h.Method.SootSignature()] = true
		}
	}
	if comp := e.app.Manifest.Component(component); comp != nil {
		for _, f := range comp.Filters {
			for _, action := range f.Actions {
				actionHits, err := e.search.FindConstString(action)
				if err != nil {
					return nil, err
				}
				for _, h := range actionHits {
					if h.Method.Name != "" {
						paramMethods[h.Method.SootSignature()] = true
					}
				}
			}
		}
	}

	// Merge: keep ICC calls whose containing method also sets a matching
	// Intent parameter.
	var sites []callerSite
	seen := make(map[string]bool)
	for _, h := range callHits {
		sig := h.Method.SootSignature()
		if !paramMethods[sig] || seen[sig] {
			continue
		}
		seen[sig] = true
		body, err := e.prog.Body(h.Method)
		if err != nil {
			continue
		}
		idx := e.findICCCallUnit(body, kind)
		sites = append(sites, callerSite{Method: h.Method, UnitIndex: idx, ViaICC: true})
	}
	return sites, nil
}

// findICCCallUnit locates the ICC invoke unit in a body; -1 when absent
// (should not happen for merged hits).
func (e *Engine) findICCCallUnit(body *ir.Body, kind manifest.ComponentKind) int {
	for i, u := range body.Units {
		inv := ir.InvokeOf(u)
		if inv == nil {
			continue
		}
		if k, ok := android.ICCTargetKind(inv.Method); ok && k == kind {
			return i
		}
	}
	return -1
}
