package core

import (
	"testing"

	"backdroid/internal/android"
	"backdroid/internal/appgen"
)

// TestForwardMemoManySinkOutlier pins the forward-pass memoization on the
// shape it exists for: the 121-sink outlier whose sinks all call one
// shared config chain. In per-app SSG mode the single forward pass
// descends the chain once per sink; with memoization the 120 repeat
// descents answer from the cache — strictly fewer charged units, not one
// verdict or value changed.
func TestForwardMemoManySinkOutlier(t *testing.T) {
	app, truth, err := appgen.Generate(appgen.ManySinkOutlierSpec(4242))
	if err != nil {
		t.Fatal(err)
	}
	if len(truth.Sinks) != 121 {
		t.Fatalf("outlier app has %d sinks, want 121", len(truth.Sinks))
	}

	analyze := func(memo bool) *Report {
		opts := DefaultOptions()
		opts.PerAppSSG = true
		opts.MemoizeForwardPass = memo
		e, err := New(app, opts)
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	plain := analyze(false)
	memo := analyze(true)

	if plain.Stats.ForwardMemoHits != 0 {
		t.Fatalf("memo disabled but %d hits recorded", plain.Stats.ForwardMemoHits)
	}
	if memo.Stats.ForwardMemoHits == 0 {
		t.Fatal("memoization produced zero hits on the shared-chain outlier")
	}
	if memo.Stats.WorkUnits >= plain.Stats.WorkUnits {
		t.Fatalf("memo charged %d units, plain %d — caching must be strictly cheaper here",
			memo.Stats.WorkUnits, plain.Stats.WorkUnits)
	}
	if len(plain.Sinks) != len(memo.Sinks) {
		t.Fatalf("sink counts differ: %d vs %d", len(plain.Sinks), len(memo.Sinks))
	}
	for i := range plain.Sinks {
		p, m := plain.Sinks[i], memo.Sinks[i]
		if p.Reachable != m.Reachable || p.Insecure != m.Insecure {
			t.Fatalf("sink %d verdict differs with memoization", i)
		}
		if len(p.Values) != len(m.Values) {
			t.Fatalf("sink %d value count differs with memoization", i)
		}
		for j := range p.Values {
			if p.Values[j] != m.Values[j] {
				t.Fatalf("sink %d value %d differs: %q vs %q", i, j, p.Values[j], m.Values[j])
			}
		}
	}
	t.Logf("memo: %d hits, %d -> %d units (%.2fx)",
		memo.Stats.ForwardMemoHits, plain.Stats.WorkUnits, memo.Stats.WorkUnits,
		float64(plain.Stats.WorkUnits)/float64(memo.Stats.WorkUnits))
}

// TestForwardMemoPerSinkPipeline checks the per-sink pipeline too: every
// propagation run gets its own cache, and verdicts stay identical.
func TestForwardMemoPerSinkPipeline(t *testing.T) {
	app, _, err := appgen.Generate(appgen.Spec{
		Name: "com.memo.persink", Seed: 11, SizeMB: 1,
		Sinks: []appgen.SinkSpec{
			{Flow: appgen.FlowSharedConfig, Rule: android.RuleCryptoECB, Insecure: true},
			{Flow: appgen.FlowSharedConfig, Rule: android.RuleCryptoECB, Insecure: true},
			{Flow: appgen.FlowSharedConfig, Rule: android.RuleCryptoECB},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	analyze := func(memo bool) *Report {
		opts := DefaultOptions()
		opts.MemoizeForwardPass = memo
		e, err := New(app, opts)
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	plain := analyze(false)
	memo := analyze(true)
	if len(plain.Sinks) != len(memo.Sinks) {
		t.Fatalf("sink counts differ: %d vs %d", len(plain.Sinks), len(memo.Sinks))
	}
	for i := range plain.Sinks {
		p, m := plain.Sinks[i], memo.Sinks[i]
		if p.Reachable != m.Reachable || p.Insecure != m.Insecure {
			t.Fatalf("sink %d verdict differs with memoization", i)
		}
	}
	if memo.Stats.WorkUnits > plain.Stats.WorkUnits {
		t.Fatalf("memo charged %d units, plain %d — caching must never cost extra",
			memo.Stats.WorkUnits, plain.Stats.WorkUnits)
	}
}
