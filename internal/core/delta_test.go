package core

import (
	"fmt"
	"sync"
	"testing"

	"backdroid/internal/android"
	"backdroid/internal/appgen"
	"backdroid/internal/bcsearch"
	"backdroid/internal/dexdump"
)

// memBundles is a minimal in-memory BundleCache for delta tests.
type memBundles struct {
	mu sync.Mutex
	m  map[uint64][]byte
}

func newMemBundles() *memBundles { return &memBundles{m: make(map[uint64][]byte)} }

func (b *memBundles) GetBundle(fp uint64) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	d, ok := b.m[fp]
	return d, ok
}

func (b *memBundles) PutBundle(fp uint64, data []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.m[fp]; !ok {
		b.m[fp] = data
	}
}

func deltaBaseSpec() appgen.Spec {
	return appgen.Spec{
		Name:   "com.delta.app",
		Seed:   20210601,
		SizeMB: 1.5,
		Sinks: []appgen.SinkSpec{
			{Flow: appgen.FlowDirect, Rule: android.RuleCryptoECB, Insecure: true},
			{Flow: appgen.FlowThread, Rule: android.RuleSSLAllowAll, Insecure: true},
			{Flow: appgen.FlowICC, Rule: android.RuleCryptoECB, Insecure: false},
			{Flow: appgen.FlowClinit, Rule: android.RuleCryptoECB, Insecure: true},
			{Flow: appgen.FlowCallback, Rule: android.RuleSSLAllowAll, Insecure: false},
		},
	}
}

// deltaBaseFor runs the base app cold against a fresh bundle store and
// returns the DeltaBase a follow-up run would receive from the service.
func deltaBaseFor(t *testing.T, spec appgen.Spec, backend bcsearch.BackendKind) *DeltaBase {
	t.Helper()
	base, _, err := appgen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	mem := newMemBundles()
	opts := DefaultOptions()
	opts.SearchBackend = backend
	opts.Bundles = mem
	rep := analyzeApp(t, base, opts)
	fp := dexdump.AppFingerprint(base.Dexes)
	data, ok := mem.GetBundle(fp)
	if !ok {
		t.Fatal("base run did not publish its bundle")
	}
	return &DeltaBase{Fingerprint: fp, Bundle: data, Report: rep}
}

// TestDeltaMatchesColdRun is the delta soundness property (DESIGN.md
// Sec. 10): for every update mutation kind and every indexed backend, the
// incremental run produces the same verdicts, entries and recovered
// values as a cold re-analysis of the updated app, reuses at least one
// settled sink, and charges strictly less simulated work.
func TestDeltaMatchesColdRun(t *testing.T) {
	backends := []struct {
		name    string
		backend bcsearch.BackendKind
	}{
		{"indexed", bcsearch.BackendIndexed},
		{"sharded", bcsearch.BackendSharded},
	}
	for _, b := range backends {
		spec := deltaBaseSpec()
		db := deltaBaseFor(t, spec, b.backend)
		for _, m := range appgen.Mutations() {
			t.Run(fmt.Sprintf("%s/%s", b.name, m), func(t *testing.T) {
				upd, truth, err := appgen.GenerateUpdate(appgen.AppUpdateSpec{
					Base: spec, Mutation: m, TargetSink: 0, Seed: 20210602,
				})
				if err != nil {
					t.Fatal(err)
				}

				coldOpts := DefaultOptions()
				coldOpts.SearchBackend = b.backend
				cold := analyzeApp(t, upd, coldOpts)

				deltaOpts := DefaultOptions()
				deltaOpts.SearchBackend = b.backend
				deltaOpts.DeltaFrom = db
				delta := analyzeApp(t, upd, deltaOpts)

				assertSameVerdicts(t, "delta vs cold", cold, delta)
				scoreAgainstTruth(t, delta, truth)

				ds, cs := delta.Stats, cold.Stats
				if ds.SinksReused == 0 {
					t.Errorf("delta run reused no sinks: %+v", ds)
				}
				if ds.SinksReused+ds.SinksRerun != len(delta.Sinks) {
					t.Errorf("reused %d + rerun %d != %d sinks", ds.SinksReused, ds.SinksRerun, len(delta.Sinks))
				}
				if ds.WorkUnits >= cs.WorkUnits {
					t.Errorf("delta charged %d units, cold %d — must be strictly cheaper", ds.WorkUnits, cs.WorkUnits)
				}
				if ds.ShardsUnchanged+ds.ShardsChanged == 0 {
					t.Errorf("delta run reported no shard diff: %+v", ds)
				}
				if m == appgen.MutateAddClass && ds.SinksRerun != 0 {
					t.Errorf("inert added class re-ran %d sinks, want 0", ds.SinksRerun)
				}
				if m == appgen.MutateChangeLiteral {
					// The mutated sink's verdict must come from a real
					// re-run, not a stale carried-over report.
					if ds.SinksRerun == 0 {
						t.Error("changed-literal update re-ran no sinks")
					}
					for _, sr := range delta.Sinks {
						if sr.Call.Caller.Class == truth.Sinks[0].Class && sr.Reused {
							t.Errorf("sink in the changed class %s was reused", truth.Sinks[0].Class)
						}
					}
				}
			})
		}
	}
}

// scoreAgainstTruth checks a report's verdicts against appgen ground
// truth for the flows whose sinks the engine reports individually.
func scoreAgainstTruth(t *testing.T, r *Report, truth *appgen.GroundTruth) {
	t.Helper()
	// Index reported insecure sinks by containing class.
	insecure := make(map[string]bool)
	for _, sr := range r.Sinks {
		if sr.Reachable && sr.Insecure {
			insecure[sr.Call.Caller.Class] = true
		}
	}
	for _, ts := range truth.Sinks {
		if ts.Spec.Flow == appgen.FlowSubclassSink {
			continue // known BackDroid FN by design
		}
		if ts.Insecure && !insecure[ts.Class] {
			t.Errorf("truth: insecure sink in %s.%s not reported", ts.Class, ts.Method)
		}
	}
}

// TestDeltaCorruptBaseFallsBackToFullRun pins the robustness contract:
// a delta base whose bundle bytes are damaged (any byte, or truncated)
// silently degrades to a full re-analysis with identical verdicts and
// zero reused sinks — never an error, never a wrong verdict.
func TestDeltaCorruptBaseFallsBackToFullRun(t *testing.T) {
	spec := deltaBaseSpec()
	db := deltaBaseFor(t, spec, bcsearch.BackendSharded)
	upd, _, err := appgen.GenerateUpdate(appgen.AppUpdateSpec{
		Base: spec, Mutation: MutationForCorruptTest, TargetSink: 0, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	coldOpts := DefaultOptions()
	coldOpts.SearchBackend = bcsearch.BackendSharded
	cold := analyzeApp(t, upd, coldOpts)

	corrupt := func(name string, mutate func([]byte) []byte) {
		data := append([]byte(nil), db.Bundle...)
		data = mutate(data)
		opts := DefaultOptions()
		opts.SearchBackend = bcsearch.BackendSharded
		opts.DeltaFrom = &DeltaBase{Fingerprint: db.Fingerprint, Bundle: data, Report: db.Report}
		got := analyzeApp(t, upd, opts)
		assertSameVerdicts(t, name, cold, got)
	}
	corrupt("truncated base", func(d []byte) []byte { return d[:len(d)/2] })
	corrupt("flipped magic", func(d []byte) []byte { d[0] ^= 0xFF; return d })
	corrupt("flipped tail byte", func(d []byte) []byte { d[len(d)-1] ^= 0x01; return d })
	corrupt("empty base", func(d []byte) []byte { return nil })
}

// MutationForCorruptTest keeps the corrupt-base test on the mutation with
// the widest reuse surface, where a wrongly-trusted base would matter most.
const MutationForCorruptTest = appgen.MutateChangeLiteral
