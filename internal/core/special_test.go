package core

import (
	"testing"

	"backdroid/internal/android"
	"backdroid/internal/apk"
	"backdroid/internal/appgen"
	"backdroid/internal/bcsearch"
	"backdroid/internal/dex"
	"backdroid/internal/manifest"
)

// buildApp wraps a dex file + manifest into an app.
func buildApp(t *testing.T, pkg string, m *manifest.Manifest, classes ...*dex.ClassBuilder) *apk.App {
	t.Helper()
	f := dex.NewFile()
	for _, cb := range classes {
		if err := f.AddClass(cb.Build()); err != nil {
			t.Fatal(err)
		}
	}
	return apk.New(pkg, m, f)
}

func analyzeApp(t *testing.T, app *apk.App, opts Options) *Report {
	t.Helper()
	e, err := New(app, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r, err := e.Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return r
}

// TestRecursionLoopDetected builds mutually recursive callers around a
// sink: recursion must be cut by CrossBackward detection and counted.
func TestRecursionLoopDetected(t *testing.T) {
	const pkg = "com.loop.app"
	objInit := dex.NewMethodRef("java.lang.Object", "<init>", dex.Void)
	activInit := dex.NewMethodRef("android.app.Activity", "<init>", dex.Void)

	aRef := dex.NewMethodRef(pkg+".Worker", "stepA", dex.Void)
	bRef := dex.NewMethodRef(pkg+".Worker", "stepB", dex.Void)

	worker := dex.NewClass(pkg + ".Worker")
	wc := worker.Constructor()
	wc.InvokeDirect(objInit, wc.This()).ReturnVoid().Done()
	// stepA calls the sink and stepB; stepB calls stepA (cycle).
	sa := worker.StaticMethod("stepA", dex.Void)
	s, c := sa.Reg(), sa.Reg()
	sa.ConstString(s, "AES/ECB/PKCS5Padding").
		InvokeStatic(android.CipherGetInstance, s).
		MoveResult(c).
		InvokeStatic(bRef).
		ReturnVoid().Done()
	sb := worker.StaticMethod("stepB", dex.Void)
	sb.InvokeStatic(aRef).ReturnVoid().Done()

	main := dex.NewClass(pkg + ".MainActivity").Extends(android.ActivityClass)
	mc := main.Constructor()
	mc.InvokeDirect(activInit, mc.This()).ReturnVoid().Done()
	oc := main.Method("onCreate", dex.Void, dex.T(android.BundleClass))
	oc.InvokeStatic(aRef).ReturnVoid().Done()

	m := manifest.New(pkg)
	m.Add(manifest.Activity, pkg+".MainActivity")

	r := analyzeApp(t, buildApp(t, pkg, m, worker, main), DefaultOptions())
	if len(r.Sinks) != 1 {
		t.Fatalf("sinks = %d", len(r.Sinks))
	}
	if !r.Sinks[0].Reachable || !r.Sinks[0].Insecure {
		t.Errorf("recursive-caller sink should be reachable+insecure: %+v", r.Sinks[0])
	}
	if r.Stats.Loops[CrossBackward] == 0 {
		t.Errorf("CrossBackward loop not detected; loops=%v", r.Stats.Loops)
	}
}

// TestLoopDetectionDisabledStillTerminates verifies the depth-bound
// fallback.
func TestLoopDetectionDisabledStillTerminates(t *testing.T) {
	opts := DefaultOptions()
	opts.EnableLoopDetection = false
	opts.MaxDepth = 8
	r := analyzeFixture(t, opts)
	if len(r.Sinks) != 8 {
		t.Fatalf("sinks = %d", len(r.Sinks))
	}
	if r.Stats.LoopsDetected() {
		t.Error("loop counters must stay zero when detection is disabled")
	}
}

// TestImplicitICC routes the ICC through an intent action string instead
// of a const-class — the other half of the two-time search.
func TestImplicitICC(t *testing.T) {
	const pkg = "com.icc.app"
	activInit := dex.NewMethodRef("android.app.Activity", "<init>", dex.Void)
	serviceInit := dex.NewMethodRef("android.app.Service", "<init>", dex.Void)
	const action = "com.icc.app.action.WORK"

	svc := dex.NewClass(pkg + ".WorkService").Extends(android.ServiceClass)
	sc := svc.Constructor()
	sc.InvokeDirect(serviceInit, sc.This()).ReturnVoid().Done()
	oc := svc.Method("onCreate", dex.Void)
	s, c := oc.Reg(), oc.Reg()
	oc.ConstString(s, "AES/ECB/PKCS5Padding").
		InvokeStatic(android.CipherGetInstance, s).
		MoveResult(c).
		ReturnVoid().Done()

	main := dex.NewClass(pkg + ".MainActivity").Extends(android.ActivityClass)
	mc := main.Constructor()
	mc.InvokeDirect(activInit, mc.This()).ReturnVoid().Done()
	moc := main.Method("onCreate", dex.Void, dex.T(android.BundleClass))
	intent, act := moc.Reg(), moc.Reg()
	startService := dex.NewMethodRef(android.ContextClass, "startService",
		dex.T("android.content.ComponentName"), dex.T(android.IntentClass))
	moc.New(intent, android.IntentClass).
		ConstString(act, action).
		InvokeDirect(android.IntentCtorImplicit, intent, act).
		InvokeVirtual(startService, moc.This(), intent).
		ReturnVoid().Done()

	m := manifest.New(pkg)
	m.Add(manifest.Activity, pkg+".MainActivity")
	m.Add(manifest.Service, pkg+".WorkService", manifest.IntentFilter{Actions: []string{action}})

	r := analyzeApp(t, buildApp(t, pkg, m, svc, main), DefaultOptions())
	if len(r.Sinks) != 1 {
		t.Fatalf("sinks = %d", len(r.Sinks))
	}
	sr := r.Sinks[0]
	if !sr.Reachable {
		t.Fatal("implicit-ICC service sink must be reachable")
	}
	// Both the service's own lifecycle entry and the ICC sender should be
	// among the entries.
	entries := map[string]bool{}
	for _, en := range sr.Entries {
		entries[en.Class] = true
	}
	if !entries[pkg+".MainActivity"] {
		t.Errorf("implicit ICC sender missing from entries: %v", sr.Entries)
	}
}

// TestLifecyclePredecessorSlicing stores the cipher mode in a field during
// onCreate and uses it in onResume: the Sec. IV-E predecessor handling
// must recover the value.
func TestLifecyclePredecessorSlicing(t *testing.T) {
	const pkg = "com.lc.app"
	activInit := dex.NewMethodRef("android.app.Activity", "<init>", dex.Void)
	modeField := dex.NewFieldRef(pkg+".MainActivity", "mode", dex.StringT)

	main := dex.NewClass(pkg+".MainActivity").Extends(android.ActivityClass).
		Field("mode", dex.StringT)
	mc := main.Constructor()
	mc.InvokeDirect(activInit, mc.This()).ReturnVoid().Done()

	oc := main.Method("onCreate", dex.Void, dex.T(android.BundleClass))
	v := oc.Reg()
	oc.ConstString(v, "AES/ECB/PKCS5Padding").
		IPut(v, oc.This(), modeField).
		ReturnVoid().Done()

	or := main.Method("onResume", dex.Void)
	mv, c := or.Reg(), or.Reg()
	or.IGet(mv, or.This(), modeField).
		InvokeStatic(android.CipherGetInstance, mv).
		MoveResult(c).
		ReturnVoid().Done()

	m := manifest.New(pkg)
	m.Add(manifest.Activity, pkg+".MainActivity")

	r := analyzeApp(t, buildApp(t, pkg, m, main), DefaultOptions())
	if len(r.Sinks) != 1 {
		t.Fatalf("sinks = %d", len(r.Sinks))
	}
	sr := r.Sinks[0]
	if !sr.Reachable {
		t.Fatal("onResume sink must be reachable")
	}
	if !sr.Insecure {
		t.Errorf("value written in onCreate not recovered; values=%v", sr.Values)
	}
}

// TestEngineTimeout aborts analysis on a tiny budget.
func TestEngineTimeout(t *testing.T) {
	opts := DefaultOptions()
	opts.TimeoutMinutes = 0.00001
	r := analyzeFixture(t, opts)
	if !r.TimedOut {
		t.Error("tiny budget must time out")
	}
}

// TestSubclassSinkAblation reproduces the paper's two false negatives and
// their fix: the default engine misses a sink invoked through an app
// subclass of the sink class; ResolveSinkSubclasses finds it.
func TestSubclassSinkAblation(t *testing.T) {
	app, truth, err := appgen.Generate(appgen.Spec{
		Name:   "com.subclass.app",
		Seed:   5,
		SizeMB: 1,
		Sinks: []appgen.SinkSpec{
			{Flow: appgen.FlowSubclassSink, Rule: android.RuleSSLAllowAll, Insecure: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := truth.Sinks[0]

	defaultReport := analyzeApp(t, app, DefaultOptions())
	for _, s := range defaultReport.Sinks {
		if s.Call.Caller.Class == st.Class && s.Call.Caller.Name == st.Method {
			t.Fatal("default initial search should miss the subclassed sink (paper FN)")
		}
	}

	opts := DefaultOptions()
	opts.ResolveSinkSubclasses = true
	fixedReport := analyzeApp(t, app, opts)
	found := false
	for _, s := range fixedReport.Sinks {
		if s.Call.Caller.Class == st.Class && s.Call.Caller.Name == st.Method {
			found = s.Reachable && s.Insecure
		}
	}
	if !found {
		t.Error("class-hierarchy-aware search should find and judge the subclassed sink")
	}
}

// TestSearchCacheAblationSameResults verifies the cache changes cost, not
// outcomes. The cost assertion is pinned to the linear backend: there a
// cache miss rescans the whole dump, so caching must strictly reduce work.
// On the indexed backend a miss is already O(hits) and can cost exactly as
// much as a hit on a small fixture.
func TestSearchCacheAblationSameResults(t *testing.T) {
	cached := DefaultOptions()
	cached.SearchBackend = bcsearch.BackendLinear
	withCache := analyzeFixture(t, cached)
	opts := cached
	opts.EnableSearchCache = false
	without := analyzeFixture(t, opts)

	if len(withCache.Sinks) != len(without.Sinks) {
		t.Fatalf("sink counts differ: %d vs %d", len(withCache.Sinks), len(without.Sinks))
	}
	for i := range withCache.Sinks {
		a, b := withCache.Sinks[i], without.Sinks[i]
		if a.Reachable != b.Reachable || a.Insecure != b.Insecure {
			t.Errorf("sink %d differs: %+v vs %+v", i, a, b)
		}
	}
	if without.Stats.Search.CacheHits != 0 {
		t.Error("cache hits recorded with cache disabled")
	}
	if withCache.Stats.WorkUnits >= without.Stats.WorkUnits {
		t.Errorf("cache should reduce work: %d vs %d",
			withCache.Stats.WorkUnits, without.Stats.WorkUnits)
	}
}

// TestSinkCacheSharedMethod verifies the Sec. IV-F sink API call caching:
// two sinks in one unreachable method consult reachability once.
func TestSinkCacheSharedMethod(t *testing.T) {
	const pkg = "com.cache.app"
	dead := dex.NewClass(pkg + ".Dead")
	dm := dead.StaticMethod("both", dex.Void)
	s1, c1, s2, c2 := dm.Reg(), dm.Reg(), dm.Reg(), dm.Reg()
	dm.ConstString(s1, "AES/ECB/PKCS5Padding").
		InvokeStatic(android.CipherGetInstance, s1).
		MoveResult(c1).
		ConstString(s2, "DES").
		InvokeStatic(android.CipherGetInstance, s2).
		MoveResult(c2).
		ReturnVoid().Done()

	m := manifest.New(pkg)
	r := analyzeApp(t, buildApp(t, pkg, m, dead), DefaultOptions())
	if r.Stats.SinkCallsTotal != 2 {
		t.Fatalf("sink calls = %d", r.Stats.SinkCallsTotal)
	}
	if r.Stats.SinkCallsCached != 1 {
		t.Errorf("cached sink calls = %d, want 1", r.Stats.SinkCallsCached)
	}
	for _, s := range r.Sinks {
		if s.Reachable {
			t.Error("dead sinks must be unreachable")
		}
	}
}

// TestCallbackFlow exercises the View$OnClickListener registration shape
// (baseline gap; BackDroid advanced search).
func TestCallbackFlow(t *testing.T) {
	app, truth, err := appgen.Generate(appgen.Spec{
		Name:   "com.cb.app",
		Seed:   9,
		SizeMB: 1,
		Sinks: []appgen.SinkSpec{
			{Flow: appgen.FlowCallback, Rule: android.RuleCryptoECB, Insecure: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := analyzeApp(t, app, DefaultOptions())
	st := truth.Sinks[0]
	found := false
	for _, s := range r.Sinks {
		if s.Call.Caller.Class == st.Class && s.Call.Caller.Name == st.Method {
			found = s.Reachable && s.Insecure
		}
	}
	if !found {
		t.Error("onClick callback sink must be reachable via advanced search")
	}
}

// TestMultiDexAnalysis verifies preprocessing merges multidex before
// search.
func TestMultiDexAnalysis(t *testing.T) {
	app, truth, err := appgen.Generate(appgen.Spec{
		Name:     "com.multi.app",
		Seed:     4,
		SizeMB:   2,
		MultiDex: true,
		Sinks: []appgen.SinkSpec{
			{Flow: appgen.FlowDirect, Rule: android.RuleCryptoECB, Insecure: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Dexes) != 2 {
		t.Fatalf("dexes = %d", len(app.Dexes))
	}
	r := analyzeApp(t, app, DefaultOptions())
	st := truth.Sinks[0]
	found := false
	for _, s := range r.Sinks {
		if s.Call.Caller.Class == st.Class {
			found = s.Reachable && s.Insecure
		}
	}
	if !found {
		t.Error("multidex sink not found after merge")
	}
}
