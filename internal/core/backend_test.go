package core

import (
	"testing"

	"backdroid/internal/android"
	"backdroid/internal/appgen"
	"backdroid/internal/bcsearch"
	"backdroid/internal/testapps"
)

// assertSameVerdicts compares the per-sink outcomes of two reports.
func assertSameVerdicts(t *testing.T, label string, a, b *Report) {
	t.Helper()
	if len(a.Sinks) != len(b.Sinks) {
		t.Fatalf("%s: sink counts differ: %d vs %d", label, len(a.Sinks), len(b.Sinks))
	}
	for i := range a.Sinks {
		x, y := a.Sinks[i], b.Sinks[i]
		if x.Call.String() != y.Call.String() {
			t.Errorf("%s: sink %d call differs: %s vs %s", label, i, x.Call, y.Call)
		}
		if x.Reachable != y.Reachable || x.Insecure != y.Insecure {
			t.Errorf("%s: sink %d verdict differs: %+v vs %+v", label, i, x, y)
		}
		if len(x.Values) != len(y.Values) {
			t.Errorf("%s: sink %d values differ: %v vs %v", label, i, x.Values, y.Values)
			continue
		}
		for j := range x.Values {
			if x.Values[j] != y.Values[j] {
				t.Errorf("%s: sink %d value %d differs: %s vs %s", label, i, j, x.Values[j], y.Values[j])
			}
		}
	}
}

// TestSearchBackendAblationSameResults is the engine-level half of the
// backend parity property: the full BackDroid pipeline produces the same
// per-sink verdicts, entries and recovered values on either backend, and
// the indexed backend does strictly less charged search work.
func TestSearchBackendAblationSameResults(t *testing.T) {
	indexed := analyzeFixture(t, DefaultOptions())
	opts := DefaultOptions()
	opts.SearchBackend = bcsearch.BackendLinear
	linear := analyzeFixture(t, opts)

	assertSameVerdicts(t, "indexed-vs-linear", indexed, linear)

	// Same command stream, same cache behavior — only the backend cost
	// profile differs.
	is, ls := indexed.Stats.Search, linear.Stats.Search
	if is.Commands != ls.Commands || is.CacheHits != ls.CacheHits {
		t.Errorf("cache accounting differs across backends: %+v vs %+v", is, ls)
	}
	if ls.IndexBuilds != 0 || ls.PostingsScanned != 0 {
		t.Errorf("linear backend used the index: %+v", ls)
	}
	if is.IndexBuilds > 1 {
		t.Errorf("index built %d times, want at most once", is.IndexBuilds)
	}
	if is.LinesScanned >= ls.LinesScanned {
		t.Errorf("indexed backend scanned %d lines, linear %d — index not used",
			is.LinesScanned, ls.LinesScanned)
	}
	if indexed.Stats.WorkUnits >= linear.Stats.WorkUnits {
		t.Errorf("indexed work %d >= linear work %d — index not cheaper on the fixture",
			indexed.Stats.WorkUnits, linear.Stats.WorkUnits)
	}
}

// TestShardedBackendSameResults extends the engine-level parity property
// to the sharded index: for the auto plan and several explicit shard
// counts, the full pipeline produces verdicts identical to the linear
// scanner, and the sharded build stays cheaper than linear.
func TestShardedBackendSameResults(t *testing.T) {
	linOpts := DefaultOptions()
	linOpts.SearchBackend = bcsearch.BackendLinear
	linear := analyzeFixture(t, linOpts)

	for _, shards := range []int{0, 1, 2, 5} {
		opts := DefaultOptions()
		opts.SearchBackend = bcsearch.BackendSharded
		opts.IndexShards = shards
		sharded := analyzeFixture(t, opts)
		label := "sharded-auto"
		if shards > 0 {
			label = "sharded-" + string(rune('0'+shards))
		}
		assertSameVerdicts(t, label, linear, sharded)
		ss := sharded.Stats.Search
		if shards > 0 && ss.ShardCount != shards {
			t.Errorf("%s: shard count = %d, want %d", label, ss.ShardCount, shards)
		}
		if ss.IndexBuilds != 1 {
			t.Errorf("%s: index builds = %d, want 1", label, ss.IndexBuilds)
		}
		if sharded.Stats.WorkUnits >= linear.Stats.WorkUnits {
			t.Errorf("%s: work %d >= linear %d", label, sharded.Stats.WorkUnits, linear.Stats.WorkUnits)
		}
	}
}

// TestShardedBackendPerDexPlan pins the multidex auto plan: a two-dex app
// gets one shard per classesN.dex and the same verdicts as linear.
func TestShardedBackendPerDexPlan(t *testing.T) {
	spec := appgen.Spec{
		Name: "com.shard.multidex", Seed: 11, SizeMB: 2, MultiDex: true,
		Sinks: []appgen.SinkSpec{
			{Flow: appgen.FlowDirect, Rule: android.RuleCryptoECB, Insecure: true},
			{Flow: appgen.FlowICC, Rule: android.RuleSSLAllowAll, Insecure: true},
			{Flow: appgen.FlowClinit, Rule: android.RuleCryptoECB, Insecure: false},
		},
	}
	app, _, err := appgen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Dexes) != 2 {
		t.Fatalf("fixture app has %d dexes, want 2", len(app.Dexes))
	}
	analyze := func(opts Options) *Report {
		e, err := New(app, opts)
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	linOpts := DefaultOptions()
	linOpts.SearchBackend = bcsearch.BackendLinear
	linear := analyze(linOpts)
	opts := DefaultOptions()
	opts.SearchBackend = bcsearch.BackendSharded
	sharded := analyze(opts)
	assertSameVerdicts(t, "per-dex", linear, sharded)
	if got := sharded.Stats.Search.ShardCount; got != 2 {
		t.Errorf("auto plan built %d shards for a 2-dex app, want 2", got)
	}
}

// TestIndexedBackendNoRawScans pins the ROADMAP "index-aware raw search"
// fix: with the two-time ICC first pass on a typed command, the full
// fixture pipeline issues no raw substring command, so the indexed
// backend never falls back to an O(lines) scan.
func TestIndexedBackendNoRawScans(t *testing.T) {
	report := analyzeFixture(t, DefaultOptions())
	if got := report.Stats.Search.LinesScanned; got != 0 {
		t.Errorf("indexed pipeline scanned %d lines — a raw fallback survives", got)
	}
	if report.Stats.Search.PostingsScanned == 0 {
		t.Error("no postings visited — search did not run")
	}
}

// TestWarmIndexCacheEngineRun pins the acceptance criterion end to end: a
// second engine over the same app with a persistent cache directory
// charges zero tokenization/index-build simtime and reports identical
// results for strictly less total work.
func TestWarmIndexCacheEngineRun(t *testing.T) {
	for _, backend := range []bcsearch.BackendKind{bcsearch.BackendIndexed, bcsearch.BackendSharded} {
		t.Run(backend.String(), func(t *testing.T) {
			app, err := testapps.Fixture()
			if err != nil {
				t.Fatal(err)
			}
			opts := DefaultOptions()
			opts.SearchBackend = backend
			opts.IndexCacheDir = t.TempDir()
			analyze := func() *Report {
				e, err := New(app, opts)
				if err != nil {
					t.Fatal(err)
				}
				r, err := e.Analyze()
				if err != nil {
					t.Fatal(err)
				}
				return r
			}
			cold := analyze()
			if cs := cold.Stats.Search; cs.IndexBuilds != 1 || cs.IndexCacheMisses != 1 {
				t.Fatalf("cold stats = %+v, want one build after one miss", cs)
			}
			warm := analyze()
			ws := warm.Stats.Search
			if ws.IndexBuilds != 0 || ws.IndexLines != 0 {
				t.Errorf("warm run tokenized: %+v, want zero index-build work", ws)
			}
			if ws.IndexCacheHits != 1 {
				t.Errorf("warm run cache hits = %d, want 1", ws.IndexCacheHits)
			}
			assertSameVerdicts(t, "warm-cache", cold, warm)
			if warm.Stats.WorkUnits >= cold.Stats.WorkUnits {
				t.Errorf("warm work %d >= cold work %d — cache load not cheaper",
					warm.Stats.WorkUnits, cold.Stats.WorkUnits)
			}
		})
	}
}
