package core

import (
	"testing"

	"backdroid/internal/bcsearch"
)

// TestSearchBackendAblationSameResults is the engine-level half of the
// backend parity property: the full BackDroid pipeline produces the same
// per-sink verdicts, entries and recovered values on either backend, and
// the indexed backend does strictly less charged search work.
func TestSearchBackendAblationSameResults(t *testing.T) {
	indexed := analyzeFixture(t, DefaultOptions())
	opts := DefaultOptions()
	opts.SearchBackend = bcsearch.BackendLinear
	linear := analyzeFixture(t, opts)

	if len(indexed.Sinks) != len(linear.Sinks) {
		t.Fatalf("sink counts differ: %d vs %d", len(indexed.Sinks), len(linear.Sinks))
	}
	for i := range indexed.Sinks {
		a, b := indexed.Sinks[i], linear.Sinks[i]
		if a.Call.String() != b.Call.String() {
			t.Errorf("sink %d call differs: %s vs %s", i, a.Call, b.Call)
		}
		if a.Reachable != b.Reachable || a.Insecure != b.Insecure {
			t.Errorf("sink %d verdict differs: %+v vs %+v", i, a, b)
		}
		if len(a.Values) != len(b.Values) {
			t.Errorf("sink %d values differ: %v vs %v", i, a.Values, b.Values)
		} else {
			for j := range a.Values {
				if a.Values[j] != b.Values[j] {
					t.Errorf("sink %d value %d differs: %s vs %s", i, j, a.Values[j], b.Values[j])
				}
			}
		}
	}

	// Same command stream, same cache behavior — only the backend cost
	// profile differs.
	is, ls := indexed.Stats.Search, linear.Stats.Search
	if is.Commands != ls.Commands || is.CacheHits != ls.CacheHits {
		t.Errorf("cache accounting differs across backends: %+v vs %+v", is, ls)
	}
	if ls.IndexBuilds != 0 || ls.PostingsScanned != 0 {
		t.Errorf("linear backend used the index: %+v", ls)
	}
	if is.IndexBuilds > 1 {
		t.Errorf("index built %d times, want at most once", is.IndexBuilds)
	}
	if is.LinesScanned >= ls.LinesScanned {
		t.Errorf("indexed backend scanned %d lines, linear %d — index not used",
			is.LinesScanned, ls.LinesScanned)
	}
	if indexed.Stats.WorkUnits >= linear.Stats.WorkUnits {
		t.Errorf("indexed work %d >= linear work %d — index not cheaper on the fixture",
			indexed.Stats.WorkUnits, linear.Stats.WorkUnits)
	}
}
