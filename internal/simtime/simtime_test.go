package simtime

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestChargeAccumulates(t *testing.T) {
	m := NewMeter()
	for i := 0; i < 10; i++ {
		if err := m.Charge(100); err != nil {
			t.Fatalf("Charge: %v", err)
		}
	}
	if m.Units() != 1000 {
		t.Errorf("Units = %d, want 1000", m.Units())
	}
	if m.Exhausted() {
		t.Error("unlimited meter must not exhaust")
	}
}

func TestChargeNegative(t *testing.T) {
	m := NewMeter()
	if err := m.Charge(-1); err == nil {
		t.Error("negative charge must fail")
	}
}

func TestBudgetTimeout(t *testing.T) {
	m := NewMeter()
	m.SetBudget(100)
	if err := m.Charge(100); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := m.Charge(1)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("over budget err = %v, want ErrTimeout", err)
	}
	if !m.Exhausted() {
		t.Error("Exhausted should be true")
	}
	// Overage is recorded.
	if m.Units() != 101 {
		t.Errorf("Units = %d, want 101", m.Units())
	}
}

func TestTimeoutMeterMinutes(t *testing.T) {
	m := NewMeterWithTimeout(2)
	if err := m.Charge(MinutesToUnits(1.5)); err != nil {
		t.Fatalf("1.5 min within 2 min budget: %v", err)
	}
	if err := m.Charge(MinutesToUnits(1)); !errors.Is(err, ErrTimeout) {
		t.Fatalf("2.5 min should exceed 2 min budget, got %v", err)
	}
}

func TestChargeLines(t *testing.T) {
	m := NewMeter()
	if err := m.ChargeLines(0); err != nil {
		t.Fatal(err)
	}
	if m.Units() != 1 {
		t.Errorf("zero lines should still cost 1, got %d", m.Units())
	}
	m2 := NewMeter()
	if err := m2.ChargeLines(LinesPerUnit * 10); err != nil {
		t.Fatal(err)
	}
	if m2.Units() != 11 {
		t.Errorf("ChargeLines(%d) = %d units, want 11", LinesPerUnit*10, m2.Units())
	}
}

func TestChargeIndexBuild(t *testing.T) {
	m := NewMeter()
	if err := m.ChargeIndexBuild(0); err != nil {
		t.Fatal(err)
	}
	if m.Units() != 1 {
		t.Errorf("zero-line build should still cost 1, got %d", m.Units())
	}
	m2 := NewMeter()
	if err := m2.ChargeIndexBuild(IndexBuildLinesPerUnit * 10); err != nil {
		t.Fatal(err)
	}
	if m2.Units() != 11 {
		t.Errorf("ChargeIndexBuild(%d) = %d units, want 11", IndexBuildLinesPerUnit*10, m2.Units())
	}
	// The cost model must keep index construction dearer per line than a
	// plain scan, and postings cheaper than lines — the whole point of
	// paying the build once.
	if IndexBuildLinesPerUnit >= LinesPerUnit {
		t.Errorf("index build (%d lines/unit) should cost more per line than scanning (%d)",
			IndexBuildLinesPerUnit, LinesPerUnit)
	}
	if PostingsPerUnit <= LinesPerUnit {
		t.Errorf("postings (%d/unit) should be cheaper than line scans (%d/unit)",
			PostingsPerUnit, LinesPerUnit)
	}
}

func TestChargePostings(t *testing.T) {
	m := NewMeter()
	if err := m.ChargePostings(0); err != nil {
		t.Fatal(err)
	}
	if m.Units() != 1 {
		t.Errorf("zero postings should still cost 1, got %d", m.Units())
	}
	m2 := NewMeter()
	m2.SetBudget(2)
	if err := m2.ChargePostings(PostingsPerUnit * 10); !errors.Is(err, ErrTimeout) {
		t.Errorf("postings charge should respect the budget, got %v", err)
	}
}

func TestUnitConversionRoundTrip(t *testing.T) {
	f := func(mins uint16) bool {
		m := float64(mins)
		return UnitsToMinutes(MinutesToUnits(m)) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinutes(t *testing.T) {
	m := NewMeter()
	if err := m.Charge(UnitsPerMinute * 3); err != nil {
		t.Fatal(err)
	}
	if m.Minutes() != 3 {
		t.Errorf("Minutes = %f, want 3", m.Minutes())
	}
}
