package simtime

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestChargeAccumulates(t *testing.T) {
	m := NewMeter()
	for i := 0; i < 10; i++ {
		if err := m.Charge(100); err != nil {
			t.Fatalf("Charge: %v", err)
		}
	}
	if m.Units() != 1000 {
		t.Errorf("Units = %d, want 1000", m.Units())
	}
	if m.Exhausted() {
		t.Error("unlimited meter must not exhaust")
	}
}

func TestChargeNegative(t *testing.T) {
	m := NewMeter()
	if err := m.Charge(-1); err == nil {
		t.Error("negative charge must fail")
	}
}

func TestBudgetTimeout(t *testing.T) {
	m := NewMeter()
	m.SetBudget(100)
	if err := m.Charge(100); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := m.Charge(1)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("over budget err = %v, want ErrTimeout", err)
	}
	if !m.Exhausted() {
		t.Error("Exhausted should be true")
	}
	// Overage is recorded.
	if m.Units() != 101 {
		t.Errorf("Units = %d, want 101", m.Units())
	}
}

func TestTimeoutMeterMinutes(t *testing.T) {
	m := NewMeterWithTimeout(2)
	if err := m.Charge(MinutesToUnits(1.5)); err != nil {
		t.Fatalf("1.5 min within 2 min budget: %v", err)
	}
	if err := m.Charge(MinutesToUnits(1)); !errors.Is(err, ErrTimeout) {
		t.Fatalf("2.5 min should exceed 2 min budget, got %v", err)
	}
}

func TestChargeLines(t *testing.T) {
	m := NewMeter()
	if err := m.ChargeLines(0); err != nil {
		t.Fatal(err)
	}
	if m.Units() != 1 {
		t.Errorf("zero lines should still cost 1, got %d", m.Units())
	}
	m2 := NewMeter()
	if err := m2.ChargeLines(LinesPerUnit * 10); err != nil {
		t.Fatal(err)
	}
	if m2.Units() != 11 {
		t.Errorf("ChargeLines(%d) = %d units, want 11", LinesPerUnit*10, m2.Units())
	}
}

func TestChargeIndexBuild(t *testing.T) {
	m := NewMeter()
	if err := m.ChargeIndexBuild(0); err != nil {
		t.Fatal(err)
	}
	if m.Units() != 1 {
		t.Errorf("zero-line build should still cost 1, got %d", m.Units())
	}
	m2 := NewMeter()
	if err := m2.ChargeIndexBuild(IndexBuildLinesPerUnit * 10); err != nil {
		t.Fatal(err)
	}
	if m2.Units() != 11 {
		t.Errorf("ChargeIndexBuild(%d) = %d units, want 11", IndexBuildLinesPerUnit*10, m2.Units())
	}
	// The cost model must keep index construction dearer per line than a
	// plain scan, and postings cheaper than lines — the whole point of
	// paying the build once.
	if IndexBuildLinesPerUnit >= LinesPerUnit {
		t.Errorf("index build (%d lines/unit) should cost more per line than scanning (%d)",
			IndexBuildLinesPerUnit, LinesPerUnit)
	}
	if PostingsPerUnit <= LinesPerUnit {
		t.Errorf("postings (%d/unit) should be cheaper than line scans (%d/unit)",
			PostingsPerUnit, LinesPerUnit)
	}
}

func TestChargePostings(t *testing.T) {
	m := NewMeter()
	if err := m.ChargePostings(0); err != nil {
		t.Fatal(err)
	}
	if m.Units() != 1 {
		t.Errorf("zero postings should still cost 1, got %d", m.Units())
	}
	m2 := NewMeter()
	m2.SetBudget(2)
	if err := m2.ChargePostings(PostingsPerUnit * 10); !errors.Is(err, ErrTimeout) {
		t.Errorf("postings charge should respect the budget, got %v", err)
	}
}

func TestUnitConversionRoundTrip(t *testing.T) {
	f := func(mins uint16) bool {
		m := float64(mins)
		return UnitsToMinutes(MinutesToUnits(m)) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinutes(t *testing.T) {
	m := NewMeter()
	if err := m.Charge(UnitsPerMinute * 3); err != nil {
		t.Fatal(err)
	}
	if m.Minutes() != 3 {
		t.Errorf("Minutes = %f, want 3", m.Minutes())
	}
}

func TestChargeShardedIndexBuild(t *testing.T) {
	// Charged on the critical path: the largest shard, not the whole dump.
	whole := NewMeter()
	if err := whole.ChargeIndexBuild(8000); err != nil {
		t.Fatal(err)
	}
	sharded := NewMeter()
	if err := sharded.ChargeShardedIndexBuild(2000, 4); err != nil {
		t.Fatal(err)
	}
	if sharded.Units() >= whole.Units() {
		t.Errorf("4-way sharded build charged %d units, whole build %d — parallel build must be cheaper",
			sharded.Units(), whole.Units())
	}
	// Per-shard overhead is charged even for empty shards.
	m := NewMeter()
	if err := m.ChargeShardedIndexBuild(0, 3); err != nil {
		t.Fatal(err)
	}
	if want := int64(ShardOverheadUnits*3 + 1); m.Units() != want {
		t.Errorf("empty sharded build charged %d units, want %d", m.Units(), want)
	}
	// Budgets abort the build like any other charge.
	m2 := NewMeter()
	m2.SetBudget(2)
	if err := m2.ChargeShardedIndexBuild(IndexBuildLinesPerUnit*100, 8); !errors.Is(err, ErrTimeout) {
		t.Errorf("sharded build should respect the budget, got %v", err)
	}
}

func TestChargeShardMerge(t *testing.T) {
	m := NewMeter()
	if err := m.ChargeShardMerge(0); err != nil {
		t.Fatal(err)
	}
	if m.Units() != 1 {
		t.Errorf("zero merge should still cost 1, got %d", m.Units())
	}
	if ShardMergePostingsPerUnit <= PostingsPerUnit {
		t.Errorf("merging (%d/unit) should be cheaper than postings visits (%d/unit)",
			ShardMergePostingsPerUnit, PostingsPerUnit)
	}
}

func TestChargeIndexCacheLoad(t *testing.T) {
	lines := 100000
	build := NewMeter()
	if err := build.ChargeIndexBuild(lines); err != nil {
		t.Fatal(err)
	}
	load := NewMeter()
	if err := load.ChargeIndexCacheLoad(lines); err != nil {
		t.Fatal(err)
	}
	if load.Units()*5 >= build.Units() {
		t.Errorf("cache load charged %d units vs build %d — load must be much cheaper",
			load.Units(), build.Units())
	}
	m := NewMeter()
	if err := m.ChargeIndexCacheLoad(0); err != nil {
		t.Fatal(err)
	}
	if m.Units() != 1 {
		t.Errorf("zero-line load should still cost 1, got %d", m.Units())
	}
}

func TestChargeDumpCacheLoad(t *testing.T) {
	lines := 100000
	scan := NewMeter()
	if err := scan.ChargeLines(lines); err != nil {
		t.Fatal(err)
	}
	load := NewMeter()
	if err := load.ChargeDumpCacheLoad(lines); err != nil {
		t.Fatal(err)
	}
	if load.Units()*5 >= scan.Units() {
		t.Errorf("dump load charged %d units vs disassembly %d — load must be much cheaper",
			load.Units(), scan.Units())
	}
	idx := NewMeter()
	if err := idx.ChargeIndexCacheLoad(lines); err != nil {
		t.Fatal(err)
	}
	if load.Units() > idx.Units() {
		t.Errorf("dump load (%d units) should not cost more than the index-section decode (%d units)",
			load.Units(), idx.Units())
	}
	m := NewMeter()
	if err := m.ChargeDumpCacheLoad(0); err != nil {
		t.Fatal(err)
	}
	if m.Units() != 1 {
		t.Errorf("zero-line load should still cost 1, got %d", m.Units())
	}
}

func TestChargeBundleStoreLoad(t *testing.T) {
	lines := 100000
	disk := NewMeter()
	if err := disk.ChargeDumpCacheLoad(lines); err != nil {
		t.Fatal(err)
	}
	store := NewMeter()
	if err := store.ChargeBundleStoreLoad(lines); err != nil {
		t.Fatal(err)
	}
	if store.Units() >= disk.Units() {
		t.Errorf("store load charged %d units vs disk dump load %d — memory must be cheaper",
			store.Units(), disk.Units())
	}
	m := NewMeter()
	if err := m.ChargeBundleStoreLoad(0); err != nil {
		t.Fatal(err)
	}
	if m.Units() != 1 {
		t.Errorf("zero-line store load should still cost 1, got %d", m.Units())
	}
	// The in-memory rate must respect the overall cheapness ordering:
	// disassembly > disk dump load > store load.
	scan := NewMeter()
	if err := scan.ChargeLines(lines); err != nil {
		t.Fatal(err)
	}
	if store.Units()*10 >= scan.Units() {
		t.Errorf("store load %d units vs disassembly %d — must be an order cheaper",
			store.Units(), scan.Units())
	}
}

func TestChargeParallelLookup(t *testing.T) {
	// Fanning out must never charge more than visiting the same postings
	// sequentially would, once the lists are big enough to matter.
	const perShard, shards = 4000, 4
	seq := NewMeter()
	if err := seq.ChargePostings(perShard * shards); err != nil {
		t.Fatal(err)
	}
	par := NewMeter()
	if err := par.ChargeParallelLookup(perShard); err != nil {
		t.Fatal(err)
	}
	if par.Units() >= seq.Units() {
		t.Errorf("parallel lookup charged %d units, sequential visit %d — fan-out must be cheaper on hot tokens",
			par.Units(), seq.Units())
	}
	// The budget still applies to the fan-out overhead itself.
	m := NewMeterWithTimeout(UnitsToMinutes(0))
	m.SetBudget(1)
	if err := m.ChargeParallelLookup(1 << 20); err != ErrTimeout {
		t.Errorf("exhausted budget should abort the parallel lookup, got %v", err)
	}
}

// TestCancelCheckpoint pins the cooperative-cancellation contract: once
// the poll turns true, Charge fails within one checkpoint
// (CancelCheckpointUnits of additional work), the cancellation latches,
// and the units charged up to the checkpoint are kept.
func TestCancelCheckpoint(t *testing.T) {
	canceled := false
	m := NewMeter()
	m.SetCancel(func() bool { return canceled })

	// Before the flag flips the meter charges freely and polls on the
	// checkpoint cadence.
	for i := 0; i < 100; i++ {
		if err := m.Charge(1); err != nil {
			t.Fatalf("charge %d with cancel=false: %v", i, err)
		}
	}
	if m.CancelPolls() == 0 {
		t.Fatal("no cancellation polls over 100 units")
	}
	if m.Canceled() {
		t.Fatal("meter latched canceled before the poll turned true")
	}

	canceled = true
	flipAt := m.Units()
	var err error
	charges := 0
	for err == nil {
		err = m.Charge(1)
		charges++
		if charges > CancelCheckpointUnits+1 {
			break
		}
	}
	if err != ErrCanceled {
		t.Fatalf("meter did not cancel within one checkpoint (%d charges): %v", charges, err)
	}
	if got := m.Units() - flipAt; got > CancelCheckpointUnits {
		t.Fatalf("charged %d units past the cancel request, checkpoint is %d", got, CancelCheckpointUnits)
	}
	// Latched: every later charge keeps failing, without re-polling.
	polls := m.CancelPolls()
	if err := m.Charge(1); err != ErrCanceled {
		t.Fatalf("charge after latch = %v, want ErrCanceled", err)
	}
	if m.CancelPolls() != polls {
		t.Fatal("latched meter re-polled the cancel function")
	}
	if !m.Canceled() {
		t.Fatal("Canceled() must report the latch")
	}
}

// TestCancelBigChargeCrossesCheckpoint pins that one oversized charge (a
// whole disassembly pass) still observes the cancel at its end: the
// checkpoint bounds polling frequency, not charge granularity.
func TestCancelBigChargeCrossesCheckpoint(t *testing.T) {
	m := NewMeter()
	m.SetCancel(func() bool { return true })
	if err := m.Charge(10 * CancelCheckpointUnits); err != ErrCanceled {
		t.Fatalf("big charge = %v, want ErrCanceled", err)
	}
}

// TestCancelDoesNotMaskTimeout pins that a meter without a cancel poll
// behaves exactly as before, and that cancellation takes priority over
// the budget only when the poll is actually true.
func TestCancelDoesNotMaskTimeout(t *testing.T) {
	m := NewMeter()
	m.SetBudget(10)
	m.SetCancel(func() bool { return false })
	if err := m.Charge(100); err != ErrTimeout {
		t.Fatalf("budget with false cancel poll = %v, want ErrTimeout", err)
	}
}

func TestCheckpointObserver(t *testing.T) {
	m := NewMeter()
	canceled := false
	m.SetCancel(func() bool { return canceled })
	var samples [][2]int64
	m.SetCheckpointObserver(func(units, delta int64) {
		samples = append(samples, [2]int64{units, delta})
	})
	for i := 0; i < 3; i++ {
		if err := m.Charge(CancelCheckpointUnits); err != nil {
			t.Fatalf("Charge: %v", err)
		}
	}
	want := [][2]int64{{32, 32}, {64, 32}, {96, 32}}
	if len(samples) != len(want) {
		t.Fatalf("samples = %v, want %v", samples, want)
	}
	for i := range want {
		if samples[i] != want[i] {
			t.Fatalf("samples = %v, want %v", samples, want)
		}
	}
	// The observer runs before the cancel poll, so the aborting
	// checkpoint's sample is still recorded.
	canceled = true
	if err := m.Charge(CancelCheckpointUnits); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if len(samples) != 4 || samples[3] != [2]int64{128, 32} {
		t.Fatalf("aborting checkpoint not observed: %v", samples)
	}
	// Observing must not move the poll counter: it counts cancellation
	// polls, and each checkpoint above ran exactly one.
	if m.CancelPolls() != 4 {
		t.Fatalf("CancelPolls = %d, want 4", m.CancelPolls())
	}
}

func TestObserverOnlyMeterDoesNotCountPolls(t *testing.T) {
	m := NewMeter()
	calls := 0
	m.SetCheckpointObserver(func(units, delta int64) { calls++ })
	if err := m.Charge(CancelCheckpointUnits * 2); err != nil {
		t.Fatalf("Charge: %v", err)
	}
	if calls != 1 {
		t.Fatalf("observer calls = %d, want 1", calls)
	}
	if m.CancelPolls() != 0 {
		t.Fatalf("CancelPolls = %d, want 0 (no cancel poll installed)", m.CancelPolls())
	}
}
