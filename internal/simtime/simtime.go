// Package simtime provides the deterministic work meter that stands in for
// wall-clock measurement in the paper's evaluation. Every analysis pass
// charges units for the work it performs (IR statements visited, dump lines
// scanned, call-graph edges resolved); a calibration constant maps units to
// "simulated minutes" on the paper's i7-4790 scale, and budgets reproduce
// the 300-minute timeout regime of Sec. VI-A.
//
// Absolute times on a synthetic substrate are meaningless; ratios and
// distribution shapes (speedup factors, timeout rates, histogram buckets)
// are calibration-independent, which is what EXPERIMENTS.md compares.
package simtime

import (
	"errors"
	"fmt"
)

// Calibration constants. See DESIGN.md Sec. 5.
const (
	// UnitsPerMinute maps work units to simulated minutes: the throughput
	// an Amandroid-class analysis achieves on the paper's hardware.
	UnitsPerMinute = 25000

	// LinesPerUnit is how many dump text lines one work unit scans. Text
	// search is much cheaper per element than semantic IR analysis.
	LinesPerUnit = 40

	// IndexBuildLinesPerUnit is how many dump lines one work unit
	// tokenizes while building the inverted search index. Tokenization
	// extracts and hashes every operand token, so it is ~2x the cost of a
	// plain substring scan — paid once per app, after which commands
	// resolve from postings.
	IndexBuildLinesPerUnit = 20

	// PostingsPerUnit is how many inverted-index postings one work unit
	// visits. A posting points straight at a candidate line, so visiting
	// one is much cheaper than scanning a line of text for a match.
	PostingsPerUnit = 400

	// ShardOverheadUnits is the fixed coordination cost charged per shard
	// when a sharded index is built: dispatching the shard to a worker and
	// publishing its postings.
	ShardOverheadUnits = 2

	// ShardMergePostingsPerUnit is how many postings one work unit merges
	// when a lookup combines per-shard lists. Merging streams two ascending
	// lists — cheaper than the candidate-verify visit each posting also
	// pays, pricier than free.
	ShardMergePostingsPerUnit = 800

	// IndexCacheLoadLinesPerUnit is how many dump lines' worth of index one
	// work unit deserializes from the persistent cache. Loading postings
	// back is a flat decode — ~10x cheaper than tokenizing the same lines,
	// which is the entire point of the cache.
	IndexCacheLoadLinesPerUnit = 200

	// DumpCacheLoadLinesPerUnit is how many dump text lines one work unit
	// reads back from the persistent bundle's dump section. The dump is
	// stored pre-rendered, so a warm start is a sequential read plus a
	// newline split — ~10x cheaper than the per-line formatting pass of
	// disassembly (LinesPerUnit), and cheaper than the index-section decode
	// too (no postings maps to rebuild). A fully warm engine run charges
	// this instead of ChargeLines(LineCount) and nothing else for
	// preprocessing.
	DumpCacheLoadLinesPerUnit = 400

	// BundleStoreLoadLinesPerUnit is how many dump text lines' worth of
	// bundle one work unit materializes from the in-memory content-addressed
	// store. A store hit skips the disk read that the persistent-cache path
	// pays — only the section decode remains — so it is priced at ~2x the
	// on-disk dump-cache load rate. The batch service charges this for every
	// re-analysis of a known app fingerprint.
	BundleStoreLoadLinesPerUnit = 800

	// ParallelLookupOverheadUnits is the fixed fan-out coordination cost of
	// one shard-parallel postings lookup: dispatching the per-shard fetches
	// to the worker pool and collecting the lists back in shard order. Flat
	// (never per shard) so tiny shard counts are not penalized; the gate
	// that only hot tokens fan out keeps the overhead amortized.
	ParallelLookupOverheadUnits = 1

	// CancelCheckpointUnits is how often a meter with a cancellation poll
	// installed re-checks it: at most this many units of work are charged
	// between two polls, so a cooperatively canceled analysis stops within
	// one checkpoint of the cancel request. Small enough that even cheap
	// passes (constprop charges one unit per SSG statement) notice a
	// cancel promptly; large enough that the poll itself — one atomic
	// load in the scheduler's closure — never shows up in profiles.
	CancelCheckpointUnits = 32

	// ShardDiffClassesPerUnit is how many class-span fingerprints one work
	// unit compares when diffing the shard manifests of two app versions.
	// A manifest entry is a precomputed 64-bit hash plus a name, so the
	// diff is a map probe per class — far cheaper than touching any dump
	// line. Charged once per delta run over the union of both versions'
	// class counts.
	ShardDiffClassesPerUnit = 128

	// DeltaReuseLinesPerUnit is how many dump text lines' worth of settled
	// analysis one work unit carries over from the previous version's
	// report during a delta run. Reuse copies a finished sink verdict and
	// revalidates its footprint against the manifest diff — no search, no
	// slicing, no propagation — so it is priced at ~2x the bundle-store
	// load rate: cheaper than re-reading the dump, because only the
	// footprint's classes are touched.
	DeltaReuseLinesPerUnit = 1600

	// SettledLookupUnits is the flat charged cost of serving an already-
	// settled (app fingerprint, options fingerprint) pair from the report
	// store: two hash computations and one map probe — O(1), independent
	// of app size, sink count or report length. This is the read path of
	// the whole-app study's write-once/read-many deployment: every
	// resubmission of a settled job charges this instead of an engine
	// run, so a 10x resubmission storm costs well under 1% of the cold
	// corpus (the benchgate settled-storm leg gates the ceiling).
	SettledLookupUnits = 1

	// JournalAppendUnits is the charged cost of appending one record to
	// the control plane's job journal: an in-memory encode plus a
	// buffered sequential write, tiny next to any analysis pass. The
	// scheduler charges it on a control meter separate from the per-job
	// meters, so the benchgate fair-dispatch leg can pin journal overhead
	// as a fraction of analysis work.
	JournalAppendUnits = 1

	// TimeoutMinutes is the per-app analysis timeout of the paper's
	// evaluation (Sec. VI-A: 300 minutes).
	TimeoutMinutes = 300

	// LeaseTTLUnits is the fleet coordinator's per-job lease time-to-live
	// on the fleet-global clock (which advances by every node's charged
	// work units). A worker node renews its job's lease at every meter
	// heartbeat, so a live node keeps its lease fresh; a node that dies
	// or goes mute stops renewing, its lease crosses the TTL and the
	// coordinator fences the node and re-dispatches the job. The TTL
	// must be comfortably larger than the largest single meter charge
	// times the node count — between one node's two renewals the global
	// clock moves by everything the whole fleet charged in that window —
	// and small enough that the charged detection latency stays a sliver
	// of a real analysis (an average bench app is ~2-20k units). The
	// benchgate fleet-chaos leg gates the resulting retry/handoff
	// overhead under 10% of charged analysis work.
	LeaseTTLUnits = 512

	// HandoffUnits is the flat charged cost of one journal-backed job
	// handoff: the coordinator replays the job's submit record, re-queues
	// it at the front of its tenant's queue and appends a handoff record.
	// Control-plane work, priced like a few journal appends.
	HandoffUnits = 8

	// RetryBackoffUnits is the base re-dispatch backoff charged after a
	// lease expiry, doubled per lost attempt of the same job (16, 32,
	// 64, ...): the coordinator's deliberate pause before handing a
	// twice-lost job to yet another node.
	RetryBackoffUnits = 16

	// RemoteFetchUnits is the charged cost of fetching a bundle from
	// another node's store partition under consistent-hash placement: a
	// request/response hop instead of a local map probe. Flat — the
	// bundle bytes themselves are already priced by the engine's bundle
	// load rate; this is only the placement detour.
	RemoteFetchUnits = 4

	// StealUnits is the flat charged cost of dispatching one stolen
	// sink chunk: the coordinator fences the victim's range, appends a
	// steal record and hands the chunk to the idle node. Control-plane
	// work priced like a handoff; the thief's own warm bundle load,
	// remote fetch detour and sink location are charged separately by
	// its engine run — together they are the steal overhead the
	// benchgate heavy-tail leg gates under 10% of charged work.
	StealUnits = 8

	// StealMinSinks is the default minimum number of unstarted sinks a
	// running job must still have before an idle node may steal from it
	// (service.Config.StealMinSinks overrides). Below it the remaining
	// tail is cheaper to finish in place than to re-locate on a thief.
	StealMinSinks = 8

	// StealAfterUnits is the default charged-work threshold a job's
	// current attempt must pass before it becomes a steal victim
	// (service.Config.StealAfterUnits overrides): stealing is for the
	// heavy tail, and a job that has charged this much while other
	// nodes sit idle has proven itself the tail. Roughly the cost of a
	// small bench app, so light jobs finish in place.
	StealAfterUnits = 256
)

// ErrTimeout is returned by Charge when the budget is exhausted — the
// analogue of Amandroid's 300-minute timeout kills.
var ErrTimeout = errors.New("simtime: analysis budget exhausted (timeout)")

// ErrCanceled is returned by Charge once the meter's cancellation poll
// reports true: the analysis was killed from outside (Scheduler.Cancel of
// a running job), not by its own budget. Distinct from ErrTimeout so
// engine paths that convert budget exhaustion into a timed-out report
// never swallow a cancellation — it propagates out of Analyze as an
// error.
var ErrCanceled = errors.New("simtime: analysis canceled")

// Meter accumulates work units, optionally against a budget.
type Meter struct {
	units  int64
	budget int64 // 0 means unlimited

	// Cooperative cancellation (SetCancel) and the fleet heartbeat
	// (SetHeartbeat). lastPoll is the unit count at the previous
	// checkpoint; canceled latches the first true poll so every later
	// Charge keeps failing without re-polling.
	cancel   func() bool
	beat     func(delta int64) bool
	observer func(units, delta int64)
	lastPoll int64
	polls    int64
	canceled bool
}

// NewMeter returns an unlimited meter.
func NewMeter() *Meter { return &Meter{} }

// NewMeterWithTimeout returns a meter that times out after the given number
// of simulated minutes.
func NewMeterWithTimeout(minutes float64) *Meter {
	return &Meter{budget: MinutesToUnits(minutes)}
}

// SetBudget sets the unit budget; zero disables the budget.
func (m *Meter) SetBudget(units int64) { m.budget = units }

// SetCancel installs a cooperative cancellation poll: Charge re-checks it
// every CancelCheckpointUnits of work and returns ErrCanceled once it
// reports true. The poll must be cheap and safe to call from the analysis
// goroutine (the scheduler passes an atomic-flag read); nil removes it.
// Cancellation latches — after the first true poll every later Charge
// fails — so analysis layers that absorb one error cannot resume work.
func (m *Meter) SetCancel(poll func() bool) {
	m.cancel = poll
	m.lastPoll = m.units
}

// SetHeartbeat installs the fleet liveness hook: at every checkpoint
// (the cancellation poll's cadence) beat receives the units charged
// since the previous checkpoint — the node's progress in simulated
// time — and returning true aborts the analysis with ErrCanceled,
// exactly like a cancellation. The delta (not a fixed interval) is
// what keeps the fleet clock honest: a single large charge (a whole
// index build, a long disassembly) advances it by the work actually
// done, so lease TTLs measure charged work, not checkpoint counts.
// nil removes the hook.
func (m *Meter) SetHeartbeat(beat func(delta int64) bool) {
	m.beat = beat
	m.lastPoll = m.units
}

// SetCheckpointObserver installs a passive observability hook: at every
// checkpoint (the cancellation poll's cadence) obs receives the meter's
// cumulative units and the delta since the previous checkpoint, before
// the heartbeat and cancellation polls run. The observer never charges
// and never aborts — it is how the tracer samples a job's charged-units
// curve at exactly the instants the fleet already heartbeats, so
// enabling tracing cannot move a single checkpoint. nil removes it.
//
// Installing an observer on a meter with no cancel poll and no
// heartbeat would turn on checkpointing (and its poll counter) where a
// plain run has none; callers that must stay poll-identical to an
// unobserved run should only observe meters that already poll.
func (m *Meter) SetCheckpointObserver(obs func(units, delta int64)) {
	m.observer = obs
	if m.cancel == nil && m.beat == nil {
		m.lastPoll = m.units
	}
}

// Canceled reports whether a cancellation poll has latched. Layers with
// natural abort points (bcsearch before a command, constprop at method
// entry) check it directly so they stop even between charge checkpoints.
func (m *Meter) Canceled() bool { return m.canceled }

// CancelPolls returns how many times the cancellation poll ran — the
// checkpoint counter surfaced by the service stats.
func (m *Meter) CancelPolls() int64 { return m.polls }

// Charge adds n work units. It returns ErrTimeout once the cumulative work
// exceeds the budget, and ErrCanceled once the cancellation poll (if any)
// reports true at a checkpoint. The overage is still recorded so reports
// can show how far past the deadline the analysis was killed; a canceled
// analysis likewise keeps the units of the work it did before the
// checkpoint — cancellation charges only work actually performed.
func (m *Meter) Charge(n int64) error {
	if n < 0 {
		return fmt.Errorf("simtime: negative charge %d", n)
	}
	m.units += n
	if m.canceled {
		return ErrCanceled
	}
	if (m.cancel != nil || m.beat != nil || m.observer != nil) && m.units-m.lastPoll >= CancelCheckpointUnits {
		delta := m.units - m.lastPoll
		m.lastPoll = m.units
		if m.cancel != nil || m.beat != nil {
			m.polls++
		}
		if m.observer != nil {
			m.observer(m.units, delta)
		}
		if m.beat != nil && m.beat(delta) {
			m.canceled = true
			return ErrCanceled
		}
		if m.cancel != nil && m.cancel() {
			m.canceled = true
			return ErrCanceled
		}
	}
	if m.budget > 0 && m.units > m.budget {
		return ErrTimeout
	}
	return nil
}

// ChargeLines charges for scanning n dump text lines.
func (m *Meter) ChargeLines(n int) error {
	if n <= 0 {
		return m.Charge(1)
	}
	return m.Charge(int64(n/LinesPerUnit) + 1)
}

// ChargeIndexBuild charges for tokenizing n dump lines into the inverted
// search index (a one-time per-app cost on the indexed backend).
func (m *Meter) ChargeIndexBuild(n int) error {
	if n <= 0 {
		return m.Charge(1)
	}
	return m.Charge(int64(n/IndexBuildLinesPerUnit) + 1)
}

// ChargeShardedIndexBuild charges for building a sharded index whose
// largest shard tokenizes maxShardLines dump lines. Shards build in
// parallel, so the tokenization charge is the critical path (the largest
// shard) rather than the whole dump; each shard additionally pays a fixed
// coordination overhead. The charge depends only on the shard plan — never
// on worker count or machine — so simulated time stays deterministic.
func (m *Meter) ChargeShardedIndexBuild(maxShardLines, shards int) error {
	if shards < 1 {
		shards = 1
	}
	units := int64(ShardOverheadUnits * shards)
	if maxShardLines > 0 {
		units += int64(maxShardLines / IndexBuildLinesPerUnit)
	}
	return m.Charge(units + 1)
}

// ChargeShardMerge charges for merging n postings across shard lists
// during a lazy sharded lookup.
func (m *Meter) ChargeShardMerge(n int) error {
	if n <= 0 {
		return m.Charge(1)
	}
	return m.Charge(int64(n/ShardMergePostingsPerUnit) + 1)
}

// ChargeIndexCacheLoad charges for deserializing a persistent index cache
// covering n dump lines — the warm-start path that replaces tokenization.
func (m *Meter) ChargeIndexCacheLoad(n int) error {
	if n <= 0 {
		return m.Charge(1)
	}
	return m.Charge(int64(n/IndexCacheLoadLinesPerUnit) + 1)
}

// ChargeDumpCacheLoad charges for reading n dump text lines back from the
// persistent bundle's dump section — the fully-warm path that replaces the
// disassembly pass entirely.
func (m *Meter) ChargeDumpCacheLoad(n int) error {
	if n <= 0 {
		return m.Charge(1)
	}
	return m.Charge(int64(n/DumpCacheLoadLinesPerUnit) + 1)
}

// ChargeBundleStoreLoad charges for materializing a bundle covering n dump
// text lines from the in-memory content-addressed store — the batch-service
// warm path that replaces both the disk read and the disassembly pass.
func (m *Meter) ChargeBundleStoreLoad(n int) error {
	if n <= 0 {
		return m.Charge(1)
	}
	return m.Charge(int64(n/BundleStoreLoadLinesPerUnit) + 1)
}

// ChargeShardDiff charges for diffing two shard manifests covering n class
// spans in total (union of both versions). The diff compares precomputed
// per-class fingerprints, so the cost scales with class count, not lines.
func (m *Meter) ChargeShardDiff(n int) error {
	if n <= 0 {
		return m.Charge(1)
	}
	return m.Charge(int64(n/ShardDiffClassesPerUnit) + 1)
}

// ChargeDeltaReuse charges for carrying over settled analysis covering n
// dump text lines from a prior version's report — the delta path that
// replaces search, slicing and propagation for sinks whose footprint
// touches only unchanged classes.
func (m *Meter) ChargeDeltaReuse(n int) error {
	if n <= 0 {
		return m.Charge(1)
	}
	return m.Charge(int64(n/DeltaReuseLinesPerUnit) + 1)
}

// ChargeSteal charges the coordinator-side cost of dispatching one
// stolen sink chunk to an idle fleet node — fencing the victim's range,
// journaling the steal record and handing the chunk over. The fleet
// coordinator advances its global clock by the same constant; this
// method is the metered form for harnesses that account steal overhead
// on a meter.
func (m *Meter) ChargeSteal() error {
	return m.Charge(StealUnits)
}

// ChargeSettledLookup charges for answering a resubmission of a settled
// (app, options) pair from the content-addressed report store — the O(1)
// read path that replaces disassembly, index builds and the engine run
// entirely.
func (m *Meter) ChargeSettledLookup() error {
	return m.Charge(SettledLookupUnits)
}

// ChargeParallelLookup charges for a shard-parallel postings lookup whose
// largest per-shard list holds maxShardPostings entries. The per-shard
// fetches run concurrently, so the visit charge is the critical path (the
// hottest shard) plus a flat fan-out overhead; the cross-shard merge is
// charged separately via ChargeShardMerge, exactly as on the lazy
// sequential path. The charge depends only on postings sizes — never on
// worker count — so simulated time stays deterministic.
func (m *Meter) ChargeParallelLookup(maxShardPostings int) error {
	if err := m.Charge(ParallelLookupOverheadUnits); err != nil {
		return err
	}
	return m.ChargePostings(maxShardPostings)
}

// ChargePostings charges for visiting n inverted-index postings.
func (m *Meter) ChargePostings(n int) error {
	if n <= 0 {
		return m.Charge(1)
	}
	return m.Charge(int64(n/PostingsPerUnit) + 1)
}

// Units returns the accumulated work units.
func (m *Meter) Units() int64 { return m.units }

// Minutes returns the accumulated work in simulated minutes.
func (m *Meter) Minutes() float64 { return UnitsToMinutes(m.units) }

// Exhausted reports whether the meter has passed its budget.
func (m *Meter) Exhausted() bool { return m.budget > 0 && m.units > m.budget }

// MinutesToUnits converts simulated minutes to work units. Any positive
// duration yields at least one unit so tiny budgets still enforce a limit.
func MinutesToUnits(minutes float64) int64 {
	units := int64(minutes * UnitsPerMinute)
	if units == 0 && minutes > 0 {
		return 1
	}
	return units
}

// UnitsToMinutes converts work units to simulated minutes.
func UnitsToMinutes(units int64) float64 { return float64(units) / UnitsPerMinute }
