// Package simtime provides the deterministic work meter that stands in for
// wall-clock measurement in the paper's evaluation. Every analysis pass
// charges units for the work it performs (IR statements visited, dump lines
// scanned, call-graph edges resolved); a calibration constant maps units to
// "simulated minutes" on the paper's i7-4790 scale, and budgets reproduce
// the 300-minute timeout regime of Sec. VI-A.
//
// Absolute times on a synthetic substrate are meaningless; ratios and
// distribution shapes (speedup factors, timeout rates, histogram buckets)
// are calibration-independent, which is what EXPERIMENTS.md compares.
package simtime

import (
	"errors"
	"fmt"
)

// Calibration constants. See DESIGN.md Sec. 5.
const (
	// UnitsPerMinute maps work units to simulated minutes: the throughput
	// an Amandroid-class analysis achieves on the paper's hardware.
	UnitsPerMinute = 25000

	// LinesPerUnit is how many dump text lines one work unit scans. Text
	// search is much cheaper per element than semantic IR analysis.
	LinesPerUnit = 40

	// IndexBuildLinesPerUnit is how many dump lines one work unit
	// tokenizes while building the inverted search index. Tokenization
	// extracts and hashes every operand token, so it is ~2x the cost of a
	// plain substring scan — paid once per app, after which commands
	// resolve from postings.
	IndexBuildLinesPerUnit = 20

	// PostingsPerUnit is how many inverted-index postings one work unit
	// visits. A posting points straight at a candidate line, so visiting
	// one is much cheaper than scanning a line of text for a match.
	PostingsPerUnit = 400

	// TimeoutMinutes is the per-app analysis timeout of the paper's
	// evaluation (Sec. VI-A: 300 minutes).
	TimeoutMinutes = 300
)

// ErrTimeout is returned by Charge when the budget is exhausted — the
// analogue of Amandroid's 300-minute timeout kills.
var ErrTimeout = errors.New("simtime: analysis budget exhausted (timeout)")

// Meter accumulates work units, optionally against a budget.
type Meter struct {
	units  int64
	budget int64 // 0 means unlimited
}

// NewMeter returns an unlimited meter.
func NewMeter() *Meter { return &Meter{} }

// NewMeterWithTimeout returns a meter that times out after the given number
// of simulated minutes.
func NewMeterWithTimeout(minutes float64) *Meter {
	return &Meter{budget: MinutesToUnits(minutes)}
}

// SetBudget sets the unit budget; zero disables the budget.
func (m *Meter) SetBudget(units int64) { m.budget = units }

// Charge adds n work units. It returns ErrTimeout once the cumulative work
// exceeds the budget. The overage is still recorded so reports can show how
// far past the deadline the analysis was killed.
func (m *Meter) Charge(n int64) error {
	if n < 0 {
		return fmt.Errorf("simtime: negative charge %d", n)
	}
	m.units += n
	if m.budget > 0 && m.units > m.budget {
		return ErrTimeout
	}
	return nil
}

// ChargeLines charges for scanning n dump text lines.
func (m *Meter) ChargeLines(n int) error {
	if n <= 0 {
		return m.Charge(1)
	}
	return m.Charge(int64(n/LinesPerUnit) + 1)
}

// ChargeIndexBuild charges for tokenizing n dump lines into the inverted
// search index (a one-time per-app cost on the indexed backend).
func (m *Meter) ChargeIndexBuild(n int) error {
	if n <= 0 {
		return m.Charge(1)
	}
	return m.Charge(int64(n/IndexBuildLinesPerUnit) + 1)
}

// ChargePostings charges for visiting n inverted-index postings.
func (m *Meter) ChargePostings(n int) error {
	if n <= 0 {
		return m.Charge(1)
	}
	return m.Charge(int64(n/PostingsPerUnit) + 1)
}

// Units returns the accumulated work units.
func (m *Meter) Units() int64 { return m.units }

// Minutes returns the accumulated work in simulated minutes.
func (m *Meter) Minutes() float64 { return UnitsToMinutes(m.units) }

// Exhausted reports whether the meter has passed its budget.
func (m *Meter) Exhausted() bool { return m.budget > 0 && m.units > m.budget }

// MinutesToUnits converts simulated minutes to work units. Any positive
// duration yields at least one unit so tiny budgets still enforce a limit.
func MinutesToUnits(minutes float64) int64 {
	units := int64(minutes * UnitsPerMinute)
	if units == 0 && minutes > 0 {
		return 1
	}
	return units
}

// UnitsToMinutes converts work units to simulated minutes.
func UnitsToMinutes(units int64) float64 { return float64(units) / UnitsPerMinute }
