// Package wholeapp implements the whole-app baseline analyzer that the
// paper compares BackDroid against: an Amandroid-style analysis that first
// builds a lifecycle-aware call graph from all components and then runs an
// inter-procedural constant-propagation fixpoint over the whole app, plus a
// FlowDroid-style CallGraphOnly mode for the paper's Fig. 1 experiment.
//
// The baseline deliberately reproduces the documented properties that the
// paper's accuracy comparison hinges on:
//
//   - entry points come from ALL component classes found in the dex, not
//     only manifest-registered ones (the source of Amandroid's false
//     positives in Sec. VI-C);
//   - packages on the liblist are skipped entirely (the source of its
//     skipped-library false negatives);
//   - implicit flows use a pre-defined mapping table that covers
//     Thread.start()->run() but, like Amandroid, misses
//     Executor.execute()->run(), AsyncTask.execute()->doInBackground() and
//     setOnClickListener()->onClick() (the unrobust-handling false
//     negatives);
//   - a translation failure anywhere in reachable code aborts the whole
//     analysis (the occasional whole-app errors), whereas BackDroid only
//     cares about code on its targeted paths;
//   - the analysis halts at a simulated timeout with no results.
package wholeapp

import (
	"fmt"
	"math"
	"strings"
	"time"

	"backdroid/internal/android"
	"backdroid/internal/apk"
	"backdroid/internal/cha"
	"backdroid/internal/dex"
	"backdroid/internal/ir"
	"backdroid/internal/manifest"
	"backdroid/internal/simtime"
)

// Mode selects how much of the pipeline runs.
type Mode int

// Modes.
const (
	// FullAnalysis builds the call graph and runs whole-app dataflow
	// (Amandroid-style).
	FullAnalysis Mode = iota + 1
	// CallGraphOnly stops after call graph construction (FlowDroid-style,
	// for the Fig. 1 experiment).
	CallGraphOnly
)

// Options configures the baseline.
type Options struct {
	Mode           Mode
	TimeoutMinutes float64  // default 300 (paper Sec. VI-A)
	LibList        []string // package prefixes skipped by the analysis
	// MaxPasses bounds the dataflow fixpoint iterations.
	MaxPasses int
}

// DefaultOptions mirrors the paper's Amandroid configuration.
func DefaultOptions() Options {
	return Options{
		Mode:           FullAnalysis,
		TimeoutMinutes: simtime.TimeoutMinutes,
		LibList:        DefaultLibList(),
		MaxPasses:      6,
	}
}

// DefaultLibList returns package prefixes of popular third-party libraries
// that the baseline skips, standing in for Amandroid's 139-entry
// liblist.txt.
func DefaultLibList() []string {
	return []string{
		"com.google.ads.", "com.google.android.gms.", "com.flurry.",
		"com.facebook.", "com.amazon.", "com.tencent.", "com.heyzap.",
		"com.qihoopay.", "com.unity3d.", "com.chartboost.", "com.inmobi.",
		"com.mopub.", "com.millennialmedia.", "com.tapjoy.", "com.vungle.",
		"com.applovin.", "com.adcolony.", "com.startapp.",
	}
}

// Finding is one detected sink call with its resolved parameter values.
type Finding struct {
	Sink      android.Sink
	Caller    dex.MethodRef
	UnitIndex int
	Values    []string
	Insecure  bool
}

// Stats carries the cost accounting of one run.
type Stats struct {
	WorkUnits       int64
	SimMinutes      float64
	WallTime        time.Duration
	MethodsVisited  int
	CallGraphNodes  int
	CallGraphEdges  int
	FixpointPasses  int
	SkippedLibCalls int
}

// Report is the result of one baseline run.
type Report struct {
	App      string
	Mode     Mode
	TimedOut bool
	// Err records an analysis abort (e.g. a translation failure in
	// reachable code), after which no findings are produced.
	Err      error
	Findings []*Finding
	Stats    Stats
}

// InsecureFindings filters the findings judged insecure.
func (r *Report) InsecureFindings() []*Finding {
	var out []*Finding
	for _, f := range r.Findings {
		if f.Insecure {
			out = append(out, f)
		}
	}
	return out
}

// Analyzer runs the whole-app analysis for one app.
type Analyzer struct {
	app   *apk.App
	opts  Options
	dexf  *dex.File
	prog  *ir.Program
	hier  *cha.Hierarchy
	meter *simtime.Meter
	sinks []android.Sink

	edges        map[string][]dex.MethodRef // caller sig -> callees
	nodes        map[string]dex.MethodRef
	resolveCache map[string][]dex.MethodRef
	stats        Stats
}

// New prepares the analyzer.
func New(app *apk.App, opts Options) (*Analyzer, error) {
	if opts.MaxPasses <= 0 {
		opts.MaxPasses = 6
	}
	merged, err := app.MergedDex()
	if err != nil {
		return nil, fmt.Errorf("wholeapp: %s: %w", app.Name, err)
	}
	meter := simtime.NewMeter()
	if opts.TimeoutMinutes > 0 {
		meter.SetBudget(simtime.MinutesToUnits(opts.TimeoutMinutes))
	}
	return &Analyzer{
		app:          app,
		opts:         opts,
		dexf:         merged,
		prog:         ir.NewProgram(merged),
		hier:         cha.New(merged),
		meter:        meter,
		sinks:        android.DefaultSinks(),
		edges:        make(map[string][]dex.MethodRef),
		nodes:        make(map[string]dex.MethodRef),
		resolveCache: make(map[string][]dex.MethodRef),
	}, nil
}

// Meter exposes the work meter.
func (a *Analyzer) Meter() *simtime.Meter { return a.meter }

// Analyze runs the configured pipeline.
func (a *Analyzer) Analyze() (*Report, error) {
	start := time.Now()
	report := &Report{App: a.app.Name, Mode: a.opts.Mode}
	finish := func() *Report {
		a.stats.WorkUnits = a.meter.Units()
		a.stats.SimMinutes = a.meter.Minutes()
		a.stats.WallTime = time.Since(start)
		a.stats.CallGraphNodes = len(a.nodes)
		report.Stats = a.stats
		return report
	}

	if err := a.buildCallGraph(); err != nil {
		if err == simtime.ErrTimeout {
			report.TimedOut = true
			return finish(), nil
		}
		report.Err = err
		return finish(), nil
	}
	if a.opts.Mode == CallGraphOnly {
		return finish(), nil
	}

	findings, err := a.dataflow()
	if err != nil {
		if err == simtime.ErrTimeout {
			report.TimedOut = true
			return finish(), nil
		}
		report.Err = err
		return finish(), nil
	}
	report.Findings = findings
	return finish(), nil
}

// skippedLib reports whether the class belongs to a liblist package.
func (a *Analyzer) skippedLib(class string) bool {
	for _, p := range a.opts.LibList {
		if strings.HasPrefix(class, p) {
			return true
		}
	}
	return false
}

// entryPoints collects the lifecycle handlers of every component class in
// the dex — registered in the manifest or not (Amandroid's
// over-approximation).
func (a *Analyzer) entryPoints() []dex.MethodRef {
	var out []dex.MethodRef
	for _, c := range a.dexf.Classes() {
		kind, isComp := a.hier.ComponentKind(c.Name)
		if !isComp || a.skippedLib(c.Name) {
			continue
		}
		for _, m := range c.Methods {
			if android.IsLifecycleMethod(kind, m.Ref.Name) && !m.IsAbstract() {
				out = append(out, m.Ref)
			}
		}
	}
	_ = manifest.Activity // manifest kinds via cha; import kept for clarity
	return out
}

// buildCallGraph does the lifecycle-aware CHA call graph construction.
func (a *Analyzer) buildCallGraph() error {
	worklist := a.entryPoints()
	for _, m := range worklist {
		a.nodes[m.SootSignature()] = m
	}
	for len(worklist) > 0 {
		m := worklist[0]
		worklist = worklist[1:]
		body, err := a.prog.Body(m)
		if err != nil {
			// Whole-app analyses abort on malformed reachable code.
			return fmt.Errorf("wholeapp: could not process procedure %s: %w", m.SootSignature(), err)
		}
		if err := a.meter.Charge(int64(len(body.Units))); err != nil {
			return err
		}
		// CallGraphOnly mode models FlowDroid's context-sensitive geomPTA
		// construction (paper Sec. II-C): every dispatch site pays a
		// points-to cost that grows with its target fan-out, unlike the
		// flat CHA edges of the full-analysis mode.
		geomPTA := a.opts.Mode == CallGraphOnly

		sig := m.SootSignature()
		for _, u := range body.Units {
			inv := ir.InvokeOf(u)
			if inv == nil {
				// Static field accesses load the owning class, implicitly
				// running its <clinit>.
				for _, ci := range a.clinitOfFieldAccess(u) {
					a.edges[sig] = append(a.edges[sig], ci)
					key := ci.SootSignature()
					if _, seen := a.nodes[key]; !seen {
						a.nodes[key] = ci
						worklist = append(worklist, ci)
					}
					a.stats.CallGraphEdges++
				}
				continue
			}
			callees := a.resolveCallees(inv)
			if geomPTA && len(callees) > 0 {
				ptsFactor := int64(math.Sqrt(float64(len(callees)))/2) + 1
				if err := a.meter.Charge(int64(len(callees)) * ptsFactor); err != nil {
					return err
				}
			}
			for _, callee := range callees {
				if err := a.meter.Charge(1); err != nil {
					return err
				}
				a.edges[sig] = append(a.edges[sig], callee)
				key := callee.SootSignature()
				if _, seen := a.nodes[key]; !seen {
					a.nodes[key] = callee
					worklist = append(worklist, callee)
				}
				a.stats.CallGraphEdges++
			}
		}
	}
	return nil
}

// clinitOfFieldAccess returns the <clinit> of the class owning a static
// field accessed by the unit, if that class is app code with an
// initializer.
func (a *Analyzer) clinitOfFieldAccess(u ir.Unit) []dex.MethodRef {
	as, ok := u.(*ir.AssignStmt)
	if !ok {
		return nil
	}
	var out []dex.MethodRef
	collect := func(v ir.Value) {
		sf, ok := v.(*ir.StaticFieldRef)
		if !ok || a.skippedLib(sf.Field.Class) {
			return
		}
		if cls := a.dexf.Class(sf.Field.Class); cls != nil {
			if ci := cls.FindMethod("<clinit>"); ci != nil {
				out = append(out, ci.Ref)
			}
		}
	}
	collect(as.LHS)
	collect(as.RHS)
	return out
}

// resolveCalleesCached memoizes resolveCallees per call signature so the
// dataflow fixpoint does not redo CHA resolution every pass.
func (a *Analyzer) resolveCalleesCached(inv *ir.InvokeExpr) []dex.MethodRef {
	key := inv.Kind.Keyword() + inv.Method.SootSignature()
	if inv.Base != nil {
		key += "@" + string(inv.Base.Type)
	}
	if cached, ok := a.resolveCache[key]; ok {
		return cached
	}
	out := a.resolveCallees(inv)
	a.resolveCache[key] = out
	return out
}

// resolveCallees applies CHA dispatch plus the domain-knowledge implicit
// flow table (with Amandroid's gaps).
func (a *Analyzer) resolveCallees(inv *ir.InvokeExpr) []dex.MethodRef {
	ref := inv.Method
	if a.skippedLib(ref.Class) {
		a.stats.SkippedLibCalls++
		return nil
	}

	var out []dex.MethodRef

	if android.IsSystemClass(ref.Class) {
		// Implicit flow domain knowledge: Thread.start() -> run() and
		// TimerTask scheduling. Executor.execute, AsyncTask.execute and
		// setOnClickListener are NOT mapped (the baseline's documented
		// gaps).
		if ref.Class == android.ThreadClass && ref.Name == "start" && inv.Base != nil {
			if m, ok := a.hier.ResolveVirtual(inv.Base.Type.ClassName(), "run", nil); ok {
				out = append(out, m)
			}
		}
		if ref.Class == "java.util.Timer" && (ref.Name == "schedule" || ref.Name == "scheduleAtFixedRate") {
			for _, arg := range inv.Args {
				if l, ok := arg.(*ir.Local); ok && l.Type.IsObject() {
					if m, ok2 := a.hier.ResolveVirtual(l.Type.ClassName(), "run", nil); ok2 {
						out = append(out, m)
					}
				}
			}
		}
		return out
	}

	switch inv.Kind {
	case ir.KindStatic, ir.KindSpecial:
		if a.dexf.Method(ref) != nil {
			out = append(out, ref)
		} else if m, ok := a.hier.ResolveVirtual(ref.Class, ref.Name, ref.Params); ok {
			out = append(out, m)
		}
	case ir.KindSuper:
		if m, ok := a.hier.ResolveVirtual(ref.Class, ref.Name, ref.Params); ok {
			out = append(out, m)
		}
	default: // virtual / interface: CHA fan-out
		if m, ok := a.hier.ResolveVirtual(ref.Class, ref.Name, ref.Params); ok {
			out = append(out, m)
		}
		targets := a.hier.Subclasses(ref.Class)
		if c := a.dexf.Class(ref.Class); c != nil && c.IsInterface() {
			targets = a.hier.Implementers(ref.Class)
		}
		for _, sub := range targets {
			if a.skippedLib(sub) {
				continue
			}
			if a.hier.Declares(sub, ref.Name, ref.Params) {
				out = append(out, ref.WithClass(sub))
			}
		}
	}

	// Class initializer edges: touching a class loads it.
	if cls := a.dexf.Class(ref.Class); cls != nil {
		if ci := cls.FindMethod("<clinit>"); ci != nil {
			out = append(out, ci.Ref)
		}
	}
	return out
}
