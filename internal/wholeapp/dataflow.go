package wholeapp

import (
	"sort"
	"strconv"

	"backdroid/internal/android"
	"backdroid/internal/constprop"
	"backdroid/internal/dex"
	"backdroid/internal/ir"
	"backdroid/internal/vuln"
)

// methodState is the dataflow summary of one reachable method.
type methodState struct {
	in      map[int]*constprop.Fact // parameter index -> incoming facts
	ret     *constprop.Fact
	changed bool
}

// dataflow runs the whole-app inter-procedural constant propagation: a
// summary-based fixpoint over every reachable method. Each pass re-scans
// all reachable bodies; passes repeat until summaries stabilize or
// MaxPasses is hit. This is where whole-app analysis burns its time on
// large apps — exactly the paper's scalability complaint.
func (a *Analyzer) dataflow() ([]*Finding, error) {
	states := make(map[string]*methodState, len(a.nodes))
	globals := make(map[string]*constprop.Fact)
	findings := make(map[string]*Finding)

	sigs := make([]string, 0, len(a.nodes))
	for sig := range a.nodes {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		states[sig] = &methodState{in: make(map[int]*constprop.Fact), ret: constprop.NewFact()}
	}

	for pass := 0; pass < a.opts.MaxPasses; pass++ {
		a.stats.FixpointPasses = pass + 1
		changed := false
		for _, sig := range sigs {
			m := a.nodes[sig]
			body, err := a.prog.Body(m)
			if err != nil {
				return nil, err
			}
			a.stats.MethodsVisited++
			if err := a.evalBody(m, body, states, globals, findings); err != nil {
				return nil, err
			}
			if states[sig].changed {
				states[sig].changed = false
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	out := make([]*Finding, 0, len(findings))
	keys := make([]string, 0, len(findings))
	for k := range findings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, findings[k])
	}
	return out, nil
}

// evalBody evaluates one method intraprocedurally under its current
// summaries, propagating argument facts into callees and recording sink
// findings.
func (a *Analyzer) evalBody(m dex.MethodRef, body *ir.Body, states map[string]*methodState, globals map[string]*constprop.Fact, findings map[string]*Finding) error {
	st := states[m.SootSignature()]
	env := make(map[string]*constprop.Fact, len(body.Locals))

	for idx, u := range body.Units {
		if err := a.meter.Charge(1); err != nil {
			return err
		}
		switch s := u.(type) {
		case *ir.IdentityStmt:
			switch rhs := s.RHS.(type) {
			case *ir.ThisRef:
				env[s.LHS.Name] = constprop.NewFact(constprop.Token{Sig: "this " + rhs.Class})
			case *ir.ParamRef:
				if f, ok := st.in[rhs.Index]; ok {
					env[s.LHS.Name] = f
				} else {
					env[s.LHS.Name] = constprop.NewFact(constprop.Unknown{})
				}
			}

		case *ir.AssignStmt:
			var fact *constprop.Fact
			if inv, ok := s.RHS.(*ir.InvokeExpr); ok {
				f, err := a.evalCall(m, idx, inv, env, states, globals, findings)
				if err != nil {
					return err
				}
				fact = f
			} else {
				fact = a.evalValue(s.RHS, env, globals)
			}
			switch lhs := s.LHS.(type) {
			case *ir.Local:
				env[lhs.Name] = fact
			case *ir.StaticFieldRef:
				sig := lhs.Field.SootSignature()
				if g, ok := globals[sig]; ok {
					before := g.Size()
					g.Merge(fact)
					if g.Size() != before {
						st.changed = true
					}
				} else {
					globals[sig] = fact
					st.changed = true
				}
			case *ir.InstanceFieldRef:
				base := a.evalValue(lhs.Base, env, globals)
				for _, v := range base.Values() {
					if obj, ok := v.(*constprop.Obj); ok {
						obj.Fields[lhs.Field.SootSignature()] = fact
					}
				}
			}

		case *ir.InvokeStmt:
			if _, err := a.evalCall(m, idx, s.Invoke, env, states, globals, findings); err != nil {
				return err
			}

		case *ir.ReturnStmt:
			if s.Val != nil {
				before := st.ret.Size()
				st.ret.Merge(a.evalValue(s.Val, env, globals))
				if st.ret.Size() != before {
					st.changed = true
				}
			}
		}
	}
	return nil
}

// evalCall records findings at sink sites, pushes argument facts into
// callee summaries and returns the merged return summary.
func (a *Analyzer) evalCall(m dex.MethodRef, idx int, inv *ir.InvokeExpr, env map[string]*constprop.Fact, states map[string]*methodState, globals map[string]*constprop.Fact, findings map[string]*Finding) (*constprop.Fact, error) {
	if sink, ok := a.sinkMatch(inv.Method); ok {
		key := m.SootSignature() + "#" + strconv.Itoa(idx)
		f, exists := findings[key]
		if !exists {
			f = &Finding{Sink: sink, Caller: m, UnitIndex: idx}
			findings[key] = f
		}
		if sink.ParamIndex < len(inv.Args) {
			fact := a.evalValue(inv.Args[sink.ParamIndex], env, globals)
			f.Values = fact.Strings()
			f.Insecure = vuln.Judge(sink.Rule, fact.Values())
		}
	}

	ret := constprop.NewFact()
	callees := a.resolveCalleesCached(inv)
	if err := a.meter.Charge(int64(len(callees))); err != nil {
		return nil, err
	}
	for _, callee := range callees {
		calleeState, ok := states[callee.SootSignature()]
		if !ok {
			continue
		}
		for i, arg := range inv.Args {
			fact := a.evalValue(arg, env, globals)
			// Summary merging costs one unit per value per callee — the
			// CHA fan-out times value-set size product that dominates
			// whole-app dataflow on large apps.
			_ = a.meter.Charge(int64(fact.Size()))
			if existing, ok2 := calleeState.in[i]; ok2 {
				before := existing.Size()
				existing.Merge(fact)
				if existing.Size() != before {
					calleeState.changed = true
				}
			} else {
				calleeState.in[i] = constprop.NewFact()
				calleeState.in[i].Merge(fact)
				calleeState.changed = true
			}
		}
		ret.Merge(calleeState.ret)
	}
	if ret.Empty() {
		ret.Add(constprop.Token{Sig: inv.Method.SootSignature() + "()"})
	}
	return ret, nil
}

// evalValue computes intraprocedural facts.
func (a *Analyzer) evalValue(v ir.Value, env map[string]*constprop.Fact, globals map[string]*constprop.Fact) *constprop.Fact {
	switch t := v.(type) {
	case *ir.Local:
		if f, ok := env[t.Name]; ok {
			return f
		}
		return constprop.NewFact(constprop.Unknown{})
	case ir.StringConst:
		return constprop.NewFact(constprop.Str{S: t.V})
	case ir.IntConst:
		return constprop.NewFact(constprop.Num{N: t.V})
	case ir.NullConst:
		return constprop.NewFact(constprop.Null{})
	case ir.ClassConst:
		return constprop.NewFact(constprop.Token{Sig: "class " + t.Class})
	case *ir.StaticFieldRef:
		if android.IsSystemClass(t.Field.Class) {
			return constprop.NewFact(constprop.Token{Sig: t.Field.SootSignature()})
		}
		if f, ok := globals[t.Field.SootSignature()]; ok {
			return f
		}
		return constprop.NewFact(constprop.Unknown{})
	case *ir.InstanceFieldRef:
		base := a.evalValue(t.Base, env, globals)
		out := constprop.NewFact()
		for _, bv := range base.Values() {
			if obj, ok := bv.(*constprop.Obj); ok {
				if f, ok2 := obj.Fields[t.Field.SootSignature()]; ok2 {
					out.Merge(f)
				}
			}
		}
		if out.Empty() {
			out.Add(constprop.Unknown{})
		}
		return out
	case *ir.BinopExpr:
		return a.evalBinop(t, env, globals)
	case *ir.CastExpr:
		return a.evalValue(t.Val, env, globals)
	case *ir.NewExpr:
		return constprop.NewFact(constprop.Token{Sig: "new " + t.Class})
	}
	return constprop.NewFact(constprop.Unknown{})
}

// binopSetCap bounds the value-set size produced by arithmetic on constant
// sets, mirroring the k-limits of real whole-app analyses. The pairwise
// evaluation below is charged per pair: this is the value-set explosion
// that makes whole-app dataflow blow up on constant-diverse apps (the
// Amandroid timeout mechanism).
func (a *Analyzer) evalBinop(b *ir.BinopExpr, env map[string]*constprop.Fact, globals map[string]*constprop.Fact) *constprop.Fact {
	left := a.evalValue(b.Left, env, globals)
	right := a.evalValue(b.Right, env, globals)
	// Saturated operands short-circuit: once a set degraded to Unknown the
	// result is Unknown (and stays cheap). Below saturation the pairwise
	// evaluation is charged per pair — the value-set growth phase whose
	// length depends on how many distinct constants the app's dataflow
	// carries.
	if left.HasUnknown() || right.HasUnknown() {
		_ = a.meter.Charge(int64(left.Size()) + int64(right.Size()))
		return constprop.NewFact(constprop.Unknown{})
	}
	_ = a.meter.Charge(int64(left.Size()) * int64(right.Size()))
	out := constprop.NewFact()
	for _, lv := range left.Values() {
		for _, rv := range right.Values() {
			out.Add(constprop.ApplyBinop(b.Op, lv, rv))
		}
	}
	return out
}

// sinkMatch decides whether an invoke targets a sink API, resolving app
// subclasses of sink classes up the hierarchy (whole-app analyses see
// through this, unlike BackDroid's default text search).
func (a *Analyzer) sinkMatch(ref dex.MethodRef) (android.Sink, bool) {
	for _, sink := range a.sinks {
		if ref.SootSignature() == sink.Method.SootSignature() {
			return sink, true
		}
		if ref.Name != sink.Method.Name || ref.Descriptor() != sink.Method.Descriptor() {
			continue
		}
		if android.IsSystemClass(ref.Class) {
			continue
		}
		// App class that extends the sink's class without redefining the
		// method: the call lands in the framework sink.
		if a.hier.IsSubclassOf(ref.Class, sink.Method.Class) {
			if _, defined := a.hier.ResolveVirtual(ref.Class, ref.Name, ref.Params); !defined {
				return sink, true
			}
		}
	}
	return android.Sink{}, false
}
