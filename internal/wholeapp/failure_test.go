package wholeapp

import (
	"testing"

	"backdroid/internal/android"
	"backdroid/internal/appgen"
	"backdroid/internal/core"
)

// corruptApp generates an app with an insecure sink plus a reachable
// corrupted method (a body that fails IR translation).
func corruptApp(t *testing.T) (*appgen.GroundTruth, *Report, *core.Report) {
	t.Helper()
	app, truth, err := appgen.Generate(appgen.Spec{
		Name:           "com.err.app",
		Seed:           2,
		SizeMB:         1,
		CorruptMethods: 1,
		Sinks: []appgen.SinkSpec{
			{Flow: appgen.FlowDirect, Rule: android.RuleCryptoECB, Insecure: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	wa, err := New(app, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	war, err := wa.Analyze()
	if err != nil {
		t.Fatal(err)
	}

	e, err := core.New(app, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bdr, err := e.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	return truth, war, bdr
}

// TestCorruptMethodAbortsWholeAppButNotBackDroid reproduces the paper's
// "occasional errors in whole-app analysis" asymmetry (Sec. VI-C): a
// malformed reachable method kills the whole-app run, while the targeted
// analysis — which never visits the method — still detects the sink.
func TestCorruptMethodAbortsWholeAppButNotBackDroid(t *testing.T) {
	truth, war, bdr := corruptApp(t)

	if war.Err == nil {
		t.Error("whole-app analysis should abort on the corrupted reachable method")
	}
	if len(war.Findings) != 0 {
		t.Error("aborted whole-app run must produce no findings")
	}

	st := truth.Sinks[0]
	found := false
	for _, s := range bdr.Sinks {
		if s.Call.Caller.Class == st.Class && s.Call.Caller.Name == st.Method {
			found = s.Reachable && s.Insecure
		}
	}
	if !found {
		t.Error("BackDroid should still detect the sink despite the corrupted method")
	}
}
