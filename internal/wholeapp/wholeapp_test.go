package wholeapp

import (
	"strings"
	"testing"

	"backdroid/internal/apk"
	"backdroid/internal/testapps"
)

func analyzeFixture(t *testing.T, opts Options) *Report {
	t.Helper()
	app, err := testapps.Fixture()
	if err != nil {
		t.Fatalf("Fixture: %v", err)
	}
	a, err := New(app, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r, err := a.Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return r
}

func findingIn(r *Report, class, method string) *Finding {
	for _, f := range r.Findings {
		if f.Caller.Class == class && f.Caller.Name == method {
			return f
		}
	}
	return nil
}

func TestBaselineFindsDirectSink(t *testing.T) {
	r := analyzeFixture(t, DefaultOptions())
	if r.TimedOut || r.Err != nil {
		t.Fatalf("fixture run failed: timedout=%v err=%v", r.TimedOut, r.Err)
	}
	f := findingIn(r, testapps.Cls("MainActivity"), "privateHelper")
	if f == nil {
		t.Fatal("private helper sink not found")
	}
	if !f.Insecure {
		t.Errorf("ECB must be insecure; values=%v", f.Values)
	}
}

func TestBaselineMissesExecutorFlow(t *testing.T) {
	// The documented Amandroid gap: no Executor.execute -> run() edge, so
	// the SSL sink behind the Runnable chain is a false negative here
	// while BackDroid's advanced search finds it.
	r := analyzeFixture(t, DefaultOptions())
	if f := findingIn(r, testapps.Cls("NetcastHttpServer"), "start"); f != nil {
		t.Errorf("baseline should miss the Executor-driven SSL sink, found %+v", f)
	}
}

func TestBaselineClinitValueResolved(t *testing.T) {
	r := analyzeFixture(t, DefaultOptions())
	f := findingIn(r, testapps.Cls("HttpServerService"), "onCreate")
	if f == nil {
		t.Fatal("service onCreate sink not found")
	}
	if !f.Insecure {
		t.Errorf("clinit-resolved bare AES must be insecure; values=%v", f.Values)
	}
	foundAES := false
	for _, v := range f.Values {
		if v == `"AES"` {
			foundAES = true
		}
	}
	if !foundAES {
		t.Errorf("values = %v, want \"AES\" via <clinit>", f.Values)
	}
}

func TestBaselineUnregisteredComponentFalsePositive(t *testing.T) {
	// Amandroid derives entries from all components in the dex, so the
	// unregistered activity's sink is (incorrectly) reported.
	r := analyzeFixture(t, DefaultOptions())
	f := findingIn(r, testapps.Cls("UnregActivity"), "onCreate")
	if f == nil {
		t.Fatal("baseline should report the unregistered component sink (its documented FP)")
	}
	if !f.Insecure {
		t.Errorf("FP finding should still be judged insecure; values=%v", f.Values)
	}
}

func TestBaselineDeadCodeExcluded(t *testing.T) {
	r := analyzeFixture(t, DefaultOptions())
	if f := findingIn(r, testapps.Cls("DeadCode"), "unused"); f != nil {
		t.Error("dead code sink must not be reachable from entries")
	}
}

func TestBaselineVirtualDispatchCases(t *testing.T) {
	r := analyzeFixture(t, DefaultOptions())
	if f := findingIn(r, testapps.Cls("CryptoBase"), "doCrypto"); f == nil {
		t.Error("inherited-method sink not found via CHA")
	} else if f.Insecure {
		t.Errorf("CBC is secure; values=%v", f.Values)
	}
	if f := findingIn(r, testapps.Cls("SubServer"), "start"); f == nil {
		t.Error("override sink not found via CHA fan-out")
	} else if !f.Insecure {
		t.Errorf("ECB must be insecure; values=%v", f.Values)
	}
	if f := findingIn(r, testapps.Cls("WorkThread"), "run"); f == nil {
		t.Error("Thread.run sink not found via the domain-knowledge table")
	}
}

func TestCallGraphOnlyMode(t *testing.T) {
	opts := DefaultOptions()
	opts.Mode = CallGraphOnly
	r := analyzeFixture(t, opts)
	if r.Err != nil || r.TimedOut {
		t.Fatalf("callgraph-only failed: %v timedout=%v", r.Err, r.TimedOut)
	}
	if len(r.Findings) != 0 {
		t.Error("callgraph-only mode must not produce findings")
	}
	if r.Stats.CallGraphNodes == 0 || r.Stats.CallGraphEdges == 0 {
		t.Errorf("call graph stats missing: %+v", r.Stats)
	}
}

func TestBaselineTimeout(t *testing.T) {
	opts := DefaultOptions()
	opts.TimeoutMinutes = 0.0001 // sub-unit budget
	app, err := testapps.Fixture()
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(app, opts)
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !r.TimedOut {
		t.Error("tiny budget must time out")
	}
	if len(r.Findings) != 0 {
		t.Error("timed-out analysis must output no findings (paper Sec. VI-B)")
	}
}

func TestLibListSkipping(t *testing.T) {
	opts := DefaultOptions()
	r := analyzeFixture(t, opts)
	// The fixture has no liblist packages, so nothing is skipped.
	if r.Stats.SkippedLibCalls != 0 {
		t.Errorf("SkippedLibCalls = %d, want 0", r.Stats.SkippedLibCalls)
	}
	for _, p := range DefaultLibList() {
		if !strings.HasSuffix(p, ".") {
			t.Errorf("liblist prefix %q must end with a dot to avoid partial matches", p)
		}
	}
}

func TestBaselineStatsAccounting(t *testing.T) {
	r := analyzeFixture(t, DefaultOptions())
	if r.Stats.WorkUnits == 0 || r.Stats.SimMinutes <= 0 {
		t.Error("work accounting missing")
	}
	if r.Stats.FixpointPasses < 2 {
		t.Errorf("fixpoint should need multiple passes, got %d", r.Stats.FixpointPasses)
	}
	if r.Stats.MethodsVisited == 0 {
		t.Error("no methods visited")
	}
}

func TestInsecureFindings(t *testing.T) {
	r := analyzeFixture(t, DefaultOptions())
	insecure := r.InsecureFindings()
	// A, C, D(FP), G, H are insecure for the baseline; B missed; F secure.
	if len(insecure) != 5 {
		var got []string
		for _, f := range insecure {
			got = append(got, f.Caller.SootSignature())
		}
		t.Errorf("insecure findings = %d (%v), want 5", len(insecure), got)
	}
}

func TestMergedDexFailure(t *testing.T) {
	app, err := testapps.Fixture()
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate dex content breaks the multidex merge.
	bad := apk.New(app.Name, app.Manifest, app.Dexes[0], app.Dexes[0])
	if _, err := New(bad, DefaultOptions()); err == nil {
		t.Error("duplicate multidex must fail preprocessing")
	}
}
