package pool

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 100} {
		var ran int64
		hit := make([]int32, 50)
		errs := ForEach(50, workers, func(i int) error {
			atomic.AddInt64(&ran, 1)
			atomic.AddInt32(&hit[i], 1)
			return nil
		})
		if ran != 50 {
			t.Errorf("workers=%d: ran %d, want 50", workers, ran)
		}
		for i, h := range hit {
			if h != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
		if err := First(errs); err != nil {
			t.Errorf("workers=%d: unexpected error %v", workers, err)
		}
	}
}

func TestForEachErrorsKeepIndex(t *testing.T) {
	boom3 := errors.New("boom-3")
	boom7 := errors.New("boom-7")
	errs := ForEach(10, 4, func(i int) error {
		switch i {
		case 3:
			return boom3
		case 7:
			return boom7
		}
		return nil
	})
	if errs[3] != boom3 || errs[7] != boom7 {
		t.Errorf("errors misplaced: %v", errs)
	}
	// First is the lowest index, deterministic under any scheduling.
	if err := First(errs); err != boom3 {
		t.Errorf("First = %v, want boom-3", err)
	}
}

func TestForEachEmpty(t *testing.T) {
	errs := ForEach(0, 8, func(int) error { t.Error("fn called for n=0"); return nil })
	if len(errs) != 0 || First(errs) != nil {
		t.Errorf("empty run: %v", errs)
	}
}
