// Package pool provides the bounded worker pool shared by the parallel
// analysis pipelines (corpus runs, multi-app CLI analysis). It is
// deliberately minimal: indexed fan-out with per-index error capture, so
// callers get results in input order regardless of scheduling.
package pool

import "sync"

// ForEach runs fn(i) for every i in [0,n) over a pool of the given number
// of workers and returns the per-index errors (nil entries for successes).
// workers is clamped to [1,n]; workers <= 1 still goes through a single
// goroutine, so fn's concurrency contract is uniform. Because errors keep
// their index, callers that report the lowest-index failure behave
// deterministically for any worker count.
func ForEach(n, workers int, fn func(i int) error) []error {
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return errs
}

// First returns the error with the lowest index, or nil if all entries
// are nil.
func First(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
