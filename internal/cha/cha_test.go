package cha

import (
	"testing"

	"backdroid/internal/dex"
	"backdroid/internal/manifest"
)

// testFile builds a hierarchy:
//
//	android.app.Activity <- MainActivity
//	Object <- SuperServer <- HttpServer <- ChildServer
//	Runnable (framework iface) <- Worker
//	app iface Task (extends app iface BaseTask) <- TaskImpl
//	AsyncTask <- LoadTask
func testFile(t *testing.T) *dex.File {
	t.Helper()
	f := dex.NewFile()
	add := func(b *dex.ClassBuilder) {
		t.Helper()
		if err := f.AddClass(b.Build()); err != nil {
			t.Fatal(err)
		}
	}

	main := dex.NewClass("com.app.MainActivity").Extends("android.app.Activity")
	main.Method("onCreate", dex.Void, dex.T("android.os.Bundle")).ReturnVoid().Done()
	add(main)

	super := dex.NewClass("com.app.SuperServer")
	super.Method("start", dex.Void).ReturnVoid().Done()
	add(super)

	server := dex.NewClass("com.app.HttpServer").Extends("com.app.SuperServer")
	server.Method("start", dex.Void).ReturnVoid().Done()
	server.Method("stop", dex.Void).ReturnVoid().Done()
	add(server)

	add(dex.NewClass("com.app.ChildServer").Extends("com.app.HttpServer"))

	worker := dex.NewClass("com.app.Worker").Implements("java.lang.Runnable")
	worker.Method("run", dex.Void).ReturnVoid().Done()
	add(worker)

	add(dex.NewInterface("com.app.BaseTask").AbstractMethod("base", dex.Void))
	add(dex.NewInterface("com.app.Task").Implements("com.app.BaseTask").
		AbstractMethod("exec", dex.Int, dex.StringT))

	impl := dex.NewClass("com.app.TaskImpl").Implements("com.app.Task")
	impl.Method("exec", dex.Int, dex.StringT).Const(2, 0).Return(2).Done()
	add(impl)

	load := dex.NewClass("com.app.LoadTask").Extends("android.os.AsyncTask")
	load.Method("doInBackground", dex.ObjectT, dex.Array(dex.ObjectT)).ConstNull(2).Return(2).Done()
	add(load)

	return f
}

func TestSuperOf(t *testing.T) {
	h := New(testFile(t))
	if s, ok := h.SuperOf("com.app.ChildServer"); !ok || s != "com.app.HttpServer" {
		t.Errorf("SuperOf(ChildServer) = %q, %v", s, ok)
	}
	// Framework chain continues past app boundary.
	if s, ok := h.SuperOf("android.app.Activity"); !ok || s != "android.content.ContextWrapper" {
		t.Errorf("SuperOf(Activity) = %q, %v", s, ok)
	}
	if _, ok := h.SuperOf("java.lang.Object"); ok {
		t.Error("Object has no super")
	}
	if _, ok := h.SuperOf("com.unknown.Clazz"); ok {
		t.Error("unknown class has no super")
	}
}

func TestIsSubclassOf(t *testing.T) {
	h := New(testFile(t))
	tests := []struct {
		sub, super string
		want       bool
	}{
		{"com.app.ChildServer", "com.app.SuperServer", true},
		{"com.app.ChildServer", "java.lang.Object", true},
		{"com.app.ChildServer", "com.app.ChildServer", true},
		{"com.app.SuperServer", "com.app.ChildServer", false},
		{"com.app.MainActivity", "android.app.Activity", true},
		{"com.app.MainActivity", "android.content.Context", true},
		{"com.app.Worker", "java.lang.Runnable", true},
		{"com.app.TaskImpl", "com.app.Task", true},
		{"com.app.TaskImpl", "com.app.BaseTask", true}, // via super-interface
		{"com.app.LoadTask", "android.os.AsyncTask", true},
	}
	for _, tt := range tests {
		if got := h.IsSubclassOf(tt.sub, tt.super); got != tt.want {
			t.Errorf("IsSubclassOf(%s, %s) = %v, want %v", tt.sub, tt.super, got, tt.want)
		}
	}
}

func TestSubclasses(t *testing.T) {
	h := New(testFile(t))
	subs := h.Subclasses("com.app.SuperServer")
	if len(subs) != 2 || subs[0] != "com.app.ChildServer" || subs[1] != "com.app.HttpServer" {
		t.Errorf("Subclasses(SuperServer) = %v", subs)
	}
	if subs := h.Subclasses("com.app.ChildServer"); len(subs) != 0 {
		t.Errorf("Subclasses(ChildServer) = %v", subs)
	}
}

func TestImplementers(t *testing.T) {
	h := New(testFile(t))
	if got := h.Implementers("java.lang.Runnable"); len(got) != 1 || got[0] != "com.app.Worker" {
		t.Errorf("Implementers(Runnable) = %v", got)
	}
	// BaseTask is implemented transitively through Task.
	got := h.Implementers("com.app.BaseTask")
	if len(got) != 1 || got[0] != "com.app.TaskImpl" {
		t.Errorf("Implementers(BaseTask) = %v", got)
	}
}

func TestInterfacesOf(t *testing.T) {
	h := New(testFile(t))
	got := h.InterfacesOf("com.app.TaskImpl")
	want := map[string]bool{"com.app.Task": true, "com.app.BaseTask": true}
	if len(got) != len(want) {
		t.Fatalf("InterfacesOf(TaskImpl) = %v", got)
	}
	for _, i := range got {
		if !want[i] {
			t.Errorf("unexpected interface %s", i)
		}
	}
}

func TestComponentKind(t *testing.T) {
	h := New(testFile(t))
	k, ok := h.ComponentKind("com.app.MainActivity")
	if !ok || k != manifest.Activity {
		t.Errorf("ComponentKind(MainActivity) = %v, %v", k, ok)
	}
	if _, ok := h.ComponentKind("com.app.Worker"); ok {
		t.Error("Worker must not be a component")
	}
}

func TestResolveVirtual(t *testing.T) {
	h := New(testFile(t))
	// ChildServer does not define start; resolution walks to HttpServer.
	ref, ok := h.ResolveVirtual("com.app.ChildServer", "start", nil)
	if !ok || ref.Class != "com.app.HttpServer" {
		t.Errorf("ResolveVirtual(ChildServer.start) = %v, %v", ref, ok)
	}
	// Methods resolving into the framework fail.
	if _, ok := h.ResolveVirtual("com.app.MainActivity", "finish", nil); ok {
		t.Error("framework-resolved method should not resolve in app")
	}
}

func TestSuperDeclaring(t *testing.T) {
	h := New(testFile(t))

	// HttpServer.start overrides SuperServer.start.
	owner, isIface, found := h.SuperDeclaring("com.app.HttpServer", "start", nil)
	if !found || owner != "com.app.SuperServer" || isIface {
		t.Errorf("SuperDeclaring(HttpServer.start) = %q, %v, %v", owner, isIface, found)
	}

	// Worker.run implements the framework Runnable callback interface.
	owner, isIface, found = h.SuperDeclaring("com.app.Worker", "run", nil)
	if !found || owner != "java.lang.Runnable" || !isIface {
		t.Errorf("SuperDeclaring(Worker.run) = %q, %v, %v", owner, isIface, found)
	}

	// TaskImpl.exec implements the app interface Task.
	owner, isIface, found = h.SuperDeclaring("com.app.TaskImpl", "exec", []dex.TypeDesc{dex.StringT})
	if !found || owner != "com.app.Task" || !isIface {
		t.Errorf("SuperDeclaring(TaskImpl.exec) = %q, %v, %v", owner, isIface, found)
	}

	// HttpServer.stop has no super declaration.
	if _, _, found := h.SuperDeclaring("com.app.HttpServer", "stop", nil); found {
		t.Error("stop should have no super declaration")
	}
}

func TestOverrides(t *testing.T) {
	h := New(testFile(t))
	if !h.Overrides("com.app.HttpServer", "start", nil) {
		t.Error("HttpServer overrides start")
	}
	if h.Overrides("com.app.ChildServer", "start", nil) {
		t.Error("ChildServer does not override start")
	}
}

func TestAsyncCallbackBase(t *testing.T) {
	h := New(testFile(t))
	base, ok := h.AsyncCallbackBase("com.app.LoadTask")
	if !ok || base != "android.os.AsyncTask" {
		t.Errorf("AsyncCallbackBase(LoadTask) = %q, %v", base, ok)
	}
	if _, ok := h.AsyncCallbackBase("com.app.HttpServer"); ok {
		t.Error("HttpServer has no async base")
	}
}
