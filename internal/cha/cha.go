// Package cha implements class hierarchy analysis over an app's dex file
// merged with the framework model. Both analyzers consume it: BackDroid for
// child/super-class search-signature construction and component-kind
// resolution, the whole-app baseline for CHA call-graph edges.
package cha

import (
	"sort"

	"backdroid/internal/android"
	"backdroid/internal/dex"
	"backdroid/internal/manifest"
)

// Hierarchy is the merged app + framework class hierarchy. Transitive
// queries are memoized: whole-app CHA resolves every call site against
// them, often once per fixpoint pass.
type Hierarchy struct {
	file *dex.File

	directSubs map[string][]string // class -> direct app subclasses
	directImpl map[string][]string // interface -> direct app implementers

	subsCache map[string][]string
	implCache map[string][]string
}

// New builds the hierarchy for a dex file.
func New(f *dex.File) *Hierarchy {
	h := &Hierarchy{
		file:       f,
		directSubs: make(map[string][]string),
		directImpl: make(map[string][]string),
		subsCache:  make(map[string][]string),
		implCache:  make(map[string][]string),
	}
	for _, c := range f.Classes() {
		if c.Super != "" {
			h.directSubs[c.Super] = append(h.directSubs[c.Super], c.Name)
		}
		for _, i := range c.Interfaces {
			h.directImpl[i] = append(h.directImpl[i], c.Name)
		}
	}
	return h
}

// File returns the underlying dex file.
func (h *Hierarchy) File() *dex.File { return h.file }

// SuperOf returns the superclass of an app or framework class.
func (h *Hierarchy) SuperOf(class string) (string, bool) {
	if c := h.file.Class(class); c != nil {
		if c.Super == "" {
			return "", false
		}
		return c.Super, true
	}
	s, ok := android.FrameworkSuper(class)
	if !ok || s == "" {
		return "", false
	}
	return s, true
}

// InterfacesOf returns the interfaces implemented by the class itself plus
// everything inherited through its super chain, transitively through
// super-interfaces. The result is sorted.
func (h *Hierarchy) InterfacesOf(class string) []string {
	seen := make(map[string]bool)
	var visitIface func(string)
	visitIface = func(iface string) {
		if seen[iface] {
			return
		}
		seen[iface] = true
		if ic := h.file.Class(iface); ic != nil {
			for _, super := range ic.Interfaces {
				visitIface(super)
			}
			return
		}
		for _, super := range android.FrameworkInterfaces(iface) {
			visitIface(super)
		}
	}
	for cur, ok := class, true; ok; cur, ok = h.SuperOf(cur) {
		if c := h.file.Class(cur); c != nil {
			for _, i := range c.Interfaces {
				visitIface(i)
			}
			continue
		}
		for _, i := range android.FrameworkInterfaces(cur) {
			visitIface(i)
		}
	}
	out := make([]string, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Strings(out)
	return out
}

// IsSubclassOf reports whether sub transitively extends super or implements
// it as an interface. A class is a subclass of itself.
func (h *Hierarchy) IsSubclassOf(sub, super string) bool {
	if sub == super {
		return true
	}
	for cur, ok := sub, true; ok; cur, ok = h.SuperOf(cur) {
		if cur == super {
			return true
		}
	}
	for _, i := range h.InterfacesOf(sub) {
		if i == super {
			return true
		}
	}
	return false
}

// Subclasses returns the transitive app subclasses of the class (not
// including the class itself), sorted. The result is cached; callers must
// not modify it.
func (h *Hierarchy) Subclasses(class string) []string {
	if cached, ok := h.subsCache[class]; ok {
		return cached
	}
	var out []string
	seen := map[string]bool{}
	var walk func(string)
	walk = func(c string) {
		for _, sub := range h.directSubs[c] {
			if seen[sub] {
				continue
			}
			seen[sub] = true
			out = append(out, sub)
			walk(sub)
		}
	}
	walk(class)
	sort.Strings(out)
	h.subsCache[class] = out
	return out
}

// Implementers returns the transitive app classes implementing the
// interface, including subclasses of implementers, sorted. The result is
// cached; callers must not modify it.
func (h *Hierarchy) Implementers(iface string) []string {
	if cached, ok := h.implCache[iface]; ok {
		return cached
	}
	seen := map[string]bool{}
	var out []string
	add := func(c string) {
		if cls := h.file.Class(c); cls != nil && cls.IsInterface() {
			return // interfaces extending the interface are not implementers
		}
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	var walkIface func(string)
	walkIface = func(i string) {
		for _, impl := range h.directImpl[i] {
			add(impl)
			for _, sub := range h.Subclasses(impl) {
				add(sub)
			}
		}
		// Sub-interfaces.
		for _, c := range h.file.Classes() {
			if !c.IsInterface() {
				continue
			}
			for _, super := range c.Interfaces {
				if super == i {
					walkIface(c.Name)
				}
			}
		}
	}
	walkIface(iface)
	sort.Strings(out)
	h.implCache[iface] = out
	return out
}

// ComponentKind walks the super chain to decide whether the class is an
// Android component, and of which kind.
func (h *Hierarchy) ComponentKind(class string) (manifest.ComponentKind, bool) {
	for cur, ok := class, true; ok; cur, ok = h.SuperOf(cur) {
		if k, isBase := android.ComponentKindOfBase(cur); isBase {
			return k, true
		}
	}
	return 0, false
}

// Declares reports whether the class itself defines a method with the given
// name and parameter types.
func (h *Hierarchy) Declares(class string, name string, params []dex.TypeDesc) bool {
	c := h.file.Class(class)
	if c == nil {
		return false
	}
	return c.FindMethod(name, params...) != nil
}

// ResolveVirtual resolves a virtual/interface call on the given runtime
// class by walking the super chain until a definition is found. It returns
// the defining class's method and true, or false when resolution leaves the
// app (a framework method) or fails.
func (h *Hierarchy) ResolveVirtual(runtimeClass string, name string, params []dex.TypeDesc) (dex.MethodRef, bool) {
	for cur, ok := runtimeClass, true; ok; cur, ok = h.SuperOf(cur) {
		c := h.file.Class(cur)
		if c == nil {
			return dex.MethodRef{}, false // reached framework
		}
		if m := c.FindMethod(name, params...); m != nil && !m.IsAbstract() {
			return m.Ref, true
		}
	}
	return dex.MethodRef{}, false
}

// SuperDeclaring finds the nearest strict supertype (super class chain or
// any implemented interface, app or framework) that declares the method
// sub-signature. It reports the owner and whether the owner is an
// interface. This is the test BackDroid uses to decide that a callee needs
// the advanced (constructor + forward taint) search: callers may hold the
// object under the supertype and invoke through the supertype's signature.
func (h *Hierarchy) SuperDeclaring(class string, name string, params []dex.TypeDesc) (owner string, isInterface, found bool) {
	// Super class chain (strict supers only).
	cur, ok := h.SuperOf(class)
	for ; ok; cur, ok = h.SuperOf(cur) {
		if c := h.file.Class(cur); c != nil {
			if c.FindMethod(name, params...) != nil {
				return cur, c.IsInterface(), true
			}
		}
	}
	// Interfaces, app-defined or framework callback interfaces.
	for _, iface := range h.InterfacesOf(class) {
		if ic := h.file.Class(iface); ic != nil {
			if ic.FindMethod(name, params...) != nil {
				return iface, true, true
			}
			continue
		}
		for _, cb := range android.CallbackMethods(iface) {
			if cb == name {
				return iface, true, true
			}
		}
	}
	return "", false, false
}

// Overrides reports whether the class itself overrides the given method
// sub-signature (used by the child-class search-signature rule of paper
// Sec. IV-A).
func (h *Hierarchy) Overrides(class string, name string, params []dex.TypeDesc) bool {
	return h.Declares(class, name, params)
}

// AsyncCallbackBase returns the framework async base class (Thread,
// AsyncTask, TimerTask) that the class extends, if any.
func (h *Hierarchy) AsyncCallbackBase(class string) (string, bool) {
	for cur, ok := class, true; ok; cur, ok = h.SuperOf(cur) {
		if android.IsAsyncCallbackClass(cur) {
			return cur, true
		}
	}
	return "", false
}
