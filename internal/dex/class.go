package dex

import (
	"fmt"
	"sort"
	"strings"
)

// AccessFlags is the Dalvik access flag bitmask.
type AccessFlags uint32

// Access flag bits (Dalvik values).
const (
	AccPublic      AccessFlags = 0x0001
	AccPrivate     AccessFlags = 0x0002
	AccProtected   AccessFlags = 0x0004
	AccStatic      AccessFlags = 0x0008
	AccFinal       AccessFlags = 0x0010
	AccInterface   AccessFlags = 0x0200
	AccAbstract    AccessFlags = 0x0400
	AccConstructor AccessFlags = 0x10000
)

var flagNames = []struct {
	bit  AccessFlags
	name string
}{
	{AccPublic, "PUBLIC"},
	{AccPrivate, "PRIVATE"},
	{AccProtected, "PROTECTED"},
	{AccStatic, "STATIC"},
	{AccFinal, "FINAL"},
	{AccInterface, "INTERFACE"},
	{AccAbstract, "ABSTRACT"},
	{AccConstructor, "CONSTRUCTOR"},
}

// Has reports whether all the given bits are set.
func (f AccessFlags) Has(bits AccessFlags) bool { return f&bits == bits }

// String renders the flags the way dexdump does: "0x0001 (PUBLIC)".
func (f AccessFlags) String() string {
	var names []string
	for _, fn := range flagNames {
		if f.Has(fn.bit) {
			names = append(names, fn.name)
		}
	}
	return fmt.Sprintf("0x%04x (%s)", uint32(f), strings.Join(names, " "))
}

// Field is a field definition inside a class.
type Field struct {
	Ref   FieldRef
	Flags AccessFlags
}

// IsStatic reports whether the field is static.
func (f *Field) IsStatic() bool { return f.Flags.Has(AccStatic) }

// Method is a method definition with its bytecode body.
type Method struct {
	Ref       MethodRef
	Flags     AccessFlags
	Registers int // total register count; inputs occupy v0..Ins-1
	Ins       int // number of input registers (this + params)
	Code      []Instruction
}

// IsStatic reports whether the method is static.
func (m *Method) IsStatic() bool { return m.Flags.Has(AccStatic) }

// IsPrivate reports whether the method is private.
func (m *Method) IsPrivate() bool { return m.Flags.Has(AccPrivate) }

// IsAbstract reports whether the method has no body.
func (m *Method) IsAbstract() bool { return m.Flags.Has(AccAbstract) }

// IsConstructor reports whether the method is an instance constructor.
func (m *Method) IsConstructor() bool { return m.Ref.IsConstructor() }

// IsDirect reports whether the method uses direct (non-virtual) dispatch:
// static, private or constructor. Direct methods are the paper's "signature
// methods" — a plain signature search finds all of their call sites.
func (m *Method) IsDirect() bool {
	return m.IsStatic() || m.IsPrivate() || m.IsConstructor() || m.Ref.IsStaticInitializer()
}

// Class is a class definition.
type Class struct {
	Name       string // dotted Java class name
	Super      string // dotted; empty only for java.lang.Object
	Interfaces []string
	Flags      AccessFlags
	Fields     []*Field
	Methods    []*Method
}

// IsInterface reports whether the class is an interface.
func (c *Class) IsInterface() bool { return c.Flags.Has(AccInterface) }

// FindMethod returns the method with the given name and parameter list, or
// nil when absent.
func (c *Class) FindMethod(name string, params ...TypeDesc) *Method {
	for _, m := range c.Methods {
		if m.Ref.Name != name || len(m.Ref.Params) != len(params) {
			continue
		}
		match := true
		for i, p := range params {
			if m.Ref.Params[i] != p {
				match = false
				break
			}
		}
		if match {
			return m
		}
	}
	return nil
}

// FindMethodBySubSig returns the method with the given Soot sub-signature,
// or nil when absent.
func (c *Class) FindMethodBySubSig(subSig string) *Method {
	for _, m := range c.Methods {
		if m.Ref.SubSignature() == subSig {
			return m
		}
	}
	return nil
}

// FindField returns the field with the given name, or nil when absent.
func (c *Class) FindField(name string) *Field {
	for _, f := range c.Fields {
		if f.Ref.Name == name {
			return f
		}
	}
	return nil
}

// DirectMethods returns the direct (static/private/constructor) methods.
func (c *Class) DirectMethods() []*Method {
	var out []*Method
	for _, m := range c.Methods {
		if m.IsDirect() {
			out = append(out, m)
		}
	}
	return out
}

// VirtualMethods returns the virtually-dispatched methods.
func (c *Class) VirtualMethods() []*Method {
	var out []*Method
	for _, m := range c.Methods {
		if !m.IsDirect() {
			out = append(out, m)
		}
	}
	return out
}

// InstructionCount returns the total number of instructions in the class.
func (c *Class) InstructionCount() int {
	n := 0
	for _, m := range c.Methods {
		n += len(m.Code)
	}
	return n
}

// File is a dex file: an ordered set of class definitions.
type File struct {
	classes []*Class
	byName  map[string]*Class
}

// NewFile returns an empty dex file.
func NewFile() *File {
	return &File{byName: make(map[string]*Class)}
}

// AddClass appends a class definition. Adding a duplicate class name
// returns an error (real dex files reject duplicates too).
func (f *File) AddClass(c *Class) error {
	if _, dup := f.byName[c.Name]; dup {
		return fmt.Errorf("dex: duplicate class %s", c.Name)
	}
	f.classes = append(f.classes, c)
	f.byName[c.Name] = c
	return nil
}

// Class returns the class definition with the given dotted name, or nil.
func (f *File) Class(name string) *Class { return f.byName[name] }

// Classes returns the class definitions in insertion order. The returned
// slice must not be modified.
func (f *File) Classes() []*Class { return f.classes }

// ClassNames returns the sorted class names.
func (f *File) ClassNames() []string {
	names := make([]string, 0, len(f.classes))
	for _, c := range f.classes {
		names = append(names, c.Name)
	}
	sort.Strings(names)
	return names
}

// Method resolves a MethodRef to its definition within this file, or nil.
func (f *File) Method(ref MethodRef) *Method {
	c := f.byName[ref.Class]
	if c == nil {
		return nil
	}
	return c.FindMethod(ref.Name, ref.Params...)
}

// InstructionCount returns the total number of instructions in the file.
func (f *File) InstructionCount() int {
	n := 0
	for _, c := range f.classes {
		n += c.InstructionCount()
	}
	return n
}

// MethodCount returns the total number of method definitions in the file.
func (f *File) MethodCount() int {
	n := 0
	for _, c := range f.classes {
		n += len(c.Methods)
	}
	return n
}

// Merge merges the classes of other into f (the multidex merge step that
// BackDroid performs before disassembling). Duplicate class names are
// rejected.
func (f *File) Merge(other *File) error {
	for _, c := range other.classes {
		if err := f.AddClass(c); err != nil {
			return err
		}
	}
	return nil
}
