// Package dex models a Dalvik-like register-based bytecode: type
// descriptors, method and field references, instructions, classes and a dex
// file container with binary encode/decode support.
//
// The model intentionally mirrors the subset of real DEX semantics that the
// BackDroid paper's analyses rely on: the five invoke kinds, instance and
// static field accesses, const-string/const-class literals, object and array
// allocation, branches and returns. Signatures are renderable both in Soot's
// Jimple format (`<com.foo.Bar: void start()>`) and in dexdump's format
// (`Lcom/foo/Bar;.start:()V`), because BackDroid constantly translates
// between the program-analysis space and the bytecode-search space.
package dex

import (
	"fmt"
	"strings"
)

// TypeDesc is a JVM-style type descriptor: "V", "I", "Z", "J",
// "Ljava/lang/String;", "[I", and so on.
type TypeDesc string

// Primitive and common descriptors.
const (
	Void    TypeDesc = "V"
	Int     TypeDesc = "I"
	Bool    TypeDesc = "Z"
	Long    TypeDesc = "J"
	Float   TypeDesc = "F"
	Double  TypeDesc = "D"
	Byte    TypeDesc = "B"
	Short   TypeDesc = "S"
	Char    TypeDesc = "C"
	StringT TypeDesc = "Ljava/lang/String;"
	ObjectT TypeDesc = "Ljava/lang/Object;"
)

// T converts a dotted Java class name into an object type descriptor.
// T("java.lang.String") == "Ljava/lang/String;".
func T(className string) TypeDesc {
	return TypeDesc("L" + strings.ReplaceAll(className, ".", "/") + ";")
}

// Array returns the array descriptor of the element type.
func Array(elem TypeDesc) TypeDesc { return "[" + elem }

// IsObject reports whether the descriptor denotes a class type.
func (t TypeDesc) IsObject() bool { return strings.HasPrefix(string(t), "L") }

// IsArray reports whether the descriptor denotes an array type.
func (t TypeDesc) IsArray() bool { return strings.HasPrefix(string(t), "[") }

// IsRef reports whether the descriptor denotes a reference type
// (class or array).
func (t TypeDesc) IsRef() bool { return t.IsObject() || t.IsArray() }

// IsPrimitive reports whether the descriptor denotes a primitive type.
func (t TypeDesc) IsPrimitive() bool { return !t.IsRef() && t != Void }

// Elem returns the element type of an array descriptor, or t itself when t
// is not an array.
func (t TypeDesc) Elem() TypeDesc {
	if t.IsArray() {
		return t[1:]
	}
	return t
}

// ClassName returns the dotted Java class name for an object descriptor.
// For non-object descriptors it returns the empty string.
func (t TypeDesc) ClassName() string {
	if !t.IsObject() {
		return ""
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(string(t), "L"), ";")
	return strings.ReplaceAll(inner, "/", ".")
}

// Human renders the descriptor in Java source form, as used by Soot
// signatures: "V" -> "void", "Ljava/lang/String;" -> "java.lang.String",
// "[I" -> "int[]".
func (t TypeDesc) Human() string {
	switch {
	case t.IsArray():
		return t.Elem().Human() + "[]"
	case t.IsObject():
		return t.ClassName()
	}
	switch t {
	case Void:
		return "void"
	case Int:
		return "int"
	case Bool:
		return "boolean"
	case Long:
		return "long"
	case Float:
		return "float"
	case Double:
		return "double"
	case Byte:
		return "byte"
	case Short:
		return "short"
	case Char:
		return "char"
	}
	return string(t)
}

// ParseHumanType parses a Java source form type name ("void", "int[]",
// "java.lang.String") back into a descriptor.
func ParseHumanType(s string) (TypeDesc, error) {
	if strings.HasSuffix(s, "[]") {
		elem, err := ParseHumanType(strings.TrimSuffix(s, "[]"))
		if err != nil {
			return "", err
		}
		return Array(elem), nil
	}
	switch s {
	case "void":
		return Void, nil
	case "int":
		return Int, nil
	case "boolean":
		return Bool, nil
	case "long":
		return Long, nil
	case "float":
		return Float, nil
	case "double":
		return Double, nil
	case "byte":
		return Byte, nil
	case "short":
		return Short, nil
	case "char":
		return Char, nil
	}
	if s == "" {
		return "", fmt.Errorf("dex: empty type name")
	}
	return T(s), nil
}

// MethodRef identifies a method by declaring class, name and full
// descriptor. It is the unit of identity used across the search and
// analysis spaces.
type MethodRef struct {
	Class  string // dotted Java class name
	Name   string
	Params []TypeDesc
	Ret    TypeDesc
}

// NewMethodRef builds a MethodRef.
func NewMethodRef(class, name string, ret TypeDesc, params ...TypeDesc) MethodRef {
	return MethodRef{Class: class, Name: name, Params: params, Ret: ret}
}

// Descriptor renders the parameter/return descriptor: "(Ljava/lang/String;I)V".
func (m MethodRef) Descriptor() string {
	var b strings.Builder
	b.WriteByte('(')
	for _, p := range m.Params {
		b.WriteString(string(p))
	}
	b.WriteByte(')')
	b.WriteString(string(m.Ret))
	return b.String()
}

// DexSignature renders the dexdump-format signature used by bytecode search:
// "Lcom/foo/Bar;.start:()V".
func (m MethodRef) DexSignature() string {
	return string(T(m.Class)) + "." + m.Name + ":" + m.Descriptor()
}

// SootSignature renders the Soot-format full signature used in the program
// analysis space: "<com.foo.Bar: void start(java.lang.String)>".
func (m MethodRef) SootSignature() string {
	return "<" + m.Class + ": " + m.SubSignature() + ">"
}

// SubSignature renders the Soot sub-signature (no declaring class):
// "void start(java.lang.String)". Methods with equal sub-signatures in
// related classes override one another.
func (m MethodRef) SubSignature() string {
	parts := make([]string, len(m.Params))
	for i, p := range m.Params {
		parts[i] = p.Human()
	}
	return m.Ret.Human() + " " + m.Name + "(" + strings.Join(parts, ",") + ")"
}

// String returns the Soot signature.
func (m MethodRef) String() string { return m.SootSignature() }

// IsConstructor reports whether the reference names an instance constructor.
func (m MethodRef) IsConstructor() bool { return m.Name == "<init>" }

// IsStaticInitializer reports whether the reference names a class static
// initializer.
func (m MethodRef) IsStaticInitializer() bool { return m.Name == "<clinit>" }

// WithClass returns a copy of the reference re-targeted at another declaring
// class. Used to construct child/parent-class search signatures.
func (m MethodRef) WithClass(class string) MethodRef {
	cp := m
	cp.Class = class
	return cp
}

// ParseDexMethodSignature parses a dexdump-format method signature
// ("Lcom/foo/Bar;.start:(I)V") into a MethodRef. This is the
// search-space -> analysis-space translation step of the paper's Fig. 3.
func ParseDexMethodSignature(s string) (MethodRef, error) {
	dot := strings.Index(s, ";.")
	if dot < 0 {
		return MethodRef{}, fmt.Errorf("dex: malformed method signature %q", s)
	}
	classDesc := TypeDesc(s[:dot+1])
	rest := s[dot+2:]
	colon := strings.Index(rest, ":")
	if colon < 0 {
		return MethodRef{}, fmt.Errorf("dex: malformed method signature %q", s)
	}
	name := rest[:colon]
	desc := rest[colon+1:]
	params, ret, err := parseMethodDescriptor(desc)
	if err != nil {
		return MethodRef{}, fmt.Errorf("dex: signature %q: %w", s, err)
	}
	return MethodRef{Class: classDesc.ClassName(), Name: name, Params: params, Ret: ret}, nil
}

// ParseSootMethodSignature parses a Soot-format full signature
// ("<com.foo.Bar: void start(int)>") into a MethodRef. This is the
// analysis-space -> search-space translation step of the paper's Fig. 3.
func ParseSootMethodSignature(s string) (MethodRef, error) {
	if !strings.HasPrefix(s, "<") || !strings.HasSuffix(s, ">") {
		return MethodRef{}, fmt.Errorf("dex: malformed soot signature %q", s)
	}
	body := s[1 : len(s)-1]
	ci := strings.Index(body, ": ")
	if ci < 0 {
		return MethodRef{}, fmt.Errorf("dex: malformed soot signature %q", s)
	}
	class := body[:ci]
	sub := body[ci+2:]
	sp := strings.Index(sub, " ")
	lp := strings.Index(sub, "(")
	if sp < 0 || lp < 0 || !strings.HasSuffix(sub, ")") {
		return MethodRef{}, fmt.Errorf("dex: malformed soot signature %q", s)
	}
	ret, err := ParseHumanType(sub[:sp])
	if err != nil {
		return MethodRef{}, err
	}
	name := sub[sp+1 : lp]
	var params []TypeDesc
	inner := sub[lp+1 : len(sub)-1]
	if inner != "" {
		for _, p := range strings.Split(inner, ",") {
			pd, err := ParseHumanType(strings.TrimSpace(p))
			if err != nil {
				return MethodRef{}, err
			}
			params = append(params, pd)
		}
	}
	return MethodRef{Class: class, Name: name, Params: params, Ret: ret}, nil
}

func parseMethodDescriptor(desc string) ([]TypeDesc, TypeDesc, error) {
	if !strings.HasPrefix(desc, "(") {
		return nil, "", fmt.Errorf("malformed descriptor %q", desc)
	}
	rp := strings.Index(desc, ")")
	if rp < 0 {
		return nil, "", fmt.Errorf("malformed descriptor %q", desc)
	}
	var params []TypeDesc
	body := desc[1:rp]
	for len(body) > 0 {
		td, rest, err := takeTypeDesc(body)
		if err != nil {
			return nil, "", err
		}
		params = append(params, td)
		body = rest
	}
	ret := TypeDesc(desc[rp+1:])
	if ret == "" {
		return nil, "", fmt.Errorf("malformed descriptor %q: no return type", desc)
	}
	return params, ret, nil
}

func takeTypeDesc(s string) (TypeDesc, string, error) {
	switch s[0] {
	case '[':
		inner, rest, err := takeTypeDesc(s[1:])
		if err != nil {
			return "", "", err
		}
		return "[" + inner, rest, nil
	case 'L':
		semi := strings.Index(s, ";")
		if semi < 0 {
			return "", "", fmt.Errorf("malformed type in %q", s)
		}
		return TypeDesc(s[:semi+1]), s[semi+1:], nil
	case 'V', 'I', 'Z', 'J', 'F', 'D', 'B', 'S', 'C':
		return TypeDesc(s[:1]), s[1:], nil
	}
	return "", "", fmt.Errorf("malformed type in %q", s)
}

// FieldRef identifies a field by declaring class, name and type.
type FieldRef struct {
	Class string // dotted Java class name
	Name  string
	Type  TypeDesc
}

// NewFieldRef builds a FieldRef.
func NewFieldRef(class, name string, typ TypeDesc) FieldRef {
	return FieldRef{Class: class, Name: name, Type: typ}
}

// DexSignature renders the dexdump-format field signature:
// "Lcom/foo/Bar;.port:I".
func (f FieldRef) DexSignature() string {
	return string(T(f.Class)) + "." + f.Name + ":" + string(f.Type)
}

// SootSignature renders the Soot-format field signature:
// "<com.foo.Bar: int port>".
func (f FieldRef) SootSignature() string {
	return "<" + f.Class + ": " + f.Type.Human() + " " + f.Name + ">"
}

// String returns the Soot signature.
func (f FieldRef) String() string { return f.SootSignature() }

// ParseSootFieldSignature parses a Soot-format field signature
// ("<com.foo.Bar: int port>") into a FieldRef.
func ParseSootFieldSignature(s string) (FieldRef, error) {
	if !strings.HasPrefix(s, "<") || !strings.HasSuffix(s, ">") {
		return FieldRef{}, fmt.Errorf("dex: malformed soot field signature %q", s)
	}
	body := s[1 : len(s)-1]
	ci := strings.Index(body, ": ")
	if ci < 0 {
		return FieldRef{}, fmt.Errorf("dex: malformed soot field signature %q", s)
	}
	class := body[:ci]
	rest := body[ci+2:]
	sp := strings.LastIndex(rest, " ")
	if sp < 0 {
		return FieldRef{}, fmt.Errorf("dex: malformed soot field signature %q", s)
	}
	typ, err := ParseHumanType(rest[:sp])
	if err != nil {
		return FieldRef{}, err
	}
	return FieldRef{Class: class, Name: rest[sp+1:], Type: typ}, nil
}
