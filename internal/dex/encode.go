package dex

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Binary container format ("GDEX"): a compact dex-like serialization with a
// string pool followed by class definitions. All integers are uvarints; all
// strings are pool indices. The format is self-contained so app containers
// can round-trip dex bytes exactly like real APKs carry classes.dex.

const dexMagic = "GDEX0001"

type encoder struct {
	buf     bytes.Buffer
	pool    []string
	poolIdx map[string]uint64
}

func newEncoder() *encoder {
	return &encoder{poolIdx: make(map[string]uint64)}
}

func (e *encoder) str(s string) uint64 {
	if i, ok := e.poolIdx[s]; ok {
		return i
	}
	i := uint64(len(e.pool))
	e.pool = append(e.pool, s)
	e.poolIdx[s] = i
	return i
}

func (e *encoder) uvarint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	e.buf.Write(tmp[:n])
}

func (e *encoder) varint(v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	e.buf.Write(tmp[:n])
}

func (e *encoder) methodRef(m *MethodRef) {
	e.uvarint(e.str(m.Class))
	e.uvarint(e.str(m.Name))
	e.uvarint(uint64(len(m.Params)))
	for _, p := range m.Params {
		e.uvarint(e.str(string(p)))
	}
	e.uvarint(e.str(string(m.Ret)))
}

func (e *encoder) fieldRef(f *FieldRef) {
	e.uvarint(e.str(f.Class))
	e.uvarint(e.str(f.Name))
	e.uvarint(e.str(string(f.Type)))
}

func (e *encoder) instruction(in *Instruction) {
	e.uvarint(uint64(in.Op))
	e.varint(int64(in.A))
	e.varint(int64(in.B))
	e.varint(int64(in.C))
	e.varint(in.Lit)
	e.uvarint(e.str(in.Str))
	e.uvarint(e.str(string(in.Type)))
	if in.Method != nil {
		e.buf.WriteByte(1)
		e.methodRef(in.Method)
	} else {
		e.buf.WriteByte(0)
	}
	if in.Field != nil {
		e.buf.WriteByte(1)
		e.fieldRef(in.Field)
	} else {
		e.buf.WriteByte(0)
	}
	e.uvarint(uint64(len(in.Args)))
	for _, a := range in.Args {
		e.varint(int64(a))
	}
	e.varint(int64(in.Target))
}

// Encode serializes the dex file to its binary form.
func Encode(f *File) []byte {
	e := newEncoder()
	// Body first so the string pool is complete, then assemble
	// header+pool+body.
	e.uvarint(uint64(len(f.Classes())))
	for _, c := range f.Classes() {
		e.uvarint(e.str(c.Name))
		e.uvarint(e.str(c.Super))
		e.uvarint(uint64(len(c.Interfaces)))
		for _, i := range c.Interfaces {
			e.uvarint(e.str(i))
		}
		e.uvarint(uint64(c.Flags))
		e.uvarint(uint64(len(c.Fields)))
		for _, fl := range c.Fields {
			e.fieldRef(&fl.Ref)
			e.uvarint(uint64(fl.Flags))
		}
		e.uvarint(uint64(len(c.Methods)))
		for _, m := range c.Methods {
			e.methodRef(&m.Ref)
			e.uvarint(uint64(m.Flags))
			e.uvarint(uint64(m.Registers))
			e.uvarint(uint64(m.Ins))
			e.uvarint(uint64(len(m.Code)))
			for i := range m.Code {
				e.instruction(&m.Code[i])
			}
		}
	}

	var out bytes.Buffer
	out.WriteString(dexMagic)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(e.pool)))
	out.Write(tmp[:n])
	for _, s := range e.pool {
		n := binary.PutUvarint(tmp[:], uint64(len(s)))
		out.Write(tmp[:n])
		out.WriteString(s)
	}
	out.Write(e.buf.Bytes())
	return out.Bytes()
}

type decoder struct {
	r    *bytes.Reader
	pool []string
}

func (d *decoder) uvarint() (uint64, error) { return binary.ReadUvarint(d.r) }
func (d *decoder) varint() (int64, error)   { return binary.ReadVarint(d.r) }

func (d *decoder) str() (string, error) {
	i, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if i >= uint64(len(d.pool)) {
		return "", fmt.Errorf("dex: string index %d out of range", i)
	}
	return d.pool[i], nil
}

func (d *decoder) methodRef() (MethodRef, error) {
	var m MethodRef
	var err error
	if m.Class, err = d.str(); err != nil {
		return m, err
	}
	if m.Name, err = d.str(); err != nil {
		return m, err
	}
	np, err := d.uvarint()
	if err != nil {
		return m, err
	}
	for i := uint64(0); i < np; i++ {
		p, err := d.str()
		if err != nil {
			return m, err
		}
		m.Params = append(m.Params, TypeDesc(p))
	}
	ret, err := d.str()
	if err != nil {
		return m, err
	}
	m.Ret = TypeDesc(ret)
	return m, nil
}

func (d *decoder) fieldRef() (FieldRef, error) {
	var f FieldRef
	var err error
	if f.Class, err = d.str(); err != nil {
		return f, err
	}
	if f.Name, err = d.str(); err != nil {
		return f, err
	}
	t, err := d.str()
	if err != nil {
		return f, err
	}
	f.Type = TypeDesc(t)
	return f, nil
}

func (d *decoder) instruction() (Instruction, error) {
	var in Instruction
	op, err := d.uvarint()
	if err != nil {
		return in, err
	}
	in.Op = Op(op)
	ints := []*int{&in.A, &in.B, &in.C}
	for _, p := range ints {
		v, err := d.varint()
		if err != nil {
			return in, err
		}
		*p = int(v)
	}
	if in.Lit, err = d.varint(); err != nil {
		return in, err
	}
	if in.Str, err = d.str(); err != nil {
		return in, err
	}
	typ, err := d.str()
	if err != nil {
		return in, err
	}
	in.Type = TypeDesc(typ)
	hasMethod, err := d.r.ReadByte()
	if err != nil {
		return in, err
	}
	if hasMethod == 1 {
		m, err := d.methodRef()
		if err != nil {
			return in, err
		}
		in.Method = &m
	}
	hasField, err := d.r.ReadByte()
	if err != nil {
		return in, err
	}
	if hasField == 1 {
		f, err := d.fieldRef()
		if err != nil {
			return in, err
		}
		in.Field = &f
	}
	na, err := d.uvarint()
	if err != nil {
		return in, err
	}
	for i := uint64(0); i < na; i++ {
		a, err := d.varint()
		if err != nil {
			return in, err
		}
		in.Args = append(in.Args, int(a))
	}
	tgt, err := d.varint()
	if err != nil {
		return in, err
	}
	in.Target = int(tgt)
	return in, nil
}

// Decode parses a binary dex file produced by Encode.
func Decode(data []byte) (*File, error) {
	if len(data) < len(dexMagic) || string(data[:len(dexMagic)]) != dexMagic {
		return nil, fmt.Errorf("dex: bad magic")
	}
	d := &decoder{r: bytes.NewReader(data[len(dexMagic):])}
	np, err := d.uvarint()
	if err != nil {
		return nil, fmt.Errorf("dex: pool size: %w", err)
	}
	d.pool = make([]string, np)
	for i := uint64(0); i < np; i++ {
		slen, err := d.uvarint()
		if err != nil {
			return nil, fmt.Errorf("dex: pool entry %d: %w", i, err)
		}
		buf := make([]byte, slen)
		if _, err := d.r.Read(buf); err != nil {
			return nil, fmt.Errorf("dex: pool entry %d: %w", i, err)
		}
		d.pool[i] = string(buf)
	}

	f := NewFile()
	nc, err := d.uvarint()
	if err != nil {
		return nil, fmt.Errorf("dex: class count: %w", err)
	}
	for ci := uint64(0); ci < nc; ci++ {
		c := &Class{}
		if c.Name, err = d.str(); err != nil {
			return nil, err
		}
		if c.Super, err = d.str(); err != nil {
			return nil, err
		}
		ni, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < ni; i++ {
			iface, err := d.str()
			if err != nil {
				return nil, err
			}
			c.Interfaces = append(c.Interfaces, iface)
		}
		flags, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		c.Flags = AccessFlags(flags)
		nf, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < nf; i++ {
			ref, err := d.fieldRef()
			if err != nil {
				return nil, err
			}
			ff, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			c.Fields = append(c.Fields, &Field{Ref: ref, Flags: AccessFlags(ff)})
		}
		nm, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < nm; i++ {
			m := &Method{}
			if m.Ref, err = d.methodRef(); err != nil {
				return nil, err
			}
			mf, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			m.Flags = AccessFlags(mf)
			regs, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			m.Registers = int(regs)
			ins, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			m.Ins = int(ins)
			ncode, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			m.Code = make([]Instruction, ncode)
			for j := uint64(0); j < ncode; j++ {
				if m.Code[j], err = d.instruction(); err != nil {
					return nil, err
				}
			}
			c.Methods = append(c.Methods, m)
		}
		if err := f.AddClass(c); err != nil {
			return nil, err
		}
	}
	return f, nil
}
