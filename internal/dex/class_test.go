package dex

import (
	"strings"
	"testing"
)

func TestAccessFlagsString(t *testing.T) {
	tests := []struct {
		give AccessFlags
		want string
	}{
		{AccPublic, "0x0001 (PUBLIC)"},
		{AccPublic | AccStatic, "0x0009 (PUBLIC STATIC)"},
		{AccPrivate | AccFinal, "0x0012 (PRIVATE FINAL)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String(%#x) = %q, want %q", uint32(tt.give), got, tt.want)
		}
	}
	if got := (AccPublic | AccConstructor).String(); !strings.Contains(got, "CONSTRUCTOR") {
		t.Errorf("constructor flag missing from %q", got)
	}
}

func TestBuilderBasicClass(t *testing.T) {
	cb := NewClass("com.example.Server").
		Extends("com.example.BaseServer").
		Implements("java.lang.Runnable").
		Field("port", Int).
		StaticField("NAME", StringT)
	mb := cb.Method("run", Void)
	r := mb.Reg()
	mb.Const(r, 42).ReturnVoid().Done()
	c := cb.Build()

	if c.Super != "com.example.BaseServer" {
		t.Errorf("Super = %q", c.Super)
	}
	if len(c.Interfaces) != 1 || c.Interfaces[0] != "java.lang.Runnable" {
		t.Errorf("Interfaces = %v", c.Interfaces)
	}
	if f := c.FindField("port"); f == nil || f.IsStatic() {
		t.Error("port field wrong")
	}
	if f := c.FindField("NAME"); f == nil || !f.IsStatic() {
		t.Error("NAME field wrong")
	}
	m := c.FindMethod("run")
	if m == nil {
		t.Fatal("run method missing")
	}
	if m.Ins != 1 { // receiver only
		t.Errorf("Ins = %d, want 1", m.Ins)
	}
	if m.Registers != 2 {
		t.Errorf("Registers = %d, want 2", m.Registers)
	}
	if len(m.Code) != 2 {
		t.Errorf("len(Code) = %d, want 2", len(m.Code))
	}
}

func TestBuilderLabels(t *testing.T) {
	cb := NewClass("com.example.Loop")
	mb := cb.StaticMethod("f", Int, Int)
	p := mb.Param(0)
	out := mb.Reg()
	mb.Const(out, 0).
		Label("head").
		IfZ(OpIfEqz, p, "end").
		AddLit(out, out, 1).
		AddLit(p, p, -1).
		Goto("head").
		Label("end").
		Return(out).
		Done()
	c := cb.Build()
	m := c.FindMethod("f", Int)
	if m == nil {
		t.Fatal("method missing")
	}
	// if-eqz at index 1 must target "end" (index 5), goto at 4 targets 1.
	if m.Code[1].Op != OpIfEqz || m.Code[1].Target != 5 {
		t.Errorf("if target = %d, want 5", m.Code[1].Target)
	}
	if m.Code[4].Op != OpGoto || m.Code[4].Target != 1 {
		t.Errorf("goto target = %d, want 1", m.Code[4].Target)
	}
	// Static method: Param(0) is v0.
	if p != 0 {
		t.Errorf("static Param(0) = %d, want 0", p)
	}
}

func TestBuilderInstanceParamRegisters(t *testing.T) {
	cb := NewClass("com.example.P")
	mb := cb.Method("m", Void, Int, StringT)
	if mb.This() != 0 || mb.Param(0) != 1 || mb.Param(1) != 2 {
		t.Errorf("registers: this=%d p0=%d p1=%d", mb.This(), mb.Param(0), mb.Param(1))
	}
	mb.ReturnVoid().Done()
	m := cb.Build().FindMethod("m", Int, StringT)
	if m.Ins != 3 {
		t.Errorf("Ins = %d, want 3", m.Ins)
	}
}

func TestBuilderUndefinedLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Done with undefined label must panic")
		}
	}()
	NewClass("com.example.Bad").Method("m", Void).Goto("nowhere").Done()
}

func TestDirectVirtualSplit(t *testing.T) {
	cb := NewClass("com.example.Mix")
	cb.Constructor().ReturnVoid().Done()
	cb.StaticMethod("s", Void).ReturnVoid().Done()
	cb.PrivateMethod("p", Void).ReturnVoid().Done()
	cb.Method("v", Void).ReturnVoid().Done()
	c := cb.Build()
	if got := len(c.DirectMethods()); got != 3 {
		t.Errorf("DirectMethods = %d, want 3", got)
	}
	if got := len(c.VirtualMethods()); got != 1 {
		t.Errorf("VirtualMethods = %d, want 1", got)
	}
}

func TestFileAddAndLookup(t *testing.T) {
	f := NewFile()
	c := NewClass("com.example.A").Build()
	if err := f.AddClass(c); err != nil {
		t.Fatal(err)
	}
	if err := f.AddClass(NewClass("com.example.A").Build()); err == nil {
		t.Error("duplicate class must be rejected")
	}
	if f.Class("com.example.A") != c {
		t.Error("Class lookup failed")
	}
	if f.Class("com.example.Missing") != nil {
		t.Error("missing class should be nil")
	}
}

func TestFileMerge(t *testing.T) {
	f1 := NewFile()
	f2 := NewFile()
	if err := f1.AddClass(NewClass("com.a.A").Build()); err != nil {
		t.Fatal(err)
	}
	if err := f2.AddClass(NewClass("com.b.B").Build()); err != nil {
		t.Fatal(err)
	}
	if err := f1.Merge(f2); err != nil {
		t.Fatal(err)
	}
	if len(f1.Classes()) != 2 {
		t.Errorf("merged classes = %d, want 2", len(f1.Classes()))
	}
	if err := f1.Merge(f2); err == nil {
		t.Error("re-merge must fail on duplicates")
	}
}

func TestFileMethodResolution(t *testing.T) {
	f := NewFile()
	cb := NewClass("com.example.A")
	cb.Method("m", Int, Bool).Const(2, 1).Return(2).Done()
	if err := f.AddClass(cb.Build()); err != nil {
		t.Fatal(err)
	}
	ref := NewMethodRef("com.example.A", "m", Int, Bool)
	if f.Method(ref) == nil {
		t.Error("Method lookup failed")
	}
	if f.Method(ref.WithClass("com.example.B")) != nil {
		t.Error("lookup in missing class should be nil")
	}
	if f.Method(NewMethodRef("com.example.A", "m", Int, Int)) != nil {
		t.Error("lookup with wrong params should be nil")
	}
}

func TestInstructionCountAndMethodCount(t *testing.T) {
	f := NewFile()
	cb := NewClass("com.example.A")
	cb.Method("m1", Void).ReturnVoid().Done()
	cb.Method("m2", Void).Const(1, 5).ReturnVoid().Done()
	if err := f.AddClass(cb.Build()); err != nil {
		t.Fatal(err)
	}
	if got := f.InstructionCount(); got != 3 {
		t.Errorf("InstructionCount = %d, want 3", got)
	}
	if got := f.MethodCount(); got != 2 {
		t.Errorf("MethodCount = %d, want 2", got)
	}
}

func TestInstructionFormat(t *testing.T) {
	start := NewMethodRef("com.connectsdk.service.netcast.NetcastHttpServer", "start", Void)
	in := Instruction{Op: OpInvokeVirtual, Method: &start, Args: []int{0}}
	if got, want := in.Format(), "invoke-virtual {v0}, Lcom/connectsdk/service/netcast/NetcastHttpServer;.start:()V"; got != want {
		t.Errorf("Format = %q, want %q", got, want)
	}

	fld := NewFieldRef("com.a.B", "httpServer", T("com.a.Server"))
	ig := Instruction{Op: OpIGet, A: 0, B: 5, Field: &fld}
	if got := ig.Format(); !strings.HasPrefix(got, "iget-object v0, v5, Lcom/a/B;.httpServer:") {
		t.Errorf("Format = %q", got)
	}

	cs := Instruction{Op: OpConstString, A: 1, Str: "AES/ECB/PKCS5Padding"}
	if got := cs.Format(); !strings.Contains(got, `"AES/ECB/PKCS5Padding"`) {
		t.Errorf("Format = %q", got)
	}

	cc := Instruction{Op: OpConstClass, A: 2, Type: T("com.lge.app1.fota.HttpServerService")}
	if got := cc.Format(); !strings.Contains(got, "Lcom/lge/app1/fota/HttpServerService;") {
		t.Errorf("Format = %q", got)
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpInvokeVirtual.IsInvoke() || OpConst.IsInvoke() {
		t.Error("IsInvoke wrong")
	}
	if !OpIfEq.IsBranch() || !OpGoto.IsBranch() || OpReturn.IsBranch() {
		t.Error("IsBranch wrong")
	}
	if !OpIfEq.IsConditional() || OpGoto.IsConditional() {
		t.Error("IsConditional wrong")
	}
	if !OpAdd.IsBinop() || OpAddLit.IsBinop() {
		t.Error("IsBinop wrong")
	}
	if !OpReturnVoid.Terminates() || !OpGoto.Terminates() || OpIfEq.Terminates() {
		t.Error("Terminates wrong")
	}
}
