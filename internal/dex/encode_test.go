package dex

import (
	"bytes"
	"testing"
)

// buildSampleFile constructs a file exercising every instruction shape.
func buildSampleFile(t *testing.T) *File {
	t.Helper()
	f := NewFile()

	runnable := NewMethodRef("java.lang.Runnable", "run", Void)
	cb := NewClass("com.sample.Worker").Implements("java.lang.Runnable").
		Field("count", Int).
		StaticField("NAME", StringT)

	ctor := cb.Constructor(Int)
	objInit := NewMethodRef("java.lang.Object", "<init>", Void)
	ctor.InvokeDirect(objInit, ctor.This()).
		IPut(ctor.Param(0), ctor.This(), NewFieldRef("com.sample.Worker", "count", Int)).
		ReturnVoid().Done()

	run := cb.Method("run", Void)
	r1, r2, r3 := run.Reg(), run.Reg(), run.Reg()
	run.ConstString(r1, "hello").
		Const(r2, 7).
		ConstNull(r3).
		ConstClass(r3, "com.sample.Worker").
		Move(r2, r2).
		New(r3, "java.lang.Object").
		InvokeDirect(objInit, r3).
		NewArray(r3, r2, Int).
		AGet(r2, r3, r2).
		APut(r2, r3, r2).
		Binop(OpAdd, r2, r2, r2).
		AddLit(r2, r2, 3).
		IGet(r2, run.This(), NewFieldRef("com.sample.Worker", "count", Int)).
		SGet(r1, NewFieldRef("com.sample.Worker", "NAME", StringT)).
		SPut(r1, NewFieldRef("com.sample.Worker", "NAME", StringT)).
		CheckCast(r3, "java.lang.Object").
		Label("again").
		If(OpIfEq, r2, r2, "done").
		IfZ(OpIfNez, r2, "again").
		InvokeInterface(runnable, run.This()).
		MoveResult(r2).
		Goto("done").
		Label("done").
		ReturnVoid().Done()

	clinit := cb.StaticInitializer()
	rr := clinit.Reg()
	clinit.ConstString(rr, "worker").
		SPut(rr, NewFieldRef("com.sample.Worker", "NAME", StringT)).
		ReturnVoid().Done()

	if err := f.AddClass(cb.Build()); err != nil {
		t.Fatal(err)
	}

	iface := NewInterface("com.sample.Task").AbstractMethod("exec", Int, StringT)
	if err := f.AddClass(iface.Build()); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := buildSampleFile(t)
	data := Encode(f)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}

	if len(got.Classes()) != len(f.Classes()) {
		t.Fatalf("classes = %d, want %d", len(got.Classes()), len(f.Classes()))
	}
	for i, want := range f.Classes() {
		gc := got.Classes()[i]
		if gc.Name != want.Name || gc.Super != want.Super || gc.Flags != want.Flags {
			t.Errorf("class %d header mismatch: %+v vs %+v", i, gc, want)
		}
		if len(gc.Interfaces) != len(want.Interfaces) {
			t.Errorf("class %d interfaces = %v, want %v", i, gc.Interfaces, want.Interfaces)
		}
		if len(gc.Fields) != len(want.Fields) {
			t.Errorf("class %d fields = %d, want %d", i, len(gc.Fields), len(want.Fields))
		}
		if len(gc.Methods) != len(want.Methods) {
			t.Fatalf("class %d methods = %d, want %d", i, len(gc.Methods), len(want.Methods))
		}
		for j, wm := range want.Methods {
			gm := gc.Methods[j]
			if gm.Ref.SootSignature() != wm.Ref.SootSignature() {
				t.Errorf("method %d ref = %s, want %s", j, gm.Ref, wm.Ref)
			}
			if gm.Registers != wm.Registers || gm.Ins != wm.Ins || gm.Flags != wm.Flags {
				t.Errorf("method %s header mismatch", wm.Ref)
			}
			if len(gm.Code) != len(wm.Code) {
				t.Fatalf("method %s code = %d, want %d", wm.Ref, len(gm.Code), len(wm.Code))
			}
			for k := range wm.Code {
				if gm.Code[k].Format() != wm.Code[k].Format() {
					t.Errorf("method %s instr %d: %q vs %q",
						wm.Ref, k, gm.Code[k].Format(), wm.Code[k].Format())
				}
			}
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	f := buildSampleFile(t)
	a := Encode(f)
	b := Encode(f)
	if !bytes.Equal(a, b) {
		t.Error("Encode must be deterministic")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("Decode(nil) should fail")
	}
	if _, err := Decode([]byte("BAD!")); err == nil {
		t.Error("Decode(bad magic) should fail")
	}
	data := Encode(buildSampleFile(t))
	if _, err := Decode(data[:len(data)/2]); err == nil {
		t.Error("Decode(truncated) should fail")
	}
}
