package dex

import "fmt"

// ClassBuilder assembles a Class definition fluently. It exists to make
// synthetic app generation and tests readable.
type ClassBuilder struct {
	c *Class
}

// NewClass starts building a public class with the given dotted name that
// extends java.lang.Object.
func NewClass(name string) *ClassBuilder {
	return &ClassBuilder{c: &Class{
		Name:  name,
		Super: "java.lang.Object",
		Flags: AccPublic,
	}}
}

// NewInterface starts building a public interface.
func NewInterface(name string) *ClassBuilder {
	b := NewClass(name)
	b.c.Flags |= AccInterface | AccAbstract
	return b
}

// Extends sets the superclass.
func (b *ClassBuilder) Extends(super string) *ClassBuilder {
	b.c.Super = super
	return b
}

// Implements appends implemented interfaces.
func (b *ClassBuilder) Implements(ifaces ...string) *ClassBuilder {
	b.c.Interfaces = append(b.c.Interfaces, ifaces...)
	return b
}

// Field adds an instance field.
func (b *ClassBuilder) Field(name string, typ TypeDesc) *ClassBuilder {
	b.c.Fields = append(b.c.Fields, &Field{
		Ref:   NewFieldRef(b.c.Name, name, typ),
		Flags: AccPublic,
	})
	return b
}

// StaticField adds a static field.
func (b *ClassBuilder) StaticField(name string, typ TypeDesc) *ClassBuilder {
	b.c.Fields = append(b.c.Fields, &Field{
		Ref:   NewFieldRef(b.c.Name, name, typ),
		Flags: AccPublic | AccStatic,
	})
	return b
}

// Method starts a public instance method body.
func (b *ClassBuilder) Method(name string, ret TypeDesc, params ...TypeDesc) *MethodBuilder {
	return b.method(name, AccPublic, ret, params)
}

// PrivateMethod starts a private instance method body.
func (b *ClassBuilder) PrivateMethod(name string, ret TypeDesc, params ...TypeDesc) *MethodBuilder {
	return b.method(name, AccPrivate, ret, params)
}

// StaticMethod starts a public static method body.
func (b *ClassBuilder) StaticMethod(name string, ret TypeDesc, params ...TypeDesc) *MethodBuilder {
	return b.method(name, AccPublic|AccStatic, ret, params)
}

// Constructor starts a public constructor body.
func (b *ClassBuilder) Constructor(params ...TypeDesc) *MethodBuilder {
	return b.method("<init>", AccPublic|AccConstructor, Void, params)
}

// StaticInitializer starts the <clinit> body.
func (b *ClassBuilder) StaticInitializer() *MethodBuilder {
	return b.method("<clinit>", AccStatic|AccConstructor, Void, nil)
}

// AbstractMethod declares a body-less method (for interfaces and abstract
// classes).
func (b *ClassBuilder) AbstractMethod(name string, ret TypeDesc, params ...TypeDesc) *ClassBuilder {
	m := &Method{
		Ref:   NewMethodRef(b.c.Name, name, ret, params...),
		Flags: AccPublic | AccAbstract,
	}
	b.c.Methods = append(b.c.Methods, m)
	return b
}

func (b *ClassBuilder) method(name string, flags AccessFlags, ret TypeDesc, params []TypeDesc) *MethodBuilder {
	m := &Method{
		Ref:   NewMethodRef(b.c.Name, name, ret, params...),
		Flags: flags,
	}
	ins := len(params)
	if !flags.Has(AccStatic) {
		ins++ // receiver
	}
	m.Ins = ins
	m.Registers = ins
	b.c.Methods = append(b.c.Methods, m)
	return &MethodBuilder{class: b, m: m, labels: make(map[string]int)}
}

// Build finalizes and returns the class.
func (b *ClassBuilder) Build() *Class { return b.c }

// MethodBuilder assembles a method body. Registers are allocated on demand
// via Reg; parameter registers are v0..Ins-1 (receiver first for instance
// methods). Branch targets use string labels resolved at Done time.
type MethodBuilder struct {
	class   *ClassBuilder
	m       *Method
	labels  map[string]int
	pending []pendingBranch
}

type pendingBranch struct {
	instr int
	label string
}

// Ref returns the reference of the method under construction.
func (mb *MethodBuilder) Ref() MethodRef { return mb.m.Ref }

// This returns the receiver register (v0) of an instance method.
func (mb *MethodBuilder) This() int { return 0 }

// Param returns the register holding the i-th declared parameter.
func (mb *MethodBuilder) Param(i int) int {
	if mb.m.IsStatic() {
		return i
	}
	return i + 1
}

// Reg allocates a fresh scratch register.
func (mb *MethodBuilder) Reg() int {
	r := mb.m.Registers
	mb.m.Registers++
	return r
}

func (mb *MethodBuilder) emit(in Instruction) *MethodBuilder {
	mb.m.Code = append(mb.m.Code, in)
	return mb
}

// Const emits A := lit.
func (mb *MethodBuilder) Const(a int, lit int64) *MethodBuilder {
	return mb.emit(Instruction{Op: OpConst, A: a, Lit: lit})
}

// ConstString emits A := "s".
func (mb *MethodBuilder) ConstString(a int, s string) *MethodBuilder {
	return mb.emit(Instruction{Op: OpConstString, A: a, Str: s})
}

// ConstClass emits A := class literal.
func (mb *MethodBuilder) ConstClass(a int, class string) *MethodBuilder {
	return mb.emit(Instruction{Op: OpConstClass, A: a, Type: T(class)})
}

// ConstNull emits A := null.
func (mb *MethodBuilder) ConstNull(a int) *MethodBuilder {
	return mb.emit(Instruction{Op: OpConstNull, A: a})
}

// Move emits A := B.
func (mb *MethodBuilder) Move(a, b int) *MethodBuilder {
	return mb.emit(Instruction{Op: OpMove, A: a, B: b})
}

// MoveResult emits A := result of the preceding invoke.
func (mb *MethodBuilder) MoveResult(a int) *MethodBuilder {
	return mb.emit(Instruction{Op: OpMoveResult, A: a})
}

// New emits A := new class.
func (mb *MethodBuilder) New(a int, class string) *MethodBuilder {
	return mb.emit(Instruction{Op: OpNewInstance, A: a, Type: T(class)})
}

// NewArray emits A := new elem[B].
func (mb *MethodBuilder) NewArray(a, size int, elem TypeDesc) *MethodBuilder {
	return mb.emit(Instruction{Op: OpNewArray, A: a, B: size, Type: Array(elem)})
}

// Invoke emits an invoke of the given kind.
func (mb *MethodBuilder) Invoke(op Op, ref MethodRef, args ...int) *MethodBuilder {
	if !op.IsInvoke() {
		panic(fmt.Sprintf("dex: Invoke with non-invoke op %v", op))
	}
	r := ref
	return mb.emit(Instruction{Op: op, Method: &r, Args: args})
}

// InvokeVirtual emits invoke-virtual {recv, args...}, ref.
func (mb *MethodBuilder) InvokeVirtual(ref MethodRef, args ...int) *MethodBuilder {
	return mb.Invoke(OpInvokeVirtual, ref, args...)
}

// InvokeDirect emits invoke-direct {recv, args...}, ref.
func (mb *MethodBuilder) InvokeDirect(ref MethodRef, args ...int) *MethodBuilder {
	return mb.Invoke(OpInvokeDirect, ref, args...)
}

// InvokeStatic emits invoke-static {args...}, ref.
func (mb *MethodBuilder) InvokeStatic(ref MethodRef, args ...int) *MethodBuilder {
	return mb.Invoke(OpInvokeStatic, ref, args...)
}

// InvokeInterface emits invoke-interface {recv, args...}, ref.
func (mb *MethodBuilder) InvokeInterface(ref MethodRef, args ...int) *MethodBuilder {
	return mb.Invoke(OpInvokeInterface, ref, args...)
}

// InvokeSuper emits invoke-super {recv, args...}, ref.
func (mb *MethodBuilder) InvokeSuper(ref MethodRef, args ...int) *MethodBuilder {
	return mb.Invoke(OpInvokeSuper, ref, args...)
}

// IGet emits A := B.field.
func (mb *MethodBuilder) IGet(a, obj int, field FieldRef) *MethodBuilder {
	f := field
	return mb.emit(Instruction{Op: OpIGet, A: a, B: obj, Field: &f})
}

// IPut emits B.field := A.
func (mb *MethodBuilder) IPut(a, obj int, field FieldRef) *MethodBuilder {
	f := field
	return mb.emit(Instruction{Op: OpIPut, A: a, B: obj, Field: &f})
}

// SGet emits A := static field.
func (mb *MethodBuilder) SGet(a int, field FieldRef) *MethodBuilder {
	f := field
	return mb.emit(Instruction{Op: OpSGet, A: a, Field: &f})
}

// SPut emits static field := A.
func (mb *MethodBuilder) SPut(a int, field FieldRef) *MethodBuilder {
	f := field
	return mb.emit(Instruction{Op: OpSPut, A: a, Field: &f})
}

// AGet emits A := B[C].
func (mb *MethodBuilder) AGet(a, arr, idx int) *MethodBuilder {
	return mb.emit(Instruction{Op: OpAGet, A: a, B: arr, C: idx})
}

// APut emits B[C] := A.
func (mb *MethodBuilder) APut(a, arr, idx int) *MethodBuilder {
	return mb.emit(Instruction{Op: OpAPut, A: a, B: arr, C: idx})
}

// Binop emits A := B op C.
func (mb *MethodBuilder) Binop(op Op, a, b, c int) *MethodBuilder {
	if !op.IsBinop() {
		panic(fmt.Sprintf("dex: Binop with non-binop op %v", op))
	}
	return mb.emit(Instruction{Op: op, A: a, B: b, C: c})
}

// AddLit emits A := B + lit.
func (mb *MethodBuilder) AddLit(a, b int, lit int64) *MethodBuilder {
	return mb.emit(Instruction{Op: OpAddLit, A: a, B: b, Lit: lit})
}

// Label defines a branch target at the current position.
func (mb *MethodBuilder) Label(name string) *MethodBuilder {
	mb.labels[name] = len(mb.m.Code)
	return mb
}

// If emits a two-register conditional branch to label.
func (mb *MethodBuilder) If(op Op, a, b int, label string) *MethodBuilder {
	mb.pending = append(mb.pending, pendingBranch{instr: len(mb.m.Code), label: label})
	return mb.emit(Instruction{Op: op, A: a, B: b})
}

// IfZ emits a one-register zero-test branch to label.
func (mb *MethodBuilder) IfZ(op Op, a int, label string) *MethodBuilder {
	mb.pending = append(mb.pending, pendingBranch{instr: len(mb.m.Code), label: label})
	return mb.emit(Instruction{Op: op, A: a})
}

// Goto emits an unconditional branch to label.
func (mb *MethodBuilder) Goto(label string) *MethodBuilder {
	mb.pending = append(mb.pending, pendingBranch{instr: len(mb.m.Code), label: label})
	return mb.emit(Instruction{Op: OpGoto})
}

// Return emits return A.
func (mb *MethodBuilder) Return(a int) *MethodBuilder {
	return mb.emit(Instruction{Op: OpReturn, A: a})
}

// ReturnVoid emits return-void.
func (mb *MethodBuilder) ReturnVoid() *MethodBuilder {
	return mb.emit(Instruction{Op: OpReturnVoid})
}

// CheckCast emits A := (class) A.
func (mb *MethodBuilder) CheckCast(a int, class string) *MethodBuilder {
	return mb.emit(Instruction{Op: OpCheckCast, A: a, Type: T(class)})
}

// Throw emits throw A.
func (mb *MethodBuilder) Throw(a int) *MethodBuilder {
	return mb.emit(Instruction{Op: OpThrow, A: a})
}

// Done resolves labels and returns the enclosing class builder. It panics
// on an undefined label, which is a programming error in the generator.
func (mb *MethodBuilder) Done() *ClassBuilder {
	for _, p := range mb.pending {
		target, ok := mb.labels[p.label]
		if !ok {
			panic(fmt.Sprintf("dex: undefined label %q in %s", p.label, mb.m.Ref))
		}
		mb.m.Code[p.instr].Target = target
	}
	mb.pending = nil
	return mb.class
}
