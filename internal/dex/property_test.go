package dex

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomFile builds a structurally valid dex file from a seed, exercising
// every opcode shape with random operands.
func randomFile(seed int64) *File {
	rng := rand.New(rand.NewSource(seed))
	f := NewFile()
	nClasses := 1 + rng.Intn(4)
	for ci := 0; ci < nClasses; ci++ {
		name := "com.rand.C" + string(rune('A'+ci))
		cb := NewClass(name)
		if rng.Intn(2) == 0 {
			cb.Implements("java.lang.Runnable")
		}
		if rng.Intn(3) == 0 {
			cb.Field("f", Int).StaticField("S", StringT)
		}
		nMethods := 1 + rng.Intn(4)
		for mi := 0; mi < nMethods; mi++ {
			mb := cb.StaticMethod("m"+string(rune('0'+mi)), Int, Int)
			x := mb.Param(0)
			r := mb.Reg()
			nInstr := rng.Intn(12)
			for k := 0; k < nInstr; k++ {
				switch rng.Intn(7) {
				case 0:
					mb.Const(r, int64(rng.Intn(1000)))
				case 1:
					mb.ConstString(r, "s"+string(rune('a'+rng.Intn(26))))
				case 2:
					mb.Move(r, x)
				case 3:
					mb.Binop(OpAdd, r, r, x)
				case 4:
					mb.AddLit(r, r, int64(rng.Intn(9)))
				case 5:
					mb.ConstClass(r, name)
				case 6:
					mb.ConstNull(r)
				}
			}
			mb.Return(r).Done()
		}
		_ = f.AddClass(cb.Build())
	}
	return f
}

// TestEncodeDecodeProperty: decode(encode(f)) preserves every rendered
// instruction for arbitrary generated files.
func TestEncodeDecodeProperty(t *testing.T) {
	prop := func(seed int64) bool {
		f := randomFile(seed)
		got, err := Decode(Encode(f))
		if err != nil {
			return false
		}
		if len(got.Classes()) != len(f.Classes()) {
			return false
		}
		for i, want := range f.Classes() {
			gc := got.Classes()[i]
			if gc.Name != want.Name || len(gc.Methods) != len(want.Methods) {
				return false
			}
			for j, wm := range want.Methods {
				gm := gc.Methods[j]
				if len(gm.Code) != len(wm.Code) {
					return false
				}
				for k := range wm.Code {
					if gm.Code[k].Format() != wm.Code[k].Format() {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestEncodeSizeMonotonic: adding a class never shrinks the encoding.
func TestEncodeSizeMonotonic(t *testing.T) {
	prop := func(seed int64) bool {
		f := randomFile(seed)
		before := len(Encode(f))
		extra := NewClass("com.rand.Extra")
		extra.StaticMethod("x", Void).ReturnVoid().Done()
		if err := f.AddClass(extra.Build()); err != nil {
			return true // duplicate name: skip
		}
		return len(Encode(f)) > before
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
