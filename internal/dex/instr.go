package dex

import (
	"fmt"
	"strconv"
	"strings"
)

// Op is a bytecode opcode. The set is a Dalvik-like subset sufficient for
// the control- and data-flow shapes the BackDroid analyses handle.
type Op int

// Opcodes.
const (
	OpNop Op = iota + 1

	OpConst       // A := Lit
	OpConstString // A := Str
	OpConstClass  // A := class literal Type
	OpConstNull   // A := null
	OpMove        // A := B
	OpMoveResult  // A := result of the preceding invoke

	OpNewInstance // A := new Type
	OpNewArray    // A := new Type[B]

	OpInvokeVirtual   // Method(Args...) via virtual dispatch; Args[0] is receiver
	OpInvokeDirect    // constructor / private dispatch; Args[0] is receiver
	OpInvokeStatic    // static dispatch
	OpInvokeInterface // interface dispatch; Args[0] is receiver
	OpInvokeSuper     // super dispatch; Args[0] is receiver

	OpIGet // A := B.Field
	OpIPut // B.Field := A
	OpSGet // A := Field (static)
	OpSPut // Field := A (static)
	OpAGet // A := B[C]
	OpAPut // B[C] := A

	OpAdd // A := B + C
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpAddLit // A := B + Lit

	OpIfEq // if A == B goto Target
	OpIfNe
	OpIfLt
	OpIfGe
	OpIfGt
	OpIfLe
	OpIfEqz // if A == 0 goto Target
	OpIfNez
	OpGoto // goto Target

	OpReturn // return A
	OpReturnVoid
	OpCheckCast  // A := (Type) A
	OpInstanceOf // A := B instanceof Type
	OpThrow      // throw A
)

var opMnemonics = map[Op]string{
	OpNop:             "nop",
	OpConst:           "const/16",
	OpConstString:     "const-string",
	OpConstClass:      "const-class",
	OpConstNull:       "const/4",
	OpMove:            "move",
	OpMoveResult:      "move-result",
	OpNewInstance:     "new-instance",
	OpNewArray:        "new-array",
	OpInvokeVirtual:   "invoke-virtual",
	OpInvokeDirect:    "invoke-direct",
	OpInvokeStatic:    "invoke-static",
	OpInvokeInterface: "invoke-interface",
	OpInvokeSuper:     "invoke-super",
	OpIGet:            "iget",
	OpIPut:            "iput",
	OpSGet:            "sget",
	OpSPut:            "sput",
	OpAGet:            "aget",
	OpAPut:            "aput",
	OpAdd:             "add-int",
	OpSub:             "sub-int",
	OpMul:             "mul-int",
	OpDiv:             "div-int",
	OpRem:             "rem-int",
	OpAnd:             "and-int",
	OpOr:              "or-int",
	OpXor:             "xor-int",
	OpAddLit:          "add-int/lit8",
	OpIfEq:            "if-eq",
	OpIfNe:            "if-ne",
	OpIfLt:            "if-lt",
	OpIfGe:            "if-ge",
	OpIfGt:            "if-gt",
	OpIfLe:            "if-le",
	OpIfEqz:           "if-eqz",
	OpIfNez:           "if-nez",
	OpGoto:            "goto",
	OpReturn:          "return",
	OpReturnVoid:      "return-void",
	OpCheckCast:       "check-cast",
	OpInstanceOf:      "instance-of",
	OpThrow:           "throw",
}

// Mnemonic returns the dexdump mnemonic of the opcode.
func (o Op) Mnemonic() string {
	if m, ok := opMnemonics[o]; ok {
		return m
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsInvoke reports whether the opcode is one of the five invoke kinds.
func (o Op) IsInvoke() bool {
	switch o {
	case OpInvokeVirtual, OpInvokeDirect, OpInvokeStatic, OpInvokeInterface, OpInvokeSuper:
		return true
	}
	return false
}

// IsBranch reports whether the opcode may transfer control to Target.
func (o Op) IsBranch() bool {
	switch o {
	case OpIfEq, OpIfNe, OpIfLt, OpIfGe, OpIfGt, OpIfLe, OpIfEqz, OpIfNez, OpGoto:
		return true
	}
	return false
}

// IsConditional reports whether the opcode is a two-way branch.
func (o Op) IsConditional() bool { return o.IsBranch() && o != OpGoto }

// IsBinop reports whether the opcode is a two-register arithmetic operation.
func (o Op) IsBinop() bool {
	switch o {
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor:
		return true
	}
	return false
}

// Terminates reports whether control never falls through the opcode.
func (o Op) Terminates() bool {
	switch o {
	case OpReturn, OpReturnVoid, OpThrow, OpGoto:
		return true
	}
	return false
}

// Instruction is one bytecode instruction. Operand meaning depends on Op;
// see the opcode comments.
type Instruction struct {
	Op     Op
	A      int        // destination / first register
	B      int        // source / object register
	C      int        // second source / index register
	Lit    int64      // integer literal
	Str    string     // string literal
	Type   TypeDesc   // type operand
	Method *MethodRef // invoke target
	Field  *FieldRef  // field operand
	Args   []int      // invoke argument registers (receiver first for instance kinds)
	Target int        // branch target: instruction index within the method body
}

// typeSuffix mimics dexdump's -object/-wide/-boolean opcode suffixes for
// field, array and move instructions.
func typeSuffix(t TypeDesc) string {
	switch {
	case t.IsRef():
		return "-object"
	case t == Long || t == Double:
		return "-wide"
	case t == Bool:
		return "-boolean"
	default:
		return ""
	}
}

// Format renders the instruction in dexdump style, e.g.
// "invoke-virtual {v0}, Lcom/foo/Bar;.start:()V". The rendering is what the
// on-the-fly bytecode search matches against, so it must be stable.
func (in *Instruction) Format() string {
	reg := func(r int) string { return "v" + strconv.Itoa(r) }
	switch in.Op {
	case OpNop:
		return "nop"
	case OpConst:
		return fmt.Sprintf("const/16 %s, #int %d", reg(in.A), in.Lit)
	case OpConstString:
		return fmt.Sprintf("const-string %s, %q", reg(in.A), in.Str)
	case OpConstClass:
		return fmt.Sprintf("const-class %s, %s", reg(in.A), in.Type)
	case OpConstNull:
		return fmt.Sprintf("const/4 %s, #null", reg(in.A))
	case OpMove:
		return fmt.Sprintf("move %s, %s", reg(in.A), reg(in.B))
	case OpMoveResult:
		return fmt.Sprintf("move-result %s", reg(in.A))
	case OpNewInstance:
		return fmt.Sprintf("new-instance %s, %s", reg(in.A), in.Type)
	case OpNewArray:
		return fmt.Sprintf("new-array %s, %s, %s", reg(in.A), reg(in.B), in.Type)
	case OpInvokeVirtual, OpInvokeDirect, OpInvokeStatic, OpInvokeInterface, OpInvokeSuper:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = reg(a)
		}
		return fmt.Sprintf("%s {%s}, %s", in.Op.Mnemonic(), strings.Join(args, ", "), in.Method.DexSignature())
	case OpIGet:
		return fmt.Sprintf("iget%s %s, %s, %s", typeSuffix(in.Field.Type), reg(in.A), reg(in.B), in.Field.DexSignature())
	case OpIPut:
		return fmt.Sprintf("iput%s %s, %s, %s", typeSuffix(in.Field.Type), reg(in.A), reg(in.B), in.Field.DexSignature())
	case OpSGet:
		return fmt.Sprintf("sget%s %s, %s", typeSuffix(in.Field.Type), reg(in.A), in.Field.DexSignature())
	case OpSPut:
		return fmt.Sprintf("sput%s %s, %s", typeSuffix(in.Field.Type), reg(in.A), in.Field.DexSignature())
	case OpAGet:
		return fmt.Sprintf("aget %s, %s, %s", reg(in.A), reg(in.B), reg(in.C))
	case OpAPut:
		return fmt.Sprintf("aput %s, %s, %s", reg(in.A), reg(in.B), reg(in.C))
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor:
		return fmt.Sprintf("%s %s, %s, %s", in.Op.Mnemonic(), reg(in.A), reg(in.B), reg(in.C))
	case OpAddLit:
		return fmt.Sprintf("add-int/lit8 %s, %s, #int %d", reg(in.A), reg(in.B), in.Lit)
	case OpIfEq, OpIfNe, OpIfLt, OpIfGe, OpIfGt, OpIfLe:
		return fmt.Sprintf("%s %s, %s, %04x", in.Op.Mnemonic(), reg(in.A), reg(in.B), in.Target)
	case OpIfEqz, OpIfNez:
		return fmt.Sprintf("%s %s, %04x", in.Op.Mnemonic(), reg(in.A), in.Target)
	case OpGoto:
		return fmt.Sprintf("goto %04x", in.Target)
	case OpReturn:
		return fmt.Sprintf("return %s", reg(in.A))
	case OpReturnVoid:
		return "return-void"
	case OpCheckCast:
		return fmt.Sprintf("check-cast %s, %s", reg(in.A), in.Type)
	case OpInstanceOf:
		return fmt.Sprintf("instance-of %s, %s, %s", reg(in.A), reg(in.B), in.Type)
	case OpThrow:
		return fmt.Sprintf("throw %s", reg(in.A))
	}
	return in.Op.Mnemonic()
}
