package dex

import (
	"testing"
	"testing/quick"
)

func TestTypeDescHuman(t *testing.T) {
	tests := []struct {
		give TypeDesc
		want string
	}{
		{Void, "void"},
		{Int, "int"},
		{Bool, "boolean"},
		{Long, "long"},
		{Float, "float"},
		{Double, "double"},
		{Byte, "byte"},
		{Short, "short"},
		{Char, "char"},
		{StringT, "java.lang.String"},
		{T("com.foo.Bar$1"), "com.foo.Bar$1"},
		{Array(Int), "int[]"},
		{Array(Array(StringT)), "java.lang.String[][]"},
	}
	for _, tt := range tests {
		if got := tt.give.Human(); got != tt.want {
			t.Errorf("Human(%q) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestParseHumanTypeRoundTrip(t *testing.T) {
	tests := []TypeDesc{
		Void, Int, Bool, Long, Float, Double, Byte, Short, Char,
		StringT, T("com.foo.Bar"), Array(Int), Array(T("com.foo.Bar")),
	}
	for _, td := range tests {
		got, err := ParseHumanType(td.Human())
		if err != nil {
			t.Fatalf("ParseHumanType(%q): %v", td.Human(), err)
		}
		if got != td {
			t.Errorf("ParseHumanType(%q) = %q, want %q", td.Human(), got, td)
		}
	}
}

func TestParseHumanTypeEmpty(t *testing.T) {
	if _, err := ParseHumanType(""); err == nil {
		t.Error("ParseHumanType(\"\") should fail")
	}
}

func TestTypeDescPredicates(t *testing.T) {
	if !StringT.IsObject() || !StringT.IsRef() || StringT.IsArray() || StringT.IsPrimitive() {
		t.Error("StringT predicates wrong")
	}
	arr := Array(Int)
	if !arr.IsArray() || !arr.IsRef() || arr.IsObject() || arr.IsPrimitive() {
		t.Error("array predicates wrong")
	}
	if !Int.IsPrimitive() || Int.IsRef() {
		t.Error("int predicates wrong")
	}
	if Void.IsPrimitive() {
		t.Error("void must not be primitive")
	}
	if arr.Elem() != Int {
		t.Errorf("Elem() = %q, want I", arr.Elem())
	}
}

func TestMethodRefSignatures(t *testing.T) {
	m := NewMethodRef("com.connectsdk.service.netcast.NetcastHttpServer", "start", Void)
	if got, want := m.DexSignature(), "Lcom/connectsdk/service/netcast/NetcastHttpServer;.start:()V"; got != want {
		t.Errorf("DexSignature = %q, want %q", got, want)
	}
	if got, want := m.SootSignature(), "<com.connectsdk.service.netcast.NetcastHttpServer: void start()>"; got != want {
		t.Errorf("SootSignature = %q, want %q", got, want)
	}

	m2 := NewMethodRef("com.connectsdk.core.Util", "runInBackground", Void, T("java.lang.Runnable"), Bool)
	if got, want := m2.DexSignature(), "Lcom/connectsdk/core/Util;.runInBackground:(Ljava/lang/Runnable;Z)V"; got != want {
		t.Errorf("DexSignature = %q, want %q", got, want)
	}
	if got, want := m2.SubSignature(), "void runInBackground(java.lang.Runnable,boolean)"; got != want {
		t.Errorf("SubSignature = %q, want %q", got, want)
	}
}

func TestParseDexMethodSignature(t *testing.T) {
	tests := []string{
		"Lcom/foo/Bar;.start:()V",
		"Lcom/foo/Bar;.run:(Ljava/lang/String;IZ)Ljava/lang/Object;",
		"Lcom/foo/Bar$1;.<init>:(Lcom/foo/Bar;)V",
		"Lcom/foo/Bar;.arr:([I[[Ljava/lang/String;)[B",
	}
	for _, sig := range tests {
		m, err := ParseDexMethodSignature(sig)
		if err != nil {
			t.Fatalf("ParseDexMethodSignature(%q): %v", sig, err)
		}
		if got := m.DexSignature(); got != sig {
			t.Errorf("round trip %q -> %q", sig, got)
		}
	}
}

func TestParseDexMethodSignatureErrors(t *testing.T) {
	bad := []string{"", "noclass", "Lcom/foo/Bar;.name", "Lcom/foo/Bar;.m:(Q)V", "Lcom/foo/Bar;.m:()"}
	for _, sig := range bad {
		if _, err := ParseDexMethodSignature(sig); err == nil {
			t.Errorf("ParseDexMethodSignature(%q) should fail", sig)
		}
	}
}

func TestParseSootMethodSignature(t *testing.T) {
	tests := []string{
		"<com.foo.Bar: void start()>",
		"<com.foo.Bar: java.lang.Object run(java.lang.String,int,boolean)>",
		"<com.foo.Bar$1: void <init>(com.foo.Bar)>",
	}
	for _, sig := range tests {
		m, err := ParseSootMethodSignature(sig)
		if err != nil {
			t.Fatalf("ParseSootMethodSignature(%q): %v", sig, err)
		}
		if got := m.SootSignature(); got != sig {
			t.Errorf("round trip %q -> %q", sig, got)
		}
	}
}

func TestParseSootMethodSignatureErrors(t *testing.T) {
	bad := []string{"", "<nope>", "com.foo.Bar: void start()", "<com.foo.Bar: voidstart()>"}
	for _, sig := range bad {
		if _, err := ParseSootMethodSignature(sig); err == nil {
			t.Errorf("ParseSootMethodSignature(%q) should fail", sig)
		}
	}
}

func TestSignatureFormatTranslationProperty(t *testing.T) {
	// The paper's Fig. 3 translation loop: Soot format -> dex format ->
	// parse -> Soot format must be the identity for any well-formed ref.
	classNames := []string{"com.a.B", "com.a.B$1", "org.x.Y", "a.b.c.D"}
	typePool := []TypeDesc{Int, Bool, Long, StringT, T("com.a.B"), Array(Int), Array(StringT)}
	f := func(ci, name uint8, p1, p2, r uint8) bool {
		ref := MethodRef{
			Class: classNames[int(ci)%len(classNames)],
			Name:  []string{"run", "start", "<init>", "doWork"}[int(name)%4],
			Params: []TypeDesc{
				typePool[int(p1)%len(typePool)],
				typePool[int(p2)%len(typePool)],
			},
			Ret: typePool[int(r)%len(typePool)],
		}
		fromDex, err := ParseDexMethodSignature(ref.DexSignature())
		if err != nil {
			return false
		}
		fromSoot, err := ParseSootMethodSignature(ref.SootSignature())
		if err != nil {
			return false
		}
		return fromDex.SootSignature() == ref.SootSignature() &&
			fromSoot.DexSignature() == ref.DexSignature()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFieldRefSignatures(t *testing.T) {
	f := NewFieldRef("com.studiosol.util.NanoHTTPD", "myPort", Int)
	if got, want := f.DexSignature(), "Lcom/studiosol/util/NanoHTTPD;.myPort:I"; got != want {
		t.Errorf("DexSignature = %q, want %q", got, want)
	}
	if got, want := f.SootSignature(), "<com.studiosol.util.NanoHTTPD: int myPort>"; got != want {
		t.Errorf("SootSignature = %q, want %q", got, want)
	}
}

func TestMethodRefWithClass(t *testing.T) {
	m := NewMethodRef("com.a.Parent", "start", Void)
	child := m.WithClass("com.a.Child")
	if child.Class != "com.a.Child" || child.Name != "start" {
		t.Errorf("WithClass = %+v", child)
	}
	if m.Class != "com.a.Parent" {
		t.Error("WithClass must not mutate the receiver")
	}
}
