// Package android models the slice of the Android framework that the
// analyses need: the system class hierarchy, component lifecycle tables,
// callback interfaces, asynchronous-execution APIs, ICC (inter-component
// communication) APIs and the security-sensitive sink registry.
//
// The paper's analyses never execute framework code; they only need its
// shape — which classes exist, how they relate, which methods the framework
// implicitly invokes, and which parameters of which APIs are
// security-sensitive. This package is that shape.
package android

import (
	"strings"

	"backdroid/internal/dex"
	"backdroid/internal/manifest"
)

// Well-known framework class names.
const (
	ObjectClass   = "java.lang.Object"
	RunnableIface = "java.lang.Runnable"
	CallableIface = "java.util.concurrent.Callable"
	ThreadClass   = "java.lang.Thread"
	ExecutorIface = "java.util.concurrent.Executor"

	ContextClass  = "android.content.Context"
	ActivityClass = "android.app.Activity"
	ServiceClass  = "android.app.Service"
	ReceiverClass = "android.content.BroadcastReceiver"
	ProviderClass = "android.content.ContentProvider"

	IntentClass    = "android.content.Intent"
	BundleClass    = "android.os.Bundle"
	AsyncTaskClass = "android.os.AsyncTask"
	HandlerClass   = "android.os.Handler"
	ViewClass      = "android.view.View"

	OnClickIface       = "android.view.View$OnClickListener"
	DialogOnClickIface = "android.content.DialogInterface$OnClickListener"
	HandlerCbIface     = "android.os.Handler$Callback"

	CipherClass           = "javax.crypto.Cipher"
	SSLSocketFactoryClass = "org.apache.http.conn.ssl.SSLSocketFactory"
	HttpsURLConnClass     = "javax.net.ssl.HttpsURLConnection"
	HostnameVerifierIface = "javax.net.ssl.HostnameVerifier"
	X509VerifierIface     = "org.apache.http.conn.ssl.X509HostnameVerifier"
)

// systemPrefixes are the package prefixes of framework/system code. Classes
// under these prefixes have no bytecode in the app dex.
var systemPrefixes = []string{
	"java.", "javax.", "android.", "androidx.", "dalvik.",
	"org.apache.http.", "org.json.", "org.w3c.", "org.xml.", "junit.",
}

// IsSystemClass reports whether the dotted class name belongs to the
// Android/Java framework rather than the app.
func IsSystemClass(name string) bool {
	for _, p := range systemPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// classInfo is the framework-side hierarchy entry for one system class.
type classInfo struct {
	super  string
	ifaces []string
	iface  bool // the entry itself is an interface
}

// frameworkHierarchy covers the system classes the analyses care about.
// App classes extend these; cha merges this table with the app hierarchy.
var frameworkHierarchy = map[string]classInfo{
	ObjectClass:   {},
	RunnableIface: {iface: true},
	CallableIface: {iface: true},
	ExecutorIface: {iface: true},
	ThreadClass:   {super: ObjectClass, ifaces: []string{RunnableIface}},

	"java.lang.String":                        {super: ObjectClass},
	"java.lang.StringBuilder":                 {super: ObjectClass},
	"java.util.Timer":                         {super: ObjectClass},
	"java.util.TimerTask":                     {super: ObjectClass, ifaces: []string{RunnableIface}},
	"java.util.concurrent.ThreadPoolExecutor": {super: ObjectClass, ifaces: []string{ExecutorIface}},

	ContextClass:                     {super: ObjectClass},
	"android.content.ContextWrapper": {super: ContextClass},
	ActivityClass:                    {super: "android.content.ContextWrapper"},
	ServiceClass:                     {super: "android.content.ContextWrapper"},
	"android.app.IntentService":      {super: ServiceClass},
	ReceiverClass:                    {super: ObjectClass},
	ProviderClass:                    {super: ObjectClass},

	IntentClass:    {super: ObjectClass},
	BundleClass:    {super: ObjectClass},
	AsyncTaskClass: {super: ObjectClass},
	HandlerClass:   {super: ObjectClass},
	ViewClass:      {super: ObjectClass},

	OnClickIface:       {iface: true},
	DialogOnClickIface: {iface: true},
	HandlerCbIface:     {iface: true},

	CipherClass:                      {super: ObjectClass},
	SSLSocketFactoryClass:            {super: ObjectClass},
	"javax.net.ssl.SSLSocketFactory": {super: ObjectClass},
	"java.net.URLConnection":         {super: ObjectClass},
	"java.net.HttpURLConnection":     {super: "java.net.URLConnection"},
	HttpsURLConnClass:                {super: "java.net.HttpURLConnection"},
	HostnameVerifierIface:            {iface: true},
	X509VerifierIface:                {iface: true, ifaces: []string{HostnameVerifierIface}},
}

// FrameworkSuper returns the framework superclass of a system class and
// whether the class is known to the model.
func FrameworkSuper(name string) (string, bool) {
	ci, ok := frameworkHierarchy[name]
	if !ok {
		return "", false
	}
	return ci.super, true
}

// FrameworkInterfaces returns the declared interfaces of a system class.
func FrameworkInterfaces(name string) []string {
	return frameworkHierarchy[name].ifaces
}

// IsFrameworkInterface reports whether the system class is an interface.
func IsFrameworkInterface(name string) bool {
	return frameworkHierarchy[name].iface
}

// componentBases maps component base classes to their manifest kind.
var componentBases = map[string]manifest.ComponentKind{
	ActivityClass:               manifest.Activity,
	ServiceClass:                manifest.Service,
	"android.app.IntentService": manifest.Service,
	ReceiverClass:               manifest.Receiver,
	ProviderClass:               manifest.Provider,
}

// ComponentKindOfBase returns the component kind of a framework base class,
// if it is one.
func ComponentKindOfBase(name string) (manifest.ComponentKind, bool) {
	k, ok := componentBases[name]
	return k, ok
}

// lifecycleMethods lists the framework-invoked lifecycle handlers per
// component kind, in lifecycle order.
var lifecycleMethods = map[manifest.ComponentKind][]string{
	manifest.Activity: {"onCreate", "onStart", "onRestart", "onResume", "onPause", "onStop", "onDestroy"},
	manifest.Service:  {"onCreate", "onStartCommand", "onBind", "onHandleIntent", "onDestroy"},
	manifest.Receiver: {"onReceive"},
	manifest.Provider: {"onCreate", "query", "insert", "update", "delete"},
}

// lifecyclePredecessors is the domain knowledge of paper Sec. IV-E: which
// handler executes before a given handler within the same component. The
// backward slicer uses it to keep tracking state written by an earlier
// handler (e.g. a field set in onCreate and read in onResume).
var lifecyclePredecessors = map[manifest.ComponentKind]map[string][]string{
	manifest.Activity: {
		"onStart":   {"onCreate", "onRestart"},
		"onRestart": {"onStop"},
		"onResume":  {"onStart", "onPause"},
		"onPause":   {"onResume"},
		"onStop":    {"onPause"},
		"onDestroy": {"onStop"},
	},
	manifest.Service: {
		"onStartCommand": {"onCreate"},
		"onBind":         {"onCreate"},
		"onHandleIntent": {"onCreate"},
		"onDestroy":      {"onCreate"},
	},
}

// LifecycleMethods returns the lifecycle handler names of a component kind.
func LifecycleMethods(kind manifest.ComponentKind) []string {
	return lifecycleMethods[kind]
}

// IsLifecycleMethod reports whether name is a lifecycle handler of the kind.
func IsLifecycleMethod(kind manifest.ComponentKind, name string) bool {
	for _, m := range lifecycleMethods[kind] {
		if m == name {
			return true
		}
	}
	return false
}

// LifecyclePredecessors returns the handlers executed before the given
// handler within the same component kind.
func LifecyclePredecessors(kind manifest.ComponentKind, name string) []string {
	return lifecyclePredecessors[kind][name]
}

// callbackInterfaces maps callback interfaces to the methods the framework
// (or an executor) invokes on them.
var callbackInterfaces = map[string][]string{
	RunnableIface:      {"run"},
	CallableIface:      {"call"},
	OnClickIface:       {"onClick"},
	DialogOnClickIface: {"onClick"},
	HandlerCbIface:     {"handleMessage"},
}

// IsCallbackInterface reports whether the class is a known callback
// interface.
func IsCallbackInterface(name string) bool {
	_, ok := callbackInterfaces[name]
	return ok
}

// CallbackMethods returns the callback method names of the interface.
func CallbackMethods(iface string) []string { return callbackInterfaces[iface] }

// asyncCallbackClasses maps framework classes whose subclasses receive
// framework-driven callbacks to those callback method names. Unlike
// callback interfaces these are class-extension based (AsyncTask, Thread,
// TimerTask).
var asyncCallbackClasses = map[string][]string{
	AsyncTaskClass:        {"doInBackground", "onPostExecute", "onPreExecute"},
	ThreadClass:           {"run"},
	"java.util.TimerTask": {"run"},
}

// AsyncCallbackMethods returns the callback methods implied by extending
// the given framework class.
func AsyncCallbackMethods(class string) []string { return asyncCallbackClasses[class] }

// IsAsyncCallbackClass reports whether extending the class implies
// framework-driven callbacks.
func IsAsyncCallbackClass(name string) bool {
	_, ok := asyncCallbackClasses[name]
	return ok
}

// iccCallNames are the Context/Activity methods that start another
// component by Intent.
var iccCallNames = map[string]manifest.ComponentKind{
	"startActivity":          manifest.Activity,
	"startActivityForResult": manifest.Activity,
	"startService":           manifest.Service,
	"bindService":            manifest.Service,
	"sendBroadcast":          manifest.Receiver,
	"sendOrderedBroadcast":   manifest.Receiver,
}

// ICCTargetKind returns the component kind started by a system ICC call,
// and whether ref is an ICC call at all.
func ICCTargetKind(ref dex.MethodRef) (manifest.ComponentKind, bool) {
	if !IsSystemClass(ref.Class) {
		return 0, false
	}
	k, ok := iccCallNames[ref.Name]
	return k, ok
}

// ICCEntryMethods returns the lifecycle handlers that an ICC delivery
// invokes on the target component kind.
func ICCEntryMethods(kind manifest.ComponentKind) []string {
	switch kind {
	case manifest.Activity:
		return []string{"onCreate"}
	case manifest.Service:
		return []string{"onCreate", "onStartCommand", "onHandleIntent"}
	case manifest.Receiver:
		return []string{"onReceive"}
	case manifest.Provider:
		return []string{"onCreate"}
	}
	return nil
}

// Intent construction/mutation APIs recognized by the ICC search.
var (
	// IntentCtorExplicit is Intent(Context, Class<?>).
	IntentCtorExplicit = dex.NewMethodRef(IntentClass, "<init>", dex.Void,
		dex.T(ContextClass), dex.T("java.lang.Class"))
	// IntentCtorImplicit is Intent(String action).
	IntentCtorImplicit = dex.NewMethodRef(IntentClass, "<init>", dex.Void, dex.StringT)
	// IntentSetClassName is Intent.setClassName(Context, String).
	IntentSetClassName = dex.NewMethodRef(IntentClass, "setClassName", dex.T(IntentClass),
		dex.T(ContextClass), dex.StringT)
	// IntentSetAction is Intent.setAction(String).
	IntentSetAction = dex.NewMethodRef(IntentClass, "setAction", dex.T(IntentClass), dex.StringT)
)
