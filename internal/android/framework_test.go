package android

import (
	"testing"

	"backdroid/internal/dex"
	"backdroid/internal/manifest"
)

func TestIsSystemClass(t *testing.T) {
	tests := []struct {
		give string
		want bool
	}{
		{"java.lang.String", true},
		{"javax.crypto.Cipher", true},
		{"android.app.Activity", true},
		{"org.apache.http.conn.ssl.SSLSocketFactory", true},
		{"com.example.app.MainActivity", false},
		{"org.apache.commons.Foo", false}, // only org.apache.http is system
		{"androidx.core.app.Helper", true},
	}
	for _, tt := range tests {
		if got := IsSystemClass(tt.give); got != tt.want {
			t.Errorf("IsSystemClass(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestFrameworkHierarchy(t *testing.T) {
	super, ok := FrameworkSuper(ActivityClass)
	if !ok || super != "android.content.ContextWrapper" {
		t.Errorf("FrameworkSuper(Activity) = %q, %v", super, ok)
	}
	if _, ok := FrameworkSuper("com.example.NotSystem"); ok {
		t.Error("unknown class should not resolve")
	}
	ifaces := FrameworkInterfaces(ThreadClass)
	if len(ifaces) != 1 || ifaces[0] != RunnableIface {
		t.Errorf("Thread interfaces = %v", ifaces)
	}
	if !IsFrameworkInterface(RunnableIface) || IsFrameworkInterface(ThreadClass) {
		t.Error("IsFrameworkInterface wrong")
	}
	// HttpsURLConnection walks up to Object through HttpURLConnection.
	s1, _ := FrameworkSuper(HttpsURLConnClass)
	if s1 != "java.net.HttpURLConnection" {
		t.Errorf("HttpsURLConnection super = %q", s1)
	}
}

func TestComponentKindOfBase(t *testing.T) {
	k, ok := ComponentKindOfBase(ServiceClass)
	if !ok || k != manifest.Service {
		t.Errorf("Service base = %v, %v", k, ok)
	}
	if _, ok := ComponentKindOfBase("java.lang.Thread"); ok {
		t.Error("Thread must not be a component base")
	}
	k, ok = ComponentKindOfBase("android.app.IntentService")
	if !ok || k != manifest.Service {
		t.Errorf("IntentService base = %v, %v", k, ok)
	}
}

func TestLifecycleTables(t *testing.T) {
	if !IsLifecycleMethod(manifest.Activity, "onResume") {
		t.Error("onResume should be an Activity lifecycle method")
	}
	if IsLifecycleMethod(manifest.Activity, "doWork") {
		t.Error("doWork should not be a lifecycle method")
	}
	if !IsLifecycleMethod(manifest.Receiver, "onReceive") {
		t.Error("onReceive should be a Receiver lifecycle method")
	}
	preds := LifecyclePredecessors(manifest.Activity, "onResume")
	if len(preds) != 2 || preds[0] != "onStart" {
		t.Errorf("onResume predecessors = %v", preds)
	}
	if LifecyclePredecessors(manifest.Activity, "onCreate") != nil {
		t.Error("onCreate has no predecessors")
	}
}

func TestCallbackRegistry(t *testing.T) {
	if !IsCallbackInterface(RunnableIface) {
		t.Error("Runnable is a callback interface")
	}
	if IsCallbackInterface("com.example.MyIface") {
		t.Error("app interface must not be a known callback interface")
	}
	ms := CallbackMethods(OnClickIface)
	if len(ms) != 1 || ms[0] != "onClick" {
		t.Errorf("OnClickListener methods = %v", ms)
	}
}

func TestAsyncCallbackClasses(t *testing.T) {
	if !IsAsyncCallbackClass(AsyncTaskClass) || !IsAsyncCallbackClass(ThreadClass) {
		t.Error("AsyncTask/Thread should be async callback classes")
	}
	ms := AsyncCallbackMethods(AsyncTaskClass)
	found := false
	for _, m := range ms {
		if m == "doInBackground" {
			found = true
		}
	}
	if !found {
		t.Errorf("AsyncTask callbacks = %v, want doInBackground", ms)
	}
}

func TestICCTargetKind(t *testing.T) {
	start := dex.NewMethodRef(ContextClass, "startService",
		dex.T("android.content.ComponentName"), dex.T(IntentClass))
	k, ok := ICCTargetKind(start)
	if !ok || k != manifest.Service {
		t.Errorf("startService kind = %v, %v", k, ok)
	}
	appCall := dex.NewMethodRef("com.example.App", "startService", dex.Void, dex.T(IntentClass))
	if _, ok := ICCTargetKind(appCall); ok {
		t.Error("app-defined startService is not a system ICC call")
	}
	other := dex.NewMethodRef(ContextClass, "getSystemService", dex.ObjectT, dex.StringT)
	if _, ok := ICCTargetKind(other); ok {
		t.Error("getSystemService is not an ICC call")
	}
}

func TestICCEntryMethods(t *testing.T) {
	if ms := ICCEntryMethods(manifest.Service); len(ms) == 0 || ms[0] != "onCreate" {
		t.Errorf("Service entry methods = %v", ms)
	}
	if ms := ICCEntryMethods(manifest.Receiver); len(ms) != 1 || ms[0] != "onReceive" {
		t.Errorf("Receiver entry methods = %v", ms)
	}
}

func TestDefaultSinks(t *testing.T) {
	sinks := DefaultSinks()
	if len(sinks) != 3 {
		t.Fatalf("sinks = %d, want 3", len(sinks))
	}
	if sinks[0].Method.DexSignature() != "Ljavax/crypto/Cipher;.getInstance:(Ljava/lang/String;)Ljavax/crypto/Cipher;" {
		t.Errorf("cipher sink sig = %q", sinks[0].Method.DexSignature())
	}
	for _, s := range sinks {
		if s.ParamIndex != 0 {
			t.Errorf("sink %s param = %d", s.Method, s.ParamIndex)
		}
	}
	if sinks[1].Rule != RuleSSLAllowAll || sinks[0].Rule != RuleCryptoECB {
		t.Error("rule assignment wrong")
	}
}

func TestIsInsecureCipherTransformation(t *testing.T) {
	tests := []struct {
		give string
		want bool
	}{
		{"AES/ECB/PKCS5Padding", true},
		{"aes/ecb/nopadding", true},
		{"AES", true}, // defaults to ECB
		{"DES", true},
		{"AES/CBC/PKCS5Padding", false},
		{"AES/GCM/NoPadding", false},
		{"RSA", false},
	}
	for _, tt := range tests {
		if got := IsInsecureCipherTransformation(tt.give); got != tt.want {
			t.Errorf("IsInsecureCipherTransformation(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestRuleKindString(t *testing.T) {
	if RuleCryptoECB.String() != "crypto-ecb" || RuleSSLAllowAll.String() != "ssl-allow-all" {
		t.Error("rule names wrong")
	}
	if RuleKind(0).String() != "unknown-rule" {
		t.Error("zero rule should be unknown")
	}
}
