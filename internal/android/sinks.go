package android

import (
	"strings"

	"backdroid/internal/dex"
)

// RuleKind identifies a vulnerability rule attached to a sink.
type RuleKind int

// Rule kinds evaluated by internal/vuln.
const (
	RuleCryptoECB   RuleKind = iota + 1 // insecure ECB cipher mode
	RuleSSLAllowAll                     // allow-all hostname verification
)

// String names the rule.
func (r RuleKind) String() string {
	switch r {
	case RuleCryptoECB:
		return "crypto-ecb"
	case RuleSSLAllowAll:
		return "ssl-allow-all"
	}
	return "unknown-rule"
}

// Sink is a security-sensitive API whose argument dataflow BackDroid
// tracks.
type Sink struct {
	Method     dex.MethodRef
	ParamIndex int // 0-based among declared parameters (receiver excluded)
	Rule       RuleKind
}

// Well-known sink method references (paper Sec. VI-A).
var (
	// CipherGetInstance is javax.crypto.Cipher.getInstance(String).
	CipherGetInstance = dex.NewMethodRef(CipherClass, "getInstance",
		dex.T(CipherClass), dex.StringT)
	// SSLSetHostnameVerifier is
	// org.apache.http.conn.ssl.SSLSocketFactory.setHostnameVerifier(X509HostnameVerifier).
	SSLSetHostnameVerifier = dex.NewMethodRef(SSLSocketFactoryClass, "setHostnameVerifier",
		dex.Void, dex.T(X509VerifierIface))
	// HttpsSetHostnameVerifier is
	// javax.net.ssl.HttpsURLConnection.setHostnameVerifier(HostnameVerifier).
	HttpsSetHostnameVerifier = dex.NewMethodRef(HttpsURLConnClass, "setHostnameVerifier",
		dex.Void, dex.T(HostnameVerifierIface))
)

// DefaultSinks returns the three sink APIs evaluated in the paper.
func DefaultSinks() []Sink {
	return []Sink{
		{Method: CipherGetInstance, ParamIndex: 0, Rule: RuleCryptoECB},
		{Method: SSLSetHostnameVerifier, ParamIndex: 0, Rule: RuleSSLAllowAll},
		{Method: HttpsSetHostnameVerifier, ParamIndex: 0, Rule: RuleSSLAllowAll},
	}
}

// AllowAllVerifierField is the insecure
// SSLSocketFactory.ALLOW_ALL_HOSTNAME_VERIFIER constant. Forward analysis
// represents reads of framework static fields as opaque tokens; the SSL
// rule matches this token.
var AllowAllVerifierField = dex.NewFieldRef(SSLSocketFactoryClass,
	"ALLOW_ALL_HOSTNAME_VERIFIER", dex.T(X509VerifierIface))

// AllowAllVerifierClass is the class whose instances implement allow-all
// verification; `new AllowAllHostnameVerifier()` is the other insecure
// spelling.
const AllowAllVerifierClass = "org.apache.http.conn.ssl.AllowAllHostnameVerifier"

// IsInsecureCipherTransformation reports whether a cipher transformation
// string selects ECB mode. Bare algorithm names ("AES", "DES") default to
// ECB on Android, which is the trap the paper's crypto rule flags.
func IsInsecureCipherTransformation(s string) bool {
	up := strings.ToUpper(s)
	if strings.Contains(up, "/ECB") {
		return true
	}
	// "ALG" or "ALG/..." with no explicit mode: only flag the bare form.
	return !strings.Contains(up, "/") && (up == "AES" || up == "DES" || up == "DESEDE" || up == "BLOWFISH")
}
