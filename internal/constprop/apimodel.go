package constprop

import (
	"strings"

	"backdroid/internal/android"
	"backdroid/internal/ir"
)

// modelAPI models the semantics of framework API calls the slices commonly
// contain (paper: "we ... model Android/Java APIs to handle ...
// InvokeExpr"). Unmodeled calls produce an identified Token so the output
// remains an expression rather than silently unknown.
func (a *analysis) modelAPI(inv *ir.InvokeExpr, env *env) *Fact {
	cls := inv.Method.Class
	name := inv.Method.Name

	arg := func(i int) *Fact {
		if i < len(inv.Args) {
			return a.evalValue(inv.Args[i], env)
		}
		return NewFact(Unknown{})
	}
	base := func() *Fact {
		if inv.Base != nil {
			return a.evalValue(inv.Base, env)
		}
		return NewFact(Unknown{})
	}

	switch {
	case cls == "java.lang.String":
		switch name {
		case "concat":
			return mapStrings2(base(), arg(0), func(x, y string) string { return x + y })
		case "toUpperCase":
			return mapStrings(base(), strings.ToUpper)
		case "toLowerCase":
			return mapStrings(base(), strings.ToLower)
		case "trim":
			return mapStrings(base(), strings.TrimSpace)
		case "valueOf":
			v := arg(0)
			out := NewFact()
			for _, val := range v.Values() {
				switch t := val.(type) {
				case Str:
					out.Add(t)
				case Num:
					out.Add(Str{S: t.String()})
				default:
					out.Add(Unknown{})
				}
			}
			return out
		case "intern":
			return base()
		}

	case cls == "java.lang.StringBuilder":
		switch name {
		case "append":
			// Model the builder's content as a synthetic field on its Obj.
			// A field write like any other for the memoization counters.
			a.fieldSeq++
			content := builderContent(base())
			appended := mapStrings2(content, toStringFact(arg(0)), func(x, y string) string { return x + y })
			setBuilderContent(base(), appended)
			return base()
		case "toString":
			return builderContent(base())
		}

	case cls == android.IntentClass:
		switch name {
		case "setAction", "setClass", "setClassName", "putExtra":
			return base() // fluent setters return the intent
		}
	}

	// Unmodeled framework call: an identified opaque token.
	return NewFact(Token{Sig: inv.Method.SootSignature() + "()"})
}

const builderField = "<java.lang.StringBuilder: java.lang.String content>"

func builderContent(base *Fact) *Fact {
	out := NewFact()
	for _, v := range base.Values() {
		if obj, ok := v.(*Obj); ok {
			if f, ok2 := obj.Fields[builderField]; ok2 {
				out.Merge(f)
				continue
			}
			out.Add(Str{S: ""})
		}
	}
	if out.Empty() {
		out.Add(Unknown{})
	}
	return out
}

func setBuilderContent(base *Fact, content *Fact) {
	for _, v := range base.Values() {
		if obj, ok := v.(*Obj); ok {
			obj.Fields[builderField] = content
		}
	}
}

func toStringFact(f *Fact) *Fact {
	out := NewFact()
	for _, v := range f.Values() {
		switch t := v.(type) {
		case Str:
			out.Add(t)
		case Num:
			out.Add(Str{S: t.String()})
		default:
			out.Add(Unknown{})
		}
	}
	return out
}

func mapStrings(f *Fact, fn func(string) string) *Fact {
	out := NewFact()
	for _, v := range f.Values() {
		if s, ok := v.(Str); ok {
			out.Add(Str{S: fn(s.S)})
		} else {
			out.Add(Unknown{})
		}
	}
	return out
}

func mapStrings2(x, y *Fact, fn func(string, string) string) *Fact {
	out := NewFact()
	for _, xv := range x.Values() {
		for _, yv := range y.Values() {
			xs, xok := xv.(Str)
			ys, yok := yv.(Str)
			if xok && yok {
				out.Add(Str{S: fn(xs.S, ys.S)})
			} else {
				out.Add(Unknown{})
			}
		}
	}
	return out
}
