// Package constprop implements the forward constant and points-to
// propagation over a self-contained slicing graph (paper Sec. V-B). It
// iterates the SSG nodes, models statement semantics for the six
// expression kinds (Binop, Cast, Invoke, New, NewArray, Phi), maintains
// per-flow fact maps plus one global fact map for static fields, and
// outputs the complete dataflow representation (constant or expression) of
// the target sink API parameter.
package constprop

import (
	"fmt"
	"sort"
	"strconv"
)

// Value is one abstract value a variable may hold.
type Value interface {
	fmt.Stringer
	value()
}

// Str is a string constant.
type Str struct{ S string }

func (Str) value()           {}
func (v Str) String() string { return strconv.Quote(v.S) }

// Num is an integer constant.
type Num struct{ N int64 }

func (Num) value()           {}
func (v Num) String() string { return strconv.FormatInt(v.N, 10) }

// Null is the null constant.
type Null struct{}

func (Null) value()         {}
func (Null) String() string { return "null" }

// Token is an opaque but identified value: a framework constant (e.g.
// SSLSocketFactory.ALLOW_ALL_HOSTNAME_VERIFIER), a class literal or an
// unmodeled API result. The paper's "expression" outputs map here.
type Token struct{ Sig string }

func (Token) value()           {}
func (v Token) String() string { return v.Sig }

// Obj is the paper's NewObj structure: a pointer to the allocation with
// its constructor class and a member map, preserving points-to identity
// along flow paths.
type Obj struct {
	ID     int
	Class  string
	Fields map[string]*Fact // field soot signature -> fact
}

func (*Obj) value() {}
func (v *Obj) String() string {
	return fmt.Sprintf("new %s#%d", v.Class, v.ID)
}

// Arr is the paper's ArrayObj: points-to identity of an array plus an
// index-to-value map.
type Arr struct {
	ID    int
	Elems map[int64]*Fact
}

func (*Arr) value() {}
func (v *Arr) String() string {
	return fmt.Sprintf("newarray#%d", v.ID)
}

// Unknown is the absent-information value.
type Unknown struct{}

func (Unknown) value()         {}
func (Unknown) String() string { return "unknown" }

// FactCap bounds the size of one value set. Past the cap a fact degrades
// to containing Unknown, mirroring the k-limits every practical constant /
// points-to analysis applies.
const FactCap = 24

// Fact is the set of possible abstract values of one variable at one
// program point; sets grow at merges (paths, phis) up to FactCap.
type Fact struct {
	values map[string]Value
}

// NewFact builds a fact holding the given values.
func NewFact(vals ...Value) *Fact {
	f := &Fact{values: make(map[string]Value, len(vals))}
	for _, v := range vals {
		f.Add(v)
	}
	return f
}

// Add inserts a value into the set; at capacity the set degrades by
// absorbing Unknown instead.
func (f *Fact) Add(v Value) {
	key := v.String()
	if _, ok := f.values[key]; ok {
		return
	}
	if len(f.values) >= FactCap {
		f.values[Unknown{}.String()] = Unknown{}
		return
	}
	f.values[key] = v
}

// HasUnknown reports whether the set contains Unknown (it saturated or an
// operand was unresolved).
func (f *Fact) HasUnknown() bool {
	_, ok := f.values[Unknown{}.String()]
	return ok
}

// Merge unions another fact into this one.
func (f *Fact) Merge(other *Fact) {
	if other == nil {
		return
	}
	for k, v := range other.values {
		f.values[k] = v
	}
}

// Values returns the values sorted by rendering, for deterministic output.
func (f *Fact) Values() []Value {
	keys := make([]string, 0, len(f.values))
	for k := range f.values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Value, len(keys))
	for i, k := range keys {
		out[i] = f.values[k]
	}
	return out
}

// Strings renders the values, sorted.
func (f *Fact) Strings() []string {
	vals := f.Values()
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = v.String()
	}
	return out
}

// Empty reports whether the fact holds no values.
func (f *Fact) Empty() bool { return len(f.values) == 0 }

// Size returns the number of distinct values — the cheap change indicator
// for fixpoint loops.
func (f *Fact) Size() int { return len(f.values) }

// Singleton returns the single value when the set has exactly one element.
func (f *Fact) Singleton() (Value, bool) {
	if len(f.values) != 1 {
		return nil, false
	}
	for _, v := range f.values {
		return v, true
	}
	return nil, false
}
