package constprop

import (
	"fmt"
	"sort"
	"strings"

	"backdroid/internal/android"
	"backdroid/internal/dex"
	"backdroid/internal/ir"
	"backdroid/internal/simtime"
	"backdroid/internal/ssg"
)

// Options configures a propagation run.
type Options struct {
	// SinkParamIndex selects which declared parameter of the sink call to
	// report.
	SinkParamIndex int
	// MaxDepth bounds inter-procedural descents.
	MaxDepth int
	// SinkUnit overrides the graph's SinkSite as the node whose argument
	// fact is collected. Per-app SSGs record several sink calls in one
	// graph; each propagation run targets one of them.
	SinkUnit *ssg.Unit
	// MultiSinks, when non-nil, collects facts for several sink call
	// nodes in a single traversal: each entry maps a recorded call node
	// to the parameter index to track at it. The per-app SSG mode uses
	// this to run the forward pass once per app instead of once per sink
	// — the traversal itself is identical to a single-sink run, only the
	// collection points differ. SinkUnit/SinkParamIndex are ignored.
	MultiSinks map[*ssg.Unit]int
	// Memoize caches evalMethod results keyed by (callee signature,
	// argument facts), so a callee shared by many call edges — the deep
	// config chains of many-sink apps — is evaluated once per distinct
	// fact environment instead of once per edge. Only provably
	// effect-free evaluations are cached (no sink collection, no
	// static-field or object-field writes, no fresh allocations, no
	// depth/recursion cutoffs), and entries are invalidated by any later
	// global or field write, so results are identical with the cache on
	// or off.
	Memoize bool
	// OnMethod, when non-nil, sees every method the traversal evaluates
	// (normal and static track, memo hits included). The delta engine
	// records the per-sink class footprint through it. The forward pass
	// only ever reads units recorded in the SSG, so this is redundant
	// with the slicer's own recording — kept as an explicit seam so the
	// footprint's completeness does not rest on that invariant.
	OnMethod func(dex.MethodRef)
}

// Result is the outcome of a propagation run.
type Result struct {
	// SinkValues is the dataflow representation of the tracked sink
	// parameter: every abstract value that can reach it.
	SinkValues []Value
	// MultiValues holds the per-node values of a MultiSinks run.
	MultiValues map[*ssg.Unit][]Value
	// MemoHits counts evalMethod calls answered from the Memoize cache.
	MemoHits int64
}

// Run traverses the SSG: the special static-field track first, then the
// normal track from its tail methods, analyzing each recorded statement's
// semantics and propagating constant and points-to facts until the sink
// node is reached (paper Sec. V-B).
func Run(g *ssg.Graph, prog *ir.Program, meter *simtime.Meter, opts Options) (*Result, error) {
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 25
	}
	a := &analysis{
		g:        g,
		prog:     prog,
		meter:    meter,
		opts:     opts,
		globals:  make(map[string]*Fact),
		sink:     NewFact(),
		thisObjs: make(map[string]*Obj),
	}
	if opts.Memoize {
		a.memo = make(map[string]memoEntry)
	}
	if opts.MultiSinks != nil {
		a.multi = make(map[*ssg.Unit]*Fact, len(opts.MultiSinks))
		for u := range opts.MultiSinks {
			a.multi[u] = NewFact()
		}
	}

	// Static field track first, so the normal track can resolve the
	// fields it references.
	if err := a.runStaticTrack(); err != nil {
		return nil, err
	}

	for _, root := range a.rootMethods() {
		env := newEnv()
		if _, err := a.evalMethod(root, env, nil); err != nil {
			return nil, err
		}
	}
	res := &Result{SinkValues: a.sink.Values(), MemoHits: a.memoHits}
	if a.multi != nil {
		res.MultiValues = make(map[*ssg.Unit][]Value, len(a.multi))
		for u, f := range a.multi {
			res.MultiValues[u] = f.Values()
		}
	}
	return res, nil
}

type env struct {
	locals map[string]*Fact
	// thisFact / params seed identity statements.
	thisFact *Fact
	params   map[int]*Fact
}

func newEnv() *env {
	return &env{locals: make(map[string]*Fact), params: make(map[int]*Fact)}
}

type analysis struct {
	g       *ssg.Graph
	prog    *ir.Program
	meter   *simtime.Meter
	opts    Options
	globals map[string]*Fact // static field soot sig -> fact
	sink    *Fact
	multi   map[*ssg.Unit]*Fact // per-node facts of a MultiSinks run
	objSeq  int
	// thisObjs gives every method of one class the same receiver object,
	// so component state written in one lifecycle handler is visible in
	// another (paper Sec. IV-E).
	thisObjs map[string]*Obj

	// Forward-pass memoization (Options.Memoize). The effect counters
	// make caching sound: globalsSeq bumps on every static-field write,
	// fieldSeq on every object-field or array-element write, sinkSeq on
	// every sink-fact collection and cutSeq on every depth-bound or
	// recursion cutoff. An evaluation is cached only when none of them
	// (nor objSeq — fresh allocations carry identity) moved while it ran,
	// and a cached entry is served only while the global and field
	// counters still match the values it was recorded under, so no stale
	// state can ever be replayed.
	memo       map[string]memoEntry
	memoHits   int64
	globalsSeq int64
	fieldSeq   int64
	sinkSeq    int64
	cutSeq     int64
}

// memoEntry is one cached evalMethod result together with the validity
// snapshot it was recorded under. remaining is the depth budget the
// evaluation had left; a reuse site must have at least as much, or the
// original evaluation could have been cut where the reuse would not be.
type memoEntry struct {
	ret        *Fact
	globalsSeq int64
	fieldSeq   int64
	remaining  int
}

// envKey renders the argument facts of a call deterministically: the
// receiver fact plus every positional parameter fact, each as its sorted
// value strings. Object values render with their allocation identity, so
// two keys are equal only when the callee would see literally the same
// abstract inputs.
func envKey(env *env) string {
	var b strings.Builder
	if env.thisFact != nil {
		b.WriteString(strings.Join(env.thisFact.Strings(), ","))
	}
	b.WriteByte(';')
	idxs := make([]int, 0, len(env.params))
	for i := range env.params {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		fmt.Fprintf(&b, "%d=[%s];", i, strings.Join(env.params[i].Strings(), ","))
	}
	return b.String()
}

// rootMethods returns tracked methods that are not callees of any recorded
// call edge — the tails the overall traversal starts from (entry-side
// methods).
func (a *analysis) rootMethods() []dex.MethodRef {
	callees := make(map[string]bool)
	for _, e := range a.g.Edges() {
		if e.Kind == ssg.CallEdge {
			callees[e.Callee.SootSignature()] = true
		}
	}
	var out []dex.MethodRef
	for _, sig := range a.g.Methods() {
		if callees[sig] {
			continue
		}
		ref, err := dex.ParseSootMethodSignature(sig)
		if err != nil {
			continue
		}
		if a.isStaticTrackOnly(ref) {
			continue
		}
		out = append(out, ref)
	}
	// Lifecycle handlers of one component execute in lifecycle order;
	// evaluating them in that order lets later handlers observe state
	// written by earlier ones (e.g. onCreate before onResume).
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return lifecycleRank(out[i].Name) < lifecycleRank(out[j].Name)
	})
	return out
}

// lifecycleRank orders lifecycle handler names across all component kinds;
// non-lifecycle methods sort last by name.
func lifecycleRank(name string) int {
	order := []string{
		"<clinit>", "<init>", "onCreate", "onStart", "onRestart",
		"onStartCommand", "onBind", "onHandleIntent", "onReceive",
		"onResume", "onPause", "onStop", "onDestroy",
	}
	for i, n := range order {
		if n == name {
			return i
		}
	}
	return len(order)
}

func (a *analysis) isStaticTrackOnly(ref dex.MethodRef) bool {
	units := a.g.UnitsOf(ref)
	if len(units) == 0 {
		return false
	}
	inTrack := make(map[*ssg.Unit]bool, len(a.g.StaticTrack))
	for _, u := range a.g.StaticTrack {
		inTrack[u] = true
	}
	for _, u := range units {
		if !inTrack[u] {
			return false
		}
	}
	return true
}

// runStaticTrack evaluates the off-path <clinit> units, populating the
// global static-field fact map.
func (a *analysis) runStaticTrack() error {
	byMethod := make(map[string][]*ssg.Unit)
	var order []string
	for _, u := range a.g.StaticTrack {
		sig := u.Method.SootSignature()
		if _, ok := byMethod[sig]; !ok {
			order = append(order, sig)
		}
		byMethod[sig] = append(byMethod[sig], u)
	}
	for _, sig := range order {
		ref, err := dex.ParseSootMethodSignature(sig)
		if err != nil {
			continue
		}
		if a.opts.OnMethod != nil {
			a.opts.OnMethod(ref)
		}
		env := newEnv()
		if _, err := a.evalUnits(ref, a.g.UnitsOf(ref), env, nil, 0); err != nil {
			return err
		}
	}
	return nil
}

// evalMethod evaluates the recorded units of a method under the given
// environment, returning the fact of its recorded return values (if any).
// With Options.Memoize set, effect-free evaluations are cached per
// (callee, argument facts) and replayed for later call edges with the
// same abstract inputs — the shared-callee fast path of deep chains.
func (a *analysis) evalMethod(ref dex.MethodRef, env *env, stack []string) (*Fact, error) {
	// Cooperative cancellation: a latched cancel aborts the forward pass
	// at method granularity, even on paths (memo hits, empty unit lists)
	// that charge too little to reach the meter's next checkpoint soon.
	if a.meter.Canceled() {
		return nil, simtime.ErrCanceled
	}
	if a.opts.OnMethod != nil {
		a.opts.OnMethod(ref)
	}
	sig := ref.SootSignature()
	if len(stack) > a.opts.MaxDepth {
		a.cutSeq++
		return NewFact(Unknown{}), nil
	}
	for _, s := range stack {
		if s == sig {
			a.cutSeq++
			return NewFact(Unknown{}), nil // recursive SSG edge: cut
		}
	}
	remaining := a.opts.MaxDepth - len(stack)
	var key string
	if a.memo != nil {
		key = sig + "\x00" + envKey(env)
		if ent, ok := a.memo[key]; ok &&
			ent.globalsSeq == a.globalsSeq && ent.fieldSeq == a.fieldSeq &&
			ent.remaining <= remaining {
			a.memoHits++
			if err := a.meter.Charge(1); err != nil {
				return nil, err
			}
			return ent.ret, nil
		}
	}
	g0, f0, s0, c0, o0 := a.globalsSeq, a.fieldSeq, a.sinkSeq, a.cutSeq, a.objSeq
	ret, err := a.evalUnits(ref, a.g.UnitsOf(ref), env, append(stack, sig), 0)
	if err != nil {
		return nil, err
	}
	if a.memo != nil &&
		g0 == a.globalsSeq && f0 == a.fieldSeq && s0 == a.sinkSeq &&
		c0 == a.cutSeq && o0 == a.objSeq {
		a.memo[key] = memoEntry{ret: ret, globalsSeq: a.globalsSeq, fieldSeq: a.fieldSeq, remaining: remaining}
	}
	return ret, nil
}

func (a *analysis) evalUnits(ref dex.MethodRef, units []*ssg.Unit, env *env, stack []string, _ int) (*Fact, error) {
	ret := NewFact()
	for _, u := range units {
		if err := a.meter.Charge(1); err != nil {
			return nil, err
		}
		switch s := u.Stmt.(type) {
		case *ir.IdentityStmt:
			switch rhs := s.RHS.(type) {
			case *ir.ThisRef:
				if env.thisFact != nil {
					env.locals[s.LHS.Name] = env.thisFact
				} else {
					env.locals[s.LHS.Name] = NewFact(a.classThis(rhs.Class))
				}
			case *ir.ParamRef:
				if f, ok := env.params[rhs.Index]; ok {
					env.locals[s.LHS.Name] = f
				} else {
					env.locals[s.LHS.Name] = NewFact(Unknown{})
				}
			}

		case *ir.AssignStmt:
			if err := a.evalAssign(ref, u, s, env, stack); err != nil {
				return nil, err
			}

		case *ir.InvokeStmt:
			if _, err := a.evalInvoke(ref, u, s.Invoke, env, stack); err != nil {
				return nil, err
			}

		case *ir.ReturnStmt:
			if s.Val != nil {
				ret.Merge(a.evalValue(s.Val, env))
			}
		}
	}
	if ret.Empty() {
		ret.Add(Unknown{})
	}
	return ret, nil
}

func (a *analysis) evalAssign(ref dex.MethodRef, u *ssg.Unit, s *ir.AssignStmt, env *env, stack []string) error {
	var fact *Fact
	if inv, ok := s.RHS.(*ir.InvokeExpr); ok {
		f, err := a.evalInvoke(ref, u, inv, env, stack)
		if err != nil {
			return err
		}
		fact = f
	} else {
		fact = a.evalValue(s.RHS, env)
	}

	switch lhs := s.LHS.(type) {
	case *ir.Local:
		env.locals[lhs.Name] = fact
	case *ir.InstanceFieldRef:
		a.fieldSeq++
		base := a.evalValue(lhs.Base, env)
		for _, v := range base.Values() {
			if obj, ok := v.(*Obj); ok {
				obj.Fields[lhs.Field.SootSignature()] = fact
			}
		}
	case *ir.StaticFieldRef:
		a.globalsSeq++
		sig := lhs.Field.SootSignature()
		if existing, ok := a.globals[sig]; ok {
			existing.Merge(fact)
		} else {
			a.globals[sig] = fact
		}
	case *ir.ArrayRef:
		a.fieldSeq++
		base := a.evalValue(lhs.Base, env)
		idxFact := a.evalValue(lhs.Index, env)
		for _, v := range base.Values() {
			arr, ok := v.(*Arr)
			if !ok {
				continue
			}
			if n, ok2 := singleNum(idxFact); ok2 {
				arr.Elems[n] = fact
			} else {
				arr.Elems[-1] = fact // unknown index: wildcard slot
			}
		}
	}
	return nil
}

// evalInvoke resolves a call node: descend through recorded call edges
// into tracked callees; model framework APIs otherwise. At the sink node
// the tracked parameter's fact is collected.
func (a *analysis) evalInvoke(ref dex.MethodRef, u *ssg.Unit, inv *ir.InvokeExpr, env *env, stack []string) (*Fact, error) {
	if a.multi != nil {
		if pi, ok := a.opts.MultiSinks[u]; ok && pi < len(inv.Args) {
			a.sinkSeq++
			a.multi[u].Merge(a.evalValue(inv.Args[pi], env))
		}
	} else {
		target := a.opts.SinkUnit
		if target == nil {
			target = a.g.SinkSite
		}
		if target == u {
			if a.opts.SinkParamIndex < len(inv.Args) {
				a.sinkSeq++
				a.sink.Merge(a.evalValue(inv.Args[a.opts.SinkParamIndex], env))
			}
		}
	}

	for _, callee := range a.g.CallEdgesFrom(u) {
		calleeEnv := newEnv()
		if inv.Base != nil {
			calleeEnv.thisFact = a.evalValue(inv.Base, env)
		}
		for i, arg := range inv.Args {
			calleeEnv.params[i] = a.evalValue(arg, env)
		}
		retFact, err := a.evalMethod(callee, calleeEnv, stack)
		if err != nil {
			return nil, err
		}
		if callee.SootSignature() == inv.Method.SootSignature() {
			return retFact, nil
		}
	}
	return a.modelAPI(inv, env), nil
}

// evalValue computes the fact of a non-invoke value.
func (a *analysis) evalValue(v ir.Value, env *env) *Fact {
	switch t := v.(type) {
	case *ir.Local:
		if f, ok := env.locals[t.Name]; ok {
			return f
		}
		return NewFact(Unknown{})
	case ir.StringConst:
		return NewFact(Str{S: t.V})
	case ir.IntConst:
		return NewFact(Num{N: t.V})
	case ir.NullConst:
		return NewFact(Null{})
	case ir.ClassConst:
		return NewFact(Token{Sig: "class " + t.Class})
	case *ir.InstanceFieldRef:
		base := a.evalValue(t.Base, env)
		out := NewFact()
		for _, bv := range base.Values() {
			if obj, ok := bv.(*Obj); ok {
				if f, ok2 := obj.Fields[t.Field.SootSignature()]; ok2 {
					out.Merge(f)
				}
			}
		}
		if out.Empty() {
			out.Add(Unknown{})
		}
		return out
	case *ir.StaticFieldRef:
		if android.IsSystemClass(t.Field.Class) {
			return NewFact(Token{Sig: t.Field.SootSignature()})
		}
		if f, ok := a.globals[t.Field.SootSignature()]; ok {
			return f
		}
		return NewFact(Unknown{})
	case *ir.ArrayRef:
		base := a.evalValue(t.Base, env)
		idx := a.evalValue(t.Index, env)
		out := NewFact()
		for _, bv := range base.Values() {
			arr, ok := bv.(*Arr)
			if !ok {
				continue
			}
			if n, ok2 := singleNum(idx); ok2 {
				if f, ok3 := arr.Elems[n]; ok3 {
					out.Merge(f)
					continue
				}
			}
			for _, f := range arr.Elems {
				out.Merge(f)
			}
		}
		if out.Empty() {
			out.Add(Unknown{})
		}
		return out
	case *ir.BinopExpr:
		return a.evalBinop(t, env)
	case *ir.CastExpr:
		return a.evalValue(t.Val, env)
	case *ir.NewExpr:
		return NewFact(a.freshObj(t.Class))
	case *ir.NewArrayExpr:
		a.objSeq++
		return NewFact(&Arr{ID: a.objSeq, Elems: make(map[int64]*Fact)})
	case *ir.PhiExpr:
		out := NewFact()
		for _, l := range t.Args {
			out.Merge(a.evalValue(l, env))
		}
		return out
	}
	return NewFact(Unknown{})
}

// evalBinop mimics arithmetic on constant operands (paper: "we mimic
// arithmetic operations ... to handle BinopExpr").
func (a *analysis) evalBinop(b *ir.BinopExpr, env *env) *Fact {
	left := a.evalValue(b.Left, env)
	right := a.evalValue(b.Right, env)
	out := NewFact()
	for _, lv := range left.Values() {
		for _, rv := range right.Values() {
			out.Add(applyBinop(b.Op, lv, rv))
		}
	}
	return out
}

// ApplyBinop computes a binary operation on two abstract values, yielding
// Unknown when the operands are not constants. Exported because the
// whole-app baseline evaluates the same value algebra.
func ApplyBinop(op string, lv, rv Value) Value { return applyBinop(op, lv, rv) }

func applyBinop(op string, lv, rv Value) Value {
	ln, lok := lv.(Num)
	rn, rok := rv.(Num)
	if lok && rok {
		switch op {
		case "+":
			return Num{N: ln.N + rn.N}
		case "-":
			return Num{N: ln.N - rn.N}
		case "*":
			return Num{N: ln.N * rn.N}
		case "/":
			if rn.N != 0 {
				return Num{N: ln.N / rn.N}
			}
		case "%":
			if rn.N != 0 {
				return Num{N: ln.N % rn.N}
			}
		case "&":
			return Num{N: ln.N & rn.N}
		case "|":
			return Num{N: ln.N | rn.N}
		case "^":
			return Num{N: ln.N ^ rn.N}
		}
	}
	ls, lsok := lv.(Str)
	rs, rsok := rv.(Str)
	if op == "+" && lsok && rsok {
		return Str{S: ls.S + rs.S}
	}
	return Unknown{}
}

func (a *analysis) freshObj(class string) *Obj {
	a.objSeq++
	return &Obj{ID: a.objSeq, Class: class, Fields: make(map[string]*Fact)}
}

// classThis returns the canonical receiver object of a class, shared by
// all tracked methods without explicit caller bindings.
func (a *analysis) classThis(class string) *Obj {
	if o, ok := a.thisObjs[class]; ok {
		return o
	}
	o := a.freshObj(class)
	a.thisObjs[class] = o
	return o
}

func singleNum(f *Fact) (int64, bool) {
	v, ok := f.Singleton()
	if !ok {
		return 0, false
	}
	n, ok := v.(Num)
	return n.N, ok
}
